//! Workspace automation (`cargo xtask` pattern — a plain bin crate, no
//! external dependencies).
//!
//! ```text
//! cargo run -p xtask -- lint
//! ```
//!
//! The `lint` subcommand enforces three source-level contracts that
//! rustc/clippy cannot express across the workspace:
//!
//! 1. **Unsafe confinement** — the `unsafe` keyword may appear only in
//!    the files on [`UNSAFE_ALLOWLIST`]: the two SIMD kernels modules
//!    and the work-stealing pool whose FFI-ish job handoff requires a
//!    `Send` assertion. Everywhere else `#![deny(unsafe_code)]` plus
//!    this lint keep the audit surface fixed.
//! 2. **SAFETY annotations** — inside the allowlisted files, every use
//!    of `unsafe` must carry a `SAFETY:` comment (or `# Safety` doc
//!    section) within the preceding few lines, stating the proof
//!    obligation it discharges.
//! 3. **No `unwrap`/`expect` on fallible serving paths** — the files on
//!    [`NO_PANIC_PATHS`] (matrix io, schedule serialization, the
//!    serving runtime) handle untrusted bytes and client traffic; they
//!    must degrade or return typed errors, never panic. Test modules
//!    (from `#[cfg(test)]` to end of file) are exempt.
//!
//! The scanner is token-aware: comments and string literals are blanked
//! before keyword matching, so prose mentions of `unsafe` don't trip
//! rule 1 and string payloads don't trip rule 3.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Files permitted to contain the `unsafe` keyword.
const UNSAFE_ALLOWLIST: &[&str] = &[
    "crates/core/src/kernels.rs",
    "crates/sparse/src/kernels.rs",
    "crates/core/src/parallel.rs",
];

/// Files that must stay panic-free outside their test modules.
const NO_PANIC_PATHS: &[&str] = &[
    "crates/sparse/src/io.rs",
    "crates/core/src/schedule/serialize.rs",
    "crates/core/src/serve.rs",
];

/// How many lines above an `unsafe` token a SAFETY annotation may sit.
const SAFETY_LOOKBACK: usize = 12;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("lint") => lint(),
        Some(other) => {
            eprintln!("xtask: unknown subcommand `{other}`");
            eprintln!("usage: cargo run -p xtask -- lint");
            ExitCode::from(2)
        }
        None => {
            eprintln!("usage: cargo run -p xtask -- lint");
            ExitCode::from(2)
        }
    }
}

/// Runs all three lints over `crates/` and `src/`; nonzero on any hit.
fn lint() -> ExitCode {
    let root = workspace_root();
    let mut files = Vec::new();
    for top in ["crates", "src"] {
        collect_rust_files(&root.join(top), &mut files);
    }
    files.sort();

    let mut problems: Vec<String> = Vec::new();
    for path in &files {
        let Ok(source) = std::fs::read_to_string(path) else {
            problems.push(format!("{}: unreadable", display(path, &root)));
            continue;
        };
        let rel = display(path, &root);
        let code_lines = blank_comments_and_strings(&source);
        let raw_lines: Vec<&str> = source.lines().collect();

        if UNSAFE_ALLOWLIST.contains(&rel.as_str()) {
            check_safety_annotations(&rel, &code_lines, &raw_lines, &mut problems);
        } else {
            check_unsafe_confinement(&rel, &code_lines, &mut problems);
        }
        if NO_PANIC_PATHS.contains(&rel.as_str()) {
            check_no_panic(&rel, &code_lines, &raw_lines, &mut problems);
        }
    }

    if problems.is_empty() {
        println!(
            "xtask lint: OK ({} files; unsafe confined to {} modules; {} no-panic paths clean)",
            files.len(),
            UNSAFE_ALLOWLIST.len(),
            NO_PANIC_PATHS.len()
        );
        ExitCode::SUCCESS
    } else {
        for p in &problems {
            eprintln!("xtask lint: {p}");
        }
        eprintln!("xtask lint: {} violation(s)", problems.len());
        ExitCode::from(1)
    }
}

/// Rule 1: no `unsafe` keyword outside the allowlist.
fn check_unsafe_confinement(rel: &str, code_lines: &[String], problems: &mut Vec<String>) {
    for (i, line) in code_lines.iter().enumerate() {
        if has_keyword(line, "unsafe") {
            problems.push(format!(
                "{rel}:{}: `unsafe` outside the allowlisted kernels/pool modules",
                i + 1
            ));
        }
    }
}

/// Rule 2: every `unsafe` in an allowlisted file carries a SAFETY
/// annotation within [`SAFETY_LOOKBACK`] preceding lines (or on the
/// same line, for one-line blocks).
fn check_safety_annotations(
    rel: &str,
    code_lines: &[String],
    raw_lines: &[&str],
    problems: &mut Vec<String>,
) {
    for (i, line) in code_lines.iter().enumerate() {
        if !has_keyword(line, "unsafe") {
            continue;
        }
        let start = i.saturating_sub(SAFETY_LOOKBACK);
        let annotated = raw_lines[start..=i.min(raw_lines.len() - 1)]
            .iter()
            .any(|l| l.contains("SAFETY") || l.contains("# Safety"));
        if !annotated {
            problems.push(format!(
                "{rel}:{}: `unsafe` without a SAFETY/`# Safety` annotation in the {} lines above",
                i + 1,
                SAFETY_LOOKBACK
            ));
        }
    }
}

/// Rule 3: no `.unwrap()` / `.expect(` before the `#[cfg(test)]` module.
fn check_no_panic(
    rel: &str,
    code_lines: &[String],
    raw_lines: &[&str],
    problems: &mut Vec<String>,
) {
    for (i, line) in code_lines.iter().enumerate() {
        // Test modules sit at the end of each of these files; everything
        // from the marker down is exempt.
        if raw_lines.get(i).is_some_and(|l| l.contains("#[cfg(test)]")) {
            break;
        }
        for needle in [".unwrap()", ".expect("] {
            if line.contains(needle) {
                problems.push(format!(
                    "{rel}:{}: `{needle}` on a no-panic path (io/serialize/serve must return errors)",
                    i + 1
                ));
            }
        }
    }
}

/// `word` as a standalone keyword: not part of a larger identifier.
fn has_keyword(line: &str, word: &str) -> bool {
    let bytes = line.as_bytes();
    let mut from = 0;
    while let Some(pos) = line[from..].find(word) {
        let at = from + pos;
        let before_ok = at == 0 || !is_ident(bytes[at - 1]);
        let after = at + word.len();
        let after_ok = after >= bytes.len() || !is_ident(bytes[after]);
        if before_ok && after_ok {
            return true;
        }
        from = at + word.len();
    }
    false
}

fn is_ident(b: u8) -> bool {
    b == b'_' || b.is_ascii_alphanumeric()
}

/// Returns the source split into lines with comments and string/char
/// literal contents blanked out (replaced by spaces), so keyword and
/// method-call matching only sees real code. Handles line comments,
/// nested block comments, escapes, and raw strings (`r"…"`, `r#"…"#`).
fn blank_comments_and_strings(source: &str) -> Vec<String> {
    #[derive(Clone, Copy, PartialEq)]
    enum State {
        Code,
        LineComment,
        BlockComment(usize),
        Str,
        RawStr(usize),
        Char,
    }
    let mut state = State::Code;
    let mut out = String::with_capacity(source.len());
    let chars: Vec<char> = source.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        match state {
            State::Code => match c {
                '/' if next == Some('/') => {
                    state = State::LineComment;
                    out.push(' ');
                }
                '/' if next == Some('*') => {
                    state = State::BlockComment(1);
                    out.push(' ');
                }
                '"' => {
                    state = State::Str;
                    out.push(' ');
                }
                'r' if next == Some('"') || next == Some('#') => {
                    // Possible raw string: count the `#`s after `r`.
                    let mut hashes = 0;
                    let mut j = i + 1;
                    while chars.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if chars.get(j) == Some(&'"') {
                        state = State::RawStr(hashes);
                        for _ in i..=j {
                            out.push(' ');
                        }
                        i = j + 1;
                        continue;
                    }
                    out.push(c);
                }
                '\'' => {
                    // Char literal vs lifetime: a lifetime is `'ident`
                    // not followed by a closing quote.
                    let is_lifetime = next.is_some_and(|n| is_ident(n as u8) || n == '_')
                        && chars.get(i + 2) != Some(&'\'');
                    if is_lifetime {
                        out.push(c);
                    } else {
                        state = State::Char;
                        out.push(' ');
                    }
                }
                '\n' => out.push('\n'),
                _ => out.push(c),
            },
            State::LineComment => {
                if c == '\n' {
                    state = State::Code;
                    out.push('\n');
                } else {
                    out.push(' ');
                }
            }
            State::BlockComment(depth) => {
                if c == '/' && next == Some('*') {
                    state = State::BlockComment(depth + 1);
                    out.push_str("  ");
                    i += 2;
                    continue;
                }
                if c == '*' && next == Some('/') {
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    out.push_str("  ");
                    i += 2;
                    continue;
                }
                out.push(if c == '\n' { '\n' } else { ' ' });
            }
            State::Str => match c {
                '\\' => {
                    out.push_str("  ");
                    i += 2;
                    continue;
                }
                '"' => {
                    state = State::Code;
                    out.push(' ');
                }
                '\n' => out.push('\n'),
                _ => out.push(' '),
            },
            State::RawStr(hashes) => {
                if c == '"' {
                    let closes = (1..=hashes).all(|k| chars.get(i + k) == Some(&'#'));
                    if closes {
                        state = State::Code;
                        for _ in 0..=hashes {
                            out.push(' ');
                        }
                        i += hashes + 1;
                        continue;
                    }
                }
                out.push(if c == '\n' { '\n' } else { ' ' });
            }
            State::Char => match c {
                '\\' => {
                    out.push_str("  ");
                    i += 2;
                    continue;
                }
                '\'' => {
                    state = State::Code;
                    out.push(' ');
                }
                _ => out.push(' '),
            },
        }
        i += 1;
    }
    out.lines().map(str::to_owned).collect()
}

/// All `.rs` files under `dir`, recursively (skips `target/`).
fn collect_rust_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            collect_rust_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// The workspace root: `CARGO_MANIFEST_DIR/..` (xtask lives one level
/// below the root), falling back to the current directory.
fn workspace_root() -> PathBuf {
    std::env::var_os("CARGO_MANIFEST_DIR")
        .map(|m| PathBuf::from(m).join("..").to_path_buf())
        .and_then(|p| p.canonicalize().ok())
        .unwrap_or_else(|| PathBuf::from("."))
}

fn display(path: &Path, root: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}
