//! Design-space exploration: how GUST's length trades utilization against
//! crossbar cost (§5.5), and what `k` parallel short engines buy back.
//!
//! ```sh
//! cargo run --release --example design_space
//! ```

use gust::parallel::ParallelGust;
use gust_energy::resources::{GustPowerBreakdown, GustResources};
use gust_repro::prelude::*;

fn main() {
    // A mid-density uniform operand (2048^2, d = 2e-3).
    let coo = gen::uniform(2048, 2048, 8_388, 7);
    let matrix = CsrMatrix::from(&coo);
    let x: Vec<f32> = (0..matrix.cols()).map(|i| (i % 13) as f32 - 6.0).collect();
    println!(
        "operand: {}x{}, {} nnz\n",
        matrix.rows(),
        matrix.cols(),
        matrix.nnz()
    );

    // 1. Monolithic GUST across lengths: cycles fall, crossbar explodes.
    println!(
        "{:>7} {:>10} {:>10} {:>14} {:>12}",
        "length", "cycles", "util (%)", "crossbar LUT", "power (W)"
    );
    for l in [16usize, 32, 64, 128, 256, 512] {
        let gust = Gust::new(GustConfig::new(l));
        let run = gust.spmv(&matrix, &x);
        let res = GustResources::at_length(l);
        println!(
            "{l:>7} {:>10} {:>10.2} {:>14.0} {:>12.1}",
            run.report.cycles,
            run.report.utilization() * 100.0,
            res.crossbar.luts,
            GustPowerBreakdown::at_length(l).total_watts()
        );
    }

    // 2. Fixed arithmetic budget (256 lanes): one long engine vs k short
    //    ones (§5.5's proposal).
    println!(
        "\n{:>16} {:>10} {:>14} {:>12}",
        "configuration", "cycles", "crossbar LUT", "speed vs 1x"
    );
    let mono = Gust::new(GustConfig::new(256))
        .spmv(&matrix, &x)
        .report
        .cycles;
    println!(
        "{:>16} {mono:>10} {:>14.0} {:>12}",
        "1 x 256",
        GustResources::at_length(256).crossbar.luts,
        "1.00x"
    );
    for k in [2usize, 4, 8] {
        let l = 256 / k;
        let engine = ParallelGust::new(GustConfig::new(l), k);
        let schedule = engine.schedule(&matrix);
        let run = engine.execute(&schedule, &x);
        assert_vectors_close(&run.output, &reference_spmv(&matrix, &x), 1e-4);
        println!(
            "{:>16} {:>10} {:>14.0} {:>11.2}x",
            format!("{k} x {l}"),
            run.report.cycles,
            k as f64 * GustResources::at_length(l).crossbar.luts,
            mono as f64 / run.report.cycles as f64
        );
    }
    println!(
        "\nthe parallel arrangements keep the arithmetic budget while shrinking the\n\
         crossbar by an order of magnitude, at a modest cycle cost — §5.5's tradeoff."
    );
}
