//! Quickstart: schedule a sparse matrix with edge coloring, run it through
//! the cycle-accurate GUST engine, and compare against prior designs.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use gust_repro::prelude::*;

fn main() {
    // A 512x512 uniform random matrix at 1% density — the kind of operand
    // where dense-streaming designs waste 99% of their cycles.
    let coo = gen::uniform(512, 512, 2_621, 42);
    let matrix = CsrMatrix::from(&coo);
    let x: Vec<f32> = (0..matrix.cols()).map(|i| (i % 17) as f32 * 0.25).collect();
    println!(
        "matrix: {}x{}, {} non-zeros (density {:.2e})\n",
        matrix.rows(),
        matrix.cols(),
        matrix.nnz(),
        matrix.density()
    );

    // 1. Schedule once (the paper's preprocessing: windowing, load
    //    balancing, bipartite edge coloring)...
    let gust = Gust::new(GustConfig::new(64));
    let schedule = gust.schedule(&matrix);
    println!(
        "GUST-64 schedule: {} windows, {} colors total (Vizing lower bound {}), \
         predicted utilization {:.1}%",
        schedule.windows().len(),
        schedule.total_colors(),
        schedule.total_vizing_bound(),
        schedule.predicted_utilization() * 100.0
    );

    // 2. ...then execute any number of SpMVs against it.
    let run = gust.execute(&schedule, &x);
    let expected = reference_spmv(&matrix, &x);
    assert_vectors_close(&run.output, &expected, 1e-4);
    println!(
        "GUST-64 executed in {} cycles ({:.2} us at 96 MHz), utilization {:.1}%, \
         output verified against the reference kernel\n",
        run.report.cycles,
        run.report.seconds() * 1.0e6,
        run.report.utilization() * 100.0
    );

    // 3. The same SpMV on the paper's baselines (equal arithmetic budget).
    println!("{:<16} {:>12} {:>14}", "design", "cycles", "utilization");
    for (name, report) in [
        ("1D systolic", Systolic1d::new(64).report(&matrix)),
        ("adder tree", AdderTree::new(64).report(&matrix)),
        ("Flex-TPU", FlexTpu::with_units(64).report(&matrix)),
        ("Fafnir", Fafnir::new(32).report(&matrix)),
        ("GUST EC/LB", run.report.clone()),
    ] {
        println!(
            "{:<16} {:>12} {:>13.2}%",
            name,
            report.cycles,
            report.utilization() * 100.0
        );
    }
}
