//! Walks through the paper's own worked examples:
//!
//! * Fig. 3 — the handpicked 4×4 matrix on a length-4 GUST (4 time steps),
//! * Fig. 5 — the 6×9 matrix on a length-3 GUST: two windows, optimally
//!   colored with 5 and 4 colors, 11 cycles total,
//! * the dense `M_sch` / `Row_sch` / `Col_sch` tables of Listing 2,
//! * a per-cycle trace from the structural Fig.-2 pipeline.
//!
//! ```sh
//! cargo run --release --example paper_walkthrough
//! ```

use gust::hw::GustPipeline;
use gust::schedule::stats::ScheduleStats;
use gust_repro::prelude::*;
use gust_sim::Clocked;

fn fig1_matrix() -> CsrMatrix {
    // Fig. 1's example: M11, M22, M31, M34, M42, M43 in a 4x4 matrix.
    let coo = CooMatrix::from_triplets(
        4,
        4,
        vec![
            (0, 0, 1.1),
            (1, 1, 2.2),
            (2, 0, 3.1),
            (2, 3, 3.4),
            (3, 1, 4.2),
            (3, 2, 4.3),
        ],
    )
    .expect("example is valid");
    CsrMatrix::from(&coo)
}

fn fig5_matrix() -> CsrMatrix {
    // Fig. 5(a): rows 1-6 over columns A..I.
    let rows: [&[usize]; 6] = [
        &[0, 2, 3, 4, 7],
        &[0, 1, 5, 6, 7],
        &[1, 2, 3, 8],
        &[0, 2, 4, 8],
        &[2, 5, 6, 7],
        &[0, 1, 3, 7],
    ];
    let mut coo = CooMatrix::new(6, 9);
    for (r, cols) in rows.iter().enumerate() {
        for &c in cols.iter() {
            coo.push(r, c, (r * 9 + c) as f32 + 1.0).expect("in bounds");
        }
    }
    CsrMatrix::from(&coo)
}

fn show_m_sch(schedule: &ScheduledMatrix, window: usize) {
    let m_sch = schedule.dense_m_sch(window);
    let col_sch = schedule.dense_col_sch(window);
    let row_sch = schedule.dense_row_sch(window);
    println!("  window {window}: M_sch (col=multiplier lane, row=time step)");
    for (step, (values, (cols, rows))) in m_sch
        .iter()
        .zip(col_sch.iter().zip(row_sch.iter()))
        .enumerate()
    {
        let cells: Vec<String> = values
            .iter()
            .zip(cols.iter().zip(rows))
            .map(|(v, (c, r))| match (v, c, r) {
                (Some(v), Some(c), Some(r)) => {
                    format!("{v:>5.1}(col {}, adder {r})", (b'A' + *c as u8) as char)
                }
                _ => "        --         ".to_string(),
            })
            .collect();
        println!("   t={step}: {}", cells.join(" | "));
    }
}

fn main() {
    // ---- Fig. 3: the length-4 example needs exactly 4 time steps
    // (2 colors + 2 pipeline levels). ----
    let m = fig1_matrix();
    let gust4 = Gust::new(GustConfig::new(4).with_coloring(ColoringAlgorithm::Konig));
    let schedule = gust4.schedule(&m);
    let v = [0.5f32, 1.5, 2.5, 3.5];
    let run = gust4.execute(&schedule, &v);
    println!("Fig. 3 (4x4 on length-4 GUST):");
    println!(
        "  {} colors + 2 pipeline levels = {} time steps (the figure shows 4)",
        schedule.total_colors(),
        run.report.cycles
    );
    assert_eq!(run.report.cycles, 4);
    assert_vectors_close(&run.output, &reference_spmv(&m, &v), 1e-5);

    // ---- Fig. 5: 6x9 on length-3, optimal coloring = 5 + 4 colors. ----
    let m = fig5_matrix();
    let gust3 = Gust::new(
        GustConfig::new(3)
            .with_policy(SchedulingPolicy::EdgeColoring)
            .with_coloring(ColoringAlgorithm::Konig),
    );
    let schedule = gust3.schedule(&m);
    let colors: Vec<u32> = schedule.windows().iter().map(|w| w.colors()).collect();
    println!("\nFig. 5 (6x9 on length-3 GUST):");
    println!(
        "  window colors {colors:?} -> total cycles {} (paper: 5 and 4, 11 cycles)",
        schedule.total_colors() + 2
    );
    assert_eq!(colors, vec![5, 4]);
    show_m_sch(&schedule, 0);
    show_m_sch(&schedule, 1);

    // The greedy of Listing 1 is a heuristic; on this example it spends one
    // extra color on the first window.
    let greedy =
        Gust::new(GustConfig::new(3).with_policy(SchedulingPolicy::EdgeColoring)).schedule(&m);
    println!(
        "  Listing-1 greedy: {:?} colors (Vizing bounds {:?})",
        greedy
            .windows()
            .iter()
            .map(|w| w.colors())
            .collect::<Vec<_>>(),
        greedy
            .windows()
            .iter()
            .map(|w| w.vizing_bound())
            .collect::<Vec<_>>(),
    );

    // ---- Execute Fig. 5 on the structural pipeline with tracing. ----
    let x: Vec<f32> = (1..=9).map(|i| i as f32).collect();
    let mut pipeline = GustPipeline::new(&schedule, &x).with_trace();
    let mut clock = gust_sim::Clock::new();
    while !pipeline.is_idle() {
        pipeline.tick(clock.now());
        clock.tick();
    }
    let trace = pipeline.trace().expect("tracing enabled");
    println!("\n  per-cycle trace of the Fig. 2 pipeline:");
    for e in trace.entries() {
        println!(
            "   cycle {:>2}: {} multipliers, {} adders busy{}",
            e.cycle,
            e.busy_multipliers,
            e.busy_adders,
            if e.dumped_window { "  <- dump" } else { "" }
        );
    }
    assert_vectors_close(pipeline.output(), &reference_spmv(&m, &x), 1e-5);

    let stats = ScheduleStats::from_schedule(&schedule);
    println!(
        "\n  schedule stats: occupancy {:.1}%, slack over Eq.1 bound {:.1}%",
        stats.mean_occupancy * 100.0,
        stats.slack_over_bound().unwrap_or(0.0) * 100.0
    );
    println!("\nall paper-example checks passed.");
}
