//! Personalized PageRank by batched power iteration on a power-law
//! web-graph stand-in: several personalization vectors advance through
//! the SpMV inner loop **in one schedule walk** per iteration
//! (`execute_batch`, the §5.3 multi-right-hand-side amortization) on
//! parallel GUST engines (§5.5's arrangement) — the graph-analytics
//! workload class the paper's introduction motivates.
//!
//! Vector-at-a-time PageRank streams the schedule once per persona per
//! iteration; the batched panel streams it once per iteration for *all*
//! personas, which is exactly the reuse the one-time scheduling cost is
//! amortized over.
//!
//! ```sh
//! cargo run --release --example pagerank
//! ```

use gust::parallel::{ParallelGust, WindowAssignment};
use gust_repro::prelude::*;

/// Personas: each personalized ranking restarts onto its own seed pages.
const PERSONAS: usize = 4;

fn main() {
    // A directed power-law graph: 4096 pages, ~49k links.
    let n = 4_096;
    let coo = gen::power_law(n, n, 49_152, 1.9, 2024);
    // Column-stochastic transition matrix: divide each column by its
    // out-degree (columns = source pages here).
    let csr = CsrMatrix::from(&coo);
    let stats = MatrixStats::from_csr(&csr);
    let mut transition = CooMatrix::new(n, n);
    for (r, c, v) in csr.iter() {
        let out_degree = stats.col_nnz()[c] as f32;
        transition
            .push(r, c, v.abs() / v.abs().max(1.0) / out_degree)
            .expect("in bounds");
    }
    let a = CsrMatrix::from(&transition);
    println!("graph: {n} pages, {} links", a.nnz());

    // Schedule once on four parallel length-64 GUSTs; the same schedule
    // serves every persona and every iteration.
    let engine =
        ParallelGust::new(GustConfig::new(64), 4).with_assignment(WindowAssignment::LeastLoaded);
    let schedule = engine.schedule(&a);
    println!(
        "schedule: {} windows over {} engines, kernel backend: {}\n",
        schedule.windows().len(),
        engine.engines(),
        engine.config().effective_backend().name(),
    );

    // Restart distributions: persona p concentrates its teleport mass on
    // 8 seed pages (a "topic" of interest).
    let restarts: Vec<Vec<f32>> = (0..PERSONAS)
        .map(|p| {
            let mut e = vec![0.0f32; n];
            for k in 0..8 {
                e[(p * 997 + k * 131) % n] = 1.0 / 8.0;
            }
            e
        })
        .collect();

    // One column-major panel holds every persona's current ranking.
    let damping = 0.85f32;
    let mut panel: Vec<f32> = vec![1.0f32 / n as f32; n * PERSONAS];
    let mut converged = [false; PERSONAS];
    let mut cycles_total = 0u64;
    let mut iterations = 0u32;
    for k in 0..100 {
        // One schedule walk advances all personas (§5.3 amortization).
        let (y, report) = engine.execute_batch(&schedule, &panel, PERSONAS);
        cycles_total += report.cycles;
        for (p, restart) in restarts.iter().enumerate() {
            if converged[p] {
                continue;
            }
            let rank = &mut panel[p * n..(p + 1) * n];
            let spmv = &y[p * n..(p + 1) * n];
            // r <- d·A·r + (1-d)·e_p, then renormalize (dangling pages
            // leak mass).
            let mut next: Vec<f32> = spmv
                .iter()
                .zip(restart)
                .map(|(&av, &e)| damping * av + (1.0 - damping) * e)
                .collect();
            let sum: f32 = next.iter().sum();
            next.iter_mut().for_each(|v| *v /= sum);
            let delta: f32 = next
                .iter()
                .zip(rank.iter())
                .map(|(a, b)| (a - b).abs())
                .sum();
            rank.copy_from_slice(&next);
            if delta < 1.0e-7 {
                converged[p] = true;
            }
        }
        iterations = k + 1;
        if converged.iter().all(|&c| c) {
            break;
        }
    }

    println!(
        "converged in {iterations} batched iterations ({cycles_total} accelerator cycles, \
         one schedule walk per iteration for all {PERSONAS} personas)"
    );
    for (p, _) in restarts.iter().enumerate() {
        let rank = &panel[p * n..(p + 1) * n];
        let mut top: Vec<(usize, f32)> = rank.iter().copied().enumerate().collect();
        top.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("ranks are finite"));
        let head: Vec<String> = top
            .iter()
            .take(3)
            .map(|(page, score)| format!("page {page} ({score:.5})"))
            .collect();
        let sum: f32 = rank.iter().sum();
        assert!(
            (sum - 1.0).abs() < 1e-3,
            "persona {p}: ranks must stay a distribution"
        );
        println!("persona {p}: top pages {}", head.join(", "));
    }

    // The accelerator model charges one pipeline pass per persona either
    // way; what batching buys is host-side — the schedule stream
    // (`dense_stream_bytes` of traffic, plus the walk's instruction
    // work) is read once per iteration instead of once per persona.
    println!(
        "\nschedule walks per iteration: 1 batched vs {PERSONAS} vector-at-a-time \
         ({} KiB of schedule stream amortized across personas each iteration)",
        schedule.dense_stream_bytes() / 1024,
    );
}
