//! PageRank by power iteration on a power-law web-graph stand-in, with the
//! SpMV inner loop on parallel GUST engines (§5.5's arrangement) — the
//! graph-analytics workload class the paper's introduction motivates.
//!
//! ```sh
//! cargo run --release --example pagerank
//! ```

use gust::parallel::{ParallelGust, WindowAssignment};
use gust_repro::prelude::*;

fn main() {
    // A directed power-law graph: 4096 pages, ~49k links.
    let n = 4_096;
    let coo = gen::power_law(n, n, 49_152, 1.9, 2024);
    // Column-stochastic transition matrix: divide each column by its
    // out-degree (columns = source pages here).
    let csr = CsrMatrix::from(&coo);
    let stats = MatrixStats::from_csr(&csr);
    let mut transition = CooMatrix::new(n, n);
    for (r, c, v) in csr.iter() {
        let out_degree = stats.col_nnz()[c] as f32;
        transition
            .push(r, c, v.abs() / v.abs().max(1.0) / out_degree)
            .expect("in bounds");
    }
    let a = CsrMatrix::from(&transition);
    println!("graph: {n} pages, {} links", a.nnz());

    // Schedule once on four parallel length-64 GUSTs.
    let engine =
        ParallelGust::new(GustConfig::new(64), 4).with_assignment(WindowAssignment::LeastLoaded);
    let schedule = engine.schedule(&a);
    println!(
        "schedule: {} windows over {} engines\n",
        schedule.windows().len(),
        engine.engines()
    );

    // Power iteration: r <- d·A·r + (1-d)/n.
    let damping = 0.85f32;
    let mut rank = vec![1.0f32 / n as f32; n];
    let mut cycles_total = 0u64;
    let mut iterations = 0u32;
    for k in 0..100 {
        let run = engine.execute(&schedule, &rank);
        cycles_total += run.report.cycles;
        let mut next: Vec<f32> = run
            .output
            .iter()
            .map(|&v| damping * v + (1.0 - damping) / n as f32)
            .collect();
        // Renormalize (dangling pages leak mass).
        let sum: f32 = next.iter().sum();
        next.iter_mut().for_each(|v| *v /= sum);
        let delta: f32 = next.iter().zip(&rank).map(|(a, b)| (a - b).abs()).sum();
        rank = next;
        iterations = k + 1;
        if delta < 1.0e-7 {
            break;
        }
    }

    let mut top: Vec<(usize, f32)> = rank.iter().copied().enumerate().collect();
    top.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("ranks are finite"));
    println!("converged in {iterations} iterations ({cycles_total} accelerator cycles)");
    println!("top pages by rank:");
    for (page, score) in top.iter().take(5) {
        println!("  page {page:>5}: {score:.6}");
    }
    let sum: f32 = rank.iter().sum();
    assert!((sum - 1.0).abs() < 1e-3, "ranks must stay a distribution");
    println!("rank mass conserved: {sum:.6}");
}
