//! Runs every accelerator the paper evaluates — the four §2 baselines,
//! Serpens and three GUST scheduling variants — on one matrix from the
//! paper's suite (default `scircuit`; pass another name or `.mtx` path).
//!
//! ```sh
//! cargo run --release --example compare_accelerators -- wiki-vote
//! cargo run --release --example compare_accelerators -- path/to/matrix.mtx
//! ```

use gust_repro::prelude::*;
use gust_sparse::io::read_matrix_market_file;

fn load(arg: &str) -> (String, CsrMatrix) {
    if arg.ends_with(".mtx") {
        let coo = read_matrix_market_file(arg).expect("readable Matrix Market file");
        (arg.to_string(), CsrMatrix::from(&coo))
    } else {
        let entry = suite::by_name(arg)
            .unwrap_or_else(|| panic!("unknown matrix '{arg}'; see gust_sparse::suite"));
        // A 10% stand-in keeps this example interactive; raise for fidelity.
        (
            entry.name.to_string(),
            CsrMatrix::from(&entry.generate_scaled(0.1)),
        )
    }
}

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "scircuit".into());
    let (name, matrix) = load(&arg);
    let x: Vec<f32> = (0..matrix.cols())
        .map(|i| ((i % 31) as f32) / 31.0)
        .collect();
    let expected = reference_spmv(&matrix, &x);
    println!(
        "{name}: {}x{}, {} nnz (density {:.2e})\n",
        matrix.rows(),
        matrix.cols(),
        matrix.nnz(),
        matrix.density()
    );

    println!(
        "{:<18} {:>12} {:>12} {:>12} {:>10}",
        "design", "cycles", "time (us)", "util (%)", "output"
    );

    let mut rows: Vec<(String, gust_sim::ExecutionReport, Vec<f32>)> = vec![
        {
            let r = Systolic1d::new(256).execute(&matrix, &x);
            ("1D-256".into(), r.report, r.output)
        },
        {
            let r = AdderTree::new(256).execute(&matrix, &x);
            ("AT-256".into(), r.report, r.output)
        },
        {
            let r = FlexTpu::with_units(256).execute(&matrix, &x);
            ("FlexTPU-16x16".into(), r.report, r.output)
        },
        {
            let r = Fafnir::new(128).execute(&matrix, &x);
            ("Fafnir-128".into(), r.report, r.output)
        },
        {
            let r = Serpens::new().execute(&matrix, &x);
            ("Serpens".into(), r.report, r.output)
        },
    ];

    for policy in [
        SchedulingPolicy::Naive,
        SchedulingPolicy::EdgeColoring,
        SchedulingPolicy::EdgeColoringLb,
    ] {
        let gust = Gust::new(GustConfig::new(256).with_policy(policy));
        let run = gust.spmv(&matrix, &x);
        rows.push((
            format!("GUST256-{}", policy.label()),
            run.report,
            run.output,
        ));
    }

    for (label, report, output) in rows {
        assert_vectors_close(&output, &expected, 1e-3);
        println!(
            "{label:<18} {:>12} {:>12.2} {:>12.3} {:>10}",
            report.cycles,
            report.seconds() * 1.0e6,
            report.utilization() * 100.0,
            "ok"
        );
    }
    println!("\nall outputs verified against the reference kernel.");
}
