//! Conjugate-gradient solver running its SpMVs on the GUST engine — the
//! paper's §5.3 amortization story made concrete: schedule once, then
//! iterate thousands of SpMVs against the same matrix.
//!
//! This version advances **four CG chains per schedule walk**: the four
//! systems' direction vectors form a column-major panel and every
//! iteration performs one [`Gust::execute_batch`] pass, so the schedule
//! (and, on a warm run, the persistent worker pool's threads) is paid
//! for once and shared by all chains — the multi-right-hand-side
//! batching §5.3 argues for, finishing what `examples/pagerank.rs`
//! started in PR 3.
//!
//! Solves the 2D Poisson equation on an n×n grid (the classic five-point
//! stencil, symmetric positive definite) for four different right-hand
//! sides at once — first in f32, then the same four chains again in
//! **double precision** through [`Gust::execute_batch_f64`]: the
//! first-class f64 walk drives the residual ~5 orders of magnitude below
//! what f32 arithmetic can reach, on the same schedule.
//!
//! ```sh
//! cargo run --release --example iterative_solver
//! ```

use gust_repro::prelude::*;
use gust_sparse::ops::{axpy, dot, norm2};
use std::time::Instant;

/// Chains advanced per schedule walk.
const CHAINS: usize = 4;

fn main() {
    let grid = 64;
    let a = CsrMatrix::from(&gen::laplacian_2d(grid));
    let n = a.rows();
    println!(
        "Poisson {grid}x{grid}: {n} unknowns, {} non-zeros (density {:.2e}), {CHAINS} CG chains per schedule walk",
        a.nnz(),
        a.density()
    );

    // Preprocess once — this cost amortizes over every CG iteration of
    // every chain.
    let gust = Gust::new(GustConfig::new(128));
    let t0 = Instant::now();
    let schedule = gust.schedule(&a);
    println!(
        "scheduled in {:.2} ms ({} colors, predicted utilization {:.1}%)\n",
        t0.elapsed().as_secs_f64() * 1.0e3,
        schedule.total_colors(),
        schedule.predicted_utilization() * 100.0
    );

    // Four known solutions x*_k with k-dependent structure, and their
    // right-hand sides b_k = A·x*_k — produced in one batched walk.
    let solutions: Vec<Vec<f32>> = (0..CHAINS)
        .map(|k| {
            (0..n)
                .map(|i| 1.0 + 0.25 * ((i * (k + 1)) % 5) as f32)
                .collect()
        })
        .collect();
    let mut panel: Vec<f32> = Vec::with_capacity(n * CHAINS);
    for x_true in &solutions {
        panel.extend_from_slice(x_true);
    }
    let (b_panel, _) = gust.execute_batch(&schedule, &panel, CHAINS);

    // CG state per chain, kept as column-major panels so the direction
    // vectors go through the engine as one batch.
    let mut x = vec![0.0f32; n * CHAINS];
    let mut r = b_panel.clone();
    let mut p = r.clone();
    let mut rs_old: Vec<f64> = (0..CHAINS)
        .map(|k| {
            let rk = col(&r, n, k);
            dot(rk, rk)
        })
        .collect();
    let mut converged = [false; CHAINS];
    let mut chain_iterations = [0u32; CHAINS];
    let mut accel_cycles: u64 = 0;
    let mut walks = 0u32;

    for _ in 0..1000 {
        if converged.iter().all(|&c| c) {
            break;
        }
        // The solver's only matrix operation: ONE schedule walk advances
        // every unconverged chain (converged chains ride along — their
        // directions are stale but their state is frozen below).
        let (ap_panel, report) = gust.execute_batch(&schedule, &p, CHAINS);
        accel_cycles += report.cycles; // the model charges CHAINS passes
        walks += 1;

        for k in 0..CHAINS {
            if converged[k] {
                continue;
            }
            let (pk, apk) = (col(&p, n, k), col(&ap_panel, n, k));
            let alpha = (rs_old[k] / dot(pk, apk)) as f32;
            axpy(alpha, pk, &mut x[k * n..(k + 1) * n]);
            let rk = &mut r[k * n..(k + 1) * n];
            axpy(-alpha, apk, rk);
            let rs_new = dot(rk, rk);
            chain_iterations[k] += 1;
            if rs_new.sqrt() < 1.0e-4 {
                converged[k] = true;
                continue;
            }
            let beta = (rs_new / rs_old[k]) as f32;
            for i in 0..n {
                p[k * n + i] = r[k * n + i] + beta * p[k * n + i];
            }
            rs_old[k] = rs_new;
        }
    }

    for k in 0..CHAINS {
        let err = col(&x, n, k)
            .iter()
            .zip(&solutions[k])
            .map(|(&got, &want)| (f64::from(got) - f64::from(want)).abs())
            .fold(0.0f64, f64::max);
        println!(
            "chain {k}: converged in {} iterations; max |x - x*| = {err:.2e}; residual {:.2e}",
            chain_iterations[k],
            norm2(col(&r, n, k)),
        );
        assert!(err < 1.0e-2, "chain {k} failed to reach its known solution");
    }
    println!(
        "\n{walks} batched schedule walks advanced {CHAINS} chains \
         ({} single-vector walks saved)",
        walks * (CHAINS as u32 - 1)
    );
    println!(
        "accelerator time: {accel_cycles} cycles = {:.2} ms at 96 MHz across all walks",
        accel_cycles as f64 / 96.0e6 * 1.0e3
    );
    println!("all {CHAINS} solutions verified.");

    // ---- The same solve in double precision ------------------------------
    // Same schedule, same matrix values (widened per slot), but every
    // operand, accumulator and CG scalar is f64: the engine's
    // first-class f64 batched walk. The tolerance drops from 1e-4 to
    // 1e-9 — unreachable in f32 arithmetic.
    println!("\n=== f64 chains (execute_batch_f64, tol 1e-9) ===");
    let panel64: Vec<f64> = panel.iter().map(|&v| f64::from(v)).collect();
    let (b_panel64, _) = gust.execute_batch_f64(&schedule, &panel64, CHAINS);

    let mut x64 = vec![0.0f64; n * CHAINS];
    let mut r64 = b_panel64.clone();
    let mut p64 = r64.clone();
    let mut rs_old64: Vec<f64> = (0..CHAINS)
        .map(|k| dot_f64(col64(&r64, n, k), col64(&r64, n, k)))
        .collect();
    let mut converged64 = [false; CHAINS];
    let mut iters64 = [0u32; CHAINS];

    for _ in 0..2000 {
        if converged64.iter().all(|&c| c) {
            break;
        }
        let (ap_panel, _) = gust.execute_batch_f64(&schedule, &p64, CHAINS);
        for k in 0..CHAINS {
            if converged64[k] {
                continue;
            }
            let alpha = rs_old64[k] / dot_f64(col64(&p64, n, k), col64(&ap_panel, n, k));
            for i in 0..n {
                x64[k * n + i] += alpha * p64[k * n + i];
                r64[k * n + i] -= alpha * ap_panel[k * n + i];
            }
            let rs_new = dot_f64(col64(&r64, n, k), col64(&r64, n, k));
            iters64[k] += 1;
            if rs_new.sqrt() < 1.0e-9 {
                converged64[k] = true;
                continue;
            }
            let beta = rs_new / rs_old64[k];
            for i in 0..n {
                p64[k * n + i] = r64[k * n + i] + beta * p64[k * n + i];
            }
            rs_old64[k] = rs_new;
        }
    }

    for k in 0..CHAINS {
        let err = col64(&x64, n, k)
            .iter()
            .zip(&solutions[k])
            .map(|(&got, &want)| (got - f64::from(want)).abs())
            .fold(0.0f64, f64::max);
        println!(
            "chain {k}: converged in {} iterations; max |x - x*| = {err:.2e}; residual {:.2e}",
            iters64[k],
            rs_old64[k].sqrt(),
        );
        assert!(
            converged64[k] && err < 1.0e-6,
            "f64 chain {k} failed to reach its known solution at double precision"
        );
    }
    println!("all {CHAINS} f64 solutions verified at tol 1e-9.");
}

/// Column `k` of an `n × CHAINS` column-major panel.
fn col(panel: &[f32], n: usize, k: usize) -> &[f32] {
    &panel[k * n..(k + 1) * n]
}

/// Column `k` of an `n × CHAINS` column-major f64 panel.
fn col64(panel: &[f64], n: usize, k: usize) -> &[f64] {
    &panel[k * n..(k + 1) * n]
}

/// Plain f64 dot product (the f32 helpers in `gust_sparse::ops` widen;
/// here everything already is f64).
fn dot_f64(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(&x, &y)| x * y).sum()
}
