//! Conjugate-gradient solver running its SpMVs on the GUST engine — the
//! paper's §5.3 amortization story made concrete: schedule once, then
//! iterate thousands of SpMVs against the same matrix.
//!
//! Solves the 2D Poisson equation on an n×n grid (the classic five-point
//! stencil, symmetric positive definite).
//!
//! ```sh
//! cargo run --release --example iterative_solver
//! ```

use gust_repro::prelude::*;
use gust_sparse::ops::{axpy, dot, norm2};
use std::time::Instant;

fn main() {
    let grid = 64;
    let a = CsrMatrix::from(&gen::laplacian_2d(grid));
    let n = a.rows();
    println!(
        "Poisson {grid}x{grid}: {n} unknowns, {} non-zeros (density {:.2e})",
        a.nnz(),
        a.density()
    );

    // Preprocess once — this cost amortizes over every CG iteration.
    let gust = Gust::new(GustConfig::new(128));
    let t0 = Instant::now();
    let schedule = gust.schedule(&a);
    println!(
        "scheduled in {:.2} ms ({} colors, predicted utilization {:.1}%)\n",
        t0.elapsed().as_secs_f64() * 1.0e3,
        schedule.total_colors(),
        schedule.predicted_utilization() * 100.0
    );

    // Conjugate gradients on Ax = b with b = A·ones (so x* = ones).
    let ones = vec![1.0f32; n];
    let b = gust.execute(&schedule, &ones).output;

    let mut x = vec![0.0f32; n];
    let mut r = b.clone();
    let mut p = r.clone();
    let mut rs_old = dot(&r, &r);
    let mut accel_cycles: u64 = 0;
    let mut iterations = 0u32;

    for k in 0..1000 {
        // The solver's only matrix operation runs on the accelerator model.
        let run = gust.execute(&schedule, &p);
        accel_cycles += run.report.cycles;
        let ap = run.output;

        let alpha = (rs_old / dot(&p, &ap)) as f32;
        axpy(alpha, &p, &mut x);
        axpy(-alpha, &ap, &mut r);
        let rs_new = dot(&r, &r);
        iterations = k + 1;
        if rs_new.sqrt() < 1.0e-4 {
            break;
        }
        let beta = (rs_new / rs_old) as f32;
        for (pi, &ri) in p.iter_mut().zip(&r) {
            *pi = ri + beta * *pi;
        }
        rs_old = rs_new;
    }

    let err = x
        .iter()
        .map(|&v| (f64::from(v) - 1.0).abs())
        .fold(0.0f64, f64::max);
    println!(
        "CG converged in {iterations} iterations; max |x - 1| = {err:.2e}; residual {:.2e}",
        norm2(&r)
    );
    println!(
        "accelerator time: {accel_cycles} cycles = {:.2} ms at 96 MHz across all SpMVs",
        accel_cycles as f64 / 96.0e6 * 1.0e3
    );
    assert!(err < 1.0e-2, "CG failed to reach the known solution");
    println!("solution verified.");
}
