//! Behavioral model of Serpens (§5.3, Song et al. \[29\]): a state-of-the-art
//! HBM-based FPGA SpMV accelerator.
//!
//! Serpens streams a channel-interleaved, padded sparse format: matrix rows
//! are distributed over 16 HBM channels, each channel delivering one
//! 512-bit flit per cycle — eight `(value, index)` pairs — to eight
//! processing lanes. Rows pad their final flit to the 8-element boundary,
//! and the floating-point accumulators' read-after-write latency forces
//! additional spacing that the Serpens scheduler cannot always hide; this
//! model folds that into a single calibrated `dependency_factor`
//! (default 1.8, set so the published Table 4 cycle counts are reproduced
//! within ~10% on the paper's own matrices — see EXPERIMENTS.md).
//!
//! Unlike the §2 baselines, Serpens runs at its own 223 MHz synthesis
//! clock and has a real preprocessing step (building the padded format),
//! which [`Serpens::preprocess`] performs so the harness can time it, just
//! as Table 4's "Pre." column does.

use crate::model::{AccelRun, SpmvAccelerator};
use gust_sim::{ExecutionReport, MemoryTraffic};
use gust_sparse::CsrMatrix;

/// The Serpens accelerator model (paper configuration: 16 channels × 8
/// lanes, 223 MHz, 46.2 W dynamic).
#[derive(Debug, Clone)]
pub struct Serpens {
    channels: usize,
    lanes_per_channel: usize,
    frequency_hz: f64,
    dependency_factor: f64,
}

/// One element of the padded stream: a `(value, column)` pair, or a
/// padding bubble (`None`) filling a row's final flit.
pub type StreamElement = Option<(f32, u32)>;

/// The preprocessed, channel-interleaved padded format.
///
/// `channels[k]` is the byte-for-byte stream channel `k` would fetch from
/// its HBM pseudo-channel: rows assigned to the channel, each padded to the
/// 8-element flit boundary, preceded by its row header (row index + flit
/// count) in the `row_headers` array.
#[derive(Debug, Clone, PartialEq)]
pub struct SerpensFormat {
    /// Padded `(value, col)` streams per channel.
    pub channels: Vec<Vec<StreamElement>>,
    /// `(row, flits)` headers per channel, in stream order.
    pub row_headers: Vec<Vec<(u32, u32)>>,
    /// Flits queued on each channel (already includes row padding).
    pub per_channel_flits: Vec<u64>,
    /// Elements after padding rows to the flit boundary.
    pub padded_elements: u64,
    /// Original non-zero count.
    pub nnz: u64,
}

impl SerpensFormat {
    /// Padding overhead: padded elements over real non-zeros (≥ 1).
    #[must_use]
    pub fn padding_factor(&self) -> f64 {
        if self.nnz == 0 {
            return 1.0;
        }
        self.padded_elements as f64 / self.nnz as f64
    }
}

impl Default for Serpens {
    fn default() -> Self {
        Self::new()
    }
}

impl Serpens {
    /// Dynamic power measured by the paper's synthesis (§5.3).
    pub const DYNAMIC_POWER_WATTS: f64 = 46.2;

    /// The paper's configuration: 16 channels × 8 lanes at 223 MHz.
    #[must_use]
    pub fn new() -> Self {
        Self {
            channels: 16,
            lanes_per_channel: 8,
            frequency_hz: 223.0e6,
            dependency_factor: 1.8,
        }
    }

    /// Overrides the accumulator-dependency calibration factor (≥ 1).
    ///
    /// # Panics
    ///
    /// Panics if `factor < 1.0`.
    #[must_use]
    pub fn with_dependency_factor(mut self, factor: f64) -> Self {
        assert!(
            factor >= 1.0,
            "dependency factor cannot beat the raw stream"
        );
        self.dependency_factor = factor;
        self
    }

    /// Number of HBM channels feeding matrix data.
    #[must_use]
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Builds the padded channel-interleaved format — Serpens's
    /// preprocessing step, materializing the actual streams each HBM
    /// channel fetches. Wall-clock this call for Table 4's "Pre." column.
    #[must_use]
    pub fn preprocess(&self, a: &CsrMatrix) -> SerpensFormat {
        let lanes = self.lanes_per_channel;
        let mut channels: Vec<Vec<StreamElement>> = vec![Vec::new(); self.channels];
        let mut row_headers: Vec<Vec<(u32, u32)>> = vec![Vec::new(); self.channels];
        let mut per_channel_flits = vec![0u64; self.channels];
        let mut padded_elements = 0u64;
        for r in 0..a.rows() {
            let (cols, vals) = a.row(r);
            if cols.is_empty() {
                continue;
            }
            let k = r % self.channels;
            let flits = cols.len().div_ceil(lanes);
            row_headers[k].push((r as u32, flits as u32));
            let stream = &mut channels[k];
            for (&c, &v) in cols.iter().zip(vals) {
                stream.push(Some((v, c)));
            }
            // Pad the row's final flit to the 8-element boundary.
            let pad = flits * lanes - cols.len();
            stream.extend(std::iter::repeat_n(None, pad));
            per_channel_flits[k] += flits as u64;
            padded_elements += (flits * lanes) as u64;
        }
        SerpensFormat {
            channels,
            row_headers,
            per_channel_flits,
            padded_elements,
            nnz: a.nnz() as u64,
        }
    }

    /// Execution cycles for a preprocessed format: the busiest channel's
    /// flit count, inflated by the dependency factor, plus a drain.
    #[must_use]
    pub fn cycles(&self, format: &SerpensFormat) -> u64 {
        let max_flits = format.per_channel_flits.iter().copied().max().unwrap_or(0);
        ((max_flits as f64) * self.dependency_factor).ceil() as u64 + 32
    }

    fn base_report(&self, a: &CsrMatrix) -> ExecutionReport {
        let format = self.preprocess(a);
        let cycles = self.cycles(&format);
        let nnz = a.nnz() as u64;

        let mut report = ExecutionReport::new(self.name(), self.length(), self.arithmetic_units());
        report.cycles = cycles;
        report.nnz_processed = nnz;
        report.busy_unit_cycles = 2 * nnz;
        report.stall_cycles = cycles.saturating_sub(nnz / (self.length() as u64).max(1));
        report.multiplies = nnz;
        report.additions = nnz;
        report.frequency_hz = self.frequency_hz;
        report.traffic = MemoryTraffic {
            // Padded stream: value + index per (padded) element, plus the
            // dense vector per channel group and the result write-back.
            off_chip_reads: 2 * format.padded_elements + a.cols() as u64,
            off_chip_writes: a.rows() as u64,
            on_chip_reads: nnz,
            on_chip_writes: a.cols() as u64,
        };
        report
    }
}

impl SpmvAccelerator for Serpens {
    fn name(&self) -> String {
        format!("serpens-{}ch", self.channels)
    }

    fn length(&self) -> usize {
        self.channels * self.lanes_per_channel
    }

    fn arithmetic_units(&self) -> usize {
        2 * self.length()
    }

    fn frequency_hz(&self) -> f64 {
        self.frequency_hz
    }

    fn execute(&self, a: &CsrMatrix, x: &[f32]) -> AccelRun {
        assert_eq!(x.len(), a.cols(), "input vector length mismatch");
        // Consume the preprocessed streams exactly as the PEs would: each
        // channel walks its padded flits, accumulating per row header.
        let format = self.preprocess(a);
        let lanes = self.lanes_per_channel;
        let mut y = vec![0.0f32; a.rows()];
        for k in 0..self.channels {
            let stream = &format.channels[k];
            let mut pos = 0usize;
            for &(row, flits) in &format.row_headers[k] {
                let mut acc = 0.0f32;
                for _ in 0..flits as usize * lanes {
                    if let Some((v, c)) = stream[pos] {
                        acc += v * x[c as usize];
                    }
                    pos += 1;
                }
                y[row as usize] = acc;
            }
            debug_assert_eq!(pos, stream.len(), "stream fully consumed");
        }
        AccelRun {
            output: y,
            report: self.base_report(a),
        }
    }

    fn report(&self, a: &CsrMatrix) -> ExecutionReport {
        self.base_report(a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gust_sparse::prelude::*;

    #[test]
    fn paper_configuration() {
        let s = Serpens::new();
        assert_eq!(s.length(), 128);
        assert_eq!(s.channels(), 16);
        assert!((s.frequency_hz() - 223.0e6).abs() < 1.0);
    }

    #[test]
    fn padding_rounds_rows_to_flits() {
        // One row of 9 nnz -> 2 flits -> 16 padded elements.
        let coo = CooMatrix::from_triplets(1, 16, (0..9).map(|c| (0, c, 1.0)).collect::<Vec<_>>())
            .unwrap();
        let a = CsrMatrix::from(&coo);
        let fmt = Serpens::new().preprocess(&a);
        assert_eq!(fmt.padded_elements, 16);
        assert_eq!(fmt.per_channel_flits[0], 2);
    }

    #[test]
    fn short_rows_waste_most_of_a_flit() {
        // 32 rows of 1 nnz each: every row occupies a full 8-wide flit.
        let a = CsrMatrix::identity(32);
        let fmt = Serpens::new().preprocess(&a);
        assert_eq!(fmt.padded_elements, 32 * 8);
    }

    #[test]
    fn cycles_track_busiest_channel() {
        let s = Serpens::new().with_dependency_factor(1.0);
        // 160 rows: 10 per channel, 1 flit each.
        let a = CsrMatrix::identity(160);
        let fmt = s.preprocess(&a);
        assert!(fmt.per_channel_flits.iter().all(|&f| f == 10));
        assert_eq!(s.cycles(&fmt), 10 + 32);
    }

    #[test]
    fn dependency_factor_inflates_cycles() {
        let a = CsrMatrix::from(&gen::uniform(256, 256, 4000, 1));
        let base = Serpens::new().with_dependency_factor(1.0).report(&a).cycles;
        let padded = Serpens::new().with_dependency_factor(2.0).report(&a).cycles;
        assert!(padded > base);
    }

    #[test]
    fn output_matches_reference() {
        let a = CsrMatrix::from(&gen::rmat(80, 80, 700, 4));
        let x: Vec<f32> = (0..80).map(|i| (i as f32).sin()).collect();
        let run = Serpens::new().execute(&a, &x);
        assert_vectors_close(&run.output, &reference_spmv(&a, &x), 1e-4);
    }

    #[test]
    fn stream_reconstructs_the_matrix() {
        let a = CsrMatrix::from(&gen::uniform(40, 40, 250, 8));
        let fmt = Serpens::new().preprocess(&a);
        let mut rebuilt: Vec<(u32, u32, u32)> = Vec::new();
        for k in 0..fmt.channels.len() {
            let mut pos = 0usize;
            for &(row, flits) in &fmt.row_headers[k] {
                for _ in 0..flits as usize * 8 {
                    if let Some((v, c)) = fmt.channels[k][pos] {
                        rebuilt.push((row, c, v.to_bits()));
                    }
                    pos += 1;
                }
            }
        }
        rebuilt.sort_unstable();
        let mut expected: Vec<(u32, u32, u32)> = a
            .iter()
            .map(|(r, c, v)| (r as u32, c as u32, v.to_bits()))
            .collect();
        expected.sort_unstable();
        assert_eq!(rebuilt, expected);
    }

    #[test]
    fn padding_factor_reflects_row_lengths() {
        // Single-nnz rows pad 8x; full-flit rows pad 1x.
        let short = CsrMatrix::identity(32);
        assert!((Serpens::new().preprocess(&short).padding_factor() - 8.0).abs() < 1e-12);
        let full = CsrMatrix::from(&gen::k_regular(32, 32, 8, 1));
        assert!((Serpens::new().preprocess(&full).padding_factor() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn runs_at_its_own_clock() {
        let a = CsrMatrix::identity(64);
        let r = Serpens::new().report(&a);
        assert!((r.frequency_hz - 223.0e6).abs() < 1.0);
    }

    #[test]
    fn execute_report_equals_report() {
        let a = CsrMatrix::from(&gen::uniform(30, 30, 90, 7));
        let acc = Serpens::new();
        assert_eq!(acc.execute(&a, &[1.0; 30]).report, acc.report(&a));
    }
}
