//! The Fafnir baseline (§2.2, Asgari et al. \[1\]): a near-memory reduction
//! tree over LIL-format columns.
//!
//! A length-`l` Fafnir is a binary tree with `l` leaf multipliers; each
//! internal node at depth `d` owns `l/2^(d+1)` adders (every layer totals
//! `l/2`), so the tree holds `(l/2)·log₂l` adders — the paper's comparison
//! point uses `l = 128`: 128 multipliers + 448 adders. Leaves stream matrix
//! columns (one column segment per leaf, `col mod l`); products carry their
//! row index upward and nodes reduce matching rows on the fly. Peak
//! utilization is therefore `4/log₂l` (§2.2), reached only if every leaf
//! streams every cycle; imbalanced column loads push it far lower.

use crate::model::{AccelRun, SpmvAccelerator};
use gust_sim::{ExecutionReport, MemoryTraffic};
use gust_sparse::{CscMatrix, CsrMatrix};

/// A length-`l` Fafnir tree at the paper's 96 MHz clock.
///
/// # Example
///
/// ```
/// use gust_accel::{Fafnir, SpmvAccelerator};
/// use gust_sparse::CsrMatrix;
///
/// let a = CsrMatrix::identity(8);
/// let run = Fafnir::new(8).execute(&a, &[3.0; 8]);
/// assert_eq!(run.output, vec![3.0; 8]);
/// ```
#[derive(Debug, Clone)]
pub struct Fafnir {
    length: usize,
    frequency_hz: f64,
}

impl Fafnir {
    /// Creates a tree with `l` leaves.
    ///
    /// # Panics
    ///
    /// Panics if `length < 2` or `length` is not a power of two (the tree
    /// is binary and balanced).
    #[must_use]
    pub fn new(length: usize) -> Self {
        assert!(
            length >= 2 && length.is_power_of_two(),
            "Fafnir length must be a power of two >= 2"
        );
        Self {
            length,
            frequency_hz: 96.0e6,
        }
    }

    /// Overrides the clock frequency.
    #[must_use]
    pub fn with_frequency(mut self, frequency_hz: f64) -> Self {
        assert!(
            frequency_hz.is_finite() && frequency_hz > 0.0,
            "frequency must be positive and finite"
        );
        self.frequency_hz = frequency_hz;
        self
    }

    fn depth(&self) -> u64 {
        self.length.trailing_zeros() as u64
    }

    /// Per-leaf load: leaf `j` streams every column `≡ j (mod l)`.
    fn leaf_loads(&self, a: &CsrMatrix) -> Vec<u64> {
        let mut loads = vec![0u64; self.length];
        let stats = gust_sparse::MatrixStats::from_csr(a);
        for (col, &nnz) in stats.col_nnz().iter().enumerate() {
            loads[col % self.length] += nnz as u64;
        }
        loads
    }

    fn base_report(&self, a: &CsrMatrix) -> ExecutionReport {
        let loads = self.leaf_loads(a);
        let max_load = loads.iter().copied().max().unwrap_or(0);
        let cycles = max_load + self.depth() + 1;
        let nnz = a.nnz() as u64;

        let mut report = ExecutionReport::new(self.name(), self.length, self.arithmetic_units());
        report.cycles = cycles;
        report.nnz_processed = nnz;
        report.busy_unit_cycles = 2 * nnz; // leaf multiply + one reduction
        report.stall_cycles = loads.iter().map(|&ld| max_load - ld).sum();
        report.multiplies = nnz;
        report.additions = nnz;
        report.frequency_hz = self.frequency_hz;
        report.traffic = MemoryTraffic {
            // LIL format: value + row index per non-zero, plus the vector
            // operand fetched per leaf element.
            off_chip_reads: 3 * nnz,
            off_chip_writes: a.rows() as u64,
            on_chip_reads: 0,
            on_chip_writes: 0,
        };
        report
    }
}

impl SpmvAccelerator for Fafnir {
    fn name(&self) -> String {
        format!("fafnir-{}", self.length)
    }

    fn length(&self) -> usize {
        self.length
    }

    fn arithmetic_units(&self) -> usize {
        // l leaf multipliers + l/2 adders per layer × log2(l) layers
        // (l = 128: 128 + 448 = 576, the paper's §4 configuration).
        self.length + (self.length / 2) * self.length.trailing_zeros() as usize
    }

    fn frequency_hz(&self) -> f64 {
        self.frequency_hz
    }

    fn execute(&self, a: &CsrMatrix, x: &[f32]) -> AccelRun {
        assert_eq!(x.len(), a.cols(), "input vector length mismatch");
        // Column-major accumulation mirrors the leaf-streaming order: leaf
        // j contributes columns j, j+l, … left-to-right; the tree merges by
        // row index.
        let csc = CscMatrix::from(a);
        let mut y = vec![0.0f32; a.rows()];
        for leaf in 0..self.length {
            let mut col = leaf;
            while col < a.cols() {
                let (rows, vals) = csc.col(col);
                for (&r, &v) in rows.iter().zip(vals) {
                    y[r as usize] += v * x[col];
                }
                col += self.length;
            }
        }
        AccelRun {
            output: y,
            report: self.base_report(a),
        }
    }

    fn report(&self, a: &CsrMatrix) -> ExecutionReport {
        self.base_report(a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gust_sparse::prelude::*;

    #[test]
    fn paper_configuration_has_448_adders() {
        let f = Fafnir::new(128);
        assert_eq!(f.arithmetic_units(), 128 + 448);
    }

    #[test]
    fn cycles_are_max_leaf_load_plus_drain() {
        // 8 columns, l = 4: leaf 0 gets cols {0,4}, leaf 1 {1,5}, …
        // Load each col 0 with 5 nnz, others 1 nnz.
        let mut coo = CooMatrix::new(8, 8);
        for r in 0..5 {
            coo.push(r, 0, 1.0).unwrap();
        }
        for c in 1..8 {
            coo.push(0, c, 1.0).unwrap();
        }
        let a = CsrMatrix::from(&coo);
        let r = Fafnir::new(4).report(&a);
        // Leaf 0: col0 (5) + col4 (1) = 6; depth log2(4) = 2; +1.
        assert_eq!(r.cycles, 6 + 2 + 1);
    }

    #[test]
    fn output_matches_reference() {
        let a = CsrMatrix::from(&gen::power_law(64, 64, 600, 1.9, 7));
        let x: Vec<f32> = (0..64).map(|i| (i as f32 % 13.0) - 6.0).collect();
        let run = Fafnir::new(16).execute(&a, &x);
        assert_vectors_close(&run.output, &reference_spmv(&a, &x), 1e-4);
    }

    #[test]
    fn peak_utilization_is_4_over_log_l() {
        // A perfectly balanced dense-column matrix keeps every leaf busy:
        // utilization approaches 2·nnz / (units × nnz/l) = 2l/units ≈ 4/log₂l.
        let a = CsrMatrix::from(&gen::k_regular(256, 16, 16, 1)); // all cols full
        let f = Fafnir::new(16);
        let r = f.report(&a);
        let peak = 2.0 * 16.0 / f.arithmetic_units() as f64;
        assert!((r.utilization() - peak).abs() < 0.05, "{}", r.utilization());
        let four_over_log = 4.0 / 4.0; // log2(16) = 4
        assert!(peak <= four_over_log);
    }

    #[test]
    fn imbalanced_columns_hurt_utilization() {
        // All nnz in one column segment: only one leaf works.
        let mut coo = CooMatrix::new(64, 64);
        for r in 0..64 {
            coo.push(r, 0, 1.0).unwrap();
        }
        let a = CsrMatrix::from(&coo);
        let balanced = CsrMatrix::from(&gen::k_regular(64, 64, 1, 2));
        let f = Fafnir::new(8);
        assert!(f.report(&a).utilization() < f.report(&balanced).utilization());
    }

    #[test]
    fn execute_report_equals_report() {
        let a = CsrMatrix::from(&gen::uniform(30, 30, 90, 6));
        let acc = Fafnir::new(8);
        assert_eq!(acc.execute(&a, &[1.0; 30]).report, acc.report(&a));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_panics() {
        let _ = Fafnir::new(12);
    }
}
