//! The 1D systolic array baseline (§2.1, Kung & Leiserson \[17\]).
//!
//! A strip of `l` MAC processing elements. Each pass assigns one matrix row
//! per PE; the *dense* row streams top-to-bottom over `n` cycles while the
//! vector rides left-to-right, so zeros consume cycles exactly like
//! non-zeros — the root of the design's poor utilization on sparse data.
//! Execution takes `m·n/l + l + 1` cycles (Table 1): `⌈m/l⌉` passes of `n`
//! cycles plus `l` cycles of vector skew and one dump.

use crate::model::{AccelRun, SpmvAccelerator};
use gust_sim::{ExecutionReport, MemoryTraffic};
use gust_sparse::CsrMatrix;

/// A length-`l` 1D systolic array at the paper's 96 MHz synthesis clock.
///
/// # Example
///
/// ```
/// use gust_accel::{Systolic1d, SpmvAccelerator};
/// use gust_sparse::CsrMatrix;
///
/// let a = CsrMatrix::identity(8);
/// let run = Systolic1d::new(4).execute(&a, &[2.0; 8]);
/// assert_eq!(run.output, vec![2.0; 8]);
/// // 2 passes × 8 columns + 4 skew + 1 dump.
/// assert_eq!(run.report.cycles, 8 * 8 / 4 + 4 + 1);
/// ```
#[derive(Debug, Clone)]
pub struct Systolic1d {
    length: usize,
    frequency_hz: f64,
}

impl Systolic1d {
    /// Creates a length-`l` array.
    ///
    /// # Panics
    ///
    /// Panics if `length` is zero.
    #[must_use]
    pub fn new(length: usize) -> Self {
        assert!(length > 0, "array length must be non-zero");
        Self {
            length,
            frequency_hz: 96.0e6,
        }
    }

    /// Overrides the clock frequency.
    #[must_use]
    pub fn with_frequency(mut self, frequency_hz: f64) -> Self {
        assert!(
            frequency_hz.is_finite() && frequency_hz > 0.0,
            "frequency must be positive and finite"
        );
        self.frequency_hz = frequency_hz;
        self
    }

    fn base_report(&self, a: &CsrMatrix) -> ExecutionReport {
        let l = self.length as u64;
        let (m, n) = (a.rows() as u64, a.cols() as u64);
        let passes = m.div_ceil(l);
        let cycles = passes * n + l + 1;
        let nnz = a.nnz() as u64;

        let mut report = ExecutionReport::new(self.name(), self.length, self.arithmetic_units());
        report.cycles = cycles;
        report.nnz_processed = nnz;
        // Useful work: one multiply + one accumulate per non-zero; all other
        // PE-cycles chew zeros.
        report.busy_unit_cycles = 2 * nnz;
        report.stall_cycles = cycles.saturating_sub(nnz.div_ceil(l));
        report.multiplies = nnz;
        report.additions = nnz;
        report.frequency_hz = self.frequency_hz;
        report.traffic = MemoryTraffic {
            // The dense matrix streams from memory: every cell, zero or not,
            // plus one full vector broadcast per pass.
            off_chip_reads: m * n + passes * n,
            off_chip_writes: m,
            on_chip_reads: 0,
            on_chip_writes: 0,
        };
        report
    }
}

impl SpmvAccelerator for Systolic1d {
    fn name(&self) -> String {
        format!("1d-systolic-{}", self.length)
    }

    fn length(&self) -> usize {
        self.length
    }

    fn arithmetic_units(&self) -> usize {
        // Each MAC PE holds one multiplier and one adder.
        2 * self.length
    }

    fn frequency_hz(&self) -> f64 {
        self.frequency_hz
    }

    fn execute(&self, a: &CsrMatrix, x: &[f32]) -> AccelRun {
        assert_eq!(x.len(), a.cols(), "input vector length mismatch");
        let l = self.length;
        let mut y = vec![0.0f32; a.rows()];

        // Pass p maps rows p*l .. p*l+l-1 onto the PEs; the dense stream
        // walks all n columns. Only non-zero cells do useful work, which is
        // what the CSR row iteration visits — each PE accumulates its row
        // in stream order, exactly as the hardware would.
        for pass_start in (0..a.rows()).step_by(l) {
            let pass_end = (pass_start + l).min(a.rows());
            for (r, slot) in y.iter_mut().enumerate().take(pass_end).skip(pass_start) {
                let (cols, vals) = a.row(r);
                let mut acc = 0.0f32;
                for (&c, &v) in cols.iter().zip(vals) {
                    acc += v * x[c as usize];
                }
                *slot = acc;
            }
        }

        AccelRun {
            output: y,
            report: self.base_report(a),
        }
    }

    fn report(&self, a: &CsrMatrix) -> ExecutionReport {
        self.base_report(a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gust_sparse::prelude::*;

    #[test]
    fn cycle_formula_matches_table_1() {
        let a = CsrMatrix::from(&gen::uniform(64, 64, 100, 1));
        let r = Systolic1d::new(16).report(&a);
        assert_eq!(r.cycles, 64 * 64 / 16 + 16 + 1);
    }

    #[test]
    fn ragged_row_count_rounds_passes_up() {
        let a = CsrMatrix::from(&gen::uniform(65, 64, 100, 1));
        let r = Systolic1d::new(16).report(&a);
        // 5 passes of 64 columns.
        assert_eq!(r.cycles, 5 * 64 + 16 + 1);
    }

    #[test]
    fn output_matches_reference() {
        let a = CsrMatrix::from(&gen::power_law(50, 40, 300, 2.0, 2));
        let x: Vec<f32> = (0..40).map(|i| (i as f32) * 0.25 - 4.0).collect();
        let run = Systolic1d::new(8).execute(&a, &x);
        assert_vectors_close(&run.output, &reference_spmv(&a, &x), 1e-4);
    }

    #[test]
    fn utilization_approximates_density() {
        // 1D streams the dense matrix, so utilization ≈ nnz / (m·n) for
        // large matrices — the paper's 0.08% geometric mean is just the
        // suite's geometric-mean density.
        let a = CsrMatrix::from(&gen::uniform(512, 512, 2621, 3)); // density 1e-2
        let r = Systolic1d::new(256).report(&a);
        // The l+1 skew/dump tail drags utilization slightly below density.
        assert!(r.utilization() <= 0.0101, "{}", r.utilization());
        assert!(r.utilization() > 0.007, "{}", r.utilization());
    }

    #[test]
    fn execute_report_equals_report() {
        let a = CsrMatrix::from(&gen::uniform(30, 30, 90, 4));
        let acc = Systolic1d::new(8);
        assert_eq!(acc.execute(&a, &[1.0; 30]).report, acc.report(&a));
    }

    #[test]
    fn traffic_streams_dense_matrix() {
        let a = CsrMatrix::from(&gen::uniform(32, 32, 64, 5));
        let r = Systolic1d::new(8).report(&a);
        assert!(r.traffic.off_chip_reads >= 32 * 32);
        assert_eq!(r.traffic.off_chip_writes, 32);
    }
}
