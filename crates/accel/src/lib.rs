//! Baseline SpMV accelerator simulators for the GUST reproduction.
//!
//! The paper's §2 surveys four prior designs whose utilization ceilings
//! motivate GUST, and §5.3 compares against Serpens. This crate models all
//! five:
//!
//! | Design | Paper §  | Hardware (length `l`) | Exec-time model (Table 1) |
//! |---|---|---|---|
//! | [`Systolic1d`] | §2.1 \[17\] | strip of `l` MAC PEs | `m·n/l + l + 1` |
//! | [`FlexTpu`] | §2.1 \[10\] | `g×g` grid (`g² = l` PEs) | `≈ 3·#NZ/l` per packing |
//! | [`AdderTree`] | §2.2 \[4\] | `l` multipliers + `l−1` adders | `m·n/l + log₂l + 1` |
//! | [`Fafnir`] | §2.2 \[1\] | `l` leaves + `(l/2)·log₂l` adders | `max leaf load + log₂l + 1` |
//! | [`Serpens`] | §5.3 \[29\] | 16 HBM channels × 8 lanes | padded-flit stream |
//!
//! Each implements [`SpmvAccelerator`]: `execute` produces the actual output
//! vector (validated against the reference kernel in this crate's tests) and
//! a cycle/utilization report; `report` is the same accounting without
//! computing `y`, cheap enough for the paper-scale sweeps.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod adder_tree;
pub mod fafnir;
pub mod flex_tpu;
pub mod model;
pub mod serpens;
pub mod systolic_1d;
pub mod wavefront;

pub use adder_tree::AdderTree;
pub use fafnir::Fafnir;
pub use flex_tpu::FlexTpu;
pub use model::{AccelRun, SpmvAccelerator};
pub use serpens::Serpens;
pub use systolic_1d::Systolic1d;

/// Common imports for working with this crate.
pub mod prelude {
    pub use crate::adder_tree::AdderTree;
    pub use crate::fafnir::Fafnir;
    pub use crate::flex_tpu::FlexTpu;
    pub use crate::model::{AccelRun, SpmvAccelerator};
    pub use crate::serpens::Serpens;
    pub use crate::systolic_1d::Systolic1d;
}
