//! The Flex-TPU baseline (§2.1, He et al. \[10\]): a 2D systolic grid
//! repurposed for SpMV.
//!
//! Only non-zero values are mapped onto the `g × g` grid, packed row-major
//! with *Separator* PEs marking matrix-row boundaries. Each partition runs
//! three `g`-cycle phases — reconfiguration (loading values and separator
//! flags), calculation (vector elements flow top-to-bottom, products flow
//! left into the separators) and dump — so a partition costs `3g` cycles
//! and the whole SpMV `≈ 3·#NZ/l` with `l = g²` PEs (Table 1). Each PE
//! fires once per partition while the partition lasts `3g` cycles, capping
//! utilization at `1/(3g)` — 2.1% for the paper's 16×16 normalization,
//! which is why Table 1 reports only 1.45%.

use crate::model::{AccelRun, SpmvAccelerator};
use gust_sim::{ExecutionReport, MemoryTraffic};
use gust_sparse::CsrMatrix;

/// A `g × g` Flex-TPU (`g²` PEs). The paper's §4 comparison normalizes all
/// designs to 256+256 arithmetic units, i.e. `g = 16`.
///
/// # Example
///
/// ```
/// use gust_accel::{FlexTpu, SpmvAccelerator};
/// use gust_sparse::CsrMatrix;
///
/// let a = CsrMatrix::identity(8);
/// let run = FlexTpu::with_grid(4).execute(&a, &[1.0; 8]);
/// assert_eq!(run.output, vec![1.0; 8]);
/// ```
#[derive(Debug, Clone)]
pub struct FlexTpu {
    grid: usize,
    frequency_hz: f64,
}

impl FlexTpu {
    /// Creates a grid with side `g`.
    ///
    /// # Panics
    ///
    /// Panics if `g` is zero.
    #[must_use]
    pub fn with_grid(g: usize) -> Self {
        assert!(g > 0, "grid side must be non-zero");
        Self {
            grid: g,
            frequency_hz: 96.0e6,
        }
    }

    /// Creates the grid whose PE count is closest to `units` multipliers
    /// (`g = ⌊√units⌋`): the paper's "256 adders and 256 multipliers"
    /// normalization gives `g = 16`.
    #[must_use]
    pub fn with_units(units: usize) -> Self {
        let g = (units as f64).sqrt().floor() as usize;
        Self::with_grid(g.max(1))
    }

    /// Overrides the clock frequency.
    #[must_use]
    pub fn with_frequency(mut self, frequency_hz: f64) -> Self {
        assert!(
            frequency_hz.is_finite() && frequency_hz > 0.0,
            "frequency must be positive and finite"
        );
        self.frequency_hz = frequency_hz;
        self
    }

    /// Grid side `g`.
    #[must_use]
    pub fn grid(&self) -> usize {
        self.grid
    }

    /// Number of grid slots consumed: one per non-zero plus one separator
    /// per non-empty matrix row (the Separator PE that accumulates it).
    fn slots_needed(a: &CsrMatrix) -> u64 {
        let separators = (0..a.rows()).filter(|&r| a.row_nnz(r) > 0).count() as u64;
        a.nnz() as u64 + separators
    }

    fn base_report(&self, a: &CsrMatrix) -> ExecutionReport {
        let g = self.grid as u64;
        let slots = Self::slots_needed(a);
        let partitions = slots.div_ceil(g * g).max(1);
        let cycles = partitions * 3 * g;
        let nnz = a.nnz() as u64;

        let mut report = ExecutionReport::new(self.name(), self.grid, self.arithmetic_units());
        report.cycles = cycles;
        report.nnz_processed = nnz;
        report.busy_unit_cycles = 2 * nnz; // multiply in a Normal PE + accumulate in a Separator
        report.stall_cycles = cycles.saturating_sub(nnz / g.max(1));
        report.multiplies = nnz;
        report.additions = nnz;
        report.frequency_hz = self.frequency_hz;
        report.traffic = MemoryTraffic {
            // Values + separator flags per reconfiguration, vector streamed
            // per partition, results dumped per row.
            off_chip_reads: slots * 2 + partitions * a.cols() as u64,
            off_chip_writes: a.rows() as u64,
            on_chip_reads: 0,
            on_chip_writes: 0,
        };
        report
    }
}

impl SpmvAccelerator for FlexTpu {
    fn name(&self) -> String {
        format!("flex-tpu-{}x{}", self.grid, self.grid)
    }

    fn length(&self) -> usize {
        self.grid * self.grid
    }

    fn arithmetic_units(&self) -> usize {
        // Each PE multiplies and accumulates: count both, like the other
        // designs in the §4 normalization.
        2 * self.grid * self.grid
    }

    fn frequency_hz(&self) -> f64 {
        self.frequency_hz
    }

    fn execute(&self, a: &CsrMatrix, x: &[f32]) -> AccelRun {
        assert_eq!(x.len(), a.cols(), "input vector length mismatch");
        // Functional model of the pack-and-stream: row segments accumulate
        // left-to-right into their Separator PE, in packing order, f32.
        let mut y = vec![0.0f32; a.rows()];
        for (r, slot) in y.iter_mut().enumerate() {
            let (cols, vals) = a.row(r);
            let mut acc = 0.0f32;
            for (&c, &v) in cols.iter().zip(vals) {
                acc += v * x[c as usize];
            }
            *slot = acc;
        }
        AccelRun {
            output: y,
            report: self.base_report(a),
        }
    }

    fn report(&self, a: &CsrMatrix) -> ExecutionReport {
        self.base_report(a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gust_sparse::prelude::*;

    #[test]
    fn partition_cycle_model() {
        // 100 nnz + 10 separators = 110 slots on a 4x4 grid -> 7 partitions
        // of 12 cycles each.
        let a = CsrMatrix::from(&gen::k_regular(10, 40, 10, 1));
        assert_eq!(a.nnz(), 100);
        let r = FlexTpu::with_grid(4).report(&a);
        assert_eq!(r.cycles, 7 * 12);
    }

    #[test]
    fn empty_rows_need_no_separator() {
        let coo = CooMatrix::from_triplets(4, 4, vec![(0, 0, 1.0)]).unwrap();
        let a = CsrMatrix::from(&coo);
        // 1 nnz + 1 separator = 2 slots -> 1 partition on a 2x2 grid.
        let r = FlexTpu::with_grid(2).report(&a);
        assert_eq!(r.cycles, 6);
    }

    #[test]
    fn with_units_256_gives_16x16() {
        let tpu = FlexTpu::with_units(256);
        assert_eq!(tpu.grid(), 16);
        assert_eq!(tpu.arithmetic_units(), 512);
    }

    #[test]
    fn output_matches_reference() {
        let a = CsrMatrix::from(&gen::rmat(60, 60, 500, 2));
        let x: Vec<f32> = (0..60).map(|i| ((i * 7) % 11) as f32 * 0.3).collect();
        let run = FlexTpu::with_grid(4).execute(&a, &x);
        assert_vectors_close(&run.output, &reference_spmv(&a, &x), 1e-4);
    }

    #[test]
    fn utilization_ceiling_is_one_over_3g() {
        // During a partition's g-cycle calculation phase each of the g² PEs
        // fires once, and the reconfigure/dump phases triple the cycle
        // count, so utilization can never exceed 1/(3g) — 2.1% for the
        // paper's 16×16 grid, consistent with its reported 1.45% mean.
        let a = CsrMatrix::from(&gen::uniform(64, 64, 4096, 3));
        let r = FlexTpu::with_grid(16).report(&a);
        let ceiling = 1.0 / (3.0 * 16.0);
        assert!(r.utilization() <= ceiling * 1.01, "{}", r.utilization());
        assert!(r.utilization() > ceiling * 0.5, "{}", r.utilization());
    }

    #[test]
    fn execute_report_equals_report() {
        let a = CsrMatrix::from(&gen::uniform(30, 30, 90, 4));
        let acc = FlexTpu::with_grid(4);
        assert_eq!(acc.execute(&a, &[1.0; 30]).report, acc.report(&a));
    }
}
