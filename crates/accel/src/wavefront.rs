//! PE-level wavefront simulation of the 1D systolic array.
//!
//! [`crate::Systolic1d`] uses the closed-form cycle model of Table 1; this
//! module walks the actual wavefront — the vector element entering PE 0
//! reaches PE `j` after `j` hops while the dense matrix column streams
//! top-to-bottom — and is the evidence that the closed form is the right
//! count. Quadratic in matrix size, so tests use it at small scale.

use gust_sim::{Clock, UnitCounter};
use gust_sparse::{CsrMatrix, DenseMatrix};

/// Result of a wavefront simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct WavefrontRun {
    /// Output vector, accumulated PE by PE in stream order.
    pub output: Vec<f32>,
    /// Total cycles including skew fill and dump.
    pub cycles: u64,
    /// Useful (non-zero × non-zero) MAC unit-cycles, counting the
    /// multiplier and adder halves separately like the fast model.
    pub busy_unit_cycles: u64,
}

/// Simulates a length-`l` 1D systolic array cycle by cycle.
///
/// Pass `p` maps matrix rows `p·l ..` onto the PEs. Within a pass, at cycle
/// `t` PE `j` multiplies its row's element for column `t − j` (dense
/// stream: zeros included, they just do no useful work) with the vector
/// element arriving from its left neighbour.
///
/// # Panics
///
/// Panics if `x.len() != a.cols()` or `l == 0`.
#[must_use]
pub fn simulate_1d(a: &CsrMatrix, x: &[f32], l: usize) -> WavefrontRun {
    assert!(l > 0, "array length must be non-zero");
    assert_eq!(x.len(), a.cols(), "input vector length mismatch");
    let dense = DenseMatrix::from(a);
    let n = a.cols();
    let mut clock = Clock::new();
    let mut busy = UnitCounter::new("pe-macs", l.max(1));
    let mut y = vec![0.0f32; a.rows()];

    let passes = a.rows().div_ceil(l);
    for pass in 0..passes {
        let base = pass * l;
        let pe_rows: Vec<Option<usize>> = (0..l)
            .map(|j| {
                let r = base + j;
                (r < a.rows()).then_some(r)
            })
            .collect();
        let mut acc = vec![0.0f32; l];
        // The wavefront: cycle t of the pass delivers column (t - j) to
        // PE j, so the pass computes over an (n + l - 1)-cycle window.
        // Consecutive passes overlap their skew tails (PE 0 starts pass
        // p+1 while PE l-1 finishes pass p), so the clock advances only n
        // per pass, plus the final pass's l-cycle drain — the closed form
        // m·n/l + l + 1.
        for t in 0..n + l - 1 {
            let mut busy_now = 0usize;
            for (j, pe_row) in pe_rows.iter().enumerate() {
                let Some(row) = pe_row else { continue };
                let Some(col) = t.checked_sub(j) else {
                    continue;
                };
                if col >= n {
                    continue;
                }
                let m = dense.get(*row, col);
                let v = x[col];
                if m != 0.0 {
                    acc[j] += m * v;
                    busy_now += 1;
                }
            }
            // A busy PE exercises both its multiplier and its adder.
            busy.record_busy(busy_now);
            busy.record_busy(busy_now);
        }
        clock.tick_by(n as u64);
        for (j, pe_row) in pe_rows.iter().enumerate() {
            if let Some(row) = pe_row {
                y[*row] = acc[j];
            }
        }
    }
    clock.tick_by(l as u64); // final pass's skew drain
    clock.tick(); // dump

    WavefrontRun {
        output: y,
        cycles: clock.now(),
        busy_unit_cycles: busy.busy_unit_cycles(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SpmvAccelerator;
    use crate::systolic_1d::Systolic1d;
    use gust_sparse::prelude::*;

    #[test]
    fn wavefront_matches_reference_output() {
        let a = CsrMatrix::from(&gen::uniform(24, 20, 120, 1));
        let x: Vec<f32> = (0..20).map(|i| (i % 7) as f32 * 0.5 - 1.0).collect();
        let run = simulate_1d(&a, &x, 8);
        assert_vectors_close(&run.output, &reference_spmv(&a, &x), 1e-4);
    }

    #[test]
    fn wavefront_cycles_match_the_closed_form() {
        for (rows, cols, l) in [(16usize, 16usize, 4usize), (24, 20, 8), (9, 30, 3)] {
            let a = CsrMatrix::from(&gen::uniform(rows, cols, rows * 2, 2));
            let x = vec![1.0f32; cols];
            let run = simulate_1d(&a, &x, l);
            let formula = Systolic1d::new(l).report(&a).cycles;
            assert_eq!(
                run.cycles, formula,
                "wavefront vs closed form at {rows}x{cols}, l={l}"
            );
        }
    }

    #[test]
    fn wavefront_busy_cycles_equal_2nnz() {
        let a = CsrMatrix::from(&gen::power_law(32, 32, 180, 1.9, 3));
        let x: Vec<f32> = (0..32).map(|i| i as f32 + 1.0).collect();
        let run = simulate_1d(&a, &x, 8);
        assert_eq!(run.busy_unit_cycles, 2 * a.nnz() as u64);
    }

    #[test]
    fn zero_vector_entries_still_count_as_matrix_work() {
        // Utilization counts NZ *matrix* operations; a zero vector operand
        // still occupies the PE (the hardware cannot skip it).
        let a = CsrMatrix::identity(8);
        let run = simulate_1d(&a, &[0.0; 8], 4);
        assert_eq!(run.busy_unit_cycles, 16);
        assert_eq!(run.output, vec![0.0; 8]);
    }

    #[test]
    fn single_pass_includes_skew_and_dump() {
        // 4 rows, 6 cols at l = 4: one pass of 6 + 4 cycles + 1 dump.
        let a = CsrMatrix::from(&gen::uniform(4, 6, 10, 5));
        let run = simulate_1d(&a, &[1.0; 6], 4);
        assert_eq!(run.cycles, 6 + 4 + 1);
    }
}
