//! The common interface every accelerator model implements.

use gust_sim::ExecutionReport;
use gust_sparse::CsrMatrix;

/// Result of executing one SpMV on an accelerator model.
#[derive(Debug, Clone, PartialEq)]
pub struct AccelRun {
    /// The computed `y = A·x`.
    pub output: Vec<f32>,
    /// Cycle / utilization / traffic accounting.
    pub report: ExecutionReport,
}

/// An SpMV accelerator model.
///
/// Implementations provide two paths over the same cycle accounting:
/// [`SpmvAccelerator::execute`] also computes the output vector (used for
/// correctness tests and small runs), while [`SpmvAccelerator::report`]
/// skips it (used by the figure sweeps, where only cycles/utilization
/// matter). The crate's tests pin `execute(..).report == report(..)`.
pub trait SpmvAccelerator {
    /// Short machine-readable design name (e.g. `"1d-systolic-256"`).
    fn name(&self) -> String;

    /// Characteristic length `l` (PEs, leaves or lanes).
    fn length(&self) -> usize;

    /// Total arithmetic units charged for the utilization metric
    /// (§4 normalizes all §2 designs to 256 multipliers + 256 adders,
    /// except Fafnir with 128 + 448).
    fn arithmetic_units(&self) -> usize;

    /// Clock frequency used to convert cycles to seconds.
    fn frequency_hz(&self) -> f64 {
        96.0e6
    }

    /// Cycle-accurate execution producing the output vector.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != a.cols()`.
    fn execute(&self, a: &CsrMatrix, x: &[f32]) -> AccelRun;

    /// Cycle/utilization accounting without computing the output.
    fn report(&self, a: &CsrMatrix) -> ExecutionReport;
}

#[cfg(test)]
mod tests {
    use super::*;

    // The trait must stay object-safe: the bench harness iterates
    // heterogeneous design lists as `Box<dyn SpmvAccelerator>`.
    #[test]
    fn trait_is_object_safe() {
        fn _takes_dyn(_: &dyn SpmvAccelerator) {}
    }

    #[test]
    fn accel_run_is_cloneable_and_comparable() {
        let run = AccelRun {
            output: vec![1.0],
            report: ExecutionReport::new("x", 1, 2),
        };
        assert_eq!(run.clone(), run);
    }
}
