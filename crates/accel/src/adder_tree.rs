//! The balanced adder tree baseline (§2.2, Brent & Kung \[4\]).
//!
//! `l` multipliers feed a binary reduction tree of `l−1` adders. Each cycle
//! maps `l` consecutive cells of one matrix row (dense, zeros included)
//! against the matching vector slice and reduces them; a row of width `n`
//! takes `⌈n/l⌉` cycles, so the whole SpMV takes `m·n/l + log₂l + 1`
//! cycles (Table 1: the `log₂l` is the tree's drain latency).

use crate::model::{AccelRun, SpmvAccelerator};
use gust_sim::{ExecutionReport, MemoryTraffic};
use gust_sparse::CsrMatrix;

/// A length-`l` balanced adder tree at the paper's 96 MHz clock.
///
/// # Example
///
/// ```
/// use gust_accel::{AdderTree, SpmvAccelerator};
/// use gust_sparse::CsrMatrix;
///
/// let a = CsrMatrix::identity(4);
/// let run = AdderTree::new(4).execute(&a, &[1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(run.output, vec![1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(run.report.cycles, 4 * 4 / 4 + 2 + 1);
/// ```
#[derive(Debug, Clone)]
pub struct AdderTree {
    length: usize,
    frequency_hz: f64,
}

impl AdderTree {
    /// Creates a tree with `l` multiplier leaves.
    ///
    /// # Panics
    ///
    /// Panics if `length < 2` (a tree needs at least one adder).
    #[must_use]
    pub fn new(length: usize) -> Self {
        assert!(length >= 2, "adder tree needs at least two leaves");
        Self {
            length,
            frequency_hz: 96.0e6,
        }
    }

    /// Overrides the clock frequency.
    #[must_use]
    pub fn with_frequency(mut self, frequency_hz: f64) -> Self {
        assert!(
            frequency_hz.is_finite() && frequency_hz > 0.0,
            "frequency must be positive and finite"
        );
        self.frequency_hz = frequency_hz;
        self
    }

    fn log2_depth(&self) -> u64 {
        (usize::BITS - (self.length - 1).leading_zeros()) as u64
    }

    fn base_report(&self, a: &CsrMatrix) -> ExecutionReport {
        let l = self.length as u64;
        let (m, n) = (a.rows() as u64, a.cols() as u64);
        let chunks_per_row = n.div_ceil(l);
        let cycles = m * chunks_per_row + self.log2_depth() + 1;
        let nnz = a.nnz() as u64;

        let mut report = ExecutionReport::new(self.name(), self.length, self.arithmetic_units());
        report.cycles = cycles;
        report.nnz_processed = nnz;
        report.busy_unit_cycles = 2 * nnz; // multiply + its reduction
        report.stall_cycles = 0;
        report.multiplies = nnz;
        report.additions = nnz;
        report.frequency_hz = self.frequency_hz;
        report.traffic = MemoryTraffic {
            off_chip_reads: m * n * 2, // dense matrix cell + vector operand
            off_chip_writes: m,
            on_chip_reads: 0,
            on_chip_writes: 0,
        };
        report
    }
}

impl SpmvAccelerator for AdderTree {
    fn name(&self) -> String {
        format!("adder-tree-{}", self.length)
    }

    fn length(&self) -> usize {
        self.length
    }

    fn arithmetic_units(&self) -> usize {
        // l multipliers + (l − 1) reduction adders.
        2 * self.length - 1
    }

    fn frequency_hz(&self) -> f64 {
        self.frequency_hz
    }

    fn execute(&self, a: &CsrMatrix, x: &[f32]) -> AccelRun {
        assert_eq!(x.len(), a.cols(), "input vector length mismatch");
        let l = self.length;
        let mut y = vec![0.0f32; a.rows()];

        // Row by row, l-wide chunks; the tree reduces each chunk pairwise,
        // which we reproduce so the f32 rounding matches hardware order.
        for (r, slot) in y.iter_mut().enumerate() {
            let (cols, vals) = a.row(r);
            let mut acc = 0.0f32;
            let mut chunk = vec![0.0f32; l];
            let mut chunk_base = 0usize;
            let flush = |chunk: &mut Vec<f32>, acc: &mut f32| {
                // Pairwise tree reduction.
                let mut level: Vec<f32> = chunk.clone();
                while level.len() > 1 {
                    level = level
                        .chunks(2)
                        .map(|p| if p.len() == 2 { p[0] + p[1] } else { p[0] })
                        .collect();
                }
                *acc += level[0];
                chunk.iter_mut().for_each(|v| *v = 0.0);
            };
            for (&c, &v) in cols.iter().zip(vals) {
                let c = c as usize;
                while c >= chunk_base + l {
                    flush(&mut chunk, &mut acc);
                    chunk_base += l;
                }
                chunk[c - chunk_base] = v * x[c];
            }
            flush(&mut chunk, &mut acc);
            *slot = acc;
        }

        AccelRun {
            output: y,
            report: self.base_report(a),
        }
    }

    fn report(&self, a: &CsrMatrix) -> ExecutionReport {
        self.base_report(a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gust_sparse::prelude::*;

    #[test]
    fn cycle_formula_matches_table_1() {
        let a = CsrMatrix::from(&gen::uniform(64, 64, 100, 1));
        let r = AdderTree::new(16).report(&a);
        assert_eq!(r.cycles, 64 * (64 / 16) + 4 + 1);
    }

    #[test]
    fn non_power_of_two_width_rounds_chunks_up() {
        let a = CsrMatrix::from(&gen::uniform(10, 20, 30, 2));
        let r = AdderTree::new(16).report(&a);
        // 2 chunks per row, depth ⌈log2 16⌉ = 4.
        assert_eq!(r.cycles, 10 * 2 + 4 + 1);
    }

    #[test]
    fn output_matches_reference() {
        let a = CsrMatrix::from(&gen::banded(40, 40, 6, 300, 3));
        let x: Vec<f32> = (0..40).map(|i| 1.0 - (i as f32) * 0.05).collect();
        let run = AdderTree::new(8).execute(&a, &x);
        assert_vectors_close(&run.output, &reference_spmv(&a, &x), 1e-4);
    }

    #[test]
    fn unit_count_is_2l_minus_1() {
        assert_eq!(AdderTree::new(256).arithmetic_units(), 511);
    }

    #[test]
    fn utilization_tracks_density_like_1d() {
        let a = CsrMatrix::from(&gen::uniform(512, 512, 2621, 4));
        let r = AdderTree::new(256).report(&a);
        assert!(
            (r.utilization() - 0.01).abs() < 0.003,
            "{}",
            r.utilization()
        );
    }

    #[test]
    fn execute_report_equals_report() {
        let a = CsrMatrix::from(&gen::uniform(30, 30, 90, 5));
        let acc = AdderTree::new(8);
        assert_eq!(acc.execute(&a, &[1.0; 30]).report, acc.report(&a));
    }

    #[test]
    fn dense_row_reduces_exactly() {
        // A fully dense 8-wide row at l = 8 reduces in one chunk.
        let coo = CooMatrix::from_triplets(
            1,
            8,
            (0..8).map(|c| (0, c, (c + 1) as f32)).collect::<Vec<_>>(),
        )
        .unwrap();
        let a = CsrMatrix::from(&coo);
        let run = AdderTree::new(8).execute(&a, &[1.0; 8]);
        assert_eq!(run.output, vec![36.0]);
    }
}
