//! Regenerates Fig. 8(a)-(d). `GUST_SCALE=1` for the paper's 16384^2 sweep.
fn main() {
    let scale = gust_bench::env_scale(0.25);
    println!("{}", gust_bench::runners::fig8::run(scale));
}
