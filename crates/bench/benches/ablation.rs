//! Ablations: coloring optimality, load balancing, parallel GUST (§5.5).
fn main() {
    let scale = gust_bench::env_scale(0.25);
    println!("{}", gust_bench::runners::ablation::run(scale));
}
