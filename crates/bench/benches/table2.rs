//! Regenerates Table 2 from the calibrated FPGA resource model.
fn main() {
    println!("{}", gust_bench::runners::table2::run(1.0));
}
