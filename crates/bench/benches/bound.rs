//! Validates the §3.4 statistical bound and the §3.3 naive-vs-1D crossover.
fn main() {
    let scale = gust_bench::env_scale(0.25);
    println!("{}", gust_bench::runners::bound::run(scale));
}
