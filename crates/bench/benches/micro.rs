//! Criterion micro-benchmarks of the reproduction's software components:
//! the scheduler (the paper's "Pre." cost), its three coloring algorithms,
//! the load balancer, the execution engines (seed array-of-structs layout
//! vs. the structure-of-arrays fast path, single and batched) and the
//! reference SpMV kernels (seed scalar chain vs. the unrolled ones) — so
//! every speedup this repo claims is measured, not asserted.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gust::hw::GustPipeline;
use gust::schedule::windows::WindowPlan;
use gust::{ColoringAlgorithm, Gust, GustConfig, SchedulingPolicy};
use gust_bench::legacy;
use gust_bench::workloads::{synthetic, test_vector, SyntheticKind};
use gust_sparse::{CscMatrix, CsrMatrix};
use std::hint::black_box;

fn bench_matrix() -> CsrMatrix {
    synthetic(SyntheticKind::Uniform, 4096, 1.0e-3, 7)
}

fn scheduling(c: &mut Criterion) {
    let m = bench_matrix();
    let mut group = c.benchmark_group("schedule-4096x4096-d1e-3-l256");
    group.sample_size(10);
    for (name, algo) in [
        ("greedy-grouped", ColoringAlgorithm::Grouped),
        ("greedy-verbatim", ColoringAlgorithm::Verbatim),
        ("konig-optimal", ColoringAlgorithm::Konig),
    ] {
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            let gust = Gust::new(GustConfig::new(256).with_coloring(algo));
            b.iter(|| black_box(gust.schedule(black_box(&m))));
        });
    }
    group.bench_function(BenchmarkId::from_parameter("naive-arbitration"), |b| {
        let gust = Gust::new(GustConfig::new(256).with_policy(SchedulingPolicy::Naive));
        b.iter(|| black_box(gust.schedule(black_box(&m))));
    });
    group.finish();
}

fn load_balancing(c: &mut Criterion) {
    let m = synthetic(SyntheticKind::PowerLaw, 4096, 1.0e-3, 8);
    let mut group = c.benchmark_group("load-balance-plan");
    group.sample_size(20);
    for lb in [false, true] {
        group.bench_function(
            BenchmarkId::from_parameter(if lb { "sorted" } else { "natural" }),
            |b| {
                b.iter(|| black_box(WindowPlan::new(black_box(&m), 256, lb)));
            },
        );
    }
    group.finish();
}

fn execution(c: &mut Criterion) {
    let m = bench_matrix();
    let gust = Gust::new(GustConfig::new(256));
    let schedule = gust.schedule(&m);
    let x = test_vector(m.cols());
    let legacy_windows = legacy::legacy_slot_windows(&schedule);
    // One register block of the engine's selected backend (a backend
    // property, currently 8 on both): the pure one-pass batching shape.
    let batch = gust.reg_block();
    let panel = gust_bench::workloads::shifted_panel(&x, batch, 0.125);
    let mut group = c.benchmark_group("execute-4096x4096-d1e-3-l256");
    group.sample_size(20);
    group.bench_function("legacy-aos-engine", |b| {
        b.iter(|| {
            black_box(legacy::legacy_execute(
                black_box(&schedule),
                black_box(&legacy_windows),
                black_box(&x),
            ))
        });
    });
    group.bench_function("fast-engine", |b| {
        b.iter(|| black_box(gust.execute(black_box(&schedule), black_box(&x))));
    });
    group.bench_function("fast-engine-batch-block", |b| {
        let seq = Gust::new(GustConfig::new(256).with_parallelism(Some(1)));
        b.iter(|| black_box(seq.execute_batch(black_box(&schedule), black_box(&panel), batch)));
    });
    group.bench_function("structural-pipeline", |b| {
        b.iter(|| {
            black_box(GustPipeline::run(
                black_box(&schedule),
                black_box(&x),
                96.0e6,
            ))
        });
    });
    group.finish();
}

fn reference_spmv(c: &mut Criterion) {
    let m = bench_matrix();
    let csc = CscMatrix::from(&m);
    let x = test_vector(m.cols());
    let mut group = c.benchmark_group("reference-spmv-4096");
    group.bench_function("csr-legacy-scalar", |b| {
        b.iter(|| black_box(legacy::legacy_csr_spmv(black_box(&m), black_box(&x))));
    });
    group.bench_function("csr-unrolled", |b| {
        b.iter(|| black_box(black_box(&m).spmv(black_box(&x))));
    });
    group.bench_function("csr-f64-legacy-scalar", |b| {
        b.iter(|| black_box(legacy::legacy_csr_spmv_f64(black_box(&m), black_box(&x))));
    });
    group.bench_function("csr-f64-unrolled", |b| {
        b.iter(|| black_box(black_box(&m).spmv_f64(black_box(&x))));
    });
    group.bench_function("csc-unrolled", |b| {
        b.iter(|| black_box(black_box(&csc).spmv(black_box(&x))));
    });
    group.finish();
}

criterion_group!(
    benches,
    scheduling,
    load_balancing,
    execution,
    reference_spmv
);
criterion_main!(benches);
