//! Regenerates Table 5 (per-partition resources).
fn main() {
    println!("{}", gust_bench::runners::table5::run(1.0));
}
