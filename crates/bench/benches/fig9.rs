//! Regenerates Fig. 9 (bandwidth utilization).
fn main() {
    let scale = gust_bench::env_scale(0.25);
    println!("{}", gust_bench::runners::fig9::run(scale));
}
