//! Regenerates the paper's Table 1. `GUST_SCALE=1` for full-size matrices.
fn main() {
    let scale = gust_bench::env_scale(0.25);
    println!("{}", gust_bench::runners::table1::run(scale));
}
