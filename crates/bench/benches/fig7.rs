//! Regenerates Fig. 7(a) and 7(b). `GUST_SCALE=1` for full-size matrices.
fn main() {
    let scale = gust_bench::env_scale(0.25);
    println!("{}", gust_bench::runners::fig7::run(scale));
}
