//! Regenerates Tables 3 & 4 (GUST vs Serpens). `GUST_SCALE=1` is the
//! paper's full 14-37M-nnz matrices; the default keeps the run fast.
fn main() {
    let scale = gust_bench::env_scale(0.125);
    println!("{}", gust_bench::runners::table4::run(scale));
}
