//! §5.5 scalability sweep: GUST lengths 8 -> 512 on one matrix.
fn main() {
    let scale = gust_bench::env_scale(0.25);
    println!("{}", gust_bench::runners::scaling::run(scale));
}
