//! Unified dispatch over every accelerator the paper evaluates.

use gust::{ColoringAlgorithm, Gust, GustConfig, SchedulingPolicy};
use gust_accel::{AdderTree, Fafnir, FlexTpu, Serpens, SpmvAccelerator, Systolic1d};
use gust_energy::resources::GustPowerBreakdown;
use gust_energy::tech::DesignProfile;
use gust_sim::ExecutionReport;
use gust_sparse::CsrMatrix;

/// Every design that appears in the paper's figures, normalized per §4:
/// 256 multipliers + 256 adders for 1D/AT/Flex-TPU/GUST, 128 + 448 for
/// Fafnir, and Serpens's own 16-channel configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Design {
    /// Length-`l` 1D systolic array.
    OneD(usize),
    /// Length-`l` balanced adder tree.
    AdderTree(usize),
    /// Flex-TPU with ~`units` PEs (grid `⌊√units⌋`).
    FlexTpu(usize),
    /// Length-`l` Fafnir tree.
    Fafnir(usize),
    /// Serpens (fixed paper configuration).
    Serpens,
    /// Length-`l` GUST with naive collision-stall streaming.
    GustNaive(usize),
    /// Length-`l` GUST with edge coloring.
    GustEc(usize),
    /// Length-`l` GUST with edge coloring + load balancing.
    GustEcLb(usize),
}

impl Design {
    /// The seven designs of Fig. 7, in legend order.
    #[must_use]
    pub fn figure7_lineup() -> Vec<Design> {
        vec![
            Design::OneD(256),
            Design::AdderTree(256),
            Design::FlexTpu(256),
            Design::Fafnir(128),
            Design::GustNaive(256),
            Design::GustEc(256),
            Design::GustEcLb(256),
        ]
    }

    /// Display label matching the paper's legends.
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            Design::OneD(l) => format!("1D-{l}"),
            Design::AdderTree(l) => format!("AT-{l}"),
            Design::FlexTpu(u) => format!("FlexTPU-{u}"),
            Design::Fafnir(l) => format!("Fafnir-{l}"),
            Design::Serpens => "Serpens".to_string(),
            Design::GustNaive(l) => format!("GUST{l}-Naive"),
            Design::GustEc(l) => format!("GUST{l}-EC"),
            Design::GustEcLb(l) => format!("GUST{l}-EC/LB"),
        }
    }

    /// Runs the design over `matrix` and returns its report.
    ///
    /// GUST variants schedule and execute (their report includes the real
    /// color-derived cycle count); baselines use their analytic fast path,
    /// which their unit tests pin against cycle-accurate execution.
    #[must_use]
    pub fn report(&self, matrix: &CsrMatrix) -> ExecutionReport {
        match self {
            Design::OneD(l) => Systolic1d::new(*l).report(matrix),
            Design::AdderTree(l) => AdderTree::new(*l).report(matrix),
            Design::FlexTpu(u) => FlexTpu::with_units(*u).report(matrix),
            Design::Fafnir(l) => Fafnir::new(*l).report(matrix),
            Design::Serpens => Serpens::new().report(matrix),
            Design::GustNaive(l) | Design::GustEc(l) | Design::GustEcLb(l) => {
                let gust = Gust::new(self.gust_config(*l));
                let schedule = gust.schedule(matrix);
                let x = crate::workloads::test_vector(matrix.cols());
                gust.execute(&schedule, &x).report
            }
        }
    }

    fn gust_config(&self, l: usize) -> GustConfig {
        let policy = match self {
            Design::GustNaive(_) => SchedulingPolicy::Naive,
            Design::GustEc(_) => SchedulingPolicy::EdgeColoring,
            _ => SchedulingPolicy::EdgeColoringLb,
        };
        GustConfig::new(l)
            .with_policy(policy)
            .with_coloring(ColoringAlgorithm::Grouped)
    }

    /// The energy-accounting profile for this design (§4 powers; GUST
    /// lengths other than 8/87/256 interpolate Table 2's totals).
    #[must_use]
    pub fn energy_profile(&self) -> DesignProfile {
        match self {
            Design::OneD(_) | Design::AdderTree(_) | Design::FlexTpu(_) | Design::Fafnir(_) => {
                DesignProfile::one_d_256()
            }
            Design::Serpens => DesignProfile::serpens(),
            Design::GustNaive(l) | Design::GustEc(l) | Design::GustEcLb(l) => match l {
                8 => DesignProfile::gust_8(),
                87 => DesignProfile::gust_87(),
                256 => DesignProfile::gust_256(),
                _ => DesignProfile {
                    dynamic_watts: GustPowerBreakdown::at_length(*l).total_watts(),
                    on_chip_mm: 129.0 * *l as f64 / 256.0,
                },
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gust_sparse::prelude::*;

    fn small() -> CsrMatrix {
        CsrMatrix::from(&gen::uniform(64, 64, 400, 5))
    }

    #[test]
    fn lineup_matches_figure_7_legend() {
        let labels: Vec<String> = Design::figure7_lineup().iter().map(Design::label).collect();
        assert_eq!(
            labels,
            vec![
                "1D-256",
                "AT-256",
                "FlexTPU-256",
                "Fafnir-128",
                "GUST256-Naive",
                "GUST256-EC",
                "GUST256-EC/LB"
            ]
        );
    }

    #[test]
    fn every_design_reports() {
        let m = small();
        for d in Design::figure7_lineup() {
            let r = d.report(&m);
            assert!(r.cycles > 0, "{}", d.label());
            assert!(r.utilization() > 0.0, "{}", d.label());
        }
        let r = Design::Serpens.report(&m);
        assert!(r.cycles > 0);
    }

    #[test]
    fn gust_ec_beats_all_baselines_on_utilization() {
        let m = small();
        let gust = Design::GustEcLb(8).report(&m).utilization();
        for d in [Design::OneD(8), Design::AdderTree(8), Design::FlexTpu(64)] {
            assert!(
                gust > d.report(&m).utilization(),
                "{} should trail GUST",
                d.label()
            );
        }
    }

    #[test]
    fn energy_profiles_use_published_powers() {
        assert_eq!(Design::GustEcLb(256).energy_profile().dynamic_watts, 56.9);
        assert_eq!(Design::GustEcLb(87).energy_profile().dynamic_watts, 16.8);
        assert_eq!(Design::OneD(256).energy_profile().dynamic_watts, 35.3);
        assert_eq!(Design::Serpens.energy_profile().dynamic_watts, 46.2);
        // Interpolated length lies between neighbours.
        let p = Design::GustEcLb(128).energy_profile().dynamic_watts;
        assert!(p > 16.8 && p < 56.9);
    }
}
