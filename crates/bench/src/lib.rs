//! Benchmark harness regenerating every table and figure of the GUST paper.
//!
//! Each evaluation artifact has a runner in [`runners`] producing the same
//! rows/series the paper reports, and a `cargo bench` target that prints it:
//!
//! | Target | Paper artifact |
//! |---|---|
//! | `table1` | Table 1 — design qualities & geo-mean utilization |
//! | `fig7`   | Fig. 7(a,b) — utilization & cycles across designs |
//! | `fig8`   | Fig. 8(a–d) — speedup & energy gain over 1D |
//! | `fig9`   | Fig. 9 — bandwidth utilization |
//! | `table2` | Table 2 — resource consumption |
//! | `table4` | Tables 3 & 4 — GUST vs Serpens end to end |
//! | `table5` | Table 5 — per-partition resources |
//! | `bound`  | §3.4 Eqs. 9–11 validation + §3.3 naive-vs-1D crossover |
//! | `ablation` | greedy-vs-optimal coloring, LB on/off, parallel GUST (§5.5) |
//! | `micro`  | criterion micro-benchmarks of the scheduler itself |
//!
//! Scale: set `GUST_SCALE` (0 < s ≤ 1, default in [`env_scale`]) to shrink
//! matrix dimensions by `s` (non-zeros by `s²`). `GUST_SCALE=1` reproduces
//! the paper's published sizes; the default keeps a full `cargo bench`
//! sweep in the minutes range. Every report prints the scale it ran at.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod designs;
pub mod legacy;
pub mod runners;
pub mod table;
pub mod workloads;

pub use designs::Design;
pub use table::TextTable;
pub use workloads::{env_scale, test_vector};

/// Geometric mean of strictly positive values; `None` if empty or any
/// value is non-positive.
#[must_use]
pub fn geo_mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() || values.iter().any(|&v| v <= 0.0) {
        return None;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    Some((log_sum / values.len() as f64).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geo_mean_of_powers() {
        let g = geo_mean(&[1.0, 100.0]).unwrap();
        assert!((g - 10.0).abs() < 1e-12);
    }

    #[test]
    fn geo_mean_rejects_empty_and_nonpositive() {
        assert_eq!(geo_mean(&[]), None);
        assert_eq!(geo_mean(&[1.0, 0.0]), None);
    }
}
