//! The seed implementation's performance baselines, preserved verbatim:
//! the `Vec<Vec<_>>` scheduling pipeline (for `schedule_throughput`) and
//! the array-of-structs slot-at-a-time execution engine plus the scalar
//! reference SpMV (for `spmv_throughput` and the micro benches).
//!
//! The production scheduler in `gust::schedule` now colors windows into
//! reusable flat buffers, and the production engine streams a
//! structure-of-arrays layout; this module keeps the original shapes — one
//! `Vec<Vec<WindowEdge>>` per window, `HashMap`-based lane assignment, an
//! array-of-structs `ScheduledSlot` walk with per-cycle counter
//! bookkeeping, a scalar accumulation chain per CSR row — so every future
//! PR can measure the current pipeline against the seed one on identical
//! inputs. It intentionally trades speed for fidelity to the seed code; do
//! not "optimize" it.

// Fidelity over lints: this file mirrors the seed implementation verbatim.
#![allow(clippy::needless_range_loop)]

use gust::schedule::scheduled::{ScheduledMatrix, ScheduledSlot, WindowSchedule};
use gust::{ColoringAlgorithm, GustConfig, SchedulingPolicy};
use gust_sim::UnitCounter;
use gust_sparse::CsrMatrix;
use std::collections::HashMap;

/// One non-zero with its lane, as the seed stored it.
#[derive(Debug, Clone, Copy, PartialEq)]
struct WindowEdge {
    lane: u32,
    col: u32,
    value: f32,
}

/// A window in the seed's nested representation.
struct LegacyWindow {
    per_row: Vec<Vec<WindowEdge>>,
}

impl LegacyWindow {
    fn vizing_bound(&self, l: usize) -> usize {
        let row_max = self.per_row.iter().map(Vec::len).max().unwrap_or(0);
        let mut lane_deg = vec![0usize; l];
        for row in &self.per_row {
            for e in row {
                lane_deg[e.lane as usize] += 1;
            }
        }
        let lane_max = lane_deg.into_iter().max().unwrap_or(0);
        row_max.max(lane_max)
    }
}

/// Schedules every window with the seed pipeline and returns the per-window
/// schedules in order. Equivalent output to
/// `gust::schedule::Scheduler::schedule(..).windows()`; only the
/// intermediate representation (and therefore the throughput) differs.
///
/// # Panics
///
/// Panics on [`SchedulingPolicy::Naive`] and
/// [`ColoringAlgorithm::Konig`] — the baseline covers the greedy
/// edge-coloring paths the throughput benchmark sweeps.
#[must_use]
pub fn legacy_schedule_windows(matrix: &CsrMatrix, config: &GustConfig) -> Vec<WindowSchedule> {
    assert!(
        config.policy() != SchedulingPolicy::Naive,
        "legacy baseline covers the edge-coloring policies"
    );
    let l = config.length();
    let lb = config.policy() == SchedulingPolicy::EdgeColoringLb;
    let row_perm = legacy_row_perm(matrix, lb);
    let window_count = row_perm.len().div_ceil(l);

    (0..window_count)
        .map(|w| {
            let window = legacy_window(matrix, &row_perm, l, lb, w);
            let bound = window.vizing_bound(l) as u32;
            let per_color = match config.coloring() {
                ColoringAlgorithm::Verbatim => legacy_color_verbatim(&window, l),
                ColoringAlgorithm::Grouped => legacy_color_grouped(&window, l),
                ColoringAlgorithm::Konig => {
                    panic!("legacy baseline covers the greedy coloring algorithms")
                }
            };
            WindowSchedule::from_colors(per_color, bound, 0)
        })
        .collect()
}

fn legacy_row_perm(matrix: &CsrMatrix, load_balance: bool) -> Vec<u32> {
    let mut row_perm: Vec<u32> = (0..matrix.rows() as u32).collect();
    if load_balance {
        row_perm.sort_by_key(|&r| std::cmp::Reverse(matrix.row_nnz(r as usize)));
    }
    row_perm
}

/// The seed's `WindowPlan::window`: fresh nested vectors, `HashMap` segment
/// counting and lane lookup.
fn legacy_window(
    matrix: &CsrMatrix,
    row_perm: &[u32],
    l: usize,
    load_balance: bool,
    w: usize,
) -> LegacyWindow {
    let start = w * l;
    let end = (start + l).min(row_perm.len());

    let mut per_row: Vec<Vec<WindowEdge>> = Vec::with_capacity(end - start);
    if !load_balance {
        for pos in start..end {
            let orig = row_perm[pos] as usize;
            let (cols, vals) = matrix.row(orig);
            per_row.push(
                cols.iter()
                    .zip(vals)
                    .map(|(&c, &v)| WindowEdge {
                        lane: c % l as u32,
                        col: c,
                        value: v,
                    })
                    .collect(),
            );
        }
        return LegacyWindow { per_row };
    }

    let mut seg_count: HashMap<u32, u32> = HashMap::new();
    for pos in start..end {
        let orig = row_perm[pos] as usize;
        let (cols, _) = matrix.row(orig);
        for &c in cols {
            *seg_count.entry(c).or_insert(0) += 1;
        }
    }
    let mut segments: Vec<(u32, u32)> = seg_count.into_iter().collect();
    segments.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));

    let mut lane_of: HashMap<u32, u32> = HashMap::with_capacity(segments.len());
    for (group_idx, group) in segments.chunks(l).enumerate() {
        let group_len = group.len();
        for (i, &(col, _)) in group.iter().enumerate() {
            let slot = if group_idx % 2 == 1 {
                group_len - 1 - i
            } else {
                i
            };
            lane_of.insert(col, slot as u32);
        }
    }

    for pos in start..end {
        let orig = row_perm[pos] as usize;
        let (cols, vals) = matrix.row(orig);
        per_row.push(
            cols.iter()
                .zip(vals)
                .map(|(&c, &v)| WindowEdge {
                    lane: lane_of[&c],
                    col: c,
                    value: v,
                })
                .collect(),
        );
    }
    LegacyWindow { per_row }
}

/// The seed's literal Listing 1 (`Vec::remove`-based scan).
fn legacy_color_verbatim(window: &LegacyWindow, l: usize) -> Vec<Vec<ScheduledSlot>> {
    let mut remaining: Vec<Vec<(u32, u32, f32)>> = window
        .per_row
        .iter()
        .map(|row| row.iter().map(|e| (e.lane, e.col, e.value)).collect())
        .collect();
    let mut live: Vec<usize> = (0..remaining.len())
        .filter(|&i| !remaining[i].is_empty())
        .collect();

    let mut per_color: Vec<Vec<ScheduledSlot>> = Vec::new();
    let mut matched = vec![u32::MAX; l];
    let mut clr: u32 = 0;
    while !live.is_empty() {
        let mut bucket: Vec<ScheduledSlot> = Vec::with_capacity(live.len());
        live.retain(|&row| {
            let edges = &mut remaining[row];
            if let Some(k) = edges
                .iter()
                .position(|&(lane, _, _)| matched[lane as usize] != clr)
            {
                let (lane, col, value) = edges.remove(k);
                matched[lane as usize] = clr;
                bucket.push(ScheduledSlot {
                    lane,
                    row_mod: row as u32,
                    col,
                    value,
                });
            }
            !edges.is_empty()
        });
        per_color.push(bucket);
        clr += 1;
    }
    per_color
}

/// The seed's lane-grouped greedy (nested `Vec` groups per row).
fn legacy_color_grouped(window: &LegacyWindow, l: usize) -> Vec<Vec<ScheduledSlot>> {
    struct Group {
        lane: u32,
        edges: Vec<u32>,
        head: u32,
    }
    struct Row {
        edges: Vec<(u32, f32)>,
        groups: Vec<Group>,
        remaining: u32,
    }

    let mut rows: Vec<Row> = Vec::with_capacity(window.per_row.len());
    let mut lane_group_idx = vec![u32::MAX; l];
    for row_edges in &window.per_row {
        let mut row = Row {
            edges: Vec::with_capacity(row_edges.len()),
            groups: Vec::new(),
            remaining: row_edges.len() as u32,
        };
        for e in row_edges {
            let edge_idx = row.edges.len() as u32;
            row.edges.push((e.col, e.value));
            let slot = lane_group_idx[e.lane as usize];
            if slot != u32::MAX && row.groups[slot as usize].lane == e.lane {
                row.groups[slot as usize].edges.push(edge_idx);
            } else {
                lane_group_idx[e.lane as usize] = row.groups.len() as u32;
                row.groups.push(Group {
                    lane: e.lane,
                    edges: vec![edge_idx],
                    head: 0,
                });
            }
        }
        for g in &row.groups {
            lane_group_idx[g.lane as usize] = u32::MAX;
        }
        rows.push(row);
    }

    let mut live: Vec<usize> = (0..rows.len()).filter(|&i| rows[i].remaining > 0).collect();
    let mut per_color: Vec<Vec<ScheduledSlot>> = Vec::new();
    let mut matched = vec![u32::MAX; l];
    let mut clr: u32 = 0;
    while !live.is_empty() {
        let mut bucket: Vec<ScheduledSlot> = Vec::with_capacity(live.len());
        live.retain(|&row_idx| {
            let row = &mut rows[row_idx];
            for g in &mut row.groups {
                if g.head as usize >= g.edges.len() {
                    continue;
                }
                if matched[g.lane as usize] == clr {
                    continue;
                }
                let edge_idx = g.edges[g.head as usize] as usize;
                g.head += 1;
                row.remaining -= 1;
                matched[g.lane as usize] = clr;
                let (col, value) = row.edges[edge_idx];
                bucket.push(ScheduledSlot {
                    lane: g.lane,
                    row_mod: row_idx as u32,
                    col,
                    value,
                });
                break;
            }
            row.remaining > 0
        });
        per_color.push(bucket);
        clr += 1;
    }
    per_color
}

/// One window of the seed engine's scheduled layout: a flat array of
/// structs (`ScheduledSlot` records) with per-color offsets — the
/// representation `gust::WindowSchedule` stored before the
/// structure-of-arrays refactor.
#[derive(Debug, Clone)]
pub struct LegacySlotWindow {
    /// `color_ptr[c]..color_ptr[c+1]` indexes `slots` for color `c`.
    pub color_ptr: Vec<u32>,
    /// Slot records, color-major, lane-sorted within each color.
    pub slots: Vec<ScheduledSlot>,
}

/// Converts a schedule into the seed engine's array-of-structs layout.
/// Done once per schedule (mirroring how the seed stored it), outside any
/// timed region.
#[must_use]
pub fn legacy_slot_windows(schedule: &ScheduledMatrix) -> Vec<LegacySlotWindow> {
    schedule
        .windows()
        .iter()
        .map(|w| LegacySlotWindow {
            color_ptr: w.color_ptr().to_vec(),
            slots: w.iter_slots().collect(),
        })
        .collect()
}

/// The seed `Gust::execute` hot loop, verbatim: walk each window color by
/// color over array-of-structs slots, with live [`UnitCounter`] busy
/// bookkeeping per cycle, zeroing and dumping all `l` adder lanes every
/// window. Returns the output vector and the measured busy unit-cycles.
///
/// Output is bit-identical to `gust::Gust::execute` — the baseline only
/// differs in data layout and bookkeeping, which is exactly what
/// `spmv_throughput` measures.
///
/// # Panics
///
/// Panics if `x.len() != schedule.cols()` or `windows` was built from a
/// different schedule.
#[must_use]
pub fn legacy_execute(
    schedule: &ScheduledMatrix,
    windows: &[LegacySlotWindow],
    x: &[f32],
) -> (Vec<f32>, u64) {
    assert_eq!(x.len(), schedule.cols(), "input vector length mismatch");
    assert_eq!(windows.len(), schedule.windows().len(), "window mismatch");
    let l = schedule.length();
    let mut y = vec![0.0f32; schedule.rows()];
    let mut adders = vec![0.0f32; l];
    let mut mults = UnitCounter::new("multipliers", l);
    let mut adds = UnitCounter::new("adders", l);

    let row_perm = schedule.row_perm();
    for (w, window) in windows.iter().enumerate() {
        adders.iter_mut().for_each(|a| *a = 0.0);
        for c in 0..window.color_ptr.len() - 1 {
            let slots =
                &window.slots[window.color_ptr[c] as usize..window.color_ptr[c + 1] as usize];
            for s in slots {
                let product = s.value * x[s.col as usize];
                adders[s.row_mod as usize] += product;
            }
            mults.record_busy(slots.len());
            adds.record_busy(slots.len());
        }
        let base = w * l;
        for (i, &acc) in adders.iter().enumerate() {
            let pos = base + i;
            if pos < row_perm.len() {
                y[row_perm[pos] as usize] = acc;
            }
        }
    }
    (y, mults.busy_unit_cycles() + adds.busy_unit_cycles())
}

/// The seed `CsrMatrix::spmv`, verbatim: one scalar accumulation chain per
/// row. The micro benches measure the unrolled production kernel against
/// this.
#[must_use]
pub fn legacy_csr_spmv(matrix: &CsrMatrix, x: &[f32]) -> Vec<f32> {
    assert_eq!(x.len(), matrix.cols(), "input vector length mismatch");
    (0..matrix.rows())
        .map(|r| {
            let (cols, vals) = matrix.row(r);
            let mut acc = 0.0f32;
            for (&c, &v) in cols.iter().zip(vals) {
                acc += v * x[c as usize];
            }
            acc
        })
        .collect()
}

/// The seed `CsrMatrix::spmv_f64`, verbatim (scalar `f64` chain per row).
#[must_use]
pub fn legacy_csr_spmv_f64(matrix: &CsrMatrix, x: &[f32]) -> Vec<f64> {
    assert_eq!(x.len(), matrix.cols(), "input vector length mismatch");
    (0..matrix.rows())
        .map(|r| {
            let (cols, vals) = matrix.row(r);
            let mut acc = 0.0f64;
            for (&c, &v) in cols.iter().zip(vals) {
                acc += f64::from(v) * f64::from(x[c as usize]);
            }
            acc
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gust::Gust;
    use gust_sparse::prelude::*;

    #[test]
    fn legacy_executor_is_bit_identical_to_soa_engine() {
        for (name, coo) in [
            ("uniform", gen::uniform(100, 100, 900, 5)),
            ("power-law", gen::power_law(90, 90, 700, 1.9, 6)), // 90 % 16 != 0
        ] {
            let m = CsrMatrix::from(&coo);
            let gust = Gust::new(GustConfig::new(16));
            let schedule = gust.schedule(&m);
            let windows = legacy_slot_windows(&schedule);
            let x: Vec<f32> = (0..m.cols()).map(|i| (i % 11) as f32 / 3.0 - 1.5).collect();
            let (y, busy) = legacy_execute(&schedule, &windows, &x);
            let run = gust.execute(&schedule, &x);
            assert_eq!(y, run.output, "{name}");
            assert_eq!(busy, run.report.busy_unit_cycles, "{name}");
        }
    }

    #[test]
    fn legacy_reference_kernels_match_unrolled_ones() {
        let m = CsrMatrix::from(&gen::uniform(80, 70, 600, 9));
        let x: Vec<f32> = (0..70).map(|i| (i % 7) as f32 - 3.0).collect();
        // Reassociated sums: equal within tolerance, not necessarily bits.
        assert_vectors_close(&m.spmv(&x), &legacy_csr_spmv(&m, &x), 1e-5);
        let f64_new = m.spmv_f64(&x);
        let f64_old = legacy_csr_spmv_f64(&m, &x);
        for (a, b) in f64_new.iter().zip(&f64_old) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn legacy_matches_the_flat_pipeline() {
        // The baseline is only a valid baseline if it computes the same
        // schedules as the production pipeline.
        for (name, coo) in [
            ("uniform", gen::uniform(200, 200, 3000, 3)),
            ("power-law", gen::power_law(200, 200, 2500, 1.9, 4)),
        ] {
            let m = CsrMatrix::from(&coo);
            for algo in [ColoringAlgorithm::Verbatim, ColoringAlgorithm::Grouped] {
                let config = GustConfig::new(16).with_coloring(algo);
                let flat = Gust::new(config.clone()).schedule(&m);
                let legacy = legacy_schedule_windows(&m, &config);
                assert_eq!(legacy.as_slice(), flat.windows(), "{name} {algo:?}");
            }
        }
    }
}
