//! Open-loop serving benchmark: p50/p99 latency and aggregate nnz/s of
//! the `gust::serve` runtime, clean and under the CI fault plan. Prints
//! the report and archives the JSON rows (default `BENCH_serve.json`,
//! override with `GUST_BENCH_JSON`).

fn main() {
    let out = gust_bench::runners::serve_load::run_cli();
    print!("{}", out.report);
    let path = std::env::var("GUST_BENCH_JSON").unwrap_or_else(|_| "BENCH_serve.json".to_string());
    if let Err(e) = std::fs::write(&path, format!("{}\n", out.json)) {
        eprintln!("warning: could not write {path}: {e}");
    } else {
        eprintln!("wrote {path}");
    }
}
