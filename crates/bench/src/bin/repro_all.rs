//! Runs every paper-artifact runner in sequence and prints one combined
//! report — convenient for regenerating EXPERIMENTS.md's numbers.
//!
//! ```sh
//! cargo run --release -p gust_bench --bin repro_all            # default scale
//! GUST_SCALE=1 cargo run --release -p gust_bench --bin repro_all
//! ```

use gust_bench::runners;
use std::time::Instant;

fn main() {
    let scale = gust_bench::env_scale(0.25);
    let table4_scale = gust_bench::env_scale(0.125);
    let start = Instant::now();

    let sections: Vec<(&str, String)> = vec![
        ("table1", runners::table1::run(scale)),
        ("fig7", runners::fig7::run(scale)),
        ("fig8", runners::fig8::run(scale)),
        ("fig9", runners::fig9::run(scale)),
        ("table2", runners::table2::run(1.0)),
        ("table4", runners::table4::run(table4_scale)),
        ("table5", runners::table5::run(1.0)),
        ("bound", runners::bound::run(scale)),
        ("ablation", runners::ablation::run(scale)),
        ("scaling", runners::scaling::run(scale)),
        (
            "schedule_throughput",
            runners::schedule_throughput::run(scale),
        ),
        (
            "spmv_throughput",
            runners::spmv_throughput::run(scale).report,
        ),
    ];

    for (name, body) in &sections {
        println!("################ {name} ################\n");
        println!("{body}");
    }
    eprintln!(
        "reproduced {} artifacts in {:.1}s (scale {scale})",
        sections.len(),
        start.elapsed().as_secs_f64()
    );
}
