//! Execution-throughput benchmark: seed array-of-structs engine vs. the
//! structure-of-arrays engine, single-vector and batched. Prints the
//! report and archives the JSON rows (default `BENCH_spmv.json`, override
//! with `GUST_BENCH_JSON`) for the CI perf trajectory.

fn main() {
    let out = gust_bench::runners::spmv_throughput::run_cli();
    print!("{}", out.report);
    let path = std::env::var("GUST_BENCH_JSON").unwrap_or_else(|_| "BENCH_spmv.json".to_string());
    if let Err(e) = std::fs::write(&path, format!("{}\n", out.json)) {
        eprintln!("warning: could not write {path}: {e}");
    } else {
        eprintln!("wrote {path}");
    }
}
