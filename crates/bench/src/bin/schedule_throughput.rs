//! Preprocessing-throughput benchmark: legacy vs. flat pipeline shapes.

fn main() {
    println!("{}", gust_bench::runners::schedule_throughput::run_cli());
}
