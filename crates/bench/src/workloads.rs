//! Workload acquisition for the experiment runners.

use gust_sparse::{gen, suite, CsrMatrix};

/// Reads the `GUST_SCALE` environment variable (0 < s ≤ 1), falling back
/// to `default`. Scale shrinks matrix dimensions by `s` and non-zeros by
/// `s²`; `GUST_SCALE=1` reproduces the paper's sizes.
///
/// # Panics
///
/// Panics if the variable is set but not a number in `(0, 1]`.
#[must_use]
pub fn env_scale(default: f64) -> f64 {
    match std::env::var("GUST_SCALE") {
        Ok(raw) => {
            let s: f64 = raw
                .parse()
                .unwrap_or_else(|_| panic!("GUST_SCALE must be a number, got '{raw}'"));
            assert!(s > 0.0 && s <= 1.0, "GUST_SCALE must be in (0, 1], got {s}");
            s
        }
        Err(_) => default,
    }
}

/// Deterministic input vector with non-trivial values in `[-1, 1)`.
#[must_use]
pub fn test_vector(n: usize) -> Vec<f32> {
    (0..n)
        .map(|i| {
            let h = (i as u64)
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .rotate_left(17)
                .wrapping_mul(0xbf58_476d_1ce4_e5b9);
            ((h >> 40) as f32) / 8_388_608.0 - 1.0
        })
        .collect()
}

/// Flat column-major panel of `batch` right-hand sides derived from `x`:
/// vector `j` is `x` shifted by `j × shift` (distinct but comparable
/// columns). The layout `gust::Gust::execute_batch` consumes.
#[must_use]
pub fn shifted_panel(x: &[f32], batch: usize, shift: f32) -> Vec<f32> {
    let mut panel = Vec::with_capacity(x.len() * batch);
    for j in 0..batch {
        let offset = j as f32 * shift;
        panel.extend(x.iter().map(|&v| v + offset));
    }
    panel
}

/// The Fig. 7–9 suite at the given scale: `(entry, matrix)` pairs in the
/// paper's density order.
#[must_use]
pub fn figure7_matrices(scale: f64) -> Vec<(suite::SuiteEntry, CsrMatrix)> {
    suite::figure7()
        .into_iter()
        .map(|e| {
            let m = CsrMatrix::from(&e.generate_scaled(scale));
            (e, m)
        })
        .collect()
}

/// The Tables 3–4 nine-matrix suite at the given scale.
#[must_use]
pub fn serpens_matrices(scale: f64) -> Vec<(suite::SuiteEntry, CsrMatrix)> {
    suite::serpens_nine()
        .into_iter()
        .map(|e| {
            let m = CsrMatrix::from(&e.generate_scaled(scale));
            (e, m)
        })
        .collect()
}

/// The synthetic structures of Fig. 8(b)–(d).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyntheticKind {
    /// Fig. 8(b): uniform placement.
    Uniform,
    /// Fig. 8(c): power-law degrees (exponent 1.8).
    PowerLaw,
    /// Fig. 8(d): k-regular rows.
    KRegular,
}

impl SyntheticKind {
    /// Label used in the reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::Uniform => "uniform",
            Self::PowerLaw => "power-law",
            Self::KRegular => "k-regular",
        }
    }
}

/// Generates one synthetic Fig. 8 matrix: dimension `n`, target `density`.
#[must_use]
pub fn synthetic(kind: SyntheticKind, n: usize, density: f64, seed: u64) -> CsrMatrix {
    let nnz = ((n as f64 * n as f64 * density).round() as usize).clamp(1, n * n);
    let coo = match kind {
        SyntheticKind::Uniform => gen::uniform(n, n, nnz, seed),
        SyntheticKind::PowerLaw => gen::power_law(n, n, nnz, 1.8, seed),
        SyntheticKind::KRegular => {
            let k = (nnz / n).max(1);
            gen::k_regular(n, n, k, seed)
        }
    };
    CsrMatrix::from(&coo)
}

/// The paper's synthetic dimension (§4: 16 384), shrunk by `scale`.
#[must_use]
pub fn synthetic_dimension(scale: f64) -> usize {
    ((16_384.0 * scale).round() as usize).max(256)
}

/// The §4 synthetic density sweep: 1e-4 … 5e-2.
#[must_use]
pub fn density_sweep() -> Vec<f64> {
    vec![1.0e-4, 3.0e-4, 1.0e-3, 3.0e-3, 1.0e-2, 5.0e-2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_vector_is_deterministic_and_bounded() {
        let a = test_vector(100);
        let b = test_vector(100);
        assert_eq!(a, b);
        assert!(a.iter().all(|v| (-1.0..1.0).contains(v)));
        // Not all equal (a degenerate vector would mask routing bugs).
        assert!(a.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn figure7_small_scale_loads_all_twelve() {
        let ms = figure7_matrices(0.01);
        assert_eq!(ms.len(), 12);
        for (e, m) in &ms {
            assert!(m.nnz() > 0, "{} is empty", e.name);
        }
    }

    #[test]
    fn synthetic_densities_are_respected() {
        for kind in [
            SyntheticKind::Uniform,
            SyntheticKind::PowerLaw,
            SyntheticKind::KRegular,
        ] {
            let m = synthetic(kind, 512, 1.0e-2, 1);
            let got = m.nnz() as f64 / (512.0 * 512.0);
            assert!(
                (got / 1.0e-2 - 1.0).abs() < 0.2,
                "{}: density {got}",
                kind.label()
            );
        }
    }

    #[test]
    fn synthetic_dimension_scales() {
        assert_eq!(synthetic_dimension(1.0), 16_384);
        assert_eq!(synthetic_dimension(0.25), 4_096);
        assert_eq!(synthetic_dimension(1.0e-6), 256);
    }

    #[test]
    fn env_scale_default_applies() {
        std::env::remove_var("GUST_SCALE");
        assert_eq!(env_scale(0.3), 0.3);
    }
}
