//! Workload acquisition for the experiment runners.

use gust_sparse::{gen, suite, CsrMatrix};

/// Reads the `GUST_SCALE` environment variable (0 < s ≤ 1), falling back
/// to `default`. Scale shrinks matrix dimensions by `s` and non-zeros by
/// `s²`; `GUST_SCALE=1` reproduces the paper's sizes.
///
/// # Panics
///
/// Panics if the variable is set but not a number in `(0, 1]`.
#[must_use]
pub fn env_scale(default: f64) -> f64 {
    match std::env::var("GUST_SCALE") {
        Ok(raw) => {
            let s: f64 = raw
                .parse()
                .unwrap_or_else(|_| panic!("GUST_SCALE must be a number, got '{raw}'"));
            assert!(s > 0.0 && s <= 1.0, "GUST_SCALE must be in (0, 1], got {s}");
            s
        }
        Err(_) => default,
    }
}

/// Deterministic input vector with non-trivial values in `[-1, 1)`.
#[must_use]
pub fn test_vector(n: usize) -> Vec<f32> {
    (0..n)
        .map(|i| {
            let h = (i as u64)
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .rotate_left(17)
                .wrapping_mul(0xbf58_476d_1ce4_e5b9);
            ((h >> 40) as f32) / 8_388_608.0 - 1.0
        })
        .collect()
}

/// Flat column-major panel of `batch` right-hand sides derived from `x`:
/// vector `j` is `x` shifted by `j × shift` (distinct but comparable
/// columns). The layout `gust::Gust::execute_batch` consumes.
#[must_use]
pub fn shifted_panel(x: &[f32], batch: usize, shift: f32) -> Vec<f32> {
    let mut panel = Vec::with_capacity(x.len() * batch);
    for j in 0..batch {
        let offset = j as f32 * shift;
        panel.extend(x.iter().map(|&v| v + offset));
    }
    panel
}

/// A hub-concentrated wide matrix: `rows × cols` with all non-zeros
/// drawn from `hubs` distinct columns spread evenly across the (much
/// wider) column range. This is the shape where the engine's
/// window-local operand staging pays: the input vector is far larger
/// than on-chip cache, but each window touches only the hub columns, so
/// gathering them once into a dense stage turns the inner loop's
/// scattered reads into cache-resident ones. Deterministic in `seed`;
/// within each row, hub choices step by a stride coprime to `hubs`, so a
/// row never repeats a column.
///
/// # Panics
///
/// Panics if `hubs` is zero, exceeds `cols`, or `nnz / rows > hubs`.
#[must_use]
pub fn hub_matrix(rows: usize, cols: usize, nnz: usize, hubs: usize, seed: u64) -> CsrMatrix {
    assert!(hubs > 0 && hubs <= cols, "hubs must be in 1..=cols");
    let per_row = nnz.div_ceil(rows);
    assert!(per_row <= hubs, "rows would repeat a hub column");
    let spread = cols / hubs;
    // A stride coprime to `hubs` visits every hub before repeating, so
    // `per_row ≤ hubs` entries stay distinct. Offsetting the start per
    // row by the seed keeps different seeds producing different patterns.
    fn gcd(a: usize, b: usize) -> usize {
        if b == 0 {
            a
        } else {
            gcd(b, a % b)
        }
    }
    let stride = [7usize, 11, 13, 17, 19, 23, 29, 1]
        .into_iter()
        .find(|&s| gcd(s, hubs) == 1)
        .expect("1 is coprime to everything");
    let mut coo = gust_sparse::CooMatrix::new(rows, cols);
    let mut placed = 0usize;
    'outer: for r in 0..rows {
        let start = (r as u64)
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(seed) as usize
            % hubs;
        for k in 0..per_row {
            if placed == nnz {
                break 'outer;
            }
            let hub = (start + k * stride) % hubs;
            let col = hub * spread;
            let value = ((placed % 17) as f32) / 8.0 - 1.0;
            coo.push(r, col, value).expect("hub column in bounds");
            placed += 1;
        }
    }
    CsrMatrix::from(&coo)
}

/// An LLC-exceeding workload for the cache-blocked (banded/tiled)
/// schedules: the matrix, plus the budgets its blocked rows should
/// force.
pub struct LlcWorkload {
    /// Workload label (`llc-uniform`, `llc-power-law`, `llc-tall-out`).
    pub name: &'static str,
    /// The matrix. Full scale: 2²⁰ rows × 2²² columns (operand-heavy
    /// shapes) or 2²² rows × 2¹⁸ columns (`llc-tall-out`).
    pub matrix: CsrMatrix,
    /// Cache budget (bytes) forced for the banded rows: sized so the
    /// operand vector is a large multiple of the budget at any scale.
    pub cache_budget: usize,
    /// Row budget (bytes) forced for the tiled rows: `Some` on shapes
    /// whose *output* vector exceeds the LLC (`llc-tall-out`), `None`
    /// where tiling should run under the auto budget (usually one tile).
    pub row_budget: Option<usize>,
}

/// The LLC-exceeding workloads of the cache-blocking acceptance runs.
///
/// `llc-uniform` / `llc-power-law` (`scale = 1`: 2²⁰ rows × 2²² columns,
/// 24 nnz/row) exceed the LLC on the **operand** side: the input vector
/// is 16 MiB — far past any per-core cache — while the forced budget of
/// 1 MiB keeps each band's operand slice L2-resident. Uniform columns
/// are the banding worst case (no reuse inside a band beyond density);
/// power-law columns are the representative case (shuffled hubs
/// concentrate reuse in every band).
///
/// `llc-tall-out` (`scale = 1`: 2²² rows × 2¹⁸ columns, 6 nnz/row)
/// exceeds the LLC on the **output** side: the 16 MiB output vector —
/// and with it the banded batch walk's carried accumulator panel, which
/// is `reg_block×` larger still — thrashes under column bands alone.
/// Its forced row budget (output = 16× budget) makes the 2D tiled
/// schedules confine each band sweep to a cache-resident row tile.
#[must_use]
pub fn llc_workloads(scale: f64) -> Vec<LlcWorkload> {
    let rows = (((1usize << 20) as f64 * scale) as usize).max(4096);
    let cols = rows * 4;
    let nnz = rows * 24;
    // x = cols × 4 bytes = 16 × budget.
    let cache_budget = (cols * std::mem::size_of::<f32>() / 16).max(4096);
    // The tall shape inverts the aspect ratio hard: 4× the rows of the
    // wide shapes but 16× fewer columns than rows, sparser rows so nnz
    // stays comparable. The skew is the point — a row-tile walk re-reads
    // the (small) operand side once per tile while a column-band walk
    // re-streams the (huge) accumulator side once per band, so the
    // output-dominated regime is where 2D tiling has to win.
    let tall_rows = (((1usize << 22) as f64 * scale) as usize).max(16384);
    let tall_cols = (tall_rows / 16).max(1024);
    let tall_nnz = tall_rows * 6;
    // y = tall_rows × 4 bytes = 16 × row budget; the operand vector is
    // 1 MiB at full scale, and the ¼-sized cache budget still forces
    // bands on the banded comparison rows.
    let tall_row_budget = (tall_rows * std::mem::size_of::<f32>() / 16).max(4096);
    let tall_cache_budget = (tall_cols * std::mem::size_of::<f32>() / 4).max(4096);
    vec![
        LlcWorkload {
            name: "llc-uniform",
            matrix: CsrMatrix::from(&gen::uniform(rows, cols, nnz, 51)),
            cache_budget,
            row_budget: None,
        },
        LlcWorkload {
            name: "llc-power-law",
            matrix: CsrMatrix::from(&gen::power_law(rows, cols, nnz, 1.9, 52)),
            cache_budget,
            row_budget: None,
        },
        LlcWorkload {
            name: "llc-tall-out",
            matrix: CsrMatrix::from(&gen::uniform(tall_rows, tall_cols, tall_nnz, 53)),
            cache_budget: tall_cache_budget,
            row_budget: Some(tall_row_budget),
        },
    ]
}

/// The Fig. 7–9 suite at the given scale: `(entry, matrix)` pairs in the
/// paper's density order.
#[must_use]
pub fn figure7_matrices(scale: f64) -> Vec<(suite::SuiteEntry, CsrMatrix)> {
    suite::figure7()
        .into_iter()
        .map(|e| {
            let m = CsrMatrix::from(&e.generate_scaled(scale));
            (e, m)
        })
        .collect()
}

/// The Tables 3–4 nine-matrix suite at the given scale.
#[must_use]
pub fn serpens_matrices(scale: f64) -> Vec<(suite::SuiteEntry, CsrMatrix)> {
    suite::serpens_nine()
        .into_iter()
        .map(|e| {
            let m = CsrMatrix::from(&e.generate_scaled(scale));
            (e, m)
        })
        .collect()
}

/// The synthetic structures of Fig. 8(b)–(d).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyntheticKind {
    /// Fig. 8(b): uniform placement.
    Uniform,
    /// Fig. 8(c): power-law degrees (exponent 1.8).
    PowerLaw,
    /// Fig. 8(d): k-regular rows.
    KRegular,
}

impl SyntheticKind {
    /// Label used in the reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::Uniform => "uniform",
            Self::PowerLaw => "power-law",
            Self::KRegular => "k-regular",
        }
    }
}

/// Generates one synthetic Fig. 8 matrix: dimension `n`, target `density`.
#[must_use]
pub fn synthetic(kind: SyntheticKind, n: usize, density: f64, seed: u64) -> CsrMatrix {
    let nnz = ((n as f64 * n as f64 * density).round() as usize).clamp(1, n * n);
    let coo = match kind {
        SyntheticKind::Uniform => gen::uniform(n, n, nnz, seed),
        SyntheticKind::PowerLaw => gen::power_law(n, n, nnz, 1.8, seed),
        SyntheticKind::KRegular => {
            let k = (nnz / n).max(1);
            gen::k_regular(n, n, k, seed)
        }
    };
    CsrMatrix::from(&coo)
}

/// The paper's synthetic dimension (§4: 16 384), shrunk by `scale`.
#[must_use]
pub fn synthetic_dimension(scale: f64) -> usize {
    ((16_384.0 * scale).round() as usize).max(256)
}

/// The §4 synthetic density sweep: 1e-4 … 5e-2.
#[must_use]
pub fn density_sweep() -> Vec<f64> {
    vec![1.0e-4, 3.0e-4, 1.0e-3, 3.0e-3, 1.0e-2, 5.0e-2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_vector_is_deterministic_and_bounded() {
        let a = test_vector(100);
        let b = test_vector(100);
        assert_eq!(a, b);
        assert!(a.iter().all(|v| (-1.0..1.0).contains(v)));
        // Not all equal (a degenerate vector would mask routing bugs).
        assert!(a.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn figure7_small_scale_loads_all_twelve() {
        let ms = figure7_matrices(0.01);
        assert_eq!(ms.len(), 12);
        for (e, m) in &ms {
            assert!(m.nnz() > 0, "{} is empty", e.name);
        }
    }

    #[test]
    fn synthetic_densities_are_respected() {
        for kind in [
            SyntheticKind::Uniform,
            SyntheticKind::PowerLaw,
            SyntheticKind::KRegular,
        ] {
            let m = synthetic(kind, 512, 1.0e-2, 1);
            let got = m.nnz() as f64 / (512.0 * 512.0);
            assert!(
                (got / 1.0e-2 - 1.0).abs() < 0.2,
                "{}: density {got}",
                kind.label()
            );
        }
    }

    #[test]
    fn synthetic_dimension_scales() {
        assert_eq!(synthetic_dimension(1.0), 16_384);
        assert_eq!(synthetic_dimension(0.25), 4_096);
        assert_eq!(synthetic_dimension(1.0e-6), 256);
    }

    #[test]
    fn env_scale_default_applies() {
        std::env::remove_var("GUST_SCALE");
        assert_eq!(env_scale(0.3), 0.3);
    }

    #[test]
    fn hub_matrix_concentrates_columns() {
        let m = hub_matrix(100, 10_000, 2_000, 64, 9);
        assert_eq!(m.rows(), 100);
        assert_eq!(m.cols(), 10_000);
        assert_eq!(m.nnz(), 2_000);
        // All columns land on at most `hubs` distinct values.
        let mut cols: Vec<u32> = m.iter().map(|(_, c, _)| c as u32).collect();
        cols.sort_unstable();
        cols.dedup();
        assert!(cols.len() <= 64, "{} distinct columns", cols.len());
        // Deterministic in the seed.
        assert_eq!(m, hub_matrix(100, 10_000, 2_000, 64, 9));
        assert_ne!(m, hub_matrix(100, 10_000, 2_000, 64, 10));
    }

    #[test]
    #[should_panic(expected = "repeat a hub")]
    fn hub_matrix_rejects_overfull_rows() {
        let _ = hub_matrix(10, 1_000, 500, 16, 1);
    }

    #[test]
    fn llc_workloads_force_the_right_budgets() {
        let ws = llc_workloads(0.01);
        assert_eq!(ws.len(), 3);
        for w in &ws[..2] {
            // Operand vector a large multiple of the forced cache budget
            // on the wide (operand-heavy) shapes.
            assert!(w.matrix.cols() * 4 >= 4 * w.cache_budget, "{}", w.name);
        }
        let tall = &ws[2];
        assert_eq!(tall.name, "llc-tall-out");
        assert!(
            tall.matrix.rows() > tall.matrix.cols(),
            "output-heavy shape"
        );
        let row_budget = tall.row_budget.expect("tall shape forces a row budget");
        assert_eq!(row_budget, (tall.matrix.rows() * 4 / 16).max(4096));
        assert!(ws[0].row_budget.is_none() && ws[1].row_budget.is_none());
    }
}
