//! Fig. 8 — speedup and energy-efficiency gain over the length-256 1D
//! systolic array: (a) real matrices, (b)–(d) synthetic 16 384² matrices
//! with uniform / power-law / k-regular structure over the §4 density
//! sweep.
//!
//! Paper headlines being reproduced: length-256 GUST EC/LB averages 411×
//! speedup and 137× energy gain; length-87 averages 108× and 148×; EC/LB
//! beats Naive by ~88× and EC by ~1.8×; both gains follow O(1/density).

use crate::designs::Design;
use crate::geo_mean;
use crate::table::{sig3, TextTable};
use crate::workloads::{self, SyntheticKind};
use gust_energy::EnergyModel;
use gust_sim::ExecutionReport;
use gust_sparse::CsrMatrix;

const HBM_BYTES_PER_SECOND: f64 = 460.0e9;

/// Speedup and energy gain of one design against a 1D baseline report.
fn gains(
    design: Design,
    matrix: &CsrMatrix,
    baseline: &ExecutionReport,
    energy: &EnergyModel,
    baseline_energy_j: f64,
) -> (f64, f64) {
    let report = design.report(matrix);
    let speedup = report.speedup_over(baseline);
    let vector_load = matrix.cols() as f64 * 4.0 / HBM_BYTES_PER_SECOND;
    let e = energy
        .spmv_energy(
            report.nnz_processed,
            matrix.rows(),
            matrix.cols(),
            report.seconds(),
            vector_load,
            &design.energy_profile(),
        )
        .total_j();
    (speedup, baseline_energy_j / e)
}

fn baseline_energy(matrix: &CsrMatrix, baseline: &ExecutionReport, energy: &EnergyModel) -> f64 {
    energy
        .spmv_energy(
            baseline.nnz_processed,
            matrix.rows(),
            matrix.cols(),
            baseline.seconds(),
            0.0,
            &Design::OneD(256).energy_profile(),
        )
        .total_j()
}

/// The five series of each Fig. 8 panel.
fn panel_designs() -> [Design; 4] {
    [
        Design::GustNaive(256),
        Design::GustEc(256),
        Design::GustEcLb(256),
        Design::GustEcLb(87),
    ]
}

fn panel_header() -> Vec<String> {
    let mut h = vec!["workload".to_string()];
    for d in panel_designs() {
        h.push(format!("{} speedup", d.label()));
    }
    h.push("GUST256-EC/LB energy gain".into());
    h.push("GUST87-EC/LB energy gain".into());
    h
}

fn panel_row(label: String, matrix: &CsrMatrix, energy: &EnergyModel) -> (Vec<String>, [f64; 6]) {
    let baseline = Design::OneD(256).report(matrix);
    let base_e = baseline_energy(matrix, &baseline, energy);
    let mut cells = vec![label];
    let mut values = [0.0f64; 6];
    for (i, d) in panel_designs().iter().enumerate() {
        let (speedup, egain) = gains(*d, matrix, &baseline, energy, base_e);
        values[i] = speedup;
        cells.push(format!("{}x", sig3(speedup)));
        if *d == Design::GustEcLb(256) {
            values[4] = egain;
        }
        if *d == Design::GustEcLb(87) {
            values[5] = egain;
        }
    }
    cells.push(format!("{}x", sig3(values[4])));
    cells.push(format!("{}x", sig3(values[5])));
    (cells, values)
}

fn render_panel(title: &str, rows: Vec<(String, CsrMatrix)>, energy: &EnergyModel) -> String {
    let mut table = TextTable::new(panel_header());
    let mut series: Vec<Vec<f64>> = vec![Vec::new(); 6];
    for (label, matrix) in rows {
        let (cells, values) = panel_row(label, &matrix, energy);
        table.push_row(cells);
        for (s, v) in series.iter_mut().zip(values) {
            s.push(v);
        }
    }
    let mut gmean = vec!["G-Mean".to_string()];
    for s in &series {
        gmean.push(format!("{}x", sig3(geo_mean(s).unwrap_or(0.0))));
    }
    table.push_row(gmean);
    format!("{title}\n{}", table.render())
}

/// Runs all four panels.
#[must_use]
pub fn run(scale: f64) -> String {
    let energy = EnergyModel::paper();
    let mut out = super::header("Figure 8 — speedup & energy gain over length-256 1D", scale);
    out.push_str("paper averages (real): GUST256-EC/LB 411x speedup / 137x energy; GUST87-EC/LB 108x / 148x\n\n");

    // (a) Real matrices.
    let real: Vec<(String, CsrMatrix)> = workloads::figure7_matrices(scale)
        .into_iter()
        .map(|(e, m)| (format!("{} ({})", e.name, e.density_label), m))
        .collect();
    out.push_str(&render_panel("(a) real-world matrices", real, &energy));

    // (b)-(d) synthetic sweeps.
    let n = workloads::synthetic_dimension(scale);
    for (panel, kind) in [
        ("(b) uniform", SyntheticKind::Uniform),
        ("(c) power-law", SyntheticKind::PowerLaw),
        ("(d) k-regular", SyntheticKind::KRegular),
    ] {
        let rows: Vec<(String, CsrMatrix)> = workloads::density_sweep()
            .into_iter()
            .enumerate()
            .map(|(i, density)| {
                let m = workloads::synthetic(kind, n, density, 100 + i as u64);
                (format!("{n}^2 d={density:.0e}"), m)
            })
            .collect();
        out.push('\n');
        out.push_str(&render_panel(
            &format!("{panel} synthetic ({n}x{n})"),
            rows,
            &energy,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panels_render_with_gmeans() {
        let s = run(0.01);
        assert!(s.contains("(a) real-world matrices"));
        assert!(s.contains("(d) k-regular"));
        assert!(s.matches("G-Mean").count() == 4);
    }

    #[test]
    fn ec_lb_speedup_exceeds_naive_on_dense_uniform() {
        let energy = EnergyModel::paper();
        let m = workloads::synthetic(SyntheticKind::Uniform, 512, 2.0e-2, 1);
        let (_, values) = panel_row("x".into(), &m, &energy);
        let (naive, _ec, eclb) = (values[0], values[1], values[2]);
        assert!(eclb > naive, "EC/LB {eclb} vs naive {naive}");
    }
}
