//! Fig. 7 — hardware utilization (a) and execution time (b) of all seven
//! designs over the twelve real-matrix stand-ins.

use crate::designs::Design;
use crate::table::{sig3, TextTable};
use crate::{geo_mean, workloads};

/// Runs both panels and renders them.
#[must_use]
pub fn run(scale: f64) -> String {
    let matrices = workloads::figure7_matrices(scale);
    let lineup = Design::figure7_lineup();

    let mut util_table = TextTable::new(
        std::iter::once("matrix (density)".to_string()).chain(lineup.iter().map(Design::label)),
    );
    let mut cycle_table = TextTable::new(
        std::iter::once("matrix (density)".to_string()).chain(lineup.iter().map(Design::label)),
    );
    let mut per_design_utils: Vec<Vec<f64>> = vec![Vec::new(); lineup.len()];

    for (entry, matrix) in &matrices {
        let mut util_row = vec![format!("{} ({})", entry.name, entry.density_label)];
        let mut cycle_row = util_row.clone();
        for (i, design) in lineup.iter().enumerate() {
            let report = design.report(matrix);
            let util = report.utilization();
            per_design_utils[i].push(util);
            util_row.push(format!("{:.3}%", util * 100.0));
            cycle_row.push(sig3(report.cycles as f64));
        }
        util_table.push_row(util_row);
        cycle_table.push_row(cycle_row);
    }

    let mut gmean_row = vec!["G-Mean".to_string()];
    for utils in &per_design_utils {
        let g = geo_mean(utils).unwrap_or(0.0);
        gmean_row.push(format!("{:.3}%", g * 100.0));
    }
    util_table.push_row(gmean_row);

    let mut out = super::header(
        "Figure 7 — utilization & execution time across designs",
        scale,
    );
    out.push_str("(a) Hardware utilization [paper G-Means: 1D 0.08%, AT 0.08%, FlexTPU 1.45%, Fafnir 4.67%, GUST EC/LB 33.67%]\n");
    out.push_str(&util_table.render());
    out.push_str("\n(b) Execution time in cycles\n");
    out.push_str(&cycle_table.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_contains_all_matrices_and_designs() {
        let s = run(0.01);
        for name in ["scircuit", "mycielskian11", "heart1", "G-Mean"] {
            assert!(s.contains(name), "missing {name}");
        }
        for design in ["1D-256", "GUST256-EC/LB", "Fafnir-128"] {
            assert!(s.contains(design), "missing {design}");
        }
    }
}
