//! Tables 3 & 4 — GUST vs Serpens on the nine large matrices: measured
//! preprocessing wall-clock (this host, like the paper's i7 measurements),
//! calculation time/cycles/energy/GFLOPS from the cycle models, plus the
//! §5.3 dense-matvec amortization example.

use crate::table::{sig3, TextTable};
use crate::workloads;
use gust::{Gust, GustConfig};
use gust_accel::{Serpens, SpmvAccelerator};
use gust_energy::tech::DesignProfile;
use gust_energy::EnergyModel;
use std::time::Instant;

const HBM_BYTES_PER_SECOND: f64 = 460.0e9;

/// Renders Table 3 (the matrix catalog) and Table 4 (the comparison).
#[must_use]
pub fn run(scale: f64) -> String {
    let energy = EnergyModel::paper();
    let matrices = workloads::serpens_matrices(scale);

    let mut catalog = TextTable::new(["ID", "matrix", "dimension", "#NZ", "density"]);
    for (i, (entry, matrix)) in matrices.iter().enumerate() {
        catalog.push_row([
            format!("({})", i + 1),
            entry.name.to_string(),
            format!("{}", matrix.rows()),
            format!("{}", matrix.nnz()),
            format!(
                "{:.1e}",
                matrix.nnz() as f64 / (matrix.rows() as f64).powi(2)
            ),
        ]);
    }

    let mut table = TextTable::new([
        "ID",
        "GUST pre (s)",
        "GUST pre (J)",
        "GUST calc (ms)",
        "GUST cycles",
        "GUST calc (mJ)",
        "GUST GFLOPS",
        "Serpens pre (s)",
        "Serpens calc (ms)",
        "Serpens cycles",
        "Serpens calc (mJ)",
        "Serpens GFLOPS",
    ]);

    let mut gust_time_wins = 0usize;
    let mut gust_energy_wins = 0usize;
    let mut amortization = String::new();

    for (i, (entry, matrix)) in matrices.iter().enumerate() {
        let x = workloads::test_vector(matrix.cols());

        // GUST-256 EC/LB: measured preprocessing + modeled calculation.
        let gust = Gust::new(GustConfig::new(256));
        let t0 = Instant::now();
        let schedule = gust.schedule(matrix);
        let gust_pre_s = t0.elapsed().as_secs_f64();
        let run = gust.execute(&schedule, &x);
        let vector_load_s = matrix.cols() as f64 * 4.0 / HBM_BYTES_PER_SECOND;
        let gust_calc_s = run.report.seconds() + vector_load_s;
        let gust_e = energy.spmv_energy(
            run.report.nnz_processed,
            matrix.rows(),
            matrix.cols(),
            run.report.seconds(),
            vector_load_s,
            &DesignProfile::gust_256(),
        );
        let gust_gflops = 2.0 * matrix.nnz() as f64 / gust_calc_s / 1.0e9;

        // Serpens: measured preprocessing (format build) + modeled calc.
        let serpens = Serpens::new();
        let t0 = Instant::now();
        let format = serpens.preprocess(matrix);
        let serpens_pre_s = t0.elapsed().as_secs_f64();
        let serpens_cycles = serpens.cycles(&format);
        let serpens_calc_s = serpens_cycles as f64 / serpens.frequency_hz();
        let serpens_e = energy.spmv_energy(
            matrix.nnz() as u64,
            matrix.rows(),
            matrix.cols(),
            serpens_calc_s,
            0.0,
            &DesignProfile::serpens(),
        );
        let serpens_gflops = 2.0 * matrix.nnz() as f64 / serpens_calc_s / 1.0e9;

        if gust_calc_s < serpens_calc_s {
            gust_time_wins += 1;
        }
        if gust_e.total_j() < serpens_e.total_j() {
            gust_energy_wins += 1;
        }

        table.push_row([
            format!("({})", i + 1),
            format!("{gust_pre_s:.3}"),
            format!("{:.1}", energy.preprocessing_energy_j(gust_pre_s)),
            format!("{:.3}", gust_calc_s * 1.0e3),
            sig3(run.report.cycles as f64),
            format!("{:.2}", gust_e.total_mj()),
            format!("{gust_gflops:.1}"),
            format!("{serpens_pre_s:.3}"),
            format!("{:.3}", serpens_calc_s * 1.0e3),
            sig3(serpens_cycles as f64),
            format!("{:.2}", serpens_e.total_mj()),
            format!("{serpens_gflops:.1}"),
        ]);

        // §5.3 amortization example on the first (crankseg_2) matrix: a
        // dense FPGA matvec must stream rows² value+index words at HBM peak.
        if i == 0 {
            let dense_s =
                (matrix.rows() as f64 * matrix.rows() as f64 * 2.0 * 4.0) / HBM_BYTES_PER_SECOND;
            let per_iter = gust_calc_s;
            let break_even = if per_iter < dense_s {
                format!("{:.0}", (gust_pre_s / (dense_s - per_iter)).ceil())
            } else {
                "n/a".to_string()
            };
            amortization = format!(
                "Amortization ({}): dense matvec {:.3}s per SpMV vs GUST {:.3}s preprocessing\n\
                 + {:.3}ms per SpMV -> break-even after {} SpMVs (paper: 0.7s vs 4.32s + 0.6ms).\n",
                entry.name,
                dense_s,
                gust_pre_s,
                per_iter * 1.0e3,
                break_even
            );
        }
    }

    let mut out = super::header("Tables 3 & 4 — GUST vs Serpens", scale);
    out.push_str("Table 3 (workload catalog at this scale):\n");
    out.push_str(&catalog.render());
    out.push_str("\nTable 4 (preprocessing measured on this host; calc from the cycle models):\n");
    out.push_str(&table.render());
    out.push_str(&format!(
        "\nGUST wins calc time on {gust_time_wins}/9 matrices (paper: 7/9), energy on \
         {gust_energy_wins}/9 (paper: 4/9).\n"
    ));
    out.push_str(&amortization);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparison_renders_with_win_counts() {
        let s = run(0.02);
        assert!(s.contains("crankseg_2"));
        assert!(s.contains("soc_pokec"));
        assert!(s.contains("wins calc time on"));
        assert!(s.contains("Amortization"));
    }
}
