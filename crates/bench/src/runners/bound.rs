//! §3.4 — validating the statistical bound (Eqs. 9–11) against measured
//! schedules, plus the §3.3 claim that naive GUST falls behind a 1D array
//! past density ≈ 0.008 on 16 384² uniform matrices.

use crate::designs::Design;
use crate::table::{sig3, TextTable};
use crate::workloads::{self, SyntheticKind};
use gust::{bound, Gust, GustConfig, SchedulingPolicy};

/// Runs the bound validation and the crossover sweep.
#[must_use]
pub fn run(scale: f64) -> String {
    let n = workloads::synthetic_dimension(scale);
    let l = 256usize;

    let mut validation = TextTable::new([
        "density",
        "E[C] (Eq.9)",
        "measured colors/window",
        "E[exe] (Eq.10)",
        "measured cycles",
        "E[util] (Eq.11)",
        "measured util",
    ]);

    for (i, density) in [1.0e-3, 3.0e-3, 1.0e-2].into_iter().enumerate() {
        let m = workloads::synthetic(SyntheticKind::Uniform, n, density, 400 + i as u64);
        let gust = Gust::new(GustConfig::new(l).with_policy(SchedulingPolicy::EdgeColoring));
        let schedule = gust.schedule(&m);
        let x = workloads::test_vector(n);
        let run = gust.execute(&schedule, &x);
        let mean_colors = schedule.total_colors() as f64 / schedule.windows().len() as f64;
        validation.push_row([
            format!("{density:.0e}"),
            sig3(bound::expected_colors(n, density, l)),
            sig3(mean_colors),
            sig3(bound::expected_execution_cycles(n, density, l)),
            sig3(run.report.cycles as f64),
            format!("{:.3}", bound::expected_utilization(n, density, l)),
            format!("{:.3}", run.report.utilization()),
        ]);
    }

    // Crossover: naive GUST vs 1D around the paper's 0.008.
    let mut crossover = TextTable::new([
        "density",
        "naive GUST cycles",
        "1D cycles",
        "naive/1D ratio",
        "naive slower?",
    ]);
    for (i, density) in [2.0e-3, 4.0e-3, 8.0e-3, 1.6e-2, 3.2e-2]
        .into_iter()
        .enumerate()
    {
        let m = workloads::synthetic(SyntheticKind::Uniform, n, density, 500 + i as u64);
        let naive = Design::GustNaive(l).report(&m);
        let one_d = Design::OneD(l).report(&m);
        let ratio = naive.cycles as f64 / one_d.cycles as f64;
        crossover.push_row([
            format!("{density:.1e}"),
            sig3(naive.cycles as f64),
            sig3(one_d.cycles as f64),
            format!("{ratio:.3}"),
            if ratio > 1.0 { "yes" } else { "no" }.to_string(),
        ]);
    }

    let mut out = super::header("§3.4 statistical bound & §3.3 naive crossover", scale);
    out.push_str(&format!(
        "Validation at N = {n}, l = {l}, uniform matrices (Eq.9 is an upper bound on the\n\
         optimal color count; the greedy scheduler may sit slightly above it):\n"
    ));
    out.push_str(&validation.render());
    out.push_str(&format!(
        "\nNaive-scheduling crossover at N = {n} (paper: naive GUST drops below 1D beyond\n\
         density 0.008 at N = 16384):\n"
    ));
    out.push_str(&crossover.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bound_report_renders() {
        let s = run(0.04);
        assert!(s.contains("E[C] (Eq.9)"));
        assert!(s.contains("naive/1D ratio"));
    }
}
