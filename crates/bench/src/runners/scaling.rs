//! §5.5 scalability sweep: one matrix, GUST lengths 8 → 512.
//!
//! Shows the tension the paper names: cycles fall roughly as `1/l` while
//! the crossbar's area and power grow superlinearly, so energy per SpMV
//! bottoms out at a moderate length (the reason length-87 beats length-256
//! on energy efficiency in Fig. 8, and the motivation for the parallel
//! arrangement).

use crate::table::{sig3, TextTable};
use crate::workloads::{self, SyntheticKind};
use gust::{Gust, GustConfig};
use gust_energy::resources::{GustPowerBreakdown, GustResources};
use gust_energy::tech::DesignProfile;
use gust_energy::EnergyModel;

/// Runs the sweep.
#[must_use]
pub fn run(scale: f64) -> String {
    let n = workloads::synthetic_dimension(scale * 0.5);
    let m = workloads::synthetic(SyntheticKind::Uniform, n, 2.0e-3, 99);
    let x = workloads::test_vector(n);
    let energy = EnergyModel::paper();

    let mut table = TextTable::new([
        "length",
        "cycles",
        "utilization",
        "crossbar LUT",
        "power (W)",
        "energy/SpMV (mJ)",
    ]);
    let mut best_energy = f64::INFINITY;
    let mut best_length = 0usize;
    for l in [8usize, 16, 32, 64, 87, 128, 256, 512] {
        let run = Gust::new(GustConfig::new(l)).spmv(&m, &x);
        let power = GustPowerBreakdown::at_length(l).total_watts();
        let profile = DesignProfile {
            dynamic_watts: power,
            on_chip_mm: 129.0 * l as f64 / 256.0,
        };
        let e = energy
            .spmv_energy(
                run.report.nnz_processed,
                m.rows(),
                m.cols(),
                run.report.seconds(),
                m.cols() as f64 * 4.0 / 460.0e9,
                &profile,
            )
            .total_j();
        if e < best_energy {
            best_energy = e;
            best_length = l;
        }
        table.push_row([
            format!("{l}"),
            sig3(run.report.cycles as f64),
            format!("{:.2}%", run.report.utilization() * 100.0),
            sig3(GustResources::at_length(l).crossbar.luts),
            format!("{power:.1}"),
            format!("{:.3}", e * 1.0e3),
        ]);
    }

    let mut out = super::header("§5.5 scalability — GUST length sweep", scale);
    out.push_str(&format!(
        "uniform {n}x{n}, d = 2e-3; speed rises with length, but crossbar cost\n\
         makes energy/SpMV best at a moderate length (here: {best_length}).\n\n"
    ));
    out.push_str(&table.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_renders_all_lengths() {
        let s = run(0.02);
        for l in ["8", "87", "256", "512"] {
            assert!(s.contains(&format!("\n{l} ")), "missing length {l}");
        }
        assert!(s.contains("energy/SpMV"));
    }
}
