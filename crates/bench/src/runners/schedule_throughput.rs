//! Preprocessing-throughput benchmark: the seed's `Vec<Vec<_>>` scheduling
//! pipeline versus the flat-buffer pipeline, sequential and multi-threaded.
//!
//! The paper amortizes a one-time scheduling cost over repeated SpMVs
//! (§5.3, Table 4 "Pre."), which makes scheduler throughput the software
//! hot path of the whole system. This runner measures it directly: for
//! uniform, power-law and R-MAT matrices it times
//!
//! * `legacy` — the seed pipeline preserved in [`crate::legacy`]
//!   (per-window nested allocations, hashed lane tables),
//! * `flat-seq` — the production pipeline pinned to one worker
//!   (`with_parallelism(Some(1))`): the pure data-layout win,
//! * `flat-mt` — the production pipeline at the host's available
//!   parallelism: layout + the persistent worker-pool fan-out,
//!
//! and reports wall time, nnz/s, speedup over legacy and peak RSS. Output
//! is the usual text table plus a JSON array ([`TextTable::to_json`]) so
//! future PRs can track the trajectory mechanically.
//!
//! Scale: `GUST_SCALE` as everywhere (dimensions ×s, non-zeros ×s²);
//! `GUST_SCALE=1` runs the full 16 384² / 1.25 M-nnz matrices the
//! acceptance numbers are quoted at. Reps: `GUST_THROUGHPUT_REPS`
//! (default 3, median reported).
//!
//! Peak-RSS caveat: all pipelines run in one process, and resetting the
//! `VmHWM` high-water mark (`clear_refs`) can only lower it to the
//! *current* RSS — heap pages the allocator retains from earlier runs
//! (notably legacy's millions of small vectors) stay counted. The
//! `peak_rss_mb` column is therefore an upper bound for the later rows
//! and comparable across PRs, but not a strict per-pipeline footprint;
//! a fresh process per pipeline would be needed for that.

use crate::legacy;
use crate::table::TextTable;
use gust::{Gust, GustConfig};
use gust_sparse::{gen, CsrMatrix};
use std::time::{Duration, Instant};

/// Full-size workload parameters (scale 1).
const FULL_DIM: usize = 16_384;
const FULL_NNZ: usize = 1_250_000;
/// GUST length the paper reports headline numbers for.
const LENGTH: usize = 256;

/// One measured pipeline run.
struct Measurement {
    pipeline: &'static str,
    threads: usize,
    wall: Duration,
    peak_rss_kb: Option<u64>,
    total_colors: u64,
}

/// Entry point for the `schedule_throughput` binary: full scale unless
/// `GUST_SCALE` says otherwise.
#[must_use]
pub fn run_cli() -> String {
    run(crate::env_scale(1.0))
}

/// Runs the sweep at the given scale and renders the report.
///
/// # Panics
///
/// Panics if any pipeline disagrees with the others on the schedule
/// contents — the benchmark refuses to time wrong answers.
#[must_use]
pub fn run(scale: f64) -> String {
    let dim = ((FULL_DIM as f64 * scale) as usize).max(64);
    let nnz = ((FULL_NNZ as f64 * scale * scale) as usize).max(1000);
    let reps: usize = std::env::var("GUST_THROUGHPUT_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3)
        .max(1);

    let workloads: [(&str, CsrMatrix); 3] = [
        ("uniform", CsrMatrix::from(&gen::uniform(dim, dim, nnz, 11))),
        (
            "power-law",
            CsrMatrix::from(&gen::power_law(dim, dim, nnz, 1.9, 12)),
        ),
        ("rmat", CsrMatrix::from(&gen::rmat(dim, dim, nnz, 13))),
    ];

    let auto_threads = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let config = GustConfig::new(LENGTH);

    let mut out = super::header("schedule_throughput — preprocessing nnz/s", scale);
    out.push_str(&format!(
        "l = {LENGTH}, EC/LB grouped coloring, {reps} reps (median), host parallelism {auto_threads}\n\n"
    ));

    let mut table = TextTable::new([
        "matrix",
        "pipeline",
        "threads",
        "nnz",
        "windows",
        "colors",
        "wall_ms",
        "nnz_per_s",
        "speedup_vs_legacy",
        "peak_rss_mb",
    ]);

    for (name, matrix) in &workloads {
        let measurements = measure_pipelines(matrix, &config, reps, auto_threads);
        let legacy_wall = measurements[0].wall;
        let windows = matrix.rows().div_ceil(LENGTH);
        for m in &measurements {
            let wall_s = m.wall.as_secs_f64();
            table.push_row([
                (*name).to_string(),
                m.pipeline.to_string(),
                m.threads.to_string(),
                matrix.nnz().to_string(),
                windows.to_string(),
                m.total_colors.to_string(),
                format!("{:.3}", wall_s * 1e3),
                format!("{:.0}", matrix.nnz() as f64 / wall_s),
                format!("{:.2}", legacy_wall.as_secs_f64() / wall_s),
                m.peak_rss_kb.map_or_else(
                    || "n/a".to_string(),
                    |kb| format!("{:.1}", kb as f64 / 1024.0),
                ),
            ]);
        }
    }

    out.push_str(&table.render());
    out.push_str("\nJSON:\n");
    out.push_str(&table.to_json());
    out.push('\n');
    out
}

/// Measures the three pipeline shapes on one matrix, asserting they agree.
fn measure_pipelines(
    matrix: &CsrMatrix,
    config: &GustConfig,
    reps: usize,
    auto_threads: usize,
) -> Vec<Measurement> {
    // Correctness gate first: all pipelines must produce identical windows.
    let reference = Gust::new(config.clone().with_parallelism(Some(1))).schedule(matrix);
    let legacy_windows = legacy::legacy_schedule_windows(matrix, config);
    assert_eq!(
        legacy_windows.as_slice(),
        reference.windows(),
        "legacy baseline diverged from the flat pipeline"
    );
    let parallel =
        Gust::new(config.clone().with_parallelism(Some(auto_threads.max(2)))).schedule(matrix);
    assert_eq!(parallel, reference, "parallel schedule diverged");
    let total_colors = reference.total_colors();

    let mut results = Vec::with_capacity(3);
    {
        let (wall, rss) = timed(reps, || {
            std::hint::black_box(legacy::legacy_schedule_windows(matrix, config));
        });
        results.push(Measurement {
            pipeline: "legacy",
            threads: 1,
            wall,
            peak_rss_kb: rss,
            total_colors,
        });
    }
    {
        let gust = Gust::new(config.clone().with_parallelism(Some(1)));
        let (wall, rss) = timed(reps, || {
            std::hint::black_box(gust.schedule(matrix));
        });
        results.push(Measurement {
            pipeline: "flat-seq",
            threads: 1,
            wall,
            peak_rss_kb: rss,
            total_colors,
        });
    }
    {
        let gust = Gust::new(config.clone());
        let (wall, rss) = timed(reps, || {
            std::hint::black_box(gust.schedule(matrix));
        });
        results.push(Measurement {
            pipeline: "flat-mt",
            threads: auto_threads,
            wall,
            peak_rss_kb: rss,
            total_colors,
        });
    }
    results
}

/// Runs `f` `reps` times; returns the median wall time and the peak RSS
/// high-water mark observed across the runs.
fn timed<F: FnMut()>(reps: usize, mut f: F) -> (Duration, Option<u64>) {
    let mut walls = Vec::with_capacity(reps);
    let mut rss = None;
    for _ in 0..reps {
        reset_peak_rss();
        let start = Instant::now();
        f();
        walls.push(start.elapsed());
        rss = rss.max(peak_rss_kb());
    }
    walls.sort_unstable();
    (walls[walls.len() / 2], rss)
}

/// Peak resident set (`VmHWM`) in kB, when the OS exposes it.
fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// Resets the peak-RSS counter so each measurement sees its own high-water
/// mark (Linux `clear_refs`; harmless no-op elsewhere).
fn reset_peak_rss() {
    let _ = std::fs::write("/proc/self/clear_refs", "5");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_at_tiny_scale_and_emits_json() {
        let report = run(0.02);
        assert!(report.contains("schedule_throughput"));
        assert!(report.contains("legacy"));
        assert!(report.contains("flat-seq"));
        assert!(report.contains("flat-mt"));
        assert!(report.contains("JSON:"));
        assert!(report.contains("\"nnz_per_s\":"));
        // Three workloads × three pipelines.
        assert_eq!(report.matches("\"matrix\":").count(), 9);
    }
}
