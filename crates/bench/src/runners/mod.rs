//! One runner per paper artifact; each returns the rendered report string
//! so the bench targets stay one-line mains and the integration tests can
//! smoke-run everything at a small scale.

pub mod ablation;
pub mod bound;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod scaling;
pub mod schedule_throughput;
pub mod serve_load;
pub mod spmv_throughput;
pub mod table1;
pub mod table2;
pub mod table4;
pub mod table5;

/// Standard report header naming the artifact and the scale it ran at.
#[must_use]
pub(crate) fn header(artifact: &str, scale: f64) -> String {
    format!(
        "== {artifact} ==\n(workload scale {scale}; GUST_SCALE=1 reproduces the paper's sizes)\n\n"
    )
}
