//! Table 2 — per-element resource consumption of GUST and 1D: power
//! breakdown and unit counts from the calibrated FPGA model (exact at the
//! published synthesis points).

use crate::table::TextTable;
use gust_energy::resources::{GustPowerBreakdown, GustResources, ONE_D_256};

fn fmt_units(v: f64) -> String {
    if v >= 1000.0 {
        format!("{:.1}K", v / 1000.0)
    } else {
        format!("{v:.0}")
    }
}

/// Renders both halves of Table 2.
#[must_use]
pub fn run(_scale: f64) -> String {
    let lengths = [8usize, 87, 256];
    let gust: Vec<GustResources> = lengths
        .iter()
        .map(|&l| GustResources::at_length(l))
        .collect();
    let power: Vec<GustPowerBreakdown> = lengths
        .iter()
        .map(|&l| GustPowerBreakdown::at_length(l))
        .collect();

    let mut p = TextTable::new([
        "Power (W)",
        "length-256 1D",
        "length-8 GUST",
        "length-87 GUST",
        "length-256 GUST",
    ]);
    /// Accessor selecting one power row of [`GustPowerBreakdown`].
    type PowerRow = fn(&GustPowerBreakdown) -> f64;
    let rows: [(&str, f64, PowerRow); 5] = [
        ("Static", ONE_D_256.static_watts, |b| b.static_watts),
        ("Logic", ONE_D_256.logic_watts, |b| b.logic_watts),
        ("Signals", ONE_D_256.signals_watts, |b| b.signals_watts),
        ("DSP", ONE_D_256.dsp_watts, |b| b.dsp_watts),
        ("I/O", ONE_D_256.io_watts, |b| b.io_watts),
    ];
    for (label, one_d, get) in rows {
        p.push_row([
            label.to_string(),
            format!("{one_d:.1}"),
            format!("{:.2}", get(&power[0])),
            format!("{:.1}", get(&power[1])),
            format!("{:.1}", get(&power[2])),
        ]);
    }
    p.push_row([
        "Total".to_string(),
        format!("{:.1}", ONE_D_256.total_power_watts()),
        format!("{:.1}", power[0].total_watts()),
        format!("{:.1}", power[1].total_watts()),
        format!("{:.1}", power[2].total_watts()),
    ]);

    let mut u = TextTable::new([
        "Units",
        "length-256 1D",
        "length-8 GUST",
        "length-87 GUST",
        "length-256 GUST",
    ]);
    u.push_row([
        "Register".to_string(),
        fmt_units(ONE_D_256.registers),
        fmt_units(gust[0].total_registers()),
        fmt_units(gust[1].total_registers()),
        fmt_units(gust[2].total_registers()),
    ]);
    u.push_row([
        "Input Buffers".to_string(),
        fmt_units(ONE_D_256.input_buffers),
        fmt_units(gust[0].io.buffers),
        fmt_units(gust[1].io.buffers),
        fmt_units(gust[2].io.buffers),
    ]);
    u.push_row([
        "LUT".to_string(),
        fmt_units(ONE_D_256.luts),
        fmt_units(gust[0].total_luts()),
        fmt_units(gust[1].total_luts()),
        fmt_units(gust[2].total_luts()),
    ]);
    u.push_row([
        "DSP".to_string(),
        fmt_units(ONE_D_256.dsps),
        fmt_units(gust[0].total_dsps()),
        fmt_units(gust[1].total_dsps()),
        fmt_units(gust[2].total_dsps()),
    ]);
    u.push_row([
        "I/O Bus".to_string(),
        fmt_units(ONE_D_256.io_bus),
        fmt_units(gust[0].io.io_pins),
        fmt_units(gust[1].io.io_pins),
        fmt_units(gust[2].io.io_pins),
    ]);
    u.push_row([
        "Maximum BW".to_string(),
        format!("{:.0} GB/s", ONE_D_256.max_bandwidth_gbps),
        format!("{:.1} GB/s", gust[0].max_bandwidth_gbps()),
        format!("{:.0} GB/s", gust[1].max_bandwidth_gbps()),
        format!("{:.0} GB/s", gust[2].max_bandwidth_gbps()),
    ]);

    let mut out = super::header("Table 2 — per-element resource consumption", 1.0);
    out.push_str(&p.render());
    out.push('\n');
    out.push_str(&u.render());
    out.push_str(
        "\nNotes: LUT totals follow Table 5's partition sums (Table 2 prints 5.6K for length-87,\n\
         a copy of its register row); DSPs follow Table 5 (512 at length-256, two per MAC pair);\n\
         BW is the logical-input model (l*(64+log2 l)+1 bits/cycle at 96 MHz).\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_match_published_columns() {
        let s = run(1.0);
        // Table 2 bottom row: 35.3, 3.4, 16.8, 56.9 W in the paper; the
        // column sums land within 0.1 W (the paper rounds rows and total
        // independently).
        assert!(s.contains("35.2") || s.contains("35.3"));
        assert!(s.contains("16.8") || s.contains("16.7"));
        assert!(s.contains("56.9") || s.contains("56.8"));
        // Crossbar-dominated LUT count at 256.
        assert!(s.contains("888.0K") || s.contains("888K"));
    }
}
