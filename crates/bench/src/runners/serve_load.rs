//! Open-loop serving benchmark: request latency and aggregate
//! throughput of the `gust::serve` runtime, clean and under the CI
//! fault-injection plan.
//!
//! Unlike the closed-loop kernel benchmarks (submit, wait, repeat —
//! where a slow server conveniently slows the offered load), this
//! runner is **open-loop**: every tenant thread submits on a fixed
//! arrival schedule whether or not earlier requests have completed, so
//! queueing delay shows up in the latency distribution instead of
//! hiding in the arrival gaps. Two legs run back to back on fresh
//! servers:
//!
//! * `clean` — no injected faults: the fast-path baseline,
//! * `injected` — the CI fault plan
//!   (`io_read:0.25,sched_build:0.25,worker_panic:0.05`, plus
//!   `exec_delay:0.1`): schedule builds fail and retry, panels panic
//!   and are retried/degraded, and the report shows what that does to
//!   p50/p99 and throughput. Responses are still required to be exact.
//!
//! Every response is checked bit-identically against the reference
//! [`CsrMatrix::spmv`] before it is counted (integer-valued workload, so
//! every summation order agrees) — the benchmark refuses to time wrong
//! answers. Reported per leg: completed / shed / deadline-missed /
//! degraded counts, achieved batching factor, p50/p99 latency, and
//! aggregate useful nnz/s (completed requests × matrix nnz / wall).
//!
//! Scale: `GUST_SCALE` as everywhere (`--quick` = 0.05). Arrival rate
//! and request counts scale with the workload so the quick leg stays
//! sub-second.

use crate::table::TextTable;
use gust::faults;
use gust::serve::{RetryPolicy, ScheduleRegistry};
use gust::{Gust, GustConfig, GustError, ServeConfig, SpmvServer};
use gust_sparse::{gen, CsrMatrix};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Full-scale workload: matrix dimension and non-zeros.
const FULL_DIM: usize = 4096;
const FULL_NNZ: usize = 200_000;
/// GUST length for the serving engine.
const LENGTH: usize = 64;
/// Tenant threads driving the open loop.
const TENANTS: usize = 4;
/// Requests per tenant at full scale.
const FULL_REQUESTS: usize = 400;
/// Open-loop arrival interval per tenant at full scale.
const FULL_INTERVAL: Duration = Duration::from_micros(500);

/// Rendered report plus the bare JSON rows (for `BENCH_serve.json`).
pub struct ServeLoadOutput {
    /// Human-readable report, JSON section included.
    pub report: String,
    /// The JSON array alone.
    pub json: String,
}

/// Outcome counts and latencies of one leg.
struct LegResult {
    completed: u64,
    shed: u64,
    missed: u64,
    degraded: u64,
    batches: u64,
    batched_requests: u64,
    /// Latencies of completed requests, submit → response.
    latencies: Vec<Duration>,
    wall: Duration,
}

/// Integer-valued uniform matrix: every summation order is exact, so
/// the correctness gate can demand bit-identity to the reference.
fn int_matrix(dim: usize, nnz: usize, seed: u64) -> CsrMatrix {
    let float = CsrMatrix::from(&gen::uniform(dim, dim, nnz, seed));
    let (indptr, indices, values) = float.raw_parts();
    let ints = values
        .iter()
        .map(|v| (v * 7.0).floor().abs() + 1.0)
        .collect();
    CsrMatrix::try_new(dim, dim, indptr.to_vec(), indices.to_vec(), ints)
        .expect("structure unchanged")
}

/// Small-integer input vector, deterministic in `seed`.
fn int_vector(cols: usize, seed: u64) -> Vec<f32> {
    (0..cols)
        .map(|i| (((i as u64).wrapping_mul(seed + 3) % 9) as f32) - 4.0)
        .collect()
}

/// The percentile (0–100) of a sorted latency slice.
fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let rank = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// Entry point for the `serve_load` binary: full scale unless
/// `GUST_SCALE` (or a `--quick` argument, meaning scale 0.05) says
/// otherwise.
#[must_use]
pub fn run_cli() -> ServeLoadOutput {
    let quick = std::env::args().any(|a| a == "--quick");
    run(crate::env_scale(if quick { 0.05 } else { 1.0 }))
}

/// Runs both legs at the given scale and renders the report.
///
/// # Panics
///
/// Panics if any response differs from the reference kernel — the
/// benchmark refuses to time wrong answers — or if a request fails
/// with anything other than the contracted overload/deadline errors.
#[must_use]
pub fn run(scale: f64) -> ServeLoadOutput {
    let dim = ((FULL_DIM as f64 * scale) as usize).max(64);
    let nnz = ((FULL_NNZ as f64 * scale * scale) as usize).max(1_000);
    let requests = ((FULL_REQUESTS as f64 * scale.sqrt()) as usize).max(50);
    let matrix = Arc::new(int_matrix(dim, nnz, 21));

    let legs: [(&str, String); 2] = [
        ("clean", String::new()),
        (
            "injected",
            "io_read:0.25,sched_build:0.25,worker_panic:0.05,exec_delay:0.1".to_string(),
        ),
    ];

    let mut out = super::header("serve_load — open-loop serving latency", scale);
    out.push_str(&format!(
        "matrix {dim}x{dim}, {} nnz (integer-valued: responses gated bit-identically), l = {LENGTH}\n\
         {TENANTS} tenants x {requests} requests, open-loop arrival every {:?}/tenant\n\n",
        matrix.nnz(),
        FULL_INTERVAL,
    ));

    let mut table = TextTable::new([
        "leg",
        "fault_plan",
        "tenants",
        "requests",
        "completed",
        "shed",
        "deadline_missed",
        "degraded",
        "batches",
        "agg_factor",
        "p50_us",
        "p99_us",
        "nnz_per_s",
    ]);

    for (leg, plan) in &legs {
        let result = run_leg(&matrix, plan, requests);
        let mut sorted = result.latencies.clone();
        sorted.sort_unstable();
        let p50 = percentile(&sorted, 50.0);
        let p99 = percentile(&sorted, 99.0);
        let rate = (result.completed as f64 * matrix.nnz() as f64) / result.wall.as_secs_f64();
        let agg = if result.batches == 0 {
            0.0
        } else {
            result.batched_requests as f64 / result.batches as f64
        };
        table.push_row([
            (*leg).to_string(),
            if plan.is_empty() {
                "none".to_string()
            } else {
                plan.clone()
            },
            TENANTS.to_string(),
            (requests * TENANTS).to_string(),
            result.completed.to_string(),
            result.shed.to_string(),
            result.missed.to_string(),
            result.degraded.to_string(),
            result.batches.to_string(),
            format!("{agg:.2}"),
            format!("{:.1}", p50.as_secs_f64() * 1e6),
            format!("{:.1}", p99.as_secs_f64() * 1e6),
            format!("{rate:.0}"),
        ]);
    }

    out.push_str(&table.render());
    out.push_str("\nJSON:\n");
    let json = table.to_json();
    out.push_str(&json);
    out.push('\n');
    ServeLoadOutput { report: out, json }
}

/// One leg: fresh registry and server, open-loop submit from every
/// tenant, exact-result gating, stats harvest.
fn run_leg(matrix: &Arc<CsrMatrix>, plan: &str, requests: usize) -> LegResult {
    // The guard both injects this leg's plan and masks any ambient
    // `GUST_FAULT` so the two legs stay comparable across environments.
    let _guard = faults::override_for_tests(plan);

    let registry = Arc::new(
        ScheduleRegistry::new(Gust::new(GustConfig::new(LENGTH).with_parallelism(Some(2))))
            .with_retry(RetryPolicy {
                attempts: 4,
                base: Duration::from_micros(50),
                cap: Duration::from_micros(500),
            }),
    );
    let server = SpmvServer::start(
        Arc::clone(&registry),
        ServeConfig {
            queue_capacity: 256,
            max_batch: 16,
            default_deadline: Duration::from_secs(5),
            ..ServeConfig::default()
        },
    );
    let key = server.register(matrix);
    let deadline = Duration::from_secs(5);

    let start = Instant::now();
    let (completed, shed, missed, degraded, latencies) = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..TENANTS)
            .map(|tenant| {
                let server = &server;
                let matrix = Arc::clone(matrix);
                scope.spawn(move || {
                    let mut tickets = Vec::with_capacity(requests);
                    let mut shed = 0u64;
                    let t0 = Instant::now();
                    for i in 0..requests {
                        // Open loop: hold the arrival schedule even if
                        // the server is slow.
                        let due = t0 + FULL_INTERVAL.mul_f64(i as f64);
                        if let Some(sleep) = due.checked_duration_since(Instant::now()) {
                            std::thread::sleep(sleep);
                        }
                        let x = int_vector(matrix.cols(), (tenant * 10_000 + i) as u64);
                        match server.submit(tenant, key, x.clone(), Some(deadline)) {
                            Ok(t) => tickets.push((t, x)),
                            Err(GustError::Overloaded { .. }) => shed += 1,
                            Err(e) => panic!("unexpected admission error: {e}"),
                        }
                    }
                    let mut completed = 0u64;
                    let mut missed = 0u64;
                    let mut degraded = 0u64;
                    let mut latencies = Vec::with_capacity(tickets.len());
                    for (t, x) in tickets {
                        match t.wait() {
                            Ok(resp) => {
                                assert_eq!(
                                    resp.output,
                                    matrix.spmv(&x),
                                    "serving returned a wrong answer; refusing to time it"
                                );
                                completed += 1;
                                degraded += u64::from(resp.degraded);
                                latencies.push(resp.latency);
                            }
                            Err(GustError::DeadlineExceeded { .. }) => missed += 1,
                            Err(e) => panic!("unexpected serve error: {e}"),
                        }
                    }
                    (completed, shed, missed, degraded, latencies)
                })
            })
            .collect();
        handles
            .into_iter()
            .fold((0, 0, 0, 0, Vec::new()), |(c, s, m, d, mut lat), h| {
                let (hc, hs, hm, hd, hlat) = h.join().expect("tenant thread");
                lat.extend(hlat);
                (c + hc, s + hs, m + hm, d + hd, lat)
            })
    });
    let wall = start.elapsed();

    let stats = server.stats();
    drop(server);
    LegResult {
        completed,
        shed,
        missed,
        degraded,
        batches: stats.batches,
        batched_requests: stats.batched_requests,
        latencies,
        wall,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The quick leg pair runs end to end, counts add up, and the JSON
    /// rows carry the fields the trajectory tooling keys on.
    #[test]
    fn quick_run_produces_consistent_rows() {
        let out = run(0.02);
        assert!(out.report.contains("serve_load"));
        assert!(out.json.contains("\"leg\": \"clean\""));
        assert!(out.json.contains("\"leg\": \"injected\""));
        assert!(out.json.contains("\"p99_us\""));
        assert!(out.json.contains("\"nnz_per_s\""));
    }

    #[test]
    fn percentile_handles_edges() {
        assert_eq!(percentile(&[], 99.0), Duration::ZERO);
        let one = [Duration::from_millis(3)];
        assert_eq!(percentile(&one, 50.0), one[0]);
        let many: Vec<Duration> = (1..=100).map(Duration::from_micros).collect();
        assert_eq!(percentile(&many, 0.0), Duration::from_micros(1));
        assert_eq!(percentile(&many, 100.0), Duration::from_micros(100));
        assert!(percentile(&many, 50.0) >= Duration::from_micros(49));
    }
}
