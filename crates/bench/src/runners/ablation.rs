//! Ablations of GUST's design choices:
//!
//! 1. the greedy Listing-1 coloring vs the Δ-optimal Kőnig coloring (how
//!    much utilization the paper's heuristic leaves on the table),
//! 2. load balancing on/off per matrix structure (§3.5/§5.4),
//! 3. one monolithic length-`kl` GUST vs `k` parallel length-`l` GUSTs
//!    (§5.5): cycles and crossbar cost.

use crate::table::{sig3, TextTable};
use crate::workloads::{self, SyntheticKind};
use gust::parallel::{ParallelGust, WindowAssignment};
use gust::{ColoringAlgorithm, Gust, GustConfig, SchedulingPolicy};
use gust_energy::resources::GustResources;
use std::time::Instant;

/// Runs all three ablations.
#[must_use]
pub fn run(scale: f64) -> String {
    let mut out = super::header(
        "Ablations — coloring optimality, load balancing, parallel GUST",
        scale,
    );
    out.push_str(&coloring_ablation(scale));
    out.push('\n');
    out.push_str(&load_balance_ablation(scale));
    out.push('\n');
    out.push_str(&parallel_ablation(scale));
    out
}

fn coloring_ablation(scale: f64) -> String {
    let l = 256usize;
    let mut table = TextTable::new([
        "matrix",
        "Vizing bound",
        "greedy-verbatim colors (pre s)",
        "greedy-grouped colors (pre s)",
        "konig colors (pre s)",
    ]);
    // The denser half of the Fig. 7 suite, where coloring quality matters.
    for (entry, matrix) in workloads::figure7_matrices(scale).into_iter().skip(6) {
        let mut cells = vec![entry.name.to_string()];
        for (i, algo) in [
            ColoringAlgorithm::Verbatim,
            ColoringAlgorithm::Grouped,
            ColoringAlgorithm::Konig,
        ]
        .into_iter()
        .enumerate()
        {
            let gust = Gust::new(
                GustConfig::new(l)
                    .with_policy(SchedulingPolicy::EdgeColoringLb)
                    .with_coloring(algo),
            );
            let t0 = Instant::now();
            let schedule = gust.schedule(&matrix);
            let dt = t0.elapsed().as_secs_f64();
            if i == 0 {
                cells.push(sig3(schedule.total_vizing_bound() as f64));
            }
            cells.push(format!("{} ({:.3}s)", schedule.total_colors(), dt));
        }
        table.push_row(cells);
    }
    format!(
        "(1) Edge-coloring optimality (length-256, EC/LB):\n{}",
        table.render()
    )
}

fn load_balance_ablation(scale: f64) -> String {
    let n = workloads::synthetic_dimension(scale * 0.5);
    let l = 256usize;
    let mut table = TextTable::new(["structure", "EC cycles", "EC/LB cycles", "LB improvement"]);
    for kind in [
        SyntheticKind::Uniform,
        SyntheticKind::PowerLaw,
        SyntheticKind::KRegular,
    ] {
        let m = workloads::synthetic(kind, n, 2.0e-3, 42);
        let x = workloads::test_vector(n);
        let ec = Gust::new(GustConfig::new(l).with_policy(SchedulingPolicy::EdgeColoring))
            .spmv(&m, &x)
            .report
            .cycles;
        let lb = Gust::new(GustConfig::new(l).with_policy(SchedulingPolicy::EdgeColoringLb))
            .spmv(&m, &x)
            .report
            .cycles;
        table.push_row([
            kind.label().to_string(),
            sig3(ec as f64),
            sig3(lb as f64),
            format!("{:.2}x", ec as f64 / lb as f64),
        ]);
    }
    format!(
        "(2) Load balancing by structure ({n}x{n}, d = 2e-3; §5.4: LB matters most\n\
         for skewed structures):\n{}",
        table.render()
    )
}

fn parallel_ablation(scale: f64) -> String {
    let n = workloads::synthetic_dimension(scale * 0.5);
    let m = workloads::synthetic(SyntheticKind::Uniform, n, 2.0e-3, 77);
    let x = workloads::test_vector(n);

    let mut table = TextTable::new([
        "configuration",
        "cycles",
        "crossbar LUTs",
        "arithmetic units",
    ]);

    // Monolithic length-256.
    let mono = Gust::new(GustConfig::new(256)).spmv(&m, &x).report;
    table.push_row([
        "1 x length-256".to_string(),
        sig3(mono.cycles as f64),
        sig3(GustResources::at_length(256).crossbar.luts),
        "512".to_string(),
    ]);

    // k parallel length-(256/k).
    for k in [2usize, 4, 8] {
        let l = 256 / k;
        let engine =
            ParallelGust::new(GustConfig::new(l), k).with_assignment(WindowAssignment::RoundRobin);
        let schedule = engine.schedule(&m);
        let run = engine.execute(&schedule, &x);
        table.push_row([
            format!("{k} x length-{l}"),
            sig3(run.report.cycles as f64),
            sig3(k as f64 * GustResources::at_length(l).crossbar.luts),
            "512".to_string(),
        ]);
    }

    format!(
        "(3) Parallel arrangement (§5.5) on uniform {n}x{n}, d = 2e-3 — same arithmetic,\n\
         far less crossbar, somewhat more cycles:\n{}",
        table.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_three_ablations_render() {
        let s = run(0.01);
        assert!(s.contains("(1) Edge-coloring optimality"));
        assert!(s.contains("(2) Load balancing"));
        assert!(s.contains("(3) Parallel arrangement"));
    }
}
