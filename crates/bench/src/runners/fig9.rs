//! Fig. 9 — average bandwidth utilized by length-256 1D and length-256/-87
//! GUST (EC/LB) over the real suite, against each design's "Maximum BW"
//! (all inputs non-zero) at the 96 MHz synthesis clock.

use crate::designs::Design;
use crate::table::TextTable;
use crate::workloads;
use gust::bandwidth;

/// Useful input bandwidth of a 1D array: only non-zero cells carry
/// information, at 8 bytes (value + the vector operand it meets).
fn one_d_useful_gbps(nnz: u64, seconds: f64) -> f64 {
    (nnz as f64 * 8.0) / seconds / 1.0e9
}

/// A 1D array's peak input rate: one 32-bit matrix word per PE plus the
/// 32-bit vector stream, per cycle.
fn one_d_max_gbps(l: usize, frequency_hz: f64) -> f64 {
    ((32 * l + 32) as f64 / 8.0) * frequency_hz / 1.0e9
}

/// Runs the bandwidth comparison.
#[must_use]
pub fn run(scale: f64) -> String {
    let matrices = workloads::figure7_matrices(scale);
    let mut table = TextTable::new([
        "matrix (density)",
        "1D-256 GB/s",
        "GUST256-EC/LB GB/s",
        "GUST87-EC/LB GB/s",
    ]);

    for (entry, matrix) in &matrices {
        let one_d = Design::OneD(256).report(matrix);
        let g256 = Design::GustEcLb(256).report(matrix);
        let g87 = Design::GustEcLb(87).report(matrix);
        table.push_row([
            format!("{} ({})", entry.name, entry.density_label),
            format!(
                "{:.2}",
                one_d_useful_gbps(one_d.nnz_processed, one_d.seconds())
            ),
            format!(
                "{:.2}",
                bandwidth::achieved_bytes_per_second(
                    g256.nnz_processed,
                    256,
                    g256.cycles.saturating_sub(2),
                    g256.frequency_hz,
                ) / 1.0e9
            ),
            format!(
                "{:.2}",
                bandwidth::achieved_bytes_per_second(
                    g87.nnz_processed,
                    87,
                    g87.cycles.saturating_sub(2),
                    g87.frequency_hz,
                ) / 1.0e9
            ),
        ]);
    }
    table.push_row([
        "Maximum BW (all inputs non-zero)".to_string(),
        format!("{:.2}", one_d_max_gbps(256, 96.0e6)),
        format!(
            "{:.2}",
            bandwidth::required_bytes_per_second(256, 96.0e6) / 1.0e9
        ),
        format!(
            "{:.2}",
            bandwidth::required_bytes_per_second(87, 96.0e6) / 1.0e9
        ),
    ]);

    let mut out = super::header("Figure 9 — bandwidth utilization", scale);
    out.push_str(
        "GUST's scheduled stream is dense, so its useful bandwidth approaches its maximum;\n\
         the 1D array wastes nearly all of its stream on zeros.\n\n",
    );
    out.push_str(&table.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gust_uses_bandwidth_better_than_1d() {
        let matrices = workloads::figure7_matrices(0.01);
        let (_, matrix) = &matrices[5];
        let one_d = Design::OneD(256).report(matrix);
        let g256 = Design::GustEcLb(256).report(matrix);
        let one_d_frac =
            one_d_useful_gbps(one_d.nnz_processed, one_d.seconds()) / one_d_max_gbps(256, 96.0e6);
        let gust_frac =
            bandwidth::stream_utilization(g256.nnz_processed, 256, g256.cycles.saturating_sub(2));
        assert!(
            gust_frac > one_d_frac * 5.0,
            "gust {gust_frac} vs 1d {one_d_frac}"
        );
    }

    #[test]
    fn report_includes_max_bw_line() {
        let s = run(0.01);
        assert!(s.contains("Maximum BW"));
    }
}
