//! Table 1 — qualities of the related designs and GUST: hardware
//! inventory, closed-form execution time, and the measured geometric-mean
//! utilization over the Fig. 7 suite.

use crate::designs::Design;
use crate::table::TextTable;
use crate::{geo_mean, workloads};

/// Renders Table 1. The utilization column is *measured* (the same runs as
/// Fig. 7a, geometric mean), everything else is the design's closed form.
#[must_use]
pub fn run(scale: f64) -> String {
    let matrices = workloads::figure7_matrices(scale);

    let rows: [(Design, &str, &str); 5] = [
        (
            Design::FlexTpu(256),
            "grid of sqrt(l) x sqrt(l) PEs (2D systolic)",
            "~3 * #NZ / l",
        ),
        (Design::OneD(256), "strip of l PEs", "m*n/l + l + 1"),
        (
            Design::AdderTree(256),
            "binary tree: l multipliers + l-1 adders",
            "m*n/l + log2(l) + 1",
        ),
        (
            Design::Fafnir(128),
            "binary tree: l leaves + (l/2)*log2(l) adders",
            "max column-segment load + log2(l) + 1",
        ),
        (
            Design::GustEcLb(256),
            "l multipliers + l adders + full crossbar",
            "sum of window colors + 2 (~3*#NZ/l worst case)",
        ),
    ];

    let mut table = TextTable::new([
        "design",
        "hardware",
        "execution time (cycles)",
        "measured geo-mean utilization",
    ]);
    for (design, hardware, formula) in rows {
        let utils: Vec<f64> = matrices
            .iter()
            .map(|(_, m)| design.report(m).utilization())
            .collect();
        let g = geo_mean(&utils).unwrap_or(0.0);
        table.push_row([
            design.label(),
            hardware.to_string(),
            formula.to_string(),
            format!("{:.2}%", g * 100.0),
        ]);
    }

    let mut out = super::header("Table 1 — design qualities", scale);
    out.push_str("paper's reported utilizations: FlexTPU 1.45%, 1D 0.08%, AT 0.08%, Fafnir 4.67%, GUST 33.67%\n");
    out.push_str(&table.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_lists_all_five_designs_with_formulas() {
        let s = run(0.01);
        for needle in [
            "FlexTPU-256",
            "1D-256",
            "AT-256",
            "Fafnir-128",
            "GUST256-EC/LB",
            "m*n/l + l + 1",
        ] {
            assert!(s.contains(needle), "missing {needle}");
        }
    }
}
