//! Execution-throughput benchmark: the seed's array-of-structs
//! slot-at-a-time engine versus the structure-of-arrays engine, single
//! vector and batched.
//!
//! PR 1's `schedule_throughput` tracks the one-time preprocessing cost;
//! this runner tracks the thing the schedule exists to accelerate — the
//! per-SpMV execution path the paper amortizes that cost over (§5.3). For
//! uniform, power-law and R-MAT matrices it times
//!
//! * `legacy-slots` — the seed execution engine preserved in
//!   [`crate::legacy`]: array-of-structs slots, per-cycle counter
//!   bookkeeping, all-`l` adder dumps,
//! * `soa-single` — the production [`Gust::execute`]: one contiguous
//!   structure-of-arrays pass per window, analytic accounting,
//! * `soa-batch8-seq` — [`Gust::execute_batch`] with a register block of
//!   8 right-hand sides, pinned to one thread: the pure one-pass batching
//!   win (one register block, so no threading is involved),
//! * `soa-batch32-mt` — the batched kernel over 32 right-hand sides
//!   (four register blocks) with its `with_parallelism` fan-out at host
//!   parallelism — the row a multi-core runner moves,
//! * `reference-csr` — the unrolled [`CsrMatrix::spmv`] baseline kernel,
//!   for context against the engine models,
//!
//! and reports wall time, nnz/s (batched kernels process `batch × nnz`
//! useful non-zeros per pass) and speedup over the seed layout. Output is
//! the usual text table plus a JSON array ([`TextTable::to_json`]); the
//! `spmv_throughput` binary also writes the JSON to `BENCH_spmv.json` so
//! CI can archive the perf trajectory per PR.
//!
//! Every kernel is checked bit-for-bit against the fast engine before it
//! is timed — the benchmark refuses to time wrong answers.
//!
//! Scale: `GUST_SCALE` as everywhere (dimensions ×s, non-zeros ×s²);
//! `GUST_SCALE=1` runs the full 16 384² / 1.25 M-nnz matrices the
//! acceptance numbers are quoted at. Reps: `GUST_THROUGHPUT_REPS`
//! (default 3, median reported).

use crate::legacy;
use crate::table::TextTable;
use gust::{Gust, GustConfig};
use gust_sparse::{gen, CsrMatrix};
use std::time::{Duration, Instant};

/// Full-size workload parameters (scale 1).
const FULL_DIM: usize = 16_384;
const FULL_NNZ: usize = 1_250_000;
/// GUST length the paper reports headline numbers for.
const LENGTH: usize = 256;
/// Right-hand sides per batched pass (one register block).
const BATCH: usize = Gust::REG_BLOCK;
/// Right-hand sides for the threaded row: four register blocks, so the
/// `std::thread::scope` fan-out has work to split on multi-core hosts.
const BATCH_MT: usize = 4 * Gust::REG_BLOCK;

/// Rendered report plus the bare JSON rows (for `BENCH_spmv.json`).
pub struct ThroughputOutput {
    /// Human-readable report, JSON section included.
    pub report: String,
    /// The JSON array alone.
    pub json: String,
}

/// One measured kernel run.
struct Measurement {
    kernel: &'static str,
    batch: usize,
    wall: Duration,
    /// Useful non-zeros processed per pass (`batch × nnz`).
    work: u64,
}

/// Entry point for the `spmv_throughput` binary: full scale unless
/// `GUST_SCALE` (or a `--quick` argument, meaning scale 0.05) says
/// otherwise.
#[must_use]
pub fn run_cli() -> ThroughputOutput {
    let quick = std::env::args().any(|a| a == "--quick");
    run(crate::env_scale(if quick { 0.05 } else { 1.0 }))
}

/// Runs the sweep at the given scale and renders the report.
///
/// # Panics
///
/// Panics if any kernel disagrees with the fast engine on the output
/// vector — the benchmark refuses to time wrong answers.
#[must_use]
pub fn run(scale: f64) -> ThroughputOutput {
    let dim = ((FULL_DIM as f64 * scale) as usize).max(64);
    let nnz = ((FULL_NNZ as f64 * scale * scale) as usize).max(1000);
    let reps: usize = std::env::var("GUST_THROUGHPUT_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3)
        .max(1);

    let workloads: [(&str, CsrMatrix); 3] = [
        ("uniform", CsrMatrix::from(&gen::uniform(dim, dim, nnz, 11))),
        (
            "power-law",
            CsrMatrix::from(&gen::power_law(dim, dim, nnz, 1.9, 12)),
        ),
        ("rmat", CsrMatrix::from(&gen::rmat(dim, dim, nnz, 13))),
    ];

    let auto_threads = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let mut out = super::header("spmv_throughput — execution nnz/s", scale);
    out.push_str(&format!(
        "l = {LENGTH}, EC/LB schedule, batch = {BATCH} (mt: {BATCH_MT}), {reps} reps (median), host parallelism {auto_threads}\n\n"
    ));

    let mut table = TextTable::new([
        "matrix",
        "kernel",
        "batch",
        "nnz",
        "wall_ms",
        "nnz_per_s",
        "speedup_vs_legacy",
    ]);

    for (name, matrix) in &workloads {
        let measurements = measure_kernels(matrix, reps);
        let legacy_rate = measurements[0].work as f64 / measurements[0].wall.as_secs_f64();
        for m in &measurements {
            let wall_s = m.wall.as_secs_f64();
            let rate = m.work as f64 / wall_s;
            table.push_row([
                (*name).to_string(),
                m.kernel.to_string(),
                m.batch.to_string(),
                matrix.nnz().to_string(),
                format!("{:.3}", wall_s * 1e3),
                format!("{rate:.0}"),
                format!("{:.2}", rate / legacy_rate),
            ]);
        }
    }

    out.push_str(&table.render());
    out.push_str("\nJSON:\n");
    let json = table.to_json();
    out.push_str(&json);
    out.push('\n');
    ThroughputOutput { report: out, json }
}

/// Measures the five kernel shapes on one matrix, asserting they agree
/// with the fast engine bit for bit first.
fn measure_kernels(matrix: &CsrMatrix, reps: usize) -> Vec<Measurement> {
    let nnz = matrix.nnz() as u64;
    let seq = Gust::new(GustConfig::new(LENGTH).with_parallelism(Some(1)));
    let mt = Gust::new(GustConfig::new(LENGTH));
    let schedule = seq.schedule(matrix);
    let x = crate::test_vector(matrix.cols());
    let panel = crate::workloads::shifted_panel(&x, BATCH, 0.25);
    let panel_mt = crate::workloads::shifted_panel(&x, BATCH_MT, 0.25);

    // Correctness gate: every timed kernel must agree with the fast engine.
    let reference = seq.execute(&schedule, &x);
    let slot_windows = legacy::legacy_slot_windows(&schedule);
    let (legacy_y, _) = legacy::legacy_execute(&schedule, &slot_windows, &x);
    assert_eq!(legacy_y, reference.output, "legacy executor diverged");
    let (batched, _) = seq.execute_batch(&schedule, &panel, BATCH);
    let (batched_mt, _) = mt.execute_batch(&schedule, &panel_mt, BATCH_MT);
    let rows = schedule.rows();
    for j in 0..BATCH_MT {
        let col = &panel_mt[j * matrix.cols()..(j + 1) * matrix.cols()];
        let single = seq.execute(&schedule, col);
        assert_eq!(
            &batched_mt[j * rows..(j + 1) * rows],
            single.output.as_slice(),
            "threaded batched column {j} diverged from the scalar path"
        );
        if j < BATCH {
            assert_eq!(
                &batched[j * rows..(j + 1) * rows],
                single.output.as_slice(),
                "batched column {j} diverged from the scalar path"
            );
        }
    }

    let mut results = Vec::with_capacity(5);
    results.push(Measurement {
        kernel: "legacy-slots",
        batch: 1,
        wall: timed(reps, || {
            std::hint::black_box(legacy::legacy_execute(&schedule, &slot_windows, &x));
        }),
        work: nnz,
    });
    results.push(Measurement {
        kernel: "soa-single",
        batch: 1,
        wall: timed(reps, || {
            std::hint::black_box(seq.execute(&schedule, &x));
        }),
        work: nnz,
    });
    results.push(Measurement {
        kernel: "soa-batch8-seq",
        batch: BATCH,
        wall: timed(reps, || {
            std::hint::black_box(seq.execute_batch(&schedule, &panel, BATCH));
        }),
        work: BATCH as u64 * nnz,
    });
    results.push(Measurement {
        kernel: "soa-batch32-mt",
        batch: BATCH_MT,
        wall: timed(reps, || {
            std::hint::black_box(mt.execute_batch(&schedule, &panel_mt, BATCH_MT));
        }),
        work: BATCH_MT as u64 * nnz,
    });
    results.push(Measurement {
        kernel: "reference-csr",
        batch: 1,
        wall: timed(reps, || {
            std::hint::black_box(matrix.spmv(&x));
        }),
        work: nnz,
    });
    results
}

/// Runs `f` `reps` times and returns the median wall time.
fn timed<F: FnMut()>(reps: usize, mut f: F) -> Duration {
    let mut walls = Vec::with_capacity(reps);
    for _ in 0..reps {
        let start = Instant::now();
        f();
        walls.push(start.elapsed());
    }
    walls.sort_unstable();
    walls[walls.len() / 2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_at_tiny_scale_and_emits_json() {
        let out = run(0.02);
        assert!(out.report.contains("spmv_throughput"));
        for kernel in [
            "legacy-slots",
            "soa-single",
            "soa-batch8-seq",
            "soa-batch32-mt",
            "reference-csr",
        ] {
            assert!(out.report.contains(kernel), "missing {kernel}");
        }
        assert!(out.report.contains("JSON:"));
        assert!(out.json.contains("\"nnz_per_s\":"));
        assert!(out.json.contains("\"speedup_vs_legacy\":"));
        // Three workloads × five kernels.
        assert_eq!(out.json.matches("\"matrix\":").count(), 15);
    }
}
