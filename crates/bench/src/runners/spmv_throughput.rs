//! Execution-throughput benchmark: the seed's array-of-structs
//! slot-at-a-time engine versus the structure-of-arrays engine, single
//! vector and batched, under every kernel backend the host can run —
//! plus the cache-blocked (banded) and 2D row×column tiled schedules on
//! LLC-exceeding workloads.
//!
//! PR 1's `schedule_throughput` tracks the one-time preprocessing cost;
//! this runner tracks the thing the schedule exists to accelerate — the
//! per-SpMV execution path the paper amortizes that cost over (§5.3). For
//! uniform, power-law and R-MAT matrices — plus a wide hub-concentrated
//! matrix that exercises the engine's window-local operand staging, two
//! **LLC-exceeding-operand** shapes (2²⁰ rows, 4× as many columns at
//! full scale) whose input vector is 16× the forced cache budget, and an
//! **LLC-exceeding-output** shape (`llc-tall-out`, 2²² rows at full
//! scale) whose output vector is 16× the forced row budget — it times
//!
//! * `legacy-slots` — the seed execution engine preserved in
//!   [`crate::legacy`]: array-of-structs slots, per-cycle counter
//!   bookkeeping, all-`l` adder dumps,
//! * `soa-single` — the production [`Gust::execute`] (one contiguous
//!   structure-of-arrays pass per window, analytic accounting), once per
//!   available backend — outputs are bit-identical across backends, only
//!   the wall clock moves,
//! * `soa-batch-seq` — [`Gust::execute_batch`] over exactly one register
//!   block (the backend's `reg_block()` width), pinned to one
//!   thread: the pure one-pass batching win, once per available backend,
//! * `soa-batch-f64` — [`Gust::execute_batch_f64`] over one f64 register
//!   block (`reg_block_f64()`, 8 lanes everywhere), once per available
//!   backend: the double-precision walk iterative solvers run at
//!   production scale, gated against the exact-order f64 CSR oracle,
//! * `soa-single-banded` / `soa-batch-banded` — the cache-blocked
//!   [`Gust::execute_banded`] / [`Gust::execute_batch_banded`] over a
//!   [`gust::BandedSchedule`], once per available backend. Cache-resident
//!   shapes run under the auto-detected budget (usually one band — the
//!   ≤ 5 % no-regression check); the LLC shapes force a small budget so
//!   every gather hits an L2-resident band slice. Band plans are sized
//!   per call since PR 5: single rows at batch width 1, batch rows at
//!   the register block, both capped by the matrix's nnz/row density,
//! * `soa-batch-tiled` — the 2D [`Gust::execute_batch_tiled`] over a
//!   [`gust::TiledSchedule`], once per available backend: row tiles
//!   sized by the (forced, on `llc-tall-out`) row budget, each tile
//!   independently banded, so the accumulator carry stays confined to a
//!   cache-resident output slice,
//! * `soa-batch-mt` — the batched kernel over four register blocks
//!   fanned out on the persistent worker pool at host parallelism, on
//!   the best-available backend — the row a multi-core runner moves,
//! * `reference-csr` — the [`CsrMatrix::spmv`] baseline kernel, once per
//!   available backend, for context against the engine models,
//!
//! and reports wall time, nnz/s (batched kernels process `batch × nnz`
//! useful non-zeros per pass) and speedup over the seed layout. Every row
//! records the **backend name**, the **element type** (`elem`, f32/f64),
//! the **detected CPU features**, the
//! **register-block width**, the **real nnz of the matrix it ran on**
//! (shapes differ now — a constant column was a PR 3 reporting bug), the
//! **band count** (`banded`, 0 for unbanded rows; the max over tiles for
//! tiled rows), the **cache budget** the blocked schedule was built with
//! (`cache_budget`, bytes; 0 for unblocked rows), and the **row-tile
//! count** and **row budget** of the tiled rows (`row_tiles` /
//! `row_budget`, 0 for untiled rows), so `BENCH_spmv.json` entries are
//! comparable across runners.
//!
//! Every kernel is checked against the scalar-backend engine before it is
//! timed — bit for bit where the contract is bit-identity (legacy engine,
//! `soa-single` on every backend, scalar batch columns, banded vs. its
//! own flattened schedule and tiled vs. its per-tile flattened schedules
//! on *every* backend), within the documented FMA-contraction bound for
//! AVX2/AVX-512 batch columns and the f64 oracle bound for the f64 rows.
//! The benchmark refuses to time wrong answers.
//!
//! Scale: `GUST_SCALE` as everywhere (dimensions ×s, non-zeros ×s²);
//! `GUST_SCALE=1` runs the full 16 384² / 1.25 M-nnz matrices the
//! acceptance numbers are quoted at. Reps: `GUST_THROUGHPUT_REPS`
//! (default 3, median reported).

use crate::legacy;
use crate::table::TextTable;
use gust::kernels::{cpu_features, Backend};
use gust::{Gust, GustConfig};
use gust_sparse::ops::max_relative_error;
use gust_sparse::{gen, CsrMatrix};
use std::time::{Duration, Instant};

/// Full-size workload parameters (scale 1).
const FULL_DIM: usize = 16_384;
const FULL_NNZ: usize = 1_250_000;
/// GUST length the paper reports headline numbers for.
const LENGTH: usize = 256;
/// Register blocks for the threaded row: four, so the worker-pool
/// fan-out has work to split on multi-core hosts.
const MT_BLOCKS: usize = 4;

/// Rendered report plus the bare JSON rows (for `BENCH_spmv.json`).
pub struct ThroughputOutput {
    /// Human-readable report, JSON section included.
    pub report: String,
    /// The JSON array alone.
    pub json: String,
}

/// One measured kernel run.
struct Measurement {
    kernel: &'static str,
    backend: &'static str,
    /// Element type the kernel ran in: `"f32"` or `"f64"`.
    elem: &'static str,
    /// Register-block width of the batched kernels; 1 for single-vector
    /// rows.
    reg_block: usize,
    batch: usize,
    /// Band count of the banded/tiled rows (for tiled rows, the maximum
    /// over tiles); 0 for unblocked kernels.
    banded: usize,
    /// Cache budget (bytes) the banded/tiled schedule targeted; 0 for
    /// unblocked kernels.
    cache_budget: usize,
    /// Row-tile count of the tiled rows; 0 for untiled kernels.
    row_tiles: usize,
    /// Row budget (bytes) the tiled schedule targeted; 0 for untiled
    /// kernels.
    row_budget: usize,
    wall: Duration,
    /// Useful non-zeros processed per pass (`batch × nnz`).
    work: u64,
}

/// One benchmarked matrix: label, data, and the budgets its blocked
/// rows force (`None` = the auto-detected budgets).
struct Workload {
    name: &'static str,
    matrix: CsrMatrix,
    banded_budget: Option<usize>,
    row_budget: Option<usize>,
}

/// The backends worth measuring on this host, scalar first.
fn available_backends() -> Vec<Backend> {
    let mut backends = vec![Backend::Scalar];
    if Backend::Avx2.is_available() {
        backends.push(Backend::Avx2);
    }
    if Backend::Avx512.is_available() {
        backends.push(Backend::Avx512);
    }
    backends
}

/// Entry point for the `spmv_throughput` binary: full scale unless
/// `GUST_SCALE` (or a `--quick` argument, meaning scale 0.05) says
/// otherwise.
#[must_use]
pub fn run_cli() -> ThroughputOutput {
    let quick = std::env::args().any(|a| a == "--quick");
    run(crate::env_scale(if quick { 0.05 } else { 1.0 }))
}

/// Runs the sweep at the given scale and renders the report.
///
/// # Panics
///
/// Panics if any kernel disagrees with the scalar engine beyond its
/// contract — the benchmark refuses to time wrong answers.
#[must_use]
pub fn run(scale: f64) -> ThroughputOutput {
    let dim = ((FULL_DIM as f64 * scale) as usize).max(64);
    let nnz = ((FULL_NNZ as f64 * scale * scale) as usize).max(1000);
    let reps: usize = std::env::var("GUST_THROUGHPUT_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3)
        .max(1);

    // The fourth workload is the window-local staging showcase: a wide
    // hub-concentrated matrix whose input vector dwarfs on-chip cache
    // while each window touches only the hub columns (see
    // [`crate::workloads::hub_matrix`]). The square generators keep the
    // whole operand block cache-resident, so they exercise the
    // interleave path instead. The trailing three are the LLC-exceeding
    // cache-blocking acceptance shapes ([`crate::workloads::llc_workloads`]):
    // input vector = 16× the forced cache budget (llc-uniform /
    // llc-power-law), output vector = 16× the forced row budget
    // (llc-tall-out).
    let hubs = (dim / 16).max(per_row_hubs_floor(dim, nnz));
    let mut workloads = vec![
        Workload {
            name: "uniform",
            matrix: CsrMatrix::from(&gen::uniform(dim, dim, nnz, 11)),
            banded_budget: None,
            row_budget: None,
        },
        Workload {
            name: "power-law",
            matrix: CsrMatrix::from(&gen::power_law(dim, dim, nnz, 1.9, 12)),
            banded_budget: None,
            row_budget: None,
        },
        Workload {
            name: "rmat",
            matrix: CsrMatrix::from(&gen::rmat(dim, dim, nnz, 13)),
            banded_budget: None,
            row_budget: None,
        },
        Workload {
            name: "hub-reuse",
            matrix: crate::workloads::hub_matrix(dim, dim * 16, nnz, hubs, 14),
            banded_budget: None,
            row_budget: None,
        },
    ];
    for llc in crate::workloads::llc_workloads(scale) {
        workloads.push(Workload {
            name: llc.name,
            matrix: llc.matrix,
            banded_budget: Some(llc.cache_budget),
            row_budget: llc.row_budget,
        });
    }

    let features = cpu_features();
    let backends = available_backends();
    let best = *backends.last().expect("scalar is always present");
    let auto_threads = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let mut out = super::header("spmv_throughput — execution nnz/s", scale);
    out.push_str(&format!(
        "l = {LENGTH}, EC/LB schedule, {reps} reps (median), host parallelism {auto_threads}\n\
         backends: {} (features: {features}); batch = one register block per backend (mt: {MT_BLOCKS} blocks on {})\n\
         banded/tiled rows: auto budgets on cache-resident shapes, forced budgets on llc-* (spilling vector = 16x its budget)\n\n",
        backends
            .iter()
            .map(|b| format!("{} (reg_block {})", b.name(), b.reg_block()))
            .collect::<Vec<_>>()
            .join(", "),
        best.name(),
    ));

    let mut table = TextTable::new([
        "matrix",
        "kernel",
        "backend",
        "elem",
        "features",
        "reg_block",
        "batch",
        "banded",
        "cache_budget",
        "row_tiles",
        "row_budget",
        "nnz",
        "wall_ms",
        "nnz_per_s",
        "speedup_vs_legacy",
    ]);

    for workload in &workloads {
        let measurements = measure_kernels(workload, &backends, best, reps);
        let legacy_rate = measurements[0].work as f64 / measurements[0].wall.as_secs_f64();
        for m in &measurements {
            let wall_s = m.wall.as_secs_f64();
            let rate = m.work as f64 / wall_s;
            table.push_row([
                workload.name.to_string(),
                m.kernel.to_string(),
                m.backend.to_string(),
                m.elem.to_string(),
                features.clone(),
                m.reg_block.to_string(),
                m.batch.to_string(),
                m.banded.to_string(),
                m.cache_budget.to_string(),
                m.row_tiles.to_string(),
                m.row_budget.to_string(),
                workload.matrix.nnz().to_string(),
                format!("{:.3}", wall_s * 1e3),
                format!("{rate:.0}"),
                format!("{:.2}", rate / legacy_rate),
            ]);
        }
    }

    out.push_str(&table.render());
    out.push_str("\nJSON:\n");
    let json = table.to_json();
    out.push_str(&json);
    out.push('\n');
    ThroughputOutput { report: out, json }
}

/// Smallest hub count that keeps `hub_matrix` rows collision-free.
fn per_row_hubs_floor(rows: usize, nnz: usize) -> usize {
    nnz.div_ceil(rows) + 1
}

/// Builds a single-threaded engine pinned to `backend` (and, for banded
/// and tiled schedules, to the forced budgets).
fn engine(backend: Backend, budget: Option<usize>, row_budget: Option<usize>) -> Gust {
    Gust::new(
        GustConfig::new(LENGTH)
            .with_parallelism(Some(1))
            .with_backend(Some(backend))
            .with_cache_budget(budget)
            .with_row_budget(row_budget),
    )
}

/// Measures the kernel shapes on one matrix, asserting each agrees with
/// the scalar engine (bit for bit or within the FMA bound, per contract)
/// first.
fn measure_kernels(
    workload: &Workload,
    backends: &[Backend],
    best: Backend,
    reps: usize,
) -> Vec<Measurement> {
    let matrix = &workload.matrix;
    let nnz = matrix.nnz() as u64;
    let scalar = engine(Backend::Scalar, None, None);
    let schedule = scalar.schedule(matrix);
    let rows = schedule.rows();
    let x = crate::test_vector(matrix.cols());

    // The blocked schedules: forced budgets on the LLC shapes, auto
    // budgets (usually a single band / tile) on cache-resident ones.
    // Single-vector rows get a single-width band plan and batch rows a
    // register-block-width plan — the per-call sizing this PR fixes —
    // and the tiled rows compose row tiles with per-tile bands. Each
    // schedule's flattened form anchors the bit-identity gates below.
    let rb_best = best.reg_block();
    let blocked = engine(best, workload.banded_budget, workload.row_budget);
    let banded_single = blocked.schedule_banded(matrix);
    let banded_batch = blocked.schedule_banded_for_batch(matrix, rb_best);
    let tiled = blocked.schedule_tiled_for_batch(matrix, rb_best);
    let budget_used = workload
        .banded_budget
        .unwrap_or_else(gust::config::default_cache_budget);
    let row_budget_used = workload
        .row_budget
        .unwrap_or_else(gust::config::default_row_budget);
    let single_flat = banded_single.to_unbanded();
    let batch_flat = banded_batch.to_unbanded();
    let tiled_flats: Vec<_> = tiled
        .tiles()
        .iter()
        .map(gust::BandedSchedule::to_unbanded)
        .collect();
    let tile_bands = tiled
        .tiles()
        .iter()
        .map(|t| t.bands().count())
        .max()
        .unwrap_or(1);

    // Correctness gates. The scalar single-vector engine is the anchor.
    let reference = scalar.execute(&schedule, &x);
    let slot_windows = legacy::legacy_slot_windows(&schedule);
    let (legacy_y, _) = legacy::legacy_execute(&schedule, &slot_windows, &x);
    assert_eq!(legacy_y, reference.output, "legacy executor diverged");
    let f64_reference: Vec<f32> = matrix.spmv_f64(&x).iter().map(|&v| v as f32).collect();

    let mut results = Vec::new();
    results.push(Measurement {
        kernel: "legacy-slots",
        backend: Backend::Scalar.name(),
        elem: "f32",
        reg_block: 1,
        batch: 1,
        banded: 0,
        cache_budget: 0,
        row_tiles: 0,
        row_budget: 0,
        wall: timed(reps, || {
            std::hint::black_box(legacy::legacy_execute(&schedule, &slot_windows, &x));
        }),
        work: nnz,
    });

    for &backend in backends {
        let gust = engine(backend, workload.banded_budget, workload.row_budget);
        let rb = backend.reg_block();
        let panel = crate::workloads::shifted_panel(&x, rb, 0.25);

        // Single vector: bit-identical across backends, by contract.
        let single = gust.execute(&schedule, &x);
        assert_eq!(
            single.output,
            reference.output,
            "{} single-vector engine diverged from scalar",
            backend.name()
        );
        // Batched: scalar columns bit-identical to the scalar path, AVX2
        // columns within the FMA-contraction bound.
        let (batched, _) = gust.execute_batch(&schedule, &panel, rb);
        for j in 0..rb {
            let col = &panel[j * matrix.cols()..(j + 1) * matrix.cols()];
            let expect = scalar.execute(&schedule, col);
            let got = &batched[j * rows..(j + 1) * rows];
            if backend == Backend::Scalar {
                assert_eq!(
                    got,
                    expect.output.as_slice(),
                    "scalar batched column {j} diverged from the scalar path"
                );
            } else {
                let err = max_relative_error(got, &expect.output);
                assert!(
                    err < 1e-3,
                    "{} batched column {j} beyond the FMA bound: {err}",
                    backend.name()
                );
            }
        }
        // Banded/tiled: bit-identical to the unbanded engine on their
        // own flattened schedules, under every backend — the blocking
        // contract. Single and batch rows use differently-sized band
        // plans, so each is gated against its own flattening.
        let banded_run = gust.execute_banded(&banded_single, &x);
        let flat_run = gust.execute(&single_flat, &x);
        assert_eq!(
            banded_run.output,
            flat_run.output,
            "{} banded single-vector walk diverged from its flattened schedule",
            backend.name()
        );
        let err = max_relative_error(&banded_run.output, &f64_reference);
        assert!(err < 1e-3, "{} banded diverged: {err}", backend.name());
        let (banded_batch_y, _) = gust.execute_batch_banded(&banded_batch, &panel, rb);
        let (flat_batch_y, _) = gust.execute_batch(&batch_flat, &panel, rb);
        assert_eq!(
            banded_batch_y,
            flat_batch_y,
            "{} banded batch diverged from its flattened schedule",
            backend.name()
        );
        // Tiled: per-tile bit-identity — the tiled panel must equal the
        // unbanded engine run on every tile's flattened schedule,
        // stitched over the row tiles.
        let (tiled_y, _) = gust.execute_batch_tiled(&tiled, &panel, rb);
        let mut tiled_expected = vec![0.0f32; rows * rb];
        for (t, flat) in tiled_flats.iter().enumerate() {
            let (y_flat, _) = gust.execute_batch(flat, &panel, rb);
            let range = tiled.tile_range(t);
            for j in 0..rb {
                tiled_expected[j * rows + range.start..j * rows + range.end]
                    .copy_from_slice(&y_flat[j * range.len()..(j + 1) * range.len()]);
            }
        }
        assert_eq!(
            tiled_y,
            tiled_expected,
            "{} tiled batch diverged from its per-tile flattened schedules",
            backend.name()
        );
        // Reference CSR kernel against the f64 oracle.
        let y_ref = matrix.spmv_with(backend, &x);
        let err = max_relative_error(&y_ref, &f64_reference);
        assert!(
            err < 1e-3,
            "{} reference CSR diverged: {err}",
            backend.name()
        );

        results.push(Measurement {
            kernel: "soa-single",
            backend: backend.name(),
            elem: "f32",
            reg_block: 1,
            batch: 1,
            banded: 0,
            cache_budget: 0,
            row_tiles: 0,
            row_budget: 0,
            wall: timed(reps, || {
                std::hint::black_box(gust.execute(&schedule, &x));
            }),
            work: nnz,
        });
        results.push(Measurement {
            kernel: "soa-batch-seq",
            backend: backend.name(),
            elem: "f32",
            reg_block: rb,
            batch: rb,
            banded: 0,
            cache_budget: 0,
            row_tiles: 0,
            row_budget: 0,
            wall: timed(reps, || {
                std::hint::black_box(gust.execute_batch(&schedule, &panel, rb));
            }),
            work: rb as u64 * nnz,
        });
        // Double-precision batched walk over one f64 register block:
        // each widened column is gated against the exact-order f64 CSR
        // oracle (re-association in f64 leaves ~k·ε_f64 of slack —
        // invisible at 1e-9).
        let rb64 = backend.reg_block_f64();
        let panel64_f32 = crate::workloads::shifted_panel(&x, rb64, 0.25);
        let panel64: Vec<f64> = panel64_f32.iter().map(|&v| f64::from(v)).collect();
        let (batched64, _) = gust.execute_batch_f64(&schedule, &panel64, rb64);
        for j in 0..rb64 {
            let col = &panel64_f32[j * matrix.cols()..(j + 1) * matrix.cols()];
            let oracle = matrix.spmv_f64(col);
            for (r, (&got, want)) in batched64[j * rows..(j + 1) * rows]
                .iter()
                .zip(oracle)
                .enumerate()
            {
                let denom = want.abs().max(1.0);
                assert!(
                    ((got - want) / denom).abs() < 1e-9,
                    "{} f64 batched column {j} row {r} diverged: {got} vs {want}",
                    backend.name()
                );
            }
        }
        results.push(Measurement {
            kernel: "soa-batch-f64",
            backend: backend.name(),
            elem: "f64",
            reg_block: rb64,
            batch: rb64,
            banded: 0,
            cache_budget: 0,
            row_tiles: 0,
            row_budget: 0,
            wall: timed(reps, || {
                std::hint::black_box(gust.execute_batch_f64(&schedule, &panel64, rb64));
            }),
            work: rb64 as u64 * nnz,
        });
        results.push(Measurement {
            kernel: "soa-single-banded",
            backend: backend.name(),
            elem: "f32",
            reg_block: 1,
            batch: 1,
            banded: banded_single.bands().count(),
            cache_budget: budget_used,
            row_tiles: 0,
            row_budget: 0,
            wall: timed(reps, || {
                std::hint::black_box(gust.execute_banded(&banded_single, &x));
            }),
            work: nnz,
        });
        results.push(Measurement {
            kernel: "soa-batch-banded",
            backend: backend.name(),
            elem: "f32",
            reg_block: rb,
            batch: rb,
            banded: banded_batch.bands().count(),
            cache_budget: budget_used,
            row_tiles: 0,
            row_budget: 0,
            wall: timed(reps, || {
                std::hint::black_box(gust.execute_batch_banded(&banded_batch, &panel, rb));
            }),
            work: rb as u64 * nnz,
        });
        results.push(Measurement {
            kernel: "soa-batch-tiled",
            backend: backend.name(),
            elem: "f32",
            reg_block: rb,
            batch: rb,
            banded: tile_bands,
            cache_budget: budget_used,
            row_tiles: tiled.tile_count(),
            row_budget: row_budget_used,
            wall: timed(reps, || {
                std::hint::black_box(gust.execute_batch_tiled(&tiled, &panel, rb));
            }),
            work: rb as u64 * nnz,
        });
        results.push(Measurement {
            kernel: "reference-csr",
            backend: backend.name(),
            elem: "f32",
            reg_block: 1,
            batch: 1,
            banded: 0,
            cache_budget: 0,
            row_tiles: 0,
            row_budget: 0,
            wall: timed(reps, || {
                std::hint::black_box(matrix.spmv_with(backend, &x));
            }),
            work: nnz,
        });
    }

    // Threaded row: best backend, four register blocks on the pool.
    let mt = Gust::new(GustConfig::new(LENGTH).with_backend(Some(best)));
    let rb = best.reg_block();
    let batch_mt = MT_BLOCKS * rb;
    let panel_mt = crate::workloads::shifted_panel(&x, batch_mt, 0.25);
    let (batched_mt, _) = mt.execute_batch(&schedule, &panel_mt, batch_mt);
    for j in 0..batch_mt {
        let col = &panel_mt[j * matrix.cols()..(j + 1) * matrix.cols()];
        let expect = scalar.execute(&schedule, col);
        let err = max_relative_error(&batched_mt[j * rows..(j + 1) * rows], &expect.output);
        assert!(err < 1e-3, "threaded batched column {j} diverged: {err}");
    }
    results.push(Measurement {
        kernel: "soa-batch-mt",
        backend: best.name(),
        elem: "f32",
        reg_block: rb,
        batch: batch_mt,
        banded: 0,
        cache_budget: 0,
        row_tiles: 0,
        row_budget: 0,
        wall: timed(reps, || {
            std::hint::black_box(mt.execute_batch(&schedule, &panel_mt, batch_mt));
        }),
        work: batch_mt as u64 * nnz,
    });

    results
}

/// Runs `f` `reps` times and returns the median wall time.
fn timed<F: FnMut()>(reps: usize, mut f: F) -> Duration {
    let mut walls = Vec::with_capacity(reps);
    for _ in 0..reps {
        let start = Instant::now();
        f();
        walls.push(start.elapsed());
    }
    walls.sort_unstable();
    walls[walls.len() / 2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_at_tiny_scale_and_emits_json() {
        let out = run(0.02);
        assert!(out.report.contains("spmv_throughput"));
        for kernel in [
            "legacy-slots",
            "soa-single",
            "soa-batch-seq",
            "soa-batch-f64",
            "soa-single-banded",
            "soa-batch-banded",
            "soa-batch-tiled",
            "soa-batch-mt",
            "reference-csr",
        ] {
            assert!(out.report.contains(kernel), "missing {kernel}");
        }
        assert!(out.report.contains("JSON:"));
        assert!(out.json.contains("\"nnz_per_s\":"));
        assert!(out.json.contains("\"speedup_vs_legacy\":"));
        assert!(out.json.contains("\"backend\": \"scalar\""));
        assert!(out.json.contains("\"features\":"));
        assert!(out.json.contains("\"elem\": \"f32\""));
        assert!(out.json.contains("\"elem\": \"f64\""));
        assert!(out.json.contains("\"reg_block\":"));
        assert!(out.json.contains("\"banded\":"));
        assert!(out.json.contains("\"cache_budget\":"));
        assert!(out.json.contains("\"row_tiles\":"));
        assert!(out.json.contains("\"row_budget\":"));
        // Seven workloads × (legacy + mt + 7 rows per available backend).
        let rows_per_matrix = 2 + 7 * available_backends().len();
        assert_eq!(out.json.matches("\"matrix\":").count(), 7 * rows_per_matrix);
        assert!(out.json.contains("\"hub-reuse\""));
        assert!(out.json.contains("\"llc-uniform\""));
        assert!(out.json.contains("\"llc-power-law\""));
        assert!(out.json.contains("\"llc-tall-out\""));
        // The forced row budget must split the tall shape into several
        // row tiles.
        let max_tiles = out
            .json
            .split("\"row_tiles\": ")
            .skip(1)
            .filter_map(|rest| rest.split(',').next().unwrap().parse::<usize>().ok())
            .max()
            .unwrap();
        assert!(max_tiles > 1, "llc-tall-out rows must split into tiles");
        // The nnz column records the real per-matrix count: the LLC
        // shapes are denser than the square ones, so the column cannot
        // be constant (the PR 3 bug this run fixes).
        let nnz_values: std::collections::BTreeSet<&str> = out
            .json
            .split("\"nnz\": ")
            .skip(1)
            .map(|rest| rest.split(',').next().unwrap())
            .collect();
        assert!(
            nnz_values.len() > 1,
            "per-shape nnz must differ, got {nnz_values:?}"
        );
        // LLC rows are banded into multiple bands under the forced
        // budget (operand vector = 16× budget → > 1 band at any scale).
        let max_bands = out
            .json
            .split("\"banded\": ")
            .skip(1)
            .filter_map(|rest| rest.split(',').next().unwrap().parse::<usize>().ok())
            .max()
            .unwrap();
        assert!(max_bands > 1, "LLC rows must split into bands");
        if Backend::Avx2.is_available() {
            assert!(out.json.contains("\"backend\": \"avx2\""));
        }
        if Backend::Avx512.is_available() {
            assert!(out.json.contains("\"backend\": \"avx512\""));
        }
    }
}
