//! Table 5 — per-partition resource consumption of GUST at lengths 8, 87
//! and 256: the arithmetic and I/O partitions scale ~linearly while the
//! crossbar scales super-quadratically, the §5.5 motivation for parallel
//! short GUSTs.

use crate::table::TextTable;
use gust_energy::resources::GustResources;

fn fmt(v: f64) -> String {
    if v >= 1000.0 {
        format!("{:.1}K", v / 1000.0)
    } else {
        format!("{v:.0}")
    }
}

/// Renders Table 5 and the scaling exponents the model implies.
#[must_use]
pub fn run(_scale: f64) -> String {
    let lengths = [8usize, 87, 256];
    let mut table = TextTable::new(["segment", "metric", "length 8", "length 87", "length 256"]);

    let rs: Vec<GustResources> = lengths
        .iter()
        .map(|&l| GustResources::at_length(l))
        .collect();
    let rows: Vec<(&str, &str, Vec<String>)> = vec![
        (
            "Arithmetic",
            "Power (W)",
            rs.iter()
                .map(|r| format!("{:.1}", r.arithmetic.power_watts))
                .collect(),
        ),
        (
            "Arithmetic",
            "LUT",
            rs.iter().map(|r| fmt(r.arithmetic.luts)).collect(),
        ),
        (
            "Arithmetic",
            "Registers",
            rs.iter().map(|r| fmt(r.arithmetic.registers)).collect(),
        ),
        (
            "Arithmetic",
            "DSP",
            rs.iter().map(|r| fmt(r.arithmetic.dsps)).collect(),
        ),
        (
            "Arithmetic",
            "Carry8",
            rs.iter().map(|r| fmt(r.arithmetic.carry8)).collect(),
        ),
        (
            "Crossbar",
            "Power (W)",
            rs.iter()
                .map(|r| format!("{:.1}", r.crossbar.power_watts))
                .collect(),
        ),
        (
            "Crossbar",
            "LUT",
            rs.iter().map(|r| fmt(r.crossbar.luts)).collect(),
        ),
        (
            "Crossbar",
            "Registers",
            rs.iter().map(|r| fmt(r.crossbar.registers)).collect(),
        ),
        (
            "IO",
            "Power (W)",
            rs.iter()
                .map(|r| format!("{:.1}", r.io.power_watts))
                .collect(),
        ),
        (
            "IO",
            "IO Pins",
            rs.iter().map(|r| fmt(r.io.io_pins)).collect(),
        ),
        (
            "IO",
            "Buffers",
            rs.iter().map(|r| fmt(r.io.buffers)).collect(),
        ),
    ];
    for (segment, metric, values) in rows {
        table.push_row([
            segment.to_string(),
            metric.to_string(),
            values[0].clone(),
            values[1].clone(),
            values[2].clone(),
        ]);
    }

    // Scaling exponents between the upper calibration points.
    let exp = |a: f64, b: f64| (b / a).ln() / (256.0f64 / 87.0).ln();
    let arith_exp = exp(rs[1].arithmetic.luts, rs[2].arithmetic.luts);
    let xbar_exp = exp(rs[1].crossbar.luts, rs[2].crossbar.luts);

    let mut out = super::header("Table 5 — per-partition resource consumption", 1.0);
    out.push_str(&table.render());
    out.push_str(&format!(
        "\nLUT scaling exponent between l=87 and l=256: arithmetic l^{arith_exp:.2}, \
         crossbar l^{xbar_exp:.2}\n(the crossbar's super-quadratic growth is \
         the paper's motivation for k parallel short GUSTs, ablated in the \
         `ablation` bench).\n"
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_all_partitions_and_exponent_note() {
        let s = run(1.0);
        for needle in ["Arithmetic", "Crossbar", "IO", "756.0K", "scaling exponent"] {
            assert!(s.contains(needle), "missing {needle}");
        }
    }
}
