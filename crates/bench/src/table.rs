//! Minimal fixed-width text table renderer for the experiment reports.

/// A text table with a header row and aligned columns.
///
/// # Example
///
/// ```
/// use gust_bench::TextTable;
///
/// let mut t = TextTable::new(["matrix", "cycles"]);
/// t.push_row(["scircuit", "75000"]);
/// let s = t.render();
/// assert!(s.contains("scircuit"));
/// ```
#[derive(Debug, Clone)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new<I, S>(header: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header's.
    pub fn push_row<I, S>(&mut self, cells: I)
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.header.len(),
            "row width must match header width"
        );
        self.rows.push(row);
    }

    /// Renders with padded columns, a separator under the header, and a
    /// trailing newline.
    #[must_use]
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect::<Vec<_>>()
                .join("  ")
                .trim_end()
                .to_string()
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

impl TextTable {
    /// Renders the table as a JSON array of objects, one per row, keyed by
    /// the header names. Cells that parse as finite numbers are emitted as
    /// JSON numbers; everything else as strings. This is the
    /// machine-readable twin of [`TextTable::render`], used by the
    /// `schedule_throughput` runner so successive PRs can diff performance
    /// trajectories.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("[");
        for (i, row) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n  {");
            for (j, (key, cell)) in self.header.iter().zip(row).enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&json_string(key));
                out.push_str(": ");
                match cell.parse::<f64>() {
                    Ok(v) if v.is_finite() => out.push_str(&format_json_number(v)),
                    _ => out.push_str(&json_string(cell)),
                }
            }
            out.push('}');
        }
        out.push_str("\n]");
        out
    }
}

/// Escapes a string for JSON output.
#[must_use]
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats a finite float as a JSON number (integers without a fraction).
fn format_json_number(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{v:.0}")
    } else {
        format!("{v}")
    }
}

/// Formats a float in short engineering style (3 significant digits).
#[must_use]
pub fn sig3(v: f64) -> String {
    if v == 0.0 {
        return "0".to_string();
    }
    let a = v.abs();
    if (0.01..1000.0).contains(&a) {
        format!("{v:.3}")
            .trim_end_matches('0')
            .trim_end_matches('.')
            .to_string()
    } else {
        format!("{v:.2e}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(["a", "long-header"]);
        t.push_row(["wide-cell", "x"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("a          long-header"));
        assert!(lines[2].starts_with("wide-cell  x"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_mismatched_rows() {
        let mut t = TextTable::new(["a", "b"]);
        t.push_row(["only-one"]);
    }

    #[test]
    fn json_rendering_types_cells() {
        let mut t = TextTable::new(["name", "count", "note"]);
        t.push_row(["alpha", "12", "plain"]);
        t.push_row(["beta", "3.5", "has \"quotes\""]);
        let json = t.to_json();
        assert!(json.contains("\"name\": \"alpha\""));
        assert!(json.contains("\"count\": 12"));
        assert!(json.contains("\"count\": 3.5"));
        assert!(json.contains("\\\"quotes\\\""));
        assert!(json.starts_with('[') && json.ends_with(']'));
    }

    #[test]
    fn json_string_escapes_controls() {
        assert_eq!(json_string("a\nb"), "\"a\\nb\"");
        assert_eq!(json_string("t\tq\"s\\"), "\"t\\tq\\\"s\\\\\"");
    }

    #[test]
    fn sig3_ranges() {
        assert_eq!(sig3(0.0), "0");
        assert_eq!(sig3(1.5), "1.5");
        assert_eq!(sig3(411.0), "411");
        assert_eq!(sig3(1.234e-5), "1.23e-5");
        assert_eq!(sig3(5.0e6), "5.00e6");
    }
}
