//! Schedule safety auditor: statically proves the contract the unsafe
//! kernels rely on.
//!
//! GUST's speed story rests on one correctness property: the edge-coloring
//! makes every color a *write-disjoint* set of slots. That property — plus
//! plain index bounds — is exactly the precondition the `unsafe` AVX2 /
//! AVX-512 gather/scatter loops in [`crate::kernels`] and
//! `gust_sparse::kernels`, and the [`crate::parallel::Pool`] fan-out,
//! assume. In-memory schedules establish it by construction (the
//! [`Scheduler`](crate::schedule::Scheduler) colors conflict-free and the
//! constructors `debug_assert` it), but `debug_assert`s vanish in release
//! builds, and a deserialized `GUST`/`GUSB`/`GUTL` stream can carry a valid
//! checksum around forged contents. This module closes that gap: it audits
//! the **complete safety contract** for any flat, banded or tiled schedule
//! and returns a typed [`AuditReport`] with slot-precise violation
//! locations instead of panicking.
//!
//! # The audited contract
//!
//! For every window of a schedule (and, for banded/tiled containers, every
//! band and tile on top):
//!
//! 1. **Structure** — the SoA arrays agree in length and `color_ptr` is a
//!    monotone CSR-style partition covering every slot exactly once.
//! 2. **Index bounds** — every slot column is `< matrix.cols` (the `x`
//!    gather bound), every lane is `< l` and every destination adder is
//!    `< window_rows` (the accumulator scatter bound, tighter than `l` on
//!    the ragged final window).
//! 3. **Write-disjointness** — within one color no two slots share a lane
//!    (one multiplier port per cycle) and no two slots target the same
//!    adder (the race-freedom proof for the parallel scatter).
//! 4. **Staging consistency** — `gather_cols` is strictly ascending, every
//!    entry is in bounds, and `gather_cols[local_cols[i]] == cols[i]`, so
//!    the staged (`x`-compacting) kernel path reads the same operands as
//!    the direct path.
//! 5. **Row permutation** — `row_perm` is a true permutation of
//!    `0..rows`: in bounds *and* duplicate-free, since a duplicate would
//!    scatter two windows' outputs into one row concurrently.
//! 6. **Band/tile containment** — band slot pointers partition each
//!    window's slots and every slot's column falls inside its band's
//!    `[start, end)`; tile row boundaries partition `0..rows`.
//! 7. **Coverage** (optional, against a source [`CsrMatrix`]) — the slot
//!    stream reproduces the matrix triplet-for-triplet.
//!
//! # Admission flow
//!
//! Auditing yields a [`VerifiedSchedule`] witness: the only way to obtain
//! one is [`VerifiedSchedule::verify`] (a full audit) or a crate-internal
//! witness for schedules built in RAM by the scheduler, whose constructors
//! assert the same contract. The binary readers in
//! [`crate::schedule::serialize`] audit **unconditionally** — release
//! builds included — and the serving registry
//! ([`crate::serve::ScheduleRegistry`]) only admits disk bytes through
//! them, so the unsafe preconditions are established exactly once per
//! admission and never re-checked on the execute path.
//!
//! The `gust-verify` CLI bin runs the same audit over cache files offline
//! and exits nonzero on violation.

use std::fmt;
use std::ops::Deref;

use crate::schedule::banded::BandedSchedule;
use crate::schedule::scheduled::{ScheduledMatrix, WindowSchedule};
use crate::schedule::tiled::TiledSchedule;
use gust_sparse::CsrMatrix;

/// Reports are truncated at this many violations: a forged stream can
/// violate the contract at every slot, and one violation already condemns
/// the schedule.
pub const MAX_VIOLATIONS: usize = 64;

/// One violation of the schedule safety contract, locating the offending
/// slot as precisely as the violated invariant allows.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Violation {
    /// Schedule-level shape disagreement (window count, nnz accounting,
    /// engine-length mismatch).
    Shape {
        /// What disagrees.
        what: String,
    },
    /// A window's SoA arrays or `color_ptr` are malformed.
    Structure {
        /// Window index.
        window: usize,
        /// What is malformed.
        what: String,
    },
    /// A slot's multiplier lane is outside `0..l`.
    LaneOutOfBounds {
        /// Window index.
        window: usize,
        /// Color (cycle) index within the window.
        color: u32,
        /// Absolute slot index within the window's SoA arrays.
        slot: usize,
        /// The offending lane.
        lane: u32,
        /// The engine length `l`.
        length: usize,
    },
    /// A color's lanes are not strictly ascending — either unsorted or
    /// two slots share a multiplier port in one cycle.
    LaneOrder {
        /// Window index.
        window: usize,
        /// Color (cycle) index within the window.
        color: u32,
        /// Absolute slot index within the window's SoA arrays.
        slot: usize,
        /// The offending lane.
        lane: u32,
    },
    /// A slot's destination adder is outside the rows this window covers.
    AdderOutOfBounds {
        /// Window index.
        window: usize,
        /// Color (cycle) index within the window.
        color: u32,
        /// Absolute slot index within the window's SoA arrays.
        slot: usize,
        /// The offending adder (`row_mod`).
        row_mod: u32,
        /// Rows covered by this window (`min(l, rows − w·l)`).
        limit: usize,
    },
    /// Two slots of one color target the same adder — the write collision
    /// the edge-coloring exists to prevent.
    WriteCollision {
        /// Window index.
        window: usize,
        /// Color (cycle) index within the window.
        color: u32,
        /// The adder both slots write.
        row_mod: u32,
        /// First colliding slot (absolute index).
        first_slot: usize,
        /// Second colliding slot (absolute index).
        second_slot: usize,
    },
    /// A slot's column is outside the matrix — an out-of-bounds `x` read
    /// in the gather kernels.
    ColumnOutOfBounds {
        /// Window index.
        window: usize,
        /// Color (cycle) index within the window.
        color: u32,
        /// Absolute slot index within the window's SoA arrays.
        slot: usize,
        /// The offending column.
        col: u32,
        /// Matrix column count.
        cols: usize,
    },
    /// The window's staging index (`gather_cols` / `local_cols`) is
    /// inconsistent with its slot columns.
    StagingIndex {
        /// Window index.
        window: usize,
        /// What is inconsistent.
        what: String,
    },
    /// The row permutation is not a permutation of `0..rows`.
    RowPerm {
        /// What is wrong.
        what: String,
    },
    /// The column-band boundaries do not partition `0..cols`.
    BandPartition {
        /// What is wrong.
        what: String,
    },
    /// A window's band slot pointers do not partition its slots.
    BandPointer {
        /// Window index.
        window: usize,
        /// What is wrong.
        what: String,
    },
    /// A slot's column falls outside the band its pointer range claims.
    BandColumn {
        /// Window index.
        window: usize,
        /// Band index.
        band: usize,
        /// Absolute slot index within the window's SoA arrays.
        slot: usize,
        /// The offending column.
        col: u32,
        /// Band start (inclusive).
        start: u32,
        /// Band end (exclusive).
        end: u32,
    },
    /// The row-tile boundaries do not partition `0..rows` or a tile's
    /// shape disagrees with its boundaries.
    TileStructure {
        /// What is wrong.
        what: String,
    },
    /// A violation inside one tile of a tiled schedule.
    Tile {
        /// Tile index.
        tile: usize,
        /// The violation within that tile (window indices tile-local).
        inner: Box<Violation>,
    },
    /// The slot stream does not reproduce the source matrix.
    Coverage {
        /// What diverges.
        what: String,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::Shape { what } => write!(f, "schedule shape: {what}"),
            Violation::Structure { window, what } => write!(f, "window {window}: {what}"),
            Violation::LaneOutOfBounds {
                window,
                color,
                slot,
                lane,
                length,
            } => write!(
                f,
                "window {window} color {color} slot {slot}: lane {lane} out of range for length {length}"
            ),
            Violation::LaneOrder {
                window,
                color,
                slot,
                lane,
            } => write!(
                f,
                "window {window} color {color} slot {slot}: lane {lane} breaks the strictly-ascending lane order (duplicate or unsorted multiplier port)"
            ),
            Violation::AdderOutOfBounds {
                window,
                color,
                slot,
                row_mod,
                limit,
            } => write!(
                f,
                "window {window} color {color} slot {slot}: adder {row_mod} out of range for {limit} window rows"
            ),
            Violation::WriteCollision {
                window,
                color,
                row_mod,
                first_slot,
                second_slot,
            } => write!(
                f,
                "window {window} color {color}: slots {first_slot} and {second_slot} both write adder {row_mod} (intra-color write collision)"
            ),
            Violation::ColumnOutOfBounds {
                window,
                color,
                slot,
                col,
                cols,
            } => write!(
                f,
                "window {window} color {color} slot {slot}: column {col} out of range for {cols} columns"
            ),
            Violation::StagingIndex { window, what } => {
                write!(f, "window {window}: staging index {what}")
            }
            Violation::RowPerm { what } => write!(f, "row permutation {what}"),
            Violation::BandPartition { what } => write!(f, "band partition {what}"),
            Violation::BandPointer { window, what } => {
                write!(f, "window {window}: band slot pointers {what}")
            }
            Violation::BandColumn {
                window,
                band,
                slot,
                col,
                start,
                end,
            } => write!(
                f,
                "window {window} band {band} slot {slot}: column {col} outside [{start}, {end})"
            ),
            Violation::TileStructure { what } => write!(f, "row tiling {what}"),
            Violation::Tile { tile, inner } => write!(f, "tile {tile}: {inner}"),
            Violation::Coverage { what } => write!(f, "coverage: {what}"),
        }
    }
}

/// The outcome of auditing one schedule: empty means the complete safety
/// contract holds.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AuditReport {
    violations: Vec<Violation>,
}

impl AuditReport {
    pub(crate) fn from_violations(violations: Vec<Violation>) -> Self {
        Self { violations }
    }

    /// `true` when no violation was found — the schedule satisfies every
    /// precondition the unsafe kernels assume.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// The violations found, in discovery order, truncated at
    /// [`MAX_VIOLATIONS`].
    #[must_use]
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Wraps every violation with the tile it was found in (window
    /// indices inside a tile are tile-local).
    pub(crate) fn in_tile(self, tile: usize) -> Self {
        Self {
            violations: self
                .violations
                .into_iter()
                .map(|v| Violation::Tile {
                    tile,
                    inner: Box::new(v),
                })
                .collect(),
        }
    }
}

impl fmt::Display for AuditReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.violations.is_empty() {
            return write!(f, "schedule audit clean");
        }
        write!(
            f,
            "schedule audit found {} violation(s)",
            self.violations.len()
        )?;
        if self.violations.len() >= MAX_VIOLATIONS {
            write!(f, " (truncated)")?;
        }
        for v in self.violations.iter().take(4) {
            write!(f, "; {v}")?;
        }
        if self.violations.len() > 4 {
            write!(f, "; …")?;
        }
        Ok(())
    }
}

impl std::error::Error for AuditReport {}

/// Audits a flat schedule's complete safety contract (items 1–5 of the
/// module contract). O(nnz).
#[must_use]
pub fn audit_schedule(schedule: &ScheduledMatrix) -> AuditReport {
    let mut out = Vec::new();
    audit_shape(
        schedule.windows().len(),
        schedule.rows(),
        schedule.length(),
        schedule.nnz(),
        schedule.windows().iter().map(WindowSchedule::nnz).sum(),
        &mut out,
    );
    let mut scratch = Scratch::new(schedule.length());
    for (w, window) in schedule.windows().iter().enumerate() {
        let window_rows =
            (schedule.rows() - (w * schedule.length()).min(schedule.rows())).min(schedule.length());
        audit_window_soa(
            w,
            window.colors(),
            window.color_ptr(),
            window.lanes(),
            window.row_mods(),
            window.cols(),
            schedule.length(),
            window_rows,
            schedule.cols(),
            &mut scratch,
            &mut out,
        );
        audit_staging_index(w, window, schedule.cols(), &mut out);
    }
    audit_row_perm(schedule.row_perm(), schedule.rows(), &mut out);
    AuditReport::from_violations(out)
}

/// Audits a column-banded schedule: everything [`audit_schedule`] proves
/// plus band-partition and per-window band slot-pointer containment.
#[must_use]
pub fn audit_banded(schedule: &BandedSchedule) -> AuditReport {
    let mut out = Vec::new();
    audit_shape(
        schedule.windows().len(),
        schedule.rows(),
        schedule.length(),
        schedule.nnz(),
        schedule.windows().iter().map(|w| w.window().nnz()).sum(),
        &mut out,
    );
    let starts = schedule.bands().starts();
    audit_band_partition(starts, schedule.cols(), &mut out);
    let mut scratch = Scratch::new(schedule.length());
    for (w, banded) in schedule.windows().iter().enumerate() {
        let window = banded.window();
        let window_rows =
            (schedule.rows() - (w * schedule.length()).min(schedule.rows())).min(schedule.length());
        audit_window_soa(
            w,
            window.colors(),
            window.color_ptr(),
            window.lanes(),
            window.row_mods(),
            window.cols(),
            schedule.length(),
            window_rows,
            schedule.cols(),
            &mut scratch,
            &mut out,
        );
        audit_staging_index(w, window, schedule.cols(), &mut out);
        audit_banded_window(w, banded.band_slot_ptr(), starts, window.cols(), &mut out);
        // Merged-window staging: `local_cols[i]` must be the slot's offset
        // inside its band, or the banded gather reads the wrong operand.
        if banded.local_cols().len() != window.nnz() {
            push(
                &mut out,
                Violation::BandPointer {
                    window: w,
                    what: format!(
                        "have {} local columns for {} slots",
                        banded.local_cols().len(),
                        window.nnz()
                    ),
                },
            );
        } else if banded.band_slot_ptr().len() == starts.len() {
            // `b` walks three parallel arrays (starts, slot_ptr, slot_ptr+1).
            #[allow(clippy::needless_range_loop)]
            for b in 0..starts.len() - 1 {
                let (lo, hi) = (banded.band_slot_ptr()[b], banded.band_slot_ptr()[b + 1]);
                if (hi as usize) > window.nnz() || lo > hi {
                    continue; // already reported by audit_banded_window
                }
                for i in lo as usize..hi as usize {
                    let expect = window.cols()[i].wrapping_sub(starts[b]);
                    if banded.local_cols()[i] != expect
                        && !push(
                            &mut out,
                            Violation::BandPointer {
                                window: w,
                                what: format!(
                                    "slot {i}: local column {} disagrees with band offset {expect}",
                                    banded.local_cols()[i]
                                ),
                            },
                        )
                    {
                        break;
                    }
                }
            }
        }
    }
    audit_row_perm(schedule.row_perm(), schedule.rows(), &mut out);
    AuditReport::from_violations(out)
}

/// Audits a row-tiled schedule: the tile partition plus a full
/// [`audit_banded`] of every tile (violations wrapped in
/// [`Violation::Tile`]).
#[must_use]
pub fn audit_tiled(schedule: &TiledSchedule) -> AuditReport {
    let mut out = Vec::new();
    let starts = schedule.row_starts();
    if starts.len() != schedule.tile_count() + 1 {
        push(
            &mut out,
            Violation::TileStructure {
                what: format!(
                    "have {} boundaries for {} tiles",
                    starts.len(),
                    schedule.tile_count()
                ),
            },
        );
    } else if starts.first() != Some(&0)
        || starts.last().copied() != Some(schedule.rows() as u32)
        || starts.windows(2).any(|w| w[0] >= w[1])
    {
        push(
            &mut out,
            Violation::TileStructure {
                what: format!("boundaries must ascend from 0 to {}", schedule.rows()),
            },
        );
    }
    let mut total_nnz = 0usize;
    for (t, tile) in schedule.tiles().iter().enumerate() {
        total_nnz += tile.nnz();
        if starts.len() == schedule.tile_count() + 1 {
            let tile_rows = starts[t + 1].saturating_sub(starts[t]) as usize;
            if tile.rows() != tile_rows
                || tile.cols() != schedule.cols()
                || tile.length() != schedule.length()
            {
                push(
                    &mut out,
                    Violation::TileStructure {
                        what: format!(
                            "tile {t} is {}x{} (length {}) but its boundaries say {}x{} (length {})",
                            tile.rows(),
                            tile.cols(),
                            tile.length(),
                            tile_rows,
                            schedule.cols(),
                            schedule.length()
                        ),
                    },
                );
            }
        }
        for v in audit_banded(tile).violations {
            if !push(
                &mut out,
                Violation::Tile {
                    tile: t,
                    inner: Box::new(v),
                },
            ) {
                break;
            }
        }
    }
    if total_nnz != schedule.nnz() {
        push(
            &mut out,
            Violation::Shape {
                what: format!(
                    "tiles hold {total_nnz} slots but the schedule claims {} non-zeros",
                    schedule.nnz()
                ),
            },
        );
    }
    AuditReport::from_violations(out)
}

/// [`audit_schedule`] plus exact CSR coverage: the slot stream must
/// reproduce `matrix` triplet-for-triplet. O(nnz log nnz).
#[must_use]
pub fn audit_schedule_against(schedule: &ScheduledMatrix, matrix: &CsrMatrix) -> AuditReport {
    let mut report = audit_schedule(schedule);
    if !report.is_clean() {
        // Coverage reconstruction indexes through row_perm; only meaningful
        // once the structural contract holds.
        return report;
    }
    let mut rebuilt: Vec<(u32, u32, u32)> = Vec::with_capacity(schedule.nnz());
    for (w, window) in schedule.windows().iter().enumerate() {
        collect_window_triplets(
            window,
            w * schedule.length(),
            schedule.row_perm(),
            0,
            &mut rebuilt,
        );
    }
    audit_coverage(
        &mut rebuilt,
        schedule.rows(),
        schedule.cols(),
        matrix,
        &mut report.violations,
    );
    report
}

/// [`audit_banded`] plus exact CSR coverage.
#[must_use]
pub fn audit_banded_against(schedule: &BandedSchedule, matrix: &CsrMatrix) -> AuditReport {
    let mut report = audit_banded(schedule);
    if !report.is_clean() {
        return report;
    }
    let mut rebuilt: Vec<(u32, u32, u32)> = Vec::with_capacity(schedule.nnz());
    for (w, banded) in schedule.windows().iter().enumerate() {
        collect_window_triplets(
            banded.window(),
            w * schedule.length(),
            schedule.row_perm(),
            0,
            &mut rebuilt,
        );
    }
    audit_coverage(
        &mut rebuilt,
        schedule.rows(),
        schedule.cols(),
        matrix,
        &mut report.violations,
    );
    report
}

/// [`audit_tiled`] plus exact CSR coverage (tile row permutations are
/// tile-local; triplets are lifted by each tile's row offset).
#[must_use]
pub fn audit_tiled_against(schedule: &TiledSchedule, matrix: &CsrMatrix) -> AuditReport {
    let mut report = audit_tiled(schedule);
    if !report.is_clean() {
        return report;
    }
    let mut rebuilt: Vec<(u32, u32, u32)> = Vec::with_capacity(schedule.nnz());
    for (t, tile) in schedule.tiles().iter().enumerate() {
        let offset = schedule.row_starts()[t];
        for (w, banded) in tile.windows().iter().enumerate() {
            collect_window_triplets(
                banded.window(),
                w * tile.length(),
                tile.row_perm(),
                offset,
                &mut rebuilt,
            );
        }
    }
    audit_coverage(
        &mut rebuilt,
        schedule.rows(),
        schedule.cols(),
        matrix,
        &mut report.violations,
    );
    report
}

/// A schedule container the auditor knows how to prove safe.
pub trait Auditable {
    /// Runs the full safety audit (without CSR coverage, which needs the
    /// source matrix).
    fn audit(&self) -> AuditReport;
}

impl Auditable for ScheduledMatrix {
    fn audit(&self) -> AuditReport {
        audit_schedule(self)
    }
}

impl Auditable for BandedSchedule {
    fn audit(&self) -> AuditReport {
        audit_banded(self)
    }
}

impl Auditable for TiledSchedule {
    fn audit(&self) -> AuditReport {
        audit_tiled(self)
    }
}

/// Witness that a schedule passed the full safety audit.
///
/// The only public constructor is [`VerifiedSchedule::verify`], which runs
/// the audit; crate-internal paths mint witnesses for schedules whose
/// construction already asserts the contract (the scheduler) or whose
/// deserialization audits unconditionally (the binary readers). Holding a
/// `VerifiedSchedule` therefore *is* the proof the unsafe kernel
/// preconditions hold — the execute paths never re-check.
///
/// Derefs to the underlying schedule, so `&VerifiedSchedule<S>` coerces
/// wherever `&S` is expected.
#[derive(Debug, Clone)]
pub struct VerifiedSchedule<S> {
    inner: S,
}

impl<S: Auditable> VerifiedSchedule<S> {
    /// Audits `schedule` and, if clean, wraps it as a witness.
    ///
    /// # Errors
    ///
    /// Returns the [`AuditReport`] when any contract violation is found.
    pub fn verify(schedule: S) -> Result<Self, Box<AuditReport>> {
        let report = schedule.audit();
        if report.is_clean() {
            Ok(Self { inner: schedule })
        } else {
            Err(Box::new(report))
        }
    }
}

impl<S> VerifiedSchedule<S> {
    /// Wraps a schedule whose contract is already established: built in
    /// RAM by the scheduler (constructors assert it) or returned by a
    /// binary reader (which audits unconditionally). Debug builds
    /// double-check nothing here — callers carry the proof obligation.
    pub(crate) fn witness(schedule: S) -> Self {
        Self { inner: schedule }
    }

    /// The audited schedule.
    #[must_use]
    pub fn get(&self) -> &S {
        &self.inner
    }

    /// Unwraps the witness, surrendering the proof.
    #[must_use]
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S> Deref for VerifiedSchedule<S> {
    type Target = S;

    fn deref(&self) -> &S {
        &self.inner
    }
}

// ---------------------------------------------------------------------------
// Raw-parts auditors. The binary readers call these on the freshly parsed
// SoA arrays *before* any constructor runs, so forged streams are reported
// as violations instead of tripping (debug-only) constructor asserts.
// ---------------------------------------------------------------------------

/// Appends `v` unless the report is already full. Returns whether more
/// violations may be pushed.
fn push(out: &mut Vec<Violation>, v: Violation) -> bool {
    if out.len() < MAX_VIOLATIONS {
        out.push(v);
    }
    out.len() < MAX_VIOLATIONS
}

/// Epoch-marked scratch for the per-color collision scans: O(l) space,
/// O(nnz) total time, no clearing between colors.
pub(crate) struct Scratch {
    epoch: Vec<u64>,
    slot: Vec<u32>,
    current: u64,
}

impl Scratch {
    pub(crate) fn new(length: usize) -> Self {
        Self {
            epoch: vec![0; length],
            slot: vec![0; length],
            current: 0,
        }
    }
}

/// Audits one window's raw SoA arrays: structure, bounds and
/// write-disjointness (contract items 1–3).
///
/// `window_rows` is the row count this window actually covers
/// (`min(l, rows − w·l)`), the true adder scatter bound on the ragged
/// final window.
#[allow(clippy::too_many_arguments)]
pub(crate) fn audit_window_soa(
    window: usize,
    colors: u32,
    color_ptr: &[u32],
    lanes: &[u32],
    row_mods: &[u32],
    cols: &[u32],
    length: usize,
    window_rows: usize,
    matrix_cols: usize,
    scratch: &mut Scratch,
    out: &mut Vec<Violation>,
) {
    let nnz = lanes.len();
    if row_mods.len() != nnz || cols.len() != nnz {
        push(
            out,
            Violation::Structure {
                window,
                what: format!(
                    "SoA arrays disagree: {nnz} lanes, {} adders, {} columns",
                    row_mods.len(),
                    cols.len()
                ),
            },
        );
        return;
    }
    if color_ptr.len() != colors as usize + 1
        || color_ptr.first() != Some(&0)
        || color_ptr.last().map(|&e| e as usize) != Some(nnz)
        || color_ptr.windows(2).any(|w| w[0] > w[1])
    {
        push(
            out,
            Violation::Structure {
                window,
                what: format!("color pointers must partition {nnz} slots into {colors} colors"),
            },
        );
        return;
    }
    debug_assert!(scratch.epoch.len() >= length);
    for c in 0..colors {
        scratch.current += 1;
        let bucket = color_ptr[c as usize] as usize..color_ptr[c as usize + 1] as usize;
        let mut prev_lane: Option<u32> = None;
        for i in bucket {
            let lane = lanes[i];
            if (lane as usize) >= length {
                if !push(
                    out,
                    Violation::LaneOutOfBounds {
                        window,
                        color: c,
                        slot: i,
                        lane,
                        length,
                    },
                ) {
                    return;
                }
            } else if prev_lane.is_some_and(|p| lane <= p)
                && !push(
                    out,
                    Violation::LaneOrder {
                        window,
                        color: c,
                        slot: i,
                        lane,
                    },
                )
            {
                return;
            }
            prev_lane = Some(lane);

            let row_mod = row_mods[i];
            if (row_mod as usize) >= window_rows {
                if !push(
                    out,
                    Violation::AdderOutOfBounds {
                        window,
                        color: c,
                        slot: i,
                        row_mod,
                        limit: window_rows,
                    },
                ) {
                    return;
                }
            } else if scratch.epoch[row_mod as usize] == scratch.current {
                if !push(
                    out,
                    Violation::WriteCollision {
                        window,
                        color: c,
                        row_mod,
                        first_slot: scratch.slot[row_mod as usize] as usize,
                        second_slot: i,
                    },
                ) {
                    return;
                }
            } else {
                scratch.epoch[row_mod as usize] = scratch.current;
                scratch.slot[row_mod as usize] = i as u32;
            }

            let col = cols[i];
            if (col as usize) >= matrix_cols
                && !push(
                    out,
                    Violation::ColumnOutOfBounds {
                        window,
                        color: c,
                        slot: i,
                        col,
                        cols: matrix_cols,
                    },
                )
            {
                return;
            }
        }
    }
}

/// Audits a window's staging index against its slot columns (contract
/// item 4). The staged kernel gathers the *entire* `gather_cols` list, so
/// every entry must be in bounds even if no slot references it.
fn audit_staging_index(
    window: usize,
    win: &WindowSchedule,
    matrix_cols: usize,
    out: &mut Vec<Violation>,
) {
    let gather = win.gather_cols();
    if gather.windows(2).any(|w| w[0] >= w[1]) {
        push(
            out,
            Violation::StagingIndex {
                window,
                what: "gather list is not strictly ascending".into(),
            },
        );
        return;
    }
    if gather.last().is_some_and(|&g| (g as usize) >= matrix_cols) {
        push(
            out,
            Violation::StagingIndex {
                window,
                what: format!(
                    "gather column {} out of range for {matrix_cols} columns",
                    gather.last().copied().unwrap_or(0)
                ),
            },
        );
        return;
    }
    let locals = win.local_cols();
    if locals.len() != win.nnz() {
        push(
            out,
            Violation::StagingIndex {
                window,
                what: format!("has {} local columns for {} slots", locals.len(), win.nnz()),
            },
        );
        return;
    }
    for (i, (&local, &col)) in locals.iter().zip(win.cols()).enumerate() {
        let ok = gather.get(local as usize).is_some_and(|&g| g == col);
        if !ok
            && !push(
                out,
                Violation::StagingIndex {
                    window,
                    what: format!(
                        "slot {i}: local column {local} does not map to slot column {col}"
                    ),
                },
            )
        {
            return;
        }
    }
}

/// Audits the row permutation: a true permutation of `0..rows` (contract
/// item 5). A duplicate would scatter two scheduled positions into one
/// output row concurrently.
pub(crate) fn audit_row_perm(row_perm: &[u32], rows: usize, out: &mut Vec<Violation>) {
    if row_perm.len() != rows {
        push(
            out,
            Violation::RowPerm {
                what: format!("has {} entries for {rows} rows", row_perm.len()),
            },
        );
        return;
    }
    let mut seen = vec![false; rows];
    for (i, &orig) in row_perm.iter().enumerate() {
        if (orig as usize) >= rows {
            if !push(
                out,
                Violation::RowPerm {
                    what: format!("entry {i}: row {orig} out of range for {rows} rows"),
                },
            ) {
                return;
            }
        } else if seen[orig as usize] {
            if !push(
                out,
                Violation::RowPerm {
                    what: format!("entry {i}: row {orig} appears twice"),
                },
            ) {
                return;
            }
        } else {
            seen[orig as usize] = true;
        }
    }
}

/// Audits the column-band boundaries: non-descending from 0 to `cols`
/// (empty bands are legal).
pub(crate) fn audit_band_partition(starts: &[u32], cols: usize, out: &mut Vec<Violation>) {
    if starts.len() < 2
        || starts.first() != Some(&0)
        || starts.last().map(|&e| e as usize) != Some(cols)
        || starts.windows(2).any(|w| w[0] > w[1])
    {
        push(
            out,
            Violation::BandPartition {
                what: format!("boundaries must ascend from 0 to {cols}"),
            },
        );
    }
}

/// Audits one window's band slot pointers and per-band column containment
/// (contract item 6) against the raw slot columns.
pub(crate) fn audit_banded_window(
    window: usize,
    band_slot_ptr: &[u32],
    band_starts: &[u32],
    cols_arr: &[u32],
    out: &mut Vec<Violation>,
) {
    let bands = band_starts.len().saturating_sub(1);
    if band_slot_ptr.len() != bands + 1 {
        push(
            out,
            Violation::BandPointer {
                window,
                what: format!(
                    "length {} inconsistent with {bands} bands",
                    band_slot_ptr.len()
                ),
            },
        );
        return;
    }
    let nnz = cols_arr.len();
    if band_slot_ptr.first() != Some(&0)
        || band_slot_ptr.last().map(|&e| e as usize) != Some(nnz)
        || band_slot_ptr.windows(2).any(|w| w[0] > w[1])
    {
        push(
            out,
            Violation::BandPointer {
                window,
                what: format!("must ascend from 0 to {nnz}"),
            },
        );
        return;
    }
    for b in 0..bands {
        let (start, end) = (band_starts[b], band_starts[b + 1]);
        // `i` is the violation's slot coordinate, not just a cursor.
        #[allow(clippy::needless_range_loop)]
        for i in band_slot_ptr[b] as usize..band_slot_ptr[b + 1] as usize {
            let col = cols_arr[i];
            if (col < start || col >= end)
                && !push(
                    out,
                    Violation::BandColumn {
                        window,
                        band: b,
                        slot: i,
                        col,
                        start,
                        end,
                    },
                )
            {
                return;
            }
        }
    }
}

/// Schedule-level shape checks shared by the typed auditors.
fn audit_shape(
    window_count: usize,
    rows: usize,
    length: usize,
    claimed_nnz: usize,
    actual_nnz: usize,
    out: &mut Vec<Violation>,
) {
    if length == 0 {
        push(
            out,
            Violation::Shape {
                what: "engine length is zero".into(),
            },
        );
        return;
    }
    let expected = rows.div_ceil(length);
    if window_count != expected {
        push(
            out,
            Violation::Shape {
                what: format!(
                    "{window_count} windows cover {rows} rows at length {length} (expected {expected})"
                ),
            },
        );
    }
    if claimed_nnz != actual_nnz {
        push(
            out,
            Violation::Shape {
                what: format!(
                    "windows hold {actual_nnz} slots but the schedule claims {claimed_nnz} non-zeros"
                ),
            },
        );
    }
}

/// Rebuilds `(original_row, col, value_bits)` triplets from one window.
/// Precondition (established by the structural audit): every `row_mod`
/// indexes inside `row_perm` after the window offset.
fn collect_window_triplets(
    window: &WindowSchedule,
    row_offset: usize,
    row_perm: &[u32],
    global_offset: u32,
    out: &mut Vec<(u32, u32, u32)>,
) {
    for i in 0..window.nnz() {
        let slot = window.slot(i);
        let pos = row_offset + slot.row_mod as usize;
        let orig = global_offset + row_perm[pos];
        out.push((orig, slot.col, slot.value.to_bits()));
    }
}

/// Compares rebuilt triplets against the source matrix (contract item 7).
fn audit_coverage(
    rebuilt: &mut Vec<(u32, u32, u32)>,
    rows: usize,
    cols: usize,
    matrix: &CsrMatrix,
    out: &mut Vec<Violation>,
) {
    if rows != matrix.rows() || cols != matrix.cols() {
        push(
            out,
            Violation::Coverage {
                what: format!(
                    "schedule is {rows}x{cols} but the matrix is {}x{}",
                    matrix.rows(),
                    matrix.cols()
                ),
            },
        );
        return;
    }
    rebuilt.sort_unstable();
    let mut expected: Vec<(u32, u32, u32)> = matrix
        .iter()
        .map(|(r, c, v)| (r as u32, c as u32, v.to_bits()))
        .collect();
    expected.sort_unstable();
    if *rebuilt == expected {
        return;
    }
    if rebuilt.len() != expected.len() {
        push(
            out,
            Violation::Coverage {
                what: format!(
                    "schedule streams {} triplets but the matrix has {}",
                    rebuilt.len(),
                    expected.len()
                ),
            },
        );
        return;
    }
    for (got, want) in rebuilt.iter().zip(&expected) {
        if got != want
            && !push(
                out,
                Violation::Coverage {
                    what: format!(
                        "slot stream has (row {}, col {}, bits {:#x}) where the matrix has (row {}, col {}, bits {:#x})",
                        got.0, got.1, got.2, want.0, want.1, want.2
                    ),
                },
            )
        {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GustConfig;
    use crate::engine::Gust;
    use gust_sparse::prelude::*;

    fn schedules(seed: u64) -> (CsrMatrix, ScheduledMatrix) {
        let m = CsrMatrix::from(&gen::uniform(24, 24, 120, seed));
        let s = Gust::new(GustConfig::new(8)).schedule(&m);
        (m, s)
    }

    #[test]
    fn clean_schedules_audit_clean() {
        let (m, s) = schedules(11);
        assert!(audit_schedule(&s).is_clean());
        assert!(audit_schedule_against(&s, &m).is_clean());
        let gust = Gust::new(GustConfig::new(8));
        let banded = gust.schedule_banded(&m);
        assert!(audit_banded(&banded).is_clean());
        assert!(audit_banded_against(&banded, &m).is_clean());
    }

    #[test]
    fn verify_wraps_clean_schedules() {
        let (_, s) = schedules(12);
        let nnz = s.nnz();
        let verified = VerifiedSchedule::verify(s).expect("clean schedule verifies");
        // Deref exposes the schedule transparently.
        assert_eq!(verified.nnz(), nnz);
        assert_eq!(verified.into_inner().nnz(), nnz);
    }

    #[test]
    fn raw_auditor_catches_write_collision() {
        // Two slots of color 0 both target adder 1: the forged stream the
        // serializer could otherwise admit in release builds.
        let mut out = Vec::new();
        let mut scratch = Scratch::new(4);
        audit_window_soa(
            0,
            1,
            &[0, 2],
            &[0, 1],
            &[1, 1],
            &[0, 1],
            4,
            4,
            8,
            &mut scratch,
            &mut out,
        );
        assert!(matches!(
            out.as_slice(),
            [Violation::WriteCollision {
                window: 0,
                color: 0,
                row_mod: 1,
                first_slot: 0,
                second_slot: 1,
            }]
        ));
    }

    #[test]
    fn raw_auditor_catches_out_of_bounds_column() {
        let mut out = Vec::new();
        let mut scratch = Scratch::new(4);
        audit_window_soa(
            3,
            1,
            &[0, 1],
            &[2],
            &[0],
            &[8],
            4,
            4,
            8,
            &mut scratch,
            &mut out,
        );
        assert_eq!(out.len(), 1);
        let text = out[0].to_string();
        assert!(text.contains("out of range"), "{text}");
        assert!(text.contains("window 3"), "{text}");
    }

    #[test]
    fn raw_auditor_bounds_ragged_window_adders() {
        // length 4 but the final window only covers 2 rows: adder 3 is in
        // bounds for the crossbar yet out of bounds for the scatter.
        let mut out = Vec::new();
        let mut scratch = Scratch::new(4);
        audit_window_soa(
            1,
            1,
            &[0, 1],
            &[0],
            &[3],
            &[0],
            4,
            2,
            8,
            &mut scratch,
            &mut out,
        );
        assert!(matches!(
            out.as_slice(),
            [Violation::AdderOutOfBounds { limit: 2, .. }]
        ));
    }

    #[test]
    fn row_perm_duplicates_are_rejected() {
        let mut out = Vec::new();
        audit_row_perm(&[0, 1, 1, 3], 4, &mut out);
        assert_eq!(out.len(), 1);
        assert!(out[0].to_string().contains("twice"));
    }

    #[test]
    fn band_containment_is_checked() {
        let mut out = Vec::new();
        // Band 0 is [0, 4) but slot 1 claims column 5.
        audit_banded_window(0, &[0, 2, 3], &[0, 4, 8], &[1, 5, 6], &mut out);
        assert!(matches!(
            out.as_slice(),
            [Violation::BandColumn {
                band: 0,
                slot: 1,
                col: 5,
                ..
            }]
        ));
        assert!(out[0].to_string().contains("outside"));
    }

    #[test]
    fn reports_are_truncated() {
        let mut out = Vec::new();
        let n = MAX_VIOLATIONS + 40;
        // Every slot's column is out of bounds; one color per slot so the
        // color pointers stay valid.
        let color_ptr: Vec<u32> = (0..=n as u32).collect();
        let lanes = vec![0u32; n];
        let row_mods = vec![0u32; n];
        let cols = vec![9u32; n];
        let mut scratch = Scratch::new(4);
        audit_window_soa(
            0,
            n as u32,
            &color_ptr,
            &lanes,
            &row_mods,
            &cols,
            4,
            4,
            8,
            &mut scratch,
            &mut out,
        );
        assert_eq!(out.len(), MAX_VIOLATIONS);
        let report = AuditReport::from_violations(out);
        assert!(report.to_string().contains("truncated"));
    }
}
