//! Runtime-dispatched backends for the execution engine's hot loops.
//!
//! [`crate::engine::Gust`] runs three inner loops per SpMV: the operand
//! gather (stage `x[col]` into a window-local buffer), the single-vector
//! window walk (multiply–crossbar–accumulate per slot), and the batched
//! panel walk (one slot × a register block of right-hand sides). Each is
//! implemented here three times — a safe scalar version that reproduces
//! the PR 2 arithmetic bit for bit, an `std::arch::x86_64` AVX2+FMA
//! version, and an AVX-512 version at twice the lane width with masked
//! ragged tails — and dispatched per window through
//! [`Backend`] (re-exported from [`gust_sparse::kernels`], where detection
//! and the `GUST_BACKEND` override live).
//!
//! The batched panel walk additionally exists in an `f64` variant
//! ([`panel_walk_f64`] / [`stage_panel_f64`]): the schedule's *matrix*
//! values stay `f32` (widened per slot), while operand panels and
//! accumulators are double precision — the element type the engine's
//! generic batch walk (`gust::engine::Element`) is monomorphized over.
//! AVX-512 runs it 8 lanes per 512-bit register; scalar and forced-Avx2
//! walks share the autovectorized fixed-8 scalar body (AVX2 gains too
//! little over it at 4 lanes per register to justify a third unsafe
//! path).
//!
//! # Numerical contract
//!
//! * [`gather`] and [`stage_panel`] copy values; they are exact under
//!   every backend.
//! * [`window_walk`] is **bit-identical across backends**: SIMD only
//!   widens the multiplies (IEEE-exact), the scatter adds stay scalar and
//!   in slot order — which is what keeps `Gust::execute` pinned to the
//!   instrumented walk and the `hw::GustPipeline` regardless of backend.
//! * [`window_walk`]'s AVX-512 path keeps the same split (16-wide
//!   IEEE-exact multiplies, scalar in-order scatter adds) and therefore
//!   the same bit-identity, masked tails included — a masked multiply
//!   lane computes the identical product the scalar remainder loop did.
//! * [`panel_walk`] is bit-identical to the scalar path under
//!   [`Backend::Scalar`]; under [`Backend::Avx2`] and [`Backend::Avx512`]
//!   each accumulate is an FMA (one rounding instead of two), so outputs
//!   differ from scalar by at most one ULP per accumulation step — the
//!   bound `tests/backend_equivalence.rs` enforces. [`panel_walk_f64`]
//!   obeys the same contract in double precision.
//!
//! # Safety
//!
//! The only `unsafe` in this crate lives in this module's `avx2` and
//! `avx512` submodules (the crate root carries `#![deny(unsafe_code)]`).
//! Every unsafe block is either a call to a `#[target_feature(...)]`
//! function guarded by [`Backend::is_available`] (enabling `avx2,fma`,
//! plus `avx512f,avx512vl` for the avx512 module — exactly the set
//! `Backend::Avx512.is_available()` checks), or a gather/load intrinsic
//! whose indices were validated when the schedule
//! was built: [`crate::ScheduledMatrix`] asserts at construction (release
//! builds included) that every slot column is `< cols`, every `row_mod`
//! is `< length`, and `local_cols` indexes its own gather list by
//! construction — and the engine asserts `x.len() == cols` /
//! `stage.len() == gather_cols.len() · bb` before any kernel runs.
//! AVX-512 masked loads/gathers/stores never access masked-out lanes, so
//! a masked tail needs no stronger precondition than the scalar remainder
//! loop it replaces.

#![allow(unsafe_code)]
// Every unsafe block must state the contract it discharges; enforced
// mechanically (clippy) on top of the xtask lint.
#![deny(clippy::undocumented_unsafe_blocks)]

pub use gust_sparse::kernels::{best_available, cpu_features, default_backend, Backend};

/// Gathers `dst[i] = src[idx[i]]` — the single-vector operand staging
/// pass. Exact under every backend.
///
/// # Panics
///
/// Panics if `dst.len() != idx.len()` or (scalar path) an index is out of
/// bounds. The AVX2 path requires every `idx` to be in bounds for `src`;
/// the engine only passes schedule gather lists validated at
/// construction.
pub(crate) fn gather(backend: Backend, src: &[f32], idx: &[u32], dst: &mut [f32]) {
    assert_eq!(dst.len(), idx.len(), "gather output length mismatch");
    debug_assert!(idx.iter().all(|&i| (i as usize) < src.len()));
    #[cfg(target_arch = "x86_64")]
    if backend == Backend::Avx512 && Backend::Avx512.is_available() {
        // SAFETY: avx512f+avx512vl+avx2+fma verified; indices validated
        // at schedule build (`ScheduledMatrix::from_parts`) against
        // `cols == src.len()`, masked-out tail lanes access no memory.
        unsafe { avx512::gather_avx512(src, idx, dst) };
        return;
    }
    #[cfg(target_arch = "x86_64")]
    if backend == Backend::Avx2 && Backend::Avx2.is_available() {
        // SAFETY: avx2+fma verified; indices validated at schedule build
        // (`ScheduledMatrix::from_parts`) against `cols == src.len()`.
        unsafe { avx2::gather_avx2(src, idx, dst) };
        return;
    }
    let _ = backend;
    for (d, &i) in dst.iter_mut().zip(idx) {
        *d = src[i as usize];
    }
}

/// The single-vector window walk: for each slot `i`,
/// `adders[row_mods[i]] += values[i] * operands[idx[i]]`, in slot order.
///
/// `(idx, operands)` is either `(local_cols, stage)` for a staged window
/// or `(cols, x)` for a direct one. Bit-identical across backends (see
/// the module docs).
///
/// # Panics
///
/// Panics if the slot arrays disagree in length or (scalar path) an index
/// is out of bounds; the AVX2 path bounds-checks the scatter adds and
/// requires in-bounds gather indices, which the schedule guarantees.
pub(crate) fn window_walk(
    backend: Backend,
    values: &[f32],
    idx: &[u32],
    row_mods: &[u32],
    operands: &[f32],
    adders: &mut [f32],
) {
    assert_eq!(values.len(), idx.len(), "slot array length mismatch");
    assert_eq!(values.len(), row_mods.len(), "slot array length mismatch");
    #[cfg(target_arch = "x86_64")]
    if backend == Backend::Avx512 && Backend::Avx512.is_available() {
        // SAFETY: avx512f+avx512vl+avx2+fma verified; gather indices
        // validated at schedule build against the operand array the
        // engine sized to match, masked tail lanes access no memory.
        unsafe { avx512::window_walk_avx512(values, idx, row_mods, operands, adders) };
        return;
    }
    #[cfg(target_arch = "x86_64")]
    if backend == Backend::Avx2 && Backend::Avx2.is_available() {
        // SAFETY: avx2+fma verified; gather indices validated at schedule
        // build against the operand array the engine sized to match.
        unsafe { avx2::window_walk_avx2(values, idx, row_mods, operands, adders) };
        return;
    }
    let _ = backend;
    window_walk_scalar(values, idx, row_mods, operands, adders);
}

/// The batched panel walk: for each slot `i` and each right-hand side
/// `j < bb`,
/// `acc[row_mods[i]·bb + j] += values[i] * operands[idx[i]·bb + j]`.
///
/// One code path serves full register blocks and ragged tails alike: the
/// scalar backend monomorphizes its shared per-slot kernel at the
/// register-block width and falls back to the same kernel with a runtime
/// width for tails, and the AVX2 backend strides any `bb` in 8-lane FMA
/// steps plus a fused scalar remainder — so a tail cannot drift from the
/// main path.
///
/// # Panics
///
/// Panics if the slot arrays disagree in length or a slot's operand or
/// accumulator block would fall outside its array.
pub(crate) fn panel_walk(
    backend: Backend,
    values: &[f32],
    idx: &[u32],
    row_mods: &[u32],
    operands: &[f32],
    acc: &mut [f32],
    bb: usize,
) {
    assert_eq!(values.len(), idx.len(), "slot array length mismatch");
    assert_eq!(values.len(), row_mods.len(), "slot array length mismatch");
    #[cfg(target_arch = "x86_64")]
    if backend == Backend::Avx512 && Backend::Avx512.is_available() {
        debug_assert!(idx.iter().all(|&c| (c as usize + 1) * bb <= operands.len()));
        debug_assert!(row_mods.iter().all(|&r| (r as usize + 1) * bb <= acc.len()));
        // SAFETY: avx512f+avx512vl+avx2+fma verified; block offsets are
        // the same schedule invariants as the AVX2 arm below. Full
        // 512-bit register blocks take the monomorphized straight-line
        // kernel; any other width takes the masked-striding one.
        unsafe {
            match bb {
                16 => avx512::panel_walk_avx512_const::<1>(values, idx, row_mods, operands, acc),
                32 => avx512::panel_walk_avx512_const::<2>(values, idx, row_mods, operands, acc),
                _ => avx512::panel_walk_avx512(values, idx, row_mods, operands, acc, bb),
            }
        }
        return;
    }
    #[cfg(target_arch = "x86_64")]
    if backend == Backend::Avx2 && Backend::Avx2.is_available() {
        debug_assert!(idx.iter().all(|&c| (c as usize + 1) * bb <= operands.len()));
        debug_assert!(row_mods.iter().all(|&r| (r as usize + 1) * bb <= acc.len()));
        // SAFETY: avx2+fma verified. The per-slot block offsets are
        // schedule invariants validated at construction
        // (`ScheduledMatrix::from_parts`): every `idx` is < the operand
        // row count and every `row_mod` < the accumulator row count, and
        // the engine sized both arrays as `rows × bb`. Full register
        // blocks take the monomorphized straight-line kernel; any other
        // width takes the runtime-striding one — same arithmetic.
        unsafe {
            match bb {
                8 => avx2::panel_walk_avx2_const::<1>(values, idx, row_mods, operands, acc),
                16 => avx2::panel_walk_avx2_const::<2>(values, idx, row_mods, operands, acc),
                32 => avx2::panel_walk_avx2_const::<4>(values, idx, row_mods, operands, acc),
                _ => avx2::panel_walk_avx2(values, idx, row_mods, operands, acc, bb),
            }
        }
        return;
    }
    let _ = backend;
    if bb == Backend::Scalar.reg_block() {
        panel_walk_scalar_const::<8>(values, idx, row_mods, operands, acc);
    } else {
        panel_walk_scalar_dyn(values, idx, row_mods, operands, acc, bb);
    }
}

/// The batched panel walk in double precision: for each slot `i` and each
/// right-hand side `j < bb`,
/// `acc[row_mods[i]·bb + j] += f64(values[i]) * operands[idx[i]·bb + j]`.
///
/// The schedule's matrix values stay `f32` storage (widened once per
/// slot); operands and accumulators are `f64`. Only [`Backend::Avx512`]
/// has an explicit SIMD body (8 lanes fill one 512-bit register);
/// [`Backend::Avx2`] and [`Backend::Scalar`] share the autovectorized
/// fixed-8 scalar kernel — see the module docs.
///
/// # Panics
///
/// Panics if the slot arrays disagree in length or a slot's operand or
/// accumulator block would fall outside its array.
pub(crate) fn panel_walk_f64(
    backend: Backend,
    values: &[f32],
    idx: &[u32],
    row_mods: &[u32],
    operands: &[f64],
    acc: &mut [f64],
    bb: usize,
) {
    assert_eq!(values.len(), idx.len(), "slot array length mismatch");
    assert_eq!(values.len(), row_mods.len(), "slot array length mismatch");
    #[cfg(target_arch = "x86_64")]
    if backend == Backend::Avx512 && Backend::Avx512.is_available() {
        debug_assert!(idx.iter().all(|&c| (c as usize + 1) * bb <= operands.len()));
        debug_assert!(row_mods.iter().all(|&r| (r as usize + 1) * bb <= acc.len()));
        // SAFETY: avx512f+avx512vl+avx2+fma verified; block offsets are
        // schedule invariants validated at construction, as in
        // `panel_walk`.
        unsafe {
            match bb {
                8 => avx512::panel_walk_f64_avx512_const::<1>(values, idx, row_mods, operands, acc),
                16 => {
                    avx512::panel_walk_f64_avx512_const::<2>(values, idx, row_mods, operands, acc);
                }
                _ => avx512::panel_walk_f64_avx512(values, idx, row_mods, operands, acc, bb),
            }
        }
        return;
    }
    let _ = backend;
    if bb == Backend::Scalar.reg_block_f64() {
        panel_walk_f64_scalar_const::<8>(values, idx, row_mods, operands, acc);
    } else {
        panel_walk_f64_scalar_dyn(values, idx, row_mods, operands, acc, bb);
    }
}

/// Interleaves one register block of the column-major panel:
/// `xb[i·bb + j] = b[(j0+j)·cols + i]` for all columns `i` — the PR 2
/// whole-panel transpose, used for windows that are not staged.
///
/// Generic over the element type (`f32` / `f64` panels interleave the
/// same way — it is a copy).
///
/// # Panics
///
/// Panics if `xb.len() != cols·bb` or the panel slice is too short.
pub(crate) fn interleave_panel<T: Copy>(b: &[T], cols: usize, j0: usize, bb: usize, xb: &mut [T]) {
    interleave_panel_band(b, cols, 0, cols, j0, bb, xb);
}

/// Interleaves one register block of a **column band** of the panel:
/// `xb[i·bb + j] = b[(j0+j)·cols + col0 + i]` for `i < width` — the
/// banded engine's per-band operand slice, sized by the cache budget so
/// the following band walk gathers from a cache-resident block. Reads
/// are sequential per right-hand side, so the transpose streams at
/// memory bandwidth. Exact under every backend (a copy).
///
/// # Panics
///
/// Panics if `xb.len() != width·bb` or the band falls outside a panel
/// column.
pub(crate) fn interleave_panel_band<T: Copy>(
    b: &[T],
    cols: usize,
    col0: usize,
    width: usize,
    j0: usize,
    bb: usize,
    xb: &mut [T],
) {
    assert_eq!(xb.len(), width * bb, "interleave buffer length mismatch");
    assert!(col0 + width <= cols, "band outside the panel columns");
    for j in 0..bb {
        let src = &b[(j0 + j) * cols + col0..(j0 + j) * cols + col0 + width];
        for (i, &v) in src.iter().enumerate() {
            xb[i * bb + j] = v;
        }
    }
}

/// Stages one register block of a window's distinct columns from the
/// column-major panel: `stage[i·bb + j] = b[(j0+j)·cols + gather[i]]`.
/// The gather list is ascending, so each `j` pass reads its panel column
/// monotonically. Exact under every backend.
///
/// # Panics
///
/// Panics if `stage.len() != gather.len()·bb` or (scalar path) an index
/// is out of bounds; the AVX2 path requires in-bounds gather indices,
/// which the schedule guarantees.
pub(crate) fn stage_panel(
    backend: Backend,
    b: &[f32],
    cols: usize,
    j0: usize,
    bb: usize,
    gather_cols: &[u32],
    stage: &mut [f32],
) {
    assert_eq!(
        stage.len(),
        gather_cols.len() * bb,
        "stage buffer length mismatch"
    );
    #[cfg(target_arch = "x86_64")]
    if backend == Backend::Avx512 && Backend::Avx512.is_available() {
        for j in 0..bb {
            let src = &b[(j0 + j) * cols..(j0 + j + 1) * cols];
            // SAFETY: avx512f+avx512vl+avx2+fma verified; gather indices
            // validated at schedule build against `cols == src.len()`.
            unsafe { avx512::gather_strided_avx512(src, gather_cols, stage, bb, j) };
        }
        return;
    }
    #[cfg(target_arch = "x86_64")]
    if backend == Backend::Avx2 && Backend::Avx2.is_available() {
        for j in 0..bb {
            let src = &b[(j0 + j) * cols..(j0 + j + 1) * cols];
            // SAFETY: avx2+fma verified; gather indices validated at
            // schedule build against `cols == src.len()`.
            unsafe { avx2::gather_strided_avx2(src, gather_cols, stage, bb, j) };
        }
        return;
    }
    let _ = backend;
    for j in 0..bb {
        let src = &b[(j0 + j) * cols..(j0 + j + 1) * cols];
        for (i, &g) in gather_cols.iter().enumerate() {
            stage[i * bb + j] = src[g as usize];
        }
    }
}

/// [`stage_panel`] in double precision: stages one register block of a
/// window's distinct columns from a column-major `f64` panel. Exact under
/// every backend (a copy); AVX-512 runs the gathers 8 lanes per 512-bit
/// register.
///
/// # Panics
///
/// Panics if `stage.len() != gather.len()·bb` or (scalar path) an index
/// is out of bounds; the AVX-512 path requires in-bounds gather indices,
/// which the schedule guarantees.
pub(crate) fn stage_panel_f64(
    backend: Backend,
    b: &[f64],
    cols: usize,
    j0: usize,
    bb: usize,
    gather_cols: &[u32],
    stage: &mut [f64],
) {
    assert_eq!(
        stage.len(),
        gather_cols.len() * bb,
        "stage buffer length mismatch"
    );
    #[cfg(target_arch = "x86_64")]
    if backend == Backend::Avx512 && Backend::Avx512.is_available() {
        for j in 0..bb {
            let src = &b[(j0 + j) * cols..(j0 + j + 1) * cols];
            // SAFETY: avx512f+avx512vl+avx2+fma verified; gather indices
            // validated at schedule build against `cols == src.len()`.
            unsafe { avx512::gather_strided_avx512_pd(src, gather_cols, stage, bb, j) };
        }
        return;
    }
    let _ = backend;
    for j in 0..bb {
        let src = &b[(j0 + j) * cols..(j0 + j + 1) * cols];
        for (i, &g) in gather_cols.iter().enumerate() {
            stage[i * bb + j] = src[g as usize];
        }
    }
}

/// Dumps one window's active accumulator rows into the column-major
/// output block through the row permutation:
/// `y_block[j·rows_total + row0 + row_perm[i]] = acc[i·bb + j]` for every
/// active local row `i` and right-hand side `j < bb`.
///
/// `row_perm` is the window's slice of the schedule's permutation
/// (tile-local for 2D tiled schedules — `row0` rebases it to the global
/// output rows; 0 for untiled walks). A copy, exact under every backend;
/// one body serves the flat, banded and tiled batch walks so the dump
/// cannot drift between them.
///
/// # Panics
///
/// Panics if `acc` is not `row_perm.len()·bb` long or a permuted row
/// falls outside a `rows_total`-row output column.
pub(crate) fn scatter_panel<T: Copy>(
    acc: &[T],
    row_perm: &[u32],
    row0: usize,
    rows_total: usize,
    bb: usize,
    y_block: &mut [T],
) {
    assert_eq!(
        acc.len(),
        row_perm.len() * bb,
        "accumulator block length mismatch"
    );
    for (acc_row, &perm) in acc.chunks_exact(bb).zip(row_perm) {
        let orig = row0 + perm as usize;
        for (j, &v) in acc_row.iter().enumerate() {
            y_block[j * rows_total + orig] = v;
        }
    }
}

/// The PR 2 single-vector inner loop, verbatim: four independent
/// multiply-gathers per step, scatter adds in slot order.
fn window_walk_scalar(
    values: &[f32],
    idx: &[u32],
    row_mods: &[u32],
    operands: &[f32],
    adders: &mut [f32],
) {
    let mut chunks_v = values.chunks_exact(4);
    let mut chunks_c = idx.chunks_exact(4);
    let mut chunks_r = row_mods.chunks_exact(4);
    for ((v, c), r) in (&mut chunks_v).zip(&mut chunks_c).zip(&mut chunks_r) {
        let p0 = v[0] * operands[c[0] as usize];
        let p1 = v[1] * operands[c[1] as usize];
        let p2 = v[2] * operands[c[2] as usize];
        let p3 = v[3] * operands[c[3] as usize];
        adders[r[0] as usize] += p0;
        adders[r[1] as usize] += p1;
        adders[r[2] as usize] += p2;
        adders[r[3] as usize] += p3;
    }
    for ((&v, &c), &r) in chunks_v
        .remainder()
        .iter()
        .zip(chunks_c.remainder())
        .zip(chunks_r.remainder())
    {
        adders[r as usize] += v * operands[c as usize];
    }
}

/// The shared per-slot panel kernel: `a[j] += v · x[j]` for `j < len`.
/// Both scalar panel paths (full block and ragged tail) funnel through
/// this one body, so the arithmetic cannot drift between them.
#[inline(always)]
fn slot_axpy(v: f32, x: &[f32], a: &mut [f32]) {
    for (aj, &xj) in a.iter_mut().zip(x) {
        *aj += v * xj;
    }
}

/// Full-register-block scalar panel walk, monomorphized at the block
/// width so the fixed-length [`slot_axpy`] lowers to full-width SIMD.
fn panel_walk_scalar_const<const B: usize>(
    values: &[f32],
    idx: &[u32],
    row_mods: &[u32],
    operands: &[f32],
    acc: &mut [f32],
) {
    for ((&v, &c), &r) in values.iter().zip(idx).zip(row_mods) {
        let x: &[f32; B] = operands[c as usize * B..c as usize * B + B]
            .try_into()
            .expect("block-sized operand slice");
        let a: &mut [f32; B] = (&mut acc[r as usize * B..r as usize * B + B])
            .try_into()
            .expect("block-sized accumulator slice");
        slot_axpy(v, x, a);
    }
}

/// Ragged-tail scalar panel walk at a runtime width — same
/// [`slot_axpy`] body as the full-block path.
fn panel_walk_scalar_dyn(
    values: &[f32],
    idx: &[u32],
    row_mods: &[u32],
    operands: &[f32],
    acc: &mut [f32],
    bb: usize,
) {
    for ((&v, &c), &r) in values.iter().zip(idx).zip(row_mods) {
        let x = &operands[c as usize * bb..c as usize * bb + bb];
        let a = &mut acc[r as usize * bb..r as usize * bb + bb];
        slot_axpy(v, x, a);
    }
}

/// [`slot_axpy`] in double precision: `a[j] += v · x[j]` with the slot
/// value already widened. Both f64 scalar panel paths funnel through this
/// one body.
#[inline(always)]
fn slot_axpy_f64(v: f64, x: &[f64], a: &mut [f64]) {
    for (aj, &xj) in a.iter_mut().zip(x) {
        *aj += v * xj;
    }
}

/// Full-register-block f64 scalar panel walk, monomorphized at the block
/// width so the fixed-length [`slot_axpy_f64`] autovectorizes.
fn panel_walk_f64_scalar_const<const B: usize>(
    values: &[f32],
    idx: &[u32],
    row_mods: &[u32],
    operands: &[f64],
    acc: &mut [f64],
) {
    for ((&v, &c), &r) in values.iter().zip(idx).zip(row_mods) {
        let x: &[f64; B] = operands[c as usize * B..c as usize * B + B]
            .try_into()
            .expect("block-sized operand slice");
        let a: &mut [f64; B] = (&mut acc[r as usize * B..r as usize * B + B])
            .try_into()
            .expect("block-sized accumulator slice");
        slot_axpy_f64(f64::from(v), x, a);
    }
}

/// Ragged-tail f64 scalar panel walk at a runtime width — same
/// [`slot_axpy_f64`] body as the full-block path.
fn panel_walk_f64_scalar_dyn(
    values: &[f32],
    idx: &[u32],
    row_mods: &[u32],
    operands: &[f64],
    acc: &mut [f64],
    bb: usize,
) {
    for ((&v, &c), &r) in values.iter().zip(idx).zip(row_mods) {
        let x = &operands[c as usize * bb..c as usize * bb + bb];
        let a = &mut acc[r as usize * bb..r as usize * bb + bb];
        slot_axpy_f64(f64::from(v), x, a);
    }
}

#[cfg(target_arch = "x86_64")]
mod avx2 {
    //! AVX2+FMA engine kernels. Every function is
    //! `#[target_feature(enable = "avx2,fma")]` and only called after
    //! [`super::Backend::is_available`] returned `true`; gather indices
    //! are schedule invariants validated at construction (see the module
    //! docs).

    use std::arch::x86_64::{
        _mm256_fmadd_ps, _mm256_i32gather_ps, _mm256_loadu_ps, _mm256_loadu_si256, _mm256_mul_ps,
        _mm256_set1_ps, _mm256_storeu_ps,
    };

    /// 8-wide `dst[i] = src[idx[i]]`.
    ///
    /// # Safety
    ///
    /// Caller verified avx2+fma and that every index is `< src.len()`;
    /// `dst.len() == idx.len()` is asserted by the dispatcher.
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn gather_avx2(src: &[f32], idx: &[u32], dst: &mut [f32]) {
        let mut chunks_i = idx.chunks_exact(8);
        let mut chunks_d = dst.chunks_exact_mut(8);
        for (i, d) in (&mut chunks_i).zip(&mut chunks_d) {
            let iv = _mm256_loadu_si256(i.as_ptr().cast());
            let g = _mm256_i32gather_ps::<4>(src.as_ptr(), iv);
            _mm256_storeu_ps(d.as_mut_ptr(), g);
        }
        for (&i, d) in chunks_i.remainder().iter().zip(chunks_d.into_remainder()) {
            *d = src[i as usize];
        }
    }

    /// Strided gather for the panel stage: `stage[i·bb + j] =
    /// src[gather[i]]` for all `i`, one right-hand side `j` at a time.
    /// The vector gather hides the latency of the scattered reads; the
    /// strided stores stay scalar (AVX2 has no scatter).
    ///
    /// # Safety
    ///
    /// Caller verified avx2+fma, every gather index `< src.len()`, and
    /// `stage.len() == gather.len()·bb` with `j < bb`.
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn gather_strided_avx2(
        src: &[f32],
        gather: &[u32],
        stage: &mut [f32],
        bb: usize,
        j: usize,
    ) {
        let mut buf = [0.0f32; 8];
        let mut chunks = gather.chunks_exact(8);
        let mut i = 0usize;
        for g in &mut chunks {
            let iv = _mm256_loadu_si256(g.as_ptr().cast());
            let vals = _mm256_i32gather_ps::<4>(src.as_ptr(), iv);
            _mm256_storeu_ps(buf.as_mut_ptr(), vals);
            for (k, &v) in buf.iter().enumerate() {
                stage[(i + k) * bb + j] = v;
            }
            i += 8;
        }
        for &g in chunks.remainder() {
            stage[i * bb + j] = src[g as usize];
            i += 1;
        }
    }

    /// 8-slot single-vector walk: gather + multiply vectorized, scatter
    /// adds scalar and in slot order — bit-identical to the scalar path.
    ///
    /// # Safety
    ///
    /// Caller verified avx2+fma and that every gather index is
    /// `< operands.len()`. Scatter adds use bounds-checked indexing.
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn window_walk_avx2(
        values: &[f32],
        idx: &[u32],
        row_mods: &[u32],
        operands: &[f32],
        adders: &mut [f32],
    ) {
        let mut buf = [0.0f32; 8];
        let mut chunks_v = values.chunks_exact(8);
        let mut chunks_c = idx.chunks_exact(8);
        let mut chunks_r = row_mods.chunks_exact(8);
        for ((v, c), r) in (&mut chunks_v).zip(&mut chunks_c).zip(&mut chunks_r) {
            let iv = _mm256_loadu_si256(c.as_ptr().cast());
            let xs = _mm256_i32gather_ps::<4>(operands.as_ptr(), iv);
            let p = _mm256_mul_ps(_mm256_loadu_ps(v.as_ptr()), xs);
            _mm256_storeu_ps(buf.as_mut_ptr(), p);
            for (k, &rm) in r.iter().enumerate() {
                adders[rm as usize] += buf[k];
            }
        }
        for ((&v, &c), &r) in chunks_v
            .remainder()
            .iter()
            .zip(chunks_c.remainder())
            .zip(chunks_r.remainder())
        {
            adders[r as usize] += v * operands[c as usize];
        }
    }

    /// Panel walk at a compile-time width of `NREG` 256-bit registers
    /// (`bb = 8·NREG`): per slot, `NREG` straight-line FMAs with no
    /// per-lane branching — the full-register-block fast path.
    ///
    /// # Safety
    ///
    /// Caller verified avx2+fma and that for every slot,
    /// `(idx[i]+1)·8·NREG ≤ operands.len()` and
    /// `(row_mods[i]+1)·8·NREG ≤ acc.len()` (schedule invariants,
    /// debug-asserted by the dispatcher).
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn panel_walk_avx2_const<const NREG: usize>(
        values: &[f32],
        idx: &[u32],
        row_mods: &[u32],
        operands: &[f32],
        acc: &mut [f32],
    ) {
        let op = operands.as_ptr();
        let ac = acc.as_mut_ptr();
        for ((&v, &c), &r) in values.iter().zip(idx).zip(row_mods) {
            let vv = _mm256_set1_ps(v);
            let xp = op.add(c as usize * (NREG * 8));
            let ap = ac.add(r as usize * (NREG * 8));
            for k in 0..NREG {
                let av = _mm256_loadu_ps(ap.add(8 * k));
                let xv = _mm256_loadu_ps(xp.add(8 * k));
                _mm256_storeu_ps(ap.add(8 * k), _mm256_fmadd_ps(vv, xv, av));
            }
        }
    }

    /// Panel walk at any width `bb`: per slot, 8-lane FMA strides plus a
    /// fused scalar remainder — one path for ragged tails of any size.
    ///
    /// # Safety
    ///
    /// Caller verified avx2+fma. Per-slot operand/accumulator blocks are
    /// obtained with bounds-checked slicing before any raw load, so the
    /// pointer arithmetic below stays inside those blocks.
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn panel_walk_avx2(
        values: &[f32],
        idx: &[u32],
        row_mods: &[u32],
        operands: &[f32],
        acc: &mut [f32],
        bb: usize,
    ) {
        for ((&v, &c), &r) in values.iter().zip(idx).zip(row_mods) {
            let x = &operands[c as usize * bb..c as usize * bb + bb];
            let a = &mut acc[r as usize * bb..r as usize * bb + bb];
            let vv = _mm256_set1_ps(v);
            let xp = x.as_ptr();
            let ap = a.as_mut_ptr();
            let mut j = 0usize;
            while j + 8 <= bb {
                let av = _mm256_loadu_ps(ap.add(j));
                let xv = _mm256_loadu_ps(xp.add(j));
                _mm256_storeu_ps(ap.add(j), _mm256_fmadd_ps(vv, xv, av));
                j += 8;
            }
            while j < bb {
                a[j] = v.mul_add(x[j], a[j]);
                j += 1;
            }
        }
    }
}

#[cfg(target_arch = "x86_64")]
mod avx512 {
    //! AVX-512 engine kernels. Every function is
    //! `#[target_feature(enable = "avx512f,avx512vl,avx2,fma")]` — the
    //! exact set [`super::Backend::Avx512.is_available`] checks — and
    //! only called after that check returned `true`; gather indices are
    //! schedule invariants validated at construction (see the module
    //! docs). Ragged tails use masked loads/gathers/stores: masked-out
    //! lanes never touch memory, so the preconditions match the scalar
    //! remainder loops these masks replace.

    use std::arch::x86_64::{
        __mmask16, __mmask8, _mm256_loadu_si256, _mm256_maskz_loadu_epi32, _mm512_fmadd_pd,
        _mm512_fmadd_ps, _mm512_i32gather_pd, _mm512_i32gather_ps, _mm512_loadu_epi32,
        _mm512_loadu_pd, _mm512_loadu_ps, _mm512_mask_i32gather_pd, _mm512_mask_i32gather_ps,
        _mm512_mask_storeu_pd, _mm512_mask_storeu_ps, _mm512_maskz_loadu_epi32,
        _mm512_maskz_loadu_pd, _mm512_maskz_loadu_ps, _mm512_mul_ps, _mm512_set1_pd,
        _mm512_set1_ps, _mm512_setzero_pd, _mm512_setzero_ps, _mm512_storeu_pd, _mm512_storeu_ps,
    };

    /// 16-wide `dst[i] = src[idx[i]]` with a masked tail.
    ///
    /// # Safety
    ///
    /// Caller verified the avx512 feature set and that every index is
    /// `< src.len()`; `dst.len() == idx.len()` is asserted by the
    /// dispatcher. Masked-out tail lanes access no memory.
    #[target_feature(enable = "avx512f,avx512vl,avx2,fma")]
    pub(super) unsafe fn gather_avx512(src: &[f32], idx: &[u32], dst: &mut [f32]) {
        let n = idx.len();
        let full = n / 16 * 16;
        let mut i = 0usize;
        while i < full {
            let iv = _mm512_loadu_epi32(idx.as_ptr().add(i).cast());
            let g = _mm512_i32gather_ps::<4>(iv, src.as_ptr().cast());
            _mm512_storeu_ps(dst.as_mut_ptr().add(i), g);
            i += 16;
        }
        let rem = n - full;
        if rem > 0 {
            let m: __mmask16 = (1u16 << rem) - 1;
            let iv = _mm512_maskz_loadu_epi32(m, idx.as_ptr().add(full).cast());
            let g = _mm512_mask_i32gather_ps::<4>(_mm512_setzero_ps(), m, iv, src.as_ptr().cast());
            _mm512_mask_storeu_ps(dst.as_mut_ptr().add(full), m, g);
        }
    }

    /// Strided gather for the f32 panel stage: `stage[i·bb + j] =
    /// src[gather[i]]`, one right-hand side `j` at a time — the AVX2
    /// version at twice the gather width, masked on the tail. Stores stay
    /// scalar (the stride defeats a vector store).
    ///
    /// # Safety
    ///
    /// Caller verified the avx512 feature set, every gather index
    /// `< src.len()`, and `stage.len() == gather.len()·bb` with `j < bb`.
    #[target_feature(enable = "avx512f,avx512vl,avx2,fma")]
    pub(super) unsafe fn gather_strided_avx512(
        src: &[f32],
        gather: &[u32],
        stage: &mut [f32],
        bb: usize,
        j: usize,
    ) {
        let mut buf = [0.0f32; 16];
        let n = gather.len();
        let full = n / 16 * 16;
        let mut i = 0usize;
        while i < full {
            let iv = _mm512_loadu_epi32(gather.as_ptr().add(i).cast());
            let vals = _mm512_i32gather_ps::<4>(iv, src.as_ptr().cast());
            _mm512_storeu_ps(buf.as_mut_ptr(), vals);
            for (k, &v) in buf.iter().enumerate() {
                stage[(i + k) * bb + j] = v;
            }
            i += 16;
        }
        let rem = n - full;
        if rem > 0 {
            let m: __mmask16 = (1u16 << rem) - 1;
            let iv = _mm512_maskz_loadu_epi32(m, gather.as_ptr().add(full).cast());
            let vals =
                _mm512_mask_i32gather_ps::<4>(_mm512_setzero_ps(), m, iv, src.as_ptr().cast());
            _mm512_mask_storeu_ps(buf.as_mut_ptr(), m, vals);
            for (k, &v) in buf[..rem].iter().enumerate() {
                stage[(full + k) * bb + j] = v;
            }
        }
    }

    /// [`gather_strided_avx512`] for `f64` panels: 8 double lanes per
    /// 512-bit gather, indices in one 256-bit register.
    ///
    /// # Safety
    ///
    /// As [`gather_strided_avx512`].
    #[target_feature(enable = "avx512f,avx512vl,avx2,fma")]
    pub(super) unsafe fn gather_strided_avx512_pd(
        src: &[f64],
        gather: &[u32],
        stage: &mut [f64],
        bb: usize,
        j: usize,
    ) {
        let mut buf = [0.0f64; 8];
        let n = gather.len();
        let full = n / 8 * 8;
        let mut i = 0usize;
        while i < full {
            let iv = _mm256_loadu_si256(gather.as_ptr().add(i).cast());
            let vals = _mm512_i32gather_pd::<8>(iv, src.as_ptr().cast());
            _mm512_storeu_pd(buf.as_mut_ptr(), vals);
            for (k, &v) in buf.iter().enumerate() {
                stage[(i + k) * bb + j] = v;
            }
            i += 8;
        }
        let rem = n - full;
        if rem > 0 {
            let m: __mmask8 = (1u8 << rem) - 1;
            let iv = _mm256_maskz_loadu_epi32(m, gather.as_ptr().add(full).cast());
            let vals =
                _mm512_mask_i32gather_pd::<8>(_mm512_setzero_pd(), m, iv, src.as_ptr().cast());
            _mm512_mask_storeu_pd(buf.as_mut_ptr(), m, vals);
            for (k, &v) in buf[..rem].iter().enumerate() {
                stage[(full + k) * bb + j] = v;
            }
        }
    }

    /// 16-slot single-vector walk: gather + multiply vectorized (masked
    /// on the tail), scatter adds scalar and in slot order —
    /// bit-identical to the scalar path, because a masked multiply lane
    /// computes the identical IEEE product the scalar remainder did.
    ///
    /// # Safety
    ///
    /// Caller verified the avx512 feature set and that every gather index
    /// is `< operands.len()`. Scatter adds use bounds-checked indexing.
    #[target_feature(enable = "avx512f,avx512vl,avx2,fma")]
    pub(super) unsafe fn window_walk_avx512(
        values: &[f32],
        idx: &[u32],
        row_mods: &[u32],
        operands: &[f32],
        adders: &mut [f32],
    ) {
        let mut buf = [0.0f32; 16];
        let n = values.len();
        let mut s = 0usize;
        while s < n {
            let rem = (n - s).min(16);
            let m: __mmask16 = if rem == 16 { !0 } else { (1u16 << rem) - 1 };
            let iv = _mm512_maskz_loadu_epi32(m, idx.as_ptr().add(s).cast());
            let xs =
                _mm512_mask_i32gather_ps::<4>(_mm512_setzero_ps(), m, iv, operands.as_ptr().cast());
            let vv = _mm512_maskz_loadu_ps(m, values.as_ptr().add(s));
            let p = _mm512_mul_ps(vv, xs);
            _mm512_mask_storeu_ps(buf.as_mut_ptr(), m, p);
            for (k, &rm) in row_mods[s..s + rem].iter().enumerate() {
                adders[rm as usize] += buf[k];
            }
            s += rem;
        }
    }

    /// f32 panel walk at a compile-time width of `NREG` 512-bit registers
    /// (`bb = 16·NREG`): per slot, `NREG` straight-line FMAs.
    ///
    /// # Safety
    ///
    /// Caller verified the avx512 feature set and that for every slot,
    /// `(idx[i]+1)·16·NREG ≤ operands.len()` and
    /// `(row_mods[i]+1)·16·NREG ≤ acc.len()` (schedule invariants,
    /// debug-asserted by the dispatcher).
    #[target_feature(enable = "avx512f,avx512vl,avx2,fma")]
    pub(super) unsafe fn panel_walk_avx512_const<const NREG: usize>(
        values: &[f32],
        idx: &[u32],
        row_mods: &[u32],
        operands: &[f32],
        acc: &mut [f32],
    ) {
        let op = operands.as_ptr();
        let ac = acc.as_mut_ptr();
        for ((&v, &c), &r) in values.iter().zip(idx).zip(row_mods) {
            let vv = _mm512_set1_ps(v);
            let xp = op.add(c as usize * (NREG * 16));
            let ap = ac.add(r as usize * (NREG * 16));
            for k in 0..NREG {
                let av = _mm512_loadu_ps(ap.add(16 * k));
                let xv = _mm512_loadu_ps(xp.add(16 * k));
                _mm512_storeu_ps(ap.add(16 * k), _mm512_fmadd_ps(vv, xv, av));
            }
        }
    }

    /// f32 panel walk at any width `bb`: 16-lane FMA strides plus a
    /// masked remainder — the masked loads/stores replacing the scalar
    /// tail loop of the AVX2 path.
    ///
    /// # Safety
    ///
    /// Caller verified the avx512 feature set. Per-slot blocks are
    /// obtained with bounds-checked slicing before any raw load, and the
    /// remainder mask covers exactly the in-bounds lanes.
    #[target_feature(enable = "avx512f,avx512vl,avx2,fma")]
    pub(super) unsafe fn panel_walk_avx512(
        values: &[f32],
        idx: &[u32],
        row_mods: &[u32],
        operands: &[f32],
        acc: &mut [f32],
        bb: usize,
    ) {
        for ((&v, &c), &r) in values.iter().zip(idx).zip(row_mods) {
            let x = &operands[c as usize * bb..c as usize * bb + bb];
            let a = &mut acc[r as usize * bb..r as usize * bb + bb];
            let vv = _mm512_set1_ps(v);
            let xp = x.as_ptr();
            let ap = a.as_mut_ptr();
            let mut j = 0usize;
            while j + 16 <= bb {
                let av = _mm512_loadu_ps(ap.add(j));
                let xv = _mm512_loadu_ps(xp.add(j));
                _mm512_storeu_ps(ap.add(j), _mm512_fmadd_ps(vv, xv, av));
                j += 16;
            }
            let rem = bb - j;
            if rem > 0 {
                let m: __mmask16 = (1u16 << rem) - 1;
                let av = _mm512_maskz_loadu_ps(m, ap.add(j));
                let xv = _mm512_maskz_loadu_ps(m, xp.add(j));
                _mm512_mask_storeu_ps(ap.add(j), m, _mm512_fmadd_ps(vv, xv, av));
            }
        }
    }

    /// f64 panel walk at a compile-time width of `NREG` 512-bit `pd`
    /// registers (`bb = 8·NREG`): the slot value is widened once, then
    /// `NREG` straight-line double-precision FMAs per slot.
    ///
    /// # Safety
    ///
    /// As [`panel_walk_avx512_const`] with 8-lane blocks.
    #[target_feature(enable = "avx512f,avx512vl,avx2,fma")]
    pub(super) unsafe fn panel_walk_f64_avx512_const<const NREG: usize>(
        values: &[f32],
        idx: &[u32],
        row_mods: &[u32],
        operands: &[f64],
        acc: &mut [f64],
    ) {
        let op = operands.as_ptr();
        let ac = acc.as_mut_ptr();
        for ((&v, &c), &r) in values.iter().zip(idx).zip(row_mods) {
            let vv = _mm512_set1_pd(f64::from(v));
            let xp = op.add(c as usize * (NREG * 8));
            let ap = ac.add(r as usize * (NREG * 8));
            for k in 0..NREG {
                let av = _mm512_loadu_pd(ap.add(8 * k));
                let xv = _mm512_loadu_pd(xp.add(8 * k));
                _mm512_storeu_pd(ap.add(8 * k), _mm512_fmadd_pd(vv, xv, av));
            }
        }
    }

    /// f64 panel walk at any width `bb`: 8-lane `pd` FMA strides plus a
    /// masked remainder.
    ///
    /// # Safety
    ///
    /// As [`panel_walk_avx512`].
    #[target_feature(enable = "avx512f,avx512vl,avx2,fma")]
    pub(super) unsafe fn panel_walk_f64_avx512(
        values: &[f32],
        idx: &[u32],
        row_mods: &[u32],
        operands: &[f64],
        acc: &mut [f64],
        bb: usize,
    ) {
        for ((&v, &c), &r) in values.iter().zip(idx).zip(row_mods) {
            let x = &operands[c as usize * bb..c as usize * bb + bb];
            let a = &mut acc[r as usize * bb..r as usize * bb + bb];
            let vv = _mm512_set1_pd(f64::from(v));
            let xp = x.as_ptr();
            let ap = a.as_mut_ptr();
            let mut j = 0usize;
            while j + 8 <= bb {
                let av = _mm512_loadu_pd(ap.add(j));
                let xv = _mm512_loadu_pd(xp.add(j));
                _mm512_storeu_pd(ap.add(j), _mm512_fmadd_pd(vv, xv, av));
                j += 8;
            }
            let rem = bb - j;
            if rem > 0 {
                let m: __mmask8 = (1u8 << rem) - 1;
                let av = _mm512_maskz_loadu_pd(m, ap.add(j));
                let xv = _mm512_maskz_loadu_pd(m, xp.add(j));
                _mm512_mask_storeu_pd(ap.add(j), m, _mm512_fmadd_pd(vv, xv, av));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn both_backends() -> Vec<Backend> {
        let mut v = vec![Backend::Scalar];
        if Backend::Avx2.is_available() {
            v.push(Backend::Avx2);
        }
        if Backend::Avx512.is_available() {
            v.push(Backend::Avx512);
        }
        v
    }

    #[test]
    fn gather_copies_by_index_under_every_backend() {
        let src: Vec<f32> = (0..40).map(|i| i as f32 * 0.5).collect();
        let idx: Vec<u32> = vec![3, 0, 39, 17, 17, 8, 21, 30, 5, 1, 2];
        for backend in both_backends() {
            let mut dst = vec![0.0f32; idx.len()];
            gather(backend, &src, &idx, &mut dst);
            let expected: Vec<f32> = idx.iter().map(|&i| src[i as usize]).collect();
            assert_eq!(dst, expected, "{}", backend.name());
        }
    }

    #[test]
    fn window_walk_is_bit_identical_across_backends() {
        let n = 37;
        let values: Vec<f32> = (0..n).map(|i| (i as f32).sin()).collect();
        let idx: Vec<u32> = (0..n as u32).map(|i| (i * 13) % 29).collect();
        let row_mods: Vec<u32> = (0..n as u32).map(|i| (i * 7) % 16).collect();
        let operands: Vec<f32> = (0..29).map(|i| (i as f32).cos()).collect();
        let mut expected = vec![0.0f32; 16];
        window_walk(
            Backend::Scalar,
            &values,
            &idx,
            &row_mods,
            &operands,
            &mut expected,
        );
        for backend in both_backends() {
            let mut adders = vec![0.0f32; 16];
            window_walk(backend, &values, &idx, &row_mods, &operands, &mut adders);
            assert_eq!(adders, expected, "{}", backend.name());
        }
    }

    #[test]
    fn panel_walk_full_block_and_tail_agree_with_naive() {
        for backend in both_backends() {
            for bb in [1usize, 3, 7, 8, 11, 16, 17, 32, 33] {
                let slots = 23;
                let u = 9;
                let l = 6;
                let values: Vec<f32> = (0..slots).map(|i| 0.25 + i as f32 * 0.125).collect();
                let idx: Vec<u32> = (0..slots as u32).map(|i| (i * 5) % u as u32).collect();
                let row_mods: Vec<u32> = (0..slots as u32).map(|i| (i * 3) % l as u32).collect();
                let operands: Vec<f32> = (0..u * bb).map(|i| (i as f32 * 0.375).sin()).collect();
                let mut acc = vec![0.0f32; l * bb];
                panel_walk(backend, &values, &idx, &row_mods, &operands, &mut acc, bb);

                // Naive double-precision oracle with a loose bound (FMA
                // contraction under AVX2 stays well inside it).
                let mut oracle = vec![0.0f64; l * bb];
                for s in 0..slots {
                    for j in 0..bb {
                        oracle[row_mods[s] as usize * bb + j] +=
                            f64::from(values[s]) * f64::from(operands[idx[s] as usize * bb + j]);
                    }
                }
                for (a, o) in acc.iter().zip(&oracle) {
                    assert!(
                        (f64::from(*a) - o).abs() < 1e-4,
                        "{} bb={bb}: {a} vs {o}",
                        backend.name()
                    );
                }
            }
        }
    }

    #[test]
    fn panel_walk_f64_agrees_with_naive_under_every_backend() {
        for backend in both_backends() {
            for bb in [1usize, 3, 7, 8, 11, 16, 17] {
                let slots = 23;
                let u = 9;
                let l = 6;
                let values: Vec<f32> = (0..slots).map(|i| 0.25 + i as f32 * 0.125).collect();
                let idx: Vec<u32> = (0..slots as u32).map(|i| (i * 5) % u as u32).collect();
                let row_mods: Vec<u32> = (0..slots as u32).map(|i| (i * 3) % l as u32).collect();
                let operands: Vec<f64> = (0..u * bb).map(|i| (i as f64 * 0.375).sin()).collect();
                let mut acc = vec![0.0f64; l * bb];
                panel_walk_f64(backend, &values, &idx, &row_mods, &operands, &mut acc, bb);

                let mut oracle = vec![0.0f64; l * bb];
                for s in 0..slots {
                    for j in 0..bb {
                        oracle[row_mods[s] as usize * bb + j] +=
                            f64::from(values[s]) * operands[idx[s] as usize * bb + j];
                    }
                }
                for (a, o) in acc.iter().zip(&oracle) {
                    // Scalar/AVX-512 differ only by FMA contraction; the
                    // oracle is the exact same double arithmetic.
                    assert!(
                        (a - o).abs() < 1e-12 * o.abs().max(1.0),
                        "{} bb={bb}: {a} vs {o}",
                        backend.name()
                    );
                }
            }
        }
    }

    #[test]
    fn stage_panel_f64_matches_the_scalar_copy() {
        let cols = 29;
        let bb = 5;
        let b: Vec<f64> = (0..cols * (bb + 1)).map(|i| i as f64 * 0.25).collect();
        let gather: Vec<u32> = (0..cols as u32).filter(|i| i % 3 != 1).collect();
        let mut expected = vec![0.0f64; gather.len() * bb];
        stage_panel_f64(Backend::Scalar, &b, cols, 1, bb, &gather, &mut expected);
        for j in 0..bb {
            for (i, &g) in gather.iter().enumerate() {
                assert_eq!(expected[i * bb + j], b[(1 + j) * cols + g as usize]);
            }
        }
        for backend in both_backends() {
            let mut stage = vec![0.0f64; gather.len() * bb];
            stage_panel_f64(backend, &b, cols, 1, bb, &gather, &mut stage);
            assert_eq!(stage, expected, "{}", backend.name());
        }
    }

    #[test]
    fn band_interleave_matches_whole_panel_slice() {
        let cols = 20;
        let bb = 3;
        let b: Vec<f32> = (0..cols * (bb + 1)).map(|i| i as f32 * 0.5).collect();
        let mut whole = vec![0.0f32; cols * bb];
        interleave_panel(&b, cols, 1, bb, &mut whole);
        // Two bands [0, 7) and [7, 20): each band buffer equals the
        // corresponding rows of the whole-panel interleave.
        for (col0, width) in [(0usize, 7usize), (7, 13)] {
            let mut band = vec![0.0f32; width * bb];
            interleave_panel_band(&b, cols, col0, width, 1, bb, &mut band);
            assert_eq!(band, whole[col0 * bb..(col0 + width) * bb]);
        }
    }

    #[test]
    fn scatter_panel_places_rows_through_the_permutation() {
        let bb = 3;
        let rows_total = 10;
        let acc: Vec<f32> = (0..2 * bb).map(|i| i as f32).collect();
        let row_perm = [4u32, 1];
        let mut y = vec![-1.0f32; rows_total * bb];
        scatter_panel(&acc, &row_perm, 3, rows_total, bb, &mut y);
        for j in 0..bb {
            assert_eq!(y[j * rows_total + 7], acc[j], "local row 0 → row 7");
            assert_eq!(y[j * rows_total + 4], acc[bb + j], "local row 1 → row 4");
        }
        // Exactly 2·bb cells written.
        assert_eq!(y.iter().filter(|&&v| v != -1.0).count(), 2 * bb);
    }

    #[test]
    fn stage_panel_matches_interleave_on_identity_gather() {
        let cols = 13;
        let bb = 5;
        let b: Vec<f32> = (0..cols * (bb + 2)).map(|i| i as f32 * 0.25).collect();
        let gather_all: Vec<u32> = (0..cols as u32).collect();
        for backend in both_backends() {
            let mut stage = vec![0.0f32; cols * bb];
            stage_panel(backend, &b, cols, 1, bb, &gather_all, &mut stage);
            let mut xb = vec![0.0f32; cols * bb];
            interleave_panel(&b, cols, 1, bb, &mut xb);
            assert_eq!(stage, xb, "{}", backend.name());
        }
    }
}
