//! The GUST execution engine (event-driven over color steps).
//!
//! One color = one cycle (paper §3.4: "execution time … is the sum of the
//! number of colors for all of the edge sets plus 2" for the three pipeline
//! levels). The engine walks the schedule color by color: every occupied
//! slot issues a multiply, the crossbar routes the product to the adder
//! named by `Row_sch`, the adder accumulates; at each window boundary the
//! adders dump into the output vector through the row permutation.
//!
//! # Fast path vs. instrumented path
//!
//! [`Gust::execute`] is the *fast path*: a single contiguous pass over the
//! structure-of-arrays schedule (`values`/`cols`/`row_mods`) per window,
//! with no per-cycle counter bookkeeping. Because the slot arrays are
//! color-major and each adder receives at most one product per color, the
//! flat pass accumulates every adder in exactly the per-color order the
//! hardware uses — the outputs are bit-identical to the cycle-accurate
//! model while the multiply-gather loop stays free of bookkeeping and
//! unrolls. All accounting (busy unit-cycles, multiplies, cycles) is
//! derived analytically from the schedule: every slot is one multiply and
//! one accumulate, so no counter has to watch the loop.
//!
//! [`Gust::execute_instrumented`] keeps the literal color-by-color walk
//! with live [`UnitCounter`]s; the `hw::pipeline` equivalence tests pin the
//! fast path to it (and to the structurally faithful Fig. 2 pipeline in
//! [`crate::hw`]) bit for bit.
//!
//! # Kernel backends and operand staging
//!
//! Every hot loop below dispatches through a runtime-selected
//! [`Backend`] (see [`crate::kernels`]): a safe scalar implementation
//! that reproduces the PR 2 arithmetic bit for bit, an AVX2+FMA
//! implementation gated by `is_x86_feature_detected!`, and an AVX-512
//! implementation (16-lane f32 register blocks, masked ragged tails)
//! gated on `avx512f`+`avx512vl` on top of the AVX2 set. Selection is
//! automatic, overridable with [`GustConfig::with_backend`] or the
//! `GUST_BACKEND` environment variable. Windows whose columns are reused
//! (≥ 2× mean reuse,
//! [`crate::schedule::scheduled::WindowSchedule::has_column_reuse`]) and
//! whose source operand block exceeds cache additionally gather
//! their distinct `x` entries **once** into a window-local stage buffer —
//! the software analog of the paper's on-chip input buffer — and the
//! inner loops then index that dense, cache-resident array through the
//! schedule's compacted `local_cols`.
//!
//! # Batched execution
//!
//! [`Gust::execute_batch`] streams the schedule **once** for a whole panel
//! of right-hand sides (the §5.3 multi-RHS amortization): the batch is cut
//! into register blocks of [`Gust::reg_block`] columns (a backend
//! property; 8 on scalar/AVX2, 16 on AVX-512), each block's operands are
//! staged/interleaved so one slot's `B`
//! multiply-accumulates are contiguous, and blocks can fan out across
//! threads via [`crate::config::GustConfig::with_parallelism`]. Under the
//! scalar backend, per-column arithmetic order equals the per-vector
//! scalar path, so batched outputs are bit-identical to `B` independent
//! [`Gust::execute`] calls; the AVX2/AVX-512 backends fuse each
//! accumulate into an FMA and match within the one-ULP-per-step
//! contraction bound (see `tests/backend_equivalence.rs`).
//! [`Gust::execute`] itself is bit-identical across *all* backends: its
//! SIMD paths vectorize only the multiply-gathers (masked tail lanes
//! included) and keep the scatter adds in slot order.
//!
//! The batched walk is **generic over the element type** (the private
//! [`Element`] trait, monomorphized for f32 and f64):
//! [`Gust::execute_batch_f64`], [`Gust::execute_batch_banded_f64`] and
//! [`Gust::execute_batch_tiled_f64`] run the identical pipeline in
//! double precision — schedule values stay f32, widened per slot; f64
//! register blocks are [`Gust::reg_block_f64`] (8 lanes everywhere, one
//! 512-bit `pd` register on AVX-512) — and the f64 scheduling twins
//! ([`Gust::schedule_banded_for_batch_f64`] /
//! [`Gust::schedule_tiled_for_batch_f64`]) divide the cache budgets by
//! the 8-byte element width so band slices stay resident.

//!
//! # Cache-blocked execution
//!
//! [`Gust::execute_banded`] / [`Gust::execute_batch_banded`] walk a
//! [`BandedSchedule`] band by band with accumulator carry so the
//! `x[col]` gathers stay inside a budget-sized column slice, and
//! [`Gust::execute_tiled`] / [`Gust::execute_batch_tiled`] walk a
//! [`TiledSchedule`] row tile by row tile so the `y[row]` side stays
//! resident too. Both are bit-identical per backend to the unbanded
//! engine on the corresponding flattened schedule(s) — see
//! [`crate::schedule::banded`] and [`crate::schedule::tiled`].

use crate::config::{GustConfig, SchedulingPolicy};
use crate::error::GustError;
use crate::kernels::{self, Backend};
use crate::parallel::Pool;
use crate::schedule::banded::BandedSchedule;
use crate::schedule::scheduled::{log2_ceil, ScheduledMatrix};
use crate::schedule::tiled::TiledSchedule;
use crate::schedule::Scheduler;
use crate::verify::{AuditReport, VerifiedSchedule, Violation};
use gust_sim::{ExecutionReport, MemoryTraffic, UnitCounter};

/// Result of one SpMV on the GUST engine.
#[derive(Debug, Clone, PartialEq)]
pub struct GustRun {
    /// The computed output vector `y = A·x`.
    pub output: Vec<f32>,
    /// Cycle/utilization/traffic accounting.
    pub report: ExecutionReport,
}

/// A configured GUST accelerator: scheduler + engine.
///
/// # Example
///
/// ```
/// use gust::{Gust, GustConfig};
/// use gust_sparse::prelude::*;
///
/// let m = CsrMatrix::identity(8);
/// let gust = Gust::new(GustConfig::new(4));
/// let schedule = gust.schedule(&m);
/// let run = gust.execute(&schedule, &[1.0; 8]);
/// assert_eq!(run.output, vec![1.0; 8]);
/// // Identity: every window is one color; 2 windows + pipeline depth 2.
/// assert_eq!(run.report.cycles, 4);
/// ```
#[derive(Debug, Clone)]
pub struct Gust {
    config: GustConfig,
}

/// Source-operand footprint (bytes) above which window-local staging can
/// pay: roughly the L2 slice a core can keep hot. Below it the whole
/// input block is cache-resident anyway and the extra staging pass only
/// costs (measured at the paper's 16 384-column shape: the 512 KB
/// interleaved panel is L2-resident and staging *lost* ~20%; at
/// million-column shapes the panel spills and staging wins).
const STAGE_SOURCE_BYTES: usize = 512 * 1024;

/// Whether the engine stages `window`'s operands for a pass whose source
/// operand block covers `cols` columns at `bb` values per column of
/// `elem_bytes` each: the window must have ≥ 2× column reuse
/// ([`crate::schedule::scheduled::WindowSchedule::has_column_reuse`]),
/// the source block must exceed [`STAGE_SOURCE_BYTES`], and the stage
/// must compact it at least 4×. The element width matters: an f64 panel
/// (or an f32 one at AVX-512's 16-lane register block) reaches the
/// staging threshold at half the column count, exactly as its footprint
/// reaches cache capacity at half the columns. Staging never changes
/// results — the staged values are bit-copies — so this predicate is
/// purely a performance decision.
fn window_staged(
    window: &crate::schedule::scheduled::WindowSchedule,
    cols: usize,
    bb: usize,
    elem_bytes: usize,
) -> bool {
    window.has_column_reuse()
        && cols * bb * elem_bytes > STAGE_SOURCE_BYTES
        && 4 * window.gather_cols().len() <= cols
}

/// How the single-band path of [`run_block_banded`] obtains the
/// interleaved whole panel in `BlockScratch::xb`.
#[derive(Clone, Copy, PartialEq, Eq)]
enum PanelSource {
    /// Interleave it from the source panel inside the call (the untiled
    /// banded walk: one interleave per register block).
    Interleave,
    /// `scratch.xb` already holds this block's interleaved panel — the
    /// tiled walk hoists the interleave out of its tile loop so all
    /// tiles share one transpose per register block.
    Ready,
    /// No window reads it (every non-empty window is staged).
    Unused,
}

impl Gust {
    /// Creates an engine with the given configuration.
    #[must_use]
    pub fn new(config: GustConfig) -> Self {
        Self { config }
    }

    /// The configuration in effect.
    #[must_use]
    pub fn config(&self) -> &GustConfig {
        &self.config
    }

    /// The kernel backend this engine's hot loops will run
    /// ([`GustConfig::with_backend`] / `GUST_BACKEND` override, otherwise
    /// the fastest the host supports).
    #[must_use]
    pub fn backend(&self) -> Backend {
        self.config.effective_backend()
    }

    /// Columns per register block of the batched `f32` kernel — a
    /// property of the selected [`Backend`] (see [`Backend::reg_block`]:
    /// 8 on scalar/AVX2, 16 on AVX-512), not a hardcoded constant.
    #[must_use]
    pub fn reg_block(&self) -> usize {
        self.backend().reg_block()
    }

    /// Columns per register block of the batched `f64` kernel (see
    /// [`Backend::reg_block_f64`]; 8 on every backend — one 512-bit
    /// register under AVX-512).
    #[must_use]
    pub fn reg_block_f64(&self) -> usize {
        self.backend().reg_block_f64()
    }

    /// Preprocesses `matrix` (the paper's scheduling step). Delegates to
    /// [`Scheduler::schedule`].
    #[must_use]
    pub fn schedule(&self, matrix: &gust_sparse::CsrMatrix) -> ScheduledMatrix {
        Scheduler::new(self.config.clone()).schedule(matrix)
    }

    /// Validates a single-vector run: schedule built for this engine's
    /// length, input as long as the schedule's column count.
    fn check_single(&self, sched_len: usize, cols: usize, x_len: usize) -> Result<(), GustError> {
        let l = self.config.length();
        if sched_len != l {
            return Err(GustError::LengthMismatch {
                schedule: sched_len,
                engine: l,
            });
        }
        if x_len != cols {
            return Err(GustError::InputLength {
                got: x_len,
                expected: cols,
            });
        }
        Ok(())
    }

    /// Validates a batched run: length match, non-empty batch, panel of
    /// exactly `cols × batch` values (overflow-proof: an impossible
    /// product can never equal a real slice length).
    fn check_batch(
        &self,
        sched_len: usize,
        cols: usize,
        b_len: usize,
        batch: usize,
    ) -> Result<(), GustError> {
        let l = self.config.length();
        if sched_len != l {
            return Err(GustError::LengthMismatch {
                schedule: sched_len,
                engine: l,
            });
        }
        if batch == 0 {
            return Err(GustError::EmptyBatch);
        }
        if cols.checked_mul(batch) != Some(b_len) {
            return Err(GustError::PanelShape {
                got: b_len,
                cols,
                batch,
            });
        }
        Ok(())
    }

    /// Runs one SpMV: streams the schedule through the engine (fast,
    /// uninstrumented path — see the module docs).
    ///
    /// The schedule can be reused across calls with different vectors —
    /// that reuse is the paper's §5.3 amortization argument.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != schedule.cols()` or the schedule's length does
    /// not match this engine's configuration. Use [`Gust::try_execute`]
    /// to get a [`GustError`] instead.
    #[must_use]
    pub fn execute(&self, schedule: &ScheduledMatrix, x: &[f32]) -> GustRun {
        self.try_execute(schedule, x)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Gust::execute`]: the same single pass, with shape
    /// mismatches reported as values instead of panics.
    ///
    /// # Errors
    ///
    /// [`GustError::LengthMismatch`] when the schedule was built for a
    /// different accelerator length, [`GustError::InputLength`] when
    /// `x.len() != schedule.cols()`.
    pub fn try_execute(&self, schedule: &ScheduledMatrix, x: &[f32]) -> Result<GustRun, GustError> {
        self.check_single(schedule.length(), schedule.cols(), x.len())?;
        let l = self.config.length();

        let backend = self.backend();
        let mut y = vec![0.0f32; schedule.rows()];
        let mut adders = vec![0.0f32; l];
        let mut stage: Vec<f32> = Vec::new();

        let row_perm = schedule.row_perm();
        for (w, window) in schedule.windows().iter().enumerate() {
            // Only the lanes this window's rows occupy are live: the final
            // window of a matrix with `rows % l != 0` is ragged, and lanes
            // past its row count are never scheduled (row_mod < active) nor
            // dumped.
            let active = schedule.window_rows(w);
            adders[..active].fill(0.0);

            // The streaming pass: color-major slot order means each adder
            // sees its products in color order, so this flat walk is
            // bit-identical to the per-cycle walk — under every backend,
            // because the kernels only vectorize the multiply-gathers and
            // keep the scatter into `adders` in slot order. Windows whose
            // reused columns compact a larger-than-cache `x` first gather
            // their distinct entries into a dense window-local stage
            // (same values, so still bit-identical) and index it through
            // the compacted `local_cols`.
            let (idx, operands): (&[u32], &[f32]) =
                if window_staged(window, x.len(), 1, std::mem::size_of::<f32>()) {
                    stage.resize(window.gather_cols().len(), 0.0);
                    kernels::gather(backend, x, window.gather_cols(), &mut stage);
                    (window.local_cols(), &stage)
                } else {
                    (window.cols(), x)
                };
            kernels::window_walk(
                backend,
                window.values(),
                idx,
                window.row_mods(),
                operands,
                &mut adders,
            );

            // Dump: adder `i` holds the row scheduled at position w*l + i.
            let base = w * l;
            for (i, &acc) in adders[..active].iter().enumerate() {
                y[row_perm[base + i] as usize] = acc;
            }
        }

        Ok(GustRun {
            output: y,
            report: self.analytic_report(schedule, 1),
        })
    }

    /// Runs one SpMV with live per-cycle unit counters — the literal
    /// color-by-color walk the seed engine performed. Slower than
    /// [`Gust::execute`]; kept so the `hw::pipeline` equivalence tests can
    /// pin the fast path's outputs *and* analytic accounting to a measured
    /// run, bit for bit.
    ///
    /// # Panics
    ///
    /// As [`Gust::execute`]. Use [`Gust::try_execute_instrumented`] to
    /// get a [`GustError`] instead.
    #[must_use]
    pub fn execute_instrumented(&self, schedule: &ScheduledMatrix, x: &[f32]) -> GustRun {
        self.try_execute_instrumented(schedule, x)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Gust::execute_instrumented`].
    ///
    /// # Errors
    ///
    /// As [`Gust::try_execute`].
    pub fn try_execute_instrumented(
        &self,
        schedule: &ScheduledMatrix,
        x: &[f32],
    ) -> Result<GustRun, GustError> {
        self.check_single(schedule.length(), schedule.cols(), x.len())?;
        let l = self.config.length();

        let mut y = vec![0.0f32; schedule.rows()];
        let mut adders = vec![0.0f32; l];
        let mut mults = UnitCounter::new("multipliers", l);
        let mut adds = UnitCounter::new("adders", l);
        let mut multiplies: u64 = 0;

        let row_perm = schedule.row_perm();
        for (w, window) in schedule.windows().iter().enumerate() {
            let active = schedule.window_rows(w);
            adders[..active].fill(0.0);
            for c in 0..window.colors() {
                // One cycle: every occupied lane multiplies, the crossbar
                // routes, the named adder accumulates. Lane/adder uniqueness
                // within a color was checked at schedule assembly.
                let bucket = window.color_range(c);
                let busy = bucket.len();
                for i in bucket {
                    let product = window.values()[i] * x[window.cols()[i] as usize];
                    adders[window.row_mods()[i] as usize] += product;
                }
                mults.record_busy(busy);
                adds.record_busy(busy);
                multiplies += busy as u64;
            }
            let base = w * l;
            for (i, &acc) in adders[..active].iter().enumerate() {
                y[row_perm[base + i] as usize] = acc;
            }
        }

        let mut report = self.analytic_report(schedule, 1);
        // Overwrite the analytic numbers with the measured ones; the
        // equivalence tests assert they agree.
        report.busy_unit_cycles = mults.busy_unit_cycles() + adds.busy_unit_cycles();
        report.multiplies = multiplies;
        report.additions = multiplies;
        Ok(GustRun { output: y, report })
    }

    /// Schedules and executes in one call.
    ///
    /// # Panics
    ///
    /// As [`Gust::execute`] (an `x` shorter or longer than the matrix's
    /// column count). Use [`Gust::try_spmv`] to get a [`GustError`]
    /// instead.
    #[must_use]
    pub fn spmv(&self, matrix: &gust_sparse::CsrMatrix, x: &[f32]) -> GustRun {
        self.try_spmv(matrix, x).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Gust::spmv`]: schedules and executes in one call,
    /// reporting a mismatched `x` as a value instead of a panic.
    ///
    /// # Errors
    ///
    /// [`GustError::InputLength`] when `x.len() != matrix.cols()`.
    pub fn try_spmv(
        &self,
        matrix: &gust_sparse::CsrMatrix,
        x: &[f32],
    ) -> Result<GustRun, GustError> {
        // Validate before scheduling: preprocessing is the expensive
        // step, and a bad input vector should not buy a full schedule.
        if x.len() != matrix.cols() {
            return Err(GustError::InputLength {
                got: x.len(),
                expected: matrix.cols(),
            });
        }
        let schedule = self.schedule(matrix);
        self.try_execute(&schedule, x)
    }

    /// Sparse-matrix × dense-panel product by schedule reuse: `batch`
    /// right-hand sides against one preprocessed schedule (the
    /// iterative-solver / multi-right-hand-side pattern of §5.3, and the
    /// SpMM direction §7 names as future work for a 2D GUST).
    ///
    /// `b` is a flat **column-major** panel: vector `j` occupies
    /// `b[j * schedule.cols() .. (j + 1) * schedule.cols()]`. The result is
    /// the column-major `rows × batch` output panel plus one folded report
    /// (per-vector quantities × `batch` — the accelerator still charges
    /// `batch` pipeline passes; the host-side win is that the schedule is
    /// streamed once).
    ///
    /// Unlike `batch` separate [`Gust::execute`] calls, the schedule is
    /// walked **once**: each slot performs a register block of up to
    /// [`Gust::reg_block`] multiply-accumulates against staged (or, for
    /// windows without column reuse, whole-panel interleaved) operands.
    /// Blocks split across threads when [`GustConfig::with_parallelism`]
    /// allows. Under the scalar backend, outputs are bit-identical to the
    /// per-vector scalar path; under AVX2 each accumulate fuses into an
    /// FMA and matches within the documented ULP bound.
    ///
    /// # Example
    ///
    /// ```
    /// use gust::{Gust, GustConfig};
    /// use gust_sparse::prelude::*;
    ///
    /// let m = CsrMatrix::identity(4);
    /// let gust = Gust::new(GustConfig::new(2));
    /// let schedule = gust.schedule(&m);
    /// // Two right-hand sides, column-major: [x0 | x1].
    /// let panel: Vec<f32> = (1..=8).map(|v| v as f32).collect();
    /// let (y, report) = gust.execute_batch(&schedule, &panel, 2);
    /// assert_eq!(y, panel); // identity matrix
    /// assert_eq!(report.nnz_processed, 2 * 4);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `batch == 0`, `b.len() != schedule.cols() * batch`, or the
    /// schedule's length does not match this engine's configuration. Use
    /// [`Gust::try_execute_batch`] to get a [`GustError`] instead.
    #[must_use]
    pub fn execute_batch(
        &self,
        schedule: &ScheduledMatrix,
        b: &[f32],
        batch: usize,
    ) -> (Vec<f32>, ExecutionReport) {
        self.try_execute_batch(schedule, b, batch)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Gust::execute_batch`]: the same one-pass panel walk,
    /// with shape mismatches reported as values instead of panics.
    ///
    /// # Errors
    ///
    /// [`GustError::LengthMismatch`], [`GustError::EmptyBatch`], or
    /// [`GustError::PanelShape`] when `b.len() != cols × batch`.
    pub fn try_execute_batch(
        &self,
        schedule: &ScheduledMatrix,
        b: &[f32],
        batch: usize,
    ) -> Result<(Vec<f32>, ExecutionReport), GustError> {
        self.try_execute_batch_generic(schedule, b, batch)
    }

    /// [`Gust::execute_batch`] in double precision: the same one-pass
    /// panel walk over the same `f32`-valued schedule, with the operand
    /// panel, every accumulator, and the output in `f64` (the schedule's
    /// matrix values are widened once per slot). The register block is
    /// [`Gust::reg_block_f64`] — 8 lanes on every backend, one 512-bit
    /// register under AVX-512 — and the staging heuristic accounts for
    /// the doubled element width. Under the scalar backend outputs are
    /// bit-identical to a scalar double-precision reference walk in slot
    /// order; AVX-512 fuses each accumulate into an FMA within the usual
    /// contraction bound, now at `f64` precision.
    ///
    /// # Panics
    ///
    /// As [`Gust::execute_batch`]. Use [`Gust::try_execute_batch_f64`] to
    /// get a [`GustError`] instead.
    #[must_use]
    pub fn execute_batch_f64(
        &self,
        schedule: &ScheduledMatrix,
        b: &[f64],
        batch: usize,
    ) -> (Vec<f64>, ExecutionReport) {
        self.try_execute_batch_f64(schedule, b, batch)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Gust::execute_batch_f64`].
    ///
    /// # Errors
    ///
    /// As [`Gust::try_execute_batch`].
    pub fn try_execute_batch_f64(
        &self,
        schedule: &ScheduledMatrix,
        b: &[f64],
        batch: usize,
    ) -> Result<(Vec<f64>, ExecutionReport), GustError> {
        self.try_execute_batch_generic(schedule, b, batch)
    }

    /// The shared monomorphized body of [`Gust::try_execute_batch`] and
    /// [`Gust::try_execute_batch_f64`]: everything about the walk is
    /// element-generic — the register block, the staging threshold, the
    /// interleave/stage buffers, the panel kernel — so the two precisions
    /// cannot drift structurally.
    fn try_execute_batch_generic<E: Element>(
        &self,
        schedule: &ScheduledMatrix,
        b: &[E],
        batch: usize,
    ) -> Result<(Vec<E>, ExecutionReport), GustError> {
        self.check_batch(schedule.length(), schedule.cols(), b.len(), batch)?;
        let cols = schedule.cols();

        let backend = self.backend();
        let rb = E::reg_block(backend);
        let rows = schedule.rows();
        let mut y = vec![E::ZERO; rows * batch];
        let blocks = batch.div_ceil(rb);
        let workers = self.batch_workers(blocks);
        // Decide staging once per window, at the full register-block
        // width, so every block (ragged tails included) takes the same
        // path and the interleave is built exactly when some window
        // reads it.
        let stage_flags: Vec<bool> = schedule
            .windows()
            .iter()
            .map(|w| window_staged(w, cols, rb.min(batch), E::BYTES))
            .collect();
        let needs_interleave = schedule
            .windows()
            .iter()
            .zip(&stage_flags)
            .any(|(w, &staged)| w.nnz() > 0 && !staged);

        run_blocks(
            workers,
            &mut y,
            rows,
            rb,
            batch,
            |j0, bb, y_block, scratch| {
                run_block(
                    backend,
                    schedule,
                    b,
                    j0,
                    bb,
                    &stage_flags,
                    needs_interleave,
                    y_block,
                    scratch,
                );
            },
        );

        Ok((y, self.analytic_report(schedule, batch as u64)))
    }

    /// Preprocesses `matrix` into a cache-blocked [`BandedSchedule`]
    /// sized for **single-vector** execution ([`Gust::execute_banded`]):
    /// the density-aware band plan partitions the columns so one band's
    /// single-vector operand slice fits
    /// [`GustConfig::effective_cache_budget`]. Delegates to
    /// [`Scheduler::schedule_banded`]; schedules meant for
    /// [`Gust::execute_batch_banded`] should come from
    /// [`Gust::schedule_banded_for_batch`], whose bands are sized for the
    /// register-block slice instead.
    #[must_use]
    pub fn schedule_banded(&self, matrix: &gust_sparse::CsrMatrix) -> BandedSchedule {
        Scheduler::new(self.config.clone()).schedule_banded(matrix)
    }

    /// As [`Gust::schedule_banded`], sized for batched execution of
    /// `batch` right-hand sides. Delegates to
    /// [`Scheduler::schedule_banded_for_batch`].
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero. Use
    /// [`Gust::try_schedule_banded_for_batch`] to get a [`GustError`]
    /// instead.
    #[must_use]
    pub fn schedule_banded_for_batch(
        &self,
        matrix: &gust_sparse::CsrMatrix,
        batch: usize,
    ) -> BandedSchedule {
        Scheduler::new(self.config.clone()).schedule_banded_for_batch(matrix, batch)
    }

    /// Fallible [`Gust::schedule_banded_for_batch`].
    ///
    /// # Errors
    ///
    /// [`GustError::EmptyBatch`] when `batch` is zero.
    pub fn try_schedule_banded_for_batch(
        &self,
        matrix: &gust_sparse::CsrMatrix,
        batch: usize,
    ) -> Result<BandedSchedule, GustError> {
        if batch == 0 {
            return Err(GustError::EmptyBatch);
        }
        Ok(self.schedule_banded_for_batch(matrix, batch))
    }

    /// As [`Gust::schedule_banded_for_batch`], sized for **double
    /// precision** batched execution
    /// ([`Gust::execute_batch_banded_f64`]): the band plan divides the
    /// cache budget by 8-byte operands, so bands come out half as wide as
    /// the f32 plan's for the same budget. Delegates to
    /// [`Scheduler::schedule_banded_for_batch_f64`].
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero.
    #[must_use]
    pub fn schedule_banded_for_batch_f64(
        &self,
        matrix: &gust_sparse::CsrMatrix,
        batch: usize,
    ) -> BandedSchedule {
        Scheduler::new(self.config.clone()).schedule_banded_for_batch_f64(matrix, batch)
    }

    /// Preprocesses `matrix` into a 2D row×column [`TiledSchedule`]
    /// sized for single-vector execution ([`Gust::execute_tiled`]): rows
    /// are partitioned by [`GustConfig::effective_row_budget`] and each
    /// tile is independently banded. Delegates to
    /// [`Scheduler::schedule_tiled`].
    #[must_use]
    pub fn schedule_tiled(&self, matrix: &gust_sparse::CsrMatrix) -> TiledSchedule {
        Scheduler::new(self.config.clone()).schedule_tiled(matrix)
    }

    /// As [`Gust::schedule_tiled`], sized for batched execution of
    /// `batch` right-hand sides. Delegates to
    /// [`Scheduler::schedule_tiled_for_batch`].
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero. Use
    /// [`Gust::try_schedule_tiled_for_batch`] to get a [`GustError`]
    /// instead.
    #[must_use]
    pub fn schedule_tiled_for_batch(
        &self,
        matrix: &gust_sparse::CsrMatrix,
        batch: usize,
    ) -> TiledSchedule {
        Scheduler::new(self.config.clone()).schedule_tiled_for_batch(matrix, batch)
    }

    /// Fallible [`Gust::schedule_tiled_for_batch`].
    ///
    /// # Errors
    ///
    /// [`GustError::EmptyBatch`] when `batch` is zero.
    pub fn try_schedule_tiled_for_batch(
        &self,
        matrix: &gust_sparse::CsrMatrix,
        batch: usize,
    ) -> Result<TiledSchedule, GustError> {
        if batch == 0 {
            return Err(GustError::EmptyBatch);
        }
        Ok(self.schedule_tiled_for_batch(matrix, batch))
    }

    /// As [`Gust::schedule_tiled_for_batch`], sized for **double
    /// precision** batched execution ([`Gust::execute_batch_tiled_f64`]):
    /// row-tile and band budgets divide by 8-byte elements. Delegates to
    /// [`Scheduler::schedule_tiled_for_batch_f64`].
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero.
    #[must_use]
    pub fn schedule_tiled_for_batch_f64(
        &self,
        matrix: &gust_sparse::CsrMatrix,
        batch: usize,
    ) -> TiledSchedule {
        Scheduler::new(self.config.clone()).schedule_tiled_for_batch_f64(matrix, batch)
    }

    /// Audits a schedule of unknown provenance against the full safety
    /// contract the unsafe kernels rely on (see [`crate::verify`]) and,
    /// additionally, against this engine's configured accelerator
    /// length, issuing a [`VerifiedSchedule`] witness on success.
    ///
    /// Schedules built by this engine's own `schedule*` methods satisfy
    /// the contract by construction; `admit` is the checkpoint for
    /// everything else — hand-assembled schedules, schedules built by a
    /// different engine, or deserialized ones obtained outside the
    /// auditing `read_*_file_verified` readers.
    ///
    /// # Errors
    ///
    /// The [`AuditReport`] listing every violation found (a
    /// length-mismatch is reported as [`Violation::Shape`]).
    pub fn admit(
        &self,
        schedule: ScheduledMatrix,
    ) -> Result<VerifiedSchedule<ScheduledMatrix>, Box<AuditReport>> {
        self.admit_any(schedule.length(), schedule)
    }

    /// As [`Gust::admit`], for banded schedules.
    ///
    /// # Errors
    ///
    /// As [`Gust::admit`].
    pub fn admit_banded(
        &self,
        schedule: BandedSchedule,
    ) -> Result<VerifiedSchedule<BandedSchedule>, Box<AuditReport>> {
        self.admit_any(schedule.length(), schedule)
    }

    /// As [`Gust::admit`], for tiled schedules.
    ///
    /// # Errors
    ///
    /// As [`Gust::admit`].
    pub fn admit_tiled(
        &self,
        schedule: TiledSchedule,
    ) -> Result<VerifiedSchedule<TiledSchedule>, Box<AuditReport>> {
        self.admit_any(schedule.length(), schedule)
    }

    /// Shared admission check: engine-length fit, then the full audit.
    fn admit_any<S: crate::verify::Auditable>(
        &self,
        length: usize,
        schedule: S,
    ) -> Result<VerifiedSchedule<S>, Box<AuditReport>> {
        if length != self.config.length() {
            return Err(Box::new(AuditReport::from_violations(vec![
                Violation::Shape {
                    what: format!(
                        "schedule length {length} does not match engine length {}",
                        self.config.length()
                    ),
                },
            ])));
        }
        VerifiedSchedule::verify(schedule)
    }

    /// Runs one SpMV over a cache-blocked [`BandedSchedule`]: bands are
    /// walked back to back (bands outer, windows inner), every window's
    /// adders **carrying** their partial sums across bands, so each
    /// gather hits the current band's cache-resident slice of `x` while
    /// the result stays **bit-identical** to
    /// `self.execute(&schedule.to_unbanded(), x)` under every backend —
    /// per adder, the product order is the merged window's slot order
    /// either way (see [`crate::schedule::banded`]).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != schedule.cols()` or the schedule's length
    /// does not match this engine's configuration. Use
    /// [`Gust::try_execute_banded`] to get a [`GustError`] instead.
    #[must_use]
    pub fn execute_banded(&self, schedule: &BandedSchedule, x: &[f32]) -> GustRun {
        self.try_execute_banded(schedule, x)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Gust::execute_banded`].
    ///
    /// # Errors
    ///
    /// As [`Gust::try_execute`].
    pub fn try_execute_banded(
        &self,
        schedule: &BandedSchedule,
        x: &[f32],
    ) -> Result<GustRun, GustError> {
        self.check_single(schedule.length(), schedule.cols(), x.len())?;

        let mut y = vec![0.0f32; schedule.rows()];
        banded_walk_single(self.backend(), schedule, x, &mut y);
        Ok(GustRun {
            output: y,
            report: self.banded_report(schedule, 1),
        })
    }

    /// Runs one SpMV over a 2D row×column [`TiledSchedule`]: row tiles
    /// are walked outermost, each tile performing the full banded band
    /// sweep of [`Gust::execute_banded`] with its accumulator carry
    /// confined to the tile's slice of `y` — so the `x[col]` gathers
    /// *and* the `y[row]` accumulations stay cache-resident even when
    /// both vectors exceed the last-level cache.
    ///
    /// Each tile is a stand-alone [`BandedSchedule`], so the tile's
    /// output slice is **bit-identical** to
    /// `self.execute(&tile.to_unbanded(), x)` under every backend, and a
    /// single-tile schedule reproduces [`Gust::execute_banded`] exactly.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != schedule.cols()` or the schedule's length
    /// does not match this engine's configuration. Use
    /// [`Gust::try_execute_tiled`] to get a [`GustError`] instead.
    #[must_use]
    pub fn execute_tiled(&self, schedule: &TiledSchedule, x: &[f32]) -> GustRun {
        self.try_execute_tiled(schedule, x)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Gust::execute_tiled`].
    ///
    /// # Errors
    ///
    /// As [`Gust::try_execute`].
    pub fn try_execute_tiled(
        &self,
        schedule: &TiledSchedule,
        x: &[f32],
    ) -> Result<GustRun, GustError> {
        self.check_single(schedule.length(), schedule.cols(), x.len())?;

        let backend = self.backend();
        let mut y = vec![0.0f32; schedule.rows()];
        for (t, tile) in schedule.tiles().iter().enumerate() {
            banded_walk_single(backend, tile, x, &mut y[schedule.tile_range(t)]);
        }
        Ok(GustRun {
            output: y,
            report: self.tiled_report(schedule, 1),
        })
    }

    /// Batched SpMV over a cache-blocked [`BandedSchedule`] — the
    /// composition of the §5.3 one-pass multi-vector walk with 2D cache
    /// blocking. Work is cut into band × register-block tiles: each
    /// register block of right-hand sides (a pool task, see
    /// [`crate::parallel::Pool`]) sweeps the bands in order, interleaving
    /// one band's operand slice (sized by the cache budget to stay
    /// resident) and walking every window's slots of that band, with all
    /// windows' accumulators carried across the sweep.
    ///
    /// Outputs are bit-identical to
    /// `self.execute_batch(&schedule.to_unbanded(), b, batch)` for the
    /// same backend, for every worker count.
    ///
    /// # Panics
    ///
    /// As [`Gust::execute_batch`]. Use
    /// [`Gust::try_execute_batch_banded`] to get a [`GustError`] instead.
    #[must_use]
    pub fn execute_batch_banded(
        &self,
        schedule: &BandedSchedule,
        b: &[f32],
        batch: usize,
    ) -> (Vec<f32>, ExecutionReport) {
        self.try_execute_batch_banded(schedule, b, batch)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Gust::execute_batch_banded`].
    ///
    /// # Errors
    ///
    /// As [`Gust::try_execute_batch`].
    pub fn try_execute_batch_banded(
        &self,
        schedule: &BandedSchedule,
        b: &[f32],
        batch: usize,
    ) -> Result<(Vec<f32>, ExecutionReport), GustError> {
        self.try_execute_batch_banded_generic(schedule, b, batch)
    }

    /// [`Gust::execute_batch_banded`] in double precision — the banded
    /// counterpart of [`Gust::execute_batch_f64`]. Schedules should come
    /// from [`Gust::schedule_banded_for_batch_f64`], whose bands are
    /// sized for the doubled operand width.
    ///
    /// # Panics
    ///
    /// As [`Gust::execute_batch`]. Use
    /// [`Gust::try_execute_batch_banded_f64`] to get a [`GustError`]
    /// instead.
    #[must_use]
    pub fn execute_batch_banded_f64(
        &self,
        schedule: &BandedSchedule,
        b: &[f64],
        batch: usize,
    ) -> (Vec<f64>, ExecutionReport) {
        self.try_execute_batch_banded_f64(schedule, b, batch)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Gust::execute_batch_banded_f64`].
    ///
    /// # Errors
    ///
    /// As [`Gust::try_execute_batch`].
    pub fn try_execute_batch_banded_f64(
        &self,
        schedule: &BandedSchedule,
        b: &[f64],
        batch: usize,
    ) -> Result<(Vec<f64>, ExecutionReport), GustError> {
        self.try_execute_batch_banded_generic(schedule, b, batch)
    }

    /// The shared element-generic body of the banded batch walks (see
    /// [`Gust::try_execute_batch_generic`]).
    fn try_execute_batch_banded_generic<E: Element>(
        &self,
        schedule: &BandedSchedule,
        b: &[E],
        batch: usize,
    ) -> Result<(Vec<E>, ExecutionReport), GustError> {
        self.check_batch(schedule.length(), schedule.cols(), b.len(), batch)?;
        let cols = schedule.cols();

        let backend = self.backend();
        let rb = E::reg_block(backend);
        let rows = schedule.rows();
        let mut y = vec![E::ZERO; rows * batch];
        let workers = self.batch_workers(batch.div_ceil(rb));
        // With a single band, banding is vacuous and the walk takes the
        // unbanded per-window path, including its staging decisions
        // (decided once, at full register-block width, exactly as
        // [`Gust::execute_batch`] does).
        let single_band = schedule.bands().count() == 1;
        let stage_flags: Vec<bool> = schedule
            .windows()
            .iter()
            .map(|w| single_band && window_staged(w.window(), cols, rb.min(batch), E::BYTES))
            .collect();
        let needs_interleave = single_band
            && schedule
                .windows()
                .iter()
                .zip(&stage_flags)
                .any(|(w, &staged)| w.nnz() > 0 && !staged);

        run_blocks(
            workers,
            &mut y,
            rows,
            rb,
            batch,
            |j0, bb, y_block, scratch| {
                run_block_banded(
                    backend,
                    schedule,
                    b,
                    j0,
                    bb,
                    &stage_flags,
                    if needs_interleave {
                        PanelSource::Interleave
                    } else {
                        PanelSource::Unused
                    },
                    0,
                    rows,
                    y_block,
                    scratch,
                );
            },
        );

        Ok((y, self.banded_report(schedule, batch as u64)))
    }

    /// Batched SpMV over a 2D row×column [`TiledSchedule`] — the full 2D
    /// composition: each register block of right-hand sides (a pool
    /// task) walks the row tiles outermost, and within a tile performs
    /// the banded band sweep of [`Gust::execute_batch_banded`] with the
    /// accumulator panel confined to the tile's rows. Both the per-band
    /// operand slice and the per-tile accumulator panel are sized by
    /// their budgets to stay cache-resident.
    ///
    /// Per tile, outputs are bit-identical to
    /// `self.execute_batch(&tile.to_unbanded(), b, batch)` for the same
    /// backend, for every worker count; a single-tile schedule
    /// reproduces [`Gust::execute_batch_banded`] exactly.
    ///
    /// # Panics
    ///
    /// As [`Gust::execute_batch`]. Use
    /// [`Gust::try_execute_batch_tiled`] to get a [`GustError`] instead.
    #[must_use]
    pub fn execute_batch_tiled(
        &self,
        schedule: &TiledSchedule,
        b: &[f32],
        batch: usize,
    ) -> (Vec<f32>, ExecutionReport) {
        self.try_execute_batch_tiled(schedule, b, batch)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Gust::execute_batch_tiled`].
    ///
    /// # Errors
    ///
    /// As [`Gust::try_execute_batch`].
    pub fn try_execute_batch_tiled(
        &self,
        schedule: &TiledSchedule,
        b: &[f32],
        batch: usize,
    ) -> Result<(Vec<f32>, ExecutionReport), GustError> {
        self.try_execute_batch_tiled_generic(schedule, b, batch)
    }

    /// [`Gust::execute_batch_tiled`] in double precision — the 2D-tiled
    /// counterpart of [`Gust::execute_batch_f64`]. Schedules should come
    /// from [`Gust::schedule_tiled_for_batch_f64`], whose tile and band
    /// budgets account for the doubled operand width.
    ///
    /// # Panics
    ///
    /// As [`Gust::execute_batch`]. Use
    /// [`Gust::try_execute_batch_tiled_f64`] to get a [`GustError`]
    /// instead.
    #[must_use]
    pub fn execute_batch_tiled_f64(
        &self,
        schedule: &TiledSchedule,
        b: &[f64],
        batch: usize,
    ) -> (Vec<f64>, ExecutionReport) {
        self.try_execute_batch_tiled_f64(schedule, b, batch)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Gust::execute_batch_tiled_f64`].
    ///
    /// # Errors
    ///
    /// As [`Gust::try_execute_batch`].
    pub fn try_execute_batch_tiled_f64(
        &self,
        schedule: &TiledSchedule,
        b: &[f64],
        batch: usize,
    ) -> Result<(Vec<f64>, ExecutionReport), GustError> {
        self.try_execute_batch_tiled_generic(schedule, b, batch)
    }

    /// The shared element-generic body of the tiled batch walks (see
    /// [`Gust::try_execute_batch_generic`]).
    fn try_execute_batch_tiled_generic<E: Element>(
        &self,
        schedule: &TiledSchedule,
        b: &[E],
        batch: usize,
    ) -> Result<(Vec<E>, ExecutionReport), GustError> {
        self.check_batch(schedule.length(), schedule.cols(), b.len(), batch)?;
        let cols = schedule.cols();

        let backend = self.backend();
        let rb = E::reg_block(backend);
        let rows = schedule.rows();
        let mut y = vec![E::ZERO; rows * batch];
        let workers = self.batch_workers(batch.div_ceil(rb));
        // Per-tile staging decisions, mirroring [`Gust::execute_batch_banded`]:
        // a single-band tile takes the unbanded per-window path with the
        // same staging heuristics. The whole-panel interleave those
        // unstaged windows read depends only on the register block, not
        // the tile, so it is hoisted out of the tile loop — one
        // transpose per block shared by every tile, exactly the
        // amortization the untiled walk gets (multi-band tiles use a
        // separate band-slice buffer and cannot clobber it).
        let tile_flags: Vec<(Vec<bool>, bool)> = schedule
            .tiles()
            .iter()
            .map(|tile| {
                let single_band = tile.bands().count() == 1;
                let flags: Vec<bool> = tile
                    .windows()
                    .iter()
                    .map(|w| {
                        single_band && window_staged(w.window(), cols, rb.min(batch), E::BYTES)
                    })
                    .collect();
                let reads_panel = single_band
                    && tile
                        .windows()
                        .iter()
                        .zip(&flags)
                        .any(|(w, &staged)| w.nnz() > 0 && !staged);
                (flags, reads_panel)
            })
            .collect();
        let needs_panel = tile_flags.iter().any(|&(_, reads)| reads);

        run_blocks(
            workers,
            &mut y,
            rows,
            rb,
            batch,
            |j0, bb, y_block, scratch| {
                if needs_panel {
                    scratch.xb.resize(cols * bb, E::ZERO);
                    kernels::interleave_panel(b, cols, j0, bb, &mut scratch.xb);
                }
                for (t, tile) in schedule.tiles().iter().enumerate() {
                    let (flags, reads_panel) = &tile_flags[t];
                    run_block_banded(
                        backend,
                        tile,
                        b,
                        j0,
                        bb,
                        flags,
                        if *reads_panel {
                            PanelSource::Ready
                        } else {
                            PanelSource::Unused
                        },
                        schedule.tile_range(t).start,
                        rows,
                        y_block,
                        scratch,
                    );
                }
            },
        );

        Ok((y, self.tiled_report(schedule, batch as u64)))
    }

    /// Worker threads for a batched run over `blocks` register blocks
    /// (see [`GustConfig::effective_workers`]).
    fn batch_workers(&self, blocks: usize) -> usize {
        self.config.effective_workers(blocks)
    }

    /// The accounting of `batch` SpMVs over `schedule`, derived from the
    /// schedule alone: every slot is one multiply plus one accumulate, so
    /// per-color busy counts are the slot counts the scheduler already
    /// recorded — no counters need to watch the hot loop.
    fn analytic_report(&self, schedule: &ScheduledMatrix, batch: u64) -> ExecutionReport {
        self.report_from_counts(
            schedule.total_colors(),
            schedule.total_stalls(),
            schedule.nnz() as u64,
            schedule.rows() as u64,
            schedule.cols() as u64,
            batch,
        )
    }

    /// The banded counterpart of [`Gust::analytic_report`]: identical
    /// derivation, with the banded color total (`Σ` over windows *and*
    /// bands — banding trades modeled cycles for host locality).
    fn banded_report(&self, schedule: &BandedSchedule, batch: u64) -> ExecutionReport {
        self.report_from_counts(
            schedule.total_colors(),
            schedule.total_stalls(),
            schedule.nnz() as u64,
            schedule.rows() as u64,
            schedule.cols() as u64,
            batch,
        )
    }

    /// The tiled counterpart of [`Gust::analytic_report`]: identical
    /// derivation over the tile × window × band color total (tiling, like
    /// banding, trades modeled cycles for host locality).
    fn tiled_report(&self, schedule: &TiledSchedule, batch: u64) -> ExecutionReport {
        self.report_from_counts(
            schedule.total_colors(),
            schedule.total_stalls(),
            schedule.nnz() as u64,
            schedule.rows() as u64,
            schedule.cols() as u64,
            batch,
        )
    }

    /// Shared analytic accounting over the schedule's aggregate counts.
    fn report_from_counts(
        &self,
        streaming_cycles: u64,
        stalls: u64,
        nnz: u64,
        rows: u64,
        cols: u64,
        batch: u64,
    ) -> ExecutionReport {
        let l = self.config.length();
        // Three pipeline levels add 2 cycles of fill; an empty schedule
        // (no non-zeros anywhere) never starts the pipeline at all.
        let cycles = if streaming_cycles == 0 {
            0
        } else {
            streaming_cycles + 2
        };

        let mut report =
            ExecutionReport::new(self.config.design_name(), l, self.config.arithmetic_units());
        report.cycles = batch * cycles;
        report.nnz_processed = batch * nnz;
        report.busy_unit_cycles = batch * 2 * nnz; // one multiply + one add per slot
        report.stall_cycles = batch * stalls;
        report.multiplies = batch * nnz;
        report.additions = batch * nnz; // one accumulate per product
        report.frequency_hz = self.config.frequency_hz();
        let per_vector = self.traffic(streaming_cycles, nnz, rows, cols);
        report.traffic = MemoryTraffic {
            off_chip_reads: batch * per_vector.off_chip_reads,
            off_chip_writes: batch * per_vector.off_chip_writes,
            on_chip_reads: batch * per_vector.on_chip_reads,
            on_chip_writes: batch * per_vector.on_chip_writes,
        };
        report
    }

    /// Memory-traffic model for one SpMV (§3.3 "Streaming the Inputs"
    /// and §4's Buffer Filler pipeline):
    ///
    /// * off-chip reads — the dense `M_sch`/`Col_sch` stream (two 32-bit
    ///   words per cell, empty cells included: that waste is the utilization
    ///   loss) plus the packed `Row_sch` indices and the input vector;
    /// * on-chip — double-buffer writes/reads in the Buffer Filler plus one
    ///   vector-element read per non-zero;
    /// * off-chip writes — the output vector.
    fn traffic(&self, total_colors: u64, nnz: u64, rows: u64, cols: u64) -> MemoryTraffic {
        let l = self.config.length() as u64;
        let cells = l * total_colors;
        let row_bits = u64::from(log2_ceil(self.config.length()));
        let row_words = (cells * row_bits).div_ceil(32);
        let stream_words = 2 * cells + row_words;
        MemoryTraffic {
            off_chip_reads: stream_words + cols,
            off_chip_writes: rows,
            // Buffer Filler: write the partition into on-chip memory, read
            // it back out, plus one vector read per multiply.
            on_chip_reads: stream_words + nnz,
            on_chip_writes: stream_words + cols,
        }
    }
}

/// Element type of a batched panel walk: the precision the operand
/// panel, accumulators and output are held in. The schedule's matrix
/// values stay `f32` either way; the two impls (`f32`, `f64`) plug the
/// matching monomorphized panel kernels, register-block width and
/// thread-local scratch into the one generic walk body, so the two
/// precisions cannot drift structurally.
pub(crate) trait Element:
    Copy + Default + Send + Sync + std::fmt::Debug + PartialEq + 'static
{
    /// Additive identity (accumulator/buffer fill value).
    const ZERO: Self;
    /// Element width in bytes — what the staging threshold and the
    /// band/tile budget math divide by.
    const BYTES: usize;
    /// Register-block width of this element type under `backend`
    /// ([`Backend::reg_block`] / [`Backend::reg_block_f64`]).
    fn reg_block(backend: Backend) -> usize;
    /// The batched panel walk at this precision
    /// ([`kernels::panel_walk`] / [`kernels::panel_walk_f64`]).
    fn panel_walk(
        backend: Backend,
        values: &[f32],
        idx: &[u32],
        row_mods: &[u32],
        operands: &[Self],
        acc: &mut [Self],
        bb: usize,
    );
    /// The window-local panel stage at this precision
    /// ([`kernels::stage_panel`] / [`kernels::stage_panel_f64`]).
    fn stage_panel(
        backend: Backend,
        b: &[Self],
        cols: usize,
        j0: usize,
        bb: usize,
        gather_cols: &[u32],
        stage: &mut [Self],
    );
    /// Runs `f` with this thread's scratch for this element type (each
    /// impl owns its own `thread_local!` — Rust has no generic
    /// thread-locals).
    fn with_block_scratch<R>(f: impl FnOnce(&mut BlockScratch<Self>) -> R) -> R;
}

impl Element for f32 {
    const ZERO: Self = 0.0;
    const BYTES: usize = std::mem::size_of::<f32>();

    fn reg_block(backend: Backend) -> usize {
        backend.reg_block()
    }

    fn panel_walk(
        backend: Backend,
        values: &[f32],
        idx: &[u32],
        row_mods: &[u32],
        operands: &[Self],
        acc: &mut [Self],
        bb: usize,
    ) {
        kernels::panel_walk(backend, values, idx, row_mods, operands, acc, bb);
    }

    fn stage_panel(
        backend: Backend,
        b: &[Self],
        cols: usize,
        j0: usize,
        bb: usize,
        gather_cols: &[u32],
        stage: &mut [Self],
    ) {
        kernels::stage_panel(backend, b, cols, j0, bb, gather_cols, stage);
    }

    fn with_block_scratch<R>(f: impl FnOnce(&mut BlockScratch<Self>) -> R) -> R {
        std::thread_local! {
            static SCRATCH: std::cell::RefCell<BlockScratch<f32>> =
                std::cell::RefCell::new(BlockScratch::default());
        }
        SCRATCH.with(|scratch| f(&mut scratch.borrow_mut()))
    }
}

impl Element for f64 {
    const ZERO: Self = 0.0;
    const BYTES: usize = std::mem::size_of::<f64>();

    fn reg_block(backend: Backend) -> usize {
        backend.reg_block_f64()
    }

    fn panel_walk(
        backend: Backend,
        values: &[f32],
        idx: &[u32],
        row_mods: &[u32],
        operands: &[Self],
        acc: &mut [Self],
        bb: usize,
    ) {
        kernels::panel_walk_f64(backend, values, idx, row_mods, operands, acc, bb);
    }

    fn stage_panel(
        backend: Backend,
        b: &[Self],
        cols: usize,
        j0: usize,
        bb: usize,
        gather_cols: &[u32],
        stage: &mut [Self],
    ) {
        kernels::stage_panel_f64(backend, b, cols, j0, bb, gather_cols, stage);
    }

    fn with_block_scratch<R>(f: impl FnOnce(&mut BlockScratch<Self>) -> R) -> R {
        std::thread_local! {
            static SCRATCH: std::cell::RefCell<BlockScratch<f64>> =
                std::cell::RefCell::new(BlockScratch::default());
        }
        SCRATCH.with(|scratch| f(&mut scratch.borrow_mut()))
    }
}

/// Reusable per-thread scratch of the batched kernel: the (optional)
/// whole-panel interleave, the window-local operand stage, and the
/// per-window accumulator block — in the walk's element type.
///
/// Pool workers are never reaped, so their thread-local scratch lives
/// for the process; [`BlockScratch::trim`] bounds what a parked worker
/// keeps pinned after a huge matrix passes through.
#[derive(Debug, Default)]
pub(crate) struct BlockScratch<E> {
    /// `xb[col * bb + j]` = panel value of column `col`, RHS `j0 + j`
    /// (only filled when some window skips staging). The tiled walk
    /// fills it once per register block and shares it across tiles.
    xb: Vec<E>,
    /// Per-band operand slice of the multi-band walks (kept separate
    /// from `xb` so a multi-band tile cannot clobber the shared
    /// whole-panel interleave of its sibling tiles).
    band_xb: Vec<E>,
    /// `stage[i * bb + j]` = panel value of the window's i-th distinct
    /// column, RHS `j0 + j` (staged windows).
    stage: Vec<E>,
    /// `acc[row_mod * bb + j]` = running sum for adder `row_mod`, RHS `j`.
    acc: Vec<E>,
}

impl<E> BlockScratch<E> {
    /// Retained capacity ceiling per buffer: 2²² elements (16 MiB of
    /// f32, 32 MiB of f64). Below it, buffers amortize across pool tasks
    /// and `execute_batch` calls (the repeated-solve pattern); above it —
    /// the multi-GB LLC shapes — the memory is released so a parked
    /// worker does not pin matrix-sized buffers for the process lifetime.
    const MAX_RETAINED: usize = 1 << 22;

    /// Releases oversized buffers (see [`BlockScratch::MAX_RETAINED`]).
    /// Called after each pool task; contents never carry meaning between
    /// tasks, only capacity.
    fn trim(&mut self) {
        for buf in [
            &mut self.xb,
            &mut self.band_xb,
            &mut self.stage,
            &mut self.acc,
        ] {
            if buf.capacity() > Self::MAX_RETAINED {
                buf.clear();
                buf.shrink_to(Self::MAX_RETAINED);
            }
        }
    }
}

/// The single-vector banded band sweep: walks `schedule` (a whole
/// matrix's banded schedule, or one tile of a [`TiledSchedule`]) against
/// `x`, writing the permuted outputs into `y` (`schedule.rows()` long —
/// for a tile, the tile's slice of the full output). Bands outer,
/// windows inner, every window's adders carrying partial sums across
/// bands; per adder the product order is the merged window's slot order,
/// which keeps the output bit-identical to the unbanded engine on
/// [`BandedSchedule::to_unbanded`] (see [`crate::schedule::banded`]).
fn banded_walk_single(backend: Backend, schedule: &BandedSchedule, x: &[f32], y: &mut [f32]) {
    let l = schedule.length();
    let window_count = schedule.windows().len();
    debug_assert_eq!(y.len(), schedule.rows());
    let row_perm = schedule.row_perm();

    if schedule.bands().count() == 1 {
        // Single band (cache-resident shapes under the auto budget):
        // banding is vacuous, so take the unbanded [`Gust::execute`]
        // shape — one hot adder bank reused across windows, dump as
        // each window finishes, and the same per-window staging
        // decisions. Staging copies values and the per-window slot
        // order is unchanged, so the output stays bit-identical to
        // the multi-band walk.
        let mut adders = vec![0.0f32; l];
        let mut stage: Vec<f32> = Vec::new();
        for (w, banded) in schedule.windows().iter().enumerate() {
            let window = banded.window();
            let active = schedule.window_rows(w);
            adders[..active].fill(0.0);
            let (idx, operands): (&[u32], &[f32]) =
                if window_staged(window, x.len(), 1, std::mem::size_of::<f32>()) {
                    stage.resize(window.gather_cols().len(), 0.0);
                    kernels::gather(backend, x, window.gather_cols(), &mut stage);
                    (window.local_cols(), &stage)
                } else {
                    (window.cols(), x)
                };
            kernels::window_walk(
                backend,
                window.values(),
                idx,
                window.row_mods(),
                operands,
                &mut adders,
            );
            let base = w * l;
            for (i, &acc) in adders[..active].iter().enumerate() {
                y[row_perm[base + i] as usize] = acc;
            }
        }
        return;
    }

    // One adder bank per window, all carried across the band sweep.
    let mut adders = vec![0.0f32; window_count * l];
    for b in 0..schedule.bands().count() {
        let range = schedule.bands().range(b);
        let xs = &x[range.start as usize..range.end as usize];
        for (w, window) in schedule.windows().iter().enumerate() {
            let slots = window.band_slots(b);
            if slots.is_empty() {
                continue;
            }
            kernels::window_walk(
                backend,
                &window.window().values()[slots.clone()],
                &window.local_cols()[slots.clone()],
                &window.window().row_mods()[slots],
                xs,
                &mut adders[w * l..(w + 1) * l],
            );
        }
    }

    for w in 0..window_count {
        let active = schedule.window_rows(w);
        let base = w * l;
        for (i, &acc) in adders[base..base + active].iter().enumerate() {
            y[row_perm[base + i] as usize] = acc;
        }
    }
}

/// Executes the whole schedule against one register block of `bb` ≤
/// [`Gust::reg_block`] right-hand sides starting at panel column `j0`,
/// writing the column-major `rows × bb` output block. Full blocks and
/// ragged tails run the same backend kernel ([`kernels::panel_walk`]) —
/// the tail is just a smaller `bb` — and follow the same per-window
/// staging decisions (`stage_flags`, one per window).
#[allow(clippy::too_many_arguments)]
fn run_block<E: Element>(
    backend: Backend,
    schedule: &ScheduledMatrix,
    b: &[E],
    j0: usize,
    bb: usize,
    stage_flags: &[bool],
    needs_interleave: bool,
    y_block: &mut [E],
    scratch: &mut BlockScratch<E>,
) {
    let cols = schedule.cols();
    let rows = schedule.rows();
    let l = schedule.length();

    // Interleave the block's operands for windows that read the whole
    // panel: one slot's `bb` vector elements become contiguous, so the
    // kernel's inner loop is a unit-stride multiply-accumulate. Plain
    // resize (no clear): the interleave loop overwrites every cell, and
    // the accumulator is zeroed per window, so stale contents from a
    // previous block are never read.
    if needs_interleave {
        scratch.xb.resize(cols * bb, E::ZERO);
        kernels::interleave_panel(b, cols, j0, bb, &mut scratch.xb);
    }
    scratch.acc.resize(l * bb, E::ZERO);

    let row_perm = schedule.row_perm();
    for (w, window) in schedule.windows().iter().enumerate() {
        let active = schedule.window_rows(w);
        scratch.acc[..active * bb].fill(E::ZERO);
        // Staged windows gather their distinct columns once per block
        // into a dense `u × bb` stage (same values as the interleave —
        // the numerical contract does not depend on staging).
        let (idx, operands): (&[u32], &[E]) = if stage_flags[w] {
            scratch
                .stage
                .resize(window.gather_cols().len() * bb, E::ZERO);
            E::stage_panel(
                backend,
                b,
                cols,
                j0,
                bb,
                window.gather_cols(),
                &mut scratch.stage,
            );
            (window.local_cols(), &scratch.stage)
        } else {
            (window.cols(), &scratch.xb)
        };
        E::panel_walk(
            backend,
            window.values(),
            idx,
            window.row_mods(),
            operands,
            &mut scratch.acc,
            bb,
        );
        // Dump the active lanes through the row permutation into each
        // output column.
        let base = w * l;
        kernels::scatter_panel(
            &scratch.acc[..active * bb],
            &row_perm[base..base + active],
            0,
            rows,
            bb,
            y_block,
        );
    }
}

/// Executes a cache-blocked schedule against one register block of `bb`
/// right-hand sides starting at panel column `j0` — the banded
/// counterpart of [`run_block`]. Bands are swept in order: each band's
/// operand slice is interleaved once (cache-budget-sized, so the
/// following walks gather from a resident block) and every window's
/// slots of that band accumulate into that window's bank of the carried
/// accumulator panel. Per (window, adder, right-hand side) the
/// accumulation order equals the merged window's slot order, which keeps
/// the output bit-identical to [`run_block`] on
/// [`BandedSchedule::to_unbanded`].
///
/// `schedule` may be one tile of a [`TiledSchedule`]: `row0` rebases the
/// tile-local row permutation into the `rows_total`-row output block
/// (0 and `schedule.rows()` for an untiled banded schedule).
#[allow(clippy::too_many_arguments)]
fn run_block_banded<E: Element>(
    backend: Backend,
    schedule: &BandedSchedule,
    b: &[E],
    j0: usize,
    bb: usize,
    stage_flags: &[bool],
    panel: PanelSource,
    row0: usize,
    rows_total: usize,
    y_block: &mut [E],
    scratch: &mut BlockScratch<E>,
) {
    let cols = schedule.cols();
    let l = schedule.length();
    let window_count = schedule.windows().len();
    let row_perm = schedule.row_perm();

    // Single band (cache-resident shapes under the auto budget): the
    // carry is vacuous, so take the unbanded [`run_block`] shape — one
    // small hot accumulator bank, per-window staging per `stage_flags`,
    // dump each window as it finishes. Slot order per window is
    // unchanged and staging copies values, so the output stays
    // bit-identical to the multi-band walk.
    if schedule.bands().count() == 1 {
        if panel == PanelSource::Interleave {
            scratch.xb.resize(cols * bb, E::ZERO);
            kernels::interleave_panel_band(b, cols, 0, cols, j0, bb, &mut scratch.xb);
        }
        scratch.acc.resize(l * bb, E::ZERO);
        for (w, banded) in schedule.windows().iter().enumerate() {
            let window = banded.window();
            let active = schedule.window_rows(w);
            scratch.acc[..active * bb].fill(E::ZERO);
            let (idx, operands): (&[u32], &[E]) = if stage_flags[w] {
                scratch
                    .stage
                    .resize(window.gather_cols().len() * bb, E::ZERO);
                E::stage_panel(
                    backend,
                    b,
                    cols,
                    j0,
                    bb,
                    window.gather_cols(),
                    &mut scratch.stage,
                );
                (window.local_cols(), &scratch.stage)
            } else {
                (window.cols(), &scratch.xb)
            };
            E::panel_walk(
                backend,
                window.values(),
                idx,
                window.row_mods(),
                operands,
                &mut scratch.acc,
                bb,
            );
            let base = w * l;
            kernels::scatter_panel(
                &scratch.acc[..active * bb],
                &row_perm[base..base + active],
                row0,
                rows_total,
                bb,
                y_block,
            );
        }
        return;
    }

    // One accumulator bank per window, all carried across the band
    // sweep. The fill is mandatory: banks persist from the previous
    // block in the thread-local scratch.
    scratch.acc.resize(window_count * l * bb, E::ZERO);
    scratch.acc.fill(E::ZERO);

    for band in 0..schedule.bands().count() {
        let range = schedule.bands().range(band);
        let (col0, width) = (range.start as usize, range.len());
        if width == 0 {
            continue;
        }
        scratch.band_xb.resize(width * bb, E::ZERO);
        kernels::interleave_panel_band(b, cols, col0, width, j0, bb, &mut scratch.band_xb);
        for (w, window) in schedule.windows().iter().enumerate() {
            let slots = window.band_slots(band);
            if slots.is_empty() {
                continue;
            }
            E::panel_walk(
                backend,
                &window.window().values()[slots.clone()],
                &window.local_cols()[slots.clone()],
                &window.window().row_mods()[slots],
                &scratch.band_xb,
                &mut scratch.acc[w * l * bb..(w + 1) * l * bb],
                bb,
            );
        }
    }

    // Dump every window's active lanes through the row permutation into
    // each output column.
    for w in 0..window_count {
        let active = schedule.window_rows(w);
        let base = w * l;
        kernels::scatter_panel(
            &scratch.acc[base * bb..(base + active) * bb],
            &row_perm[base..base + active],
            row0,
            rows_total,
            bb,
            y_block,
        );
    }
}

/// Runs `f(j0, bb, y_block, scratch)` for every register block of the
/// batch, either sequentially or fanned out over the persistent worker
/// [`Pool`]. Each block owns a disjoint chunk of the column-major output
/// panel (claimed exactly once through its own slot), so the result is
/// bit-identical for every worker count regardless of the pool's dynamic
/// task order. Pool workers keep per-thread scratch per element type
/// ([`Element::with_block_scratch`]), so the interleave/stage/accumulator
/// buffers amortize across `execute_batch` calls — exactly the
/// repeated-solve pattern the pool exists for.
fn run_blocks<E: Element>(
    workers: usize,
    y: &mut [E],
    rows: usize,
    rb: usize,
    batch: usize,
    f: impl Fn(usize, usize, &mut [E], &mut BlockScratch<E>) + Sync,
) {
    // A zero-row schedule has no output to chunk (and `chunks_mut(0)`
    // would panic); every block's dump would be empty anyway.
    if y.is_empty() {
        return;
    }
    let blocks = batch.div_ceil(rb);
    if workers <= 1 {
        let mut scratch = BlockScratch::default();
        for (blk, y_block) in y.chunks_mut(rows * rb).enumerate() {
            let j0 = blk * rb;
            let bb = (batch - j0).min(rb);
            f(j0, bb, y_block, &mut scratch);
        }
        return;
    }
    let chunks: Vec<std::sync::Mutex<Option<&mut [E]>>> = y
        .chunks_mut(rows * rb)
        .map(|chunk| std::sync::Mutex::new(Some(chunk)))
        .collect();
    Pool::global().run(workers, blocks, |blk| {
        let y_block = chunks[blk]
            .lock()
            .expect("output block lock")
            .take()
            .expect("each block runs exactly once");
        let j0 = blk * rb;
        let bb = (batch - j0).min(rb);
        E::with_block_scratch(|scratch| {
            f(j0, bb, y_block, scratch);
            scratch.trim();
        });
    });
}

impl Default for Gust {
    /// A length-256 GUST with the paper's defaults.
    fn default() -> Self {
        Self::new(GustConfig::new(256))
    }
}

/// Convenience: run all three scheduling policies of Fig. 7/8 on one matrix.
///
/// Returns `(naive, ec, ec_lb)` runs for the same `x`.
#[must_use]
pub fn run_all_policies(
    matrix: &gust_sparse::CsrMatrix,
    x: &[f32],
    length: usize,
) -> (GustRun, GustRun, GustRun) {
    let mk = |policy| {
        let gust = Gust::new(GustConfig::new(length).with_policy(policy));
        gust.spmv(matrix, x)
    };
    (
        mk(SchedulingPolicy::Naive),
        mk(SchedulingPolicy::EdgeColoring),
        mk(SchedulingPolicy::EdgeColoringLb),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use gust_sparse::prelude::*;

    fn random_x(n: usize, seed: u64) -> Vec<f32> {
        // Simple deterministic pseudo-random vector.
        (0..n)
            .map(|i| {
                let h = (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ seed;
                ((h % 1000) as f32) / 500.0 - 1.0
            })
            .collect()
    }

    /// Column-major panel of `batch` deterministic vectors.
    fn random_panel(n: usize, batch: usize, seed: u64) -> Vec<f32> {
        let mut panel = Vec::with_capacity(n * batch);
        for j in 0..batch {
            panel.extend(random_x(n, seed + j as u64));
        }
        panel
    }

    #[test]
    fn output_matches_reference_for_all_policies() {
        let m = CsrMatrix::from(&gen::uniform(50, 60, 400, 11));
        let x = random_x(60, 1);
        let expected = reference_spmv(&m, &x);
        let (naive, ec, lb) = run_all_policies(&m, &x, 8);
        assert_vectors_close(&naive.output, &expected, 1e-4);
        assert_vectors_close(&ec.output, &expected, 1e-4);
        assert_vectors_close(&lb.output, &expected, 1e-4);
    }

    #[test]
    fn cycles_are_colors_plus_two() {
        let m = CsrMatrix::from(&gen::uniform(32, 32, 200, 3));
        let gust = Gust::new(GustConfig::new(8));
        let s = gust.schedule(&m);
        let run = gust.execute(&s, &random_x(32, 2));
        assert_eq!(run.report.cycles, s.total_colors() + 2);
    }

    #[test]
    fn utilization_equals_nnz_over_lanes_times_cycles() {
        let m = CsrMatrix::from(&gen::uniform(64, 64, 500, 4));
        let gust = Gust::new(GustConfig::new(16));
        let run = gust.spmv(&m, &random_x(64, 3));
        // busy = 2*nnz (mult + add); units = 2l.
        let expected = 500.0 / (16.0 * run.report.cycles as f64);
        assert!((run.report.utilization() - expected).abs() < 1e-12);
    }

    #[test]
    fn schedule_reuse_across_vectors() {
        let m = CsrMatrix::from(&gen::banded(40, 40, 3, 150, 5));
        let gust = Gust::new(GustConfig::new(8));
        let s = gust.schedule(&m);
        for seed in 0..4 {
            let x = random_x(40, seed);
            let run = gust.execute(&s, &x);
            assert_vectors_close(&run.output, &reference_spmv(&m, &x), 1e-4);
        }
    }

    #[test]
    fn load_balanced_output_is_correctly_unpermuted() {
        // Highly skewed rows force a non-trivial permutation.
        let m = CsrMatrix::from(&gen::power_law(64, 64, 600, 1.6, 6));
        let x = random_x(64, 7);
        let gust = Gust::new(GustConfig::new(8)); // EC/LB default
        let run = gust.spmv(&m, &x);
        assert_vectors_close(&run.output, &reference_spmv(&m, &x), 1e-4);
    }

    #[test]
    fn empty_rows_produce_zero_outputs() {
        let coo = CooMatrix::from_triplets(6, 6, vec![(0, 0, 2.0), (5, 5, 3.0)]).unwrap();
        let m = CsrMatrix::from(&coo);
        let run = Gust::new(GustConfig::new(4)).spmv(&m, &[1.0; 6]);
        assert_eq!(run.output, vec![2.0, 0.0, 0.0, 0.0, 0.0, 3.0]);
    }

    #[test]
    fn rectangular_matrices_work() {
        let m = CsrMatrix::from(&gen::uniform(20, 100, 300, 8));
        let x = random_x(100, 9);
        let run = Gust::new(GustConfig::new(8)).spmv(&m, &x);
        assert_vectors_close(&run.output, &reference_spmv(&m, &x), 1e-4);
    }

    #[test]
    fn naive_reports_stalls_ec_does_not() {
        let m = CsrMatrix::from(&gen::uniform(32, 32, 512, 9));
        let x = random_x(32, 10);
        let (naive, ec, _) = run_all_policies(&m, &x, 8);
        assert!(naive.report.stall_cycles > 0);
        assert_eq!(ec.report.stall_cycles, 0);
        assert!(naive.report.cycles >= ec.report.cycles);
    }

    #[test]
    fn instrumented_path_is_bit_identical_to_fast_path() {
        for (name, coo) in [
            ("uniform", gen::uniform(48, 48, 400, 21)),
            ("power-law", gen::power_law(48, 48, 350, 1.8, 22)),
            ("ragged", gen::uniform(45, 45, 300, 23)), // 45 % 8 != 0
        ] {
            let m = CsrMatrix::from(&coo);
            let x = random_x(m.cols(), 5);
            let gust = Gust::new(GustConfig::new(8));
            let s = gust.schedule(&m);
            let fast = gust.execute(&s, &x);
            let slow = gust.execute_instrumented(&s, &x);
            assert_eq!(fast.output, slow.output, "{name}: outputs differ");
            assert_eq!(fast.report, slow.report, "{name}: reports differ");
        }
    }

    #[test]
    fn ragged_final_window_dumps_only_live_lanes() {
        // 10 rows at l = 4: the final window covers 2 rows. A heavy first
        // window leaves stale sums in lanes 2..4, which must never leak
        // into the output.
        let m = CsrMatrix::from(&gen::uniform(10, 10, 60, 31));
        let x = random_x(10, 6);
        let gust = Gust::new(GustConfig::new(4));
        let s = gust.schedule(&m);
        assert_eq!(s.rows() % 4, 2, "test needs a ragged final window");
        let run = gust.execute(&s, &x);
        assert_vectors_close(&run.output, &reference_spmv(&m, &x), 1e-4);
        // And the batched kernel agrees bit for bit on the same shape
        // (scalar backend: the AVX2 panel walk fuses into FMA, which the
        // backend-equivalence tests cover with a ULP bound instead).
        let scalar = Gust::new(GustConfig::new(4).with_backend(Some(Backend::Scalar)));
        let scalar_run = scalar.execute(&s, &x);
        assert_eq!(
            scalar_run.output, run.output,
            "execute is backend-invariant"
        );
        let (panel_out, _) = scalar.execute_batch(&s, &x, 1);
        assert_eq!(panel_out, run.output);
    }

    #[test]
    fn execute_batch_matches_per_vector_runs() {
        let m = CsrMatrix::from(&gen::uniform(48, 48, 300, 12));
        // Scalar backend: batched columns are bit-identical to the scalar
        // per-vector path. (Under AVX2 the batched kernel fuses into FMA;
        // tests/backend_equivalence.rs pins that to scalar within ULPs.)
        let gust = Gust::new(GustConfig::new(8).with_backend(Some(Backend::Scalar)));
        let schedule = gust.schedule(&m);
        let batch = 4usize;
        let panel = random_panel(48, batch, 0);
        let (outputs, report) = gust.execute_batch(&schedule, &panel, batch);
        assert_eq!(outputs.len(), 48 * batch);
        let mut cycles = 0u64;
        for j in 0..batch {
            let x = &panel[j * 48..(j + 1) * 48];
            let single = gust.execute(&schedule, x);
            assert_eq!(
                &outputs[j * 48..(j + 1) * 48],
                single.output.as_slice(),
                "column {j} must be bit-identical to the scalar path"
            );
            cycles += single.report.cycles;
        }
        assert_eq!(report.cycles, cycles);
        assert_eq!(report.nnz_processed, 4 * 300);
        assert_eq!(report.busy_unit_cycles, 4 * 2 * 300);
    }

    #[test]
    fn execute_batch_is_identical_across_worker_counts() {
        let m = CsrMatrix::from(&gen::power_law(64, 64, 600, 1.9, 13));
        let batch = 19usize; // 3 blocks: 8 + 8 + 3
        let panel = random_panel(64, batch, 7);
        let sequential = Gust::new(GustConfig::new(8).with_parallelism(Some(1)));
        let threaded = Gust::new(GustConfig::new(8).with_parallelism(Some(4)));
        let schedule = sequential.schedule(&m);
        let (seq, seq_report) = sequential.execute_batch(&schedule, &panel, batch);
        let (par, par_report) = threaded.execute_batch(&schedule, &panel, batch);
        assert_eq!(seq, par, "thread fan-out must not change a single bit");
        assert_eq!(seq_report, par_report);
    }

    #[test]
    #[should_panic(expected = "at least one vector")]
    fn empty_batch_panics() {
        let m = CsrMatrix::identity(4);
        let gust = Gust::new(GustConfig::new(2));
        let s = gust.schedule(&m);
        let _ = gust.execute_batch(&s, &[], 0);
    }

    #[test]
    #[should_panic(expected = "column-major")]
    fn wrong_panel_shape_panics() {
        let m = CsrMatrix::identity(4);
        let gust = Gust::new(GustConfig::new(2));
        let s = gust.schedule(&m);
        let _ = gust.execute_batch(&s, &[1.0; 7], 2);
    }

    #[test]
    fn update_values_reuses_the_coloring() {
        // Same pattern, new values (the Jacobian/Hessian case of §3.3).
        let coo_a = gen::uniform(40, 40, 250, 13);
        let m_a = CsrMatrix::from(&coo_a);
        // Scale all values: same sparsity, different numbers.
        let coo_b =
            CooMatrix::from_triplets(40, 40, coo_a.iter().map(|(r, c, v)| (r, c, v * 3.5 + 1.0)))
                .unwrap();
        let m_b = CsrMatrix::from(&coo_b);

        let gust = Gust::new(GustConfig::new(8));
        let mut schedule = gust.schedule(&m_a);
        let colors_before = schedule.total_colors();
        schedule.update_values(&m_b);
        assert_eq!(schedule.total_colors(), colors_before, "coloring unchanged");
        schedule.validate_against(&m_b);
        let x = random_x(40, 4);
        let run = gust.execute(&schedule, &x);
        assert_vectors_close(&run.output, &reference_spmv(&m_b, &x), 1e-4);
    }

    #[test]
    #[should_panic(expected = "sparsity pattern mismatch")]
    fn update_values_rejects_different_pattern() {
        let m_a = CsrMatrix::from(&gen::uniform(20, 20, 60, 14));
        let m_b = CsrMatrix::from(&gen::uniform(20, 20, 60, 15));
        let mut schedule = Gust::new(GustConfig::new(4)).schedule(&m_a);
        schedule.update_values(&m_b);
    }

    #[test]
    fn traffic_scales_with_schedule_size() {
        let m = CsrMatrix::from(&gen::uniform(64, 64, 256, 10));
        let gust = Gust::new(GustConfig::new(8));
        let s = gust.schedule(&m);
        let run = gust.execute(&s, &random_x(64, 11));
        let cells = 8 * s.total_colors();
        assert!(run.report.traffic.off_chip_reads >= 2 * cells);
        assert_eq!(run.report.traffic.off_chip_writes, 64);
    }

    #[test]
    #[should_panic(expected = "different GUST length")]
    fn mismatched_schedule_length_panics() {
        let m = CsrMatrix::identity(8);
        let s = Gust::new(GustConfig::new(4)).schedule(&m);
        let _ = Gust::new(GustConfig::new(8)).execute(&s, &[1.0; 8]);
    }

    #[test]
    fn zero_row_matrices_execute_to_empty_outputs() {
        let m = CsrMatrix::try_new(0, 5, vec![0], vec![], vec![]).expect("0×5 is valid");
        let gust = Gust::new(GustConfig::new(4));
        let s = gust.schedule(&m);
        assert_eq!(gust.execute(&s, &[1.0; 5]).output, Vec::<f32>::new());
        let (y, _) = gust.execute_batch(&s, &[1.0; 40], 8);
        assert_eq!(y, Vec::<f32>::new());
        let banded = gust.schedule_banded(&m);
        let (y, _) = gust.execute_batch_banded(&banded, &[1.0; 40], 8);
        assert_eq!(y, Vec::<f32>::new());
        let tiled = gust.schedule_tiled(&m);
        assert_eq!(tiled.tile_count(), 1);
        assert_eq!(
            gust.execute_tiled(&tiled, &[1.0; 5]).output,
            Vec::<f32>::new()
        );
        let (y, _) = gust.execute_batch_tiled(&tiled, &[1.0; 40], 8);
        assert_eq!(y, Vec::<f32>::new());
    }

    #[test]
    fn banded_execution_is_bit_identical_to_the_unbanded_walk() {
        use crate::schedule::{banded::ColumnBands, Scheduler};
        let m = CsrMatrix::from(&gen::power_law(60, 60, 500, 1.8, 17));
        let x = random_x(60, 3);
        let gust = Gust::new(GustConfig::new(8));
        for bands in [1usize, 2, 7] {
            let banded = Scheduler::new(gust.config().clone())
                .schedule_banded_with(&m, ColumnBands::with_count(60, bands));
            let flat = banded.to_unbanded();
            let from_banded = gust.execute_banded(&banded, &x);
            let from_flat = gust.execute(&flat, &x);
            assert_eq!(
                from_banded.output, from_flat.output,
                "{bands} bands: banded walk must be bit-identical"
            );
            assert_eq!(from_banded.report, from_flat.report);
            // And correct against the reference kernel.
            assert_vectors_close(&from_banded.output, &reference_spmv(&m, &x), 1e-4);
        }
    }

    #[test]
    fn single_band_schedule_equals_the_flat_schedule() {
        let m = CsrMatrix::from(&gen::uniform(40, 40, 300, 9));
        // A budget covering the whole operand vector → one band → the
        // banded scheduler must reproduce the flat schedule exactly,
        // coloring and all.
        let gust = Gust::new(GustConfig::new(8).with_cache_budget(Some(1 << 30)));
        let banded = gust.schedule_banded(&m);
        assert_eq!(banded.bands().count(), 1);
        assert_eq!(banded.to_unbanded(), gust.schedule(&m));
    }

    #[test]
    fn banded_batch_matches_unbanded_batch_bit_for_bit() {
        use crate::schedule::{banded::ColumnBands, Scheduler};
        let m = CsrMatrix::from(&gen::uniform(48, 64, 400, 23));
        let gust = Gust::new(GustConfig::new(8).with_parallelism(Some(1)));
        let banded = Scheduler::new(gust.config().clone())
            .schedule_banded_with(&m, ColumnBands::with_count(64, 5));
        let flat = banded.to_unbanded();
        for batch in [1usize, 8, 17] {
            let panel = random_panel(64, batch, 7);
            let (y_banded, r_banded) = gust.execute_batch_banded(&banded, &panel, batch);
            let (y_flat, r_flat) = gust.execute_batch(&flat, &panel, batch);
            assert_eq!(y_banded, y_flat, "batch {batch}");
            assert_eq!(r_banded, r_flat);
        }
    }

    #[test]
    fn banded_batch_is_identical_across_worker_counts() {
        use crate::schedule::{banded::ColumnBands, Scheduler};
        let m = CsrMatrix::from(&gen::power_law(64, 64, 600, 1.9, 29));
        let batch = 19usize; // 3 blocks: 8 + 8 + 3
        let panel = random_panel(64, batch, 11);
        let sequential = Gust::new(GustConfig::new(8).with_parallelism(Some(1)));
        let threaded = Gust::new(GustConfig::new(8).with_parallelism(Some(4)));
        let schedule = Scheduler::new(sequential.config().clone())
            .schedule_banded_with(&m, ColumnBands::with_count(64, 3));
        let (seq, seq_report) = sequential.execute_batch_banded(&schedule, &panel, batch);
        let (par, par_report) = threaded.execute_batch_banded(&schedule, &panel, batch);
        assert_eq!(seq, par, "pool fan-out must not change a single bit");
        assert_eq!(seq_report, par_report);
    }

    #[test]
    fn single_tile_schedule_is_the_banded_schedule() {
        use crate::schedule::{banded::ColumnBands, Scheduler};
        let m = CsrMatrix::from(&gen::power_law(60, 60, 500, 1.8, 41));
        let x = random_x(60, 13);
        let gust = Gust::new(GustConfig::new(8));
        let scheduler = Scheduler::new(gust.config().clone());
        let bands = ColumnBands::with_count(60, 3);
        let tiled = scheduler.schedule_tiled_with(&m, 1, bands.clone());
        let banded = scheduler.schedule_banded_with(&m, bands);
        assert_eq!(tiled.tile_count(), 1);
        assert_eq!(
            &tiled.tiles()[0],
            &banded,
            "one tile IS the banded schedule"
        );
        let from_tiled = gust.execute_tiled(&tiled, &x);
        let from_banded = gust.execute_banded(&banded, &x);
        assert_eq!(from_tiled.output, from_banded.output);
        assert_eq!(from_tiled.report, from_banded.report);
        let panel = random_panel(60, 17, 5);
        assert_eq!(
            gust.execute_batch_tiled(&tiled, &panel, 17),
            gust.execute_batch_banded(&banded, &panel, 17)
        );
        // The auto path under all-covering budgets also degenerates to
        // one tile of one band — the flat schedule, banded-walked.
        let generous = Gust::new(
            GustConfig::new(8)
                .with_cache_budget(Some(1 << 30))
                .with_row_budget(Some(1 << 30)),
        );
        let auto = generous.schedule_tiled(&m);
        assert_eq!(auto.tile_count(), 1);
        assert_eq!(auto.tiles()[0].bands().count(), 1);
        assert_eq!(auto.tiles()[0].to_unbanded(), generous.schedule(&m));
    }

    #[test]
    fn tiled_execution_is_bit_identical_to_per_tile_unbanded_walks() {
        use crate::schedule::{banded::ColumnBands, Scheduler};
        let m = CsrMatrix::from(&gen::uniform(50, 64, 450, 27));
        let x = random_x(64, 19);
        let gust = Gust::new(GustConfig::new(8).with_parallelism(Some(1)));
        for tiles in [1usize, 3] {
            let tiled = Scheduler::new(gust.config().clone()).schedule_tiled_with(
                &m,
                tiles,
                ColumnBands::with_count(64, 5),
            );
            let run = gust.execute_tiled(&tiled, &x);
            for (t, tile) in tiled.tiles().iter().enumerate() {
                let flat = gust.execute(&tile.to_unbanded(), &x);
                assert_eq!(
                    &run.output[tiled.tile_range(t)],
                    flat.output.as_slice(),
                    "{tiles} tiles: tile {t} diverged from its flattened schedule"
                );
            }
            assert_vectors_close(&run.output, &reference_spmv(&m, &x), 1e-4);
        }
    }

    #[test]
    fn tiled_batch_is_identical_across_worker_counts() {
        use crate::schedule::{banded::ColumnBands, Scheduler};
        let m = CsrMatrix::from(&gen::power_law(64, 64, 600, 1.9, 37));
        let batch = 19usize; // 3 blocks: 8 + 8 + 3
        let panel = random_panel(64, batch, 23);
        let sequential = Gust::new(GustConfig::new(8).with_parallelism(Some(1)));
        let threaded = Gust::new(GustConfig::new(8).with_parallelism(Some(4)));
        let schedule = Scheduler::new(sequential.config().clone()).schedule_tiled_with(
            &m,
            3,
            ColumnBands::with_count(64, 2),
        );
        let (seq, seq_report) = sequential.execute_batch_tiled(&schedule, &panel, batch);
        let (par, par_report) = threaded.execute_batch_tiled(&schedule, &panel, batch);
        assert_eq!(seq, par, "pool fan-out must not change a single bit");
        assert_eq!(seq_report, par_report);
    }

    #[test]
    fn auto_tiled_schedule_respects_the_row_budget() {
        // 64 rows at l = 4 under a 64-byte single-vector row budget:
        // 64 B / 4 B = 16 rows per tile (already a multiple of l), so
        // the 64-row matrix splits into 4 tiles.
        let m = CsrMatrix::from(&gen::uniform(64, 32, 300, 15));
        let gust = Gust::new(
            GustConfig::new(4)
                .with_row_budget(Some(64))
                .with_cache_budget(Some(1 << 20)),
        );
        let tiled = gust.schedule_tiled(&m);
        assert_eq!(tiled.tile_count(), 4);
        for t in 0..4 {
            assert_eq!(tiled.tile_range(t).len(), 16);
        }
        let x = random_x(32, 3);
        assert_vectors_close(
            &gust.execute_tiled(&tiled, &x).output,
            &reference_spmv(&m, &x),
            1e-4,
        );
    }

    #[test]
    fn banded_cycles_are_at_least_unbanded_cycles() {
        use crate::schedule::{banded::ColumnBands, Scheduler};
        let m = CsrMatrix::from(&gen::uniform(64, 64, 700, 31));
        let gust = Gust::new(GustConfig::new(8));
        let flat = gust.schedule(&m);
        let banded = Scheduler::new(gust.config().clone())
            .schedule_banded_with(&m, ColumnBands::with_count(64, 4));
        // Banding trades modeled cycles for host locality; it can never
        // reduce the color total below the flat schedule's.
        assert!(banded.total_colors() >= flat.total_colors());
        assert_eq!(banded.nnz(), flat.nnz());
    }
}
