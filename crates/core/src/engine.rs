//! The GUST execution engine (event-driven over color steps).
//!
//! One color = one cycle (paper §3.4: "execution time … is the sum of the
//! number of colors for all of the edge sets plus 2" for the three pipeline
//! levels). The engine walks the schedule color by color: every occupied
//! slot issues a multiply, the crossbar routes the product to the adder
//! named by `Row_sch`, the adder accumulates; at each window boundary the
//! adders dump into the output vector through the row permutation.
//!
//! This is the fast path used by benchmarks. The structurally faithful
//! FIFO/Buffer-Filler pipeline of Fig. 2 lives in [`crate::hw`]; tests
//! assert the two produce identical outputs and cycle counts.

use crate::config::{GustConfig, SchedulingPolicy};
use crate::schedule::scheduled::{log2_ceil, ScheduledMatrix};
use crate::schedule::Scheduler;
use gust_sim::{ExecutionReport, MemoryTraffic, UnitCounter};

/// Result of one SpMV on the GUST engine.
#[derive(Debug, Clone, PartialEq)]
pub struct GustRun {
    /// The computed output vector `y = A·x`.
    pub output: Vec<f32>,
    /// Cycle/utilization/traffic accounting.
    pub report: ExecutionReport,
}

/// A configured GUST accelerator: scheduler + engine.
///
/// # Example
///
/// ```
/// use gust::{Gust, GustConfig};
/// use gust_sparse::prelude::*;
///
/// let m = CsrMatrix::identity(8);
/// let gust = Gust::new(GustConfig::new(4));
/// let schedule = gust.schedule(&m);
/// let run = gust.execute(&schedule, &[1.0; 8]);
/// assert_eq!(run.output, vec![1.0; 8]);
/// // Identity: every window is one color; 2 windows + pipeline depth 2.
/// assert_eq!(run.report.cycles, 4);
/// ```
#[derive(Debug, Clone)]
pub struct Gust {
    config: GustConfig,
}

impl Gust {
    /// Creates an engine with the given configuration.
    #[must_use]
    pub fn new(config: GustConfig) -> Self {
        Self { config }
    }

    /// The configuration in effect.
    #[must_use]
    pub fn config(&self) -> &GustConfig {
        &self.config
    }

    /// Preprocesses `matrix` (the paper's scheduling step). Delegates to
    /// [`Scheduler::schedule`].
    #[must_use]
    pub fn schedule(&self, matrix: &gust_sparse::CsrMatrix) -> ScheduledMatrix {
        Scheduler::new(self.config.clone()).schedule(matrix)
    }

    /// Runs one SpMV: streams the schedule through the engine.
    ///
    /// The schedule can be reused across calls with different vectors —
    /// that reuse is the paper's §5.3 amortization argument.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != schedule.cols()` or the schedule's length does
    /// not match this engine's configuration.
    #[must_use]
    pub fn execute(&self, schedule: &ScheduledMatrix, x: &[f32]) -> GustRun {
        let l = self.config.length();
        assert_eq!(
            schedule.length(),
            l,
            "schedule was produced for a different GUST length"
        );
        assert_eq!(x.len(), schedule.cols(), "input vector length mismatch");

        let mut y = vec![0.0f32; schedule.rows()];
        let mut adders = vec![0.0f32; l];
        let mut mults = UnitCounter::new("multipliers", l);
        let mut adds = UnitCounter::new("adders", l);
        let mut multiplies: u64 = 0;

        let row_perm = schedule.row_perm();
        for (w, window) in schedule.windows().iter().enumerate() {
            adders.iter_mut().for_each(|a| *a = 0.0);
            for c in 0..window.colors() {
                let slots = window.color_slots(c);
                // One cycle: every occupied lane multiplies, the crossbar
                // routes, the named adder accumulates. Lane/adder uniqueness
                // within a color was checked at schedule assembly.
                for s in slots {
                    let product = s.value * x[s.col as usize];
                    adders[s.row_mod as usize] += product;
                }
                mults.record_busy(slots.len());
                adds.record_busy(slots.len());
                multiplies += slots.len() as u64;
            }
            // Dump: each adder's value belongs to the row scheduled at
            // position w*l + adder_index.
            let base = w * l;
            for (i, &acc) in adders.iter().enumerate() {
                let pos = base + i;
                if pos < row_perm.len() {
                    y[row_perm[pos] as usize] = acc;
                }
            }
        }

        let streaming_cycles = schedule.total_colors();
        // Three pipeline levels add 2 cycles of fill; an empty schedule
        // (no non-zeros anywhere) never starts the pipeline at all.
        let cycles = if streaming_cycles == 0 {
            0
        } else {
            streaming_cycles + 2
        };
        let nnz = schedule.nnz() as u64;

        let mut report =
            ExecutionReport::new(self.config.design_name(), l, self.config.arithmetic_units());
        report.cycles = cycles;
        report.nnz_processed = nnz;
        report.busy_unit_cycles = mults.busy_unit_cycles() + adds.busy_unit_cycles();
        report.stall_cycles = schedule.total_stalls();
        report.multiplies = multiplies;
        report.additions = multiplies; // one accumulate per product
        report.frequency_hz = self.config.frequency_hz();
        report.traffic = self.traffic(schedule);
        GustRun { output: y, report }
    }

    /// Schedules and executes in one call.
    #[must_use]
    pub fn spmv(&self, matrix: &gust_sparse::CsrMatrix, x: &[f32]) -> GustRun {
        let schedule = self.schedule(matrix);
        self.execute(&schedule, x)
    }

    /// Sparse-matrix × dense-matrix product by schedule reuse: one SpMV per
    /// column of `b`, all against the same preprocessed schedule (the
    /// iterative-solver / multi-right-hand-side pattern of §5.3, and the
    /// SpMM direction §7 names as future work for a 2D GUST).
    ///
    /// Returns the dense product `A·B` (column per input column) and a
    /// combined report whose cycle count is the sum over the batch.
    ///
    /// # Panics
    ///
    /// Panics if any column of `b` has the wrong length, or `b` is empty.
    #[must_use]
    pub fn execute_batch(
        &self,
        schedule: &ScheduledMatrix,
        b: &[Vec<f32>],
    ) -> (Vec<Vec<f32>>, ExecutionReport) {
        assert!(!b.is_empty(), "batch must contain at least one vector");
        let mut outputs = Vec::with_capacity(b.len());
        let mut combined: Option<ExecutionReport> = None;
        for x in b {
            let run = self.execute(schedule, x);
            outputs.push(run.output);
            combined = Some(match combined {
                None => run.report,
                Some(mut acc) => {
                    acc.cycles += run.report.cycles;
                    acc.nnz_processed += run.report.nnz_processed;
                    acc.busy_unit_cycles += run.report.busy_unit_cycles;
                    acc.stall_cycles += run.report.stall_cycles;
                    acc.multiplies += run.report.multiplies;
                    acc.additions += run.report.additions;
                    acc.traffic = acc.traffic.combined(&run.report.traffic);
                    acc
                }
            });
        }
        (outputs, combined.expect("batch is non-empty"))
    }

    /// Memory-traffic model for one SpMV over `schedule` (§3.3 "Streaming
    /// the Inputs" and §4's Buffer Filler pipeline):
    ///
    /// * off-chip reads — the dense `M_sch`/`Col_sch` stream (two 32-bit
    ///   words per cell, empty cells included: that waste is the utilization
    ///   loss) plus the packed `Row_sch` indices and the input vector;
    /// * on-chip — double-buffer writes/reads in the Buffer Filler plus one
    ///   vector-element read per non-zero;
    /// * off-chip writes — the output vector.
    fn traffic(&self, schedule: &ScheduledMatrix) -> MemoryTraffic {
        let l = schedule.length() as u64;
        let cells = l * schedule.total_colors();
        let row_bits = u64::from(log2_ceil(schedule.length()));
        let row_words = (cells * row_bits).div_ceil(32);
        let stream_words = 2 * cells + row_words;
        let vector_words = schedule.cols() as u64;
        let nnz = schedule.nnz() as u64;
        MemoryTraffic {
            off_chip_reads: stream_words + vector_words,
            off_chip_writes: schedule.rows() as u64,
            // Buffer Filler: write the partition into on-chip memory, read
            // it back out, plus one vector read per multiply.
            on_chip_reads: stream_words + nnz,
            on_chip_writes: stream_words + vector_words,
        }
    }
}

impl Default for Gust {
    /// A length-256 GUST with the paper's defaults.
    fn default() -> Self {
        Self::new(GustConfig::new(256))
    }
}

/// Convenience: run all three scheduling policies of Fig. 7/8 on one matrix.
///
/// Returns `(naive, ec, ec_lb)` runs for the same `x`.
#[must_use]
pub fn run_all_policies(
    matrix: &gust_sparse::CsrMatrix,
    x: &[f32],
    length: usize,
) -> (GustRun, GustRun, GustRun) {
    let mk = |policy| {
        let gust = Gust::new(GustConfig::new(length).with_policy(policy));
        gust.spmv(matrix, x)
    };
    (
        mk(SchedulingPolicy::Naive),
        mk(SchedulingPolicy::EdgeColoring),
        mk(SchedulingPolicy::EdgeColoringLb),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use gust_sparse::prelude::*;

    fn random_x(n: usize, seed: u64) -> Vec<f32> {
        // Simple deterministic pseudo-random vector.
        (0..n)
            .map(|i| {
                let h = (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ seed;
                ((h % 1000) as f32) / 500.0 - 1.0
            })
            .collect()
    }

    #[test]
    fn output_matches_reference_for_all_policies() {
        let m = CsrMatrix::from(&gen::uniform(50, 60, 400, 11));
        let x = random_x(60, 1);
        let expected = reference_spmv(&m, &x);
        let (naive, ec, lb) = run_all_policies(&m, &x, 8);
        assert_vectors_close(&naive.output, &expected, 1e-4);
        assert_vectors_close(&ec.output, &expected, 1e-4);
        assert_vectors_close(&lb.output, &expected, 1e-4);
    }

    #[test]
    fn cycles_are_colors_plus_two() {
        let m = CsrMatrix::from(&gen::uniform(32, 32, 200, 3));
        let gust = Gust::new(GustConfig::new(8));
        let s = gust.schedule(&m);
        let run = gust.execute(&s, &random_x(32, 2));
        assert_eq!(run.report.cycles, s.total_colors() + 2);
    }

    #[test]
    fn utilization_equals_nnz_over_lanes_times_cycles() {
        let m = CsrMatrix::from(&gen::uniform(64, 64, 500, 4));
        let gust = Gust::new(GustConfig::new(16));
        let run = gust.spmv(&m, &random_x(64, 3));
        // busy = 2*nnz (mult + add); units = 2l.
        let expected = 500.0 / (16.0 * run.report.cycles as f64);
        assert!((run.report.utilization() - expected).abs() < 1e-12);
    }

    #[test]
    fn schedule_reuse_across_vectors() {
        let m = CsrMatrix::from(&gen::banded(40, 40, 3, 150, 5));
        let gust = Gust::new(GustConfig::new(8));
        let s = gust.schedule(&m);
        for seed in 0..4 {
            let x = random_x(40, seed);
            let run = gust.execute(&s, &x);
            assert_vectors_close(&run.output, &reference_spmv(&m, &x), 1e-4);
        }
    }

    #[test]
    fn load_balanced_output_is_correctly_unpermuted() {
        // Highly skewed rows force a non-trivial permutation.
        let m = CsrMatrix::from(&gen::power_law(64, 64, 600, 1.6, 6));
        let x = random_x(64, 7);
        let gust = Gust::new(GustConfig::new(8)); // EC/LB default
        let run = gust.spmv(&m, &x);
        assert_vectors_close(&run.output, &reference_spmv(&m, &x), 1e-4);
    }

    #[test]
    fn empty_rows_produce_zero_outputs() {
        let coo = CooMatrix::from_triplets(6, 6, vec![(0, 0, 2.0), (5, 5, 3.0)]).unwrap();
        let m = CsrMatrix::from(&coo);
        let run = Gust::new(GustConfig::new(4)).spmv(&m, &[1.0; 6]);
        assert_eq!(run.output, vec![2.0, 0.0, 0.0, 0.0, 0.0, 3.0]);
    }

    #[test]
    fn rectangular_matrices_work() {
        let m = CsrMatrix::from(&gen::uniform(20, 100, 300, 8));
        let x = random_x(100, 9);
        let run = Gust::new(GustConfig::new(8)).spmv(&m, &x);
        assert_vectors_close(&run.output, &reference_spmv(&m, &x), 1e-4);
    }

    #[test]
    fn naive_reports_stalls_ec_does_not() {
        let m = CsrMatrix::from(&gen::uniform(32, 32, 512, 9));
        let x = random_x(32, 10);
        let (naive, ec, _) = run_all_policies(&m, &x, 8);
        assert!(naive.report.stall_cycles > 0);
        assert_eq!(ec.report.stall_cycles, 0);
        assert!(naive.report.cycles >= ec.report.cycles);
    }

    #[test]
    fn execute_batch_matches_per_vector_runs() {
        let m = CsrMatrix::from(&gen::uniform(48, 48, 300, 12));
        let gust = Gust::new(GustConfig::new(8));
        let schedule = gust.schedule(&m);
        let batch: Vec<Vec<f32>> = (0..4).map(|s| random_x(48, s)).collect();
        let (outputs, report) = gust.execute_batch(&schedule, &batch);
        let mut cycles = 0u64;
        for (x, out) in batch.iter().zip(&outputs) {
            let single = gust.execute(&schedule, x);
            assert_eq!(out, &single.output);
            cycles += single.report.cycles;
        }
        assert_eq!(report.cycles, cycles);
        assert_eq!(report.nnz_processed, 4 * 300);
    }

    #[test]
    fn update_values_reuses_the_coloring() {
        // Same pattern, new values (the Jacobian/Hessian case of §3.3).
        let coo_a = gen::uniform(40, 40, 250, 13);
        let m_a = CsrMatrix::from(&coo_a);
        // Scale all values: same sparsity, different numbers.
        let coo_b =
            CooMatrix::from_triplets(40, 40, coo_a.iter().map(|(r, c, v)| (r, c, v * 3.5 + 1.0)))
                .unwrap();
        let m_b = CsrMatrix::from(&coo_b);

        let gust = Gust::new(GustConfig::new(8));
        let mut schedule = gust.schedule(&m_a);
        let colors_before = schedule.total_colors();
        schedule.update_values(&m_b);
        assert_eq!(schedule.total_colors(), colors_before, "coloring unchanged");
        schedule.validate_against(&m_b);
        let x = random_x(40, 4);
        let run = gust.execute(&schedule, &x);
        assert_vectors_close(&run.output, &reference_spmv(&m_b, &x), 1e-4);
    }

    #[test]
    #[should_panic(expected = "sparsity pattern mismatch")]
    fn update_values_rejects_different_pattern() {
        let m_a = CsrMatrix::from(&gen::uniform(20, 20, 60, 14));
        let m_b = CsrMatrix::from(&gen::uniform(20, 20, 60, 15));
        let mut schedule = Gust::new(GustConfig::new(4)).schedule(&m_a);
        schedule.update_values(&m_b);
    }

    #[test]
    fn traffic_scales_with_schedule_size() {
        let m = CsrMatrix::from(&gen::uniform(64, 64, 256, 10));
        let gust = Gust::new(GustConfig::new(8));
        let s = gust.schedule(&m);
        let run = gust.execute(&s, &random_x(64, 11));
        let cells = 8 * s.total_colors();
        assert!(run.report.traffic.off_chip_reads >= 2 * cells);
        assert_eq!(run.report.traffic.off_chip_writes, 64);
    }

    #[test]
    #[should_panic(expected = "different GUST length")]
    fn mismatched_schedule_length_panics() {
        let m = CsrMatrix::identity(8);
        let s = Gust::new(GustConfig::new(4)).schedule(&m);
        let _ = Gust::new(GustConfig::new(8)).execute(&s, &[1.0; 8]);
    }
}
