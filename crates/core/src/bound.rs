//! The statistical bound of §3.4 (Eqs. 1–11).
//!
//! For an `N × N` matrix with i.i.d. non-zero probability `p` and a
//! length-`l` GUST, the color count of a window is the maximum of `2l`
//! approximately-normal degree variables (Eq. 5), giving
//!
//! * `E[C] ≤ Np + sqrt(2·Np(1−p)·ln(2l))` (Eq. 9),
//! * `E[exe] = (N/l)·E[C] + 2` cycles (Eq. 10),
//! * `E[util] = 1 / (1 + sqrt(2(1−p)·ln(2l)/(Np)))` (Eq. 11).
//!
//! The `bound` bench validates these against measured schedules; the paper
//! derives them to argue utilization stays high and roughly
//! density-independent once rows average ≥ 10 non-zeros.

/// Expected (upper bound on the) number of colors per window, Eq. 9.
///
/// # Panics
///
/// Panics unless `0 < p < 1`, `n > 0`, `l > 0`.
#[must_use]
pub fn expected_colors(n: usize, p: f64, l: usize) -> f64 {
    validate(n, p, l);
    let np = n as f64 * p;
    np + (2.0 * np * (1.0 - p) * (2.0 * l as f64).ln()).sqrt()
}

/// Expected execution time in cycles, Eq. 10: `(N/l)·E[C] + 2`.
///
/// # Panics
///
/// Panics unless `0 < p < 1`, `n > 0`, `l > 0`.
#[must_use]
pub fn expected_execution_cycles(n: usize, p: f64, l: usize) -> f64 {
    validate(n, p, l);
    (n as f64 / l as f64) * expected_colors(n, p, l) + 2.0
}

/// Expected hardware utilization, Eq. 11:
/// `1 / (1 + sqrt(2(1−p)·ln(2l)/(Np)))`.
///
/// # Panics
///
/// Panics unless `0 < p < 1`, `n > 0`, `l > 0`.
#[must_use]
pub fn expected_utilization(n: usize, p: f64, l: usize) -> f64 {
    validate(n, p, l);
    let np = n as f64 * p;
    1.0 / (1.0 + (2.0 * (1.0 - p) * (2.0 * l as f64).ln() / np).sqrt())
}

/// Whether the normal approximation behind the bound applies: the paper
/// assumes `N > 9(1−p)/p`, i.e. an average of at least ~10 non-zeros per
/// row (Eq. 3's Central Limit Theorem step).
#[must_use]
pub fn clt_applies(n: usize, p: f64) -> bool {
    p > 0.0 && p < 1.0 && (n as f64) > 9.0 * (1.0 - p) / p
}

fn validate(n: usize, p: f64, l: usize) {
    assert!(n > 0, "matrix dimension must be non-zero");
    assert!(l > 0, "GUST length must be non-zero");
    assert!(
        p > 0.0 && p < 1.0 && p.is_finite(),
        "density must lie strictly between 0 and 1, got {p}"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expected_colors_exceeds_mean_degree() {
        // The max of 2l normals sits above the mean.
        let c = expected_colors(16_384, 1.0e-3, 256);
        let mean = 16_384.0 * 1.0e-3;
        assert!(c > mean);
        assert!(c < mean * 3.0, "bound should stay near the mean, got {c}");
    }

    #[test]
    fn execution_cycles_include_pipeline_depth() {
        let n = 1024;
        let p = 0.01;
        let l = 64;
        let exe = expected_execution_cycles(n, p, l);
        let per_window = expected_colors(n, p, l);
        assert!((exe - (n as f64 / l as f64) * per_window - 2.0).abs() < 1e-9);
    }

    #[test]
    fn utilization_increases_with_density() {
        // §5.4: effectiveness is density-independent *asymptotically*; the
        // bound itself rises monotonically with p toward 1.
        let l = 256;
        let n = 16_384;
        let u1 = expected_utilization(n, 1.0e-4, l);
        let u2 = expected_utilization(n, 1.0e-3, l);
        let u3 = expected_utilization(n, 1.0e-2, l);
        assert!(u1 < u2 && u2 < u3);
        assert!(u3 < 1.0);
    }

    #[test]
    fn utilization_decreases_with_length() {
        // Bigger l -> more independent maxima -> more slack.
        let n = 16_384;
        let p = 1.0e-3;
        assert!(expected_utilization(n, p, 512) < expected_utilization(n, p, 64));
    }

    #[test]
    fn paper_scale_utilization_is_high() {
        // At the paper's operating point (N = 16 384, l = 256), densities
        // ≥ 1e-3 give ≥ 50% expected utilization — consistent with Fig. 7's
        // measured 33.67% average over much sparser real matrices.
        let u = expected_utilization(16_384, 1.0e-3, 256);
        assert!(u > 0.5, "got {u}");
    }

    #[test]
    fn utilization_formula_consistent_with_cycles() {
        // E[util] ≈ (N²p/l) / E[exe] (Eq. 11's derivation), up to the +2.
        let (n, p, l) = (8_192, 2.0e-3, 128);
        let util = expected_utilization(n, p, l);
        let via_cycles = (n as f64 * n as f64 * p / l as f64) / expected_execution_cycles(n, p, l);
        assert!((util - via_cycles).abs() < 0.01, "{util} vs {via_cycles}");
    }

    #[test]
    fn clt_threshold() {
        assert!(clt_applies(16_384, 1.0e-3)); // ~16 nnz/row
        assert!(!clt_applies(1_000, 1.0e-3)); // 1 nnz/row
    }

    #[test]
    #[should_panic(expected = "density must lie strictly between 0 and 1")]
    fn invalid_density_panics() {
        let _ = expected_colors(100, 1.5, 4);
    }
}
