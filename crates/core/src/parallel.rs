//! Parallel GUST arrangement: `k` length-`l` engines (§5.5).
//!
//! The crossbar's area grows quadratically and its power superlinearly with
//! `l` (Table 5), so instead of one long GUST the paper proposes `k`
//! parallel short ones. Windows (row sets) are independent, so they
//! distribute naturally; the schedule for a length-`l` GUST is reused
//! verbatim. The costs the paper predicts — reduced cross-row/column
//! sharing and imperfect work division — fall out of this model and are
//! quantified by the `ablation` bench.

use crate::config::GustConfig;
use crate::engine::{Gust, GustRun};
use crate::schedule::scheduled::ScheduledMatrix;
use gust_sim::ExecutionReport;

/// How windows are placed onto the `k` engines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WindowAssignment {
    /// Window `w` goes to engine `w mod k` (no lookahead — what simple
    /// hardware would do).
    #[default]
    RoundRobin,
    /// Longest-processing-time first: windows sorted by color count, each
    /// placed on the least-loaded engine. An upper bound on how much smart
    /// placement can recover.
    LeastLoaded,
}

/// `k` independent length-`l` GUST engines working one SpMV.
#[derive(Debug, Clone)]
pub struct ParallelGust {
    config: GustConfig,
    k: usize,
    assignment: WindowAssignment,
}

/// Result of a parallel run.
#[derive(Debug, Clone, PartialEq)]
pub struct ParallelRun {
    /// The computed output vector.
    pub output: Vec<f32>,
    /// Aggregate report: cycles = the slowest engine (the makespan), unit
    /// counts summed over all `k` engines.
    pub report: ExecutionReport,
    /// Streaming cycles each engine spent (before the +2 pipeline depth).
    pub per_engine_cycles: Vec<u64>,
}

impl ParallelGust {
    /// Creates `k` parallel engines of the given per-engine configuration.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    #[must_use]
    pub fn new(config: GustConfig, k: usize) -> Self {
        assert!(k > 0, "need at least one engine");
        Self {
            config,
            k,
            assignment: WindowAssignment::default(),
        }
    }

    /// Selects the window-placement strategy.
    #[must_use]
    pub fn with_assignment(mut self, assignment: WindowAssignment) -> Self {
        self.assignment = assignment;
        self
    }

    /// Engine count `k`.
    #[must_use]
    pub fn engines(&self) -> usize {
        self.k
    }

    /// Per-engine configuration.
    #[must_use]
    pub fn config(&self) -> &GustConfig {
        &self.config
    }

    /// Total arithmetic units across all engines: `k × 2l`.
    #[must_use]
    pub fn arithmetic_units(&self) -> usize {
        self.k * self.config.arithmetic_units()
    }

    /// Schedules the matrix once (identical to the single-engine schedule —
    /// §5.5: "the Edge-Coloring schedule would not need to change"). The
    /// flat format and preprocessing parallelism of
    /// [`crate::schedule::Scheduler`] apply unchanged; set
    /// [`crate::GustConfig::with_parallelism`] on this arrangement's config
    /// to control the scheduling workers.
    #[must_use]
    pub fn schedule(&self, matrix: &gust_sparse::CsrMatrix) -> ScheduledMatrix {
        Gust::new(self.config.clone()).schedule(matrix)
    }

    /// Executes one SpMV across the `k` engines.
    ///
    /// The output is identical to the single-engine run (windows write
    /// disjoint rows); only the timing differs: the makespan is the busiest
    /// engine's streaming cycles plus the pipeline depth.
    ///
    /// # Panics
    ///
    /// Panics if the schedule's length mismatches the configuration or
    /// `x.len() != schedule.cols()`.
    #[must_use]
    pub fn execute(&self, schedule: &ScheduledMatrix, x: &[f32]) -> ParallelRun {
        // Functional result comes from the (equivalent) sequential engine.
        let single: GustRun = Gust::new(self.config.clone()).execute(schedule, x);

        let per_engine = self.assign_windows(schedule);
        let makespan = per_engine.iter().copied().max().unwrap_or(0) + 2;

        let mut report = single.report.clone();
        report.design = format!("{}x{}", self.k, report.design);
        report.cycles = makespan;
        report.arithmetic_units = self.arithmetic_units();
        ParallelRun {
            output: single.output,
            report,
            per_engine_cycles: per_engine,
        }
    }

    /// Executes a whole column-major panel of `batch` right-hand sides
    /// across the `k` engines (see [`crate::Gust::execute_batch`] for the
    /// panel layout and the one-pass batched kernel).
    ///
    /// The functional result is the single-engine batched run; timing
    /// models each engine streaming its window assignment once per
    /// register pass, i.e. the makespan scales with `batch` exactly as the
    /// sequential batched report does.
    ///
    /// # Panics
    ///
    /// As [`crate::Gust::execute_batch`].
    #[must_use]
    pub fn execute_batch(
        &self,
        schedule: &ScheduledMatrix,
        b: &[f32],
        batch: usize,
    ) -> (Vec<f32>, ExecutionReport) {
        let (output, mut report) = Gust::new(self.config.clone()).execute_batch(schedule, b, batch);
        // Every engine repeats its window set once per right-hand side, so
        // the batched makespan is the single-vector makespan × batch.
        let per_engine = self.assign_windows(schedule);
        let makespan = per_engine.iter().copied().max().unwrap_or(0) + 2;
        report.design = format!("{}x{}", self.k, report.design);
        report.arithmetic_units = self.arithmetic_units();
        report.cycles = makespan * batch as u64;
        (output, report)
    }

    /// Streaming cycles each engine carries under the configured window
    /// assignment (before the +2 pipeline depth).
    fn assign_windows(&self, schedule: &ScheduledMatrix) -> Vec<u64> {
        let colors: Vec<u64> = schedule
            .windows()
            .iter()
            .map(|w| u64::from(w.colors()))
            .collect();
        let mut per_engine = vec![0u64; self.k];
        match self.assignment {
            WindowAssignment::RoundRobin => {
                for (w, &c) in colors.iter().enumerate() {
                    per_engine[w % self.k] += c;
                }
            }
            WindowAssignment::LeastLoaded => {
                let mut order: Vec<usize> = (0..colors.len()).collect();
                order.sort_unstable_by_key(|&w| std::cmp::Reverse(colors[w]));
                for w in order {
                    let engine = per_engine
                        .iter()
                        .enumerate()
                        .min_by_key(|&(_, &load)| load)
                        .map(|(i, _)| i)
                        .expect("k > 0");
                    per_engine[engine] += colors[w];
                }
            }
        }
        per_engine
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GustConfig;
    use gust_sparse::prelude::*;

    fn setup(seed: u64) -> (CsrMatrix, ScheduledMatrix, Vec<f32>) {
        let m = CsrMatrix::from(&gen::uniform(64, 64, 512, seed));
        let schedule = Gust::new(GustConfig::new(8)).schedule(&m);
        let x: Vec<f32> = (0..64).map(|i| (i % 7) as f32 - 3.0).collect();
        (m, schedule, x)
    }

    #[test]
    fn output_matches_single_engine() {
        let (m, schedule, x) = setup(1);
        let parallel = ParallelGust::new(GustConfig::new(8), 4);
        let run = parallel.execute(&schedule, &x);
        assert_vectors_close(&run.output, &reference_spmv(&m, &x), 1e-4);
    }

    #[test]
    fn parallelism_reduces_makespan() {
        let (_, schedule, x) = setup(2);
        let single = ParallelGust::new(GustConfig::new(8), 1).execute(&schedule, &x);
        let quad = ParallelGust::new(GustConfig::new(8), 4).execute(&schedule, &x);
        assert!(quad.report.cycles < single.report.cycles);
        // But not below the perfect split (total/k + 2).
        let total = schedule.total_colors();
        assert!(quad.report.cycles >= total / 4 + 2);
    }

    #[test]
    fn k1_equals_sequential_cycles() {
        let (_, schedule, x) = setup(3);
        let run = ParallelGust::new(GustConfig::new(8), 1).execute(&schedule, &x);
        assert_eq!(run.report.cycles, schedule.total_colors() + 2);
    }

    #[test]
    fn least_loaded_never_slower_than_round_robin() {
        let (_, schedule, x) = setup(4);
        for k in [2, 3, 4] {
            let rr = ParallelGust::new(GustConfig::new(8), k).execute(&schedule, &x);
            let ll = ParallelGust::new(GustConfig::new(8), k)
                .with_assignment(WindowAssignment::LeastLoaded)
                .execute(&schedule, &x);
            assert!(ll.report.cycles <= rr.report.cycles, "k = {k}");
        }
    }

    #[test]
    fn per_engine_cycles_sum_to_total() {
        let (_, schedule, x) = setup(5);
        let run = ParallelGust::new(GustConfig::new(8), 3).execute(&schedule, &x);
        let sum: u64 = run.per_engine_cycles.iter().sum();
        assert_eq!(sum, schedule.total_colors());
    }

    #[test]
    fn batched_run_matches_sequential_batched_kernel() {
        let (_, schedule, x) = setup(7);
        let batch = 5usize;
        let mut panel = Vec::with_capacity(64 * batch);
        for j in 0..batch {
            panel.extend(x.iter().map(|&v| v + j as f32));
        }
        let parallel = ParallelGust::new(GustConfig::new(8), 3);
        let (output, report) = parallel.execute_batch(&schedule, &panel, batch);
        let (expected, _) = Gust::new(GustConfig::new(8)).execute_batch(&schedule, &panel, batch);
        assert_eq!(
            output, expected,
            "functional result is engine-count invariant"
        );
        // Makespan scales with the batch and with engine count.
        let single = parallel.execute(&schedule, &x);
        assert_eq!(report.cycles, single.report.cycles * batch as u64);
        assert!(report.design.starts_with("3x"));
        assert_eq!(report.arithmetic_units, 3 * 16);
    }

    #[test]
    fn report_counts_all_engines_units() {
        let (_, schedule, x) = setup(6);
        let run = ParallelGust::new(GustConfig::new(8), 4).execute(&schedule, &x);
        assert_eq!(run.report.arithmetic_units, 4 * 16);
        assert!(run.report.design.starts_with("4x"));
    }
}
