//! Parallel GUST arrangement: `k` length-`l` engines (§5.5) — plus the
//! host-side persistent worker [`Pool`] the engine and scheduler fan
//! work out on.
//!
//! The crossbar's area grows quadratically and its power superlinearly with
//! `l` (Table 5), so instead of one long GUST the paper proposes `k`
//! parallel short ones. Windows (row sets) are independent, so they
//! distribute naturally; the schedule for a length-`l` GUST is reused
//! verbatim. The costs the paper predicts — reduced cross-row/column
//! sharing and imperfect work division — fall out of this model and are
//! quantified by the `ablation` bench.

pub use pool::Pool;

use crate::config::GustConfig;
use crate::engine::{Gust, GustRun};
use crate::schedule::scheduled::ScheduledMatrix;
use gust_sim::ExecutionReport;

/// How windows are placed onto the `k` engines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WindowAssignment {
    /// Window `w` goes to engine `w mod k` (no lookahead — what simple
    /// hardware would do).
    #[default]
    RoundRobin,
    /// Longest-processing-time first: windows sorted by color count, each
    /// placed on the least-loaded engine. An upper bound on how much smart
    /// placement can recover.
    LeastLoaded,
}

/// `k` independent length-`l` GUST engines working one SpMV.
#[derive(Debug, Clone)]
pub struct ParallelGust {
    config: GustConfig,
    k: usize,
    assignment: WindowAssignment,
}

/// Result of a parallel run.
#[derive(Debug, Clone, PartialEq)]
pub struct ParallelRun {
    /// The computed output vector.
    pub output: Vec<f32>,
    /// Aggregate report: cycles = the slowest engine (the makespan), unit
    /// counts summed over all `k` engines.
    pub report: ExecutionReport,
    /// Streaming cycles each engine spent (before the +2 pipeline depth).
    pub per_engine_cycles: Vec<u64>,
}

impl ParallelGust {
    /// Creates `k` parallel engines of the given per-engine configuration.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    #[must_use]
    pub fn new(config: GustConfig, k: usize) -> Self {
        assert!(k > 0, "need at least one engine");
        Self {
            config,
            k,
            assignment: WindowAssignment::default(),
        }
    }

    /// Selects the window-placement strategy.
    #[must_use]
    pub fn with_assignment(mut self, assignment: WindowAssignment) -> Self {
        self.assignment = assignment;
        self
    }

    /// Engine count `k`.
    #[must_use]
    pub fn engines(&self) -> usize {
        self.k
    }

    /// Per-engine configuration.
    #[must_use]
    pub fn config(&self) -> &GustConfig {
        &self.config
    }

    /// Total arithmetic units across all engines: `k × 2l`.
    #[must_use]
    pub fn arithmetic_units(&self) -> usize {
        self.k * self.config.arithmetic_units()
    }

    /// Schedules the matrix once (identical to the single-engine schedule —
    /// §5.5: "the Edge-Coloring schedule would not need to change"). The
    /// flat format and preprocessing parallelism of
    /// [`crate::schedule::Scheduler`] apply unchanged; set
    /// [`crate::GustConfig::with_parallelism`] on this arrangement's config
    /// to control the scheduling workers.
    #[must_use]
    pub fn schedule(&self, matrix: &gust_sparse::CsrMatrix) -> ScheduledMatrix {
        Gust::new(self.config.clone()).schedule(matrix)
    }

    /// Executes one SpMV across the `k` engines.
    ///
    /// The output is identical to the single-engine run (windows write
    /// disjoint rows); only the timing differs: the makespan is the busiest
    /// engine's streaming cycles plus the pipeline depth.
    ///
    /// # Panics
    ///
    /// Panics if the schedule's length mismatches the configuration or
    /// `x.len() != schedule.cols()`.
    #[must_use]
    pub fn execute(&self, schedule: &ScheduledMatrix, x: &[f32]) -> ParallelRun {
        // Functional result comes from the (equivalent) sequential engine.
        let single: GustRun = Gust::new(self.config.clone()).execute(schedule, x);

        let per_engine = self.assign_windows(schedule);
        let makespan = per_engine.iter().copied().max().unwrap_or(0) + 2;

        let mut report = single.report.clone();
        report.design = format!("{}x{}", self.k, report.design);
        report.cycles = makespan;
        report.arithmetic_units = self.arithmetic_units();
        ParallelRun {
            output: single.output,
            report,
            per_engine_cycles: per_engine,
        }
    }

    /// Executes a whole column-major panel of `batch` right-hand sides
    /// across the `k` engines (see [`crate::Gust::execute_batch`] for the
    /// panel layout and the one-pass batched kernel).
    ///
    /// The functional result is the single-engine batched run; timing
    /// models each engine streaming its window assignment once per
    /// register pass, i.e. the makespan scales with `batch` exactly as the
    /// sequential batched report does.
    ///
    /// # Panics
    ///
    /// As [`crate::Gust::execute_batch`].
    #[must_use]
    pub fn execute_batch(
        &self,
        schedule: &ScheduledMatrix,
        b: &[f32],
        batch: usize,
    ) -> (Vec<f32>, ExecutionReport) {
        let (output, mut report) = Gust::new(self.config.clone()).execute_batch(schedule, b, batch);
        // Every engine repeats its window set once per right-hand side, so
        // the batched makespan is the single-vector makespan × batch.
        let per_engine = self.assign_windows(schedule);
        let makespan = per_engine.iter().copied().max().unwrap_or(0) + 2;
        report.design = format!("{}x{}", self.k, report.design);
        report.arithmetic_units = self.arithmetic_units();
        report.cycles = makespan * batch as u64;
        (output, report)
    }

    /// Streaming cycles each engine carries under the configured window
    /// assignment (before the +2 pipeline depth).
    fn assign_windows(&self, schedule: &ScheduledMatrix) -> Vec<u64> {
        let colors: Vec<u64> = schedule
            .windows()
            .iter()
            .map(|w| u64::from(w.colors()))
            .collect();
        let mut per_engine = vec![0u64; self.k];
        match self.assignment {
            WindowAssignment::RoundRobin => {
                for (w, &c) in colors.iter().enumerate() {
                    per_engine[w % self.k] += c;
                }
            }
            WindowAssignment::LeastLoaded => {
                let mut order: Vec<usize> = (0..colors.len()).collect();
                order.sort_unstable_by_key(|&w| std::cmp::Reverse(colors[w]));
                for w in order {
                    let engine = per_engine
                        .iter()
                        .enumerate()
                        .min_by_key(|&(_, &load)| load)
                        .map(|(i, _)| i)
                        .expect("k > 0");
                    per_engine[engine] += colors[w];
                }
            }
        }
        per_engine
    }
}

mod pool {
    //! A lazily-spawned, process-wide worker pool.
    //!
    //! PR 1–3 fanned per-call work (schedule windows, batched-execution
    //! register blocks) out over `std::thread::scope`, paying thread
    //! spawn + join on *every* call — noise for one SpMV, a real tax for
    //! iterative solvers that call [`crate::Gust::execute_batch`]
    //! thousands of times against one schedule. [`Pool`] keeps the
    //! workers alive across calls: threads are spawned on first demand
    //! (and grown if a later caller asks for more), then parked on a
    //! condition variable between runs, so repeated pool-backed calls
    //! spawn no new threads after warm-up (`tests` pin this via
    //! [`Pool::threads_spawned`]).
    //!
    //! # How a run works
    //!
    //! [`Pool::run`] executes `f(0..tasks)` with up to `workers` threads:
    //! the caller hands `workers - 1` *job tickets* to the pool and then
    //! drains the shared atomic task cursor itself, so the calling thread
    //! always participates and a `workers == 1` run never touches the
    //! pool at all. Each ticket-holding worker drains the same cursor
    //! until the tasks run out. Task distribution is dynamic, so a few
    //! heavy tasks cannot serialize the run; callers that need
    //! deterministic output make each task write to its own slot, which
    //! keeps results independent of which thread ran what.
    //!
    //! # Safety
    //!
    //! This module is the one place in the crate besides `kernels` that
    //! uses `unsafe`: job tickets carry a type-erased pointer to a
    //! [`RunCtx`] on the **caller's stack**. The safety argument is a
    //! strict completion protocol: every ticket handed to the pool
    //! decrements the context's `outstanding` counter exactly once, after
    //! its last access to the context, and [`Pool::run`] does not return
    //! (or unwind) until `outstanding` reaches zero — so no worker can
    //! touch the context after the caller's frame dies. Worker panics are
    //! caught, recorded in the context and re-raised on the caller.

    #![allow(unsafe_code)]

    use std::collections::VecDeque;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use std::sync::{Condvar, Mutex, OnceLock};

    /// Hard ceiling on pool threads, far above any sane
    /// `with_parallelism` setting — a runaway-config backstop, not a
    /// tuning knob.
    const MAX_THREADS: usize = 512;

    /// The shared state of one run, living on the caller's stack for the
    /// duration of [`Pool::run`].
    struct RunCtx {
        /// Next task index to hand out.
        next: AtomicUsize,
        /// One past the last task index.
        tasks: usize,
        /// The caller's closure, type-erased (`*const F`).
        f: *const (),
        /// Monomorphized trampoline that re-types `f` and calls it.
        /// SAFETY (of the fn-pointer type): callers must pass the same
        /// `*const F` that `run` erased into `f`, still live — upheld
        /// because only `drain_and_retire` calls it, before retiring
        /// the ticket that keeps the run (and `f`) alive.
        call: unsafe fn(*const (), usize),
        /// Job tickets handed to the pool that have not yet finished.
        outstanding: Mutex<usize>,
        /// Signalled when `outstanding` reaches zero.
        finished: Condvar,
        /// Set if any task panicked (on any thread).
        panicked: AtomicBool,
    }

    /// A type-erased job ticket: one pool worker drains the run's task
    /// cursor. The raw pointer is valid until the ticket decrements
    /// `outstanding` (see the module safety argument).
    struct Job(*const RunCtx);
    // SAFETY: the pointee is Sync (atomics, mutex, condvar, and a
    // `*const F` only dereferenced through the Sync-bounded trampoline),
    // and its lifetime is enforced by the completion protocol above.
    unsafe impl Send for Job {}

    /// Re-types the erased closure pointer and invokes it for `task`.
    ///
    /// # Safety
    ///
    /// `f` must be the `*const F` produced by erasing the `&F` of the
    /// `run` invocation this trampoline was monomorphized for, and that
    /// reference must still be live (i.e. `run` has not returned).
    unsafe fn trampoline<F: Fn(usize) + Sync>(f: *const (), task: usize) {
        // SAFETY: `f` is the `&F` that `run` erased; `run` keeps it alive
        // until every ticket completed.
        let f = unsafe { &*f.cast::<F>() };
        f(task);
    }

    /// Drains the run's task cursor, then retires the ticket. Called on
    /// pool workers (and, sans ticket accounting, inlined by the caller).
    ///
    /// # Safety
    ///
    /// `ctx` must point to a live [`RunCtx`] whose `outstanding` count
    /// covers this call.
    unsafe fn drain_and_retire(ctx: *const RunCtx) {
        // SAFETY: liveness guaranteed by the caller (completion protocol).
        let ctx = unsafe { &*ctx };
        loop {
            let task = ctx.next.fetch_add(1, Ordering::Relaxed);
            if task >= ctx.tasks {
                break;
            }
            // SAFETY: `call`/`f` pair was erased from a live `&F`.
            if catch_unwind(AssertUnwindSafe(|| unsafe { (ctx.call)(ctx.f, task) })).is_err() {
                ctx.panicked.store(true, Ordering::SeqCst);
                Pool::global().panics.fetch_add(1, Ordering::SeqCst);
            }
        }
        let mut outstanding = ctx.outstanding.lock().expect("pool run mutex");
        *outstanding -= 1;
        if *outstanding == 0 {
            ctx.finished.notify_all();
        }
        // `ctx` must not be touched past this point.
    }

    std::thread_local! {
        /// Whether the current thread is a pool worker. Nested
        /// [`Pool::run`] calls from inside a task run inline instead of
        /// queueing tickets they would then deadlock waiting on.
        static IS_POOL_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
    }

    /// The persistent worker pool. Use [`Pool::global`]; the engine and
    /// scheduler share one pool so a process never holds more parked
    /// threads than its widest run asked for.
    pub struct Pool {
        queue: Mutex<VecDeque<Job>>,
        work_available: Condvar,
        /// Worker threads alive (spawned lazily, never reaped).
        threads: AtomicUsize,
        /// Total spawns ever — the warm-up assertion counter.
        spawned: AtomicUsize,
        /// Task panics caught and contained by the pool's recovery
        /// machinery (see [`Pool::panics_observed`]).
        panics: AtomicUsize,
    }

    impl Pool {
        /// The process-wide pool.
        #[must_use]
        pub fn global() -> &'static Pool {
            static GLOBAL: OnceLock<Pool> = OnceLock::new();
            GLOBAL.get_or_init(|| Pool {
                queue: Mutex::new(VecDeque::new()),
                work_available: Condvar::new(),
                threads: AtomicUsize::new(0),
                spawned: AtomicUsize::new(0),
                panics: AtomicUsize::new(0),
            })
        }

        /// Worker threads spawned over the pool's lifetime. After a
        /// warm-up call at a given width, further same-width runs leave
        /// this unchanged — the property the persistent pool exists for.
        #[must_use]
        pub fn threads_spawned(&self) -> usize {
            self.spawned.load(Ordering::SeqCst)
        }

        /// Task panics the pool's recovery machinery has caught and
        /// contained over its lifetime — each one a task that died
        /// (organically or via the `worker_panic` fault site) without
        /// taking a worker thread or the process down. The run that
        /// contained the panic still fails (re-raised on its caller);
        /// this counter is the serving runtime's watchdog signal that
        /// recoveries are happening, and lets tests prove *repeated*
        /// injected crashes are each individually contained.
        ///
        /// Inline runs (`workers <= 1`, nested calls) propagate panics
        /// without pool involvement and are not counted.
        #[must_use]
        pub fn panics_observed(&self) -> usize {
            self.panics.load(Ordering::SeqCst)
        }

        /// Runs `f(0)`, `f(1)`, …, `f(tasks - 1)`, using up to `workers`
        /// threads (the caller plus `workers - 1` pool workers). Returns
        /// only after every task completed. `workers <= 1`, `tasks <= 1`
        /// and nested calls from inside a pool task run entirely inline.
        ///
        /// Tasks are handed out dynamically; callers needing
        /// deterministic results should give each task its own output
        /// slot.
        ///
        /// # Panics
        ///
        /// Re-raises (as a panic on the caller) any panic from `f` —
        /// including panics injected by the `worker_panic` fault site
        /// (see [`gust_sparse::faults`]), which fire through the same
        /// catch-and-re-raise path a real task panic takes.
        pub fn run<F: Fn(usize) + Sync>(&self, workers: usize, tasks: usize, f: F) {
            use gust_sparse::faults;
            // The injection sits inside the task body (not around the
            // run) so an injected crash exercises exactly the recovery
            // machinery a real one would: per-task catch_unwind on
            // workers, ticket retirement, and the caller's re-raise.
            self.run_inner(workers, tasks, move |task| {
                faults::check_panic(faults::sites::WORKER_PANIC);
                f(task);
            });
        }

        /// [`Pool::run`] without the fault-injection shim.
        fn run_inner<F: Fn(usize) + Sync>(&self, workers: usize, tasks: usize, f: F) {
            let helpers = workers
                .saturating_sub(1)
                .min(tasks.saturating_sub(1))
                .min(MAX_THREADS);
            if helpers == 0 || IS_POOL_WORKER.with(std::cell::Cell::get) {
                for task in 0..tasks {
                    f(task);
                }
                return;
            }
            self.ensure_threads(helpers);

            let ctx = RunCtx {
                next: AtomicUsize::new(0),
                tasks,
                f: std::ptr::from_ref(&f).cast(),
                call: trampoline::<F>,
                outstanding: Mutex::new(helpers),
                finished: Condvar::new(),
                panicked: AtomicBool::new(false),
            };
            {
                let mut queue = self.queue.lock().expect("pool queue mutex");
                for _ in 0..helpers {
                    queue.push_back(Job(&raw const ctx));
                }
            }
            self.work_available.notify_all();

            // The caller participates: drain the same cursor, but catch a
            // task panic so the frame survives until every ticket retired.
            let caller_result = catch_unwind(AssertUnwindSafe(|| loop {
                let task = ctx.next.fetch_add(1, Ordering::Relaxed);
                if task >= ctx.tasks {
                    break;
                }
                f(task);
            }));

            // Reclaim our tickets that no worker has popped yet: by now
            // the cursor is exhausted (or the caller is unwinding), so a
            // queued ticket would only drain zero tasks — but leaving it
            // queued would block this run's completion behind whatever
            // long tasks *other* concurrent runs have the workers busy
            // with. Each removed ticket is retired here instead of on a
            // worker; a ticket is either popped by a worker or reclaimed,
            // never both, so `outstanding` stays exact.
            {
                let mut queue = self.queue.lock().expect("pool queue mutex");
                let before = queue.len();
                queue.retain(|job| !std::ptr::eq(job.0, &raw const ctx));
                let reclaimed = before - queue.len();
                drop(queue);
                if reclaimed > 0 {
                    let mut outstanding = ctx.outstanding.lock().expect("pool run mutex");
                    *outstanding -= reclaimed;
                }
            }

            let mut outstanding = ctx.outstanding.lock().expect("pool run mutex");
            while *outstanding > 0 {
                outstanding = ctx
                    .finished
                    .wait(outstanding)
                    .expect("pool completion wait");
            }
            drop(outstanding);
            // Every ticket retired; `ctx` is no longer referenced anywhere.
            match caller_result {
                Err(payload) => {
                    // The caller's own task panicked; the catch above
                    // kept the frame alive until every ticket retired,
                    // which is the same containment workers provide.
                    self.panics.fetch_add(1, Ordering::SeqCst);
                    std::panic::resume_unwind(payload)
                }
                Ok(()) if ctx.panicked.load(Ordering::SeqCst) => {
                    panic!("a pool task panicked (see worker backtrace above)")
                }
                Ok(()) => {}
            }
        }

        /// Grows the pool to at least `want` parked workers.
        fn ensure_threads(&self, want: usize) {
            let want = want.min(MAX_THREADS);
            while self.threads.load(Ordering::SeqCst) < want {
                // Racy check-then-spawn is fine: an extra thread parked on
                // the queue is harmless, and `fetch_add` keeps the count
                // honest.
                self.threads.fetch_add(1, Ordering::SeqCst);
                self.spawned.fetch_add(1, Ordering::SeqCst);
                std::thread::Builder::new()
                    .name("gust-pool".into())
                    .spawn(move || {
                        IS_POOL_WORKER.with(|flag| flag.set(true));
                        let pool = Pool::global();
                        loop {
                            let job = {
                                let mut queue = pool.queue.lock().expect("pool queue mutex");
                                loop {
                                    if let Some(job) = queue.pop_front() {
                                        break job;
                                    }
                                    queue =
                                        pool.work_available.wait(queue).expect("pool worker wait");
                                }
                            };
                            // SAFETY: the ticket's context is alive until
                            // this call retires it (completion protocol).
                            unsafe { drain_and_retire(job.0) };
                        }
                    })
                    .expect("spawn gust-pool worker");
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::sync::atomic::{AtomicUsize, Ordering};

        #[test]
        fn runs_every_task_exactly_once() {
            let hits: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
            Pool::global().run(4, hits.len(), |t| {
                hits[t].fetch_add(1, Ordering::SeqCst);
            });
            assert!(hits.iter().all(|h| h.load(Ordering::SeqCst) == 1));
        }

        #[test]
        fn single_worker_runs_inline() {
            let before = Pool::global().threads_spawned();
            let count = AtomicUsize::new(0);
            Pool::global().run(1, 50, |_| {
                count.fetch_add(1, Ordering::SeqCst);
            });
            assert_eq!(count.load(Ordering::SeqCst), 50);
            assert_eq!(
                Pool::global().threads_spawned(),
                before,
                "workers == 1 must not touch the pool"
            );
        }

        #[test]
        fn warm_pool_spawns_no_new_threads() {
            let pool = Pool::global();
            pool.run(3, 16, |_| {}); // warm-up
            let after_warmup = pool.threads_spawned();
            for _ in 0..10 {
                pool.run(3, 16, |_| {});
            }
            assert_eq!(pool.threads_spawned(), after_warmup);
        }

        #[test]
        fn nested_runs_complete_inline() {
            let count = AtomicUsize::new(0);
            Pool::global().run(2, 4, |_| {
                Pool::global().run(2, 4, |_| {
                    count.fetch_add(1, Ordering::SeqCst);
                });
            });
            assert_eq!(count.load(Ordering::SeqCst), 16);
        }

        #[test]
        fn task_panics_propagate_to_the_caller() {
            let result = std::panic::catch_unwind(|| {
                Pool::global().run(3, 8, |t| {
                    assert!(t != 5, "task 5 fails");
                });
            });
            assert!(result.is_err());
            // And the pool still works afterwards.
            let count = AtomicUsize::new(0);
            Pool::global().run(3, 8, |_| {
                count.fetch_add(1, Ordering::SeqCst);
            });
            assert_eq!(count.load(Ordering::SeqCst), 8);
        }

        #[test]
        fn contained_panics_are_counted() {
            let before = Pool::global().panics_observed();
            let result = std::panic::catch_unwind(|| {
                Pool::global().run(3, 8, |t| {
                    assert!(t != 2, "task 2 fails");
                });
            });
            assert!(result.is_err());
            // Strict inequality only: sibling tests share the global
            // pool and may contain panics of their own concurrently.
            assert!(
                Pool::global().panics_observed() > before,
                "the contained task panic must be observable"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GustConfig;
    use gust_sparse::prelude::*;

    fn setup(seed: u64) -> (CsrMatrix, ScheduledMatrix, Vec<f32>) {
        let m = CsrMatrix::from(&gen::uniform(64, 64, 512, seed));
        let schedule = Gust::new(GustConfig::new(8)).schedule(&m);
        let x: Vec<f32> = (0..64).map(|i| (i % 7) as f32 - 3.0).collect();
        (m, schedule, x)
    }

    #[test]
    fn output_matches_single_engine() {
        let (m, schedule, x) = setup(1);
        let parallel = ParallelGust::new(GustConfig::new(8), 4);
        let run = parallel.execute(&schedule, &x);
        assert_vectors_close(&run.output, &reference_spmv(&m, &x), 1e-4);
    }

    #[test]
    fn parallelism_reduces_makespan() {
        let (_, schedule, x) = setup(2);
        let single = ParallelGust::new(GustConfig::new(8), 1).execute(&schedule, &x);
        let quad = ParallelGust::new(GustConfig::new(8), 4).execute(&schedule, &x);
        assert!(quad.report.cycles < single.report.cycles);
        // But not below the perfect split (total/k + 2).
        let total = schedule.total_colors();
        assert!(quad.report.cycles >= total / 4 + 2);
    }

    #[test]
    fn k1_equals_sequential_cycles() {
        let (_, schedule, x) = setup(3);
        let run = ParallelGust::new(GustConfig::new(8), 1).execute(&schedule, &x);
        assert_eq!(run.report.cycles, schedule.total_colors() + 2);
    }

    #[test]
    fn least_loaded_never_slower_than_round_robin() {
        let (_, schedule, x) = setup(4);
        for k in [2, 3, 4] {
            let rr = ParallelGust::new(GustConfig::new(8), k).execute(&schedule, &x);
            let ll = ParallelGust::new(GustConfig::new(8), k)
                .with_assignment(WindowAssignment::LeastLoaded)
                .execute(&schedule, &x);
            assert!(ll.report.cycles <= rr.report.cycles, "k = {k}");
        }
    }

    #[test]
    fn per_engine_cycles_sum_to_total() {
        let (_, schedule, x) = setup(5);
        let run = ParallelGust::new(GustConfig::new(8), 3).execute(&schedule, &x);
        let sum: u64 = run.per_engine_cycles.iter().sum();
        assert_eq!(sum, schedule.total_colors());
    }

    #[test]
    fn batched_run_matches_sequential_batched_kernel() {
        let (_, schedule, x) = setup(7);
        let batch = 5usize;
        let mut panel = Vec::with_capacity(64 * batch);
        for j in 0..batch {
            panel.extend(x.iter().map(|&v| v + j as f32));
        }
        let parallel = ParallelGust::new(GustConfig::new(8), 3);
        let (output, report) = parallel.execute_batch(&schedule, &panel, batch);
        let (expected, _) = Gust::new(GustConfig::new(8)).execute_batch(&schedule, &panel, batch);
        assert_eq!(
            output, expected,
            "functional result is engine-count invariant"
        );
        // Makespan scales with the batch and with engine count.
        let single = parallel.execute(&schedule, &x);
        assert_eq!(report.cycles, single.report.cycles * batch as u64);
        assert!(report.design.starts_with("3x"));
        assert_eq!(report.arithmetic_units, 3 * 16);
    }

    #[test]
    fn report_counts_all_engines_units() {
        let (_, schedule, x) = setup(6);
        let run = ParallelGust::new(GustConfig::new(8), 4).execute(&schedule, &x);
        assert_eq!(run.report.arithmetic_units, 4 * 16);
        assert!(run.report.design.starts_with("4x"));
    }
}
