//! The Buffer Filler (paper §3.2/§4).
//!
//! The off-chip memory cannot feed 18,433 logical inputs directly, so the
//! paper inserts a Buffer Filler: the input vector is stored in on-chip
//! memory first, then each scheduled partition streams from HBM into a
//! double buffer, from which the Buffer Filler fills the per-lane matrix /
//! vector / index FIFOs (fetching each vector operand by its `Col_sch`
//! index).

use super::LaneInput;
use crate::schedule::scheduled::{log2_ceil, ScheduledMatrix};
use gust_sim::{Fifo, MemoryTraffic, OnChipBuffer};

/// Streams a [`ScheduledMatrix`] into per-lane FIFOs, one color per cycle.
#[derive(Debug)]
pub struct BufferFiller<'a> {
    schedule: &'a ScheduledMatrix,
    x: &'a [f32],
    window: usize,
    color: u32,
    traffic: MemoryTraffic,
    on_chip: OnChipBuffer,
}

impl<'a> BufferFiller<'a> {
    /// Creates a filler and performs the paper's step one: forwarding the
    /// input vector to on-chip memory (also reserving the double buffer).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != schedule.cols()` or the vector plus double
    /// buffer exceed the Alveo U280's 41 MB of on-chip memory (§4 shows the
    /// budget accommodates vectors up to dimension ~1e7).
    #[must_use]
    pub fn new(schedule: &'a ScheduledMatrix, x: &'a [f32]) -> Self {
        assert_eq!(x.len(), schedule.cols(), "input vector length mismatch");
        let mut on_chip = OnChipBuffer::alveo_u280();
        let vector_bytes = (x.len() as u64) * 4;
        // Double buffer: two timesteps of inputs (§4: "twice the size of the
        // input values in a timestep").
        let l = schedule.length() as u64;
        let timestep_bits = l * (64 + u64::from(log2_ceil(schedule.length()))) + 1;
        let double_buffer_bytes = 2 * timestep_bits.div_ceil(8);
        on_chip
            .allocate(vector_bytes + double_buffer_bytes)
            .expect("vector + double buffer must fit in on-chip memory");

        let mut traffic = MemoryTraffic::default();
        // Vector: read from HBM, written on chip.
        traffic.off_chip_reads += x.len() as u64;
        traffic.on_chip_writes += x.len() as u64;

        // Position on the first window that actually streams data, so a
        // schedule with no non-zeros reports drained immediately (and the
        // pipeline runs for zero cycles, matching the fast engine).
        let mut window = 0usize;
        while window < schedule.windows().len() && schedule.windows()[window].colors() == 0 {
            window += 1;
        }

        Self {
            schedule,
            x,
            window,
            color: 0,
            traffic,
            on_chip,
        }
    }

    /// Whether every color of every window has been streamed.
    #[must_use]
    pub fn is_drained(&self) -> bool {
        self.window >= self.schedule.windows().len()
    }

    /// Streams one color (one timestep) into the FIFOs. Returns `false`
    /// when the schedule is drained and nothing was pushed.
    ///
    /// `fifos[lane]` receives `Some(LaneInput)` for an occupied slot and
    /// `None` (a bubble) otherwise, keeping all lanes cycle-aligned.
    /// `dump_fifo` receives `true` when this timestep is the last color of
    /// its window.
    ///
    /// # Panics
    ///
    /// Panics if `fifos.len()` differs from the schedule's length.
    pub fn fill_one_color(
        &mut self,
        fifos: &mut [Fifo<Option<LaneInput>>],
        dump_fifo: &mut Fifo<bool>,
    ) -> bool {
        let l = self.schedule.length();
        assert_eq!(fifos.len(), l, "one FIFO per lane required");
        // Skip over empty windows (they occupy zero cycles).
        while !self.is_drained() && self.schedule.windows()[self.window].colors() == 0 {
            self.window += 1;
        }
        if self.is_drained() {
            return false;
        }
        let window = &self.schedule.windows()[self.window];

        let mut lane_inputs: Vec<Option<LaneInput>> = vec![None; l];
        for s in window.iter_color(self.color) {
            // The Buffer Filler fetches the vector operand from its on-chip
            // copy using Col_sch.
            self.traffic.on_chip_reads += 1;
            lane_inputs[s.lane as usize] = Some(LaneInput {
                value: s.value,
                vector: self.x[s.col as usize],
                row_mod: s.row_mod,
            });
        }
        // The dense timestep (all l cells + indices) moves from HBM through
        // the double buffer regardless of occupancy.
        let row_bits = u64::from(log2_ceil(l));
        let timestep_words = 2 * l as u64 + (l as u64 * row_bits).div_ceil(32);
        self.traffic.off_chip_reads += timestep_words;
        self.traffic.on_chip_writes += timestep_words;
        self.traffic.on_chip_reads += timestep_words;

        for (fifo, input) in fifos.iter_mut().zip(lane_inputs) {
            fifo.push(input).expect("lane FIFO overflow");
        }
        let last_of_window = self.color + 1 == window.colors();
        dump_fifo.push(last_of_window).expect("dump FIFO overflow");

        if last_of_window {
            self.window += 1;
            self.color = 0;
        } else {
            self.color += 1;
        }
        true
    }

    /// Traffic accumulated so far (vector load + streamed partitions).
    #[must_use]
    pub fn traffic(&self) -> &MemoryTraffic {
        &self.traffic
    }

    /// On-chip allocation state (vector + double buffer).
    #[must_use]
    pub fn on_chip(&self) -> &OnChipBuffer {
        &self.on_chip
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GustConfig;
    use crate::engine::Gust;
    use gust_sparse::prelude::*;

    fn small_schedule() -> (CsrMatrix, ScheduledMatrix) {
        let m = CsrMatrix::from(&gen::uniform(12, 12, 40, 3));
        let s = Gust::new(GustConfig::new(4)).schedule(&m);
        (m, s)
    }

    #[test]
    fn fills_exactly_total_colors_steps() {
        let (_, s) = small_schedule();
        let x = vec![1.0f32; 12];
        let mut filler = BufferFiller::new(&s, &x);
        let mut fifos: Vec<Fifo<Option<LaneInput>>> = (0..4).map(|_| Fifo::unbounded()).collect();
        let mut dump = Fifo::unbounded();
        let mut steps = 0u64;
        while filler.fill_one_color(&mut fifos, &mut dump) {
            steps += 1;
        }
        assert_eq!(steps, s.total_colors());
        assert_eq!(dump.len() as u64, steps);
        assert!(filler.is_drained());
    }

    #[test]
    fn dump_markers_match_window_boundaries() {
        let (_, s) = small_schedule();
        let x = vec![1.0f32; 12];
        let mut filler = BufferFiller::new(&s, &x);
        let mut fifos: Vec<Fifo<Option<LaneInput>>> = (0..4).map(|_| Fifo::unbounded()).collect();
        let mut dump = Fifo::unbounded();
        while filler.fill_one_color(&mut fifos, &mut dump) {}
        let markers: Vec<bool> = std::iter::from_fn(|| dump.pop()).collect();
        let dumps = markers.iter().filter(|&&b| b).count();
        let nonempty_windows = s.windows().iter().filter(|w| w.colors() > 0).count();
        assert_eq!(dumps, nonempty_windows);
        assert_eq!(markers.last(), Some(&true));
    }

    #[test]
    fn vector_operands_are_fetched_by_col_sch() {
        let coo = CooMatrix::from_triplets(2, 4, vec![(0, 3, 2.0), (1, 1, 5.0)]).unwrap();
        let m = CsrMatrix::from(&coo);
        let s = Gust::new(GustConfig::new(2)).schedule(&m);
        let x = [10.0, 20.0, 30.0, 40.0];
        let mut filler = BufferFiller::new(&s, &x);
        let mut fifos: Vec<Fifo<Option<LaneInput>>> = (0..2).map(|_| Fifo::unbounded()).collect();
        let mut dump = Fifo::unbounded();
        while filler.fill_one_color(&mut fifos, &mut dump) {}
        let mut seen: Vec<(f32, f32)> = Vec::new();
        for fifo in &mut fifos {
            while let Some(entry) = fifo.pop() {
                if let Some(input) = entry {
                    seen.push((input.value, input.vector));
                }
            }
        }
        seen.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        assert_eq!(seen, vec![(2.0, 40.0), (5.0, 20.0)]);
    }

    #[test]
    fn traffic_includes_vector_load_and_dense_stream() {
        let (_, s) = small_schedule();
        let x = vec![1.0f32; 12];
        let mut filler = BufferFiller::new(&s, &x);
        let mut fifos: Vec<Fifo<Option<LaneInput>>> = (0..4).map(|_| Fifo::unbounded()).collect();
        let mut dump = Fifo::unbounded();
        while filler.fill_one_color(&mut fifos, &mut dump) {}
        let t = filler.traffic();
        assert!(t.off_chip_reads >= 12 + 2 * 4 * s.total_colors());
        assert!(t.on_chip_reads >= s.nnz() as u64);
    }
}
