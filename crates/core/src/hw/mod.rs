//! Structural model of the GUST hardware (paper Fig. 2).
//!
//! Where [`crate::engine`] walks the schedule color-by-color for speed, this
//! module wires up the actual blocks — [`BufferFiller`], per-lane FIFOs,
//! multipliers, the [`Crossbar`] and the adder bank — and advances them one
//! clock at a time through [`gust_sim::Clocked`]. Unit tests and the
//! `pipeline_equivalence` integration test assert it produces exactly the
//! same output vector and cycle count as the fast engine, which is what
//! licenses using the fast path in the benchmark sweeps.

mod buffer_filler;
mod crossbar;
mod pipeline;

pub use buffer_filler::BufferFiller;
pub use crossbar::{Crossbar, CrossbarCollision};
pub use pipeline::GustPipeline;

/// One lane's input bundle for a cycle: the matrix element, the vector
/// element it multiplies (already fetched by the Buffer Filler via
/// `Col_sch`), and the destination adder from `Row_sch`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LaneInput {
    /// Matrix value (`M_sch` entry).
    pub value: f32,
    /// Vector value (`x[Col_sch]`, fetched on chip).
    pub vector: f32,
    /// Destination adder (`Row_sch` entry).
    pub row_mod: u32,
}
