//! The crossbar connector: `l` partial-product inputs, `l` index inputs,
//! `l` outputs to the adders (paper §3.2).

use std::error::Error;
use std::fmt;

/// Two partial products routed to the same adder in one cycle — the
/// collision the edge-coloring scheduler exists to rule out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrossbarCollision {
    /// The adder both products targeted.
    pub adder: u32,
    /// The two offending input lanes.
    pub lanes: (u32, u32),
}

impl fmt::Display for CrossbarCollision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "crossbar collision: lanes {} and {} both target adder {}",
            self.lanes.0, self.lanes.1, self.adder
        )
    }
}

impl Error for CrossbarCollision {}

/// A full `l × l` crossbar.
///
/// # Example
///
/// ```
/// use gust::hw::Crossbar;
///
/// let xbar = Crossbar::new(4);
/// let routed = xbar
///     .route(&[Some((1.5, 2)), None, Some((2.5, 0)), None])
///     .unwrap();
/// assert_eq!(routed, vec![Some(2.5), None, Some(1.5), None]);
/// ```
#[derive(Debug, Clone)]
pub struct Crossbar {
    length: usize,
}

impl Crossbar {
    /// Creates an `l × l` crossbar.
    ///
    /// # Panics
    ///
    /// Panics if `length` is zero.
    #[must_use]
    pub fn new(length: usize) -> Self {
        assert!(length > 0, "crossbar length must be non-zero");
        Self { length }
    }

    /// Port count `l`.
    #[must_use]
    pub fn length(&self) -> usize {
        self.length
    }

    /// Routes one cycle of partial products. `inputs[lane]` is
    /// `Some((product, adder_index))` for an occupied lane.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarCollision`] if two lanes target the same adder —
    /// in hardware the second product would be lost (§3.3).
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != self.length()` or an adder index is out
    /// of range.
    pub fn route(
        &self,
        inputs: &[Option<(f32, u32)>],
    ) -> Result<Vec<Option<f32>>, CrossbarCollision> {
        assert_eq!(inputs.len(), self.length, "one input per lane required");
        let mut outputs: Vec<Option<f32>> = vec![None; self.length];
        let mut owner: Vec<u32> = vec![u32::MAX; self.length];
        for (lane, entry) in inputs.iter().enumerate() {
            if let Some((product, adder)) = entry {
                let a = *adder as usize;
                assert!(a < self.length, "adder index {a} out of range");
                if outputs[a].is_some() {
                    return Err(CrossbarCollision {
                        adder: *adder,
                        lanes: (owner[a], lane as u32),
                    });
                }
                outputs[a] = Some(*product);
                owner[a] = lane as u32;
            }
        }
        Ok(outputs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routes_by_index() {
        let xbar = Crossbar::new(3);
        let out = xbar
            .route(&[Some((1.0, 2)), Some((2.0, 0)), Some((3.0, 1))])
            .unwrap();
        assert_eq!(out, vec![Some(2.0), Some(3.0), Some(1.0)]);
    }

    #[test]
    fn idle_lanes_route_nothing() {
        let xbar = Crossbar::new(2);
        let out = xbar.route(&[None, None]).unwrap();
        assert_eq!(out, vec![None, None]);
    }

    #[test]
    fn collision_is_detected_with_both_lanes() {
        let xbar = Crossbar::new(3);
        let err = xbar
            .route(&[Some((1.0, 1)), None, Some((2.0, 1))])
            .unwrap_err();
        assert_eq!(err.adder, 1);
        assert_eq!(err.lanes, (0, 2));
        assert!(err.to_string().contains("adder 1"));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_adder_index_panics() {
        let xbar = Crossbar::new(2);
        let _ = xbar.route(&[Some((1.0, 5)), None]);
    }

    #[test]
    #[should_panic(expected = "one input per lane")]
    fn wrong_width_panics() {
        let xbar = Crossbar::new(2);
        let _ = xbar.route(&[None]);
    }
}
