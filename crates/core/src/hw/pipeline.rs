//! The three-level GUST pipeline: multipliers → crossbar → adders.
//!
//! [`GustPipeline`] is a [`Clocked`] component. Each tick executes one clock
//! edge for all three levels (in reverse order, as hardware registers do):
//! the adders consume the crossbar's output registers, the crossbar routes
//! the multipliers' output registers, and the multipliers pop one entry
//! from every lane FIFO, which the Buffer Filler refills one color per
//! cycle. A full run therefore takes exactly `Σ colors + 2` cycles — the
//! paper's execution-time expression — and the unit tests assert the
//! pipeline agrees cycle-for-cycle and bit-for-bit with the fast engine.

use super::buffer_filler::BufferFiller;
use super::crossbar::Crossbar;
use super::LaneInput;
use crate::schedule::scheduled::ScheduledMatrix;
use gust_sim::{Clock, Clocked, Cycle, CycleTrace, ExecutionReport, Fifo, UnitCounter};

/// Structural cycle-accurate GUST model (Fig. 2).
#[derive(Debug)]
pub struct GustPipeline<'a> {
    schedule: &'a ScheduledMatrix,
    filler: BufferFiller<'a>,
    lane_fifos: Vec<Fifo<Option<LaneInput>>>,
    dump_fifo: Fifo<bool>,
    crossbar: Crossbar,

    // Pipeline registers.
    mult_out: Vec<Option<(f32, u32)>>, // (partial product, adder index)
    mult_dump: bool,
    adder_in: Vec<Option<f32>>, // routed partial products, per adder
    adder_dump: bool,
    mult_out_valid: bool,
    adder_in_valid: bool,

    // Architectural state.
    adders: Vec<f32>,
    output: Vec<f32>,
    windows_dumped: usize,

    // Accounting.
    mult_counter: UnitCounter,
    add_counter: UnitCounter,
    multiplies: u64,
    trace: Option<CycleTrace>,
    tick_busy_mults: u32,
    tick_busy_adds: u32,
    tick_dumped: bool,
}

impl<'a> GustPipeline<'a> {
    /// Wires up the pipeline for one SpMV.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != schedule.cols()`.
    #[must_use]
    pub fn new(schedule: &'a ScheduledMatrix, x: &'a [f32]) -> Self {
        let l = schedule.length();
        Self {
            schedule,
            filler: BufferFiller::new(schedule, x),
            lane_fifos: (0..l).map(|_| Fifo::unbounded()).collect(),
            dump_fifo: Fifo::unbounded(),
            crossbar: Crossbar::new(l),
            mult_out: vec![None; l],
            mult_dump: false,
            adder_in: vec![None; l],
            adder_dump: false,
            mult_out_valid: false,
            adder_in_valid: false,
            adders: vec![0.0; l],
            output: vec![0.0; schedule.rows()],
            windows_dumped: 0,
            mult_counter: UnitCounter::new("multipliers", l),
            add_counter: UnitCounter::new("adders", l),
            multiplies: 0,
            trace: None,
            tick_busy_mults: 0,
            tick_busy_adds: 0,
            tick_dumped: false,
        }
    }

    /// Enables per-cycle trace recording (see [`CycleTrace`]).
    #[must_use]
    pub fn with_trace(mut self) -> Self {
        self.trace = Some(CycleTrace::new());
        self
    }

    /// The recorded trace, if tracing was enabled.
    #[must_use]
    pub fn trace(&self) -> Option<&CycleTrace> {
        self.trace.as_ref()
    }

    /// Number of windows whose results have been dumped so far.
    #[must_use]
    pub fn windows_dumped(&self) -> usize {
        self.windows_dumped
    }

    /// The output vector (complete once [`Clocked::is_idle`] is true).
    #[must_use]
    pub fn output(&self) -> &[f32] {
        &self.output
    }

    /// Runs the pipeline to quiescence and packages the result.
    ///
    /// Returns the output vector and a report identical (modulo the
    /// `design` string) to the fast engine's.
    #[must_use]
    pub fn run(
        schedule: &'a ScheduledMatrix,
        x: &'a [f32],
        frequency_hz: f64,
    ) -> (Vec<f32>, ExecutionReport) {
        let mut pipeline = Self::new(schedule, x);
        let mut clock = Clock::at_frequency(frequency_hz);
        let budget = schedule.total_colors() + 16;
        let cycles = gust_sim::clock::run_to_idle(&mut pipeline, &mut clock, budget);

        let mut report = ExecutionReport::new(
            format!("gust{}-pipeline", schedule.length()),
            schedule.length(),
            2 * schedule.length(),
        );
        report.cycles = cycles;
        report.nnz_processed = schedule.nnz() as u64;
        report.busy_unit_cycles =
            pipeline.mult_counter.busy_unit_cycles() + pipeline.add_counter.busy_unit_cycles();
        report.multiplies = pipeline.multiplies;
        report.additions = pipeline.multiplies;
        report.frequency_hz = frequency_hz;
        report.traffic = *pipeline.filler.traffic();
        (pipeline.output, report)
    }

    /// Stage 3: adders consume the crossbar registers, accumulating; on a
    /// dump marker the window's sums retire to the output vector.
    fn tick_adders(&mut self) {
        if !self.adder_in_valid {
            return;
        }
        let mut busy = 0usize;
        for (adder, slot) in self.adders.iter_mut().zip(self.adder_in.iter_mut()) {
            if let Some(product) = slot.take() {
                *adder += product;
                busy += 1;
            }
        }
        self.add_counter.record_busy(busy);
        self.tick_busy_adds = busy as u32;
        if self.adder_dump {
            // Empty windows occupy no cycles and therefore produce no dump
            // marker; their output rows stay zero (the vector starts
            // zeroed), so they are simply skipped when mapping this dump to
            // its row block.
            while self.schedule.windows()[self.windows_dumped].colors() == 0 {
                self.windows_dumped += 1;
            }
            let l = self.schedule.length();
            let base = self.windows_dumped * l;
            let row_perm = self.schedule.row_perm();
            for (i, adder) in self.adders.iter_mut().enumerate() {
                let pos = base + i;
                if pos < row_perm.len() {
                    self.output[row_perm[pos] as usize] = *adder;
                }
                *adder = 0.0;
            }
            self.windows_dumped += 1;
            self.adder_dump = false;
            self.tick_dumped = true;
        }
        self.adder_in_valid = false;
    }

    /// Stage 2: crossbar routes the multiplier registers into the adder
    /// registers.
    ///
    /// # Panics
    ///
    /// Panics on a routing collision — a scheduled matrix can never cause
    /// one; hitting this means the schedule (or this model) is broken.
    fn tick_crossbar(&mut self) {
        if !self.mult_out_valid {
            return;
        }
        let routed = self
            .crossbar
            .route(&self.mult_out)
            .expect("edge-colored schedules are collision-free");
        self.adder_in = routed;
        self.adder_dump = self.mult_dump;
        self.adder_in_valid = true;
        self.mult_out.iter_mut().for_each(|slot| *slot = None);
        self.mult_dump = false;
        self.mult_out_valid = false;
    }

    /// Stage 1: each multiplier pops its FIFO and computes one partial
    /// product.
    fn tick_multipliers(&mut self) {
        if self.lane_fifos[0].is_empty() {
            return;
        }
        let mut busy = 0usize;
        for (lane, fifo) in self.lane_fifos.iter_mut().enumerate() {
            let entry = fifo.pop().expect("lanes are cycle-aligned");
            self.mult_out[lane] = entry.map(|input| {
                busy += 1;
                (input.value * input.vector, input.row_mod)
            });
        }
        self.mult_counter.record_busy(busy);
        self.multiplies += busy as u64;
        self.tick_busy_mults = busy as u32;
        self.mult_dump = self.dump_fifo.pop().expect("dump stream aligned");
        self.mult_out_valid = true;
    }
}

impl Clocked for GustPipeline<'_> {
    fn tick(&mut self, now: Cycle) {
        self.tick_busy_mults = 0;
        self.tick_busy_adds = 0;
        self.tick_dumped = false;
        // Reverse order models register transfer: each stage consumes what
        // the previous stage produced on the *previous* edge.
        self.tick_adders();
        self.tick_crossbar();
        // Stage 0: the Buffer Filler's double buffer guarantees the lane
        // FIFOs always hold the cycle's inputs before the multipliers read
        // them (§4's two-step pipelined fill).
        if self.lane_fifos[0].is_empty() && !self.filler.is_drained() {
            self.filler
                .fill_one_color(&mut self.lane_fifos, &mut self.dump_fifo);
        }
        self.tick_multipliers();
        if let Some(trace) = &mut self.trace {
            trace.record(
                now,
                self.tick_busy_mults,
                self.tick_busy_adds,
                self.tick_dumped,
            );
        }
    }

    fn is_idle(&self) -> bool {
        self.filler.is_drained()
            && self.lane_fifos[0].is_empty()
            && !self.mult_out_valid
            && !self.adder_in_valid
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{GustConfig, SchedulingPolicy};
    use crate::engine::Gust;
    use gust_sparse::prelude::*;

    fn random_x(n: usize, seed: u64) -> Vec<f32> {
        (0..n)
            .map(|i| {
                let h = (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ seed;
                ((h % 1000) as f32) / 500.0 - 1.0
            })
            .collect()
    }

    #[test]
    fn pipeline_matches_fast_engine_exactly() {
        for seed in 0..4 {
            let m = CsrMatrix::from(&gen::uniform(24, 24, 160, seed));
            let x = random_x(24, seed);
            let gust = Gust::new(GustConfig::new(8));
            let schedule = gust.schedule(&m);
            let fast = gust.execute(&schedule, &x);
            let (out, report) = GustPipeline::run(&schedule, &x, 96.0e6);
            assert_eq!(out, fast.output, "seed {seed}: outputs differ");
            assert_eq!(report.cycles, fast.report.cycles, "seed {seed}");
            assert_eq!(
                report.busy_unit_cycles, fast.report.busy_unit_cycles,
                "seed {seed}"
            );
            // And the instrumented walk, whose counters measure what the
            // fast path derives analytically, agrees with both.
            let instrumented = gust.execute_instrumented(&schedule, &x);
            assert_eq!(instrumented.output, fast.output, "seed {seed}");
            assert_eq!(instrumented.report, fast.report, "seed {seed}");
        }
    }

    #[test]
    fn pipeline_depth_is_exactly_two_beyond_streaming() {
        let m = CsrMatrix::identity(8);
        let gust = Gust::new(GustConfig::new(4));
        let schedule = gust.schedule(&m);
        let (_, report) = GustPipeline::run(&schedule, &[1.0; 8], 96.0e6);
        assert_eq!(report.cycles, schedule.total_colors() + 2);
    }

    #[test]
    fn pipeline_handles_naive_schedules_too() {
        let m = CsrMatrix::from(&gen::uniform(16, 16, 100, 9));
        let x = random_x(16, 1);
        let gust = Gust::new(GustConfig::new(4).with_policy(SchedulingPolicy::Naive));
        let schedule = gust.schedule(&m);
        let fast = gust.execute(&schedule, &x);
        let (out, report) = GustPipeline::run(&schedule, &x, 96.0e6);
        assert_eq!(out, fast.output);
        assert_eq!(report.cycles, fast.report.cycles);
    }

    #[test]
    fn pipeline_output_matches_reference() {
        let m = CsrMatrix::from(&gen::power_law(32, 32, 250, 1.9, 2));
        let x = random_x(32, 3);
        let schedule = Gust::new(GustConfig::new(8)).schedule(&m);
        let (out, _) = GustPipeline::run(&schedule, &x, 96.0e6);
        assert_vectors_close(&out, &reference_spmv(&m, &x), 1e-4);
    }

    #[test]
    fn trace_accounts_for_every_cycle_and_dump() {
        let m = CsrMatrix::from(&gen::uniform(24, 24, 150, 4));
        let x = random_x(24, 5);
        let schedule = Gust::new(GustConfig::new(8)).schedule(&m);
        let mut pipeline = GustPipeline::new(&schedule, &x).with_trace();
        let mut clock = Clock::new();
        let cycles =
            gust_sim::clock::run_to_idle(&mut pipeline, &mut clock, schedule.total_colors() + 16);
        let trace = pipeline.trace().expect("tracing enabled");
        assert_eq!(trace.len() as u64, cycles);
        // Every multiply and accumulate appears in the trace.
        assert_eq!(trace.total_busy_multipliers(), m.nnz() as u64);
        assert_eq!(trace.total_busy_adders(), m.nnz() as u64);
        // One dump per non-empty window.
        let active = schedule.windows().iter().filter(|w| w.colors() > 0).count();
        assert_eq!(trace.dumps(), active);
        // The two pipeline-fill bubbles are the only fully idle cycles at
        // this density.
        assert!(trace.idle_cycles() <= 2);
    }

    #[test]
    fn empty_trailing_window_rows_are_zeroed() {
        // 10 rows at l=4: last window has 2 rows; matrix has an empty row.
        let coo = CooMatrix::from_triplets(10, 10, vec![(0, 0, 1.0), (9, 9, 2.0)]).unwrap();
        let m = CsrMatrix::from(&coo);
        let schedule = Gust::new(GustConfig::new(4)).schedule(&m);
        let (out, _) = GustPipeline::run(&schedule, &[1.0; 10], 96.0e6);
        assert_eq!(out[0], 1.0);
        assert_eq!(out[9], 2.0);
        assert!(out[1..9].iter().all(|&v| v == 0.0));
    }
}
