//! GUST: Graph Edge-Coloring Utilization for Accelerating SpMV.
//!
//! This crate implements the paper's primary contribution (ASPLOS 2024,
//! Gerami & Asgari): a hardware/software co-design where `l` multipliers and
//! `l` adders are decoupled by a full crossbar, so arithmetic units are
//! shared across matrix rows *and* columns, and a software scheduler reshapes
//! the sparse matrix into a dense, collision-free input stream.
//!
//! The two halves:
//!
//! * **Software** ([`schedule`]) — windows the matrix into sets of `l` rows,
//!   maps columns to multiplier lanes by `col mod l`, and assigns each
//!   non-zero a *time slot* by edge-coloring the window's bipartite
//!   row×lane multigraph (paper Listing 1). A three-step sort-based load
//!   balancer (§3.5) shrinks the degree maxima that bound the color count
//!   (Eq. 1). The result is a [`ScheduledMatrix`] — the `M_sch` /
//!   `Row_sch` / `Col_sch` format of §3.3.
//! * **Hardware** ([`engine`], [`hw`]) — a cycle-accurate model of Fig. 2:
//!   Buffer Filler, four FIFO sets, multipliers, crossbar, adders and dump.
//!   One color = one cycle; execution takes `Σ colors + 2` cycles.
//!
//! Also here: the naive collision-stall baseline schedule (§3.3), the
//! statistical bound of §3.4 (Eqs. 9–11), the bandwidth requirement model
//! (§3.3 "Streaming the Inputs"), and the parallel `k × length-l`
//! arrangement of §5.5.
//!
//! # Quickstart
//!
//! ```
//! use gust::prelude::*;
//! use gust_sparse::prelude::*;
//!
//! // A small random matrix and a length-4 GUST.
//! let coo = gen::uniform(16, 16, 40, 7);
//! let csr = CsrMatrix::from(&coo);
//! let gust = Gust::new(GustConfig::new(4));
//!
//! let schedule = gust.schedule(&csr);
//! let x: Vec<f32> = (0..16).map(|i| i as f32).collect();
//! let run = gust.execute(&schedule, &x);
//!
//! assert_vectors_close(&run.output, &reference_spmv(&csr, &x), 1e-4);
//! assert_eq!(run.report.cycles, schedule.total_colors() + 2);
//! ```

#![warn(missing_docs)]
// `unsafe` is denied everywhere except the [`kernels`] module, which holds
// the feature-gated `std::arch` SIMD engine loops behind the runtime
// [`kernels::Backend`] dispatch (and documents the safety argument for
// every block).
#![deny(unsafe_code)]

pub mod bandwidth;
pub mod bound;
pub mod config;
pub mod engine;
pub mod error;
pub mod gpu;
pub mod hw;
pub mod kernels;
pub mod parallel;
pub mod pipeline;
pub mod schedule;
pub mod serve;
pub mod verify;

pub use config::{ColoringAlgorithm, ConfigError, GustConfig, SchedulingPolicy};
pub use engine::{Gust, GustRun};
pub use error::GustError;
pub use kernels::Backend;
pub use parallel::Pool;

// Re-exported so engine-level callers can drive fault injection (and
// tests can scope it) without depending on `gust_sparse` directly.
pub use gust_sparse::faults;
pub use schedule::banded::{BandPlan, BandedSchedule, BandedWindow, ColumnBands};
pub use schedule::scheduled::{ScheduledMatrix, ScheduledSlot, WindowSchedule};
pub use schedule::tiled::TiledSchedule;
pub use serve::{ScheduleRegistry, ServeConfig, SpmvServer};
pub use verify::{AuditReport, Auditable, VerifiedSchedule, Violation};

/// Common imports for working with this crate.
pub mod prelude {
    pub use crate::bandwidth;
    pub use crate::bound;
    pub use crate::config::{ColoringAlgorithm, ConfigError, GustConfig, SchedulingPolicy};
    pub use crate::engine::{Gust, GustRun};
    pub use crate::error::GustError;
    pub use crate::kernels::Backend;
    pub use crate::parallel::{ParallelGust, Pool};
    pub use crate::pipeline::EndToEnd;
    pub use crate::schedule::banded::{BandPlan, BandedSchedule, BandedWindow, ColumnBands};
    pub use crate::schedule::scheduled::{ScheduledMatrix, ScheduledSlot, WindowSchedule};
    pub use crate::schedule::tiled::TiledSchedule;
    pub use crate::serve::{
        MatrixKey, Response, ScheduleKind, ScheduleRegistry, ServeConfig, ServeStats, SpmvServer,
        Ticket,
    };
    pub use crate::verify::{AuditReport, Auditable, VerifiedSchedule, Violation};
}
