//! End-to-end SpMV accounting: preprocessing + vector load + calculation.
//!
//! Table 4 separates GUST's cost into a one-time preprocessing phase
//! (scheduling on a host CPU — here: the *actual* wall-clock of our Rust
//! scheduler) and a per-SpMV calculation phase on the accelerator. §5.3
//! argues the preprocessing amortizes because iterative solvers run
//! thousands of SpMVs against one matrix; [`EndToEnd::break_even_spmvs`]
//! computes that break-even explicitly.

use crate::config::GustConfig;
use crate::engine::{Gust, GustRun};
use gust_sparse::CsrMatrix;
use std::time::Instant;

/// One complete measured SpMV setup: schedule once, run once, keep both
/// costs.
#[derive(Debug, Clone)]
pub struct EndToEnd {
    /// Wall-clock seconds the scheduler (preprocessing) took on this host.
    pub preprocess_seconds: f64,
    /// Seconds to forward the input vector to the Buffer Filler at the
    /// given HBM bandwidth (the paper adds this phase's energy separately).
    pub vector_load_seconds: f64,
    /// The calculation-phase run (cycles, utilization, traffic).
    pub run: GustRun,
}

impl EndToEnd {
    /// Schedules `matrix`, timing the preprocessing, then executes one SpMV.
    ///
    /// `hbm_bytes_per_second` sets the vector-load phase speed; pass
    /// [`gust_sim::HbmModel::alveo_u280`]'s peak (460 GB/s) to match §4.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != matrix.cols()`.
    #[must_use]
    pub fn measure(
        config: GustConfig,
        matrix: &CsrMatrix,
        x: &[f32],
        hbm_bytes_per_second: f64,
    ) -> Self {
        let gust = Gust::new(config);
        let t0 = Instant::now();
        let schedule = gust.schedule(matrix);
        let preprocess_seconds = t0.elapsed().as_secs_f64();
        let run = gust.execute(&schedule, x);
        let vector_load_seconds = (matrix.cols() as f64 * 4.0) / hbm_bytes_per_second;
        Self {
            preprocess_seconds,
            vector_load_seconds,
            run,
        }
    }

    /// Seconds per SpMV once the schedule exists (calculation only).
    #[must_use]
    pub fn calc_seconds(&self) -> f64 {
        self.run.report.seconds()
    }

    /// Total seconds for `iterations` SpMVs against this matrix:
    /// preprocessing once, vector load + calculation per iteration.
    #[must_use]
    pub fn total_seconds(&self, iterations: u64) -> f64 {
        self.preprocess_seconds
            + iterations as f64 * (self.vector_load_seconds + self.calc_seconds())
    }

    /// Number of SpMVs after which GUST (preprocessing included) beats an
    /// alternative that costs `other_seconds_per_spmv` each time with no
    /// preprocessing — e.g. the paper's §5.3 example where a dense
    /// matrix-vector product on the same FPGA takes ~0.7 s.
    ///
    /// Returns `None` if GUST's per-iteration cost alone is not lower.
    #[must_use]
    pub fn break_even_spmvs(&self, other_seconds_per_spmv: f64) -> Option<u64> {
        let mine = self.vector_load_seconds + self.calc_seconds();
        if mine >= other_seconds_per_spmv {
            return None;
        }
        Some((self.preprocess_seconds / (other_seconds_per_spmv - mine)).ceil() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gust_sparse::prelude::*;

    fn example() -> (CsrMatrix, Vec<f32>) {
        let m = CsrMatrix::from(&gen::uniform(128, 128, 1500, 9));
        let x: Vec<f32> = (0..128).map(|i| (i % 5) as f32).collect();
        (m, x)
    }

    #[test]
    fn measures_all_three_phases() {
        let (m, x) = example();
        let e2e = EndToEnd::measure(GustConfig::new(16), &m, &x, 460.0e9);
        assert!(e2e.preprocess_seconds > 0.0);
        assert!(e2e.vector_load_seconds > 0.0);
        assert!(e2e.calc_seconds() > 0.0);
        assert_vectors_close(&e2e.run.output, &reference_spmv(&m, &x), 1e-4);
    }

    #[test]
    fn total_seconds_amortizes_preprocessing() {
        let (m, x) = example();
        let e2e = EndToEnd::measure(GustConfig::new(16), &m, &x, 460.0e9);
        let one = e2e.total_seconds(1);
        let thousand = e2e.total_seconds(1000);
        // 1000 iterations cost far less than 1000x one iteration-with-
        // preprocessing.
        assert!(thousand < 1000.0 * one);
        let per_iter = (thousand - e2e.preprocess_seconds) / 1000.0;
        assert!((per_iter - (e2e.vector_load_seconds + e2e.calc_seconds())).abs() < 1e-12);
    }

    #[test]
    fn break_even_against_slow_alternative() {
        let (m, x) = example();
        let e2e = EndToEnd::measure(GustConfig::new(16), &m, &x, 460.0e9);
        // An alternative 100x slower than GUST's per-iteration cost.
        let other = (e2e.vector_load_seconds + e2e.calc_seconds()) * 100.0;
        let n = e2e
            .break_even_spmvs(other)
            .expect("GUST per-iter is faster");
        assert!(e2e.total_seconds(n) <= n as f64 * other * 1.01);
    }

    #[test]
    fn no_break_even_against_faster_alternative() {
        let (m, x) = example();
        let e2e = EndToEnd::measure(GustConfig::new(16), &m, &x, 460.0e9);
        assert_eq!(e2e.break_even_spmvs(0.0), None);
    }
}
