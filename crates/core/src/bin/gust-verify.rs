//! `gust-verify`: offline schedule-cache safety auditor.
//!
//! Audits one or more `GUST`/`GUSB`/`GUTL` containers against the full
//! safety contract the unsafe kernels rely on (see `gust::verify`) and
//! reports every violation with its window/color/slot location.
//!
//! ```text
//! usage: gust-verify <file>...
//! ```
//!
//! Exit status: `0` when every file is intact and passes the audit,
//! `1` when any file is corrupt or fails the audit, `2` on usage or
//! I/O errors.

use gust::schedule::serialize::{
    read_banded_schedule_file_verified, read_schedule_file_verified,
    read_tiled_schedule_file_verified, ReadScheduleError,
};
use std::io::Read as _;
use std::path::Path;
use std::process::ExitCode;

/// Outcome of auditing one file.
enum FileOutcome {
    Clean,
    Rejected,
    Unusable,
}

/// Sniffs the 4-byte magic and runs the matching auditing reader.
fn audit_file(path: &Path) -> FileOutcome {
    let mut magic = [0u8; 4];
    match std::fs::File::open(path).and_then(|mut f| f.read_exact(&mut magic)) {
        Ok(()) => {}
        Err(err) => {
            eprintln!("gust-verify: {}: {err}", path.display());
            return FileOutcome::Unusable;
        }
    }
    let (kind, result) = match &magic {
        b"GUST" => (
            "flat",
            read_schedule_file_verified(path).map(|s| summary(s.get().rows(), s.get().cols())),
        ),
        b"GUSB" => (
            "banded",
            read_banded_schedule_file_verified(path)
                .map(|s| summary(s.get().rows(), s.get().cols())),
        ),
        b"GUTL" => (
            "tiled",
            read_tiled_schedule_file_verified(path)
                .map(|s| summary(s.get().rows(), s.get().cols())),
        ),
        other => {
            eprintln!(
                "gust-verify: {}: unrecognized magic {:?} (expected GUST, GUSB, or GUTL)",
                path.display(),
                String::from_utf8_lossy(other)
            );
            return FileOutcome::Unusable;
        }
    };
    match result {
        Ok(shape) => {
            println!("{}: OK ({kind} schedule, {shape})", path.display());
            FileOutcome::Clean
        }
        Err(ReadScheduleError::Audit(report)) => {
            eprintln!(
                "{}: REJECTED ({kind} schedule): {} violation(s)",
                path.display(),
                report.violations().len()
            );
            for violation in report.violations() {
                eprintln!("  - {violation}");
            }
            FileOutcome::Rejected
        }
        Err(err) => {
            eprintln!("{}: REJECTED ({kind} schedule): {err}", path.display());
            FileOutcome::Rejected
        }
    }
}

fn summary(rows: usize, cols: usize) -> String {
    format!("{rows}x{cols}")
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "-h" || a == "--help") {
        eprintln!("usage: gust-verify <file>...");
        eprintln!("audits GUST/GUSB/GUTL schedule containers; exits nonzero on violation");
        return ExitCode::from(2);
    }
    let mut worst: u8 = 0;
    for arg in &args {
        let code = match audit_file(Path::new(arg)) {
            FileOutcome::Clean => 0,
            FileOutcome::Rejected => 1,
            FileOutcome::Unusable => 2,
        };
        worst = worst.max(code);
    }
    ExitCode::from(worst)
}
