//! GUST configuration: length, clock, scheduling policy, kernel backend.

use gust_sparse::kernels::Backend;

/// How non-zeros are assigned to time slots.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum SchedulingPolicy {
    /// No reordering: stream column segments in natural order and stall on
    /// every adder collision (§3.3 "the naive method").
    Naive,
    /// Edge-coloring scheduling (paper Listing 1), no load balancing.
    EdgeColoring,
    /// Edge-coloring plus the three-step sort load balancer of §3.5.
    /// This is the configuration the paper reports headline numbers for.
    EdgeColoringLb,
}

impl SchedulingPolicy {
    /// Short label used in reports and tables (matches the paper's figure
    /// legends: "Naive", "EC", "EC/LB").
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::Naive => "Naive",
            Self::EdgeColoring => "EC",
            Self::EdgeColoringLb => "EC/LB",
        }
    }
}

/// Which edge-coloring implementation to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum ColoringAlgorithm {
    /// Listing 1 verbatim: scan each left vertex's edge list in column order
    /// and take the first edge whose lane is unmatched. O(degree) scans.
    Verbatim,
    /// Same greedy matching discipline, but edges are grouped per lane and
    /// groups are visited in first-occurrence order, giving near-linear
    /// behaviour on large windows. Produces a valid coloring with the same
    /// matching structure; slot order within a row may differ from
    /// [`ColoringAlgorithm::Verbatim`]. Default.
    #[default]
    Grouped,
    /// Optimal bipartite multigraph coloring (Kőnig): exactly Δ colors, the
    /// Vizing/Eq. 1 lower bound. Slower; used for the ablation study of how
    /// close the paper's greedy heuristic gets to optimal.
    Konig,
}

impl ColoringAlgorithm {
    /// Short label used in ablation tables.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::Verbatim => "greedy-verbatim",
            Self::Grouped => "greedy-grouped",
            Self::Konig => "konig-optimal",
        }
    }
}

/// Configuration of one GUST instance.
///
/// # Example
///
/// ```
/// use gust::{GustConfig, SchedulingPolicy};
///
/// let config = GustConfig::new(256)
///     .with_policy(SchedulingPolicy::EdgeColoringLb)
///     .with_frequency(96.0e6);
/// assert_eq!(config.length(), 256);
/// assert_eq!(config.arithmetic_units(), 512);
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct GustConfig {
    length: usize,
    frequency_hz: f64,
    policy: SchedulingPolicy,
    coloring: ColoringAlgorithm,
    parallelism: Option<usize>,
    backend: Option<Backend>,
}

impl GustConfig {
    /// The paper's synthesized clock: 96 MHz, bounded by the crossbar's
    /// longest route (§4).
    pub const PAPER_FREQUENCY_HZ: f64 = 96.0e6;

    /// Creates a length-`l` configuration with the paper's defaults
    /// (EC/LB scheduling, 96 MHz).
    ///
    /// # Panics
    ///
    /// Panics if `length` is zero.
    #[must_use]
    pub fn new(length: usize) -> Self {
        assert!(length > 0, "GUST length must be non-zero");
        Self {
            length,
            frequency_hz: Self::PAPER_FREQUENCY_HZ,
            policy: SchedulingPolicy::EdgeColoringLb,
            coloring: ColoringAlgorithm::default(),
            parallelism: None,
            backend: None,
        }
    }

    /// Sets the scheduling policy.
    #[must_use]
    pub fn with_policy(mut self, policy: SchedulingPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the edge-coloring algorithm (ignored under
    /// [`SchedulingPolicy::Naive`]).
    #[must_use]
    pub fn with_coloring(mut self, coloring: ColoringAlgorithm) -> Self {
        self.coloring = coloring;
        self
    }

    /// Sets the scheduler's worker-thread count: `Some(1)` forces the
    /// sequential path, `Some(n)` uses exactly `n` workers, and `None`
    /// (default) lets the scheduler match the host's available parallelism.
    /// Windows are independent (§3.2), so the schedule is bit-identical for
    /// every setting; only preprocessing wall-clock changes.
    ///
    /// # Panics
    ///
    /// Panics if `parallelism` is `Some(0)`.
    #[must_use]
    pub fn with_parallelism(mut self, parallelism: Option<usize>) -> Self {
        assert!(
            parallelism != Some(0),
            "parallelism must be at least 1 (or None for auto)"
        );
        self.parallelism = parallelism;
        self
    }

    /// Sets the execution-kernel backend: `Some(backend)` pins the
    /// engine's hot loops to that implementation, `None` (default)
    /// selects at runtime — the `GUST_BACKEND` environment variable if
    /// set, otherwise the fastest backend the host CPU supports (see
    /// [`gust_sparse::kernels::default_backend`]).
    ///
    /// A pinned backend the host cannot run falls back to
    /// [`Backend::Scalar`] rather than executing unsupported
    /// instructions, so schedules stay runnable (and crates stay
    /// portable) on any target.
    #[must_use]
    pub fn with_backend(mut self, backend: Option<Backend>) -> Self {
        self.backend = backend;
        self
    }

    /// Sets the clock frequency in Hz.
    ///
    /// # Panics
    ///
    /// Panics if `frequency_hz` is not positive and finite.
    #[must_use]
    pub fn with_frequency(mut self, frequency_hz: f64) -> Self {
        assert!(
            frequency_hz.is_finite() && frequency_hz > 0.0,
            "frequency must be positive and finite"
        );
        self.frequency_hz = frequency_hz;
        self
    }

    /// Number of multipliers (= number of adders) `l`.
    #[must_use]
    pub fn length(&self) -> usize {
        self.length
    }

    /// Total arithmetic units: `l` multipliers + `l` adders.
    #[must_use]
    pub fn arithmetic_units(&self) -> usize {
        2 * self.length
    }

    /// Clock frequency in Hz.
    #[must_use]
    pub fn frequency_hz(&self) -> f64 {
        self.frequency_hz
    }

    /// Scheduling policy.
    #[must_use]
    pub fn policy(&self) -> SchedulingPolicy {
        self.policy
    }

    /// Edge-coloring algorithm.
    #[must_use]
    pub fn coloring(&self) -> ColoringAlgorithm {
        self.coloring
    }

    /// Scheduler worker-thread setting (see
    /// [`GustConfig::with_parallelism`]).
    #[must_use]
    pub fn parallelism(&self) -> Option<usize> {
        self.parallelism
    }

    /// Configured kernel backend (see [`GustConfig::with_backend`]);
    /// `None` means runtime selection.
    #[must_use]
    pub fn backend(&self) -> Option<Backend> {
        self.backend
    }

    /// The backend the engine will actually run: the configured one when
    /// it is available on this host, otherwise the process default
    /// (`GUST_BACKEND` override or best available), which is always
    /// runnable.
    #[must_use]
    pub fn effective_backend(&self) -> Backend {
        match self.backend {
            Some(b) if b.is_available() => b,
            Some(_) => Backend::Scalar,
            None => gust_sparse::kernels::default_backend(),
        }
    }

    /// Worker threads to use for `items` independent work units (schedule
    /// windows, batched-execution register blocks): the configured
    /// [`GustConfig::with_parallelism`] count, or the host's available
    /// parallelism, never more than one per item and never zero.
    #[must_use]
    pub fn effective_workers(&self, items: usize) -> usize {
        let requested = self.parallelism.unwrap_or_else(|| {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        });
        requested.max(1).min(items.max(1))
    }

    /// Design name used in reports, e.g. `"gust256-EC/LB"`.
    #[must_use]
    pub fn design_name(&self) -> String {
        format!("gust{}-{}", self.length, self.policy.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = GustConfig::new(256);
        assert_eq!(c.length(), 256);
        assert_eq!(c.arithmetic_units(), 512);
        assert_eq!(c.policy(), SchedulingPolicy::EdgeColoringLb);
        assert!((c.frequency_hz() - 96.0e6).abs() < 1.0);
    }

    #[test]
    fn builder_chains() {
        let c = GustConfig::new(8)
            .with_policy(SchedulingPolicy::Naive)
            .with_coloring(ColoringAlgorithm::Konig)
            .with_frequency(1.0e6)
            .with_parallelism(Some(4))
            .with_backend(Some(Backend::Scalar));
        assert_eq!(c.policy(), SchedulingPolicy::Naive);
        assert_eq!(c.coloring(), ColoringAlgorithm::Konig);
        assert!((c.frequency_hz() - 1.0e6).abs() < f64::EPSILON);
        assert_eq!(c.parallelism(), Some(4));
        assert_eq!(c.backend(), Some(Backend::Scalar));
    }

    #[test]
    fn effective_backend_is_always_runnable() {
        // Default: runtime selection, whatever it picks must be available.
        assert!(GustConfig::new(8).effective_backend().is_available());
        // Pinned scalar stays scalar everywhere.
        let scalar = GustConfig::new(8).with_backend(Some(Backend::Scalar));
        assert_eq!(scalar.effective_backend(), Backend::Scalar);
        // Pinned AVX2 resolves to AVX2 on hosts that have it, scalar
        // elsewhere — never an unrunnable backend.
        let simd = GustConfig::new(8).with_backend(Some(Backend::Avx2));
        let effective = simd.effective_backend();
        assert!(effective.is_available());
        if Backend::Avx2.is_available() {
            assert_eq!(effective, Backend::Avx2);
        } else {
            assert_eq!(effective, Backend::Scalar);
        }
    }

    #[test]
    fn parallelism_defaults_to_auto() {
        assert_eq!(GustConfig::new(8).parallelism(), None);
        let seq = GustConfig::new(8).with_parallelism(Some(1));
        assert_eq!(seq.parallelism(), Some(1));
    }

    #[test]
    #[should_panic(expected = "parallelism must be at least 1")]
    fn zero_parallelism_panics() {
        let _ = GustConfig::new(8).with_parallelism(Some(0));
    }

    #[test]
    fn design_name_encodes_length_and_policy() {
        let c = GustConfig::new(87).with_policy(SchedulingPolicy::EdgeColoring);
        assert_eq!(c.design_name(), "gust87-EC");
    }

    #[test]
    fn labels() {
        assert_eq!(SchedulingPolicy::Naive.label(), "Naive");
        assert_eq!(SchedulingPolicy::EdgeColoring.label(), "EC");
        assert_eq!(SchedulingPolicy::EdgeColoringLb.label(), "EC/LB");
        assert_eq!(ColoringAlgorithm::Konig.label(), "konig-optimal");
    }

    #[test]
    #[should_panic(expected = "length must be non-zero")]
    fn zero_length_panics() {
        let _ = GustConfig::new(0);
    }
}
