//! GUST configuration: length, clock, scheduling policy, kernel backend,
//! worker parallelism and the cache budget that sizes column bands.
//!
//! # Environment handling
//!
//! The runtime env resolvers (`GUST_PARALLELISM`, `GUST_CACHE_BUDGET`,
//! `GUST_ROW_BUDGET`, and `GUST_BACKEND` over in
//! [`gust_sparse::kernels::default_backend`]) **warn and default** on a
//! malformed value: a long-lived process must not be taken down at its
//! first SpMV by a typo in its environment. Callers that instead want a
//! misspelled variable to fail loudly — CI matrix legs that must not
//! silently benchmark a different configuration than they claim —
//! validate eagerly with [`GustConfig::from_env_checked`], which turns
//! every malformed variable into a [`ConfigError`].

use gust_sparse::kernels::Backend;

/// How non-zeros are assigned to time slots.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum SchedulingPolicy {
    /// No reordering: stream column segments in natural order and stall on
    /// every adder collision (§3.3 "the naive method").
    Naive,
    /// Edge-coloring scheduling (paper Listing 1), no load balancing.
    EdgeColoring,
    /// Edge-coloring plus the three-step sort load balancer of §3.5.
    /// This is the configuration the paper reports headline numbers for.
    EdgeColoringLb,
}

impl SchedulingPolicy {
    /// Short label used in reports and tables (matches the paper's figure
    /// legends: "Naive", "EC", "EC/LB").
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::Naive => "Naive",
            Self::EdgeColoring => "EC",
            Self::EdgeColoringLb => "EC/LB",
        }
    }
}

/// Which edge-coloring implementation to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum ColoringAlgorithm {
    /// Listing 1 verbatim: scan each left vertex's edge list in column order
    /// and take the first edge whose lane is unmatched. O(degree) scans.
    Verbatim,
    /// Same greedy matching discipline, but edges are grouped per lane and
    /// groups are visited in first-occurrence order, giving near-linear
    /// behaviour on large windows. Produces a valid coloring with the same
    /// matching structure; slot order within a row may differ from
    /// [`ColoringAlgorithm::Verbatim`]. Default.
    #[default]
    Grouped,
    /// Optimal bipartite multigraph coloring (Kőnig): exactly Δ colors, the
    /// Vizing/Eq. 1 lower bound. Slower; used for the ablation study of how
    /// close the paper's greedy heuristic gets to optimal.
    Konig,
}

impl ColoringAlgorithm {
    /// Short label used in ablation tables.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::Verbatim => "greedy-verbatim",
            Self::Grouped => "greedy-grouped",
            Self::Konig => "konig-optimal",
        }
    }
}

/// A configuration/environment value that could not be interpreted.
///
/// Produced by [`GustConfig::from_env_checked`]; the lenient runtime
/// resolvers log the same information as a warning and fall back to the
/// automatic default instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    /// The environment variable (or constructor argument) at fault.
    pub var: String,
    /// The offending value, verbatim.
    pub value: String,
    /// What a valid value looks like.
    pub message: String,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid {}={:?}: {}", self.var, self.value, self.message)
    }
}

impl std::error::Error for ConfigError {}

impl ConfigError {
    fn new(var: &str, value: &str, message: impl Into<String>) -> Self {
        Self {
            var: var.to_string(),
            value: value.to_string(),
            message: message.into(),
        }
    }
}

/// Configuration of one GUST instance.
///
/// # Example
///
/// ```
/// use gust::{GustConfig, SchedulingPolicy};
///
/// let config = GustConfig::new(256)
///     .with_policy(SchedulingPolicy::EdgeColoringLb)
///     .with_frequency(96.0e6);
/// assert_eq!(config.length(), 256);
/// assert_eq!(config.arithmetic_units(), 512);
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct GustConfig {
    length: usize,
    frequency_hz: f64,
    policy: SchedulingPolicy,
    coloring: ColoringAlgorithm,
    parallelism: Option<usize>,
    backend: Option<Backend>,
    cache_budget: Option<usize>,
    row_budget: Option<usize>,
}

impl GustConfig {
    /// The paper's synthesized clock: 96 MHz, bounded by the crossbar's
    /// longest route (§4).
    pub const PAPER_FREQUENCY_HZ: f64 = 96.0e6;

    /// Creates a length-`l` configuration with the paper's defaults
    /// (EC/LB scheduling, 96 MHz).
    ///
    /// # Panics
    ///
    /// Panics if `length` is zero.
    #[must_use]
    pub fn new(length: usize) -> Self {
        assert!(length > 0, "GUST length must be non-zero");
        Self {
            length,
            frequency_hz: Self::PAPER_FREQUENCY_HZ,
            policy: SchedulingPolicy::EdgeColoringLb,
            coloring: ColoringAlgorithm::default(),
            parallelism: None,
            backend: None,
            cache_budget: None,
            row_budget: None,
        }
    }

    /// As [`GustConfig::new`], but validates every `GUST_*` environment
    /// variable eagerly and **pins** the parsed values into the
    /// configuration, so later `effective_*` calls cannot be surprised by
    /// the environment. Where the lenient runtime resolvers warn and
    /// fall back to automatic selection, this constructor turns each
    /// malformed variable into a [`ConfigError`] — use it at process
    /// startup when a misconfigured environment should abort the run
    /// (CI legs, benchmark harnesses) rather than degrade it.
    ///
    /// Checked variables: `GUST_PARALLELISM` (positive integer),
    /// `GUST_BACKEND` (`scalar`/`avx2`/`auto`), `GUST_CACHE_BUDGET` and
    /// `GUST_ROW_BUDGET` (non-zero byte sizes, `k`/`m`/`g` suffixes
    /// allowed). Unset (or empty) variables stay on automatic selection.
    ///
    /// # Errors
    ///
    /// A [`ConfigError`] naming the first malformed variable, its
    /// verbatim value, and what a valid value looks like. A zero
    /// `length` is reported the same way instead of panicking.
    pub fn from_env_checked(length: usize) -> Result<Self, ConfigError> {
        if length == 0 {
            return Err(ConfigError::new(
                "length",
                "0",
                "GUST length must be non-zero",
            ));
        }
        let mut config = Self::new(length);
        config.parallelism = checked_env_parallelism()?;
        config.backend = checked_env_backend()?;
        config.cache_budget = checked_env_byte_budget("GUST_CACHE_BUDGET")?;
        config.row_budget = checked_env_byte_budget("GUST_ROW_BUDGET")?;
        Ok(config)
    }

    /// Sets the scheduling policy.
    #[must_use]
    pub fn with_policy(mut self, policy: SchedulingPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the edge-coloring algorithm (ignored under
    /// [`SchedulingPolicy::Naive`]).
    #[must_use]
    pub fn with_coloring(mut self, coloring: ColoringAlgorithm) -> Self {
        self.coloring = coloring;
        self
    }

    /// Sets the scheduler's worker-thread count: `Some(1)` forces the
    /// sequential path, `Some(n)` uses exactly `n` workers, and `None`
    /// (default) lets the scheduler match the host's available parallelism.
    /// Windows are independent (§3.2), so the schedule is bit-identical for
    /// every setting; only preprocessing wall-clock changes.
    ///
    /// # Panics
    ///
    /// Panics if `parallelism` is `Some(0)`.
    #[must_use]
    pub fn with_parallelism(mut self, parallelism: Option<usize>) -> Self {
        assert!(
            parallelism != Some(0),
            "parallelism must be at least 1 (or None for auto)"
        );
        self.parallelism = parallelism;
        self
    }

    /// Sets the execution-kernel backend: `Some(backend)` pins the
    /// engine's hot loops to that implementation, `None` (default)
    /// selects at runtime — the `GUST_BACKEND` environment variable if
    /// set, otherwise the fastest backend the host CPU supports (see
    /// [`gust_sparse::kernels::default_backend`]).
    ///
    /// A pinned backend the host cannot run falls back to
    /// [`Backend::Scalar`] rather than executing unsupported
    /// instructions, so schedules stay runnable (and crates stay
    /// portable) on any target.
    #[must_use]
    pub fn with_backend(mut self, backend: Option<Backend>) -> Self {
        self.backend = backend;
        self
    }

    /// Sets the cache budget in bytes that column-band schedules target
    /// (see [`crate::schedule::banded::BandedSchedule`]): bands are sized
    /// so one band's operand slice at the walk's **effective batch
    /// width** — `band_cols × width × 4` bytes, where the width is 1 for
    /// single-vector schedules and the register block for batched ones
    /// (see [`crate::schedule::banded::BandPlan`]) — fits the budget, so
    /// every gather in a band walk hits a cache-resident slice of the
    /// input vector.
    ///
    /// `None` (default) selects at runtime: the `GUST_CACHE_BUDGET`
    /// environment variable if set (plain bytes, or with a `k`/`m`/`g`
    /// suffix), otherwise the host's detected last-level cache size
    /// (32 MiB when detection fails).
    ///
    /// # Panics
    ///
    /// Panics if `cache_budget` is `Some(0)`.
    #[must_use]
    pub fn with_cache_budget(mut self, cache_budget: Option<usize>) -> Self {
        assert!(
            cache_budget != Some(0),
            "cache budget must be at least 1 byte (or None for auto)"
        );
        self.cache_budget = cache_budget;
        self
    }

    /// Sets the row budget in bytes that 2D tiled schedules target (see
    /// [`crate::schedule::tiled::TiledSchedule`]): row tiles are sized so
    /// one tile's output slice — `tile_rows × batch × 4` bytes at the
    /// effective batch width — fits the budget, so the `y[row]`
    /// accumulations of a tile walk stay cache-resident even when the
    /// whole output vector does not.
    ///
    /// `None` (default) selects at runtime: the `GUST_ROW_BUDGET`
    /// environment variable if set (plain bytes, or with a `k`/`m`/`g`
    /// suffix), otherwise the host's detected last-level cache size
    /// (32 MiB when detection fails) — the same resolution rules as
    /// [`GustConfig::with_cache_budget`].
    ///
    /// # Panics
    ///
    /// Panics if `row_budget` is `Some(0)`.
    #[must_use]
    pub fn with_row_budget(mut self, row_budget: Option<usize>) -> Self {
        assert!(
            row_budget != Some(0),
            "row budget must be at least 1 byte (or None for auto)"
        );
        self.row_budget = row_budget;
        self
    }

    /// Sets the clock frequency in Hz.
    ///
    /// # Panics
    ///
    /// Panics if `frequency_hz` is not positive and finite.
    #[must_use]
    pub fn with_frequency(mut self, frequency_hz: f64) -> Self {
        assert!(
            frequency_hz.is_finite() && frequency_hz > 0.0,
            "frequency must be positive and finite"
        );
        self.frequency_hz = frequency_hz;
        self
    }

    /// Number of multipliers (= number of adders) `l`.
    #[must_use]
    pub fn length(&self) -> usize {
        self.length
    }

    /// Total arithmetic units: `l` multipliers + `l` adders.
    #[must_use]
    pub fn arithmetic_units(&self) -> usize {
        2 * self.length
    }

    /// Clock frequency in Hz.
    #[must_use]
    pub fn frequency_hz(&self) -> f64 {
        self.frequency_hz
    }

    /// Scheduling policy.
    #[must_use]
    pub fn policy(&self) -> SchedulingPolicy {
        self.policy
    }

    /// Edge-coloring algorithm.
    #[must_use]
    pub fn coloring(&self) -> ColoringAlgorithm {
        self.coloring
    }

    /// Scheduler worker-thread setting (see
    /// [`GustConfig::with_parallelism`]).
    #[must_use]
    pub fn parallelism(&self) -> Option<usize> {
        self.parallelism
    }

    /// Configured kernel backend (see [`GustConfig::with_backend`]);
    /// `None` means runtime selection.
    #[must_use]
    pub fn backend(&self) -> Option<Backend> {
        self.backend
    }

    /// The backend the engine will actually run: the configured one when
    /// it is available on this host, otherwise the process default
    /// (`GUST_BACKEND` override or best available), which is always
    /// runnable.
    #[must_use]
    pub fn effective_backend(&self) -> Backend {
        match self.backend {
            Some(b) if b.is_available() => b,
            Some(_) => Backend::Scalar,
            None => gust_sparse::kernels::default_backend(),
        }
    }

    /// Configured cache budget in bytes (see
    /// [`GustConfig::with_cache_budget`]); `None` means runtime selection.
    #[must_use]
    pub fn cache_budget(&self) -> Option<usize> {
        self.cache_budget
    }

    /// The cache budget band partitioning will actually use: the
    /// configured one, else the `GUST_CACHE_BUDGET` environment variable,
    /// else the detected last-level cache size (32 MiB fallback).
    #[must_use]
    pub fn effective_cache_budget(&self) -> usize {
        self.cache_budget.unwrap_or_else(default_cache_budget)
    }

    /// Configured row budget in bytes (see
    /// [`GustConfig::with_row_budget`]); `None` means runtime selection.
    #[must_use]
    pub fn row_budget(&self) -> Option<usize> {
        self.row_budget
    }

    /// The row budget tile partitioning will actually use: the configured
    /// one, else the `GUST_ROW_BUDGET` environment variable, else the
    /// detected last-level cache size (32 MiB fallback).
    #[must_use]
    pub fn effective_row_budget(&self) -> usize {
        self.row_budget.unwrap_or_else(default_row_budget)
    }

    /// Worker threads to use for `items` independent work units (schedule
    /// windows, batched-execution register blocks): the configured
    /// [`GustConfig::with_parallelism`] count, else the `GUST_PARALLELISM`
    /// environment variable, else the host's available parallelism —
    /// never more than one per item and never zero.
    #[must_use]
    pub fn effective_workers(&self, items: usize) -> usize {
        let requested = self
            .parallelism
            .or_else(env_parallelism)
            .unwrap_or_else(|| {
                std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
            });
        requested.max(1).min(items.max(1))
    }

    /// Design name used in reports, e.g. `"gust256-EC/LB"`.
    #[must_use]
    pub fn design_name(&self) -> String {
        format!("gust{}-{}", self.length, self.policy.label())
    }
}

/// Validated `GUST_PARALLELISM`: `Ok(None)` when unset/empty.
fn checked_env_parallelism() -> Result<Option<usize>, ConfigError> {
    match std::env::var("GUST_PARALLELISM") {
        Ok(raw) if !raw.is_empty() => match raw.trim().parse::<usize>() {
            Ok(n) if n > 0 => Ok(Some(n)),
            _ => Err(ConfigError::new(
                "GUST_PARALLELISM",
                &raw,
                "must be a positive worker count (e.g. 4)",
            )),
        },
        _ => Ok(None),
    }
}

/// Validated `GUST_BACKEND`: `Ok(None)` when unset, empty or `auto`.
fn checked_env_backend() -> Result<Option<Backend>, ConfigError> {
    match std::env::var("GUST_BACKEND") {
        Ok(raw) if !raw.is_empty() && raw != "auto" => {
            Backend::from_name(&raw).map(Some).ok_or_else(|| {
                ConfigError::new(
                    "GUST_BACKEND",
                    &raw,
                    "must be one of scalar|avx2|avx512|auto",
                )
            })
        }
        _ => Ok(None),
    }
}

/// Validated byte-budget variable (`GUST_CACHE_BUDGET` /
/// `GUST_ROW_BUDGET`): `Ok(None)` when unset/empty.
fn checked_env_byte_budget(var: &str) -> Result<Option<usize>, ConfigError> {
    match std::env::var(var) {
        Ok(raw) if !raw.is_empty() => parse_byte_size(&raw).map(Some).ok_or_else(|| {
            ConfigError::new(
                var,
                &raw,
                "must be a non-zero byte size (e.g. 262144, 256k, 4m)",
            )
        }),
        _ => Ok(None),
    }
}

/// The `GUST_PARALLELISM` environment override, parsed once per process.
/// `0` or a non-number warns (once) and falls back to automatic
/// parallelism — validate with [`GustConfig::from_env_checked`] when a
/// misspelled CI leg should fail loudly instead.
fn env_parallelism() -> Option<usize> {
    static ENV: std::sync::OnceLock<Option<usize>> = std::sync::OnceLock::new();
    *ENV.get_or_init(|| match checked_env_parallelism() {
        Ok(n) => n,
        Err(e) => {
            eprintln!("warning: {e}; using automatic parallelism");
            None
        }
    })
}

/// The process-wide default cache budget: `GUST_CACHE_BUDGET` (plain
/// bytes or `k`/`m`/`g` suffixed) if set, otherwise the host's detected
/// last-level cache size, otherwise 32 MiB. Read once and cached.
#[must_use]
pub fn default_cache_budget() -> usize {
    static DEFAULT: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *DEFAULT.get_or_init(|| env_byte_budget("GUST_CACHE_BUDGET"))
}

/// The process-wide default row budget for 2D tiled schedules:
/// `GUST_ROW_BUDGET` (plain bytes or `k`/`m`/`g` suffixed) if set,
/// otherwise the host's detected last-level cache size, otherwise
/// 32 MiB. Read once and cached.
#[must_use]
pub fn default_row_budget() -> usize {
    static DEFAULT: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *DEFAULT.get_or_init(|| env_byte_budget("GUST_ROW_BUDGET"))
}

/// Resolves one byte-budget environment variable: the parsed value when
/// set, the detected LLC size otherwise, 32 MiB as the last resort. A
/// malformed or overflowing value warns and takes the detected default —
/// validate with [`GustConfig::from_env_checked`] when a misspelled CI
/// leg should fail loudly instead.
fn env_byte_budget(var: &str) -> usize {
    let configured = match checked_env_byte_budget(var) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("warning: {e}; using the detected cache size");
            None
        }
    };
    configured.unwrap_or_else(|| detect_llc_bytes().unwrap_or(32 * 1024 * 1024))
}

/// Parses `"262144"`, `"256k"`, `"4M"`, `"1g"` into bytes. `None` on
/// malformed input, a zero size, or a product that overflows `usize`
/// (`checked_mul`: `99999999999g` must hit the caller's panic path, not
/// wrap to a tiny budget in release builds).
fn parse_byte_size(raw: &str) -> Option<usize> {
    let raw = raw.trim();
    let (digits, multiplier) = match raw.chars().last()? {
        'k' | 'K' => (&raw[..raw.len() - 1], 1024usize),
        'm' | 'M' => (&raw[..raw.len() - 1], 1024 * 1024),
        'g' | 'G' => (&raw[..raw.len() - 1], 1024 * 1024 * 1024),
        _ => (raw, 1),
    };
    let n: usize = digits.trim().parse().ok()?;
    n.checked_mul(multiplier).filter(|&b| b > 0)
}

/// Detects the host's last-level data/unified cache size from Linux
/// sysfs (`/sys/devices/system/cpu/cpu0/cache/index*/size`). `None` off
/// Linux or when the hierarchy is unreadable.
fn detect_llc_bytes() -> Option<usize> {
    let dir = std::fs::read_dir("/sys/devices/system/cpu/cpu0/cache").ok()?;
    let mut best: Option<(u32, usize)> = None;
    for entry in dir.flatten() {
        let path = entry.path();
        let read = |name: &str| std::fs::read_to_string(path.join(name)).ok();
        let Some(kind) = read("type") else { continue };
        if !matches!(kind.trim(), "Data" | "Unified") {
            continue;
        }
        // A malformed entry skips itself, not the whole scan: the real
        // LLC may still be readable in a later index.
        let Some(level) = read("level").and_then(|s| s.trim().parse::<u32>().ok()) else {
            continue;
        };
        let Some(size) = read("size").and_then(|s| parse_byte_size(s.trim())) else {
            continue;
        };
        if best.is_none_or(|(l, _)| level > l) {
            best = Some((level, size));
        }
    }
    best.map(|(_, size)| size)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = GustConfig::new(256);
        assert_eq!(c.length(), 256);
        assert_eq!(c.arithmetic_units(), 512);
        assert_eq!(c.policy(), SchedulingPolicy::EdgeColoringLb);
        assert!((c.frequency_hz() - 96.0e6).abs() < 1.0);
    }

    #[test]
    fn builder_chains() {
        let c = GustConfig::new(8)
            .with_policy(SchedulingPolicy::Naive)
            .with_coloring(ColoringAlgorithm::Konig)
            .with_frequency(1.0e6)
            .with_parallelism(Some(4))
            .with_backend(Some(Backend::Scalar));
        assert_eq!(c.policy(), SchedulingPolicy::Naive);
        assert_eq!(c.coloring(), ColoringAlgorithm::Konig);
        assert!((c.frequency_hz() - 1.0e6).abs() < f64::EPSILON);
        assert_eq!(c.parallelism(), Some(4));
        assert_eq!(c.backend(), Some(Backend::Scalar));
    }

    #[test]
    fn effective_backend_is_always_runnable() {
        // Default: runtime selection, whatever it picks must be available.
        assert!(GustConfig::new(8).effective_backend().is_available());
        // Pinned scalar stays scalar everywhere.
        let scalar = GustConfig::new(8).with_backend(Some(Backend::Scalar));
        assert_eq!(scalar.effective_backend(), Backend::Scalar);
        // Pinned AVX2 resolves to AVX2 on hosts that have it, scalar
        // elsewhere — never an unrunnable backend.
        let simd = GustConfig::new(8).with_backend(Some(Backend::Avx2));
        let effective = simd.effective_backend();
        assert!(effective.is_available());
        if Backend::Avx2.is_available() {
            assert_eq!(effective, Backend::Avx2);
        } else {
            assert_eq!(effective, Backend::Scalar);
        }
        // Pinned AVX-512 likewise: the backend on capable hosts, a
        // graceful scalar fallback everywhere else (the `GUST_BACKEND=
        // avx512` path on a host without the feature set).
        let wide = GustConfig::new(8).with_backend(Some(Backend::Avx512));
        let effective = wide.effective_backend();
        assert!(effective.is_available());
        if Backend::Avx512.is_available() {
            assert_eq!(effective, Backend::Avx512);
        } else {
            assert_eq!(effective, Backend::Scalar);
        }
    }

    #[test]
    fn parallelism_defaults_to_auto() {
        assert_eq!(GustConfig::new(8).parallelism(), None);
        let seq = GustConfig::new(8).with_parallelism(Some(1));
        assert_eq!(seq.parallelism(), Some(1));
    }

    #[test]
    #[should_panic(expected = "parallelism must be at least 1")]
    fn zero_parallelism_panics() {
        let _ = GustConfig::new(8).with_parallelism(Some(0));
    }

    #[test]
    fn design_name_encodes_length_and_policy() {
        let c = GustConfig::new(87).with_policy(SchedulingPolicy::EdgeColoring);
        assert_eq!(c.design_name(), "gust87-EC");
    }

    #[test]
    fn labels() {
        assert_eq!(SchedulingPolicy::Naive.label(), "Naive");
        assert_eq!(SchedulingPolicy::EdgeColoring.label(), "EC");
        assert_eq!(SchedulingPolicy::EdgeColoringLb.label(), "EC/LB");
        assert_eq!(ColoringAlgorithm::Konig.label(), "konig-optimal");
    }

    #[test]
    #[should_panic(expected = "length must be non-zero")]
    fn zero_length_panics() {
        let _ = GustConfig::new(0);
    }

    #[test]
    fn cache_budget_defaults_to_auto_and_pins() {
        let auto = GustConfig::new(8);
        assert_eq!(auto.cache_budget(), None);
        // Auto-detection always lands on something positive.
        assert!(auto.effective_cache_budget() > 0);
        let pinned = GustConfig::new(8).with_cache_budget(Some(1 << 20));
        assert_eq!(pinned.cache_budget(), Some(1 << 20));
        assert_eq!(pinned.effective_cache_budget(), 1 << 20);
    }

    #[test]
    #[should_panic(expected = "at least 1 byte")]
    fn zero_cache_budget_panics() {
        let _ = GustConfig::new(8).with_cache_budget(Some(0));
    }

    #[test]
    fn byte_sizes_parse_with_suffixes() {
        assert_eq!(parse_byte_size("262144"), Some(262_144));
        assert_eq!(parse_byte_size("256k"), Some(256 * 1024));
        assert_eq!(parse_byte_size("4M"), Some(4 * 1024 * 1024));
        assert_eq!(parse_byte_size("1g"), Some(1 << 30));
        assert_eq!(parse_byte_size("266240K"), Some(266_240 * 1024));
        assert_eq!(parse_byte_size("0"), None);
        assert_eq!(parse_byte_size("lots"), None);
    }

    #[test]
    fn byte_sizes_reject_overflowing_suffix_products() {
        // A suffix product past usize::MAX must be rejected (checked_mul),
        // not wrap to a tiny budget in release builds — the env resolver
        // then panics with its "must be bytes" message instead of
        // silently running a different budget than the variable claims.
        assert_eq!(parse_byte_size("99999999999g"), None);
        assert_eq!(parse_byte_size(&format!("{}k", usize::MAX)), None);
        // The largest representable products still parse.
        assert_eq!(
            parse_byte_size(&format!("{}", usize::MAX)),
            Some(usize::MAX)
        );
        assert_eq!(
            parse_byte_size(&format!("{}k", usize::MAX >> 10)),
            Some((usize::MAX >> 10) << 10)
        );
    }

    #[test]
    fn row_budget_defaults_to_auto_and_pins() {
        let auto = GustConfig::new(8);
        assert_eq!(auto.row_budget(), None);
        assert!(auto.effective_row_budget() > 0);
        let pinned = GustConfig::new(8).with_row_budget(Some(1 << 16));
        assert_eq!(pinned.row_budget(), Some(1 << 16));
        assert_eq!(pinned.effective_row_budget(), 1 << 16);
    }

    #[test]
    #[should_panic(expected = "at least 1 byte")]
    fn zero_row_budget_panics() {
        let _ = GustConfig::new(8).with_row_budget(Some(0));
    }

    #[test]
    fn config_error_names_variable_value_and_expectation() {
        let e = ConfigError::new(
            "GUST_PARALLELISM",
            "banana",
            "must be a positive worker count",
        );
        let rendered = e.to_string();
        assert!(rendered.contains("GUST_PARALLELISM"));
        assert!(rendered.contains("banana"));
        assert!(rendered.contains("positive worker count"));
    }

    #[test]
    fn from_env_checked_rejects_zero_length_without_panicking() {
        let e = GustConfig::from_env_checked(0).unwrap_err();
        assert_eq!(e.var, "length");
    }

    #[test]
    fn from_env_checked_succeeds_in_a_clean_environment() {
        // The test harness does not set GUST_* variables, so every
        // checked resolver should land on automatic selection. (Runs
        // that deliberately set them — the CI fault-injection leg — set
        // well-formed values, so this stays true there too.)
        let config = GustConfig::from_env_checked(8).expect("clean env must validate");
        assert_eq!(config.length(), 8);
    }
}
