//! Cache-blocked column-band schedules: 2D blocking composed with the
//! edge-coloring schedule.
//!
//! On matrices whose operand vector exceeds the last-level cache, the
//! random `x[col]` gathers dominate execution and the window-local
//! staging heuristic of PR 3 only rescues hub-concentrated shapes. The
//! RACE line of work shows the fix: compose the coloring with
//! **cache-aware column blocking**. This module partitions the columns
//! into [`ColumnBands`] sized so one band's operand slice fits a
//! configurable cache budget ([`crate::GustConfig::with_cache_budget`]),
//! colors each window × band sub-graph independently, and stores the
//! result as a [`BandedSchedule`]: per window, one structure-of-arrays
//! slot stream ordered **band-major** with CSR-style band offsets
//! ([`BandedWindow::band_slots`]) and a parallel **band-local** column
//! array ([`BandedWindow::local_cols`]), so a band walk can index
//! straight into the band's slice of `x`.
//!
//! # Bit-identity
//!
//! Concatenating the per-band colorings of one window yields a *valid*
//! ordinary [`WindowSchedule`] (each color bucket still came from one
//! collision-free band coloring), exposed by
//! [`BandedSchedule::to_unbanded`]. Within one color every adder receives
//! at most one product, so an adder's accumulation order is exactly the
//! slot order of the slots that target it — which is the same whether
//! the engine walks the merged window flat (unbanded) or band by band
//! with accumulator carry (banded). Banded execution is therefore
//! **bit-identical** to unbanded execution of [`BandedSchedule::to_unbanded`]
//! under every backend (the SIMD kernels vectorize multiplies, which are
//! IEEE-exact, and keep per-accumulator add order); with a single band
//! the banded schedule *is* the ordinary schedule, coloring and all.
//! `tests/banded_equivalence.rs` pins both properties.
//!
//! # Cost model
//!
//! Banding trades colors for locality: `Σ_b colors(w, b) ≥ colors(w)`,
//! so the modeled accelerator cycle count can only grow (the per-band
//! Vizing bounds still hold). The host-side win is that every gather in
//! a band pass hits a cache-resident slice — the software analog of
//! streaming the input vector through an on-chip buffer one partition at
//! a time.

use super::scheduled::{ScheduledMatrix, WindowSchedule};
use std::ops::Range;

/// A partition of the column range into contiguous bands.
///
/// Band `b` covers columns `starts[b]..starts[b + 1]`; bands are
/// non-empty except for the degenerate `cols == 0` case, which gets one
/// empty band so every matrix has at least one band.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ColumnBands {
    starts: Vec<u32>,
}

impl ColumnBands {
    /// Partitions `cols` columns so that one band's operand slice at the
    /// **effective batch width** — `band_cols × batch` elements of
    /// `elem_bytes` each — fits in `budget_bytes`.
    ///
    /// `batch` is the number of right-hand sides a band walk streams per
    /// pass: **1** for single-vector [`crate::Gust::execute`] walks, the
    /// backend's register block (or the batch size, whichever is
    /// smaller) for [`crate::Gust::execute_batch`]. Earlier revisions
    /// always divided the budget by the register block, which handed
    /// single-vector walks bands `reg_block×` narrower than the budget
    /// allows and cost ~35 % to accumulator re-streaming on uniform
    /// LLC-exceeding shapes — sizing is now a per-call decision threaded
    /// from the scheduling entry points.
    ///
    /// `elem_bytes` is the operand element width (4 for f32 walks, 8 for
    /// f64): an f64 band slice occupies twice the cache per column, so
    /// the budget halves the band width rather than silently assuming
    /// 4-byte operands.
    ///
    /// # Panics
    ///
    /// Panics if `budget_bytes`, `batch` or `elem_bytes` is zero.
    #[must_use]
    pub fn for_budget(cols: usize, budget_bytes: usize, batch: usize, elem_bytes: usize) -> Self {
        assert!(budget_bytes > 0, "cache budget must be non-zero");
        assert!(batch > 0, "effective batch width must be non-zero");
        assert!(elem_bytes > 0, "element width must be non-zero");
        let band_cols = (budget_bytes / (elem_bytes * batch)).max(1);
        let count = cols.div_ceil(band_cols).max(1);
        Self::with_count(cols, count)
    }

    /// Partitions `cols` columns into exactly `count` near-equal bands
    /// (used by tests and tuning sweeps; production sizing goes through
    /// [`ColumnBands::for_budget`]).
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero or exceeds `max(cols, 1)`.
    #[must_use]
    pub fn with_count(cols: usize, count: usize) -> Self {
        assert!(count > 0, "need at least one band");
        assert!(
            count <= cols.max(1),
            "cannot split {cols} columns into {count} non-empty bands"
        );
        let starts = (0..=count).map(|b| (b * cols / count) as u32).collect();
        Self { starts }
    }

    /// Rebuilds a partition from explicit boundaries (the serializer's
    /// path; boundaries were validated by the reader).
    ///
    /// # Panics
    ///
    /// Panics if fewer than two boundaries or a descending pair.
    #[must_use]
    pub(crate) fn from_starts(starts: Vec<u32>) -> Self {
        assert!(starts.len() >= 2, "need at least one band");
        assert!(
            starts.windows(2).all(|w| w[0] <= w[1]) && starts[0] == 0,
            "band boundaries must ascend from 0"
        );
        Self { starts }
    }

    /// Number of bands.
    #[must_use]
    pub fn count(&self) -> usize {
        self.starts.len() - 1
    }

    /// The band boundaries: `starts()[b]..starts()[b + 1]` is band `b`.
    #[must_use]
    pub fn starts(&self) -> &[u32] {
        &self.starts
    }

    /// The column range of band `b`.
    ///
    /// # Panics
    ///
    /// Panics if `b >= self.count()`.
    #[must_use]
    pub fn range(&self, b: usize) -> Range<u32> {
        self.starts[b]..self.starts[b + 1]
    }

    /// Total columns covered.
    #[must_use]
    pub fn cols(&self) -> usize {
        *self.starts.last().expect("at least one boundary") as usize
    }
}

/// A density-aware band-count decision for one (sub-)matrix.
///
/// The cache budget alone gives a **lower** bound on the band count
/// (narrower bands keep a band's operand slice resident), but it is not
/// the whole story: a row with `d` non-zeros touches at most `d`
/// distinct bands, so once the band count passes the average row degree,
/// extra bands stop making any gather cheaper while every additional
/// band re-streams each window's accumulator bank one more time. RACE
/// (Alappat et al.) makes the same observation for coloring-based SpMV:
/// the blocking must be chosen per matrix from its structure, not from
/// the cache geometry alone.
///
/// [`BandPlan::choose`] therefore takes the budget-implied count
/// ([`BandPlan::budget_bands`]) and caps it at the nnz/row density
/// ([`BandPlan::density_cap`]): per window of `l` rows, a band then
/// averages at least `l` scheduled slots — one useful multiply–accumulate
/// per accumulator value the band sweep re-streams.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BandPlan {
    bands: ColumnBands,
    budget_bands: usize,
    density_cap: usize,
}

impl BandPlan {
    /// Chooses a band partition for a `rows × cols` matrix with `nnz`
    /// non-zeros, walked at effective batch width `batch` (1 for
    /// single-vector walks, the per-block panel width for batched ones)
    /// with operand elements `elem_bytes` wide (4 for f32, 8 for f64)
    /// under a cache budget of `budget_bytes`.
    ///
    /// The count is the budget-implied band count capped at the average
    /// row degree (and always within `1..=max(cols, 1)`); degenerate
    /// shapes (`cols == 0`, empty matrices, budgets below one column
    /// slice) all resolve to a valid partition rather than panicking.
    ///
    /// # Panics
    ///
    /// Panics if `budget_bytes`, `batch` or `elem_bytes` is zero.
    #[must_use]
    pub fn choose(
        rows: usize,
        cols: usize,
        nnz: usize,
        batch: usize,
        elem_bytes: usize,
        budget_bytes: usize,
    ) -> Self {
        assert!(budget_bytes > 0, "cache budget must be non-zero");
        assert!(batch > 0, "effective batch width must be non-zero");
        assert!(elem_bytes > 0, "element width must be non-zero");
        let band_cols = (budget_bytes / (elem_bytes * batch)).max(1);
        let budget_bands = cols.div_ceil(band_cols).max(1);
        let density_cap = (nnz / rows.max(1)).max(1);
        let count = budget_bands.min(density_cap).min(cols.max(1)).max(1);
        Self {
            bands: ColumnBands::with_count(cols, count),
            budget_bands,
            density_cap,
        }
    }

    /// As [`BandPlan::choose`], for one **row tile** of a 2D tiled
    /// schedule: additionally caps the band count at the tile's
    /// per-column gather count, `max(1, nnz / cols)`.
    ///
    /// The extra cap matters because a tile walks only a slice of the
    /// matrix: banding pays when the *tile itself* re-gathers a band's
    /// columns, and a hyper-sparse tile (fewer non-zeros than columns)
    /// touches each operand at most about once — its band sweeps would
    /// re-stream band-sized operand slices per tile with no reuse to
    /// show for it. The untiled [`BandPlan::choose`] deliberately skips
    /// this cap: a whole-matrix band sweep amortizes each band slice
    /// across every window of the matrix.
    ///
    /// # Panics
    ///
    /// Panics if `budget_bytes`, `batch` or `elem_bytes` is zero.
    #[must_use]
    pub fn choose_for_tile(
        rows: usize,
        cols: usize,
        nnz: usize,
        batch: usize,
        elem_bytes: usize,
        budget_bytes: usize,
    ) -> Self {
        let mut plan = Self::choose(rows, cols, nnz, batch, elem_bytes, budget_bytes);
        let reuse_cap = (nnz / cols.max(1)).max(1);
        if plan.count() > reuse_cap {
            plan.bands = ColumnBands::with_count(cols, reuse_cap.min(cols.max(1)));
        }
        plan
    }

    /// The chosen partition.
    #[must_use]
    pub fn bands(&self) -> &ColumnBands {
        &self.bands
    }

    /// Consumes the plan, yielding the partition.
    #[must_use]
    pub fn into_bands(self) -> ColumnBands {
        self.bands
    }

    /// Bands chosen (equals `self.bands().count()`).
    #[must_use]
    pub fn count(&self) -> usize {
        self.bands.count()
    }

    /// The band count the cache budget alone would have demanded.
    #[must_use]
    pub fn budget_bands(&self) -> usize {
        self.budget_bands
    }

    /// The nnz/row density cap applied to [`BandPlan::budget_bands`].
    #[must_use]
    pub fn density_cap(&self) -> usize {
        self.density_cap
    }
}

/// One window of a [`BandedSchedule`]: the merged (band-major)
/// [`WindowSchedule`] plus the band offsets and band-local columns the
/// banded walk indexes with.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BandedWindow {
    /// The bands' schedules concatenated band-major: colors summed, slot
    /// arrays appended, global column indices. A valid ordinary window.
    window: WindowSchedule,
    /// `band_slot_ptr[b]..band_slot_ptr[b + 1]` indexes the slot arrays
    /// for band `b` (CSR-style, length `bands + 1`).
    band_slot_ptr: Vec<u32>,
    /// Per slot, the column rebased to its band:
    /// `local_cols[i] = cols[i] - band_start(band of i)`. What the band
    /// walk feeds the gather kernels, so indices stay inside the band's
    /// operand slice.
    local_cols: Vec<u32>,
}

impl BandedWindow {
    /// Merges per-band window schedules (global columns, one per band —
    /// possibly empty) into the band-major layout.
    ///
    /// # Panics
    ///
    /// Panics if `bands.len() + 1 != band_starts.len()` or a band's
    /// columns fall outside its range.
    #[must_use]
    pub(crate) fn from_bands(bands: &[WindowSchedule], band_starts: &[u32]) -> Self {
        assert_eq!(bands.len() + 1, band_starts.len(), "band count mismatch");
        let nnz: usize = bands.iter().map(WindowSchedule::nnz).sum();
        let colors: u32 = bands.iter().map(WindowSchedule::colors).sum();
        let stalls: u64 = bands.iter().map(WindowSchedule::stalls).sum();
        // The merged window's bound: any band's bound is a valid lower
        // bound on its own colors, so the max is a valid (if loose, for
        // multiple bands) bound on the sum. With one band it is exact.
        let vizing = bands
            .iter()
            .map(WindowSchedule::vizing_bound)
            .max()
            .unwrap_or(0);

        let mut color_ptr = Vec::with_capacity(colors as usize + 1);
        let mut lanes = Vec::with_capacity(nnz);
        let mut row_mods = Vec::with_capacity(nnz);
        let mut cols = Vec::with_capacity(nnz);
        let mut values = Vec::with_capacity(nnz);
        let mut local_cols = Vec::with_capacity(nnz);
        let mut band_slot_ptr = Vec::with_capacity(bands.len() + 1);
        color_ptr.push(0u32);
        band_slot_ptr.push(0u32);
        for (b, band) in bands.iter().enumerate() {
            let base = lanes.len() as u32;
            let start = band_starts[b];
            let end = band_starts[b + 1];
            for &ptr in &band.color_ptr()[1..] {
                color_ptr.push(base + ptr);
            }
            lanes.extend_from_slice(band.lanes());
            row_mods.extend_from_slice(band.row_mods());
            values.extend_from_slice(band.values());
            for &c in band.cols() {
                assert!(
                    c >= start && c < end,
                    "band {b}: column {c} outside [{start}, {end})"
                );
                cols.push(c);
                local_cols.push(c - start);
            }
            band_slot_ptr.push(lanes.len() as u32);
        }
        let window = WindowSchedule::from_soa(
            colors, vizing, stalls, color_ptr, lanes, row_mods, cols, values,
        );
        Self {
            window,
            band_slot_ptr,
            local_cols,
        }
    }

    /// Rebuilds a banded window from a merged window plus its band slot
    /// offsets (the serializer's path), revalidating that every slot's
    /// column sits inside its band. Returns a description of the first
    /// violation instead of a window.
    pub(crate) fn from_merged(
        window: WindowSchedule,
        band_slot_ptr: Vec<u32>,
        band_starts: &[u32],
    ) -> Result<Self, String> {
        if band_slot_ptr.len() != band_starts.len() {
            return Err(format!(
                "band pointer length {} inconsistent with {} bands",
                band_slot_ptr.len(),
                band_starts.len() - 1
            ));
        }
        if band_slot_ptr.first() != Some(&0)
            || band_slot_ptr.last().copied() != Some(window.nnz() as u32)
            || band_slot_ptr.windows(2).any(|w| w[0] > w[1])
        {
            return Err("band slot pointers must ascend from 0 to nnz".into());
        }
        let mut local_cols = Vec::with_capacity(window.nnz());
        for b in 0..band_slot_ptr.len() - 1 {
            let (start, end) = (band_starts[b], band_starts[b + 1]);
            for i in band_slot_ptr[b] as usize..band_slot_ptr[b + 1] as usize {
                let c = window.cols()[i];
                if c < start || c >= end {
                    return Err(format!("band {b}: column {c} outside [{start}, {end})"));
                }
                local_cols.push(c - start);
            }
        }
        Ok(Self {
            window,
            band_slot_ptr,
            local_cols,
        })
    }

    /// The merged band-major window (global columns) — what
    /// [`BandedSchedule::to_unbanded`] collects.
    #[must_use]
    pub fn window(&self) -> &WindowSchedule {
        &self.window
    }

    /// The slot range of band `b` into the window's slot arrays (and
    /// into [`BandedWindow::local_cols`]).
    ///
    /// # Panics
    ///
    /// Panics if `b` is out of range.
    #[must_use]
    pub fn band_slots(&self, b: usize) -> Range<usize> {
        self.band_slot_ptr[b] as usize..self.band_slot_ptr[b + 1] as usize
    }

    /// The CSR-style per-band slot offsets (length `bands + 1`).
    #[must_use]
    pub fn band_slot_ptr(&self) -> &[u32] {
        &self.band_slot_ptr
    }

    /// Per-slot band-local column indices (see the struct docs).
    #[must_use]
    pub fn local_cols(&self) -> &[u32] {
        &self.local_cols
    }

    /// Non-zeros scheduled in this window.
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.window.nnz()
    }
}

/// A fully scheduled matrix with cache-blocked column bands — the banded
/// counterpart of [`ScheduledMatrix`], produced by
/// [`crate::schedule::Scheduler::schedule_banded`] and executed by
/// [`crate::Gust::execute_banded`] / [`crate::Gust::execute_batch_banded`].
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BandedSchedule {
    length: usize,
    rows: usize,
    cols: usize,
    nnz: usize,
    row_perm: Vec<u32>,
    bands: ColumnBands,
    windows: Vec<BandedWindow>,
}

impl BandedSchedule {
    /// Assembles a banded schedule from its parts. Crate-internal:
    /// produced by the scheduler and the binary reader, both of which
    /// guarantee (or validate) the band invariants.
    ///
    /// # Panics
    ///
    /// Panics if the band partition does not cover `cols`, a window's
    /// band count disagrees with the partition, an adder index reaches
    /// `length`, or a row-permutation entry reaches `rows` — the bounds
    /// the SIMD execution kernels rely on.
    #[must_use]
    pub(crate) fn from_parts(
        length: usize,
        rows: usize,
        cols: usize,
        row_perm: Vec<u32>,
        bands: ColumnBands,
        windows: Vec<BandedWindow>,
    ) -> Self {
        assert_eq!(bands.cols(), cols, "band partition must cover all columns");
        let nnz = windows.iter().map(BandedWindow::nnz).sum();
        for (w, window) in windows.iter().enumerate() {
            assert_eq!(
                window.band_slot_ptr.len(),
                bands.count() + 1,
                "window {w}: band count mismatch"
            );
            let max_adder = window.window.row_mods().iter().copied().max().unwrap_or(0);
            assert!(
                window.window.row_mods().is_empty() || (max_adder as usize) < length,
                "window {w}: adder {max_adder} out of range for length {length}"
            );
        }
        assert!(
            row_perm.iter().all(|&r| (r as usize) < rows),
            "row permutation entry out of range for {rows} rows"
        );
        Self {
            length,
            rows,
            cols,
            nnz,
            row_perm,
            bands,
            windows,
        }
    }

    /// Accelerator length `l` the schedule targets.
    #[must_use]
    pub fn length(&self) -> usize {
        self.length
    }

    /// Rows of the original matrix.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Columns of the original matrix.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Scheduled non-zeros (equals the source matrix's nnz).
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// The column-band partition.
    #[must_use]
    pub fn bands(&self) -> &ColumnBands {
        &self.bands
    }

    /// Per-window banded schedules, in execution order.
    #[must_use]
    pub fn windows(&self) -> &[BandedWindow] {
        &self.windows
    }

    /// The row permutation (`scheduled position → original row`).
    #[must_use]
    pub fn row_perm(&self) -> &[u32] {
        &self.row_perm
    }

    /// Rows covered by window `w` (as [`ScheduledMatrix::window_rows`]).
    ///
    /// # Panics
    ///
    /// Panics if `w` is out of range.
    #[must_use]
    pub fn window_rows(&self, w: usize) -> usize {
        assert!(w < self.windows.len(), "window {w} out of range");
        (self.rows - w * self.length).min(self.length)
    }

    /// Total colors across windows and bands — the banded streaming cycle
    /// count. At least [`ScheduledMatrix::total_colors`] of the unbanded
    /// schedule: banding trades modeled cycles for host cache locality.
    #[must_use]
    pub fn total_colors(&self) -> u64 {
        self.windows
            .iter()
            .map(|w| u64::from(w.window.colors()))
            .sum()
    }

    /// Total stalled lane-cycles (naive scheduling only).
    #[must_use]
    pub fn total_stalls(&self) -> u64 {
        self.windows.iter().map(|w| w.window.stalls()).sum()
    }

    /// Strips the band metadata: the merged windows as an ordinary
    /// [`ScheduledMatrix`], executable by the unbanded engine. Banded
    /// execution is bit-identical to unbanded execution of this schedule
    /// (see the module docs); with one band this *is* the schedule
    /// [`crate::schedule::Scheduler::schedule`] would have produced.
    #[must_use]
    pub fn to_unbanded(&self) -> ScheduledMatrix {
        ScheduledMatrix::from_parts(
            self.length,
            self.rows,
            self.cols,
            self.row_perm.clone(),
            self.windows.iter().map(|w| w.window.clone()).collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn with_count_covers_all_columns_in_order() {
        for (cols, count) in [(9usize, 2usize), (100, 7), (5, 5), (1, 1), (64, 1)] {
            let bands = ColumnBands::with_count(cols, count);
            assert_eq!(bands.count(), count);
            assert_eq!(bands.cols(), cols);
            assert_eq!(bands.starts()[0], 0);
            for b in 0..count {
                let r = bands.range(b);
                assert!(r.start < r.end, "{cols} cols / {count}: empty band {b}");
            }
        }
    }

    #[test]
    fn for_budget_sizes_the_batched_slice() {
        // 1 KiB budget, reg_block 8 → 32 columns per band.
        let bands = ColumnBands::for_budget(100, 1024, 8, 4);
        assert_eq!(bands.count(), 4); // ceil(100 / 32)
        for b in 0..bands.count() {
            let width = bands.range(b).len();
            assert!(width * 8 * 4 <= 1024 + 8 * 4, "band {b} width {width}");
        }
        // A budget covering everything yields one band.
        assert_eq!(ColumnBands::for_budget(100, 1 << 20, 8, 4).count(), 1);
    }

    #[test]
    fn zero_cols_gets_one_empty_band() {
        let bands = ColumnBands::for_budget(0, 1024, 8, 4);
        assert_eq!(bands.count(), 1);
        assert_eq!(bands.cols(), 0);
    }

    #[test]
    #[should_panic(expected = "non-empty bands")]
    fn more_bands_than_columns_panics() {
        let _ = ColumnBands::with_count(3, 4);
    }

    #[test]
    fn for_budget_takes_the_effective_batch_width() {
        // Single-vector sizing (batch = 1) must not divide the budget by
        // the register block: 1 KiB covers 256 single-vector columns but
        // only 32 batched ones.
        let single = ColumnBands::for_budget(1000, 1024, 1, 4);
        let batched = ColumnBands::for_budget(1000, 1024, 8, 4);
        assert_eq!(single.count(), 4); // ceil(1000 / 256)
        assert_eq!(batched.count(), 32); // ceil(1000 / 32)
        assert!(single.count() <= batched.count());
    }

    #[test]
    fn for_budget_handles_degenerate_budgets() {
        // A budget smaller than one column slice degenerates to one
        // column per band, never zero-width bands.
        let bands = ColumnBands::for_budget(5, 1, 8, 4);
        assert_eq!(bands.count(), 5);
        for b in 0..bands.count() {
            assert_eq!(bands.range(b).len(), 1);
        }
        assert_eq!(ColumnBands::for_budget(0, 1, 8, 4).count(), 1);
    }

    #[test]
    fn band_plan_caps_the_band_count_at_the_row_density() {
        // 1024 rows × 4096 cols × 8 nnz/row under a budget that would
        // demand 64 batched bands: the density cap wins at 8.
        let plan = BandPlan::choose(1024, 4096, 8 * 1024, 8, 4, 4096 * 4 * 8 / 64);
        assert_eq!(plan.budget_bands(), 64);
        assert_eq!(plan.density_cap(), 8);
        assert_eq!(plan.count(), 8);
        // A generous budget keeps one band regardless of density.
        assert_eq!(
            BandPlan::choose(1024, 4096, 8 * 1024, 8, 4, 1 << 30).count(),
            1
        );
    }

    #[test]
    fn band_plan_handles_degenerate_shapes() {
        // cols == 0: one empty band.
        let plan = BandPlan::choose(10, 0, 0, 8, 4, 1024);
        assert_eq!(plan.count(), 1);
        assert_eq!(plan.bands().cols(), 0);
        // Empty matrix: density cap clamps to one band.
        assert_eq!(BandPlan::choose(0, 64, 0, 1, 4, 1024).count(), 1);
        // Budget below one column slice: never more bands than columns
        // (with_count would panic otherwise), still density-capped.
        let tiny = BandPlan::choose(2, 7, 1000, 8, 4, 1);
        assert!(tiny.count() <= 7);
        assert_eq!(tiny.bands().cols(), 7);
    }

    #[test]
    fn tile_plans_cap_bands_at_the_per_column_gather_count() {
        // A hyper-sparse tile (fewer non-zeros than columns) gains
        // nothing from bands: one band, regardless of what the budget
        // would demand.
        let tile = BandPlan::choose_for_tile(32 * 1024, 1 << 20, 6 * 32 * 1024, 8, 4, 1 << 20);
        assert_eq!(tile.count(), 1);
        // The same shape untiled keeps its density-capped budget count.
        let whole = BandPlan::choose(32 * 1024, 1 << 20, 6 * 32 * 1024, 8, 4, 1 << 20);
        assert!(whole.count() > 1);
        // A dense tile keeps the ordinary plan.
        let dense = BandPlan::choose_for_tile(1024, 512, 64 * 1024, 8, 4, 1024);
        assert_eq!(
            dense.count(),
            BandPlan::choose(1024, 512, 64 * 1024, 8, 4, 1024).count()
        );
        // Degenerate columns stay valid.
        assert_eq!(BandPlan::choose_for_tile(10, 0, 0, 8, 4, 1024).count(), 1);
    }

    #[test]
    fn f64_operands_halve_the_band_width() {
        // The ISSUE 7 fix pinned: the budget divides by the element
        // width, so an f64 band holds half the columns of an f32 band
        // under the same budget (and the plan doubles its band count
        // until a structural cap takes over).
        let f32_bands = ColumnBands::for_budget(1024, 4096, 8, 4);
        let f64_bands = ColumnBands::for_budget(1024, 4096, 8, 8);
        assert_eq!(f32_bands.count(), 8); // ceil(1024 / 128)
        assert_eq!(f64_bands.count(), 16); // ceil(1024 / 64)

        let f32_plan = BandPlan::choose(1024, 4096, 64 * 1024, 8, 4, 4096);
        let f64_plan = BandPlan::choose(1024, 4096, 64 * 1024, 8, 8, 4096);
        assert_eq!(f64_plan.budget_bands(), 2 * f32_plan.budget_bands());
        assert!(f64_plan.count() >= f32_plan.count());
    }

    #[test]
    fn band_plan_single_vector_needs_no_more_bands_than_batched() {
        // The PR 4 mis-sizing pinned: for the same budget, the
        // single-vector plan must never be finer than the batched plan.
        for (rows, cols, nnz) in [(512usize, 4096usize, 32 * 512usize), (64, 100, 6400)] {
            for budget in [256usize, 4096, 1 << 20] {
                let single = BandPlan::choose(rows, cols, nnz, 1, 4, budget);
                let batched = BandPlan::choose(rows, cols, nnz, 8, 4, budget);
                assert!(
                    single.count() <= batched.count(),
                    "{rows}x{cols}/{nnz} at {budget}: single {} > batched {}",
                    single.count(),
                    batched.count()
                );
            }
        }
    }
}
