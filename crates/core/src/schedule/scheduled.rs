//! The scheduled storage format: `M_sch`, `Row_sch`, `Col_sch` (paper §3.3).
//!
//! The paper materializes three dense `l × C_total` matrices; we store the
//! same information sparsely — per color (= per cycle), the list of occupied
//! lanes with their value, destination adder and original column — which is
//! O(nnz) memory at any utilization. [`ScheduledMatrix::dense_m_sch`] and
//! friends materialize the paper's dense arrays on demand (Listing 2).
//!
//! # Layout
//!
//! A [`WindowSchedule`] is a structure of arrays: four parallel flat arrays
//! (`values`, `cols`, `row_mods`, `lanes`) indexed by slot id, plus
//! CSR-style per-color offsets (`color_ptr`). The arrays are color-major
//! (all slots of color 0, then color 1, …) and lane-sorted within each
//! color, so the execution engine streams each window as one contiguous
//! pass: the multiply-gather loop reads `values`/`cols` sequentially and
//! the per-adder accumulation order equals the per-color order the
//! hardware pipeline uses — which is what makes the fast engine bit-exact
//! against [`crate::hw::GustPipeline`] while staying autovectorizable.
//! [`ScheduledSlot`] remains as a by-value view for call sites that want
//! one record per slot (serialization, tests, the structural pipeline).

use gust_sparse::CsrMatrix;
use std::ops::Range;

/// One occupied slot of the schedule: at some cycle, lane `lane` multiplies
/// `value` by vector element `col` and the crossbar routes the product to
/// adder `row_mod`.
///
/// This is a *view* assembled on demand from the structure-of-arrays
/// storage of [`WindowSchedule`]; it is not how slots are stored.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ScheduledSlot {
    /// Multiplier lane, `0..l` (which multiplier consumes this element).
    pub lane: u32,
    /// Destination adder = local row position within the window
    /// (the paper's `Row_sch` entry, `row mod l`).
    pub row_mod: u32,
    /// Original column index (the paper's `Col_sch` entry; vector lookup).
    pub col: u32,
    /// Matrix value (the paper's `M_sch` entry).
    pub value: f32,
}

/// The schedule of one window (one set of `l` rows), stored as a structure
/// of arrays (see the module docs).
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct WindowSchedule {
    /// Colors used by this window = cycles to stream it.
    colors: u32,
    /// The Eq. 1 lower bound for this window (max bipartite degree).
    vizing_bound: u32,
    /// Stalled lane-cycles (non-zero only under naive scheduling).
    stalls: u64,
    /// `color_ptr[c]..color_ptr[c+1]` indexes the slot arrays for color `c`.
    color_ptr: Vec<u32>,
    /// Multiplier lane per slot, ascending within each color.
    lanes: Vec<u32>,
    /// Destination adder (`Row_sch`) per slot.
    row_mods: Vec<u32>,
    /// Original column (`Col_sch`) per slot.
    cols: Vec<u32>,
    /// Matrix value (`M_sch`) per slot.
    values: Vec<f32>,
    /// The window's distinct original columns, ascending — the gather list
    /// of the window-local operand staging (the software analog of the
    /// paper's on-chip input buffer): executing a window may first gather
    /// `x[gather_cols[i]]` into a dense stage array.
    gather_cols: Vec<u32>,
    /// Per-slot index into [`WindowSchedule::gather_cols`] (and therefore
    /// into the staged operand array): `gather_cols[local_cols[i]] ==
    /// cols[i]` for every slot `i`.
    local_cols: Vec<u32>,
}

impl WindowSchedule {
    /// Assembles a window schedule directly from the structure-of-arrays
    /// representation: `color_ptr[c]..color_ptr[c+1]` must index the four
    /// slot arrays for color `c`, with slots sorted by lane within each
    /// color. This is the zero-copy constructor used by the scheduling
    /// pipeline ([`crate::schedule::workspace::ColorScratch::assemble`])
    /// and the binary reader.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the arrays disagree in length, the
    /// pointers are inconsistent, a color's slots are not sorted by lane,
    /// or any color contains two slots on one lane or one adder — those
    /// are exactly the collisions the scheduler exists to prevent.
    #[must_use]
    #[allow(clippy::too_many_arguments)]
    pub fn from_soa(
        colors: u32,
        vizing_bound: u32,
        stalls: u64,
        color_ptr: Vec<u32>,
        lanes: Vec<u32>,
        row_mods: Vec<u32>,
        cols: Vec<u32>,
        values: Vec<f32>,
    ) -> Self {
        debug_assert_eq!(color_ptr.len(), colors as usize + 1);
        debug_assert_eq!(color_ptr.first().copied(), Some(0));
        debug_assert_eq!(color_ptr.last().copied(), Some(lanes.len() as u32));
        debug_assert_eq!(lanes.len(), row_mods.len());
        debug_assert_eq!(lanes.len(), cols.len());
        debug_assert_eq!(lanes.len(), values.len());
        #[cfg(debug_assertions)]
        for c in 0..colors as usize {
            debug_assert!(color_ptr[c] <= color_ptr[c + 1], "color_ptr must be sorted");
            let bucket = color_ptr[c] as usize..color_ptr[c + 1] as usize;
            debug_assert!(
                lanes[bucket.clone()].windows(2).all(|w| w[0] < w[1]),
                "slots of one color must be lane-sorted and never share a lane"
            );
            let mut adders: Vec<u32> = row_mods[bucket].to_vec();
            adders.sort_unstable();
            debug_assert!(
                adders.windows(2).all(|w| w[0] != w[1]),
                "two slots target the same adder within one color"
            );
        }
        let (gather_cols, local_cols) = build_staging_index(&cols);
        Self {
            colors,
            vizing_bound,
            stalls,
            color_ptr,
            lanes,
            row_mods,
            cols,
            values,
            gather_cols,
            local_cols,
        }
    }

    /// Assembles a window schedule from a flat array-of-structs slot list
    /// (color-major, lane-sorted within each color). Compatibility
    /// constructor: splits the records into the structure-of-arrays form.
    ///
    /// # Panics
    ///
    /// Same (debug-build) validation as [`WindowSchedule::from_soa`].
    #[must_use]
    pub fn from_flat(
        colors: u32,
        vizing_bound: u32,
        stalls: u64,
        color_ptr: Vec<u32>,
        slots: Vec<ScheduledSlot>,
    ) -> Self {
        let lanes = slots.iter().map(|s| s.lane).collect();
        let row_mods = slots.iter().map(|s| s.row_mod).collect();
        let cols = slots.iter().map(|s| s.col).collect();
        let values = slots.iter().map(|s| s.value).collect();
        Self::from_soa(
            colors,
            vizing_bound,
            stalls,
            color_ptr,
            lanes,
            row_mods,
            cols,
            values,
        )
    }

    /// Assembles a window schedule from per-color slot lists. Convenience
    /// constructor for tests and small examples; the pipeline itself builds
    /// the flat form directly (see [`WindowSchedule::from_soa`]).
    #[must_use]
    pub fn from_colors(per_color: Vec<Vec<ScheduledSlot>>, vizing_bound: u32, stalls: u64) -> Self {
        let colors = per_color.len() as u32;
        let total: usize = per_color.iter().map(Vec::len).sum();
        let mut color_ptr = Vec::with_capacity(per_color.len() + 1);
        let mut slots = Vec::with_capacity(total);
        color_ptr.push(0u32);
        for mut bucket in per_color {
            bucket.sort_unstable_by_key(|s| s.lane);
            slots.append(&mut bucket);
            color_ptr.push(slots.len() as u32);
        }
        Self::from_flat(colors, vizing_bound, stalls, color_ptr, slots)
    }

    /// Colors (cycles) this window occupies.
    #[must_use]
    pub fn colors(&self) -> u32 {
        self.colors
    }

    /// The Eq. 1 lower bound recorded at scheduling time.
    #[must_use]
    pub fn vizing_bound(&self) -> u32 {
        self.vizing_bound
    }

    /// Stalled lane-cycles (naive scheduling only).
    #[must_use]
    pub fn stalls(&self) -> u64 {
        self.stalls
    }

    /// Non-zeros scheduled in this window.
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// The slot-id range of color `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c >= self.colors()`.
    #[must_use]
    pub fn color_range(&self, c: u32) -> Range<usize> {
        self.color_ptr[c as usize] as usize..self.color_ptr[c as usize + 1] as usize
    }

    /// Number of occupied slots in color `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c >= self.colors()`.
    #[must_use]
    pub fn color_len(&self, c: u32) -> usize {
        self.color_range(c).len()
    }

    /// The CSR-style per-color offsets into the slot arrays.
    #[must_use]
    pub fn color_ptr(&self) -> &[u32] {
        &self.color_ptr
    }

    /// Multiplier lane per slot (color-major, lane-sorted within a color).
    #[must_use]
    pub fn lanes(&self) -> &[u32] {
        &self.lanes
    }

    /// Destination adder (`Row_sch`) per slot.
    #[must_use]
    pub fn row_mods(&self) -> &[u32] {
        &self.row_mods
    }

    /// Original column (`Col_sch`) per slot.
    #[must_use]
    pub fn cols(&self) -> &[u32] {
        &self.cols
    }

    /// Matrix value (`M_sch`) per slot.
    #[must_use]
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// The window's distinct original columns, ascending: the gather list
    /// of window-local operand staging. `gather_cols()[local_cols()[i]] ==
    /// cols()[i]` for every slot.
    #[must_use]
    pub fn gather_cols(&self) -> &[u32] {
        &self.gather_cols
    }

    /// Per-slot compacted column index into the staged operand array (and
    /// into [`WindowSchedule::gather_cols`]). Always in
    /// `0..gather_cols().len()`.
    #[must_use]
    pub fn local_cols(&self) -> &[u32] {
        &self.local_cols
    }

    /// Whether this window's operand set is compact enough that
    /// window-local staging *can* pay: each distinct column is read at
    /// least twice on average (`distinct ≤ nnz / 2`), so gathering it
    /// once into a dense stage array saves scattered reads.
    ///
    /// This is the schedule-side half of the staging decision. The engine
    /// combines it with a footprint test (the source operand block must
    /// exceed on-chip cache, and the stage must compact it ≥ 4×) — see
    /// `gust::engine`: when the whole input block already sits in L2,
    /// staging is pure overhead, which is exactly the paper's observation
    /// that the on-chip input buffer matters once inputs stream from
    /// off-chip.
    #[must_use]
    pub fn has_column_reuse(&self) -> bool {
        !self.gather_cols.is_empty() && 2 * self.gather_cols.len() <= self.nnz()
    }

    /// The slot record at flat index `i` (color-major order).
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.nnz()`.
    #[must_use]
    pub fn slot(&self, i: usize) -> ScheduledSlot {
        ScheduledSlot {
            lane: self.lanes[i],
            row_mod: self.row_mods[i],
            col: self.cols[i],
            value: self.values[i],
        }
    }

    /// Iterates the slots of color `c`, in ascending lane order.
    ///
    /// # Panics
    ///
    /// Panics if `c >= self.colors()`.
    pub fn iter_color(&self, c: u32) -> impl ExactSizeIterator<Item = ScheduledSlot> + '_ {
        self.color_range(c).map(move |i| self.slot(i))
    }

    /// Iterates all slots, color-major (the streaming order).
    pub fn iter_slots(&self) -> impl ExactSizeIterator<Item = ScheduledSlot> + '_ {
        (0..self.nnz()).map(move |i| self.slot(i))
    }
}

/// A fully scheduled matrix: the paper's preprocessed format, ready to
/// stream through the GUST engine any number of times (the schedule is
/// computed once per sparsity pattern; see §3.3 and the §5.3 amortization
/// discussion).
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ScheduledMatrix {
    length: usize,
    rows: usize,
    cols: usize,
    nnz: usize,
    /// `row_perm[scheduled_position] = original_row`.
    row_perm: Vec<u32>,
    windows: Vec<WindowSchedule>,
}

impl ScheduledMatrix {
    /// Assembles a schedule from its parts. Crate-internal: produced by
    /// [`crate::schedule::Scheduler`] and the binary reader.
    ///
    /// Validates — in release builds too — the index bounds the SIMD
    /// execution kernels rely on for memory safety: every slot's column is
    /// `< cols`, every destination adder is `< length`, and every row-perm
    /// entry is `< rows`. The engine's `unsafe` gather paths treat these
    /// as type invariants of `ScheduledMatrix` (fields are private and no
    /// later mutation touches indices), so they must hold for *every*
    /// construction path, including deserialized streams.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    #[must_use]
    pub(crate) fn from_parts(
        length: usize,
        rows: usize,
        cols: usize,
        row_perm: Vec<u32>,
        windows: Vec<WindowSchedule>,
    ) -> Self {
        let nnz = windows.iter().map(WindowSchedule::nnz).sum();
        for (w, window) in windows.iter().enumerate() {
            let max_col = window.gather_cols.last().copied().unwrap_or(0);
            assert!(
                window.gather_cols.is_empty() || (max_col as usize) < cols,
                "window {w}: column {max_col} out of range for {cols} columns"
            );
            let max_adder = window.row_mods.iter().copied().max().unwrap_or(0);
            assert!(
                window.row_mods.is_empty() || (max_adder as usize) < length,
                "window {w}: adder {max_adder} out of range for length {length}"
            );
        }
        assert!(
            row_perm.iter().all(|&r| (r as usize) < rows),
            "row permutation entry out of range for {rows} rows"
        );
        Self {
            length,
            rows,
            cols,
            nnz,
            row_perm,
            windows,
        }
    }

    /// Accelerator length `l` the schedule targets.
    #[must_use]
    pub fn length(&self) -> usize {
        self.length
    }

    /// Rows of the original matrix.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Columns of the original matrix.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Scheduled non-zeros (equals the source matrix's nnz).
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Per-window schedules, in execution order.
    #[must_use]
    pub fn windows(&self) -> &[WindowSchedule] {
        &self.windows
    }

    /// The row permutation (`scheduled position → original row`).
    #[must_use]
    pub fn row_perm(&self) -> &[u32] {
        &self.row_perm
    }

    /// Rows covered by window `w`: `min(l, rows - w·l)`. Equal to `l` for
    /// every window except possibly the ragged final one.
    ///
    /// # Panics
    ///
    /// Panics if `w` is out of range.
    #[must_use]
    pub fn window_rows(&self, w: usize) -> usize {
        assert!(w < self.windows.len(), "window {w} out of range");
        (self.rows - w * self.length).min(self.length)
    }

    /// Total colors across windows — the streaming cycle count, to which
    /// the engine adds the pipeline depth of 2 (paper: "execution time …
    /// is the sum of the number of colors for all of the edge sets plus 2").
    #[must_use]
    pub fn total_colors(&self) -> u64 {
        self.windows.iter().map(|w| u64::from(w.colors())).sum()
    }

    /// Sum of the per-window Eq. 1 lower bounds: the fewest streaming
    /// cycles *any* collision-free schedule could achieve.
    #[must_use]
    pub fn total_vizing_bound(&self) -> u64 {
        self.windows
            .iter()
            .map(|w| u64::from(w.vizing_bound()))
            .sum()
    }

    /// Total stalled lane-cycles (naive scheduling only).
    #[must_use]
    pub fn total_stalls(&self) -> u64 {
        self.windows.iter().map(WindowSchedule::stalls).sum()
    }

    /// Predicted utilization `nnz / (l × cycles)` without running the
    /// engine. The engine's measured [`gust_sim::ExecutionReport`] matches
    /// this up to the `+2` pipeline fill.
    #[must_use]
    pub fn predicted_utilization(&self) -> f64 {
        let cycles = self.total_colors() + 2;
        if cycles == 0 {
            return 0.0;
        }
        self.nnz as f64 / (self.length as f64 * cycles as f64)
    }

    /// Bytes of the scheduled format when stored densely as the paper does:
    /// `l × C_total` cells × (32-bit value + 32-bit `Col_sch` +
    /// ⌈log₂ l⌉-bit `Row_sch`).
    #[must_use]
    pub fn dense_stream_bytes(&self) -> u64 {
        let bits_per_cell = 64 + log2_ceil(self.length) as u64;
        (self.length as u64 * self.total_colors() * bits_per_cell).div_ceil(8)
    }

    /// Validates the schedule against its source matrix:
    ///
    /// 1. every color is collision-free on both lanes and adders,
    /// 2. every non-zero of `matrix` appears exactly once with the correct
    ///    value, column and window/adder placement,
    /// 3. every window respects its Eq. 1 bound (`colors >= bound`).
    ///
    /// # Panics
    ///
    /// Panics with a description of the first violation. Intended for tests
    /// and debugging; O(nnz log nnz).
    pub fn validate_against(&self, matrix: &CsrMatrix) {
        assert_eq!(self.rows, matrix.rows(), "row count mismatch");
        assert_eq!(self.cols, matrix.cols(), "column count mismatch");
        assert_eq!(self.nnz, matrix.nnz(), "nnz mismatch");

        // Reconstruct (row, col, value) triplets from the schedule.
        let mut rebuilt: Vec<(u32, u32, u32)> = Vec::with_capacity(self.nnz);
        for (w, window) in self.windows.iter().enumerate() {
            for c in 0..window.colors() {
                let bucket = window.color_range(c);
                let lanes = &window.lanes[bucket.clone()];
                for pair in lanes.windows(2) {
                    assert_ne!(pair[0], pair[1], "lane collision");
                }
                let mut adders: Vec<u32> = window.row_mods[bucket.clone()].to_vec();
                adders.sort_unstable();
                for pair in adders.windows(2) {
                    assert_ne!(pair[0], pair[1], "adder collision");
                }
                for i in bucket {
                    let pos = w * self.length + window.row_mods[i] as usize;
                    assert!(pos < self.rows, "adder index outside window rows");
                    let orig_row = self.row_perm[pos];
                    rebuilt.push((orig_row, window.cols[i], window.values[i].to_bits()));
                }
            }
            assert!(
                window.colors() >= window.vizing_bound(),
                "window {w}: {} colors below Vizing bound {}",
                window.colors(),
                window.vizing_bound()
            );
        }
        rebuilt.sort_unstable();
        let mut expected: Vec<(u32, u32, u32)> = matrix
            .iter()
            .map(|(r, c, v)| (r as u32, c as u32, v.to_bits()))
            .collect();
        expected.sort_unstable();
        assert_eq!(rebuilt, expected, "schedule does not cover the matrix");
    }

    /// Refreshes the scheduled *values* from a matrix with the same
    /// sparsity pattern, without re-running the scheduler.
    ///
    /// This is the paper's §3.3 observation: "if the matrix changes but the
    /// location of NZs remain the same (as it is the case with Jacobian and
    /// Hessian matrices), the scheduling (Listing 1) does not need to be
    /// repeated, rather `M_sch` (Listing 2) needs to be updated." O(nnz).
    ///
    /// # Panics
    ///
    /// Panics if `matrix` has a different shape or sparsity pattern than
    /// the one this schedule was built from.
    pub fn update_values(&mut self, matrix: &CsrMatrix) {
        assert_eq!(self.rows, matrix.rows(), "row count mismatch");
        assert_eq!(self.cols, matrix.cols(), "column count mismatch");
        assert_eq!(self.nnz, matrix.nnz(), "sparsity pattern mismatch");
        let l = self.length;
        for (w, window) in self.windows.iter_mut().enumerate() {
            for i in 0..window.values.len() {
                let pos = w * l + window.row_mods[i] as usize;
                debug_assert!(pos < self.rows);
                let orig_row = self.row_perm[pos] as usize;
                let (cols, vals) = matrix.row(orig_row);
                let col = window.cols[i];
                let k = cols.binary_search(&col).unwrap_or_else(|_| {
                    panic!("sparsity pattern mismatch: ({orig_row}, {col}) not in matrix")
                });
                window.values[i] = vals[k];
            }
        }
    }

    /// Materializes the paper's dense `M_sch` for one window (Listing 2):
    /// an `colors × l` grid of `Option<f32>` — `M_sch[c][lane]` is the value
    /// entering multiplier `lane` at step `c`, `None` for an idle slot.
    ///
    /// # Panics
    ///
    /// Panics if `window` is out of range.
    #[must_use]
    pub fn dense_m_sch(&self, window: usize) -> Vec<Vec<Option<f32>>> {
        self.dense_window(window, |s| s.value)
    }

    /// Dense `Row_sch` for one window: `Row_sch[c][lane]` is the adder index
    /// (`row mod l`) for the element at step `c` on `lane`.
    ///
    /// # Panics
    ///
    /// Panics if `window` is out of range.
    #[must_use]
    pub fn dense_row_sch(&self, window: usize) -> Vec<Vec<Option<u32>>> {
        self.dense_window(window, |s| s.row_mod)
    }

    /// Dense `Col_sch` for one window: `Col_sch[c][lane]` is the original
    /// column index (which vector element to multiply with).
    ///
    /// # Panics
    ///
    /// Panics if `window` is out of range.
    #[must_use]
    pub fn dense_col_sch(&self, window: usize) -> Vec<Vec<Option<u32>>> {
        self.dense_window(window, |s| s.col)
    }

    fn dense_window<T: Copy>(
        &self,
        window: usize,
        f: impl Fn(ScheduledSlot) -> T,
    ) -> Vec<Vec<Option<T>>> {
        let w = &self.windows[window];
        let mut grid = vec![vec![None; self.length]; w.colors() as usize];
        for c in 0..w.colors() {
            for s in w.iter_color(c) {
                grid[c as usize][s.lane as usize] = Some(f(s));
            }
        }
        grid
    }
}

/// Builds the window-local operand-staging index from the per-slot column
/// array: the sorted distinct columns (`gather_cols`) and, per slot, its
/// position in that list (`local_cols`). O(nnz log nnz); runs once per
/// window at schedule assembly (and at deserialization), never on the
/// execution path.
fn build_staging_index(cols: &[u32]) -> (Vec<u32>, Vec<u32>) {
    let mut gather: Vec<u32> = cols.to_vec();
    gather.sort_unstable();
    gather.dedup();
    let local = cols
        .iter()
        .map(|c| {
            gather
                .binary_search(c)
                .expect("every slot column is in the gather list") as u32
        })
        .collect();
    (gather, local)
}

/// `⌈log₂ l⌉` with the convention `log2_ceil(1) = 1` (one bit still needs a
/// wire), matching the paper's index-width accounting.
#[must_use]
pub fn log2_ceil(l: usize) -> u32 {
    debug_assert!(l > 0);
    if l <= 2 {
        1
    } else {
        (l - 1).ilog2() + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slot(lane: u32, row_mod: u32, col: u32, value: f32) -> ScheduledSlot {
        ScheduledSlot {
            lane,
            row_mod,
            col,
            value,
        }
    }

    #[test]
    fn window_groups_by_color_and_sorts_by_lane() {
        let w = WindowSchedule::from_colors(
            vec![
                vec![slot(2, 0, 2, 1.0), slot(0, 1, 0, 2.0)],
                vec![slot(1, 0, 1, 3.0)],
            ],
            2,
            0,
        );
        assert_eq!(w.colors(), 2);
        assert_eq!(w.nnz(), 3);
        let c0: Vec<u32> = w.iter_color(0).map(|s| s.lane).collect();
        assert_eq!(c0, vec![0, 2]);
        assert_eq!(w.color_len(1), 1);
    }

    #[test]
    fn soa_arrays_are_parallel_and_color_major() {
        let w = WindowSchedule::from_colors(
            vec![
                vec![slot(0, 0, 4, 1.5), slot(1, 1, 3, 2.5)],
                vec![slot(1, 0, 1, 3.5)],
            ],
            2,
            0,
        );
        assert_eq!(w.lanes(), &[0, 1, 1]);
        assert_eq!(w.row_mods(), &[0, 1, 0]);
        assert_eq!(w.cols(), &[4, 3, 1]);
        assert_eq!(w.values(), &[1.5, 2.5, 3.5]);
        assert_eq!(w.color_ptr(), &[0, 2, 3]);
        assert_eq!(w.color_range(1), 2..3);
        assert_eq!(w.slot(2), slot(1, 0, 1, 3.5));
        let all: Vec<ScheduledSlot> = w.iter_slots().collect();
        assert_eq!(all.len(), 3);
        assert_eq!(all[0], slot(0, 0, 4, 1.5));
    }

    #[test]
    fn from_flat_round_trips_through_soa() {
        let slots = vec![slot(0, 1, 7, 1.0), slot(3, 0, 2, 2.0), slot(1, 2, 9, 3.0)];
        let w = WindowSchedule::from_flat(2, 2, 0, vec![0, 2, 3], slots.clone());
        let back: Vec<ScheduledSlot> = w.iter_slots().collect();
        assert_eq!(back, slots);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "share a lane")]
    fn lane_collision_is_detected() {
        let _ =
            WindowSchedule::from_colors(vec![vec![slot(0, 0, 0, 1.0), slot(0, 1, 1, 2.0)]], 1, 0);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "same adder")]
    fn adder_collision_is_detected() {
        let _ =
            WindowSchedule::from_colors(vec![vec![slot(0, 3, 0, 1.0), slot(1, 3, 1, 2.0)]], 1, 0);
    }

    #[test]
    fn totals_accumulate_over_windows() {
        let w1 = WindowSchedule::from_colors(vec![vec![slot(0, 0, 0, 1.0)]], 1, 0);
        let w2 = WindowSchedule::from_colors(
            vec![vec![slot(0, 0, 0, 2.0)], vec![slot(0, 1, 0, 3.0)]],
            2,
            5,
        );
        let s = ScheduledMatrix::from_parts(2, 4, 2, vec![0, 1, 2, 3], vec![w1, w2]);
        assert_eq!(s.total_colors(), 3);
        assert_eq!(s.total_vizing_bound(), 3);
        assert_eq!(s.total_stalls(), 5);
        assert_eq!(s.nnz(), 3);
        // 3 nnz over (2 lanes × 5 cycles).
        assert!((s.predicted_utilization() - 3.0 / 10.0).abs() < 1e-12);
    }

    #[test]
    fn window_rows_handles_ragged_final_window() {
        let w1 = WindowSchedule::from_colors(vec![vec![slot(0, 0, 0, 1.0)]], 1, 0);
        let w2 = WindowSchedule::from_colors(vec![vec![slot(0, 0, 0, 2.0)]], 1, 0);
        // 5 rows at l = 3: windows cover 3 and 2 rows.
        let s = ScheduledMatrix::from_parts(3, 5, 5, vec![0, 1, 2, 3, 4], vec![w1, w2]);
        assert_eq!(s.window_rows(0), 3);
        assert_eq!(s.window_rows(1), 2);
    }

    #[test]
    fn dense_materialization_round_trips() {
        let w = WindowSchedule::from_colors(
            vec![
                vec![slot(0, 0, 4, 1.5), slot(1, 1, 3, 2.5)],
                vec![slot(1, 0, 1, 3.5)],
            ],
            2,
            0,
        );
        let s = ScheduledMatrix::from_parts(2, 2, 5, vec![0, 1], vec![w]);
        let m_sch = s.dense_m_sch(0);
        assert_eq!(m_sch.len(), 2); // colors
        assert_eq!(m_sch[0], vec![Some(1.5), Some(2.5)]);
        assert_eq!(m_sch[1], vec![None, Some(3.5)]);
        let row_sch = s.dense_row_sch(0);
        assert_eq!(row_sch[0], vec![Some(0), Some(1)]);
        let col_sch = s.dense_col_sch(0);
        assert_eq!(col_sch[1], vec![None, Some(1)]);
    }

    #[test]
    fn dense_stream_bytes_counts_all_cells() {
        let w = WindowSchedule::from_colors(vec![vec![slot(0, 0, 0, 1.0)], vec![]], 1, 0);
        let s = ScheduledMatrix::from_parts(4, 4, 4, vec![0, 1, 2, 3], vec![w]);
        // 2 colors × 4 lanes × (64 + 2) bits = 528 bits = 66 bytes.
        assert_eq!(s.dense_stream_bytes(), 66);
    }

    #[test]
    fn log2_ceil_values() {
        assert_eq!(log2_ceil(1), 1);
        assert_eq!(log2_ceil(2), 1);
        assert_eq!(log2_ceil(3), 2);
        assert_eq!(log2_ceil(4), 2);
        assert_eq!(log2_ceil(87), 7);
        assert_eq!(log2_ceil(256), 8);
        assert_eq!(log2_ceil(257), 9);
    }
}
