//! The paper's greedy edge-coloring scheduler (Listing 1).
//!
//! Each window is a bipartite multigraph: left vertices are the window's
//! rows (adders), right vertices the multiplier lanes, and each non-zero an
//! edge. A *color* is a time slot; a valid coloring never gives two edges at
//! the same vertex the same color, which is precisely "no two elements of a
//! row in one cycle" (adder collision) and "no two elements of a column
//! segment in one cycle" (lane conflict).
//!
//! Listing 1 colors by repeated greedy matchings: for each color, scan the
//! rows in order; each row contributes its first edge whose lane is not yet
//! matched this color. Two implementations are provided (selected by
//! [`crate::ColoringAlgorithm`]):
//!
//! * [`color_window_verbatim`] — literal Listing 1: scans `E[i]` in stored
//!   (column) order. O(degree) scan per row per color.
//! * [`color_window_grouped`] — edges bucketed per lane, buckets visited in
//!   first-occurrence order. Same greedy matching discipline and, in
//!   practice, the same color counts, but near-linear on large windows
//!   (the scan skips whole lanes instead of individual edges).

use super::scheduled::ScheduledSlot;
use super::windows::Window;

/// Literal Listing 1. Returns slots grouped per color.
///
/// For every color pass, each row scans its remaining edges in column order
/// and yields the first whose lane is free (`E[i][k] mod l not in matching`);
/// the `break` at Listing 1 line 13 means a row never contributes twice to
/// one matching.
#[must_use]
pub fn color_window_verbatim(window: &Window, l: usize) -> Vec<Vec<ScheduledSlot>> {
    // Remaining edges per row, in column order (Vec::remove keeps order).
    let mut remaining: Vec<Vec<(u32, u32, f32)>> = window
        .per_row
        .iter()
        .map(|row| row.iter().map(|e| (e.lane, e.col, e.value)).collect())
        .collect();
    let mut live: Vec<usize> = (0..remaining.len())
        .filter(|&i| !remaining[i].is_empty())
        .collect();

    let mut per_color: Vec<Vec<ScheduledSlot>> = Vec::new();
    let mut matched = vec![u32::MAX; l]; // color stamp per lane
    let mut clr: u32 = 0;
    while !live.is_empty() {
        let mut bucket: Vec<ScheduledSlot> = Vec::with_capacity(live.len());
        live.retain(|&row| {
            let edges = &mut remaining[row];
            if let Some(k) = edges.iter().position(|&(lane, _, _)| matched[lane as usize] != clr)
            {
                let (lane, col, value) = edges.remove(k);
                matched[lane as usize] = clr;
                bucket.push(ScheduledSlot {
                    lane,
                    row_mod: row as u32,
                    col,
                    value,
                });
            }
            !edges.is_empty()
        });
        debug_assert!(!bucket.is_empty(), "a color pass must make progress");
        per_color.push(bucket);
        clr += 1;
    }
    per_color
}

/// Lane-grouped greedy coloring: the fast path for large windows.
///
/// Each row's edges are bucketed by lane, buckets kept in order of the
/// lane's first occurrence in the row. A color pass visits buckets instead
/// of edges, so the per-pass cost is bounded by the number of *distinct
/// contended lanes*, not the row degree.
#[must_use]
pub fn color_window_grouped(window: &Window, l: usize) -> Vec<Vec<ScheduledSlot>> {
    // Per row: flat edge storage plus lane groups with head cursors.
    struct Group {
        lane: u32,
        /// Indices into the row's edge list, in column order.
        edges: Vec<u32>,
        head: u32,
    }
    struct Row {
        edges: Vec<(u32, f32)>, // (col, value)
        groups: Vec<Group>,
        remaining: u32,
    }

    let mut rows: Vec<Row> = Vec::with_capacity(window.per_row.len());
    let mut lane_group_idx = vec![u32::MAX; l];
    for row_edges in &window.per_row {
        let mut row = Row {
            edges: Vec::with_capacity(row_edges.len()),
            groups: Vec::new(),
            remaining: row_edges.len() as u32,
        };
        for e in row_edges {
            let edge_idx = row.edges.len() as u32;
            row.edges.push((e.col, e.value));
            let slot = lane_group_idx[e.lane as usize];
            if slot != u32::MAX && row.groups[slot as usize].lane == e.lane {
                row.groups[slot as usize].edges.push(edge_idx);
            } else {
                lane_group_idx[e.lane as usize] = row.groups.len() as u32;
                row.groups.push(Group {
                    lane: e.lane,
                    edges: vec![edge_idx],
                    head: 0,
                });
            }
        }
        // Reset the scratch table for the next row (touch only used lanes).
        for g in &row.groups {
            lane_group_idx[g.lane as usize] = u32::MAX;
        }
        rows.push(row);
    }

    let mut live: Vec<usize> = (0..rows.len()).filter(|&i| rows[i].remaining > 0).collect();
    let mut per_color: Vec<Vec<ScheduledSlot>> = Vec::new();
    let mut matched = vec![u32::MAX; l];
    let mut clr: u32 = 0;
    while !live.is_empty() {
        let mut bucket: Vec<ScheduledSlot> = Vec::with_capacity(live.len());
        live.retain(|&row_idx| {
            let row = &mut rows[row_idx];
            for g in &mut row.groups {
                if g.head as usize >= g.edges.len() {
                    continue; // group exhausted
                }
                if matched[g.lane as usize] == clr {
                    continue; // lane taken this color
                }
                let edge_idx = g.edges[g.head as usize] as usize;
                g.head += 1;
                row.remaining -= 1;
                matched[g.lane as usize] = clr;
                let (col, value) = row.edges[edge_idx];
                bucket.push(ScheduledSlot {
                    lane: g.lane,
                    row_mod: row_idx as u32,
                    col,
                    value,
                });
                break;
            }
            row.remaining > 0
        });
        debug_assert!(!bucket.is_empty(), "a color pass must make progress");
        per_color.push(bucket);
        clr += 1;
    }
    per_color
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::windows::WindowPlan;
    use gust_sparse::prelude::*;

    fn color_counts(per_color: &[Vec<ScheduledSlot>]) -> usize {
        per_color.len()
    }

    fn assert_valid(per_color: &[Vec<ScheduledSlot>], window: &Window, l: usize) {
        let mut total = 0usize;
        for bucket in per_color {
            let mut lanes: Vec<u32> = bucket.iter().map(|s| s.lane).collect();
            lanes.sort_unstable();
            assert!(lanes.windows(2).all(|w| w[0] != w[1]), "lane collision");
            let mut adders: Vec<u32> = bucket.iter().map(|s| s.row_mod).collect();
            adders.sort_unstable();
            assert!(adders.windows(2).all(|w| w[0] != w[1]), "adder collision");
            total += bucket.len();
        }
        assert_eq!(total, window.nnz(), "every edge colored exactly once");
        assert!(
            color_counts(per_color) >= window.vizing_bound(l),
            "colors below the Vizing bound"
        );
    }

    fn fig5_matrix() -> CsrMatrix {
        let rows: [&[usize]; 6] = [
            &[0, 2, 3, 4, 7],
            &[0, 1, 5, 6, 7],
            &[1, 2, 3, 8],
            &[0, 2, 4, 8],
            &[2, 5, 6, 7],
            &[0, 1, 3, 7],
        ];
        let mut coo = CooMatrix::new(6, 9);
        for (r, cols) in rows.iter().enumerate() {
            for &c in cols.iter() {
                coo.push(r, c, (r * 10 + c) as f32 + 1.0).unwrap();
            }
        }
        CsrMatrix::from(&coo)
    }

    #[test]
    fn fig5_windows_color_near_the_paper_counts() {
        // Paper Fig. 5(c) shows an optimal coloring: 5 colors for the first
        // window, 4 for the second (11 cycles with the +2 pipeline). The
        // greedy of Listing 1 is a heuristic — on this example it needs one
        // extra color on the first window (6) — the optimal counts are
        // reproduced exactly by the Kőnig scheduler (see konig.rs tests).
        let m = fig5_matrix();
        let plan = WindowPlan::new(&m, 3, false);
        let w0 = plan.window(&m, 0);
        let w1 = plan.window(&m, 1);
        assert_eq!(w0.vizing_bound(3), 5);
        assert_eq!(w1.vizing_bound(3), 4);
        for color_fn in [color_window_verbatim, color_window_grouped] {
            let c0 = color_fn(&w0, 3);
            let c1 = color_fn(&w1, 3);
            assert_valid(&c0, &w0, 3);
            assert_valid(&c1, &w1, 3);
            assert!(
                (5..=6).contains(&color_counts(&c0)),
                "first window: {} colors",
                color_counts(&c0)
            );
            assert!(
                (4..=5).contains(&color_counts(&c1)),
                "second window: {} colors",
                color_counts(&c1)
            );
        }
    }

    #[test]
    fn single_row_serializes_fully() {
        // One row with 5 edges on one lane: must take 5 colors.
        let coo = CooMatrix::from_triplets(
            1,
            20,
            vec![(0, 0, 1.0), (0, 4, 2.0), (0, 8, 3.0), (0, 12, 4.0), (0, 16, 5.0)],
        )
        .unwrap();
        let m = CsrMatrix::from(&coo);
        let plan = WindowPlan::new(&m, 4, false);
        let w = plan.window(&m, 0);
        for color_fn in [color_window_verbatim, color_window_grouped] {
            let colored = color_fn(&w, 4);
            assert_valid(&colored, &w, 4);
            assert_eq!(color_counts(&colored), 5);
        }
    }

    #[test]
    fn diagonal_window_takes_one_color() {
        let m = CsrMatrix::identity(8);
        let plan = WindowPlan::new(&m, 8, false);
        let w = plan.window(&m, 0);
        for color_fn in [color_window_verbatim, color_window_grouped] {
            let colored = color_fn(&w, 8);
            assert_valid(&colored, &w, 8);
            assert_eq!(color_counts(&colored), 1);
        }
    }

    #[test]
    fn random_windows_are_validly_colored_by_both_variants() {
        for seed in 0..5 {
            let coo = gen::uniform(32, 48, 300, seed);
            let m = CsrMatrix::from(&coo);
            for lb in [false, true] {
                let plan = WindowPlan::new(&m, 8, lb);
                for wi in 0..plan.window_count() {
                    let w = plan.window(&m, wi);
                    let v = color_window_verbatim(&w, 8);
                    let g = color_window_grouped(&w, 8);
                    assert_valid(&v, &w, 8);
                    assert_valid(&g, &w, 8);
                }
            }
        }
    }

    #[test]
    fn grouped_and_verbatim_agree_on_color_count_for_simple_windows() {
        // They may differ on adversarial inputs; on typical sparse windows
        // the matching discipline is identical.
        for seed in 0..10 {
            let coo = gen::uniform(16, 16, 60, seed);
            let m = CsrMatrix::from(&coo);
            let plan = WindowPlan::new(&m, 4, false);
            for wi in 0..plan.window_count() {
                let w = plan.window(&m, wi);
                let v = color_counts(&color_window_verbatim(&w, 4));
                let g = color_counts(&color_window_grouped(&w, 4));
                assert!(
                    (v as i64 - g as i64).abs() <= 1,
                    "seed {seed} window {wi}: verbatim {v} vs grouped {g}"
                );
            }
        }
    }

    #[test]
    fn multi_edges_between_same_pair_are_handled() {
        // Row 0 hits columns 0 and 4 with l = 4: both map to lane 0 —
        // a genuine multigraph edge pair.
        let coo =
            CooMatrix::from_triplets(2, 8, vec![(0, 0, 1.0), (0, 4, 2.0), (1, 1, 3.0)]).unwrap();
        let m = CsrMatrix::from(&coo);
        let plan = WindowPlan::new(&m, 4, false);
        let w = plan.window(&m, 0);
        for color_fn in [color_window_verbatim, color_window_grouped] {
            let colored = color_fn(&w, 4);
            assert_valid(&colored, &w, 4);
            assert_eq!(color_counts(&colored), 2);
        }
    }

    #[test]
    fn empty_rows_are_skipped() {
        let coo = CooMatrix::from_triplets(4, 4, vec![(0, 0, 1.0), (3, 3, 2.0)]).unwrap();
        let m = CsrMatrix::from(&coo);
        let plan = WindowPlan::new(&m, 4, false);
        let w = plan.window(&m, 0);
        let colored = color_window_grouped(&w, 4);
        assert_valid(&colored, &w, 4);
        assert_eq!(color_counts(&colored), 1);
    }
}
