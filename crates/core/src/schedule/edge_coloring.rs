//! The paper's greedy edge-coloring scheduler (Listing 1).
//!
//! Each window is a bipartite multigraph: left vertices are the window's
//! rows (adders), right vertices the multiplier lanes, and each non-zero an
//! edge. A *color* is a time slot; a valid coloring never gives two edges at
//! the same vertex the same color, which is precisely "no two elements of a
//! row in one cycle" (adder collision) and "no two elements of a column
//! segment in one cycle" (lane conflict).
//!
//! Listing 1 colors by repeated greedy matchings: for each color, scan the
//! rows in order; each row contributes its first edge whose lane is not yet
//! matched this color. Two implementations are provided (selected by
//! [`crate::ColoringAlgorithm`]):
//!
//! * [`color_window_verbatim`] — literal Listing 1: scans `E[i]` in stored
//!   (column) order. O(degree) scan per row per color.
//! * [`color_window_grouped`] — edges bucketed per lane, buckets visited in
//!   first-occurrence order. Same greedy matching discipline and, in
//!   practice, the same color counts, but near-linear on large windows
//!   (the scan skips whole lanes instead of individual edges).
//!
//! Both write a color per edge into the caller's [`ColorScratch`] — no
//! allocation happens here; [`ColorScratch::assemble`] turns the flat
//! assignment into a [`crate::schedule::scheduled::WindowSchedule`].

use super::windows::Window;
use super::workspace::{ColorScratch, GroupState, GROUP_BLOCK, NONE};

/// Literal Listing 1. Writes a color per edge into `scratch.edge_color`
/// and returns the number of colors used.
///
/// For every color pass, each row scans its remaining edges in column order
/// and yields the first whose lane is free (`E[i][k] mod l not in matching`);
/// the `break` at Listing 1 line 13 means a row never contributes twice to
/// one matching.
pub fn color_window_verbatim(window: &Window, l: usize, scratch: &mut ColorScratch) -> u32 {
    let nnz = window.nnz();
    let n_rows = window.rows();
    let row_ptr = window.row_ptr();
    let edges = window.edges();
    scratch.begin_window(nnz, l);

    scratch.taken.clear();
    scratch.taken.resize(nnz, false);
    scratch.row_cursor.clear();
    scratch.row_cursor.extend_from_slice(&row_ptr[..n_rows]);
    scratch.row_remaining.clear();
    scratch
        .row_remaining
        .extend((0..n_rows).map(|i| row_ptr[i + 1] - row_ptr[i]));
    scratch.live.clear();
    scratch
        .live
        .extend((0..n_rows as u32).filter(|&i| scratch.row_remaining[i as usize] > 0));

    let mut clr: u32 = 0;
    while !scratch.live.is_empty() {
        let mut progressed = false;
        // Split-borrow the scratch fields so `live.retain` can update the
        // others.
        let ColorScratch {
            live,
            taken,
            row_cursor,
            row_remaining,
            matched,
            edge_color,
            ..
        } = scratch;
        live.retain(|&row| {
            let row = row as usize;
            // Advance the cursor past edges colored in earlier passes, then
            // scan the remaining edges in stored (column) order.
            let mut k = row_cursor[row] as usize;
            let end = row_ptr[row + 1] as usize;
            while k < end && taken[k] {
                k += 1;
            }
            row_cursor[row] = k as u32;
            while k < end {
                if !taken[k] && matched[edges[k].lane as usize] != clr {
                    taken[k] = true;
                    matched[edges[k].lane as usize] = clr;
                    edge_color[k] = clr;
                    row_remaining[row] -= 1;
                    progressed = true;
                    break;
                }
                k += 1;
            }
            row_remaining[row] > 0
        });
        debug_assert!(progressed, "a color pass must make progress");
        clr += 1;
    }
    clr
}

/// Lane-grouped greedy coloring: the fast path for large windows.
///
/// Each row's edges are bucketed by lane, buckets kept in order of the
/// lane's first occurrence in the row. A color pass visits buckets instead
/// of edges, so the per-pass cost is bounded by the number of *distinct
/// contended lanes*, not the row degree. Writes a color per edge into
/// `scratch.edge_color` and returns the number of colors used.
pub fn color_window_grouped(window: &Window, l: usize, scratch: &mut ColorScratch) -> u32 {
    let nnz = window.nnz();
    let n_rows = window.rows();
    let row_ptr = window.row_ptr();
    let edges = window.edges();
    scratch.begin_window(nnz, l);

    // Build the per-row lane groups into flat arrays:
    //   row_group_ptr[r]..row_group_ptr[r+1] indexes the row's groups;
    //   group g owns group_edges[g.head..g.end], edge ids in stored
    //   (column) order.
    scratch.lane_slot.clear();
    scratch.lane_slot.resize(l, NONE);
    scratch.groups.clear();
    scratch.row_group_ptr.clear();
    scratch.row_group_ptr.push(0);
    scratch.edge_group.clear();
    scratch.edge_group.resize(nnz, 0);
    scratch.row_remaining.clear();

    for row in 0..n_rows {
        let lo = row_ptr[row] as usize;
        let hi = row_ptr[row + 1] as usize;
        let row_group_base = scratch.groups.len();
        // Pass 1: discover groups in first-occurrence order; count sizes
        // into `end` (converted to offsets below).
        for (k, edge) in edges[lo..hi].iter().enumerate() {
            let lane = edge.lane as usize;
            let g = scratch.lane_slot[lane];
            let g = if g == NONE {
                let g = scratch.groups.len() as u32;
                scratch.lane_slot[lane] = g;
                scratch.groups.push(GroupState {
                    lane: lane as u32,
                    head: 0,
                    end: 0,
                });
                g
            } else {
                g
            };
            scratch.edge_group[lo + k] = g;
            scratch.groups[g as usize].end += 1;
        }
        // Reset the lane table by touching only this row's lanes.
        for group in &scratch.groups[row_group_base..] {
            scratch.lane_slot[group.lane as usize] = NONE;
        }
        scratch.row_group_ptr.push(scratch.groups.len() as u32);
        scratch.row_remaining.push((hi - lo) as u32);
    }

    // Lengths -> global [head, end) ranges (exclusive prefix sum).
    let mut running = 0u32;
    for g in &mut scratch.groups {
        let len = g.end;
        g.head = running;
        running += len;
        g.end = running;
    }
    debug_assert_eq!(running as usize, nnz);

    // Pass 2: place edge ids, preserving stored order within each group.
    scratch.group_head.clear();
    scratch
        .group_head
        .extend(scratch.groups.iter().map(|g| g.head));
    scratch.group_edges.clear();
    scratch.group_edges.resize(nnz, 0);
    for k in 0..nnz {
        let g = scratch.edge_group[k] as usize;
        let at = scratch.group_head[g] as usize;
        scratch.group_head[g] += 1;
        scratch.group_edges[at] = k as u32;
    }

    scratch.row_group_start.clear();
    scratch
        .row_group_start
        .extend_from_slice(&scratch.row_group_ptr[..n_rows]);

    // Block-skip index: each row's groups chunked into GROUP_BLOCK-sized
    // blocks (blocks never span rows); per block, a lane bitmask over its
    // non-exhausted groups. A pass can then discard a whole block with a
    // few word operations when every remaining lane in it is matched —
    // without this, heavy windows (256 live rows contending for 256 lanes
    // over thousands of colors) make the pass scan quadratic.
    let words = l.div_ceil(64);
    scratch.row_block_ptr.clear();
    scratch.row_block_ptr.push(0);
    let mut total_blocks = 0u32;
    for row in 0..n_rows {
        let n_groups_row = (scratch.row_group_ptr[row + 1] - scratch.row_group_ptr[row]) as usize;
        total_blocks += n_groups_row.div_ceil(GROUP_BLOCK) as u32;
        scratch.row_block_ptr.push(total_blocks);
    }
    scratch.block_mask.clear();
    scratch.block_mask.resize(total_blocks as usize * words, 0);
    for row in 0..n_rows {
        let g_base = scratch.row_group_ptr[row] as usize;
        let g_hi = scratch.row_group_ptr[row + 1] as usize;
        let first_block = scratch.row_block_ptr[row] as usize;
        for g in g_base..g_hi {
            let lane = scratch.groups[g].lane as usize;
            let block = first_block + (g - g_base) / GROUP_BLOCK;
            scratch.block_mask[block * words + (lane >> 6)] |= 1u64 << (lane & 63);
        }
    }
    scratch.matched_mask.clear();
    scratch.matched_mask.resize(words, 0);

    scratch.live.clear();
    scratch
        .live
        .extend((0..n_rows as u32).filter(|&i| scratch.row_remaining[i as usize] > 0));

    let mut clr: u32 = 0;
    while !scratch.live.is_empty() {
        let mut progressed = false;
        let ColorScratch {
            live,
            matched_mask,
            edge_color,
            row_remaining,
            groups,
            group_edges,
            row_group_ptr,
            row_group_start,
            row_block_ptr,
            block_mask,
            ..
        } = scratch;
        matched_mask.fill(0);
        live.retain(|&row| {
            let row = row as usize;
            let g_base = row_group_ptr[row] as usize;
            let g_hi = row_group_ptr[row + 1] as usize;
            let mut g = row_group_start[row] as usize;
            // Advance past leading exhausted groups once and for all —
            // they can never contribute again, and heavy rows otherwise
            // rescan them every pass.
            while g < g_hi && groups[g].head == groups[g].end {
                g += 1;
            }
            row_group_start[row] = g as u32;
            let first_block = row_block_ptr[row] as usize;
            'scan: while g < g_hi {
                let local = g - g_base;
                let block = first_block + local / GROUP_BLOCK;
                let bm = &block_mask[block * words..(block + 1) * words];
                let candidate = (0..words).any(|w| bm[w] & !matched_mask[w] != 0);
                let block_end = (g_base + (local / GROUP_BLOCK + 1) * GROUP_BLOCK).min(g_hi);
                if !candidate {
                    // Every non-exhausted lane in this block is matched
                    // this pass; skip it whole.
                    g = block_end;
                    continue 'scan;
                }
                while g < block_end {
                    let group = groups[g];
                    let lane = group.lane as usize;
                    if group.head < group.end
                        && matched_mask[lane >> 6] & (1u64 << (lane & 63)) == 0
                    {
                        let eid = group_edges[group.head as usize] as usize;
                        groups[g].head += 1;
                        if groups[g].head == groups[g].end {
                            // Group exhausted: remove its lane from the
                            // block index for all future passes.
                            block_mask[block * words + (lane >> 6)] &= !(1u64 << (lane & 63));
                        }
                        row_remaining[row] -= 1;
                        matched_mask[lane >> 6] |= 1u64 << (lane & 63);
                        edge_color[eid] = clr;
                        progressed = true;
                        break 'scan;
                    }
                    g += 1;
                }
            }
            row_remaining[row] > 0
        });
        debug_assert!(progressed, "a color pass must make progress");
        clr += 1;
    }
    clr
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::scheduled::WindowSchedule;
    use crate::schedule::windows::WindowPlan;
    use crate::schedule::workspace::ColoringWorkspace;
    use gust_sparse::prelude::*;

    type ColorFn = fn(&Window, usize, &mut ColorScratch) -> u32;
    const COLOR_FNS: [(&str, ColorFn); 2] = [
        ("verbatim", color_window_verbatim),
        ("grouped", color_window_grouped),
    ];

    fn color_to_schedule(color_fn: ColorFn, window: &Window, l: usize) -> WindowSchedule {
        let mut ws = ColoringWorkspace::new();
        let colors = color_fn(window, l, &mut ws.scratch);
        ws.scratch
            .assemble(window, colors, window.vizing_bound(l) as u32, 0)
    }

    fn assert_valid(schedule: &WindowSchedule, window: &Window, l: usize) {
        let mut total = 0usize;
        for c in 0..schedule.colors() {
            let bucket: Vec<_> = schedule.iter_color(c).collect();
            let mut lanes: Vec<u32> = bucket.iter().map(|s| s.lane).collect();
            lanes.sort_unstable();
            assert!(lanes.windows(2).all(|w| w[0] != w[1]), "lane collision");
            let mut adders: Vec<u32> = bucket.iter().map(|s| s.row_mod).collect();
            adders.sort_unstable();
            assert!(adders.windows(2).all(|w| w[0] != w[1]), "adder collision");
            total += bucket.len();
        }
        assert_eq!(total, window.nnz(), "every edge colored exactly once");
        assert!(
            schedule.colors() as usize >= window.vizing_bound(l),
            "colors below the Vizing bound"
        );
    }

    fn fig5_matrix() -> CsrMatrix {
        let rows: [&[usize]; 6] = [
            &[0, 2, 3, 4, 7],
            &[0, 1, 5, 6, 7],
            &[1, 2, 3, 8],
            &[0, 2, 4, 8],
            &[2, 5, 6, 7],
            &[0, 1, 3, 7],
        ];
        let mut coo = CooMatrix::new(6, 9);
        for (r, cols) in rows.iter().enumerate() {
            for &c in cols.iter() {
                coo.push(r, c, (r * 10 + c) as f32 + 1.0).unwrap();
            }
        }
        CsrMatrix::from(&coo)
    }

    #[test]
    fn fig5_windows_color_near_the_paper_counts() {
        // Paper Fig. 5(c) shows an optimal coloring: 5 colors for the first
        // window, 4 for the second (11 cycles with the +2 pipeline). The
        // greedy of Listing 1 is a heuristic — on this example it needs one
        // extra color on the first window (6) — the optimal counts are
        // reproduced exactly by the Kőnig scheduler (see konig.rs tests).
        let m = fig5_matrix();
        let plan = WindowPlan::new(&m, 3, false);
        let w0 = plan.window(&m, 0);
        let w1 = plan.window(&m, 1);
        assert_eq!(w0.vizing_bound(3), 5);
        assert_eq!(w1.vizing_bound(3), 4);
        for (name, color_fn) in COLOR_FNS {
            let c0 = color_to_schedule(color_fn, &w0, 3);
            let c1 = color_to_schedule(color_fn, &w1, 3);
            assert_valid(&c0, &w0, 3);
            assert_valid(&c1, &w1, 3);
            assert!(
                (5..=6).contains(&c0.colors()),
                "{name} first window: {} colors",
                c0.colors()
            );
            assert!(
                (4..=5).contains(&c1.colors()),
                "{name} second window: {} colors",
                c1.colors()
            );
        }
    }

    #[test]
    fn single_row_serializes_fully() {
        // One row with 5 edges on one lane: must take 5 colors.
        let coo = CooMatrix::from_triplets(
            1,
            20,
            vec![
                (0, 0, 1.0),
                (0, 4, 2.0),
                (0, 8, 3.0),
                (0, 12, 4.0),
                (0, 16, 5.0),
            ],
        )
        .unwrap();
        let m = CsrMatrix::from(&coo);
        let plan = WindowPlan::new(&m, 4, false);
        let w = plan.window(&m, 0);
        for (name, color_fn) in COLOR_FNS {
            let colored = color_to_schedule(color_fn, &w, 4);
            assert_valid(&colored, &w, 4);
            assert_eq!(colored.colors(), 5, "{name}");
        }
    }

    #[test]
    fn diagonal_window_takes_one_color() {
        let m = CsrMatrix::identity(8);
        let plan = WindowPlan::new(&m, 8, false);
        let w = plan.window(&m, 0);
        for (name, color_fn) in COLOR_FNS {
            let colored = color_to_schedule(color_fn, &w, 8);
            assert_valid(&colored, &w, 8);
            assert_eq!(colored.colors(), 1, "{name}");
        }
    }

    #[test]
    fn random_windows_are_validly_colored_by_both_variants() {
        for seed in 0..5 {
            let coo = gen::uniform(32, 48, 300, seed);
            let m = CsrMatrix::from(&coo);
            for lb in [false, true] {
                let plan = WindowPlan::new(&m, 8, lb);
                for wi in 0..plan.window_count() {
                    let w = plan.window(&m, wi);
                    for (_, color_fn) in COLOR_FNS {
                        let colored = color_to_schedule(color_fn, &w, 8);
                        assert_valid(&colored, &w, 8);
                    }
                }
            }
        }
    }

    #[test]
    fn grouped_and_verbatim_agree_on_color_count_for_simple_windows() {
        // They may differ on adversarial inputs; on typical sparse windows
        // the matching discipline is identical.
        for seed in 0..10 {
            let coo = gen::uniform(16, 16, 60, seed);
            let m = CsrMatrix::from(&coo);
            let plan = WindowPlan::new(&m, 4, false);
            let mut ws = ColoringWorkspace::new();
            for wi in 0..plan.window_count() {
                let w = plan.window(&m, wi);
                let v = color_window_verbatim(&w, 4, &mut ws.scratch);
                let g = color_window_grouped(&w, 4, &mut ws.scratch);
                assert!(
                    (i64::from(v) - i64::from(g)).abs() <= 1,
                    "seed {seed} window {wi}: verbatim {v} vs grouped {g}"
                );
            }
        }
    }

    #[test]
    fn multi_edges_between_same_pair_are_handled() {
        // Row 0 hits columns 0 and 4 with l = 4: both map to lane 0 —
        // a genuine multigraph edge pair.
        let coo =
            CooMatrix::from_triplets(2, 8, vec![(0, 0, 1.0), (0, 4, 2.0), (1, 1, 3.0)]).unwrap();
        let m = CsrMatrix::from(&coo);
        let plan = WindowPlan::new(&m, 4, false);
        let w = plan.window(&m, 0);
        for (name, color_fn) in COLOR_FNS {
            let colored = color_to_schedule(color_fn, &w, 4);
            assert_valid(&colored, &w, 4);
            assert_eq!(colored.colors(), 2, "{name}");
        }
    }

    #[test]
    fn empty_rows_are_skipped() {
        let coo = CooMatrix::from_triplets(4, 4, vec![(0, 0, 1.0), (3, 3, 2.0)]).unwrap();
        let m = CsrMatrix::from(&coo);
        let plan = WindowPlan::new(&m, 4, false);
        let w = plan.window(&m, 0);
        let colored = color_to_schedule(color_window_grouped, &w, 4);
        assert_valid(&colored, &w, 4);
        assert_eq!(colored.colors(), 1);
    }

    #[test]
    fn scratch_reuse_across_windows_is_clean() {
        // Color dissimilar windows back-to-back through one scratch and
        // compare against a fresh scratch each time.
        let matrices = [
            CsrMatrix::from(&gen::uniform(32, 48, 300, 1)),
            CsrMatrix::from(&gen::power_law(40, 40, 250, 1.9, 2)),
            CsrMatrix::identity(16),
        ];
        let mut shared = ColoringWorkspace::new();
        for m in &matrices {
            let plan = WindowPlan::new(m, 8, true);
            for wi in 0..plan.window_count() {
                let w = plan.window(m, wi);
                for (name, color_fn) in COLOR_FNS {
                    let shared_colors = color_fn(&w, 8, &mut shared.scratch);
                    let shared_schedule =
                        shared
                            .scratch
                            .assemble(&w, shared_colors, w.vizing_bound(8) as u32, 0);
                    let fresh_schedule = color_to_schedule(color_fn, &w, 8);
                    assert_eq!(shared_schedule, fresh_schedule, "{name} window {wi}");
                }
            }
        }
    }
}
