//! Reusable scratch arenas for the scheduling pipeline.
//!
//! The paper's one-time preprocessing cost (Table 4 "Pre.") is dominated by
//! per-window work: materialize the window, color it, assemble the slots.
//! The seed implementation allocated nested `Vec<Vec<_>>` per window *and*
//! per color; on large matrices that makes the allocator the bottleneck.
//! [`ColoringWorkspace`] holds every buffer the per-window pipeline needs —
//! the flat [`Window`] itself, the load balancer's segment table, the
//! coloring algorithms' scratch, and the per-edge color assignment — so a
//! worker processes an arbitrary number of windows with a bounded number of
//! allocations.
//!
//! The flow per window:
//!
//! 1. [`crate::schedule::windows::WindowPlan::fill_window`] refills
//!    `workspace.window` in place.
//! 2. A coloring algorithm (`color_window_*`, `arbitrate_window`) writes a
//!    color per edge into [`ColorScratch::edge_color`] and returns the
//!    color count.
//! 3. [`ColorScratch::assemble`] counting-sorts the edges by color into a
//!    tight, exactly-sized [`WindowSchedule`] (the only allocation that
//!    survives the window).

use super::scheduled::WindowSchedule;
use super::windows::{LaneScratch, Window};

/// Sentinel for "no color assigned yet" in scratch tables.
pub(crate) const NONE: u32 = u32::MAX;

/// Groups per block of the grouped colorer's block-skip index (one lane
/// bitmask per block).
pub(crate) const GROUP_BLOCK: usize = 64;

/// One lane group of one row (grouped coloring): the edges
/// `group_edges[head..end]` all sit on `lane`, in stored (column) order.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct GroupState {
    /// Multiplier lane shared by the group's edges.
    pub(crate) lane: u32,
    /// Cursor into `ColorScratch::group_edges`: next uncolored edge.
    pub(crate) head: u32,
    /// One past the group's last edge in `ColorScratch::group_edges`.
    pub(crate) end: u32,
}

/// Scratch buffers shared by all four scheduling algorithms.
///
/// All fields are reused across windows; none carries meaning between
/// calls. See the module docs for the lifecycle.
#[derive(Debug, Clone, Default)]
pub struct ColorScratch {
    /// Per-edge color assignment, indexed by the window's flat edge id.
    pub(crate) edge_color: Vec<u32>,
    /// Per-lane color stamp (greedy matching: `matched[lane] == color`
    /// means the lane is taken this color).
    pub(crate) matched: Vec<u32>,
    /// Live local-row worklist.
    pub(crate) live: Vec<u32>,
    /// Remaining (uncolored) edges per local row.
    pub(crate) row_remaining: Vec<u32>,
    /// Per-edge "already colored" flags (verbatim scan).
    pub(crate) taken: Vec<bool>,
    /// Per-row cursor past the leading colored edges (verbatim scan).
    pub(crate) row_cursor: Vec<u32>,
    /// Per-group state (lane, cursor, end), all rows concatenated, in
    /// first-occurrence order within each row (grouped coloring). One
    /// contiguous array-of-structs so the per-color scan reads one cache
    /// line per group instead of three.
    pub(crate) groups: Vec<GroupState>,
    /// Edge ids per group, grouped-contiguous (grouped coloring).
    pub(crate) group_edges: Vec<u32>,
    /// Write cursor per group during bucket placement; also reused as the
    /// per-lane cursor of the naive arbiter.
    pub(crate) group_head: Vec<u32>,
    /// Row → range of groups (grouped coloring).
    pub(crate) row_group_ptr: Vec<u32>,
    /// Per-row cursor past the leading exhausted groups (grouped
    /// coloring): groups drain roughly front-to-back, so advancing this
    /// start keeps late color passes from rescanning dead groups.
    pub(crate) row_group_start: Vec<u32>,
    /// Row → first block index (grouped coloring). Each row's groups are
    /// chunked into blocks of [`GROUP_BLOCK`]; blocks never span rows.
    pub(crate) row_block_ptr: Vec<u32>,
    /// Per-block lane bitmask (`⌈l/64⌉` words each) over the block's
    /// *non-exhausted* groups. A color pass skips a whole block when
    /// `block_mask & !matched_mask` is zero — the key to sub-quadratic
    /// passes on heavy (power-law) windows.
    pub(crate) block_mask: Vec<u64>,
    /// Lanes matched in the current color pass, as a bitmask (grouped
    /// coloring; the stamp array `matched` serves the other algorithms).
    pub(crate) matched_mask: Vec<u64>,
    /// Lane → group index within the current row (grouped coloring).
    pub(crate) lane_slot: Vec<u32>,
    /// Per-edge group index within its row (grouped coloring build).
    pub(crate) edge_group: Vec<u32>,
    /// Local row of each flat edge id (Kőnig, naive).
    pub(crate) edge_row: Vec<u32>,
    /// `color_at_row[row * delta + c]` = edge id or [`NONE`] (Kőnig).
    pub(crate) color_at_row: Vec<u32>,
    /// `color_at_lane[lane * delta + c]` = edge id or [`NONE`] (Kőnig).
    pub(crate) color_at_lane: Vec<u32>,
    /// Alternating-path edge stack (Kőnig).
    pub(crate) path: Vec<u32>,
    /// Edge ids bucketed per lane (naive arbitration).
    pub(crate) lane_edges: Vec<u32>,
    /// Lane → range of `lane_edges` (naive arbitration).
    pub(crate) lane_ptr: Vec<u32>,
    /// Per-adder multiplicity within one lockstep position (naive).
    pub(crate) row_count: Vec<u32>,
    /// Held-back (colliding) edges of one position (naive).
    pub(crate) held: Vec<u32>,
    /// Per-lane degree scratch for the Eq. 1 bound.
    lane_deg: Vec<u32>,
    /// Slot count per color (assembly counting sort).
    color_counts: Vec<u32>,
    /// Write cursor per color (assembly counting sort).
    color_cursor: Vec<u32>,
}

impl ColorScratch {
    /// A fresh scratch arena.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Resets the per-edge color table for a window of `nnz` edges and the
    /// lane stamp table for `l` lanes. Called by every coloring algorithm.
    pub(crate) fn begin_window(&mut self, nnz: usize, l: usize) {
        self.edge_color.clear();
        self.edge_color.resize(nnz, NONE);
        self.matched.clear();
        self.matched.resize(l, NONE);
    }

    /// The window's Vizing / Eq. 1 bound, computed into reusable scratch —
    /// same value as [`Window::vizing_bound`] without its per-call lane
    /// array allocation.
    #[must_use]
    pub fn vizing_bound(&mut self, window: &Window, l: usize) -> usize {
        self.lane_deg.clear();
        self.lane_deg.resize(l, 0);
        for e in window.edges() {
            self.lane_deg[e.lane as usize] += 1;
        }
        let lane_max = self.lane_deg.iter().copied().max().unwrap_or(0) as usize;
        let row_ptr = window.row_ptr();
        let row_max = (0..window.rows())
            .map(|i| (row_ptr[i + 1] - row_ptr[i]) as usize)
            .max()
            .unwrap_or(0);
        row_max.max(lane_max)
    }

    /// Fills [`ColorScratch::edge_row`] from the window's row pointers.
    pub(crate) fn fill_edge_rows(&mut self, window: &Window) {
        self.edge_row.clear();
        self.edge_row.reserve(window.nnz());
        let row_ptr = window.row_ptr();
        for row in 0..window.rows() {
            let len = row_ptr[row + 1] - row_ptr[row];
            self.edge_row
                .extend(std::iter::repeat_n(row as u32, len as usize));
        }
    }

    /// Counting-sorts the window's edges by assigned color into a tight
    /// [`WindowSchedule`]: slots grouped by color, sorted by lane within
    /// each color. Edges are visited in lane-major order (a second
    /// counting sort), so every color bucket comes out lane-sorted without
    /// any comparison sort. The output is written straight into the
    /// structure-of-arrays layout the execution engine streams
    /// (`values`/`cols`/`row_mods`/`lanes`); the only allocations are the
    /// exactly-sized output arrays.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if an edge is uncolored or a color holds
    /// two slots on one lane or one adder — the collisions the scheduler
    /// exists to prevent (checked by
    /// [`WindowSchedule::from_soa`]).
    #[must_use]
    pub fn assemble(
        &mut self,
        window: &Window,
        colors: u32,
        vizing_bound: u32,
        stalls: u64,
    ) -> WindowSchedule {
        let nnz = window.nnz();
        let edges = window.edges();
        debug_assert_eq!(self.edge_color.len(), nnz);
        self.fill_edge_rows(window);

        self.color_counts.clear();
        self.color_counts.resize(colors as usize, 0);
        for &c in &self.edge_color {
            debug_assert_ne!(c, NONE, "every edge must be colored");
            self.color_counts[c as usize] += 1;
        }

        let mut color_ptr = Vec::with_capacity(colors as usize + 1);
        color_ptr.push(0u32);
        let mut running = 0u32;
        for &count in &self.color_counts {
            running += count;
            color_ptr.push(running);
        }
        debug_assert_eq!(running as usize, nnz);

        // Lane-major edge order (counting sort by lane). Within one color
        // every lane occurs at most once, so visiting edges lane-by-lane
        // fills each color bucket in ascending lane order by construction.
        let l = self
            .matched
            .len()
            .max(edges.iter().map(|e| e.lane as usize + 1).max().unwrap_or(0));
        self.lane_ptr.clear();
        self.lane_ptr.resize(l + 1, 0);
        for e in edges {
            self.lane_ptr[e.lane as usize + 1] += 1;
        }
        for lane in 0..l {
            self.lane_ptr[lane + 1] += self.lane_ptr[lane];
        }
        self.lane_edges.clear();
        self.lane_edges.resize(nnz, 0);
        self.group_head.clear();
        self.group_head.extend_from_slice(&self.lane_ptr[..l]);
        for (eid, e) in edges.iter().enumerate() {
            let lane = e.lane as usize;
            let at = self.group_head[lane] as usize;
            self.group_head[lane] += 1;
            self.lane_edges[at] = eid as u32;
        }

        self.color_cursor.clear();
        self.color_cursor
            .extend_from_slice(&color_ptr[..colors as usize]);

        let mut lanes = vec![0u32; nnz];
        let mut row_mods = vec![0u32; nnz];
        let mut cols = vec![0u32; nnz];
        let mut values = vec![0.0f32; nnz];
        for &eid in &self.lane_edges {
            let eid = eid as usize;
            let e = edges[eid];
            let c = self.edge_color[eid] as usize;
            let at = self.color_cursor[c] as usize;
            self.color_cursor[c] += 1;
            lanes[at] = e.lane;
            row_mods[at] = self.edge_row[eid];
            cols[at] = e.col;
            values[at] = e.value;
        }

        WindowSchedule::from_soa(
            colors,
            vizing_bound,
            stalls,
            color_ptr,
            lanes,
            row_mods,
            cols,
            values,
        )
    }
}

/// Everything one scheduling worker needs to process windows end to end:
/// the window buffer, the load balancer's lane scratch, and the coloring
/// scratch. One instance per thread; see the module docs.
#[derive(Debug, Clone, Default)]
pub struct ColoringWorkspace {
    /// The reusable flat window buffer.
    pub window: Window,
    /// A second window buffer holding one column band of `window` during
    /// banded scheduling (see [`crate::schedule::banded`]).
    pub band_window: Window,
    /// Load-balancer segment/lane scratch.
    pub lanes: LaneScratch,
    /// Coloring and assembly scratch.
    pub scratch: ColorScratch,
}

impl ColoringWorkspace {
    /// A fresh workspace.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::scheduled::ScheduledSlot;
    use crate::schedule::windows::WindowPlan;
    use gust_sparse::prelude::*;

    #[test]
    fn assemble_counting_sort_matches_from_colors() {
        let m = CsrMatrix::from(&gen::uniform(24, 24, 160, 5));
        let plan = WindowPlan::new(&m, 8, false);
        let mut ws = ColoringWorkspace::new();
        for w in 0..plan.window_count() {
            plan.fill_window(&m, w, &mut ws.window, &mut ws.lanes);
            let window = &ws.window;
            // Color greedily by hand: edge k of row r gets color k (valid:
            // within a row colors are distinct; lanes may repeat across
            // rows, so keep one edge per row per color — that is exactly
            // one color per within-row index, which can collide on lanes.
            // Use a trivially valid coloring instead: color = global edge
            // index (one slot per color).
            let nnz = window.nnz();
            ws.scratch.begin_window(nnz, 8);
            for (i, c) in ws.scratch.edge_color.iter_mut().enumerate() {
                *c = i as u32;
            }
            let bound = window.vizing_bound(8) as u32;
            let assembled = ws.scratch.assemble(window, nnz as u32, bound, 0);

            let per_color: Vec<Vec<ScheduledSlot>> = (0..nnz)
                .map(|c| vec![assembled.iter_color(c as u32).next().expect("one slot")])
                .collect();
            let reference = WindowSchedule::from_colors(per_color, bound, 0);
            assert_eq!(assembled, reference);
            assert_eq!(assembled.nnz(), nnz);
        }
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "share a lane")]
    fn assemble_detects_lane_collisions() {
        let coo = CooMatrix::from_triplets(2, 8, vec![(0, 0, 1.0), (1, 4, 2.0)]).unwrap();
        let m = CsrMatrix::from(&coo);
        let plan = WindowPlan::new(&m, 4, false);
        let mut ws = ColoringWorkspace::new();
        plan.fill_window(&m, 0, &mut ws.window, &mut ws.lanes);
        // Columns 0 and 4 both map to lane 0; one shared color collides.
        ws.scratch.begin_window(2, 4);
        ws.scratch.edge_color[0] = 0;
        ws.scratch.edge_color[1] = 0;
        let _ = ws.scratch.assemble(&ws.window, 1, 1, 0);
    }
}
