//! The GUST software side: windowing, load balancing and slot assignment.
//!
//! [`Scheduler`] ties the pieces together: it builds the [`windows::WindowPlan`]
//! (row sort + lane assignment, §3.2/§3.5), colors each window with the
//! configured algorithm (§3.3, Listing 1 or the optimal Kőnig variant) or
//! arbitrates it naively, and assembles the resulting
//! [`scheduled::ScheduledMatrix`] — the preprocessed format streamed by the
//! hardware.
//!
//! # Throughput
//!
//! Scheduling is the paper's one-time preprocessing cost (§5.3, Table 4
//! "Pre."), so this module is the software hot path. Two structural choices
//! keep it fast:
//!
//! * **Flat, reusable buffers** — every per-window intermediate (the window
//!   itself, lane groups, per-edge colors) lives in a
//!   [`workspace::ColoringWorkspace`] arena that is reused across windows,
//!   so the steady state performs no allocation besides each window's
//!   exactly-sized output.
//! * **Per-window parallelism** — windows are independent by construction
//!   (§3.2: disjoint row sets), so [`Scheduler::schedule`] fans them out
//!   over the persistent worker pool ([`crate::parallel::Pool`]; threads
//!   are spawned once per process, not once per call). Each window's
//!   result lands in its own slot, making the output bit-identical to
//!   the sequential result; see [`crate::GustConfig::with_parallelism`].
//!
//! [`Scheduler::schedule_banded`] additionally composes the coloring
//! with cache-aware column blocking (see [`banded`]): each window × band
//! sub-graph is colored independently so the execution engine can walk
//! one cache-resident operand slice at a time — with the band count
//! chosen per call by the density-aware [`banded::BandPlan`] (batch
//! width 1 for single-vector walks, the register block for batched
//! ones). [`Scheduler::schedule_tiled`] adds the second blocking
//! dimension (see [`tiled`]): rows split into budget-sized tiles, each
//! tile's sub-matrix scheduled as an independent banded matrix so the
//! output side stays cache-resident too.

pub mod banded;
pub mod edge_coloring;
pub mod konig;
pub mod naive;
pub mod scheduled;
pub mod serialize;
pub mod stats;
pub mod tiled;
pub mod windows;
pub mod workspace;

use crate::config::{ColoringAlgorithm, GustConfig, SchedulingPolicy};
use crate::parallel::Pool;
use banded::{BandPlan, BandedSchedule, BandedWindow, ColumnBands};
use gust_sparse::CsrMatrix;
use scheduled::{ScheduledMatrix, WindowSchedule};
use std::sync::{Mutex, OnceLock};
use tiled::TiledSchedule;
use windows::WindowPlan;
use workspace::ColoringWorkspace;

/// Produces [`ScheduledMatrix`]es for a given configuration.
///
/// # Example
///
/// ```
/// use gust::schedule::Scheduler;
/// use gust::GustConfig;
/// use gust_sparse::prelude::*;
///
/// let m = CsrMatrix::from(&gen::uniform(32, 32, 128, 1));
/// let schedule = Scheduler::new(GustConfig::new(8)).schedule(&m);
/// schedule.validate_against(&m); // collision-free and complete
/// ```
#[derive(Debug, Clone)]
pub struct Scheduler {
    config: GustConfig,
}

impl Scheduler {
    /// Creates a scheduler for the given configuration.
    #[must_use]
    pub fn new(config: GustConfig) -> Self {
        Self { config }
    }

    /// The configuration this scheduler applies.
    #[must_use]
    pub fn config(&self) -> &GustConfig {
        &self.config
    }

    /// Schedules `matrix`: the paper's preprocessing step.
    ///
    /// This is the one-time cost amortized over repeated SpMVs (§5.3); its
    /// wall-clock time is what Table 4's "Pre." column reports. Windows are
    /// processed in parallel per [`GustConfig::with_parallelism`]; the
    /// result is identical for every thread count.
    #[must_use]
    pub fn schedule(&self, matrix: &CsrMatrix) -> ScheduledMatrix {
        let l = self.config.length();
        let lb = self.config.policy() == SchedulingPolicy::EdgeColoringLb;
        let plan = WindowPlan::new(matrix, l, lb);
        let window_count = plan.window_count();
        let threads = self.worker_count(window_count);

        let windows = self.schedule_windows(window_count, threads, |ws, w| {
            self.schedule_one_window(matrix, &plan, w, ws)
        });

        ScheduledMatrix::from_parts(
            l,
            matrix.rows(),
            matrix.cols(),
            plan.row_perm().to_vec(),
            windows,
        )
    }

    /// Schedules `matrix` with cache-blocked column bands (see
    /// [`banded`]) sized for **single-vector** execution: the density-aware
    /// [`BandPlan::choose`] picks the band count from
    /// [`GustConfig::effective_cache_budget`] at batch width 1 — a band's
    /// single-vector operand slice fits the budget — capped at the
    /// matrix's nnz/row density so sparse rows don't pay accumulator
    /// re-streaming. The result executes via
    /// [`crate::Gust::execute_banded`]. With a budget that covers the
    /// whole operand vector this degenerates to a single band and the
    /// exact schedule [`Scheduler::schedule`] produces.
    ///
    /// Schedules meant for [`crate::Gust::execute_batch_banded`] should
    /// come from [`Scheduler::schedule_banded_for_batch`] instead: a
    /// batched walk streams a register block of operands per band, so its
    /// bands must be narrower for the slice to stay resident. (Earlier
    /// revisions always sized for the batched slice, which handed
    /// single-vector walks bands `reg_block×` narrower than the budget
    /// allows.)
    #[must_use]
    pub fn schedule_banded(&self, matrix: &CsrMatrix) -> BandedSchedule {
        self.schedule_banded_for_batch(matrix, 1)
    }

    /// As [`Scheduler::schedule_banded`], sized for batched execution of
    /// `batch` right-hand sides: the effective width is
    /// `min(batch, reg_block)` — one register block's band slice
    /// (`band_cols × width × 4` bytes) fits the cache budget.
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero.
    #[must_use]
    pub fn schedule_banded_for_batch(&self, matrix: &CsrMatrix, batch: usize) -> BandedSchedule {
        let width = batch.min(self.config.effective_backend().reg_block());
        self.schedule_banded_for_width(matrix, batch, width, std::mem::size_of::<f32>())
    }

    /// As [`Scheduler::schedule_banded_for_batch`], sized for **f64**
    /// batched execution ([`crate::Gust::execute_batch_banded_f64`]):
    /// the effective width is `min(batch, reg_block_f64)` and the band
    /// budget divides by 8-byte operands, so bands are half as wide as
    /// the f32 plan's under the same cache budget.
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero.
    #[must_use]
    pub fn schedule_banded_for_batch_f64(
        &self,
        matrix: &CsrMatrix,
        batch: usize,
    ) -> BandedSchedule {
        let width = batch.min(self.config.effective_backend().reg_block_f64());
        self.schedule_banded_for_width(matrix, batch, width, std::mem::size_of::<f64>())
    }

    fn schedule_banded_for_width(
        &self,
        matrix: &CsrMatrix,
        batch: usize,
        width: usize,
        elem_bytes: usize,
    ) -> BandedSchedule {
        assert!(batch > 0, "batch must contain at least one vector");
        let plan = BandPlan::choose(
            matrix.rows(),
            matrix.cols(),
            matrix.nnz(),
            width,
            elem_bytes,
            self.config.effective_cache_budget(),
        );
        self.schedule_banded_with(matrix, plan.into_bands())
    }

    /// As [`Scheduler::schedule_banded`], with an explicit band
    /// partition (tests and tuning sweeps).
    ///
    /// # Panics
    ///
    /// Panics if `bands` does not cover exactly `matrix.cols()` columns.
    #[must_use]
    pub fn schedule_banded_with(&self, matrix: &CsrMatrix, bands: ColumnBands) -> BandedSchedule {
        assert_eq!(
            bands.cols(),
            matrix.cols(),
            "band partition must cover the matrix columns"
        );
        let l = self.config.length();
        let lb = self.config.policy() == SchedulingPolicy::EdgeColoringLb;
        let plan = WindowPlan::new(matrix, l, lb);
        let window_count = plan.window_count();
        let threads = self.worker_count(window_count);

        let windows = self.schedule_windows(window_count, threads, |ws, w| {
            self.schedule_one_window_banded(matrix, &plan, &bands, w, ws)
        });

        BandedSchedule::from_parts(
            l,
            matrix.rows(),
            matrix.cols(),
            plan.row_perm().to_vec(),
            bands,
            windows,
        )
    }

    /// Schedules `matrix` with 2D row×column tiles (see [`tiled`]) sized
    /// for **single-vector** execution: rows are partitioned by
    /// [`GustConfig::effective_row_budget`] (tile output slices stay
    /// cache-resident, tiles aligned to the accelerator length), and each
    /// tile's sub-matrix is scheduled as an independent banded matrix
    /// with its own density-aware [`BandPlan`]. Executes via
    /// [`crate::Gust::execute_tiled`] /
    /// [`crate::Gust::execute_batch_tiled`]. With budgets covering both
    /// vectors this degenerates to one tile of one band — the exact
    /// [`Scheduler::schedule`] output, banded-walked.
    #[must_use]
    pub fn schedule_tiled(&self, matrix: &CsrMatrix) -> TiledSchedule {
        self.schedule_tiled_for_batch(matrix, 1)
    }

    /// As [`Scheduler::schedule_tiled`], sized for batched execution of
    /// `batch` right-hand sides (both budgets divide by the effective
    /// width `min(batch, reg_block)` — accumulator panels and operand
    /// slices scale with the register block alike).
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero.
    #[must_use]
    pub fn schedule_tiled_for_batch(&self, matrix: &CsrMatrix, batch: usize) -> TiledSchedule {
        let width = batch.min(self.config.effective_backend().reg_block());
        self.schedule_tiled_for_width(matrix, batch, width, std::mem::size_of::<f32>())
    }

    /// As [`Scheduler::schedule_tiled_for_batch`], sized for **f64**
    /// batched execution ([`crate::Gust::execute_batch_tiled_f64`]):
    /// effective width `min(batch, reg_block_f64)`, both budgets divided
    /// by 8-byte elements.
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero.
    #[must_use]
    pub fn schedule_tiled_for_batch_f64(&self, matrix: &CsrMatrix, batch: usize) -> TiledSchedule {
        let width = batch.min(self.config.effective_backend().reg_block_f64());
        self.schedule_tiled_for_width(matrix, batch, width, std::mem::size_of::<f64>())
    }

    fn schedule_tiled_for_width(
        &self,
        matrix: &CsrMatrix,
        batch: usize,
        width: usize,
        elem_bytes: usize,
    ) -> TiledSchedule {
        assert!(batch > 0, "batch must contain at least one vector");
        let cache_budget = self.config.effective_cache_budget();
        let row_starts = tiled::row_tile_starts_for_budget(
            matrix.rows(),
            self.config.length(),
            width,
            elem_bytes,
            self.config.effective_row_budget(),
        );
        let tiles = row_starts
            .windows(2)
            .map(|w| {
                let sub = matrix.row_slice(w[0] as usize..w[1] as usize);
                // Band count from the *tile's* structure: row density
                // and per-column gather count are tile-local (a
                // hyper-sparse tile gains nothing from bands — see
                // [`BandPlan::choose_for_tile`]).
                let plan = BandPlan::choose_for_tile(
                    sub.rows(),
                    sub.cols(),
                    sub.nnz(),
                    width,
                    elem_bytes,
                    cache_budget,
                );
                self.schedule_banded_with(&sub, plan.into_bands())
            })
            .collect();
        TiledSchedule::from_parts(
            self.config.length(),
            matrix.rows(),
            matrix.cols(),
            row_starts,
            tiles,
        )
    }

    /// As [`Scheduler::schedule_tiled`], with an explicit row-tile count
    /// and a shared band partition (tests and tuning sweeps): rows split
    /// into `row_tiles` near-equal tiles, every tile banded by `bands`.
    ///
    /// # Panics
    ///
    /// Panics if `row_tiles` is zero or exceeds `max(rows, 1)`, or if
    /// `bands` does not cover exactly `matrix.cols()` columns.
    #[must_use]
    pub fn schedule_tiled_with(
        &self,
        matrix: &CsrMatrix,
        row_tiles: usize,
        bands: ColumnBands,
    ) -> TiledSchedule {
        assert_eq!(
            bands.cols(),
            matrix.cols(),
            "band partition must cover the matrix columns"
        );
        let row_starts = tiled::row_tile_starts(matrix.rows(), row_tiles);
        let tiles = row_starts
            .windows(2)
            .map(|w| {
                let sub = matrix.row_slice(w[0] as usize..w[1] as usize);
                self.schedule_banded_with(&sub, bands.clone())
            })
            .collect();
        TiledSchedule::from_parts(
            self.config.length(),
            matrix.rows(),
            matrix.cols(),
            row_starts,
            tiles,
        )
    }

    /// Worker threads to use for `window_count` windows (see
    /// [`GustConfig::effective_workers`]).
    fn worker_count(&self, window_count: usize) -> usize {
        self.config.effective_workers(window_count)
    }

    /// Runs `one(workspace, w)` for every window, sequentially or fanned
    /// out over the persistent worker [`Pool`]. Window results land in
    /// per-window slots, so the output is bit-identical for every thread
    /// count regardless of the pool's dynamic task order.
    ///
    /// Workspaces live for the *run*, not the worker: parallel tasks
    /// check one out of a run-local pool (so each worker reuses one
    /// arena across its windows) and everything is dropped when the call
    /// returns — a persistent pool worker never pins the tens of MiB a
    /// wide matrix's lane tables can grow to.
    fn schedule_windows<T: Send + Sync>(
        &self,
        window_count: usize,
        threads: usize,
        one: impl Fn(&mut ColoringWorkspace, usize) -> T + Sync,
    ) -> Vec<T> {
        if threads <= 1 {
            let mut ws = ColoringWorkspace::new();
            return (0..window_count).map(|w| one(&mut ws, w)).collect();
        }
        let slots: Vec<OnceLock<T>> = (0..window_count).map(|_| OnceLock::new()).collect();
        let workspaces: Mutex<Vec<ColoringWorkspace>> = Mutex::new(Vec::new());
        Pool::global().run(threads, window_count, |w| {
            let mut ws = workspaces
                .lock()
                .expect("workspace pool lock")
                .pop()
                .unwrap_or_default();
            let window = one(&mut ws, w);
            assert!(slots[w].set(window).is_ok(), "window {w} scheduled twice");
            workspaces.lock().expect("workspace pool lock").push(ws);
        });
        slots
            .into_iter()
            .map(|slot| slot.into_inner().expect("every window scheduled"))
            .collect()
    }

    /// The per-window pipeline: materialize → color/arbitrate → assemble.
    fn schedule_one_window(
        &self,
        matrix: &CsrMatrix,
        plan: &WindowPlan,
        w: usize,
        ws: &mut ColoringWorkspace,
    ) -> WindowSchedule {
        let l = self.config.length();
        plan.fill_window(matrix, w, &mut ws.window, &mut ws.lanes);
        let bound = ws.scratch.vizing_bound(&ws.window, l) as u32;
        let (colors, stalls) = self.color_or_arbitrate(&ws.window, l, &mut ws.scratch);
        ws.scratch.assemble(&ws.window, colors, bound, stalls)
    }

    /// The banded per-window pipeline: materialize the full window once,
    /// then per band carve the sub-window
    /// ([`windows::Window::fill_band_from`]), color/arbitrate it
    /// independently, assemble a [`WindowSchedule`] per band, and merge
    /// band-major into a [`BandedWindow`].
    fn schedule_one_window_banded(
        &self,
        matrix: &CsrMatrix,
        plan: &WindowPlan,
        bands: &ColumnBands,
        w: usize,
        ws: &mut ColoringWorkspace,
    ) -> BandedWindow {
        let l = self.config.length();
        plan.fill_window(matrix, w, &mut ws.window, &mut ws.lanes);
        let mut per_band = Vec::with_capacity(bands.count());
        for b in 0..bands.count() {
            // Carve band `b` into the workspace's band window, preserving
            // row structure and lane assignment.
            ws.band_window.fill_band_from(&ws.window, bands.range(b));
            let bound = ws.scratch.vizing_bound(&ws.band_window, l) as u32;
            let (colors, stalls) = self.color_or_arbitrate(&ws.band_window, l, &mut ws.scratch);
            per_band.push(ws.scratch.assemble(&ws.band_window, colors, bound, stalls));
        }
        BandedWindow::from_bands(&per_band, bands.starts())
    }

    /// Colors (or naively arbitrates) `window` under the configured
    /// policy, returning `(colors, stalls)`.
    fn color_or_arbitrate(
        &self,
        window: &windows::Window,
        l: usize,
        scratch: &mut workspace::ColorScratch,
    ) -> (u32, u64) {
        match self.config.policy() {
            SchedulingPolicy::Naive => {
                let outcome = naive::arbitrate_window(window, l, scratch);
                (outcome.cycles, outcome.stalls)
            }
            SchedulingPolicy::EdgeColoring | SchedulingPolicy::EdgeColoringLb => {
                let colors = match self.config.coloring() {
                    ColoringAlgorithm::Verbatim => {
                        edge_coloring::color_window_verbatim(window, l, scratch)
                    }
                    ColoringAlgorithm::Grouped => {
                        edge_coloring::color_window_grouped(window, l, scratch)
                    }
                    ColoringAlgorithm::Konig => konig::color_window_konig(window, l, scratch),
                };
                (colors, 0)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ColoringAlgorithm, GustConfig, SchedulingPolicy};
    use gust_sparse::prelude::*;

    fn policies() -> [SchedulingPolicy; 3] {
        [
            SchedulingPolicy::Naive,
            SchedulingPolicy::EdgeColoring,
            SchedulingPolicy::EdgeColoringLb,
        ]
    }

    #[test]
    fn every_policy_produces_a_valid_schedule() {
        let m = CsrMatrix::from(&gen::uniform(40, 40, 300, 2));
        for policy in policies() {
            let schedule = Scheduler::new(GustConfig::new(8).with_policy(policy)).schedule(&m);
            schedule.validate_against(&m);
        }
    }

    #[test]
    fn every_coloring_algorithm_produces_a_valid_schedule() {
        let m = CsrMatrix::from(&gen::power_law(60, 60, 400, 2.0, 3));
        for algo in [
            ColoringAlgorithm::Verbatim,
            ColoringAlgorithm::Grouped,
            ColoringAlgorithm::Konig,
        ] {
            let schedule = Scheduler::new(GustConfig::new(16).with_coloring(algo)).schedule(&m);
            schedule.validate_against(&m);
        }
    }

    #[test]
    fn edge_coloring_uses_no_more_cycles_than_naive() {
        let m = CsrMatrix::from(&gen::uniform(64, 64, 1024, 4));
        let naive =
            Scheduler::new(GustConfig::new(8).with_policy(SchedulingPolicy::Naive)).schedule(&m);
        let ec = Scheduler::new(GustConfig::new(8).with_policy(SchedulingPolicy::EdgeColoring))
            .schedule(&m);
        assert!(ec.total_colors() <= naive.total_colors());
        assert_eq!(ec.total_stalls(), 0);
        assert!(naive.total_stalls() > 0, "dense input should stall naive");
    }

    #[test]
    fn load_balancing_helps_on_skewed_inputs() {
        // Power-law matrices are the paper's worst case for GUST; load
        // balancing should not hurt and usually helps.
        let m = CsrMatrix::from(&gen::power_law(256, 256, 4000, 1.8, 5));
        let ec = Scheduler::new(GustConfig::new(16).with_policy(SchedulingPolicy::EdgeColoring))
            .schedule(&m);
        let lb = Scheduler::new(GustConfig::new(16).with_policy(SchedulingPolicy::EdgeColoringLb))
            .schedule(&m);
        assert!(
            lb.total_colors() as f64 <= ec.total_colors() as f64 * 1.05,
            "LB {} vs EC {}",
            lb.total_colors(),
            ec.total_colors()
        );
    }

    #[test]
    fn konig_matches_total_vizing_bound() {
        let m = CsrMatrix::from(&gen::uniform(48, 48, 500, 6));
        let schedule =
            Scheduler::new(GustConfig::new(8).with_coloring(ColoringAlgorithm::Konig)).schedule(&m);
        assert_eq!(schedule.total_colors(), schedule.total_vizing_bound());
    }

    #[test]
    fn schedule_preserves_shape_metadata() {
        let m = CsrMatrix::from(&gen::uniform(30, 50, 123, 7));
        let s = Scheduler::new(GustConfig::new(4)).schedule(&m);
        assert_eq!(s.rows(), 30);
        assert_eq!(s.cols(), 50);
        assert_eq!(s.nnz(), 123);
        assert_eq!(s.length(), 4);
        assert_eq!(s.windows().len(), 30usize.div_ceil(4));
    }

    #[test]
    fn parallel_schedule_is_identical_to_sequential() {
        let m = CsrMatrix::from(&gen::power_law(300, 300, 5000, 1.9, 8));
        for policy in policies() {
            let base = GustConfig::new(16).with_policy(policy);
            let sequential = Scheduler::new(base.clone().with_parallelism(Some(1))).schedule(&m);
            for threads in [2, 3, 8] {
                let parallel =
                    Scheduler::new(base.clone().with_parallelism(Some(threads))).schedule(&m);
                assert_eq!(parallel, sequential, "{policy:?} with {threads} threads");
            }
        }
    }

    #[test]
    fn more_workers_than_windows_is_fine() {
        let m = CsrMatrix::from(&gen::uniform(8, 8, 20, 1)); // 1 window at l=8
        let schedule = Scheduler::new(GustConfig::new(8).with_parallelism(Some(64))).schedule(&m);
        schedule.validate_against(&m);
    }
}
