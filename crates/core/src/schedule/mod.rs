//! The GUST software side: windowing, load balancing and slot assignment.
//!
//! [`Scheduler`] ties the pieces together: it builds the [`windows::WindowPlan`]
//! (row sort + lane assignment, §3.2/§3.5), colors each window with the
//! configured algorithm (§3.3, Listing 1 or the optimal Kőnig variant) or
//! arbitrates it naively, and assembles the resulting
//! [`scheduled::ScheduledMatrix`] — the preprocessed format streamed by the
//! hardware.
//!
//! # Throughput
//!
//! Scheduling is the paper's one-time preprocessing cost (§5.3, Table 4
//! "Pre."), so this module is the software hot path. Two structural choices
//! keep it fast:
//!
//! * **Flat, reusable buffers** — every per-window intermediate (the window
//!   itself, lane groups, per-edge colors) lives in a
//!   [`workspace::ColoringWorkspace`] arena that is reused across windows,
//!   so the steady state performs no allocation besides each window's
//!   exactly-sized output.
//! * **Per-window parallelism** — windows are independent by construction
//!   (§3.2: disjoint row sets), so [`Scheduler::schedule`] fans them out
//!   over `std::thread::scope` workers. Results merge in window order,
//!   making the output bit-identical to the sequential result; see
//!   [`crate::GustConfig::with_parallelism`].

pub mod edge_coloring;
pub mod konig;
pub mod naive;
pub mod scheduled;
pub mod serialize;
pub mod stats;
pub mod windows;
pub mod workspace;

use crate::config::{ColoringAlgorithm, GustConfig, SchedulingPolicy};
use gust_sparse::CsrMatrix;
use scheduled::{ScheduledMatrix, WindowSchedule};
use std::sync::atomic::{AtomicUsize, Ordering};
use windows::WindowPlan;
use workspace::ColoringWorkspace;

/// Produces [`ScheduledMatrix`]es for a given configuration.
///
/// # Example
///
/// ```
/// use gust::schedule::Scheduler;
/// use gust::GustConfig;
/// use gust_sparse::prelude::*;
///
/// let m = CsrMatrix::from(&gen::uniform(32, 32, 128, 1));
/// let schedule = Scheduler::new(GustConfig::new(8)).schedule(&m);
/// schedule.validate_against(&m); // collision-free and complete
/// ```
#[derive(Debug, Clone)]
pub struct Scheduler {
    config: GustConfig,
}

impl Scheduler {
    /// Creates a scheduler for the given configuration.
    #[must_use]
    pub fn new(config: GustConfig) -> Self {
        Self { config }
    }

    /// The configuration this scheduler applies.
    #[must_use]
    pub fn config(&self) -> &GustConfig {
        &self.config
    }

    /// Schedules `matrix`: the paper's preprocessing step.
    ///
    /// This is the one-time cost amortized over repeated SpMVs (§5.3); its
    /// wall-clock time is what Table 4's "Pre." column reports. Windows are
    /// processed in parallel per [`GustConfig::with_parallelism`]; the
    /// result is identical for every thread count.
    #[must_use]
    pub fn schedule(&self, matrix: &CsrMatrix) -> ScheduledMatrix {
        let l = self.config.length();
        let lb = self.config.policy() == SchedulingPolicy::EdgeColoringLb;
        let plan = WindowPlan::new(matrix, l, lb);
        let window_count = plan.window_count();
        let threads = self.worker_count(window_count);

        let windows = if threads <= 1 {
            self.schedule_sequential(matrix, &plan, window_count)
        } else {
            self.schedule_parallel(matrix, &plan, window_count, threads)
        };

        ScheduledMatrix::from_parts(
            l,
            matrix.rows(),
            matrix.cols(),
            plan.row_perm().to_vec(),
            windows,
        )
    }

    /// Worker threads to use for `window_count` windows (see
    /// [`GustConfig::effective_workers`]).
    fn worker_count(&self, window_count: usize) -> usize {
        self.config.effective_workers(window_count)
    }

    fn schedule_sequential(
        &self,
        matrix: &CsrMatrix,
        plan: &WindowPlan,
        window_count: usize,
    ) -> Vec<WindowSchedule> {
        let mut ws = ColoringWorkspace::new();
        (0..window_count)
            .map(|w| self.schedule_one_window(matrix, plan, w, &mut ws))
            .collect()
    }

    /// Fans the windows out over `threads` scoped workers. Work is
    /// distributed dynamically (an atomic cursor) so a few heavy windows
    /// cannot serialize the run; each worker tags its outputs with the
    /// window index and the merge sorts by index, so the result is
    /// bit-identical to [`Scheduler::schedule_sequential`].
    fn schedule_parallel(
        &self,
        matrix: &CsrMatrix,
        plan: &WindowPlan,
        window_count: usize,
        threads: usize,
    ) -> Vec<WindowSchedule> {
        let next = AtomicUsize::new(0);
        let mut tagged: Vec<(usize, WindowSchedule)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    scope.spawn(|| {
                        let mut ws = ColoringWorkspace::new();
                        let mut local = Vec::with_capacity(window_count / threads + 1);
                        loop {
                            let w = next.fetch_add(1, Ordering::Relaxed);
                            if w >= window_count {
                                break;
                            }
                            local.push((w, self.schedule_one_window(matrix, plan, w, &mut ws)));
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("scheduler worker panicked"))
                .collect()
        });
        tagged.sort_unstable_by_key(|&(w, _)| w);
        debug_assert!(tagged.iter().enumerate().all(|(i, &(w, _))| i == w));
        tagged.into_iter().map(|(_, schedule)| schedule).collect()
    }

    /// The per-window pipeline: materialize → color/arbitrate → assemble.
    fn schedule_one_window(
        &self,
        matrix: &CsrMatrix,
        plan: &WindowPlan,
        w: usize,
        ws: &mut ColoringWorkspace,
    ) -> WindowSchedule {
        let l = self.config.length();
        plan.fill_window(matrix, w, &mut ws.window, &mut ws.lanes);
        let bound = ws.scratch.vizing_bound(&ws.window, l) as u32;
        let (colors, stalls) = match self.config.policy() {
            SchedulingPolicy::Naive => {
                let outcome = naive::arbitrate_window(&ws.window, l, &mut ws.scratch);
                (outcome.cycles, outcome.stalls)
            }
            SchedulingPolicy::EdgeColoring | SchedulingPolicy::EdgeColoringLb => {
                let colors = match self.config.coloring() {
                    ColoringAlgorithm::Verbatim => {
                        edge_coloring::color_window_verbatim(&ws.window, l, &mut ws.scratch)
                    }
                    ColoringAlgorithm::Grouped => {
                        edge_coloring::color_window_grouped(&ws.window, l, &mut ws.scratch)
                    }
                    ColoringAlgorithm::Konig => {
                        konig::color_window_konig(&ws.window, l, &mut ws.scratch)
                    }
                };
                (colors, 0)
            }
        };
        ws.scratch.assemble(&ws.window, colors, bound, stalls)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ColoringAlgorithm, GustConfig, SchedulingPolicy};
    use gust_sparse::prelude::*;

    fn policies() -> [SchedulingPolicy; 3] {
        [
            SchedulingPolicy::Naive,
            SchedulingPolicy::EdgeColoring,
            SchedulingPolicy::EdgeColoringLb,
        ]
    }

    #[test]
    fn every_policy_produces_a_valid_schedule() {
        let m = CsrMatrix::from(&gen::uniform(40, 40, 300, 2));
        for policy in policies() {
            let schedule = Scheduler::new(GustConfig::new(8).with_policy(policy)).schedule(&m);
            schedule.validate_against(&m);
        }
    }

    #[test]
    fn every_coloring_algorithm_produces_a_valid_schedule() {
        let m = CsrMatrix::from(&gen::power_law(60, 60, 400, 2.0, 3));
        for algo in [
            ColoringAlgorithm::Verbatim,
            ColoringAlgorithm::Grouped,
            ColoringAlgorithm::Konig,
        ] {
            let schedule = Scheduler::new(GustConfig::new(16).with_coloring(algo)).schedule(&m);
            schedule.validate_against(&m);
        }
    }

    #[test]
    fn edge_coloring_uses_no_more_cycles_than_naive() {
        let m = CsrMatrix::from(&gen::uniform(64, 64, 1024, 4));
        let naive =
            Scheduler::new(GustConfig::new(8).with_policy(SchedulingPolicy::Naive)).schedule(&m);
        let ec = Scheduler::new(GustConfig::new(8).with_policy(SchedulingPolicy::EdgeColoring))
            .schedule(&m);
        assert!(ec.total_colors() <= naive.total_colors());
        assert_eq!(ec.total_stalls(), 0);
        assert!(naive.total_stalls() > 0, "dense input should stall naive");
    }

    #[test]
    fn load_balancing_helps_on_skewed_inputs() {
        // Power-law matrices are the paper's worst case for GUST; load
        // balancing should not hurt and usually helps.
        let m = CsrMatrix::from(&gen::power_law(256, 256, 4000, 1.8, 5));
        let ec = Scheduler::new(GustConfig::new(16).with_policy(SchedulingPolicy::EdgeColoring))
            .schedule(&m);
        let lb = Scheduler::new(GustConfig::new(16).with_policy(SchedulingPolicy::EdgeColoringLb))
            .schedule(&m);
        assert!(
            lb.total_colors() as f64 <= ec.total_colors() as f64 * 1.05,
            "LB {} vs EC {}",
            lb.total_colors(),
            ec.total_colors()
        );
    }

    #[test]
    fn konig_matches_total_vizing_bound() {
        let m = CsrMatrix::from(&gen::uniform(48, 48, 500, 6));
        let schedule =
            Scheduler::new(GustConfig::new(8).with_coloring(ColoringAlgorithm::Konig)).schedule(&m);
        assert_eq!(schedule.total_colors(), schedule.total_vizing_bound());
    }

    #[test]
    fn schedule_preserves_shape_metadata() {
        let m = CsrMatrix::from(&gen::uniform(30, 50, 123, 7));
        let s = Scheduler::new(GustConfig::new(4)).schedule(&m);
        assert_eq!(s.rows(), 30);
        assert_eq!(s.cols(), 50);
        assert_eq!(s.nnz(), 123);
        assert_eq!(s.length(), 4);
        assert_eq!(s.windows().len(), 30usize.div_ceil(4));
    }

    #[test]
    fn parallel_schedule_is_identical_to_sequential() {
        let m = CsrMatrix::from(&gen::power_law(300, 300, 5000, 1.9, 8));
        for policy in policies() {
            let base = GustConfig::new(16).with_policy(policy);
            let sequential = Scheduler::new(base.clone().with_parallelism(Some(1))).schedule(&m);
            for threads in [2, 3, 8] {
                let parallel =
                    Scheduler::new(base.clone().with_parallelism(Some(threads))).schedule(&m);
                assert_eq!(parallel, sequential, "{policy:?} with {threads} threads");
            }
        }
    }

    #[test]
    fn more_workers_than_windows_is_fine() {
        let m = CsrMatrix::from(&gen::uniform(8, 8, 20, 1)); // 1 window at l=8
        let schedule = Scheduler::new(GustConfig::new(8).with_parallelism(Some(64))).schedule(&m);
        schedule.validate_against(&m);
    }
}
