//! The GUST software side: windowing, load balancing and slot assignment.
//!
//! [`Scheduler`] ties the pieces together: it builds the [`windows::WindowPlan`]
//! (row sort + lane assignment, §3.2/§3.5), colors each window with the
//! configured algorithm (§3.3, Listing 1 or the optimal Kőnig variant) or
//! arbitrates it naively, and assembles the resulting
//! [`scheduled::ScheduledMatrix`] — the preprocessed format streamed by the
//! hardware.

pub mod edge_coloring;
pub mod konig;
pub mod naive;
pub mod scheduled;
pub mod serialize;
pub mod stats;
pub mod windows;

use crate::config::{ColoringAlgorithm, GustConfig, SchedulingPolicy};
use gust_sparse::CsrMatrix;
use scheduled::{ScheduledMatrix, WindowSchedule};
use windows::WindowPlan;

/// Produces [`ScheduledMatrix`]es for a given configuration.
///
/// # Example
///
/// ```
/// use gust::schedule::Scheduler;
/// use gust::GustConfig;
/// use gust_sparse::prelude::*;
///
/// let m = CsrMatrix::from(&gen::uniform(32, 32, 128, 1));
/// let schedule = Scheduler::new(GustConfig::new(8)).schedule(&m);
/// schedule.validate_against(&m); // collision-free and complete
/// ```
#[derive(Debug, Clone)]
pub struct Scheduler {
    config: GustConfig,
}

impl Scheduler {
    /// Creates a scheduler for the given configuration.
    #[must_use]
    pub fn new(config: GustConfig) -> Self {
        Self { config }
    }

    /// The configuration this scheduler applies.
    #[must_use]
    pub fn config(&self) -> &GustConfig {
        &self.config
    }

    /// Schedules `matrix`: the paper's preprocessing step.
    ///
    /// This is the one-time cost amortized over repeated SpMVs (§5.3); its
    /// wall-clock time is what Table 4's "Pre." column reports.
    #[must_use]
    pub fn schedule(&self, matrix: &CsrMatrix) -> ScheduledMatrix {
        let l = self.config.length();
        let lb = self.config.policy() == SchedulingPolicy::EdgeColoringLb;
        let plan = WindowPlan::new(matrix, l, lb);

        let mut windows = Vec::with_capacity(plan.window_count());
        for w in 0..plan.window_count() {
            let window = plan.window(matrix, w);
            let bound = window.vizing_bound(l) as u32;
            let schedule = match self.config.policy() {
                SchedulingPolicy::Naive => {
                    let arb = naive::arbitrate_window(&window, l);
                    WindowSchedule::from_colors(arb.per_cycle, bound, arb.stalls)
                }
                SchedulingPolicy::EdgeColoring | SchedulingPolicy::EdgeColoringLb => {
                    let per_color = match self.config.coloring() {
                        ColoringAlgorithm::Verbatim => {
                            edge_coloring::color_window_verbatim(&window, l)
                        }
                        ColoringAlgorithm::Grouped => {
                            edge_coloring::color_window_grouped(&window, l)
                        }
                        ColoringAlgorithm::Konig => konig::color_window_konig(&window, l),
                    };
                    WindowSchedule::from_colors(per_color, bound, 0)
                }
            };
            windows.push(schedule);
        }

        ScheduledMatrix::from_parts(
            l,
            matrix.rows(),
            matrix.cols(),
            plan.row_perm().to_vec(),
            windows,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ColoringAlgorithm, GustConfig, SchedulingPolicy};
    use gust_sparse::prelude::*;

    fn policies() -> [SchedulingPolicy; 3] {
        [
            SchedulingPolicy::Naive,
            SchedulingPolicy::EdgeColoring,
            SchedulingPolicy::EdgeColoringLb,
        ]
    }

    #[test]
    fn every_policy_produces_a_valid_schedule() {
        let m = CsrMatrix::from(&gen::uniform(40, 40, 300, 2));
        for policy in policies() {
            let schedule = Scheduler::new(GustConfig::new(8).with_policy(policy)).schedule(&m);
            schedule.validate_against(&m);
        }
    }

    #[test]
    fn every_coloring_algorithm_produces_a_valid_schedule() {
        let m = CsrMatrix::from(&gen::power_law(60, 60, 400, 2.0, 3));
        for algo in [
            ColoringAlgorithm::Verbatim,
            ColoringAlgorithm::Grouped,
            ColoringAlgorithm::Konig,
        ] {
            let schedule =
                Scheduler::new(GustConfig::new(16).with_coloring(algo)).schedule(&m);
            schedule.validate_against(&m);
        }
    }

    #[test]
    fn edge_coloring_uses_no_more_cycles_than_naive() {
        let m = CsrMatrix::from(&gen::uniform(64, 64, 1024, 4));
        let naive = Scheduler::new(GustConfig::new(8).with_policy(SchedulingPolicy::Naive))
            .schedule(&m);
        let ec = Scheduler::new(GustConfig::new(8).with_policy(SchedulingPolicy::EdgeColoring))
            .schedule(&m);
        assert!(ec.total_colors() <= naive.total_colors());
        assert_eq!(ec.total_stalls(), 0);
        assert!(naive.total_stalls() > 0, "dense input should stall naive");
    }

    #[test]
    fn load_balancing_helps_on_skewed_inputs() {
        // Power-law matrices are the paper's worst case for GUST; load
        // balancing should not hurt and usually helps.
        let m = CsrMatrix::from(&gen::power_law(256, 256, 4000, 1.8, 5));
        let ec = Scheduler::new(GustConfig::new(16).with_policy(SchedulingPolicy::EdgeColoring))
            .schedule(&m);
        let lb =
            Scheduler::new(GustConfig::new(16).with_policy(SchedulingPolicy::EdgeColoringLb))
                .schedule(&m);
        assert!(
            lb.total_colors() as f64 <= ec.total_colors() as f64 * 1.05,
            "LB {} vs EC {}",
            lb.total_colors(),
            ec.total_colors()
        );
    }

    #[test]
    fn konig_matches_total_vizing_bound() {
        let m = CsrMatrix::from(&gen::uniform(48, 48, 500, 6));
        let schedule = Scheduler::new(
            GustConfig::new(8).with_coloring(ColoringAlgorithm::Konig),
        )
        .schedule(&m);
        assert_eq!(schedule.total_colors(), schedule.total_vizing_bound());
    }

    #[test]
    fn schedule_preserves_shape_metadata() {
        let m = CsrMatrix::from(&gen::uniform(30, 50, 123, 7));
        let s = Scheduler::new(GustConfig::new(4)).schedule(&m);
        assert_eq!(s.rows(), 30);
        assert_eq!(s.cols(), 50);
        assert_eq!(s.nnz(), 123);
        assert_eq!(s.length(), 4);
        assert_eq!(s.windows().len(), 30usize.div_ceil(4));
    }
}
