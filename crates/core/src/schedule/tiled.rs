//! 2D row×column tiled schedules: cache blocking for matrices whose
//! **output** vector also exceeds the last-level cache.
//!
//! Column bands ([`super::banded`]) keep the `x[col]` gathers resident,
//! but on tall matrices the `y[row]` side still thrashes: the banded
//! batch walk carries one accumulator bank per window, and with millions
//! of rows the bank array itself is re-streamed from memory once per
//! band. The GPU SpMV literature (Yang et al.) reaches the same
//! conclusion for this regime — when both vectors spill, blocking must
//! be two-dimensional.
//!
//! A [`TiledSchedule`] partitions the rows into contiguous **row tiles**
//! sized by [`crate::GustConfig::with_row_budget`] (`GUST_ROW_BUDGET`
//! override) and schedules each tile's sub-matrix
//! ([`gust_sparse::CsrMatrix::row_slice`]) as an independent
//! [`BandedSchedule`]: windowed, load-balanced and column-banded on its
//! own, with a per-tile density-aware [`super::banded::BandPlan`]. The
//! execution engine ([`crate::Gust::execute_tiled`] /
//! [`crate::Gust::execute_batch_tiled`]) walks tiles outermost, so the
//! accumulator carry of a band sweep is confined to one tile's output
//! slice — both vectors stay cache-resident at once.
//!
//! # Bit-identity
//!
//! A tile is scheduled exactly as a stand-alone matrix, so tiled
//! execution of tile `t` is the PR 4 banded walk of that tile — which is
//! bit-identical to the unbanded engine on the tile's flattened schedule
//! ([`BandedSchedule::to_unbanded`]) under every backend. The tiled
//! output is the concatenation of the tiles' outputs (each original row
//! lives in exactly one tile), so the whole tiled run is bit-identical
//! to running the unbanded engine per tile and stitching the slices, and
//! a **single row tile reproduces the [`BandedSchedule`] path exactly**,
//! partition, coloring and walk. `tests/tiled_equivalence.rs` pins both
//! properties per backend.

use super::banded::BandedSchedule;
use std::ops::Range;

/// A fully scheduled matrix with 2D row×column tiles — the tiled
/// counterpart of [`BandedSchedule`], produced by
/// [`crate::schedule::Scheduler::schedule_tiled`] and executed by
/// [`crate::Gust::execute_tiled`] / [`crate::Gust::execute_batch_tiled`].
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TiledSchedule {
    length: usize,
    rows: usize,
    cols: usize,
    nnz: usize,
    /// Row-tile boundaries: tile `t` covers original rows
    /// `row_starts[t]..row_starts[t + 1]` (length `tiles + 1`).
    row_starts: Vec<u32>,
    /// Per-tile banded schedules, in row order. A tile's `row_perm` is
    /// tile-local: it permutes within the tile's row range.
    tiles: Vec<BandedSchedule>,
}

impl TiledSchedule {
    /// Assembles a tiled schedule from its parts. Crate-internal:
    /// produced by the scheduler and the binary reader, both of which
    /// guarantee (or validate) the tile invariants.
    ///
    /// # Panics
    ///
    /// Panics if the row partition does not ascend from 0 to `rows`, a
    /// tile's shape disagrees with its row range or the matrix columns,
    /// or a tile targets a different accelerator length.
    #[must_use]
    pub(crate) fn from_parts(
        length: usize,
        rows: usize,
        cols: usize,
        row_starts: Vec<u32>,
        tiles: Vec<BandedSchedule>,
    ) -> Self {
        assert_eq!(
            tiles.len() + 1,
            row_starts.len(),
            "tile count inconsistent with row boundaries"
        );
        assert!(
            row_starts.first() == Some(&0)
                && row_starts.last().copied() == Some(rows as u32)
                && row_starts.windows(2).all(|w| w[0] <= w[1]),
            "row-tile boundaries must ascend from 0 to {rows}"
        );
        let mut nnz = 0usize;
        for (t, tile) in tiles.iter().enumerate() {
            let tile_rows = (row_starts[t + 1] - row_starts[t]) as usize;
            assert_eq!(tile.rows(), tile_rows, "tile {t}: row count mismatch");
            assert_eq!(tile.cols(), cols, "tile {t}: column count mismatch");
            assert_eq!(tile.length(), length, "tile {t}: length mismatch");
            nnz += tile.nnz();
        }
        Self {
            length,
            rows,
            cols,
            nnz,
            row_starts,
            tiles,
        }
    }

    /// Accelerator length `l` the schedule targets.
    #[must_use]
    pub fn length(&self) -> usize {
        self.length
    }

    /// Rows of the original matrix.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Columns of the original matrix.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Scheduled non-zeros (equals the source matrix's nnz).
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Number of row tiles.
    #[must_use]
    pub fn tile_count(&self) -> usize {
        self.tiles.len()
    }

    /// The row-tile boundaries (length `tile_count() + 1`).
    #[must_use]
    pub fn row_starts(&self) -> &[u32] {
        &self.row_starts
    }

    /// The original-row range of tile `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t >= self.tile_count()`.
    #[must_use]
    pub fn tile_range(&self, t: usize) -> Range<usize> {
        self.row_starts[t] as usize..self.row_starts[t + 1] as usize
    }

    /// Per-tile banded schedules, in row order. Each tile is a complete
    /// stand-alone [`BandedSchedule`] over the tile's rows and **all**
    /// columns; with a single tile, `tiles()[0]` *is* the schedule
    /// [`crate::schedule::Scheduler::schedule_banded_with`] would have
    /// produced for the whole matrix.
    #[must_use]
    pub fn tiles(&self) -> &[BandedSchedule] {
        &self.tiles
    }

    /// Total colors across tiles, windows and bands — the tiled
    /// streaming cycle count. At least the flat schedule's total: like
    /// banding, tiling trades modeled cycles for host cache locality
    /// (each tile's ragged final window wastes lanes the untiled
    /// windowing would have filled).
    #[must_use]
    pub fn total_colors(&self) -> u64 {
        self.tiles.iter().map(BandedSchedule::total_colors).sum()
    }

    /// Total stalled lane-cycles (naive scheduling only).
    #[must_use]
    pub fn total_stalls(&self) -> u64 {
        self.tiles.iter().map(BandedSchedule::total_stalls).sum()
    }
}

/// Near-equal row-tile boundaries: tile `t` covers rows
/// `t·rows/count .. (t+1)·rows/count` — non-empty whenever
/// `count <= max(rows, 1)` (mirrors [`super::banded::ColumnBands`]).
///
/// # Panics
///
/// Panics if `count` is zero or exceeds `max(rows, 1)`.
#[must_use]
pub(crate) fn row_tile_starts(rows: usize, count: usize) -> Vec<u32> {
    assert!(count > 0, "need at least one row tile");
    assert!(
        count <= rows.max(1),
        "cannot split {rows} rows into {count} non-empty tiles"
    );
    (0..=count).map(|t| (t * rows / count) as u32).collect()
}

/// Row-tile boundaries for a `rows`-row matrix under `row_budget_bytes`
/// at effective batch width `batch` with `elem_bytes`-wide elements (4
/// for f32 walks, 8 for f64), on a length-`length` accelerator: every
/// tile spans exactly `tile_rows` rows — the largest multiple of
/// `length` whose output slice (`tile_rows × batch × elem_bytes` bytes)
/// fits the budget, never less than one window — except the final tile,
/// which takes the remainder. Chunked rather than near-equal splitting
/// keeps every non-final tile window-aligned, so only each tile's
/// *final* window can be ragged.
#[must_use]
pub(crate) fn row_tile_starts_for_budget(
    rows: usize,
    length: usize,
    batch: usize,
    elem_bytes: usize,
    row_budget_bytes: usize,
) -> Vec<u32> {
    let budget_rows = (row_budget_bytes / (elem_bytes.max(1) * batch.max(1))).max(1);
    let tile_rows = (budget_rows / length * length).max(length);
    let count = rows.div_ceil(tile_rows).max(1);
    (0..=count)
        .map(|t| (t * tile_rows).min(rows) as u32)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_tile_starts_cover_all_rows_in_order() {
        for (rows, count) in [(9usize, 2usize), (100, 7), (5, 5), (1, 1), (64, 1)] {
            let starts = row_tile_starts(rows, count);
            assert_eq!(starts.len(), count + 1);
            assert_eq!(starts[0], 0);
            assert_eq!(*starts.last().unwrap() as usize, rows);
            for w in starts.windows(2) {
                assert!(w[0] < w[1], "{rows} rows / {count}: empty tile");
            }
        }
        // Zero rows degenerate to one empty tile.
        assert_eq!(row_tile_starts(0, 1), vec![0, 0]);
    }

    #[test]
    #[should_panic(expected = "non-empty tiles")]
    fn more_tiles_than_rows_panics() {
        let _ = row_tile_starts(3, 4);
    }

    #[test]
    fn budget_tile_starts_align_to_the_accelerator_length() {
        // 64 KiB at batch 1 → 16 384 rows per tile, rounded to l = 256.
        let starts = row_tile_starts_for_budget(1 << 20, 256, 1, 4, 64 * 1024);
        assert_eq!(starts.len(), 64 + 1);
        // Batched walks divide the budget by the block width.
        assert_eq!(
            row_tile_starts_for_budget(1 << 20, 256, 8, 4, 64 * 1024).len(),
            512 + 1
        );
        // Every non-final boundary is window-aligned, so only each
        // tile's final window can be ragged.
        let starts = row_tile_starts_for_budget(100, 8, 8, 4, 1);
        assert_eq!(starts.len(), 13 + 1);
        for &s in &starts[..starts.len() - 1] {
            assert_eq!(s % 8, 0, "boundary {s} not window-aligned");
        }
        assert_eq!(*starts.last().unwrap(), 100);
        assert!(starts.windows(2).all(|w| w[0] < w[1]), "no empty tiles");
        // A generous budget means one tile; a tile is never smaller than
        // one accelerator window, so tiny matrices stay a single tile
        // even under a 1-byte budget.
        assert_eq!(row_tile_starts_for_budget(100, 8, 8, 4, 1 << 30).len(), 2);
        assert_eq!(row_tile_starts_for_budget(3, 8, 8, 4, 1), vec![0, 3]);
        assert_eq!(row_tile_starts_for_budget(0, 8, 1, 4, 1), vec![0, 0]);
    }

    #[test]
    fn f64_tiles_halve_under_the_same_budget() {
        // The element width divides the budget: f64 output slices are
        // twice the bytes per row, so the tile count doubles.
        let f32_tiles = row_tile_starts_for_budget(1 << 20, 256, 8, 4, 64 * 1024).len() - 1;
        let f64_tiles = row_tile_starts_for_budget(1 << 20, 256, 8, 8, 64 * 1024).len() - 1;
        assert_eq!(f64_tiles, 2 * f32_tiles);
    }
}
