//! Schedule quality diagnostics: where do the cycles go, and how far is a
//! schedule from the Eq. 1 optimum?
//!
//! The bench harness and the ablation study use these to explain *why* a
//! matrix utilizes well or badly: per-window slack over the Vizing bound
//! (scheduler quality), occupancy distribution (load-balance quality) and
//! the busiest-window concentration (§3.5's standard-deviation argument).

use super::scheduled::ScheduledMatrix;

/// Aggregated diagnostics over a [`ScheduledMatrix`].
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleStats {
    /// Total streaming cycles (= total colors).
    pub total_colors: u64,
    /// Sum of per-window Eq. 1 lower bounds.
    pub total_vizing_bound: u64,
    /// Mean colors per (non-empty) window.
    pub mean_colors: f64,
    /// Largest window color count.
    pub max_colors: u32,
    /// Population standard deviation of window color counts.
    pub std_colors: f64,
    /// Mean slot occupancy per color across the schedule, in `[0, 1]`
    /// (this equals streaming-phase utilization).
    pub mean_occupancy: f64,
    /// Fraction of cycles spent in the busiest 10% of windows.
    pub heavy_window_share: f64,
    /// Non-empty windows.
    pub active_windows: usize,
}

impl ScheduleStats {
    /// Computes diagnostics for `schedule`. O(windows + nnz).
    #[must_use]
    pub fn from_schedule(schedule: &ScheduledMatrix) -> Self {
        let l = schedule.length() as f64;
        let mut colors: Vec<u32> = schedule
            .windows()
            .iter()
            .map(|w| w.colors())
            .filter(|&c| c > 0)
            .collect();
        let active_windows = colors.len();
        let total_colors = schedule.total_colors();
        let total_vizing_bound = schedule.total_vizing_bound();
        let mean_colors = if active_windows == 0 {
            0.0
        } else {
            total_colors as f64 / active_windows as f64
        };
        let max_colors = colors.iter().copied().max().unwrap_or(0);
        let var = if active_windows == 0 {
            0.0
        } else {
            colors
                .iter()
                .map(|&c| {
                    let d = f64::from(c) - mean_colors;
                    d * d
                })
                .sum::<f64>()
                / active_windows as f64
        };
        let mean_occupancy = if total_colors == 0 {
            0.0
        } else {
            schedule.nnz() as f64 / (l * total_colors as f64)
        };
        // Share of cycles in the top decile of windows.
        colors.sort_unstable_by(|a, b| b.cmp(a));
        let top = active_windows.div_ceil(10);
        let heavy: u64 = colors.iter().take(top).map(|&c| u64::from(c)).sum();
        let heavy_window_share = if total_colors == 0 {
            0.0
        } else {
            heavy as f64 / total_colors as f64
        };
        Self {
            total_colors,
            total_vizing_bound,
            mean_colors,
            max_colors,
            std_colors: var.sqrt(),
            mean_occupancy,
            heavy_window_share,
            active_windows,
        }
    }

    /// Scheduler slack over the optimum: `total_colors / vizing_bound − 1`
    /// (0 means every window hit the Eq. 1 bound; `None` for empty
    /// schedules).
    #[must_use]
    pub fn slack_over_bound(&self) -> Option<f64> {
        if self.total_vizing_bound == 0 {
            return None;
        }
        Some(self.total_colors as f64 / self.total_vizing_bound as f64 - 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ColoringAlgorithm, GustConfig, SchedulingPolicy};
    use crate::engine::Gust;
    use gust_sparse::prelude::*;

    #[test]
    fn identity_schedule_is_fully_regular() {
        let m = CsrMatrix::identity(32);
        let schedule = Gust::new(GustConfig::new(8)).schedule(&m);
        let stats = ScheduleStats::from_schedule(&schedule);
        assert_eq!(stats.active_windows, 4);
        assert_eq!(stats.max_colors, 1);
        assert_eq!(stats.std_colors, 0.0);
        assert!((stats.mean_occupancy - 1.0).abs() < 1e-12);
        assert_eq!(stats.slack_over_bound(), Some(0.0));
    }

    #[test]
    fn occupancy_equals_streaming_utilization() {
        let m = CsrMatrix::from(&gen::uniform(64, 64, 500, 3));
        let gust = Gust::new(GustConfig::new(16));
        let schedule = gust.schedule(&m);
        let stats = ScheduleStats::from_schedule(&schedule);
        let expected = 500.0 / (16.0 * schedule.total_colors() as f64);
        assert!((stats.mean_occupancy - expected).abs() < 1e-12);
    }

    #[test]
    fn konig_has_zero_slack() {
        let m = CsrMatrix::from(&gen::power_law(80, 80, 600, 1.8, 4));
        let schedule =
            Gust::new(GustConfig::new(16).with_coloring(ColoringAlgorithm::Konig)).schedule(&m);
        let stats = ScheduleStats::from_schedule(&schedule);
        assert_eq!(stats.slack_over_bound(), Some(0.0));
    }

    #[test]
    fn naive_has_more_slack_than_greedy() {
        let m = CsrMatrix::from(&gen::uniform(64, 64, 1200, 5));
        let greedy = ScheduleStats::from_schedule(&Gust::new(GustConfig::new(16)).schedule(&m));
        let naive = ScheduleStats::from_schedule(
            &Gust::new(GustConfig::new(16).with_policy(SchedulingPolicy::Naive)).schedule(&m),
        );
        assert!(naive.slack_over_bound().unwrap() > greedy.slack_over_bound().unwrap());
    }

    #[test]
    fn heavy_window_share_detects_skew() {
        // Power-law without LB: heavy rows inflate a few windows.
        let m = CsrMatrix::from(&gen::power_law(256, 256, 3000, 1.6, 6));
        let no_lb = ScheduleStats::from_schedule(
            &Gust::new(GustConfig::new(16).with_policy(SchedulingPolicy::EdgeColoring))
                .schedule(&m),
        );
        // A k-regular matrix has near-identical windows.
        let k = CsrMatrix::from(&gen::k_regular(256, 256, 12, 6));
        let regular = ScheduleStats::from_schedule(
            &Gust::new(GustConfig::new(16).with_policy(SchedulingPolicy::EdgeColoring))
                .schedule(&k),
        );
        assert!(
            no_lb.heavy_window_share > regular.heavy_window_share,
            "{} vs {}",
            no_lb.heavy_window_share,
            regular.heavy_window_share
        );
    }

    #[test]
    fn empty_schedule_stats_are_well_defined() {
        let coo = CooMatrix::from_triplets(4, 4, vec![(0, 0, 1.0)]).unwrap();
        let m = CsrMatrix::from(&coo);
        let schedule = Gust::new(GustConfig::new(4)).schedule(&m);
        let stats = ScheduleStats::from_schedule(&schedule);
        assert_eq!(stats.active_windows, 1);
        // Fully empty case.
        let empty = ScheduledMatrix::from_parts(4, 4, 4, vec![0, 1, 2, 3], vec![]);
        let stats = ScheduleStats::from_schedule(&empty);
        assert_eq!(stats.total_colors, 0);
        assert_eq!(stats.slack_over_bound(), None);
        assert_eq!(stats.mean_occupancy, 0.0);
    }
}
