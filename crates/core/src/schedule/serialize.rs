//! Binary serialization of the scheduled format — the byte stream the
//! Buffer Filler consumes from off-chip memory (§3.3 "Streaming the
//! Inputs").
//!
//! Layout (little-endian):
//!
//! ```text
//! magic "GUST" | version u32 | length u32 | rows u64 | cols u64
//! | row_perm: rows × u32
//! | window count u64
//! | per window: colors u32, vizing u32, stalls u64,
//!   then colors × l dense cells — each cell:
//!     occupancy u8 (0 = empty), then value f32, row_mod u32, col u32
//! ```
//!
//! The dense per-color cell grid is deliberate: it is the paper's actual
//! `M_sch`/`Row_sch`/`Col_sch` stream (empty cells included — the
//! emptiness *is* the utilization loss), so the byte length of a serialized
//! schedule matches [`ScheduledMatrix::dense_stream_bytes`] up to the
//! per-cell bookkeeping this container format adds.

use super::banded::{BandedSchedule, BandedWindow, ColumnBands};
use super::scheduled::{ScheduledMatrix, WindowSchedule};
use super::tiled::TiledSchedule;
use std::io::{self, Read, Write};

const MAGIC: &[u8; 4] = b"GUST";
/// Banded-schedule container magic: the band partition and per-window
/// band offsets wrap the same per-window cell grid as the flat format.
const BANDED_MAGIC: &[u8; 4] = b"GUSB";
/// Tiled-schedule container magic: row-tile boundaries wrapping one
/// banded-schedule body (band partition + per-window cell grids + band
/// offsets) per tile.
const TILED_MAGIC: &[u8; 4] = b"GUTL";
const VERSION: u32 = 1;

/// Errors from reading a serialized schedule.
#[derive(Debug)]
#[non_exhaustive]
pub enum ReadScheduleError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Not a schedule stream, or an unsupported version.
    Format(String),
}

impl std::fmt::Display for ReadScheduleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "io error: {e}"),
            Self::Format(m) => write!(f, "format error: {m}"),
        }
    }
}

impl std::error::Error for ReadScheduleError {}

impl From<io::Error> for ReadScheduleError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

/// Writes `schedule` to `writer` in the stream format above.
///
/// Accepts any [`Write`]r by value; pass `&mut writer` to keep ownership.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_schedule<W: Write>(schedule: &ScheduledMatrix, mut writer: W) -> io::Result<()> {
    writer.write_all(MAGIC)?;
    writer.write_all(&VERSION.to_le_bytes())?;
    writer.write_all(&(schedule.length() as u32).to_le_bytes())?;
    writer.write_all(&(schedule.rows() as u64).to_le_bytes())?;
    writer.write_all(&(schedule.cols() as u64).to_le_bytes())?;
    for &orig in schedule.row_perm() {
        writer.write_all(&orig.to_le_bytes())?;
    }
    writer.write_all(&(schedule.windows().len() as u64).to_le_bytes())?;
    let l = schedule.length();
    for window in schedule.windows() {
        write_window(window, l, &mut writer)?;
    }
    Ok(())
}

/// Writes one window's header and dense per-color cell grid (the shared
/// payload of the flat and banded containers).
fn write_window<W: Write>(window: &WindowSchedule, l: usize, writer: &mut W) -> io::Result<()> {
    writer.write_all(&window.colors().to_le_bytes())?;
    writer.write_all(&window.vizing_bound().to_le_bytes())?;
    writer.write_all(&window.stalls().to_le_bytes())?;
    // Dense per-color grid, lane-major within a color. The SoA slots of
    // one color are already lane-sorted, so a merge against `0..l`
    // produces the dense cells without any scratch grid.
    for c in 0..window.colors() {
        let mut slots = window.iter_color(c).peekable();
        for lane in 0..l as u32 {
            match slots.peek() {
                Some(slot) if slot.lane == lane => {
                    writer.write_all(&[1u8])?;
                    writer.write_all(&slot.value.to_le_bytes())?;
                    writer.write_all(&slot.row_mod.to_le_bytes())?;
                    writer.write_all(&slot.col.to_le_bytes())?;
                    slots.next();
                }
                _ => writer.write_all(&[0u8])?,
            }
        }
        // A slot whose lane is outside 0..l can never merge; dropping
        // it silently would serialize a wrong schedule.
        assert!(
            slots.peek().is_none(),
            "slot lane out of range for schedule length {l}"
        );
    }
    Ok(())
}

/// Writes `schedule` — a cache-blocked banded schedule — to `writer`.
///
/// Layout: the flat header with the [`BANDED_MAGIC`], then the band
/// boundaries, then per window the merged band-major cell grid followed
/// by its CSR-style band slot offsets:
///
/// ```text
/// magic "GUSB" | version u32 | length u32 | rows u64 | cols u64
/// | band count u64 | band_starts: (bands + 1) × u32
/// | row_perm: rows × u32
/// | window count u64
/// | per window: the flat per-window block, then (bands + 1) × u32 offsets
/// ```
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_banded_schedule<W: Write>(schedule: &BandedSchedule, mut writer: W) -> io::Result<()> {
    writer.write_all(BANDED_MAGIC)?;
    writer.write_all(&VERSION.to_le_bytes())?;
    writer.write_all(&(schedule.length() as u32).to_le_bytes())?;
    writer.write_all(&(schedule.rows() as u64).to_le_bytes())?;
    writer.write_all(&(schedule.cols() as u64).to_le_bytes())?;
    write_banded_body(schedule, &mut writer)
}

/// Writes the banded payload that follows the shape header: band count,
/// band boundaries, row permutation, window count, then each window's
/// cell grid plus its band slot offsets. Shared by the `GUSB` container
/// and each tile of the `GUTL` container.
fn write_banded_body<W: Write>(schedule: &BandedSchedule, writer: &mut W) -> io::Result<()> {
    writer.write_all(&(schedule.bands().count() as u64).to_le_bytes())?;
    for &start in schedule.bands().starts() {
        writer.write_all(&start.to_le_bytes())?;
    }
    for &orig in schedule.row_perm() {
        writer.write_all(&orig.to_le_bytes())?;
    }
    writer.write_all(&(schedule.windows().len() as u64).to_le_bytes())?;
    let l = schedule.length();
    for window in schedule.windows() {
        write_window(window.window(), l, writer)?;
        for &ptr in window.band_slot_ptr() {
            writer.write_all(&ptr.to_le_bytes())?;
        }
    }
    Ok(())
}

/// Writes `schedule` — a 2D row×column tiled schedule — to `writer`.
///
/// Layout: the shape header with the [`TILED_MAGIC`], the row-tile
/// boundaries, then one banded body (as in [`write_banded_schedule`])
/// per tile:
///
/// ```text
/// magic "GUTL" | version u32 | length u32 | rows u64 | cols u64
/// | tile count u64 | row_starts: (tiles + 1) × u32
/// | per tile: band count u64, band_starts, row_perm (tile rows × u32),
///   window count u64, windows (cell grid + band offsets)
/// ```
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_tiled_schedule<W: Write>(schedule: &TiledSchedule, mut writer: W) -> io::Result<()> {
    writer.write_all(TILED_MAGIC)?;
    writer.write_all(&VERSION.to_le_bytes())?;
    writer.write_all(&(schedule.length() as u32).to_le_bytes())?;
    writer.write_all(&(schedule.rows() as u64).to_le_bytes())?;
    writer.write_all(&(schedule.cols() as u64).to_le_bytes())?;
    writer.write_all(&(schedule.tile_count() as u64).to_le_bytes())?;
    for &start in schedule.row_starts() {
        writer.write_all(&start.to_le_bytes())?;
    }
    for tile in schedule.tiles() {
        write_banded_body(tile, &mut writer)?;
    }
    Ok(())
}

/// Reads a schedule previously written with [`write_schedule`].
///
/// # Errors
///
/// [`ReadScheduleError::Format`] on a bad magic/version or inconsistent
/// structure, [`ReadScheduleError::Io`] on reader failure.
pub fn read_schedule<R: Read>(mut reader: R) -> Result<ScheduledMatrix, ReadScheduleError> {
    let mut magic = [0u8; 4];
    reader.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(ReadScheduleError::Format("bad magic".into()));
    }
    let version = read_u32(&mut reader)?;
    if version != VERSION {
        return Err(ReadScheduleError::Format(format!(
            "unsupported version {version}"
        )));
    }
    let length = read_u32(&mut reader)? as usize;
    if length == 0 {
        return Err(ReadScheduleError::Format("zero length".into()));
    }
    let rows = read_u64(&mut reader)? as usize;
    let cols = read_u64(&mut reader)? as usize;
    let row_perm = read_row_perm(&mut reader, rows)?;
    let window_count = read_u64(&mut reader)? as usize;
    if window_count != rows.div_ceil(length) {
        return Err(ReadScheduleError::Format(format!(
            "window count {window_count} inconsistent with {rows} rows at length {length}"
        )));
    }
    let mut windows = Vec::with_capacity(window_count);
    for _ in 0..window_count {
        windows.push(read_window(&mut reader, length, cols)?);
    }
    Ok(ScheduledMatrix::from_parts(
        length, rows, cols, row_perm, windows,
    ))
}

/// Reads a row permutation, validating every entry is `< rows` so a
/// corrupt stream surfaces as a format error rather than a construction
/// panic.
fn read_row_perm<R: Read>(reader: &mut R, rows: usize) -> Result<Vec<u32>, ReadScheduleError> {
    let mut row_perm = Vec::with_capacity(rows.min(1 << 20));
    for _ in 0..rows {
        let orig = read_u32(reader)?;
        if orig as usize >= rows {
            return Err(ReadScheduleError::Format(format!(
                "row permutation entry {orig} out of range for {rows} rows"
            )));
        }
        row_perm.push(orig);
    }
    Ok(row_perm)
}

/// Reads one window block (header + dense cell grid), validating the
/// engine's bounds invariants so a corrupt stream surfaces as a format
/// error rather than a panic in the SIMD kernels.
fn read_window<R: Read>(
    reader: &mut R,
    length: usize,
    cols: usize,
) -> Result<WindowSchedule, ReadScheduleError> {
    let colors = read_u32(reader)?;
    let vizing = read_u32(reader)?;
    let stalls = read_u64(reader)?;
    // The stream stores each color's cells in lane order, which is
    // exactly the structure-of-arrays slot order — fill the four
    // parallel arrays directly.
    let mut lanes: Vec<u32> = Vec::new();
    let mut row_mods: Vec<u32> = Vec::new();
    let mut cols_arr: Vec<u32> = Vec::new();
    let mut values: Vec<f32> = Vec::new();
    // Cap the pre-allocation: `colors` is an untrusted header field, and
    // a corrupt stream should fail on its next read, not on a giant
    // up-front reservation.
    let mut color_ptr: Vec<u32> = Vec::with_capacity((colors as usize).min(1 << 20) + 1);
    color_ptr.push(0);
    for _ in 0..colors {
        for lane in 0..length {
            let mut occ = [0u8; 1];
            reader.read_exact(&mut occ)?;
            match occ[0] {
                0 => {}
                1 => {
                    let value = f32::from_le_bytes(read_array(reader)?);
                    let row_mod = read_u32(reader)?;
                    let col = read_u32(reader)?;
                    if row_mod as usize >= length {
                        return Err(ReadScheduleError::Format(format!(
                            "row_mod {row_mod} out of range for length {length}"
                        )));
                    }
                    // The execution engine's SIMD gathers treat
                    // in-bounds columns as a schedule invariant
                    // (`ScheduledMatrix::from_parts` re-asserts it);
                    // a corrupt stream must surface as a format
                    // error here, not a panic there.
                    if col as usize >= cols {
                        return Err(ReadScheduleError::Format(format!(
                            "column {col} out of range for {cols} columns"
                        )));
                    }
                    lanes.push(lane as u32);
                    row_mods.push(row_mod);
                    cols_arr.push(col);
                    values.push(value);
                }
                other => {
                    return Err(ReadScheduleError::Format(format!(
                        "bad occupancy byte {other}"
                    )))
                }
            }
        }
        color_ptr.push(lanes.len() as u32);
    }
    Ok(WindowSchedule::from_soa(
        colors, vizing, stalls, color_ptr, lanes, row_mods, cols_arr, values,
    ))
}

/// Reads a banded schedule previously written with
/// [`write_banded_schedule`].
///
/// # Errors
///
/// [`ReadScheduleError::Format`] on a bad magic/version, an inconsistent
/// band partition, or a slot whose column falls outside its band;
/// [`ReadScheduleError::Io`] on reader failure.
pub fn read_banded_schedule<R: Read>(mut reader: R) -> Result<BandedSchedule, ReadScheduleError> {
    let mut magic = [0u8; 4];
    reader.read_exact(&mut magic)?;
    if &magic != BANDED_MAGIC {
        return Err(ReadScheduleError::Format("bad banded magic".into()));
    }
    let version = read_u32(&mut reader)?;
    if version != VERSION {
        return Err(ReadScheduleError::Format(format!(
            "unsupported version {version}"
        )));
    }
    let length = read_u32(&mut reader)? as usize;
    if length == 0 {
        return Err(ReadScheduleError::Format("zero length".into()));
    }
    let rows = read_u64(&mut reader)? as usize;
    let cols = read_u64(&mut reader)? as usize;
    read_banded_body(&mut reader, length, rows, cols)
}

/// Reads the banded payload that follows the shape header (see
/// [`write_banded_body`]), validating the band partition and every
/// window's band offsets. Shared by the `GUSB` container and each tile
/// of the `GUTL` container.
fn read_banded_body<R: Read>(
    reader: &mut R,
    length: usize,
    rows: usize,
    cols: usize,
) -> Result<BandedSchedule, ReadScheduleError> {
    // Band boundaries are u32, so a stream claiming more columns than
    // u32 can address is corrupt by construction — reject it before the
    // `cols as u32` comparison below could truncate.
    if u32::try_from(cols).is_err() {
        return Err(ReadScheduleError::Format(format!(
            "column count {cols} exceeds the u32 band-boundary range"
        )));
    }
    let band_count = read_u64(reader)? as usize;
    if band_count == 0 {
        return Err(ReadScheduleError::Format("zero bands".into()));
    }
    // Bands partition u32 column indices, so a count past the column
    // range is corrupt by construction — reject before trusting it for
    // an allocation (a truncated stream then errors on the next read).
    if band_count > cols.max(1) {
        return Err(ReadScheduleError::Format(format!(
            "band count {band_count} exceeds {cols} columns"
        )));
    }
    let mut band_starts = Vec::with_capacity(band_count + 1);
    for _ in 0..=band_count {
        band_starts.push(read_u32(reader)?);
    }
    if band_starts[0] != 0
        || band_starts.last().copied() != Some(cols as u32)
        || band_starts.windows(2).any(|w| w[0] > w[1])
    {
        return Err(ReadScheduleError::Format(format!(
            "band boundaries must ascend from 0 to {cols}"
        )));
    }
    let bands = ColumnBands::from_starts(band_starts);
    let row_perm = read_row_perm(reader, rows)?;
    let window_count = read_u64(reader)? as usize;
    if window_count != rows.div_ceil(length) {
        return Err(ReadScheduleError::Format(format!(
            "window count {window_count} inconsistent with {rows} rows at length {length}"
        )));
    }
    let mut windows = Vec::with_capacity(window_count);
    for _ in 0..window_count {
        let window = read_window(reader, length, cols)?;
        let mut band_slot_ptr = Vec::with_capacity(bands.count() + 1);
        for _ in 0..=bands.count() {
            band_slot_ptr.push(read_u32(reader)?);
        }
        let banded = BandedWindow::from_merged(window, band_slot_ptr, bands.starts())
            .map_err(ReadScheduleError::Format)?;
        windows.push(banded);
    }
    Ok(BandedSchedule::from_parts(
        length, rows, cols, row_perm, bands, windows,
    ))
}

/// Reads a tiled schedule previously written with
/// [`write_tiled_schedule`].
///
/// # Errors
///
/// [`ReadScheduleError::Format`] on a bad magic/version, an inconsistent
/// row-tile partition, or any per-tile banded-body violation;
/// [`ReadScheduleError::Io`] on reader failure.
pub fn read_tiled_schedule<R: Read>(mut reader: R) -> Result<TiledSchedule, ReadScheduleError> {
    let mut magic = [0u8; 4];
    reader.read_exact(&mut magic)?;
    if &magic != TILED_MAGIC {
        return Err(ReadScheduleError::Format("bad tiled magic".into()));
    }
    let version = read_u32(&mut reader)?;
    if version != VERSION {
        return Err(ReadScheduleError::Format(format!(
            "unsupported version {version}"
        )));
    }
    let length = read_u32(&mut reader)? as usize;
    if length == 0 {
        return Err(ReadScheduleError::Format("zero length".into()));
    }
    let rows = read_u64(&mut reader)? as usize;
    let cols = read_u64(&mut reader)? as usize;
    // Row-tile boundaries are u32; a row count past that range is
    // corrupt by construction.
    if u32::try_from(rows).is_err() {
        return Err(ReadScheduleError::Format(format!(
            "row count {rows} exceeds the u32 tile-boundary range"
        )));
    }
    let tile_count = read_u64(&mut reader)? as usize;
    if tile_count == 0 {
        return Err(ReadScheduleError::Format("zero tiles".into()));
    }
    // Tiles partition the rows, so a count past the row range is corrupt
    // by construction — reject before trusting it for an allocation.
    if tile_count > rows.max(1) {
        return Err(ReadScheduleError::Format(format!(
            "tile count {tile_count} exceeds {rows} rows"
        )));
    }
    let mut row_starts = Vec::with_capacity(tile_count + 1);
    for _ in 0..=tile_count {
        row_starts.push(read_u32(&mut reader)?);
    }
    if row_starts[0] != 0
        || row_starts.last().copied() != Some(rows as u32)
        || row_starts.windows(2).any(|w| w[0] > w[1])
    {
        return Err(ReadScheduleError::Format(format!(
            "row-tile boundaries must ascend from 0 to {rows}"
        )));
    }
    let mut tiles = Vec::with_capacity(tile_count);
    for t in 0..tile_count {
        let tile_rows = (row_starts[t + 1] - row_starts[t]) as usize;
        tiles.push(read_banded_body(&mut reader, length, tile_rows, cols)?);
    }
    Ok(TiledSchedule::from_parts(
        length, rows, cols, row_starts, tiles,
    ))
}

fn read_array<R: Read, const N: usize>(reader: &mut R) -> io::Result<[u8; N]> {
    let mut buf = [0u8; N];
    reader.read_exact(&mut buf)?;
    Ok(buf)
}

fn read_u32<R: Read>(reader: &mut R) -> io::Result<u32> {
    Ok(u32::from_le_bytes(read_array(reader)?))
}

fn read_u64<R: Read>(reader: &mut R) -> io::Result<u64> {
    Ok(u64::from_le_bytes(read_array(reader)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{GustConfig, SchedulingPolicy};
    use crate::engine::Gust;
    use gust_sparse::prelude::*;

    fn round_trip(schedule: &ScheduledMatrix) -> ScheduledMatrix {
        let mut buf = Vec::new();
        write_schedule(schedule, &mut buf).expect("write to vec");
        read_schedule(buf.as_slice()).expect("read own output")
    }

    #[test]
    fn round_trips_exactly() {
        let m = CsrMatrix::from(&gen::uniform(40, 50, 300, 3));
        let schedule = Gust::new(GustConfig::new(8)).schedule(&m);
        let back = round_trip(&schedule);
        assert_eq!(back, schedule);
    }

    #[test]
    fn round_trips_naive_schedules_with_stalls() {
        let m = CsrMatrix::from(&gen::uniform(32, 32, 400, 5));
        let schedule =
            Gust::new(GustConfig::new(8).with_policy(SchedulingPolicy::Naive)).schedule(&m);
        assert!(schedule.total_stalls() > 0);
        let back = round_trip(&schedule);
        assert_eq!(back.total_stalls(), schedule.total_stalls());
        assert_eq!(back, schedule);
    }

    #[test]
    fn deserialized_schedule_executes_identically() {
        let m = CsrMatrix::from(&gen::power_law(64, 64, 500, 1.9, 7));
        let gust = Gust::new(GustConfig::new(16));
        let schedule = gust.schedule(&m);
        let back = round_trip(&schedule);
        let x: Vec<f32> = (0..64).map(|i| (i % 7) as f32 - 3.0).collect();
        assert_eq!(gust.execute(&back, &x), gust.execute(&schedule, &x));
    }

    #[test]
    fn stream_length_tracks_dense_stream_size() {
        let m = CsrMatrix::from(&gen::uniform(64, 64, 400, 9));
        let schedule = Gust::new(GustConfig::new(16)).schedule(&m);
        let mut buf = Vec::new();
        write_schedule(&schedule, &mut buf).expect("write");
        // Cells dominate: colors × l × (1..13 bytes per cell); the payload
        // must be within the per-cell bounds around the dense-stream model.
        let cells = schedule.total_colors() * 16;
        assert!(buf.len() as u64 >= cells, "at least 1 byte per cell");
        assert!(
            (buf.len() as u64) < 13 * cells + 4096,
            "bounded by full cells + header"
        );
    }

    #[test]
    fn rejects_bad_magic_and_version() {
        let err = read_schedule(&b"NOPE"[..]).unwrap_err();
        assert!(err.to_string().contains("bad magic"));
        let mut buf = Vec::new();
        buf.extend_from_slice(b"GUST");
        buf.extend_from_slice(&99u32.to_le_bytes());
        let err = read_schedule(buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("unsupported version"));
    }

    #[test]
    fn rejects_truncation() {
        let m = CsrMatrix::identity(8);
        let schedule = Gust::new(GustConfig::new(4)).schedule(&m);
        let mut buf = Vec::new();
        write_schedule(&schedule, &mut buf).expect("write");
        for cut in [3usize, 10, buf.len() / 2, buf.len() - 1] {
            assert!(
                read_schedule(&buf[..cut]).is_err(),
                "truncation at {cut} must fail"
            );
        }
    }

    #[test]
    fn rejects_out_of_range_columns() {
        // Serialize a valid schedule, then corrupt the first occupied
        // cell's column index to point past the matrix.
        let m = CsrMatrix::identity(8);
        let schedule = Gust::new(GustConfig::new(4)).schedule(&m);
        let mut buf = Vec::new();
        write_schedule(&schedule, &mut buf).expect("write");
        // Stream layout: magic 4 + version 4 + length 4 + rows 8 + cols 8
        // + row_perm 8×4 + window count 8 + first window header (colors 4
        // + vizing 4 + stalls 8) = 84 bytes, then the first cell. Lane 0
        // of the identity's first window is occupied.
        let occupied = 84;
        assert_eq!(buf[occupied], 1, "expected an occupied first cell");
        // Cell layout: occupancy u8, value f32, row_mod u32, col u32.
        let col_at = occupied + 1 + 4 + 4;
        buf[col_at..col_at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        let err = read_schedule(buf.as_slice()).unwrap_err();
        assert!(
            err.to_string().contains("out of range"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn round_trip_preserves_staging_index() {
        let m = CsrMatrix::from(&gen::power_law(64, 64, 500, 1.9, 7));
        let schedule = Gust::new(GustConfig::new(16)).schedule(&m);
        let back = round_trip(&schedule);
        for (a, b) in schedule.windows().iter().zip(back.windows()) {
            assert_eq!(a.gather_cols(), b.gather_cols());
            assert_eq!(a.local_cols(), b.local_cols());
        }
    }

    #[test]
    fn empty_matrix_schedule_round_trips() {
        let coo = CooMatrix::from_triplets(6, 6, vec![(0, 0, 1.0)]).unwrap();
        let m = CsrMatrix::from(&coo);
        let schedule = Gust::new(GustConfig::new(4)).schedule(&m);
        assert_eq!(round_trip(&schedule), schedule);
    }

    fn banded_round_trip(schedule: &BandedSchedule) -> BandedSchedule {
        let mut buf = Vec::new();
        write_banded_schedule(schedule, &mut buf).expect("write to vec");
        read_banded_schedule(buf.as_slice()).expect("read own output")
    }

    #[test]
    fn banded_schedules_round_trip_exactly() {
        use crate::schedule::{banded::ColumnBands, Scheduler};
        let m = CsrMatrix::from(&gen::power_law(60, 70, 500, 1.9, 21));
        for bands in [1usize, 2, 7] {
            let schedule = Scheduler::new(GustConfig::new(8))
                .schedule_banded_with(&m, ColumnBands::with_count(70, bands));
            let back = banded_round_trip(&schedule);
            assert_eq!(back, schedule, "{bands} bands");
            // And the round-tripped schedule executes identically.
            let gust = Gust::new(GustConfig::new(8));
            let x: Vec<f32> = (0..70).map(|i| (i % 5) as f32 - 2.0).collect();
            assert_eq!(
                gust.execute_banded(&back, &x),
                gust.execute_banded(&schedule, &x)
            );
        }
    }

    #[test]
    fn banded_reader_rejects_flat_streams_and_vice_versa() {
        let m = CsrMatrix::identity(8);
        let gust = Gust::new(GustConfig::new(4));
        let flat = gust.schedule(&m);
        let mut flat_buf = Vec::new();
        write_schedule(&flat, &mut flat_buf).expect("write");
        assert!(read_banded_schedule(flat_buf.as_slice()).is_err());

        let banded = gust.schedule_banded(&m);
        let mut banded_buf = Vec::new();
        write_banded_schedule(&banded, &mut banded_buf).expect("write");
        assert!(read_schedule(banded_buf.as_slice()).is_err());
    }

    #[test]
    fn banded_reader_rejects_out_of_band_columns() {
        use crate::schedule::{banded::ColumnBands, Scheduler};
        let m = CsrMatrix::from(&gen::uniform(16, 16, 80, 3));
        let schedule = Scheduler::new(GustConfig::new(4))
            .schedule_banded_with(&m, ColumnBands::with_count(16, 2));
        let mut buf = Vec::new();
        write_banded_schedule(&schedule, &mut buf).expect("write");
        // Header: magic 4 + version 4 + length 4 + rows 8 + cols 8 +
        // band count 8 + 3 × u32 boundaries + 16 × u32 row_perm + window
        // count 8 = 120 bytes, then the first window (colors 4 + vizing 4
        // + stalls 8), then the first cell.
        let first_cell = 120 + 16;
        let occupied = buf[first_cell..]
            .iter()
            .position(|&b| b == 1)
            .expect("an occupied cell")
            + first_cell;
        // Corrupt the cell's column to sit in the wrong band's range: the
        // flat validation (col < cols) passes, the band check must not.
        let col_at = occupied + 1 + 4 + 4;
        let col = u32::from_le_bytes(buf[col_at..col_at + 4].try_into().unwrap());
        let wrong = if col < 8 { col + 8 } else { col - 8 };
        buf[col_at..col_at + 4].copy_from_slice(&wrong.to_le_bytes());
        let err = read_banded_schedule(buf.as_slice()).unwrap_err();
        assert!(
            err.to_string().contains("outside"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn tiled_schedules_round_trip_exactly() {
        use crate::schedule::{banded::ColumnBands, Scheduler};
        let m = CsrMatrix::from(&gen::power_law(60, 70, 500, 1.9, 33));
        for (tiles, bands) in [(1usize, 1usize), (1, 3), (3, 2), (5, 7)] {
            let schedule = Scheduler::new(GustConfig::new(8)).schedule_tiled_with(
                &m,
                tiles,
                ColumnBands::with_count(70, bands),
            );
            let mut buf = Vec::new();
            write_tiled_schedule(&schedule, &mut buf).expect("write to vec");
            let back = read_tiled_schedule(buf.as_slice()).expect("read own output");
            assert_eq!(back, schedule, "{tiles} tiles × {bands} bands");
            // And the round-tripped schedule executes identically.
            let gust = Gust::new(GustConfig::new(8));
            let x: Vec<f32> = (0..70).map(|i| (i % 5) as f32 - 2.0).collect();
            assert_eq!(
                gust.execute_tiled(&back, &x),
                gust.execute_tiled(&schedule, &x)
            );
        }
    }

    #[test]
    fn tiled_reader_rejects_other_containers_and_truncation() {
        let m = CsrMatrix::from(&gen::uniform(12, 12, 50, 5));
        let gust = Gust::new(GustConfig::new(4));
        // A banded stream is not a tiled stream and vice versa.
        let banded = gust.schedule_banded(&m);
        let mut banded_buf = Vec::new();
        write_banded_schedule(&banded, &mut banded_buf).expect("write");
        assert!(read_tiled_schedule(banded_buf.as_slice()).is_err());

        let tiled = gust.schedule_tiled(&m);
        let mut buf = Vec::new();
        write_tiled_schedule(&tiled, &mut buf).expect("write");
        assert!(read_banded_schedule(buf.as_slice()).is_err());
        assert!(read_schedule(buf.as_slice()).is_err());
        for cut in [3usize, 20, buf.len() / 2, buf.len() - 1] {
            assert!(
                read_tiled_schedule(&buf[..cut]).is_err(),
                "truncation at {cut} must fail"
            );
        }
    }

    #[test]
    fn tiled_reader_rejects_bad_row_boundaries() {
        use crate::schedule::{banded::ColumnBands, Scheduler};
        let m = CsrMatrix::from(&gen::uniform(16, 16, 80, 3));
        let schedule = Scheduler::new(GustConfig::new(4)).schedule_tiled_with(
            &m,
            2,
            ColumnBands::with_count(16, 2),
        );
        let mut buf = Vec::new();
        write_tiled_schedule(&schedule, &mut buf).expect("write");
        // Header: magic 4 + version 4 + length 4 + rows 8 + cols 8 +
        // tile count 8 = 36 bytes, then 3 × u32 row boundaries.
        let starts_at = 36;
        buf[starts_at + 4..starts_at + 8].copy_from_slice(&99u32.to_le_bytes());
        let err = read_tiled_schedule(buf.as_slice()).unwrap_err();
        assert!(
            err.to_string().contains("ascend"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn banded_round_trip_handles_truncation() {
        let m = CsrMatrix::from(&gen::uniform(12, 12, 50, 5));
        let schedule = Gust::new(GustConfig::new(4)).schedule_banded(&m);
        let mut buf = Vec::new();
        write_banded_schedule(&schedule, &mut buf).expect("write");
        for cut in [3usize, 20, buf.len() / 2, buf.len() - 1] {
            assert!(
                read_banded_schedule(&buf[..cut]).is_err(),
                "truncation at {cut} must fail"
            );
        }
    }
}
