//! Binary serialization of the scheduled format — the byte stream the
//! Buffer Filler consumes from off-chip memory (§3.3 "Streaming the
//! Inputs").
//!
//! Every container shares one corruption-safe envelope (little-endian):
//!
//! ```text
//! magic | version u32 | payload_len u64 | payload | crc32 u32
//! ```
//!
//! The trailer CRC32 covers exactly the payload, so a truncated copy or
//! a bit flip on disk surfaces as [`ReadScheduleError::Corrupt`] before
//! any structural parsing happens; the structural validation below then
//! only ever sees payloads whose bytes are intact.
//!
//! The flat (`"GUST"`) payload:
//!
//! ```text
//! length u32 | rows u64 | cols u64
//! | row_perm: rows × u32
//! | window count u64
//! | per window: colors u32, vizing u32, stalls u64,
//!   then colors × l dense cells — each cell:
//!     occupancy u8 (0 = empty), then value f32, row_mod u32, col u32
//! ```
//!
//! The dense per-color cell grid is deliberate: it is the paper's actual
//! `M_sch`/`Row_sch`/`Col_sch` stream (empty cells included — the
//! emptiness *is* the utilization loss), so the byte length of a serialized
//! schedule matches [`ScheduledMatrix::dense_stream_bytes`] up to the
//! per-cell bookkeeping this container format adds.

// Production loaders must surface failures as typed errors, never
// `unwrap` panics: this module is part of the fault-tolerant loading
// path (see the README's Robustness section).
#![deny(clippy::unwrap_used)]

use super::banded::{BandedSchedule, BandedWindow, ColumnBands};
use super::scheduled::{ScheduledMatrix, WindowSchedule};
use super::tiled::TiledSchedule;
use crate::verify::{self, AuditReport, VerifiedSchedule};
use gust_sparse::checksum::crc32;
use gust_sparse::faults;
use std::io::{self, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"GUST";
/// Banded-schedule container magic: the band partition and per-window
/// band offsets wrap the same per-window cell grid as the flat format.
const BANDED_MAGIC: &[u8; 4] = b"GUSB";
/// Tiled-schedule container magic: row-tile boundaries wrapping one
/// banded-schedule body (band partition + per-window cell grids + band
/// offsets) per tile.
const TILED_MAGIC: &[u8; 4] = b"GUTL";
/// Container version. v2 wrapped the v1 body in the length-prefixed,
/// CRC32-trailed envelope above; v1 streams are rejected (rebuild the
/// schedule once to migrate).
const VERSION: u32 = 2;

/// Errors from reading a serialized schedule.
#[derive(Debug)]
#[non_exhaustive]
pub enum ReadScheduleError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Not a schedule stream, or an unsupported version.
    Format(String),
    /// The stream was a schedule container once and has been damaged:
    /// truncated payload or checksum mismatch. Callers may quarantine
    /// the file and rebuild the schedule (see [`read_schedule_cached`]).
    Corrupt(String),
    /// The bytes are intact (checksum valid) and structurally parseable,
    /// but the schedule they encode violates the safety contract the
    /// unsafe kernels rely on — a forged or wrongly-generated stream.
    /// Treated exactly like [`Self::Corrupt`] by the cached loaders and
    /// the serving registry: quarantined and rebuilt, never executed.
    Audit(Box<AuditReport>),
}

impl ReadScheduleError {
    /// Wraps audit violations with the tile index they were found in
    /// (window indices inside a tile are tile-local).
    fn in_tile(self, tile: usize) -> Self {
        match self {
            Self::Audit(report) => Self::Audit(Box::new(report.in_tile(tile))),
            other => other,
        }
    }
}

impl std::fmt::Display for ReadScheduleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "io error: {e}"),
            Self::Format(m) => write!(f, "format error: {m}"),
            Self::Corrupt(m) => write!(f, "corrupt schedule: {m}"),
            Self::Audit(report) => write!(f, "schedule failed the safety audit: {report}"),
        }
    }
}

impl std::error::Error for ReadScheduleError {}

impl From<io::Error> for ReadScheduleError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

/// Writes the container envelope around an already-serialized payload.
fn write_container<W: Write>(magic: &[u8; 4], payload: &[u8], writer: &mut W) -> io::Result<()> {
    faults::check_io(faults::sites::SCHEDULE_WRITE)?;
    writer.write_all(magic)?;
    writer.write_all(&VERSION.to_le_bytes())?;
    writer.write_all(&(payload.len() as u64).to_le_bytes())?;
    writer.write_all(payload)?;
    writer.write_all(&crc32(payload).to_le_bytes())?;
    Ok(())
}

/// Reads and verifies the container envelope, returning the intact
/// payload bytes. `magic_label` names the container in the bad-magic
/// message.
fn read_container<R: Read>(
    magic: &[u8; 4],
    magic_label: &str,
    mut reader: R,
) -> Result<Vec<u8>, ReadScheduleError> {
    faults::check_io(faults::sites::SCHEDULE_READ)?;
    let eof_corrupt = |what: &str, e: io::Error| -> ReadScheduleError {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            ReadScheduleError::Corrupt(format!("truncated {what}"))
        } else {
            ReadScheduleError::Io(e)
        }
    };
    let mut got = [0u8; 4];
    reader
        .read_exact(&mut got)
        .map_err(|e| eof_corrupt("container magic", e))?;
    if &got != magic {
        return Err(ReadScheduleError::Format(magic_label.to_string()));
    }
    let mut word = [0u8; 4];
    reader
        .read_exact(&mut word)
        .map_err(|e| eof_corrupt("container version", e))?;
    let version = u32::from_le_bytes(word);
    if version != VERSION {
        return Err(ReadScheduleError::Format(format!(
            "unsupported version {version}"
        )));
    }
    let mut qword = [0u8; 8];
    reader
        .read_exact(&mut qword)
        .map_err(|e| eof_corrupt("payload length", e))?;
    let payload_len = u64::from_le_bytes(qword);
    // Read the payload in bounded chunks: a forged length fails at the
    // stream's real end instead of one giant up-front allocation.
    const CHUNK: u64 = 16 << 20;
    let mut payload = Vec::new();
    let mut remaining = payload_len;
    while remaining > 0 {
        let take = usize::try_from(remaining.min(CHUNK))
            .map_err(|_| ReadScheduleError::Corrupt("payload exceeds address space".into()))?;
        let start = payload.len();
        payload.resize(start + take, 0u8);
        reader
            .read_exact(&mut payload[start..])
            .map_err(|e| eof_corrupt("payload", e))?;
        remaining -= take as u64;
    }
    let mut trailer = [0u8; 4];
    reader
        .read_exact(&mut trailer)
        .map_err(|e| eof_corrupt("checksum trailer", e))?;
    let stored = u32::from_le_bytes(trailer);
    let computed = crc32(&payload);
    if stored != computed {
        return Err(ReadScheduleError::Corrupt(format!(
            "payload checksum mismatch (stored {stored:#010x}, computed {computed:#010x})"
        )));
    }
    Ok(payload)
}

/// Writes `schedule` to `writer` in the stream format above.
///
/// Accepts any [`Write`]r by value; pass `&mut writer` to keep ownership.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_schedule<W: Write>(schedule: &ScheduledMatrix, mut writer: W) -> io::Result<()> {
    let mut payload = Vec::new();
    payload.write_all(&(schedule.length() as u32).to_le_bytes())?;
    payload.write_all(&(schedule.rows() as u64).to_le_bytes())?;
    payload.write_all(&(schedule.cols() as u64).to_le_bytes())?;
    for &orig in schedule.row_perm() {
        payload.write_all(&orig.to_le_bytes())?;
    }
    payload.write_all(&(schedule.windows().len() as u64).to_le_bytes())?;
    let l = schedule.length();
    for window in schedule.windows() {
        write_window(window, l, &mut payload)?;
    }
    write_container(MAGIC, &payload, &mut writer)
}

/// Writes one window's header and dense per-color cell grid (the shared
/// payload of the flat and banded containers).
fn write_window<W: Write>(window: &WindowSchedule, l: usize, writer: &mut W) -> io::Result<()> {
    writer.write_all(&window.colors().to_le_bytes())?;
    writer.write_all(&window.vizing_bound().to_le_bytes())?;
    writer.write_all(&window.stalls().to_le_bytes())?;
    // Dense per-color grid, lane-major within a color. The SoA slots of
    // one color are already lane-sorted, so a merge against `0..l`
    // produces the dense cells without any scratch grid.
    for c in 0..window.colors() {
        let mut slots = window.iter_color(c).peekable();
        for lane in 0..l as u32 {
            match slots.peek() {
                Some(slot) if slot.lane == lane => {
                    writer.write_all(&[1u8])?;
                    writer.write_all(&slot.value.to_le_bytes())?;
                    writer.write_all(&slot.row_mod.to_le_bytes())?;
                    writer.write_all(&slot.col.to_le_bytes())?;
                    slots.next();
                }
                _ => writer.write_all(&[0u8])?,
            }
        }
        // A slot whose lane is outside 0..l can never merge; dropping
        // it silently would serialize a wrong schedule.
        assert!(
            slots.peek().is_none(),
            "slot lane out of range for schedule length {l}"
        );
    }
    Ok(())
}

/// Writes `schedule` — a cache-blocked banded schedule — to `writer`.
///
/// Payload layout (inside the checksummed envelope, [`BANDED_MAGIC`]):
///
/// ```text
/// length u32 | rows u64 | cols u64
/// | band count u64 | band_starts: (bands + 1) × u32
/// | row_perm: rows × u32
/// | window count u64
/// | per window: the flat per-window block, then (bands + 1) × u32 offsets
/// ```
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_banded_schedule<W: Write>(schedule: &BandedSchedule, mut writer: W) -> io::Result<()> {
    let mut payload = Vec::new();
    payload.write_all(&(schedule.length() as u32).to_le_bytes())?;
    payload.write_all(&(schedule.rows() as u64).to_le_bytes())?;
    payload.write_all(&(schedule.cols() as u64).to_le_bytes())?;
    write_banded_body(schedule, &mut payload)?;
    write_container(BANDED_MAGIC, &payload, &mut writer)
}

/// Writes the banded payload that follows the shape header: band count,
/// band boundaries, row permutation, window count, then each window's
/// cell grid plus its band slot offsets. Shared by the `GUSB` container
/// and each tile of the `GUTL` container.
fn write_banded_body<W: Write>(schedule: &BandedSchedule, writer: &mut W) -> io::Result<()> {
    writer.write_all(&(schedule.bands().count() as u64).to_le_bytes())?;
    for &start in schedule.bands().starts() {
        writer.write_all(&start.to_le_bytes())?;
    }
    for &orig in schedule.row_perm() {
        writer.write_all(&orig.to_le_bytes())?;
    }
    writer.write_all(&(schedule.windows().len() as u64).to_le_bytes())?;
    let l = schedule.length();
    for window in schedule.windows() {
        write_window(window.window(), l, writer)?;
        for &ptr in window.band_slot_ptr() {
            writer.write_all(&ptr.to_le_bytes())?;
        }
    }
    Ok(())
}

/// Writes `schedule` — a 2D row×column tiled schedule — to `writer`.
///
/// Payload layout (inside the checksummed envelope, [`TILED_MAGIC`]):
///
/// ```text
/// length u32 | rows u64 | cols u64
/// | tile count u64 | row_starts: (tiles + 1) × u32
/// | per tile: band count u64, band_starts, row_perm (tile rows × u32),
///   window count u64, windows (cell grid + band offsets)
/// ```
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_tiled_schedule<W: Write>(schedule: &TiledSchedule, mut writer: W) -> io::Result<()> {
    let mut payload = Vec::new();
    payload.write_all(&(schedule.length() as u32).to_le_bytes())?;
    payload.write_all(&(schedule.rows() as u64).to_le_bytes())?;
    payload.write_all(&(schedule.cols() as u64).to_le_bytes())?;
    payload.write_all(&(schedule.tile_count() as u64).to_le_bytes())?;
    for &start in schedule.row_starts() {
        payload.write_all(&start.to_le_bytes())?;
    }
    for tile in schedule.tiles() {
        write_banded_body(tile, &mut payload)?;
    }
    write_container(TILED_MAGIC, &payload, &mut writer)
}

/// Reads a schedule previously written with [`write_schedule`].
///
/// # Errors
///
/// [`ReadScheduleError::Format`] on a bad magic/version or inconsistent
/// structure, [`ReadScheduleError::Corrupt`] on a truncated or
/// bit-damaged stream (checksum mismatch), [`ReadScheduleError::Io`] on
/// reader failure.
pub fn read_schedule<R: Read>(reader: R) -> Result<ScheduledMatrix, ReadScheduleError> {
    let payload = read_container(MAGIC, "bad magic", reader)?;
    let mut reader = payload.as_slice();
    let length = read_u32(&mut reader)? as usize;
    if length == 0 {
        return Err(ReadScheduleError::Format("zero length".into()));
    }
    let rows = read_u64(&mut reader)? as usize;
    let cols = read_u64(&mut reader)? as usize;
    let row_perm = read_row_perm(&mut reader, rows)?;
    let window_count = read_u64(&mut reader)? as usize;
    if window_count != rows.div_ceil(length) {
        return Err(ReadScheduleError::Format(format!(
            "window count {window_count} inconsistent with {rows} rows at length {length}"
        )));
    }
    let mut windows = Vec::with_capacity(window_count);
    let mut scratch = verify::Scratch::new(length);
    for w in 0..window_count {
        let window_rows = (rows - (w * length).min(rows)).min(length);
        windows.push(read_window(
            &mut reader,
            length,
            cols,
            w,
            window_rows,
            &mut scratch,
        )?);
    }
    if !reader.is_empty() {
        return Err(ReadScheduleError::Format(format!(
            "{} trailing payload bytes",
            reader.len()
        )));
    }
    Ok(ScheduledMatrix::from_parts(
        length, rows, cols, row_perm, windows,
    ))
}

/// Reads a row permutation, auditing that it is a true permutation of
/// `0..rows` (bounds *and* duplicate-free — a duplicate would scatter
/// two scheduled positions into one output row concurrently) so a forged
/// stream surfaces as an audit rejection rather than a construction
/// panic or a data race.
fn read_row_perm<R: Read>(reader: &mut R, rows: usize) -> Result<Vec<u32>, ReadScheduleError> {
    let mut row_perm = Vec::with_capacity(rows.min(1 << 20));
    for _ in 0..rows {
        row_perm.push(read_u32(reader)?);
    }
    let mut violations = Vec::new();
    verify::audit_row_perm(&row_perm, rows, &mut violations);
    if !violations.is_empty() {
        return Err(ReadScheduleError::Audit(Box::new(
            AuditReport::from_violations(violations),
        )));
    }
    Ok(row_perm)
}

/// Reads one window block (header + dense cell grid), then audits the
/// raw SoA arrays against the full safety contract (bounds, ragged-row
/// adder limit, intra-color write-disjointness) **before** any
/// constructor runs. Constructors only `debug_assert` these invariants,
/// so the audit here is what keeps a checksum-valid forged stream out of
/// the unsafe SIMD kernels in release builds.
fn read_window<R: Read>(
    reader: &mut R,
    length: usize,
    cols: usize,
    window_index: usize,
    window_rows: usize,
    scratch: &mut verify::Scratch,
) -> Result<WindowSchedule, ReadScheduleError> {
    let colors = read_u32(reader)?;
    let vizing = read_u32(reader)?;
    let stalls = read_u64(reader)?;
    // The stream stores each color's cells in lane order, which is
    // exactly the structure-of-arrays slot order — fill the four
    // parallel arrays directly.
    let mut lanes: Vec<u32> = Vec::new();
    let mut row_mods: Vec<u32> = Vec::new();
    let mut cols_arr: Vec<u32> = Vec::new();
    let mut values: Vec<f32> = Vec::new();
    // Cap the pre-allocation: `colors` is an untrusted header field, and
    // a corrupt stream should fail on its next read, not on a giant
    // up-front reservation.
    let mut color_ptr: Vec<u32> = Vec::with_capacity((colors as usize).min(1 << 20) + 1);
    color_ptr.push(0);
    for _ in 0..colors {
        for lane in 0..length {
            let mut occ = [0u8; 1];
            reader.read_exact(&mut occ)?;
            match occ[0] {
                0 => {}
                1 => {
                    let value = f32::from_le_bytes(read_array(reader)?);
                    let row_mod = read_u32(reader)?;
                    let col = read_u32(reader)?;
                    lanes.push(lane as u32);
                    row_mods.push(row_mod);
                    cols_arr.push(col);
                    values.push(value);
                }
                other => {
                    return Err(ReadScheduleError::Format(format!(
                        "bad occupancy byte {other}"
                    )))
                }
            }
        }
        color_ptr.push(lanes.len() as u32);
    }
    let mut violations = Vec::new();
    verify::audit_window_soa(
        window_index,
        colors,
        &color_ptr,
        &lanes,
        &row_mods,
        &cols_arr,
        length,
        window_rows,
        cols,
        scratch,
        &mut violations,
    );
    if !violations.is_empty() {
        return Err(ReadScheduleError::Audit(Box::new(
            AuditReport::from_violations(violations),
        )));
    }
    Ok(WindowSchedule::from_soa(
        colors, vizing, stalls, color_ptr, lanes, row_mods, cols_arr, values,
    ))
}

/// Reads a banded schedule previously written with
/// [`write_banded_schedule`].
///
/// # Errors
///
/// [`ReadScheduleError::Format`] on a bad magic/version, an inconsistent
/// band partition, or a slot whose column falls outside its band;
/// [`ReadScheduleError::Corrupt`] on a truncated or bit-damaged stream;
/// [`ReadScheduleError::Io`] on reader failure.
pub fn read_banded_schedule<R: Read>(reader: R) -> Result<BandedSchedule, ReadScheduleError> {
    let payload = read_container(BANDED_MAGIC, "bad banded magic", reader)?;
    let mut reader = payload.as_slice();
    let length = read_u32(&mut reader)? as usize;
    if length == 0 {
        return Err(ReadScheduleError::Format("zero length".into()));
    }
    let rows = read_u64(&mut reader)? as usize;
    let cols = read_u64(&mut reader)? as usize;
    let schedule = read_banded_body(&mut reader, length, rows, cols)?;
    if !reader.is_empty() {
        return Err(ReadScheduleError::Format(format!(
            "{} trailing payload bytes",
            reader.len()
        )));
    }
    Ok(schedule)
}

/// Reads the banded payload that follows the shape header (see
/// [`write_banded_body`]), validating the band partition and every
/// window's band offsets. Shared by the `GUSB` container and each tile
/// of the `GUTL` container.
fn read_banded_body<R: Read>(
    reader: &mut R,
    length: usize,
    rows: usize,
    cols: usize,
) -> Result<BandedSchedule, ReadScheduleError> {
    // Band boundaries are u32, so a stream claiming more columns than
    // u32 can address is corrupt by construction — reject it before the
    // `cols as u32` comparison below could truncate.
    if u32::try_from(cols).is_err() {
        return Err(ReadScheduleError::Format(format!(
            "column count {cols} exceeds the u32 band-boundary range"
        )));
    }
    let band_count = read_u64(reader)? as usize;
    if band_count == 0 {
        return Err(ReadScheduleError::Format("zero bands".into()));
    }
    // Bands partition u32 column indices, so a count past the column
    // range is corrupt by construction — reject before trusting it for
    // an allocation (a truncated stream then errors on the next read).
    if band_count > cols.max(1) {
        return Err(ReadScheduleError::Format(format!(
            "band count {band_count} exceeds {cols} columns"
        )));
    }
    let mut band_starts = Vec::with_capacity(band_count + 1);
    for _ in 0..=band_count {
        band_starts.push(read_u32(reader)?);
    }
    if band_starts[0] != 0
        || band_starts.last().copied() != Some(cols as u32)
        || band_starts.windows(2).any(|w| w[0] > w[1])
    {
        return Err(ReadScheduleError::Format(format!(
            "band boundaries must ascend from 0 to {cols}"
        )));
    }
    let bands = ColumnBands::from_starts(band_starts);
    let row_perm = read_row_perm(reader, rows)?;
    let window_count = read_u64(reader)? as usize;
    if window_count != rows.div_ceil(length) {
        return Err(ReadScheduleError::Format(format!(
            "window count {window_count} inconsistent with {rows} rows at length {length}"
        )));
    }
    let mut windows = Vec::with_capacity(window_count);
    let mut scratch = verify::Scratch::new(length);
    for w in 0..window_count {
        let window_rows = (rows - (w * length).min(rows)).min(length);
        let window = read_window(reader, length, cols, w, window_rows, &mut scratch)?;
        let mut band_slot_ptr = Vec::with_capacity(bands.count() + 1);
        for _ in 0..=bands.count() {
            band_slot_ptr.push(read_u32(reader)?);
        }
        // Audit the band slot pointers and per-band column containment on
        // the raw arrays before `from_merged` derives the band-local
        // staging offsets from them.
        let mut violations = Vec::new();
        verify::audit_banded_window(
            w,
            &band_slot_ptr,
            bands.starts(),
            window.cols(),
            &mut violations,
        );
        if !violations.is_empty() {
            return Err(ReadScheduleError::Audit(Box::new(
                AuditReport::from_violations(violations),
            )));
        }
        let banded = BandedWindow::from_merged(window, band_slot_ptr, bands.starts())
            .map_err(ReadScheduleError::Format)?;
        windows.push(banded);
    }
    Ok(BandedSchedule::from_parts(
        length, rows, cols, row_perm, bands, windows,
    ))
}

/// Reads a tiled schedule previously written with
/// [`write_tiled_schedule`].
///
/// # Errors
///
/// [`ReadScheduleError::Format`] on a bad magic/version, an inconsistent
/// row-tile partition, or any per-tile banded-body violation;
/// [`ReadScheduleError::Corrupt`] on a truncated or bit-damaged stream;
/// [`ReadScheduleError::Io`] on reader failure.
pub fn read_tiled_schedule<R: Read>(reader: R) -> Result<TiledSchedule, ReadScheduleError> {
    let payload = read_container(TILED_MAGIC, "bad tiled magic", reader)?;
    let mut reader = payload.as_slice();
    let length = read_u32(&mut reader)? as usize;
    if length == 0 {
        return Err(ReadScheduleError::Format("zero length".into()));
    }
    let rows = read_u64(&mut reader)? as usize;
    let cols = read_u64(&mut reader)? as usize;
    // Row-tile boundaries are u32; a row count past that range is
    // corrupt by construction.
    if u32::try_from(rows).is_err() {
        return Err(ReadScheduleError::Format(format!(
            "row count {rows} exceeds the u32 tile-boundary range"
        )));
    }
    let tile_count = read_u64(&mut reader)? as usize;
    if tile_count == 0 {
        return Err(ReadScheduleError::Format("zero tiles".into()));
    }
    // Tiles partition the rows, so a count past the row range is corrupt
    // by construction — reject before trusting it for an allocation.
    if tile_count > rows.max(1) {
        return Err(ReadScheduleError::Format(format!(
            "tile count {tile_count} exceeds {rows} rows"
        )));
    }
    let mut row_starts = Vec::with_capacity(tile_count + 1);
    for _ in 0..=tile_count {
        row_starts.push(read_u32(&mut reader)?);
    }
    if row_starts[0] != 0
        || row_starts.last().copied() != Some(rows as u32)
        || row_starts.windows(2).any(|w| w[0] > w[1])
    {
        return Err(ReadScheduleError::Format(format!(
            "row-tile boundaries must ascend from 0 to {rows}"
        )));
    }
    let mut tiles = Vec::with_capacity(tile_count);
    for t in 0..tile_count {
        let tile_rows = (row_starts[t + 1] - row_starts[t]) as usize;
        tiles.push(
            read_banded_body(&mut reader, length, tile_rows, cols).map_err(|e| e.in_tile(t))?,
        );
    }
    if !reader.is_empty() {
        return Err(ReadScheduleError::Format(format!(
            "{} trailing payload bytes",
            reader.len()
        )));
    }
    Ok(TiledSchedule::from_parts(
        length, rows, cols, row_starts, tiles,
    ))
}

/// Reads a flat schedule from `path`.
///
/// # Errors
///
/// As [`read_schedule`]; a file that cannot be opened is
/// [`ReadScheduleError::Io`].
pub fn read_schedule_file(path: impl AsRef<Path>) -> Result<ScheduledMatrix, ReadScheduleError> {
    read_schedule(io::BufReader::new(std::fs::File::open(path)?))
}

/// Writes `path` atomically: bytes land in a uniquely named temporary
/// sibling (`<path>.<pid>.<seq>.tmp` — pid plus a process-wide counter,
/// so concurrent writers of the same destination never share a temp
/// file) and are renamed over the destination only once fully flushed,
/// so an interrupted write or a racing writer never leaves a partial
/// container behind. On error the temporary is removed and `path` is
/// untouched.
fn write_file_atomic(
    path: &Path,
    write: impl FnOnce(&mut io::BufWriter<std::fs::File>) -> io::Result<()>,
) -> io::Result<()> {
    let tmp = {
        use std::sync::atomic::{AtomicU64, Ordering};
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let seq = SEQ.fetch_add(1, Ordering::Relaxed);
        let mut os = path.as_os_str().to_os_string();
        os.push(format!(".{}.{}.tmp", std::process::id(), seq));
        std::path::PathBuf::from(os)
    };
    let result = (|| {
        let mut writer = io::BufWriter::new(std::fs::File::create(&tmp)?);
        write(&mut writer)?;
        writer.flush()?;
        drop(writer);
        std::fs::rename(&tmp, path)
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

/// Writes a flat schedule to `path` (atomically — see
/// [`write_schedule`] for the container format).
///
/// # Errors
///
/// Propagates I/O errors; on error `path` is untouched.
pub fn write_schedule_file(schedule: &ScheduledMatrix, path: impl AsRef<Path>) -> io::Result<()> {
    write_file_atomic(path.as_ref(), |w| write_schedule(schedule, w))
}

/// Reads a banded schedule from `path` (see [`read_schedule_file`]).
///
/// # Errors
///
/// As [`read_banded_schedule`].
pub fn read_banded_schedule_file(
    path: impl AsRef<Path>,
) -> Result<BandedSchedule, ReadScheduleError> {
    read_banded_schedule(io::BufReader::new(std::fs::File::open(path)?))
}

/// Writes a banded schedule to `path` (atomically — see
/// [`write_schedule_file`]).
///
/// # Errors
///
/// Propagates I/O errors; on error `path` is untouched.
pub fn write_banded_schedule_file(
    schedule: &BandedSchedule,
    path: impl AsRef<Path>,
) -> io::Result<()> {
    write_file_atomic(path.as_ref(), |w| write_banded_schedule(schedule, w))
}

/// Reads a tiled schedule from `path` (see [`read_schedule_file`]).
///
/// # Errors
///
/// As [`read_tiled_schedule`].
pub fn read_tiled_schedule_file(
    path: impl AsRef<Path>,
) -> Result<TiledSchedule, ReadScheduleError> {
    read_tiled_schedule(io::BufReader::new(std::fs::File::open(path)?))
}

/// Writes a tiled schedule to `path` (atomically — see
/// [`write_schedule_file`]).
///
/// # Errors
///
/// Propagates I/O errors; on error `path` is untouched.
pub fn write_tiled_schedule_file(
    schedule: &TiledSchedule,
    path: impl AsRef<Path>,
) -> io::Result<()> {
    write_file_atomic(path.as_ref(), |w| write_tiled_schedule(schedule, w))
}

/// Reads a flat schedule from `path` and wraps it as a
/// [`VerifiedSchedule`] witness.
///
/// The wrap is free: [`read_schedule`] already audits the raw arrays of
/// every window (and the row permutation) unconditionally — release
/// builds included — before any constructor runs, so every schedule a
/// reader returns has passed the full safety audit. This is the
/// once-per-admission point where disk bytes earn the right to flow
/// into the unsafe kernels.
///
/// # Errors
///
/// As [`read_schedule_file`]; a contract violation in an intact stream
/// is [`ReadScheduleError::Audit`].
pub fn read_schedule_file_verified(
    path: impl AsRef<Path>,
) -> Result<VerifiedSchedule<ScheduledMatrix>, ReadScheduleError> {
    read_schedule_file(path).map(VerifiedSchedule::witness)
}

/// As [`read_schedule_file_verified`], for banded schedules.
///
/// # Errors
///
/// As [`read_banded_schedule_file`].
pub fn read_banded_schedule_file_verified(
    path: impl AsRef<Path>,
) -> Result<VerifiedSchedule<BandedSchedule>, ReadScheduleError> {
    read_banded_schedule_file(path).map(VerifiedSchedule::witness)
}

/// As [`read_schedule_file_verified`], for tiled schedules.
///
/// # Errors
///
/// As [`read_tiled_schedule_file`].
pub fn read_tiled_schedule_file_verified(
    path: impl AsRef<Path>,
) -> Result<VerifiedSchedule<TiledSchedule>, ReadScheduleError> {
    read_tiled_schedule_file(path).map(VerifiedSchedule::witness)
}

/// The shared load-or-rebuild policy behind the `*_cached` helpers:
/// serve `path` when it holds an intact container; quarantine it (rename
/// to `<path>.corrupt`) when it is damaged; in every failure case fall
/// back to `build` and best-effort rewrite the file. Scheduling again is
/// always correct — the cache only ever saves time, never changes
/// results — so no cache problem is allowed to surface as an error.
fn cached_schedule<T>(
    path: &Path,
    read: impl FnOnce(&Path) -> Result<T, ReadScheduleError>,
    write: impl FnOnce(&T, &Path) -> io::Result<()>,
    build: impl FnOnce() -> T,
) -> T {
    if path.exists() {
        match read(path) {
            Ok(schedule) => return schedule,
            // Damaged bytes and checksum-valid-but-forged contents take
            // the same quarantine path: keep the evidence, never execute.
            Err(err @ (ReadScheduleError::Corrupt(_) | ReadScheduleError::Audit(_))) => {
                match gust_sparse::io::quarantine_corrupt(path) {
                    Some(dest) => eprintln!(
                        "warning: quarantined corrupt schedule cache {} -> {} ({err})",
                        path.display(),
                        dest.display()
                    ),
                    None => eprintln!(
                        "warning: removed corrupt schedule cache {} ({err})",
                        path.display()
                    ),
                }
            }
            // Older version, foreign file, transient I/O failure: the
            // rebuild below overwrites it either way.
            Err(_) => {}
        }
    }
    let schedule = build();
    let _ = write(&schedule, path);
    schedule
}

/// Loads a flat schedule from `path`, rebuilding it with `build` when
/// the file is missing, outdated, or damaged. A damaged file is
/// quarantined as `<path>.corrupt` first; the rebuilt schedule is
/// written back (best-effort) so the next load is cheap again.
pub fn read_schedule_cached(
    path: impl AsRef<Path>,
    build: impl FnOnce() -> ScheduledMatrix,
) -> ScheduledMatrix {
    cached_schedule(
        path.as_ref(),
        |p| read_schedule_file(p),
        |s, p| write_schedule_file(s, p),
        build,
    )
}

/// As [`read_schedule_cached`], for banded schedules.
pub fn read_banded_schedule_cached(
    path: impl AsRef<Path>,
    build: impl FnOnce() -> BandedSchedule,
) -> BandedSchedule {
    cached_schedule(
        path.as_ref(),
        |p| read_banded_schedule_file(p),
        |s, p| write_banded_schedule_file(s, p),
        build,
    )
}

/// As [`read_schedule_cached`], for tiled schedules.
pub fn read_tiled_schedule_cached(
    path: impl AsRef<Path>,
    build: impl FnOnce() -> TiledSchedule,
) -> TiledSchedule {
    cached_schedule(
        path.as_ref(),
        |p| read_tiled_schedule_file(p),
        |s, p| write_tiled_schedule_file(s, p),
        build,
    )
}

fn read_array<R: Read, const N: usize>(reader: &mut R) -> io::Result<[u8; N]> {
    let mut buf = [0u8; N];
    reader.read_exact(&mut buf)?;
    Ok(buf)
}

fn read_u32<R: Read>(reader: &mut R) -> io::Result<u32> {
    Ok(u32::from_le_bytes(read_array(reader)?))
}

fn read_u64<R: Read>(reader: &mut R) -> io::Result<u64> {
    Ok(u64::from_le_bytes(read_array(reader)?))
}

#[cfg(test)]
#[allow(clippy::unwrap_used)] // tests may unwrap; the gate is for load paths
mod tests {
    use super::*;
    use crate::config::{GustConfig, SchedulingPolicy};
    use crate::engine::Gust;
    use gust_sparse::prelude::*;

    /// Container envelope: magic 4 + version 4 + payload_len 8.
    const ENVELOPE: usize = 16;

    /// Recomputes the trailer CRC after a test deliberately edits
    /// payload bytes, so structural validation (not the checksum) is
    /// what the reader exercises.
    fn fix_crc(buf: &mut [u8]) {
        let end = buf.len() - 4;
        let crc = crc32(&buf[ENVELOPE..end]);
        buf[end..].copy_from_slice(&crc.to_le_bytes());
    }

    fn round_trip(schedule: &ScheduledMatrix) -> ScheduledMatrix {
        let mut buf = Vec::new();
        write_schedule(schedule, &mut buf).expect("write to vec");
        read_schedule(buf.as_slice()).expect("read own output")
    }

    #[test]
    fn round_trips_exactly() {
        let m = CsrMatrix::from(&gen::uniform(40, 50, 300, 3));
        let schedule = Gust::new(GustConfig::new(8)).schedule(&m);
        let back = round_trip(&schedule);
        assert_eq!(back, schedule);
    }

    #[test]
    fn round_trips_naive_schedules_with_stalls() {
        let m = CsrMatrix::from(&gen::uniform(32, 32, 400, 5));
        let schedule =
            Gust::new(GustConfig::new(8).with_policy(SchedulingPolicy::Naive)).schedule(&m);
        assert!(schedule.total_stalls() > 0);
        let back = round_trip(&schedule);
        assert_eq!(back.total_stalls(), schedule.total_stalls());
        assert_eq!(back, schedule);
    }

    #[test]
    fn deserialized_schedule_executes_identically() {
        let m = CsrMatrix::from(&gen::power_law(64, 64, 500, 1.9, 7));
        let gust = Gust::new(GustConfig::new(16));
        let schedule = gust.schedule(&m);
        let back = round_trip(&schedule);
        let x: Vec<f32> = (0..64).map(|i| (i % 7) as f32 - 3.0).collect();
        assert_eq!(gust.execute(&back, &x), gust.execute(&schedule, &x));
    }

    #[test]
    fn stream_length_tracks_dense_stream_size() {
        let m = CsrMatrix::from(&gen::uniform(64, 64, 400, 9));
        let schedule = Gust::new(GustConfig::new(16)).schedule(&m);
        let mut buf = Vec::new();
        write_schedule(&schedule, &mut buf).expect("write");
        // Cells dominate: colors × l × (1..13 bytes per cell); the payload
        // must be within the per-cell bounds around the dense-stream model.
        let cells = schedule.total_colors() * 16;
        assert!(buf.len() as u64 >= cells, "at least 1 byte per cell");
        assert!(
            (buf.len() as u64) < 13 * cells + 4096,
            "bounded by full cells + header"
        );
    }

    #[test]
    fn rejects_bad_magic_and_version() {
        let err = read_schedule(&b"NOPE"[..]).unwrap_err();
        assert!(err.to_string().contains("bad magic"));
        let mut buf = Vec::new();
        buf.extend_from_slice(b"GUST");
        buf.extend_from_slice(&99u32.to_le_bytes());
        let err = read_schedule(buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("unsupported version"));
    }

    #[test]
    fn rejects_truncation() {
        let m = CsrMatrix::identity(8);
        let schedule = Gust::new(GustConfig::new(4)).schedule(&m);
        let mut buf = Vec::new();
        write_schedule(&schedule, &mut buf).expect("write");
        for cut in [3usize, 10, buf.len() / 2, buf.len() - 1] {
            assert!(
                read_schedule(&buf[..cut]).is_err(),
                "truncation at {cut} must fail"
            );
        }
    }

    #[test]
    fn rejects_out_of_range_columns() {
        // Serialize a valid schedule, then corrupt the first occupied
        // cell's column index to point past the matrix.
        let m = CsrMatrix::identity(8);
        let schedule = Gust::new(GustConfig::new(4)).schedule(&m);
        let mut buf = Vec::new();
        write_schedule(&schedule, &mut buf).expect("write");
        // Payload layout: length 4 + rows 8 + cols 8 + row_perm 8×4 +
        // window count 8 + first window header (colors 4 + vizing 4 +
        // stalls 8) = 76 bytes past the envelope, then the first cell.
        // Lane 0 of the identity's first window is occupied.
        let occupied = ENVELOPE + 76;
        assert_eq!(buf[occupied], 1, "expected an occupied first cell");
        // Cell layout: occupancy u8, value f32, row_mod u32, col u32.
        let col_at = occupied + 1 + 4 + 4;
        buf[col_at..col_at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        fix_crc(&mut buf);
        let err = read_schedule(buf.as_slice()).unwrap_err();
        assert!(
            err.to_string().contains("out of range"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn round_trip_preserves_staging_index() {
        let m = CsrMatrix::from(&gen::power_law(64, 64, 500, 1.9, 7));
        let schedule = Gust::new(GustConfig::new(16)).schedule(&m);
        let back = round_trip(&schedule);
        for (a, b) in schedule.windows().iter().zip(back.windows()) {
            assert_eq!(a.gather_cols(), b.gather_cols());
            assert_eq!(a.local_cols(), b.local_cols());
        }
    }

    #[test]
    fn empty_matrix_schedule_round_trips() {
        let coo = CooMatrix::from_triplets(6, 6, vec![(0, 0, 1.0)]).unwrap();
        let m = CsrMatrix::from(&coo);
        let schedule = Gust::new(GustConfig::new(4)).schedule(&m);
        assert_eq!(round_trip(&schedule), schedule);
    }

    fn banded_round_trip(schedule: &BandedSchedule) -> BandedSchedule {
        let mut buf = Vec::new();
        write_banded_schedule(schedule, &mut buf).expect("write to vec");
        read_banded_schedule(buf.as_slice()).expect("read own output")
    }

    #[test]
    fn banded_schedules_round_trip_exactly() {
        use crate::schedule::{banded::ColumnBands, Scheduler};
        let m = CsrMatrix::from(&gen::power_law(60, 70, 500, 1.9, 21));
        for bands in [1usize, 2, 7] {
            let schedule = Scheduler::new(GustConfig::new(8))
                .schedule_banded_with(&m, ColumnBands::with_count(70, bands));
            let back = banded_round_trip(&schedule);
            assert_eq!(back, schedule, "{bands} bands");
            // And the round-tripped schedule executes identically.
            let gust = Gust::new(GustConfig::new(8));
            let x: Vec<f32> = (0..70).map(|i| (i % 5) as f32 - 2.0).collect();
            assert_eq!(
                gust.execute_banded(&back, &x),
                gust.execute_banded(&schedule, &x)
            );
        }
    }

    #[test]
    fn banded_reader_rejects_flat_streams_and_vice_versa() {
        let m = CsrMatrix::identity(8);
        let gust = Gust::new(GustConfig::new(4));
        let flat = gust.schedule(&m);
        let mut flat_buf = Vec::new();
        write_schedule(&flat, &mut flat_buf).expect("write");
        assert!(read_banded_schedule(flat_buf.as_slice()).is_err());

        let banded = gust.schedule_banded(&m);
        let mut banded_buf = Vec::new();
        write_banded_schedule(&banded, &mut banded_buf).expect("write");
        assert!(read_schedule(banded_buf.as_slice()).is_err());
    }

    #[test]
    fn banded_reader_rejects_out_of_band_columns() {
        use crate::schedule::{banded::ColumnBands, Scheduler};
        let m = CsrMatrix::from(&gen::uniform(16, 16, 80, 3));
        let schedule = Scheduler::new(GustConfig::new(4))
            .schedule_banded_with(&m, ColumnBands::with_count(16, 2));
        let mut buf = Vec::new();
        write_banded_schedule(&schedule, &mut buf).expect("write");
        // Payload: length 4 + rows 8 + cols 8 + band count 8 + 3 × u32
        // boundaries + 16 × u32 row_perm + window count 8 = 112 bytes
        // past the envelope, then the first window (colors 4 + vizing 4
        // + stalls 8), then the first cell.
        let first_cell = ENVELOPE + 112 + 16;
        let occupied = buf[first_cell..]
            .iter()
            .position(|&b| b == 1)
            .expect("an occupied cell")
            + first_cell;
        // Corrupt the cell's column to sit in the wrong band's range: the
        // flat validation (col < cols) passes, the band check must not.
        let col_at = occupied + 1 + 4 + 4;
        let col = u32::from_le_bytes(buf[col_at..col_at + 4].try_into().unwrap());
        let wrong = if col < 8 { col + 8 } else { col - 8 };
        buf[col_at..col_at + 4].copy_from_slice(&wrong.to_le_bytes());
        fix_crc(&mut buf);
        let err = read_banded_schedule(buf.as_slice()).unwrap_err();
        assert!(
            err.to_string().contains("outside"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn tiled_schedules_round_trip_exactly() {
        use crate::schedule::{banded::ColumnBands, Scheduler};
        let m = CsrMatrix::from(&gen::power_law(60, 70, 500, 1.9, 33));
        for (tiles, bands) in [(1usize, 1usize), (1, 3), (3, 2), (5, 7)] {
            let schedule = Scheduler::new(GustConfig::new(8)).schedule_tiled_with(
                &m,
                tiles,
                ColumnBands::with_count(70, bands),
            );
            let mut buf = Vec::new();
            write_tiled_schedule(&schedule, &mut buf).expect("write to vec");
            let back = read_tiled_schedule(buf.as_slice()).expect("read own output");
            assert_eq!(back, schedule, "{tiles} tiles × {bands} bands");
            // And the round-tripped schedule executes identically.
            let gust = Gust::new(GustConfig::new(8));
            let x: Vec<f32> = (0..70).map(|i| (i % 5) as f32 - 2.0).collect();
            assert_eq!(
                gust.execute_tiled(&back, &x),
                gust.execute_tiled(&schedule, &x)
            );
        }
    }

    #[test]
    fn tiled_reader_rejects_other_containers_and_truncation() {
        let m = CsrMatrix::from(&gen::uniform(12, 12, 50, 5));
        let gust = Gust::new(GustConfig::new(4));
        // A banded stream is not a tiled stream and vice versa.
        let banded = gust.schedule_banded(&m);
        let mut banded_buf = Vec::new();
        write_banded_schedule(&banded, &mut banded_buf).expect("write");
        assert!(read_tiled_schedule(banded_buf.as_slice()).is_err());

        let tiled = gust.schedule_tiled(&m);
        let mut buf = Vec::new();
        write_tiled_schedule(&tiled, &mut buf).expect("write");
        assert!(read_banded_schedule(buf.as_slice()).is_err());
        assert!(read_schedule(buf.as_slice()).is_err());
        for cut in [3usize, 20, buf.len() / 2, buf.len() - 1] {
            assert!(
                read_tiled_schedule(&buf[..cut]).is_err(),
                "truncation at {cut} must fail"
            );
        }
    }

    #[test]
    fn tiled_reader_rejects_bad_row_boundaries() {
        use crate::schedule::{banded::ColumnBands, Scheduler};
        let m = CsrMatrix::from(&gen::uniform(16, 16, 80, 3));
        let schedule = Scheduler::new(GustConfig::new(4)).schedule_tiled_with(
            &m,
            2,
            ColumnBands::with_count(16, 2),
        );
        let mut buf = Vec::new();
        write_tiled_schedule(&schedule, &mut buf).expect("write");
        // Payload: length 4 + rows 8 + cols 8 + tile count 8 = 28 bytes
        // past the envelope, then 3 × u32 row boundaries.
        let starts_at = ENVELOPE + 28;
        buf[starts_at + 4..starts_at + 8].copy_from_slice(&99u32.to_le_bytes());
        fix_crc(&mut buf);
        let err = read_tiled_schedule(buf.as_slice()).unwrap_err();
        assert!(
            err.to_string().contains("ascend"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn banded_round_trip_handles_truncation() {
        let m = CsrMatrix::from(&gen::uniform(12, 12, 50, 5));
        let schedule = Gust::new(GustConfig::new(4)).schedule_banded(&m);
        let mut buf = Vec::new();
        write_banded_schedule(&schedule, &mut buf).expect("write");
        for cut in [3usize, 20, buf.len() / 2, buf.len() - 1] {
            assert!(
                read_banded_schedule(&buf[..cut]).is_err(),
                "truncation at {cut} must fail"
            );
        }
    }

    #[test]
    fn every_single_byte_corruption_is_detected_in_all_containers() {
        let m = CsrMatrix::from(&gen::uniform(8, 8, 30, 3));
        let gust = Gust::new(GustConfig::new(4));
        let mut streams: Vec<(&str, Vec<u8>)> = Vec::new();
        let mut buf = Vec::new();
        write_schedule(&gust.schedule(&m), &mut buf).expect("write flat");
        streams.push(("flat", buf));
        let mut buf = Vec::new();
        write_banded_schedule(&gust.schedule_banded(&m), &mut buf).expect("write banded");
        streams.push(("banded", buf));
        let mut buf = Vec::new();
        write_tiled_schedule(&gust.schedule_tiled(&m), &mut buf).expect("write tiled");
        streams.push(("tiled", buf));

        for (kind, clean) in streams {
            let read_any = |bytes: &[u8]| -> Result<(), ReadScheduleError> {
                match kind {
                    "flat" => read_schedule(bytes).map(drop),
                    "banded" => read_banded_schedule(bytes).map(drop),
                    _ => read_tiled_schedule(bytes).map(drop),
                }
            };
            read_any(&clean).expect("clean stream must load");
            for byte in 0..clean.len() {
                let mut damaged = clean.clone();
                damaged[byte] ^= 0x10;
                let err = read_any(&damaged)
                    .expect_err(&format!("{kind}: byte {byte} corruption must not load"));
                // Past magic + version, damage must be classified as
                // Corrupt (the checksum or length prefix catches it
                // before structural parsing runs).
                if byte >= 8 {
                    assert!(
                        matches!(err, ReadScheduleError::Corrupt(_)),
                        "{kind}: byte {byte} expected Corrupt, got {err:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn version_one_streams_are_rejected_as_format() {
        let m = CsrMatrix::identity(6);
        let schedule = Gust::new(GustConfig::new(3)).schedule(&m);
        let mut buf = Vec::new();
        write_schedule(&schedule, &mut buf).expect("write");
        buf[4..8].copy_from_slice(&1u32.to_le_bytes());
        let err = read_schedule(buf.as_slice()).unwrap_err();
        assert!(
            matches!(&err, ReadScheduleError::Format(m) if m.contains("unsupported version 1")),
            "unexpected error: {err:?}"
        );
    }

    #[test]
    fn cached_loader_quarantines_corrupt_schedules_and_rebuilds() {
        let dir = std::env::temp_dir().join(format!(
            "gust-sched-cache-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.gusb");
        let m = CsrMatrix::from(&gen::uniform(12, 12, 50, 5));
        let gust = Gust::new(GustConfig::new(4));
        let expected = gust.schedule_banded(&m);

        // First call: cache miss, builds and writes.
        let first = read_banded_schedule_cached(&path, || gust.schedule_banded(&m));
        assert_eq!(first, expected);
        assert!(path.is_file(), "cache must be written on miss");

        // Second call: pure cache hit (build closure must not run).
        let second = read_banded_schedule_cached(&path, || panic!("cache hit must not rebuild"));
        assert_eq!(second, expected);

        // Damage one payload byte: the next load must quarantine and
        // rebuild transparently, with a correct result.
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x04;
        std::fs::write(&path, &bytes).unwrap();
        let third = read_banded_schedule_cached(&path, || gust.schedule_banded(&m));
        assert_eq!(third, expected, "corrupt cache must fall back to rebuild");
        let quarantined = dir.join("m.gusb.corrupt");
        assert!(quarantined.is_file(), "corrupt cache must be quarantined");
        assert_eq!(std::fs::read(&quarantined).unwrap(), bytes);
        // And the cache was rewritten healthy.
        assert_eq!(read_banded_schedule_file(&path).unwrap(), expected);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn cached_loader_round_trips_flat_and_tiled() {
        let dir = std::env::temp_dir().join(format!(
            "gust-sched-cache2-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let m = CsrMatrix::from(&gen::uniform(12, 12, 50, 5));
        let gust = Gust::new(GustConfig::new(4));

        let flat_path = dir.join("m.gust");
        let flat = read_schedule_cached(&flat_path, || gust.schedule(&m));
        assert_eq!(
            read_schedule_cached(&flat_path, || panic!("hit must not rebuild")),
            flat
        );

        let tiled_path = dir.join("m.gutl");
        let tiled = read_tiled_schedule_cached(&tiled_path, || gust.schedule_tiled(&m));
        assert_eq!(
            read_tiled_schedule_cached(&tiled_path, || panic!("hit must not rebuild")),
            tiled
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
