//! The naive collision-stall schedule (§3.3).
//!
//! Without edge coloring, the buffers are filled in natural order — each
//! multiplier lane receives its column segments front to back — and the
//! buffers advance in lockstep: all lanes present their position-`p` entry
//! in the same cycle. When any two entries of a position target the same
//! adder, the hardware "simply \[does\] not forward the values from the
//! buffers" (§3.3): the collision-free entries of the position go through
//! in the first cycle, and the colliding ones drain serially, one per
//! cycle, before the position pointer can advance.
//!
//! This is what makes the paper's motivating claim come out: on 16 384²
//! uniform matrices a position almost always contains a collision beyond
//! density ≈ 1/l, so naive GUST degenerates to ~1 element/cycle-ish rates
//! and falls behind even the dense-streaming 1D array past density ≈ 0.008
//! (reproduced by the `bound` bench's crossover sweep).
//!
//! The arbitration assigns every element an issue cycle, which *is* a
//! (wasteful) coloring: within a cycle all lanes are distinct by
//! construction and all adders are distinct by the stall rule. The result
//! therefore reuses [`WindowSchedule`](super::scheduled::WindowSchedule)
//! and runs on the same engine.

use super::scheduled::ScheduledSlot;
use super::windows::Window;

/// Outcome of arbitrating one window.
#[derive(Debug, Clone, PartialEq)]
pub struct ArbitratedWindow {
    /// Slots grouped per cycle (color).
    pub per_cycle: Vec<Vec<ScheduledSlot>>,
    /// Lane-cycles lost to collisions (lanes idle while a position drains).
    pub stalls: u64,
}

/// Simulates lockstep head-of-line arbitration for one window.
///
/// Lane queues hold the window's elements in column-segment order
/// (`(col, row)` within the window), the natural fill order of the
/// unscheduled format.
#[must_use]
pub fn arbitrate_window(window: &Window, l: usize) -> ArbitratedWindow {
    // Build lane queues in (col, row) order.
    let mut lanes: Vec<Vec<ScheduledSlot>> = vec![Vec::new(); l];
    for (row_local, edges) in window.per_row.iter().enumerate() {
        for e in edges {
            lanes[e.lane as usize].push(ScheduledSlot {
                lane: e.lane,
                row_mod: row_local as u32,
                col: e.col,
                value: e.value,
            });
        }
    }
    for q in &mut lanes {
        q.sort_unstable_by_key(|s| (s.col, s.row_mod));
    }
    let positions = lanes.iter().map(Vec::len).max().unwrap_or(0);
    let n_rows = window.per_row.len();

    let mut per_cycle: Vec<Vec<ScheduledSlot>> = Vec::new();
    let mut stalls: u64 = 0;
    // Scratch: per-adder multiplicity within the current position.
    let mut row_count = vec![0u32; n_rows];

    for p in 0..positions {
        let entries: Vec<ScheduledSlot> = lanes
            .iter()
            .filter_map(|q| q.get(p))
            .copied()
            .collect();
        for s in &entries {
            row_count[s.row_mod as usize] += 1;
        }

        // First cycle of the position: forward every entry whose adder is
        // uncontended. Colliding entries are held back (their partial
        // products would be lost).
        let mut first: Vec<ScheduledSlot> = Vec::with_capacity(entries.len());
        let mut held: Vec<ScheduledSlot> = Vec::new();
        for s in &entries {
            if row_count[s.row_mod as usize] == 1 {
                first.push(*s);
            } else {
                held.push(*s);
            }
        }
        stalls += held.len() as u64;
        if first.is_empty() {
            // Pure-collision position: the first drained entry uses the
            // otherwise-wasted first cycle.
            first.push(held.remove(0));
        }
        per_cycle.push(first);

        // Serial drain: one held entry per cycle while every other live
        // lane waits on the lockstep position pointer.
        let live_lanes = entries.len() as u64;
        for s in held {
            per_cycle.push(vec![s]);
            stalls += live_lanes - 1;
        }

        for s in &entries {
            row_count[s.row_mod as usize] = 0;
        }
    }

    ArbitratedWindow { per_cycle, stalls }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::windows::WindowPlan;
    use gust_sparse::prelude::*;

    #[test]
    fn collision_free_window_issues_at_full_rate() {
        // Identity: each lane has one element, all distinct adders.
        let m = CsrMatrix::identity(4);
        let plan = WindowPlan::new(&m, 4, false);
        let w = plan.window(&m, 0);
        let arb = arbitrate_window(&w, 4);
        assert_eq!(arb.per_cycle.len(), 1);
        assert_eq!(arb.stalls, 0);
    }

    #[test]
    fn dense_row_serializes_the_whole_position() {
        // One full row of length 4 at l = 4: all four lanes collide on
        // adder 0 -> first cycle forwards one, then 3 serial drains.
        let coo = CooMatrix::from_triplets(
            1,
            4,
            vec![(0, 0, 1.0), (0, 1, 2.0), (0, 2, 3.0), (0, 3, 4.0)],
        )
        .unwrap();
        let m = CsrMatrix::from(&coo);
        let plan = WindowPlan::new(&m, 4, false);
        let arb = arbitrate_window(&plan.window(&m, 0), 4);
        assert_eq!(arb.per_cycle.len(), 4);
        assert!(arb.stalls > 0);
    }

    #[test]
    fn mixed_position_forwards_uniques_then_drains() {
        // l = 4, one window of 3 rows. Position 0 entries: lanes 0,1 hit
        // row 0 (collide), lane 2 hits row 1, lane 3 hits row 2 (unique).
        let coo = CooMatrix::from_triplets(
            3,
            4,
            vec![(0, 0, 1.0), (0, 1, 2.0), (1, 2, 3.0), (2, 3, 4.0)],
        )
        .unwrap();
        let m = CsrMatrix::from(&coo);
        let plan = WindowPlan::new(&m, 4, false);
        let arb = arbitrate_window(&plan.window(&m, 0), 4);
        // Cycle 1: the two uniques; cycles 2-3: the colliding pair drains.
        assert_eq!(arb.per_cycle.len(), 3);
        assert_eq!(arb.per_cycle[0].len(), 2);
        assert_eq!(arb.per_cycle[1].len(), 1);
        assert_eq!(arb.per_cycle[2].len(), 1);
    }

    #[test]
    fn arbitration_covers_every_element_once() {
        let coo = gen::uniform(24, 24, 150, 3);
        let m = CsrMatrix::from(&coo);
        let plan = WindowPlan::new(&m, 8, false);
        let mut total = 0usize;
        for wi in 0..plan.window_count() {
            let w = plan.window(&m, wi);
            let arb = arbitrate_window(&w, 8);
            let covered: usize = arb.per_cycle.iter().map(Vec::len).sum();
            assert_eq!(covered, w.nnz());
            total += covered;
        }
        assert_eq!(total, m.nnz());
    }

    #[test]
    fn cycles_are_collision_free_despite_no_coloring() {
        let coo = gen::power_law(32, 32, 200, 1.8, 5);
        let m = CsrMatrix::from(&coo);
        let plan = WindowPlan::new(&m, 8, false);
        for wi in 0..plan.window_count() {
            let arb = arbitrate_window(&plan.window(&m, wi), 8);
            for bucket in &arb.per_cycle {
                let mut lanes: Vec<u32> = bucket.iter().map(|s| s.lane).collect();
                lanes.sort_unstable();
                assert!(lanes.windows(2).all(|p| p[0] != p[1]));
                let mut adders: Vec<u32> = bucket.iter().map(|s| s.row_mod).collect();
                adders.sort_unstable();
                assert!(adders.windows(2).all(|p| p[0] != p[1]));
            }
        }
    }

    #[test]
    fn naive_never_beats_the_vizing_bound() {
        for seed in 0..6 {
            let coo = gen::uniform(16, 16, 80, seed);
            let m = CsrMatrix::from(&coo);
            let plan = WindowPlan::new(&m, 4, false);
            for wi in 0..plan.window_count() {
                let w = plan.window(&m, wi);
                let arb = arbitrate_window(&w, 4);
                assert!(arb.per_cycle.len() >= w.vizing_bound(4));
            }
        }
    }

    #[test]
    fn naive_is_much_worse_than_edge_coloring_on_dense_input() {
        use crate::schedule::edge_coloring::color_window_grouped;
        let mut naive_total = 0usize;
        let mut ec_total = 0usize;
        for seed in 0..4 {
            let coo = gen::uniform(32, 32, 512, seed);
            let m = CsrMatrix::from(&coo);
            let plan = WindowPlan::new(&m, 8, false);
            for wi in 0..plan.window_count() {
                let w = plan.window(&m, wi);
                naive_total += arbitrate_window(&w, 8).per_cycle.len();
                ec_total += color_window_grouped(&w, 8).len();
            }
        }
        assert!(
            naive_total as f64 > 2.0 * ec_total as f64,
            "naive {naive_total} should far exceed EC {ec_total} on dense inputs"
        );
    }

    #[test]
    fn degenerates_toward_serial_at_high_density() {
        // Fully dense window: every position collides everywhere, so the
        // cycle count approaches nnz (the §3.3 naive-worse-than-1D regime).
        let coo = gen::uniform(8, 8, 64, 9);
        let m = CsrMatrix::from(&coo);
        let plan = WindowPlan::new(&m, 8, false);
        let w = plan.window(&m, 0);
        let arb = arbitrate_window(&w, 8);
        assert!(
            arb.per_cycle.len() as f64 > 0.75 * 64.0,
            "expected near-serial drain, got {} cycles",
            arb.per_cycle.len()
        );
    }
}
