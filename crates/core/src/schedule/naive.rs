//! The naive collision-stall schedule (§3.3).
//!
//! Without edge coloring, the buffers are filled in natural order — each
//! multiplier lane receives its column segments front to back — and the
//! buffers advance in lockstep: all lanes present their position-`p` entry
//! in the same cycle. When any two entries of a position target the same
//! adder, the hardware "simply \[does\] not forward the values from the
//! buffers" (§3.3): the collision-free entries of the position go through
//! in the first cycle, and the colliding ones drain serially, one per
//! cycle, before the position pointer can advance.
//!
//! This is what makes the paper's motivating claim come out: on 16 384²
//! uniform matrices a position almost always contains a collision beyond
//! density ≈ 1/l, so naive GUST degenerates to ~1 element/cycle-ish rates
//! and falls behind even the dense-streaming 1D array past density ≈ 0.008
//! (reproduced by the `bound` bench's crossover sweep).
//!
//! The arbitration assigns every element an issue cycle, which *is* a
//! (wasteful) coloring: within a cycle all lanes are distinct by
//! construction and all adders are distinct by the stall rule. The result
//! therefore writes cycle indices into the shared [`ColorScratch`] like the
//! edge colorers and assembles into the same
//! [`WindowSchedule`](super::scheduled::WindowSchedule) running on the same
//! engine.

use super::windows::Window;
use super::workspace::ColorScratch;

/// Cycle count and stall count of one arbitrated window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NaiveOutcome {
    /// Cycles (colors) the window occupies under lockstep arbitration.
    pub cycles: u32,
    /// Lane-cycles lost to collisions (lanes idle while a position drains).
    pub stalls: u64,
}

/// Simulates lockstep head-of-line arbitration for one window. Writes the
/// issue cycle of every edge into `scratch.edge_color` and returns the
/// cycle/stall totals.
///
/// Lane queues hold the window's elements in column-segment order
/// (`(col, row)` within the window), the natural fill order of the
/// unscheduled format.
pub fn arbitrate_window(window: &Window, l: usize, scratch: &mut ColorScratch) -> NaiveOutcome {
    let nnz = window.nnz();
    let n_rows = window.rows();
    let edges = window.edges();
    scratch.begin_window(nnz, l);
    scratch.fill_edge_rows(window);

    // Bucket edge ids per lane (counting sort), then order each lane's
    // queue by (col, row) — the natural fill order.
    scratch.lane_ptr.clear();
    scratch.lane_ptr.resize(l + 1, 0);
    for e in edges {
        scratch.lane_ptr[e.lane as usize + 1] += 1;
    }
    for lane in 0..l {
        scratch.lane_ptr[lane + 1] += scratch.lane_ptr[lane];
    }
    scratch.lane_edges.clear();
    scratch.lane_edges.resize(nnz, 0);
    {
        // Reuse `group_head` as the per-lane write cursor.
        scratch.group_head.clear();
        scratch.group_head.extend_from_slice(&scratch.lane_ptr[..l]);
        for (eid, e) in edges.iter().enumerate() {
            let lane = e.lane as usize;
            let at = scratch.group_head[lane] as usize;
            scratch.group_head[lane] += 1;
            scratch.lane_edges[at] = eid as u32;
        }
    }
    for lane in 0..l {
        let lo = scratch.lane_ptr[lane] as usize;
        let hi = scratch.lane_ptr[lane + 1] as usize;
        let edge_row = &scratch.edge_row;
        scratch.lane_edges[lo..hi]
            .sort_unstable_by_key(|&eid| (edges[eid as usize].col, edge_row[eid as usize]));
    }

    let positions = (0..l)
        .map(|lane| (scratch.lane_ptr[lane + 1] - scratch.lane_ptr[lane]) as usize)
        .max()
        .unwrap_or(0);

    scratch.row_count.clear();
    scratch.row_count.resize(n_rows, 0);

    let mut cycles: u32 = 0;
    let mut stalls: u64 = 0;
    for p in 0..positions {
        // The position's entries, in lane order.
        let first_cycle = cycles;
        cycles += 1;

        let mut live_lanes: u64 = 0;
        for lane in 0..l {
            let lo = scratch.lane_ptr[lane] as usize;
            let hi = scratch.lane_ptr[lane + 1] as usize;
            if lo + p < hi {
                let eid = scratch.lane_edges[lo + p] as usize;
                scratch.row_count[scratch.edge_row[eid] as usize] += 1;
                live_lanes += 1;
            }
        }

        // First cycle of the position: forward every entry whose adder is
        // uncontended. Colliding entries are held back (their partial
        // products would be lost) and drain serially, one per cycle, while
        // every other live lane waits on the lockstep position pointer.
        scratch.held.clear();
        for lane in 0..l {
            let lo = scratch.lane_ptr[lane] as usize;
            let hi = scratch.lane_ptr[lane + 1] as usize;
            if lo + p < hi {
                let eid = scratch.lane_edges[lo + p] as usize;
                if scratch.row_count[scratch.edge_row[eid] as usize] == 1 {
                    scratch.edge_color[eid] = first_cycle;
                } else {
                    scratch.held.push(eid as u32);
                }
            }
        }
        stalls += scratch.held.len() as u64;

        let mut drain_from = 0usize;
        if scratch.held.len() as u64 == live_lanes && live_lanes > 0 {
            // Pure-collision position: the first drained entry uses the
            // otherwise-wasted first cycle.
            scratch.edge_color[scratch.held[0] as usize] = first_cycle;
            drain_from = 1;
        }
        for &eid in &scratch.held[drain_from..] {
            scratch.edge_color[eid as usize] = cycles;
            cycles += 1;
            stalls += live_lanes - 1;
        }

        // Reset the adder multiplicities touched by this position.
        for lane in 0..l {
            let lo = scratch.lane_ptr[lane] as usize;
            let hi = scratch.lane_ptr[lane + 1] as usize;
            if lo + p < hi {
                let eid = scratch.lane_edges[lo + p] as usize;
                scratch.row_count[scratch.edge_row[eid] as usize] = 0;
            }
        }
    }

    NaiveOutcome { cycles, stalls }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::scheduled::WindowSchedule;
    use crate::schedule::windows::WindowPlan;
    use crate::schedule::workspace::ColoringWorkspace;
    use gust_sparse::prelude::*;

    fn arbitrate_to_schedule(window: &Window, l: usize) -> (WindowSchedule, NaiveOutcome) {
        let mut ws = ColoringWorkspace::new();
        let outcome = arbitrate_window(window, l, &mut ws.scratch);
        let schedule = ws.scratch.assemble(
            window,
            outcome.cycles,
            window.vizing_bound(l) as u32,
            outcome.stalls,
        );
        (schedule, outcome)
    }

    #[test]
    fn collision_free_window_issues_at_full_rate() {
        // Identity: each lane has one element, all distinct adders.
        let m = CsrMatrix::identity(4);
        let plan = WindowPlan::new(&m, 4, false);
        let w = plan.window(&m, 0);
        let (_, outcome) = arbitrate_to_schedule(&w, 4);
        assert_eq!(outcome.cycles, 1);
        assert_eq!(outcome.stalls, 0);
    }

    #[test]
    fn dense_row_serializes_the_whole_position() {
        // One full row of length 4 at l = 4: all four lanes collide on
        // adder 0 -> first cycle forwards one, then 3 serial drains.
        let coo = CooMatrix::from_triplets(
            1,
            4,
            vec![(0, 0, 1.0), (0, 1, 2.0), (0, 2, 3.0), (0, 3, 4.0)],
        )
        .unwrap();
        let m = CsrMatrix::from(&coo);
        let plan = WindowPlan::new(&m, 4, false);
        let (_, outcome) = arbitrate_to_schedule(&plan.window(&m, 0), 4);
        assert_eq!(outcome.cycles, 4);
        assert!(outcome.stalls > 0);
    }

    #[test]
    fn mixed_position_forwards_uniques_then_drains() {
        // l = 4, one window of 3 rows. Position 0 entries: lanes 0,1 hit
        // row 0 (collide), lane 2 hits row 1, lane 3 hits row 2 (unique).
        let coo = CooMatrix::from_triplets(
            3,
            4,
            vec![(0, 0, 1.0), (0, 1, 2.0), (1, 2, 3.0), (2, 3, 4.0)],
        )
        .unwrap();
        let m = CsrMatrix::from(&coo);
        let plan = WindowPlan::new(&m, 4, false);
        let (schedule, outcome) = arbitrate_to_schedule(&plan.window(&m, 0), 4);
        // Cycle 1: the two uniques; cycles 2-3: the colliding pair drains.
        assert_eq!(outcome.cycles, 3);
        assert_eq!(schedule.color_len(0), 2);
        assert_eq!(schedule.color_len(1), 1);
        assert_eq!(schedule.color_len(2), 1);
    }

    #[test]
    fn arbitration_covers_every_element_once() {
        let coo = gen::uniform(24, 24, 150, 3);
        let m = CsrMatrix::from(&coo);
        let plan = WindowPlan::new(&m, 8, false);
        let mut total = 0usize;
        for wi in 0..plan.window_count() {
            let w = plan.window(&m, wi);
            let (schedule, _) = arbitrate_to_schedule(&w, 8);
            assert_eq!(schedule.nnz(), w.nnz());
            total += schedule.nnz();
        }
        assert_eq!(total, m.nnz());
    }

    #[test]
    fn cycles_are_collision_free_despite_no_coloring() {
        let coo = gen::power_law(32, 32, 200, 1.8, 5);
        let m = CsrMatrix::from(&coo);
        let plan = WindowPlan::new(&m, 8, false);
        for wi in 0..plan.window_count() {
            let (schedule, _) = arbitrate_to_schedule(&plan.window(&m, wi), 8);
            for c in 0..schedule.colors() {
                let bucket: Vec<_> = schedule.iter_color(c).collect();
                let mut lanes: Vec<u32> = bucket.iter().map(|s| s.lane).collect();
                lanes.sort_unstable();
                assert!(lanes.windows(2).all(|p| p[0] != p[1]));
                let mut adders: Vec<u32> = bucket.iter().map(|s| s.row_mod).collect();
                adders.sort_unstable();
                assert!(adders.windows(2).all(|p| p[0] != p[1]));
            }
        }
    }

    #[test]
    fn naive_never_beats_the_vizing_bound() {
        for seed in 0..6 {
            let coo = gen::uniform(16, 16, 80, seed);
            let m = CsrMatrix::from(&coo);
            let plan = WindowPlan::new(&m, 4, false);
            for wi in 0..plan.window_count() {
                let w = plan.window(&m, wi);
                let (_, outcome) = arbitrate_to_schedule(&w, 4);
                assert!(outcome.cycles as usize >= w.vizing_bound(4));
            }
        }
    }

    #[test]
    fn naive_is_much_worse_than_edge_coloring_on_dense_input() {
        use crate::schedule::edge_coloring::color_window_grouped;
        let mut ws = ColoringWorkspace::new();
        let mut naive_total = 0u64;
        let mut ec_total = 0u64;
        for seed in 0..4 {
            let coo = gen::uniform(32, 32, 512, seed);
            let m = CsrMatrix::from(&coo);
            let plan = WindowPlan::new(&m, 8, false);
            for wi in 0..plan.window_count() {
                let w = plan.window(&m, wi);
                naive_total += u64::from(arbitrate_window(&w, 8, &mut ws.scratch).cycles);
                ec_total += u64::from(color_window_grouped(&w, 8, &mut ws.scratch));
            }
        }
        assert!(
            naive_total as f64 > 2.0 * ec_total as f64,
            "naive {naive_total} should far exceed EC {ec_total} on dense inputs"
        );
    }

    #[test]
    fn degenerates_toward_serial_at_high_density() {
        // Fully dense window: every position collides everywhere, so the
        // cycle count approaches nnz (the §3.3 naive-worse-than-1D regime).
        let coo = gen::uniform(8, 8, 64, 9);
        let m = CsrMatrix::from(&coo);
        let plan = WindowPlan::new(&m, 8, false);
        let w = plan.window(&m, 0);
        let (_, outcome) = arbitrate_to_schedule(&w, 8);
        assert!(
            f64::from(outcome.cycles) > 0.75 * 64.0,
            "expected near-serial drain, got {} cycles",
            outcome.cycles
        );
    }
}
