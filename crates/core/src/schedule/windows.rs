//! Windowing and load balancing: carving the matrix into sets of `l` rows
//! and assigning columns to multiplier lanes.
//!
//! Paper §3.2 "Data Flow": when the matrix is bigger than the accelerator,
//! SpMV proceeds window by window — a set of `l` rows enters, its non-zeros
//! stream through, the adders dump, and the next `l` rows enter. Columns map
//! to multipliers by `col mod l` ("column segments").
//!
//! Paper §3.5 "Load Balancing" modifies both mappings with a three-step
//! sort: (1) sort rows by non-zero count, (2) sort each window's column
//! segments by non-zero count, (3) reverse every even sorted group
//! (serpentine), so per-lane loads even out.

use gust_sparse::CsrMatrix;

/// One non-zero within a window, annotated with its lane assignment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowEdge {
    /// Multiplier lane (right-side bipartite vertex), `0..l`.
    pub lane: u32,
    /// Original column index (used to fetch the vector element).
    pub col: u32,
    /// Matrix value.
    pub value: f32,
}

/// A window: `l` consecutive scheduled rows and their edges.
///
/// `per_row[i]` holds row `i`'s edges in ascending column order — exactly
/// the `E[i]` edge lists of the paper's Listing 1.
#[derive(Debug, Clone, PartialEq)]
pub struct Window {
    /// Window index (row set `w` covers scheduled positions `w*l..(w+1)*l`).
    pub index: usize,
    /// Edges per local row (left-side bipartite vertex). Length is the
    /// number of rows in this window (< `l` only for the final window).
    pub per_row: Vec<Vec<WindowEdge>>,
}

impl Window {
    /// Total edges (non-zeros) in the window.
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.per_row.iter().map(Vec::len).sum()
    }

    /// The Vizing / Eq. 1 lower bound on colors for this window: the maximum
    /// degree over left vertices (rows) and right vertices (lanes).
    #[must_use]
    pub fn vizing_bound(&self, l: usize) -> usize {
        let row_max = self.per_row.iter().map(Vec::len).max().unwrap_or(0);
        let mut lane_deg = vec![0usize; l];
        for row in &self.per_row {
            for e in row {
                lane_deg[e.lane as usize] += 1;
            }
        }
        let lane_max = lane_deg.into_iter().max().unwrap_or(0);
        row_max.max(lane_max)
    }
}

/// The windowing plan: a row permutation plus per-window lane assignment.
///
/// Windows are materialized one at a time through [`WindowPlan::window`] so
/// scheduling a 30 M-nnz matrix never holds more than one window's edges
/// besides the input CSR.
#[derive(Debug, Clone)]
pub struct WindowPlan {
    length: usize,
    load_balance: bool,
    /// `row_perm[scheduled_position] = original_row`.
    row_perm: Vec<u32>,
}

impl WindowPlan {
    /// Builds the plan for a length-`l` GUST.
    ///
    /// With `load_balance`, rows are sorted by descending non-zero count
    /// (step 1 of §3.5); otherwise the natural order is kept.
    ///
    /// # Panics
    ///
    /// Panics if `length == 0`.
    #[must_use]
    pub fn new(matrix: &CsrMatrix, length: usize, load_balance: bool) -> Self {
        assert!(length > 0, "GUST length must be non-zero");
        let mut row_perm: Vec<u32> = (0..matrix.rows() as u32).collect();
        if load_balance {
            // Stable sort, descending nnz: heavy rows share windows with
            // other heavy rows, so the per-window max (which bounds the
            // color count) is not inflated by a single outlier per window.
            row_perm.sort_by_key(|&r| std::cmp::Reverse(matrix.row_nnz(r as usize)));
        }
        Self {
            length,
            load_balance,
            row_perm,
        }
    }

    /// Number of windows: `⌈rows / l⌉`.
    #[must_use]
    pub fn window_count(&self) -> usize {
        self.row_perm.len().div_ceil(self.length)
    }

    /// The row permutation: `row_perm()[pos]` is the original index of the
    /// row scheduled at position `pos`.
    #[must_use]
    pub fn row_perm(&self) -> &[u32] {
        &self.row_perm
    }

    /// Accelerator length `l`.
    #[must_use]
    pub fn length(&self) -> usize {
        self.length
    }

    /// Materializes window `w`, applying steps 2–3 of the load balancer
    /// (column-segment sort + serpentine lane assignment) when enabled.
    ///
    /// # Panics
    ///
    /// Panics if `w >= self.window_count()`.
    #[must_use]
    pub fn window(&self, matrix: &CsrMatrix, w: usize) -> Window {
        assert!(w < self.window_count(), "window {w} out of range");
        let l = self.length;
        let start = w * l;
        let end = (start + l).min(self.row_perm.len());

        let mut per_row: Vec<Vec<WindowEdge>> = Vec::with_capacity(end - start);
        if !self.load_balance {
            for pos in start..end {
                let orig = self.row_perm[pos] as usize;
                let (cols, vals) = matrix.row(orig);
                per_row.push(
                    cols.iter()
                        .zip(vals)
                        .map(|(&c, &v)| WindowEdge {
                            lane: c % l as u32,
                            col: c,
                            value: v,
                        })
                        .collect(),
                );
            }
            return Window { index: w, per_row };
        }

        // Load-balanced lane assignment. Step 2: count this window's nnz per
        // original column ("column segments") and sort segments by count,
        // descending. Step 3: serpentine — reverse every even sorted group of
        // `l` (paper example: 1,2,3,4,5,6,7,8 -> 1,2,4,3,5,6,8,7 for l = 2).
        // Lane of a segment = its position within its group.
        let mut seg_count: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
        for pos in start..end {
            let orig = self.row_perm[pos] as usize;
            let (cols, _) = matrix.row(orig);
            for &c in cols {
                *seg_count.entry(c).or_insert(0) += 1;
            }
        }
        let mut segments: Vec<(u32, u32)> = seg_count.into_iter().collect();
        // Sort by count descending; tie-break on column index for
        // determinism.
        segments.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));

        let mut lane_of: std::collections::HashMap<u32, u32> =
            std::collections::HashMap::with_capacity(segments.len());
        for (group_idx, group) in segments.chunks(l).enumerate() {
            let group_len = group.len();
            for (i, &(col, _)) in group.iter().enumerate() {
                let slot = if group_idx % 2 == 1 {
                    // Odd (0-based) groups are the "even column segments"
                    // of the paper's 1-based description: reversed.
                    group_len - 1 - i
                } else {
                    i
                };
                lane_of.insert(col, slot as u32);
            }
        }

        for pos in start..end {
            let orig = self.row_perm[pos] as usize;
            let (cols, vals) = matrix.row(orig);
            per_row.push(
                cols.iter()
                    .zip(vals)
                    .map(|(&c, &v)| WindowEdge {
                        lane: lane_of[&c],
                        col: c,
                        value: v,
                    })
                    .collect(),
            );
        }
        Window { index: w, per_row }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gust_sparse::prelude::*;

    fn matrix_6x9() -> CsrMatrix {
        // The paper's Fig. 5 example: 6 rows, 9 columns (A..I).
        // 1: A C D E H   2: A B F G H   3: B C D I
        // 4: A C E I     5: C F G H     6: A B D H
        let rows: [&[usize]; 6] = [
            &[0, 2, 3, 4, 7],
            &[0, 1, 5, 6, 7],
            &[1, 2, 3, 8],
            &[0, 2, 4, 8],
            &[2, 5, 6, 7],
            &[0, 1, 3, 7],
        ];
        let mut coo = CooMatrix::new(6, 9);
        for (r, cols) in rows.iter().enumerate() {
            for &c in cols.iter() {
                coo.push(r, c, (r * 10 + c) as f32 + 1.0).unwrap();
            }
        }
        CsrMatrix::from(&coo)
    }

    #[test]
    fn window_count_rounds_up() {
        let m = matrix_6x9();
        let plan = WindowPlan::new(&m, 3, false);
        assert_eq!(plan.window_count(), 2);
        let plan4 = WindowPlan::new(&m, 4, false);
        assert_eq!(plan4.window_count(), 2);
    }

    #[test]
    fn unbalanced_lane_is_col_mod_l() {
        let m = matrix_6x9();
        let plan = WindowPlan::new(&m, 3, false);
        let w0 = plan.window(&m, 0);
        for (i, row) in w0.per_row.iter().enumerate() {
            for e in row {
                assert_eq!(e.lane, e.col % 3, "row {i} col {}", e.col);
            }
        }
    }

    #[test]
    fn fig5_window_edges_match_paper() {
        // Paper Fig. 5(b): first window (rows 1-3) right vertices group
        // columns {A,D,G}, {B,E,H}, {C,F,I} = lanes 0,1,2.
        let m = matrix_6x9();
        let plan = WindowPlan::new(&m, 3, false);
        let w0 = plan.window(&m, 0);
        assert_eq!(w0.per_row.len(), 3);
        // Row 1 (A C D E H) -> lanes (0, 2, 0, 1, 1).
        let lanes: Vec<u32> = w0.per_row[0].iter().map(|e| e.lane).collect();
        assert_eq!(lanes, vec![0, 2, 0, 1, 1]);
        assert_eq!(w0.nnz(), 14);
    }

    #[test]
    fn fig5_vizing_bounds() {
        // First window: row degrees 5,5,4; lane degrees: lane0 (A,D,G): A×2,
        // D×2, G×1 = 5; lane1 (B,E,H): B×2,E×1,H×2 = 5; lane2 (C,F,I):
        // C×2,F×1,I×1 = 4. Bound = 5 — the paper colors it with 5.
        let m = matrix_6x9();
        let plan = WindowPlan::new(&m, 3, false);
        assert_eq!(plan.window(&m, 0).vizing_bound(3), 5);
        // Second window (rows 4-6): paper colors it with 4.
        assert_eq!(plan.window(&m, 1).vizing_bound(3), 4);
    }

    #[test]
    fn load_balance_sorts_rows_descending() {
        let coo = CooMatrix::from_triplets(
            4,
            4,
            vec![
                (0, 0, 1.0),
                (1, 0, 1.0),
                (1, 1, 1.0),
                (1, 2, 1.0),
                (2, 0, 1.0),
                (2, 1, 1.0),
                (3, 3, 1.0),
            ],
        )
        .unwrap();
        let m = CsrMatrix::from(&coo);
        let plan = WindowPlan::new(&m, 2, true);
        // nnz: row0=1, row1=3, row2=2, row3=1 -> order 1, 2, 0, 3.
        assert_eq!(plan.row_perm(), &[1, 2, 0, 3]);
    }

    #[test]
    fn row_perm_is_identity_without_lb() {
        let m = matrix_6x9();
        let plan = WindowPlan::new(&m, 3, false);
        assert_eq!(plan.row_perm(), &[0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn serpentine_assignment_balances_lane_loads() {
        // One window of 2 rows at l = 2, four columns with window loads
        // col0: 2, col1: 2, col2: 1, col3: 1.
        let mut coo = CooMatrix::new(2, 4);
        let mut val = 1.0f32;
        for c in 0..2 {
            for r in 0..2 {
                coo.push(r, c, val).unwrap();
                val += 1.0;
            }
        }
        coo.push(0, 2, val).unwrap();
        coo.push(1, 3, val + 1.0).unwrap();
        let m = CsrMatrix::from(&coo);
        let plan = WindowPlan::new(&m, 2, true);
        let w = plan.window(&m, 0);
        // Sorted segments: col0(2), col1(2), col2(1), col3(1).
        // Groups: (col0,col1), then (col2,col3) reversed -> col3 lane0,
        // col2 lane1. Lane loads: lane0 = 2+1 = 3; lane1 = 2+1 = 3.
        let mut lane_load = [0usize; 2];
        for row in &w.per_row {
            for e in row {
                lane_load[e.lane as usize] += 1;
            }
        }
        assert_eq!(lane_load, [3, 3]);
    }

    #[test]
    fn ragged_final_window() {
        let m = matrix_6x9();
        let plan = WindowPlan::new(&m, 4, false);
        let w1 = plan.window(&m, 1);
        assert_eq!(w1.per_row.len(), 2); // rows 4 and 5 only
    }

    #[test]
    fn lb_window_covers_all_edges_once() {
        let m = matrix_6x9();
        let plan = WindowPlan::new(&m, 3, true);
        let total: usize = (0..plan.window_count())
            .map(|w| plan.window(&m, w).nnz())
            .sum();
        assert_eq!(total, m.nnz());
    }

    #[test]
    fn lb_lane_assignment_is_within_bounds() {
        let coo = gen::uniform(50, 70, 400, 3);
        let m = CsrMatrix::from(&coo);
        let plan = WindowPlan::new(&m, 8, true);
        for w in 0..plan.window_count() {
            for row in &plan.window(&m, w).per_row {
                for e in row {
                    assert!(e.lane < 8);
                }
            }
        }
    }
}
