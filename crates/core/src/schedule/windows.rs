//! Windowing and load balancing: carving the matrix into sets of `l` rows
//! and assigning columns to multiplier lanes.
//!
//! Paper §3.2 "Data Flow": when the matrix is bigger than the accelerator,
//! SpMV proceeds window by window — a set of `l` rows enters, its non-zeros
//! stream through, the adders dump, and the next `l` rows enter. Columns map
//! to multipliers by `col mod l` ("column segments").
//!
//! Paper §3.5 "Load Balancing" modifies both mappings with a three-step
//! sort: (1) sort rows by non-zero count, (2) sort each window's column
//! segments by non-zero count, (3) reverse every even sorted group
//! (serpentine), so per-lane loads even out.
//!
//! # Storage
//!
//! A [`Window`] stores its edges as one flat, row-major array with CSR-style
//! per-row offsets (`row_ptr`), not as per-row `Vec<Vec<_>>`: the scheduler
//! visits millions of windows on large matrices and the flat layout lets
//! [`WindowPlan::fill_window`] reuse one allocation for all of them (and
//! keeps the row scan cache-friendly). The load balancer's column-segment
//! table is likewise flat and sorted instead of hashed, so lane lookup is a
//! binary search over a reused buffer ([`LaneScratch`]).

use gust_sparse::CsrMatrix;

/// One non-zero within a window, annotated with its lane assignment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowEdge {
    /// Multiplier lane (right-side bipartite vertex), `0..l`.
    pub lane: u32,
    /// Original column index (used to fetch the vector element).
    pub col: u32,
    /// Matrix value.
    pub value: f32,
}

/// A window: up to `l` consecutive scheduled rows and their edges, stored
/// flat (see the module docs).
///
/// `row_edges(i)` holds row `i`'s edges in ascending column order — exactly
/// the `E[i]` edge lists of the paper's Listing 1.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Window {
    /// Window index (row set `w` covers scheduled positions `w*l..(w+1)*l`).
    pub index: usize,
    /// All edges of the window, row-major, in ascending column order within
    /// each row.
    edges: Vec<WindowEdge>,
    /// `row_ptr[i]..row_ptr[i+1]` indexes `edges` for local row `i`.
    /// Length is `rows() + 1`.
    row_ptr: Vec<u32>,
}

impl Window {
    /// An empty window buffer, ready for [`WindowPlan::fill_window`].
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of rows in this window (< `l` only for the final window).
    #[must_use]
    pub fn rows(&self) -> usize {
        self.row_ptr.len().saturating_sub(1)
    }

    /// Edges of local row `i`, in ascending column order.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows()`.
    #[must_use]
    pub fn row_edges(&self, i: usize) -> &[WindowEdge] {
        &self.edges[self.row_ptr[i] as usize..self.row_ptr[i + 1] as usize]
    }

    /// All edges, row-major.
    #[must_use]
    pub fn edges(&self) -> &[WindowEdge] {
        &self.edges
    }

    /// The CSR-style row offsets into [`Window::edges`].
    #[must_use]
    pub fn row_ptr(&self) -> &[u32] {
        &self.row_ptr
    }

    /// Iterates the per-row edge slices in local row order.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[WindowEdge]> + '_ {
        (0..self.rows()).map(move |i| self.row_edges(i))
    }

    /// Total edges (non-zeros) in the window.
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.edges.len()
    }

    /// The Vizing / Eq. 1 lower bound on colors for this window: the maximum
    /// degree over left vertices (rows) and right vertices (lanes).
    #[must_use]
    pub fn vizing_bound(&self, l: usize) -> usize {
        let row_max = (0..self.rows())
            .map(|i| (self.row_ptr[i + 1] - self.row_ptr[i]) as usize)
            .max()
            .unwrap_or(0);
        let mut lane_deg = vec![0usize; l];
        for e in &self.edges {
            lane_deg[e.lane as usize] += 1;
        }
        let lane_max = lane_deg.into_iter().max().unwrap_or(0);
        row_max.max(lane_max)
    }

    /// Refills `self` with the subset of `src`'s edges whose columns fall
    /// in `cols` (a column band), keeping `src`'s row structure: same row
    /// count, same within-row edge order, same lane assignment. Because
    /// each row's edges are stored in ascending column order, the band's
    /// edges are one contiguous run per row, located by binary search.
    ///
    /// This is the banded scheduler's partitioner
    /// ([`crate::schedule::banded`]): each band sub-window is colored
    /// independently, so its gathers only ever touch the band's slice of
    /// the input vector.
    pub(crate) fn fill_band_from(&mut self, src: &Window, cols: std::ops::Range<u32>) {
        self.clear(src.index);
        for row in src.iter_rows() {
            let lo = row.partition_point(|e| e.col < cols.start);
            let hi = lo + row[lo..].partition_point(|e| e.col < cols.end);
            for &edge in &row[lo..hi] {
                self.push_edge(edge);
            }
            self.finish_row();
        }
    }

    fn clear(&mut self, index: usize) {
        self.index = index;
        self.edges.clear();
        self.row_ptr.clear();
        self.row_ptr.push(0);
    }

    fn push_edge(&mut self, edge: WindowEdge) {
        self.edges.push(edge);
    }

    fn finish_row(&mut self) {
        self.row_ptr.push(self.edges.len() as u32);
    }
}

/// Column count up to which the load balancer uses dense (direct-mapped)
/// per-column tables: 4 Mi columns × two `u32` tables = 32 MiB per worker.
/// Wider matrices fall back to sorted tables with binary-search lookup.
const DENSE_COLS_LIMIT: usize = 1 << 22;

/// Reusable scratch for the load balancer's lane assignment (§3.5 steps
/// 2–3). One instance per worker thread; contents are meaningless between
/// [`WindowPlan::fill_window`] calls.
#[derive(Debug, Clone, Default)]
pub struct LaneScratch {
    /// Dense per-column nnz counts (all-zero between windows). Used when
    /// the matrix has at most [`DENSE_COLS_LIMIT`] columns.
    col_count: Vec<u32>,
    /// Dense column → lane table. Only entries for the current window's
    /// columns are meaningful, and fill always writes them before any
    /// read, so no reset pass is needed.
    lane_of_col: Vec<u32>,
    /// Sorted scratch copy of this window's column indices (fallback).
    cols: Vec<u32>,
    /// `(column, nnz in window)` segment table, in ascending column order.
    segments: Vec<(u32, u32)>,
    /// Segment table ordered by (count desc, col asc) — the §3.5 step-2
    /// order — produced by a counting sort over `segments`.
    segments_by_count: Vec<(u32, u32)>,
    /// Histogram/offset scratch for that counting sort.
    count_hist: Vec<u32>,
    /// `(column, lane)`, sorted by column for binary-search lookup
    /// (fallback).
    lane_by_col: Vec<(u32, u32)>,
}

impl LaneScratch {
    /// A fresh scratch buffer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Lane of `col` under the current window's serpentine assignment
    /// (fallback path).
    fn lane_of(&self, col: u32) -> u32 {
        let idx = self
            .lane_by_col
            .binary_search_by_key(&col, |&(c, _)| c)
            .expect("every window column has a lane");
        self.lane_by_col[idx].1
    }
}

/// The windowing plan: a row permutation plus per-window lane assignment.
///
/// Windows are materialized one at a time through [`WindowPlan::window`] (or
/// allocation-free via [`WindowPlan::fill_window`]), so scheduling a
/// 30 M-nnz matrix never holds more than one window's edges per worker
/// besides the input CSR.
#[derive(Debug, Clone)]
pub struct WindowPlan {
    length: usize,
    load_balance: bool,
    /// `row_perm[scheduled_position] = original_row`.
    row_perm: Vec<u32>,
}

impl WindowPlan {
    /// Builds the plan for a length-`l` GUST.
    ///
    /// With `load_balance`, rows are sorted by descending non-zero count
    /// (step 1 of §3.5); otherwise the natural order is kept.
    ///
    /// # Panics
    ///
    /// Panics if `length == 0`.
    #[must_use]
    pub fn new(matrix: &CsrMatrix, length: usize, load_balance: bool) -> Self {
        assert!(length > 0, "GUST length must be non-zero");
        let mut row_perm: Vec<u32> = (0..matrix.rows() as u32).collect();
        if load_balance {
            // Stable sort, descending nnz: heavy rows share windows with
            // other heavy rows, so the per-window max (which bounds the
            // color count) is not inflated by a single outlier per window.
            row_perm.sort_by_key(|&r| std::cmp::Reverse(matrix.row_nnz(r as usize)));
        }
        Self {
            length,
            load_balance,
            row_perm,
        }
    }

    /// Number of windows: `⌈rows / l⌉`.
    #[must_use]
    pub fn window_count(&self) -> usize {
        self.row_perm.len().div_ceil(self.length)
    }

    /// The row permutation: `row_perm()[pos]` is the original index of the
    /// row scheduled at position `pos`.
    #[must_use]
    pub fn row_perm(&self) -> &[u32] {
        &self.row_perm
    }

    /// Accelerator length `l`.
    #[must_use]
    pub fn length(&self) -> usize {
        self.length
    }

    /// Materializes window `w` into a fresh allocation. Convenience wrapper
    /// over [`WindowPlan::fill_window`] for tests and one-off inspection;
    /// the scheduler's hot loop reuses buffers instead.
    ///
    /// # Panics
    ///
    /// Panics if `w >= self.window_count()`.
    #[must_use]
    pub fn window(&self, matrix: &CsrMatrix, w: usize) -> Window {
        let mut window = Window::new();
        let mut scratch = LaneScratch::new();
        self.fill_window(matrix, w, &mut window, &mut scratch);
        window
    }

    /// Materializes window `w` into `window`, reusing its buffers (and
    /// `scratch` for the load balancer's segment table), applying steps 2–3
    /// of the load balancer (column-segment sort + serpentine lane
    /// assignment) when enabled.
    ///
    /// # Panics
    ///
    /// Panics if `w >= self.window_count()`.
    pub fn fill_window(
        &self,
        matrix: &CsrMatrix,
        w: usize,
        window: &mut Window,
        scratch: &mut LaneScratch,
    ) {
        assert!(w < self.window_count(), "window {w} out of range");
        let l = self.length;
        let start = w * l;
        let end = (start + l).min(self.row_perm.len());

        window.clear(w);
        if !self.load_balance {
            let l32 = l as u32;
            for pos in start..end {
                let orig = self.row_perm[pos] as usize;
                let (cols, vals) = matrix.row(orig);
                for (&c, &v) in cols.iter().zip(vals) {
                    window.push_edge(WindowEdge {
                        lane: c % l32,
                        col: c,
                        value: v,
                    });
                }
                window.finish_row();
            }
            return;
        }

        // Load-balanced lane assignment. Step 2: count this window's nnz per
        // original column ("column segments") and sort segments by count,
        // descending. Step 3: serpentine — reverse every even sorted group of
        // `l` (paper example: 1,2,3,4,5,6,7,8 -> 1,2,4,3,5,6,8,7 for l = 2).
        // Lane of a segment = its position within its group.
        //
        // Deterministic and hash-free. Narrow matrices (the common case)
        // use dense per-column tables: O(1) counting and lane lookup, with
        // the touched columns recorded during the counting pass so the
        // segment build is O(unique columns log unique columns) — never a
        // sweep over all matrix columns, which would make many-window
        // matrices O(windows × cols). Wider matrices collect and sort the
        // window's columns instead.
        let dense = matrix.cols() <= DENSE_COLS_LIMIT;
        scratch.segments.clear();
        if dense {
            scratch.col_count.resize(matrix.cols(), 0);
            scratch.cols.clear();
            for pos in start..end {
                let orig = self.row_perm[pos] as usize;
                let (cols, _) = matrix.row(orig);
                for &c in cols {
                    if scratch.col_count[c as usize] == 0 {
                        scratch.cols.push(c); // first touch of this column
                    }
                    scratch.col_count[c as usize] += 1;
                }
            }
            scratch.cols.sort_unstable();
            for &c in &scratch.cols {
                scratch.segments.push((c, scratch.col_count[c as usize]));
                scratch.col_count[c as usize] = 0; // restore the all-zero invariant
            }
        } else {
            scratch.cols.clear();
            for pos in start..end {
                let orig = self.row_perm[pos] as usize;
                let (cols, _) = matrix.row(orig);
                scratch.cols.extend_from_slice(cols);
            }
            scratch.cols.sort_unstable();
            for &c in &scratch.cols {
                match scratch.segments.last_mut() {
                    Some((col, count)) if *col == c => *count += 1,
                    _ => scratch.segments.push((c, 1)),
                }
            }
        }
        // Order by count descending, tie-break on column index ascending
        // for determinism. `segments` is already in ascending column
        // order, so a counting sort over the count value keeps the column
        // tie-break for free and avoids a comparison sort per window.
        let max_count = scratch.segments.iter().map(|s| s.1).max().unwrap_or(0) as usize;
        scratch.count_hist.clear();
        scratch.count_hist.resize(max_count + 1, 0);
        for &(_, count) in &scratch.segments {
            scratch.count_hist[count as usize] += 1;
        }
        let mut offset = 0u32;
        for count in (1..=max_count).rev() {
            let h = scratch.count_hist[count];
            scratch.count_hist[count] = offset;
            offset += h;
        }
        scratch.segments_by_count.clear();
        scratch
            .segments_by_count
            .resize(scratch.segments.len(), (0, 0));
        for &(col, count) in &scratch.segments {
            let at = scratch.count_hist[count as usize] as usize;
            scratch.count_hist[count as usize] += 1;
            scratch.segments_by_count[at] = (col, count);
        }

        if dense {
            scratch.lane_of_col.resize(matrix.cols(), 0);
        } else {
            scratch.lane_by_col.clear();
        }
        for (group_idx, group) in scratch.segments_by_count.chunks(l).enumerate() {
            let group_len = group.len();
            for (i, &(col, _)) in group.iter().enumerate() {
                let slot = if group_idx % 2 == 1 {
                    // Odd (0-based) groups are the "even column segments"
                    // of the paper's 1-based description: reversed.
                    group_len - 1 - i
                } else {
                    i
                };
                if dense {
                    // Stale entries from earlier windows are harmless: a
                    // column is only ever read in the window that just
                    // wrote it.
                    scratch.lane_of_col[col as usize] = slot as u32;
                } else {
                    scratch.lane_by_col.push((col, slot as u32));
                }
            }
        }
        if !dense {
            scratch.lane_by_col.sort_unstable_by_key(|&(c, _)| c);
        }

        for pos in start..end {
            let orig = self.row_perm[pos] as usize;
            let (cols, vals) = matrix.row(orig);
            for (&c, &v) in cols.iter().zip(vals) {
                let lane = if dense {
                    scratch.lane_of_col[c as usize]
                } else {
                    scratch.lane_of(c)
                };
                window.push_edge(WindowEdge {
                    lane,
                    col: c,
                    value: v,
                });
            }
            window.finish_row();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gust_sparse::prelude::*;

    fn matrix_6x9() -> CsrMatrix {
        // The paper's Fig. 5 example: 6 rows, 9 columns (A..I).
        // 1: A C D E H   2: A B F G H   3: B C D I
        // 4: A C E I     5: C F G H     6: A B D H
        let rows: [&[usize]; 6] = [
            &[0, 2, 3, 4, 7],
            &[0, 1, 5, 6, 7],
            &[1, 2, 3, 8],
            &[0, 2, 4, 8],
            &[2, 5, 6, 7],
            &[0, 1, 3, 7],
        ];
        let mut coo = CooMatrix::new(6, 9);
        for (r, cols) in rows.iter().enumerate() {
            for &c in cols.iter() {
                coo.push(r, c, (r * 10 + c) as f32 + 1.0).unwrap();
            }
        }
        CsrMatrix::from(&coo)
    }

    #[test]
    fn window_count_rounds_up() {
        let m = matrix_6x9();
        let plan = WindowPlan::new(&m, 3, false);
        assert_eq!(plan.window_count(), 2);
        let plan4 = WindowPlan::new(&m, 4, false);
        assert_eq!(plan4.window_count(), 2);
    }

    #[test]
    fn unbalanced_lane_is_col_mod_l() {
        let m = matrix_6x9();
        let plan = WindowPlan::new(&m, 3, false);
        let w0 = plan.window(&m, 0);
        for (i, row) in w0.iter_rows().enumerate() {
            for e in row {
                assert_eq!(e.lane, e.col % 3, "row {i} col {}", e.col);
            }
        }
    }

    #[test]
    fn fig5_window_edges_match_paper() {
        // Paper Fig. 5(b): first window (rows 1-3) right vertices group
        // columns {A,D,G}, {B,E,H}, {C,F,I} = lanes 0,1,2.
        let m = matrix_6x9();
        let plan = WindowPlan::new(&m, 3, false);
        let w0 = plan.window(&m, 0);
        assert_eq!(w0.rows(), 3);
        // Row 1 (A C D E H) -> lanes (0, 2, 0, 1, 1).
        let lanes: Vec<u32> = w0.row_edges(0).iter().map(|e| e.lane).collect();
        assert_eq!(lanes, vec![0, 2, 0, 1, 1]);
        assert_eq!(w0.nnz(), 14);
    }

    #[test]
    fn fig5_vizing_bounds() {
        // First window: row degrees 5,5,4; lane degrees: lane0 (A,D,G): A×2,
        // D×2, G×1 = 5; lane1 (B,E,H): B×2,E×1,H×2 = 5; lane2 (C,F,I):
        // C×2,F×1,I×1 = 4. Bound = 5 — the paper colors it with 5.
        let m = matrix_6x9();
        let plan = WindowPlan::new(&m, 3, false);
        assert_eq!(plan.window(&m, 0).vizing_bound(3), 5);
        // Second window (rows 4-6): paper colors it with 4.
        assert_eq!(plan.window(&m, 1).vizing_bound(3), 4);
    }

    #[test]
    fn load_balance_sorts_rows_descending() {
        let coo = CooMatrix::from_triplets(
            4,
            4,
            vec![
                (0, 0, 1.0),
                (1, 0, 1.0),
                (1, 1, 1.0),
                (1, 2, 1.0),
                (2, 0, 1.0),
                (2, 1, 1.0),
                (3, 3, 1.0),
            ],
        )
        .unwrap();
        let m = CsrMatrix::from(&coo);
        let plan = WindowPlan::new(&m, 2, true);
        // nnz: row0=1, row1=3, row2=2, row3=1 -> order 1, 2, 0, 3.
        assert_eq!(plan.row_perm(), &[1, 2, 0, 3]);
    }

    #[test]
    fn row_perm_is_identity_without_lb() {
        let m = matrix_6x9();
        let plan = WindowPlan::new(&m, 3, false);
        assert_eq!(plan.row_perm(), &[0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn serpentine_assignment_balances_lane_loads() {
        // One window of 2 rows at l = 2, four columns with window loads
        // col0: 2, col1: 2, col2: 1, col3: 1.
        let mut coo = CooMatrix::new(2, 4);
        let mut val = 1.0f32;
        for c in 0..2 {
            for r in 0..2 {
                coo.push(r, c, val).unwrap();
                val += 1.0;
            }
        }
        coo.push(0, 2, val).unwrap();
        coo.push(1, 3, val + 1.0).unwrap();
        let m = CsrMatrix::from(&coo);
        let plan = WindowPlan::new(&m, 2, true);
        let w = plan.window(&m, 0);
        // Sorted segments: col0(2), col1(2), col2(1), col3(1).
        // Groups: (col0,col1), then (col2,col3) reversed -> col3 lane0,
        // col2 lane1. Lane loads: lane0 = 2+1 = 3; lane1 = 2+1 = 3.
        let mut lane_load = [0usize; 2];
        for e in w.edges() {
            lane_load[e.lane as usize] += 1;
        }
        assert_eq!(lane_load, [3, 3]);
    }

    #[test]
    fn ragged_final_window() {
        let m = matrix_6x9();
        let plan = WindowPlan::new(&m, 4, false);
        let w1 = plan.window(&m, 1);
        assert_eq!(w1.rows(), 2); // rows 4 and 5 only
    }

    #[test]
    fn lb_window_covers_all_edges_once() {
        let m = matrix_6x9();
        let plan = WindowPlan::new(&m, 3, true);
        let total: usize = (0..plan.window_count())
            .map(|w| plan.window(&m, w).nnz())
            .sum();
        assert_eq!(total, m.nnz());
    }

    #[test]
    fn lb_lane_assignment_is_within_bounds() {
        let coo = gen::uniform(50, 70, 400, 3);
        let m = CsrMatrix::from(&coo);
        let plan = WindowPlan::new(&m, 8, true);
        for w in 0..plan.window_count() {
            for e in plan.window(&m, w).edges() {
                assert!(e.lane < 8);
            }
        }
    }

    #[test]
    fn fill_window_reuses_buffers_and_matches_fresh_window() {
        let coo = gen::uniform(40, 40, 300, 11);
        let m = CsrMatrix::from(&coo);
        for lb in [false, true] {
            let plan = WindowPlan::new(&m, 8, lb);
            let mut reused = Window::new();
            let mut scratch = LaneScratch::new();
            for w in 0..plan.window_count() {
                plan.fill_window(&m, w, &mut reused, &mut scratch);
                assert_eq!(reused, plan.window(&m, w), "lb {lb} window {w}");
            }
        }
    }

    #[test]
    fn band_fill_partitions_edges_without_reordering() {
        let m = matrix_6x9();
        for lb in [false, true] {
            let plan = WindowPlan::new(&m, 3, lb);
            for w in 0..plan.window_count() {
                let full = plan.window(&m, w);
                let mut band = Window::new();
                // Bands [0, 4) and [4, 9): every edge lands in exactly one,
                // in its original within-row position with its lane intact.
                let mut rebuilt: Vec<Vec<WindowEdge>> = vec![Vec::new(); full.rows()];
                for cols in [0..4u32, 4..9u32] {
                    band.fill_band_from(&full, cols.clone());
                    assert_eq!(band.rows(), full.rows());
                    for (i, row) in band.iter_rows().enumerate() {
                        assert!(row.iter().all(|e| cols.contains(&e.col)));
                        rebuilt[i].extend_from_slice(row);
                    }
                }
                for (i, mut row) in rebuilt.into_iter().enumerate() {
                    row.sort_by_key(|e| e.col);
                    let mut expected = full.row_edges(i).to_vec();
                    expected.sort_by_key(|e| e.col);
                    assert_eq!(row, expected, "lb {lb} window {w} row {i}");
                }
            }
        }
    }

    #[test]
    fn full_range_band_fill_equals_the_window() {
        let m = matrix_6x9();
        let plan = WindowPlan::new(&m, 4, true);
        let full = plan.window(&m, 0);
        let mut band = Window::new();
        band.fill_band_from(&full, 0..9);
        assert_eq!(band, full);
    }

    #[test]
    fn row_ptr_is_consistent() {
        let m = matrix_6x9();
        let plan = WindowPlan::new(&m, 4, false);
        let w = plan.window(&m, 0);
        assert_eq!(w.row_ptr().len(), w.rows() + 1);
        assert_eq!(*w.row_ptr().last().unwrap() as usize, w.nnz());
        let concatenated: Vec<_> = w.iter_rows().flatten().copied().collect();
        assert_eq!(concatenated, w.edges().to_vec());
    }
}
