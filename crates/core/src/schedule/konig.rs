//! Optimal bipartite edge coloring (Kőnig's theorem).
//!
//! For bipartite multigraphs the chromatic index equals the maximum degree
//! Δ — exactly the paper's Eq. 1 value. Listing 1's greedy matching can
//! exceed Δ; this module implements the classical alternating-path
//! algorithm that always achieves it, giving the reproduction an *ablation
//! axis*: how much utilization does the paper's heuristic leave on the
//! table versus a provably optimal schedule? (Answer, per the `ablation`
//! bench: very little on real sparsity patterns.)
//!
//! Algorithm: insert edges one at a time. For edge `(u, v)` find a color
//! `a` free at `u` and `b` free at `v`; if `a == b` assign it, otherwise
//! flip the `a/b`-alternating path starting at `v` (it cannot reach `u` in
//! a bipartite graph, by parity), after which `a` is free at both ends.
//! O(E·Δ) with the simple free-color scan used here — fine for the ablation
//! sizes; the production scheduler remains the greedy.
//!
//! Like the greedy colorers, this writes a color per edge into the caller's
//! [`ColorScratch`]; the color tables are flat `vertex × Δ` arrays reused
//! across windows.

use super::windows::Window;
use super::workspace::{ColorScratch, NONE};

/// Colors a window with exactly its Vizing/Eq. 1 bound of colors. Writes a
/// color per edge into `scratch.edge_color` and returns the color count
/// (which can be below Δ only when trailing colors end up empty).
pub fn color_window_konig(window: &Window, l: usize, scratch: &mut ColorScratch) -> u32 {
    let nnz = window.nnz();
    scratch.begin_window(nnz, l);
    let delta = scratch.vizing_bound(window, l);
    if delta == 0 {
        return 0;
    }
    let n_rows = window.rows();
    let edges = window.edges();
    scratch.fill_edge_rows(window);

    // color_at_row[u * delta + c] / color_at_lane[v * delta + c] = edge id
    // using color c at that vertex, or NONE.
    scratch.color_at_row.clear();
    scratch.color_at_row.resize(n_rows * delta, NONE);
    scratch.color_at_lane.clear();
    scratch.color_at_lane.resize(l * delta, NONE);

    let free_color = |table: &[u32]| -> usize {
        table
            .iter()
            .position(|&e| e == NONE)
            .expect("degree <= delta guarantees a free color")
    };

    for eid in 0..nnz {
        let u = scratch.edge_row[eid] as usize;
        let v = edges[eid].lane as usize;
        let a = free_color(&scratch.color_at_row[u * delta..(u + 1) * delta]);
        let b = free_color(&scratch.color_at_lane[v * delta..(v + 1) * delta]);
        if a == b {
            scratch.edge_color[eid] = a as u32;
            scratch.color_at_row[u * delta + a] = eid as u32;
            scratch.color_at_lane[v * delta + a] = eid as u32;
            continue;
        }
        // Flip the a/b alternating path starting at lane v with color a.
        // After flipping, color a is free at v, so edge eid takes a. The
        // path cannot reach u: rows on the path are always entered through
        // a-colored edges, and a is free at u (Kőnig's parity argument).
        // First walk and collect the path, then rewrite all its colors —
        // flipping in place while walking would clobber table entries of
        // path edges not yet visited.
        scratch.path.clear();
        let mut at_lane_side = true;
        let mut vertex = v;
        let mut want = a; // color of the edge being followed
        loop {
            let cur = if at_lane_side {
                scratch.color_at_lane[vertex * delta + want]
            } else {
                scratch.color_at_row[vertex * delta + want]
            };
            if cur == NONE {
                break;
            }
            let edge = cur as usize;
            scratch.path.push(cur);
            vertex = if at_lane_side {
                scratch.edge_row[edge] as usize
            } else {
                edges[edge].lane as usize
            };
            at_lane_side = !at_lane_side;
            want = if want == a { b } else { a };
        }
        // The a/b component containing v is exactly this path (v misses b),
        // so clearing both colors at path endpoints touches only path edges.
        for i in 0..scratch.path.len() {
            let edge = scratch.path[i] as usize;
            let c = scratch.edge_color[edge] as usize;
            scratch.color_at_row[scratch.edge_row[edge] as usize * delta + c] = NONE;
            scratch.color_at_lane[edges[edge].lane as usize * delta + c] = NONE;
        }
        for i in 0..scratch.path.len() {
            let edge = scratch.path[i] as usize;
            let old = scratch.edge_color[edge] as usize;
            let new = if old == a { b } else { a };
            scratch.edge_color[edge] = new as u32;
            scratch.color_at_row[scratch.edge_row[edge] as usize * delta + new] = edge as u32;
            scratch.color_at_lane[edges[edge].lane as usize * delta + new] = edge as u32;
        }
        debug_assert_eq!(
            scratch.color_at_row[u * delta + a],
            NONE,
            "path flip freed color a at u"
        );
        debug_assert_eq!(
            scratch.color_at_lane[v * delta + a],
            NONE,
            "path flip freed color a at v"
        );
        scratch.edge_color[eid] = a as u32;
        scratch.color_at_row[u * delta + a] = eid as u32;
        scratch.color_at_lane[v * delta + a] = eid as u32;
    }

    // Drop trailing empty colors (can occur when Δ comes from a vertex whose
    // edges all packed early) — cycle count must reflect reality. A color
    // below a used one can never be empty: the insertion always prefers the
    // lowest free color at the row, so count the highest used color instead
    // of materializing buckets.
    let max_used = scratch.edge_color.iter().map(|&c| c + 1).max().unwrap_or(0);
    debug_assert!(max_used as usize <= delta);
    max_used
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::scheduled::WindowSchedule;
    use crate::schedule::windows::WindowPlan;
    use crate::schedule::workspace::ColoringWorkspace;
    use gust_sparse::prelude::*;

    fn color_to_schedule(window: &Window, l: usize) -> WindowSchedule {
        let mut ws = ColoringWorkspace::new();
        let colors = color_window_konig(window, l, &mut ws.scratch);
        ws.scratch
            .assemble(window, colors, window.vizing_bound(l) as u32, 0)
    }

    fn assert_valid(schedule: &WindowSchedule, window: &Window) {
        let mut total = 0usize;
        for c in 0..schedule.colors() {
            let bucket: Vec<_> = schedule.iter_color(c).collect();
            let mut lanes: Vec<u32> = bucket.iter().map(|s| s.lane).collect();
            lanes.sort_unstable();
            assert!(lanes.windows(2).all(|w| w[0] != w[1]), "lane collision");
            let mut adders: Vec<u32> = bucket.iter().map(|s| s.row_mod).collect();
            adders.sort_unstable();
            assert!(adders.windows(2).all(|w| w[0] != w[1]), "adder collision");
            total += bucket.len();
        }
        assert_eq!(total, window.nnz());
    }

    fn fig5_matrix() -> CsrMatrix {
        let rows: [&[usize]; 6] = [
            &[0, 2, 3, 4, 7],
            &[0, 1, 5, 6, 7],
            &[1, 2, 3, 8],
            &[0, 2, 4, 8],
            &[2, 5, 6, 7],
            &[0, 1, 3, 7],
        ];
        let mut coo = CooMatrix::new(6, 9);
        for (r, cols) in rows.iter().enumerate() {
            for &c in cols.iter() {
                coo.push(r, c, 1.0 + (r * 9 + c) as f32).unwrap();
            }
        }
        CsrMatrix::from(&coo)
    }

    #[test]
    fn fig5_example_reaches_the_paper_counts_exactly() {
        // Paper: first window 5 colors, second 4, total cycles 11.
        let m = fig5_matrix();
        let plan = WindowPlan::new(&m, 3, false);
        let w0 = plan.window(&m, 0);
        let w1 = plan.window(&m, 1);
        let c0 = color_to_schedule(&w0, 3);
        let c1 = color_to_schedule(&w1, 3);
        assert_valid(&c0, &w0);
        assert_valid(&c1, &w1);
        assert_eq!(c0.colors(), 5);
        assert_eq!(c1.colors(), 4);
        assert_eq!(
            c0.colors() + c1.colors() + 2,
            11,
            "paper's total cycle count"
        );
    }

    #[test]
    fn always_achieves_the_vizing_bound() {
        let mut ws = ColoringWorkspace::new();
        for seed in 0..8 {
            let coo = gen::uniform(24, 40, 240, seed);
            let m = CsrMatrix::from(&coo);
            for lb in [false, true] {
                let plan = WindowPlan::new(&m, 8, lb);
                for wi in 0..plan.window_count() {
                    // Reuse one workspace across every window to exercise
                    // scratch reuse on the optimal colorer too.
                    plan.fill_window(&m, wi, &mut ws.window, &mut ws.lanes);
                    let colors = color_window_konig(&ws.window, 8, &mut ws.scratch);
                    let bound = ws.window.vizing_bound(8);
                    let schedule = ws.scratch.assemble(&ws.window, colors, bound as u32, 0);
                    assert_valid(&schedule, &ws.window);
                    assert_eq!(colors as usize, bound, "seed {seed} lb {lb} window {wi}");
                }
            }
        }
    }

    #[test]
    fn never_beaten_by_greedy() {
        use crate::schedule::edge_coloring::color_window_grouped;
        let mut ws = ColoringWorkspace::new();
        for seed in 20..26 {
            let coo = gen::power_law(60, 60, 500, 1.8, seed);
            let m = CsrMatrix::from(&coo);
            let plan = WindowPlan::new(&m, 16, false);
            for wi in 0..plan.window_count() {
                let w = plan.window(&m, wi);
                let optimal = color_window_konig(&w, 16, &mut ws.scratch);
                let greedy = color_window_grouped(&w, 16, &mut ws.scratch);
                assert!(optimal <= greedy, "optimal {optimal} > greedy {greedy}");
                assert_eq!(optimal as usize, w.vizing_bound(16));
            }
        }
    }

    #[test]
    fn empty_window_has_zero_colors() {
        let coo = CooMatrix::from_triplets(8, 8, vec![(0, 0, 1.0)]).unwrap();
        let m = CsrMatrix::from(&coo);
        let plan = WindowPlan::new(&m, 4, false);
        // Window 1 (rows 4..8) is empty.
        let w1 = plan.window(&m, 1);
        let mut ws = ColoringWorkspace::new();
        assert_eq!(color_window_konig(&w1, 4, &mut ws.scratch), 0);
    }

    #[test]
    fn multigraph_edges_colored_correctly() {
        // Two parallel edges row0->lane0 force 2 colors even though the
        // simple-graph degree is 1.
        let coo = CooMatrix::from_triplets(1, 8, vec![(0, 0, 1.0), (0, 4, 2.0)]).unwrap();
        let m = CsrMatrix::from(&coo);
        let plan = WindowPlan::new(&m, 4, false);
        let w = plan.window(&m, 0);
        let schedule = color_to_schedule(&w, 4);
        assert_valid(&schedule, &w);
        assert_eq!(schedule.colors(), 2);
    }
}
