//! Optimal bipartite edge coloring (Kőnig's theorem).
//!
//! For bipartite multigraphs the chromatic index equals the maximum degree
//! Δ — exactly the paper's Eq. 1 value. Listing 1's greedy matching can
//! exceed Δ; this module implements the classical alternating-path
//! algorithm that always achieves it, giving the reproduction an *ablation
//! axis*: how much utilization does the paper's heuristic leave on the
//! table versus a provably optimal schedule? (Answer, per the `ablation`
//! bench: very little on real sparsity patterns.)
//!
//! Algorithm: insert edges one at a time. For edge `(u, v)` find a color
//! `a` free at `u` and `b` free at `v`; if `a == b` assign it, otherwise
//! flip the `a/b`-alternating path starting at `v` (it cannot reach `u` in
//! a bipartite graph, by parity), after which `a` is free at both ends.
//! O(E·Δ) with the simple free-color scan used here — fine for the ablation
//! sizes; the production scheduler remains the greedy.

use super::scheduled::ScheduledSlot;
use super::windows::Window;

/// Colors a window with exactly its Vizing/Eq. 1 bound of colors.
///
/// Returns slots grouped per color, like the greedy colorers.
#[must_use]
pub fn color_window_konig(window: &Window, l: usize) -> Vec<Vec<ScheduledSlot>> {
    let delta = window.vizing_bound(l);
    if delta == 0 {
        return Vec::new();
    }
    let n_rows = window.per_row.len();

    // color_at_row[u][c] / color_at_lane[v][c] = edge id using color c at
    // that vertex, or NONE.
    const NONE: u32 = u32::MAX;
    let mut color_at_row = vec![vec![NONE; delta]; n_rows];
    let mut color_at_lane = vec![vec![NONE; delta]; l];

    // Flat edge arrays.
    let mut e_row: Vec<u32> = Vec::new();
    let mut e_lane: Vec<u32> = Vec::new();
    let mut e_col: Vec<u32> = Vec::new();
    let mut e_val: Vec<f32> = Vec::new();
    let mut e_color: Vec<u32> = Vec::new();
    for (row, edges) in window.per_row.iter().enumerate() {
        for e in edges {
            e_row.push(row as u32);
            e_lane.push(e.lane);
            e_col.push(e.col);
            e_val.push(e.value);
            e_color.push(NONE);
        }
    }

    let free_color = |table: &[u32]| -> usize {
        table
            .iter()
            .position(|&e| e == NONE)
            .expect("degree <= delta guarantees a free color")
    };

    for eid in 0..e_row.len() {
        let u = e_row[eid] as usize;
        let v = e_lane[eid] as usize;
        let a = free_color(&color_at_row[u]); // free at the row
        let b = free_color(&color_at_lane[v]); // free at the lane
        if a == b {
            e_color[eid] = a as u32;
            color_at_row[u][a] = eid as u32;
            color_at_lane[v][a] = eid as u32;
            continue;
        }
        // Flip the a/b alternating path starting at lane v with color a.
        // After flipping, color a is free at v, so edge eid takes a. The
        // path cannot reach u: rows on the path are always entered through
        // a-colored edges, and a is free at u (Kőnig's parity argument).
        // First walk and collect the path, then rewrite all its colors —
        // flipping in place while walking would clobber table entries of
        // path edges not yet visited.
        let mut path: Vec<usize> = Vec::new();
        let mut at_lane_side = true;
        let mut vertex = v;
        let mut want = a; // color of the edge being followed
        loop {
            let cur = if at_lane_side {
                color_at_lane[vertex][want]
            } else {
                color_at_row[vertex][want]
            };
            if cur == NONE {
                break;
            }
            let edge = cur as usize;
            path.push(edge);
            vertex = if at_lane_side {
                e_row[edge] as usize
            } else {
                e_lane[edge] as usize
            };
            at_lane_side = !at_lane_side;
            want = if want == a { b } else { a };
        }
        // The a/b component containing v is exactly this path (v misses b),
        // so clearing both colors at path endpoints touches only path edges.
        for &edge in &path {
            let c = e_color[edge] as usize;
            color_at_row[e_row[edge] as usize][c] = NONE;
            color_at_lane[e_lane[edge] as usize][c] = NONE;
        }
        for &edge in &path {
            let old = e_color[edge] as usize;
            let new = if old == a { b } else { a };
            e_color[edge] = new as u32;
            color_at_row[e_row[edge] as usize][new] = edge as u32;
            color_at_lane[e_lane[edge] as usize][new] = edge as u32;
        }
        debug_assert_eq!(color_at_row[u][a], NONE, "path flip freed color a at u");
        debug_assert_eq!(color_at_lane[v][a], NONE, "path flip freed color a at v");
        e_color[eid] = a as u32;
        color_at_row[u][a] = eid as u32;
        color_at_lane[v][a] = eid as u32;
    }

    let mut per_color: Vec<Vec<ScheduledSlot>> = vec![Vec::new(); delta];
    for eid in 0..e_row.len() {
        let c = e_color[eid] as usize;
        per_color[c].push(ScheduledSlot {
            lane: e_lane[eid],
            row_mod: e_row[eid],
            col: e_col[eid],
            value: e_val[eid],
        });
    }
    // Drop trailing empty colors (can occur when Δ comes from a vertex whose
    // edges all packed early) — cycle count must reflect reality.
    while per_color.last().is_some_and(Vec::is_empty) {
        per_color.pop();
    }
    per_color
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::windows::WindowPlan;
    use gust_sparse::prelude::*;

    fn assert_valid(per_color: &[Vec<ScheduledSlot>], window: &Window) {
        let mut total = 0usize;
        for bucket in per_color {
            let mut lanes: Vec<u32> = bucket.iter().map(|s| s.lane).collect();
            lanes.sort_unstable();
            assert!(lanes.windows(2).all(|w| w[0] != w[1]), "lane collision");
            let mut adders: Vec<u32> = bucket.iter().map(|s| s.row_mod).collect();
            adders.sort_unstable();
            assert!(adders.windows(2).all(|w| w[0] != w[1]), "adder collision");
            total += bucket.len();
        }
        assert_eq!(total, window.nnz());
    }

    fn fig5_matrix() -> CsrMatrix {
        let rows: [&[usize]; 6] = [
            &[0, 2, 3, 4, 7],
            &[0, 1, 5, 6, 7],
            &[1, 2, 3, 8],
            &[0, 2, 4, 8],
            &[2, 5, 6, 7],
            &[0, 1, 3, 7],
        ];
        let mut coo = CooMatrix::new(6, 9);
        for (r, cols) in rows.iter().enumerate() {
            for &c in cols.iter() {
                coo.push(r, c, 1.0 + (r * 9 + c) as f32).unwrap();
            }
        }
        CsrMatrix::from(&coo)
    }

    #[test]
    fn fig5_example_reaches_the_paper_counts_exactly() {
        // Paper: first window 5 colors, second 4, total cycles 11.
        let m = fig5_matrix();
        let plan = WindowPlan::new(&m, 3, false);
        let w0 = plan.window(&m, 0);
        let w1 = plan.window(&m, 1);
        let c0 = color_window_konig(&w0, 3);
        let c1 = color_window_konig(&w1, 3);
        assert_valid(&c0, &w0);
        assert_valid(&c1, &w1);
        assert_eq!(c0.len(), 5);
        assert_eq!(c1.len(), 4);
        assert_eq!(c0.len() + c1.len() + 2, 11, "paper's total cycle count");
    }

    #[test]
    fn always_achieves_the_vizing_bound() {
        for seed in 0..8 {
            let coo = gen::uniform(24, 40, 240, seed);
            let m = CsrMatrix::from(&coo);
            for lb in [false, true] {
                let plan = WindowPlan::new(&m, 8, lb);
                for wi in 0..plan.window_count() {
                    let w = plan.window(&m, wi);
                    let colored = color_window_konig(&w, 8);
                    assert_valid(&colored, &w);
                    assert_eq!(
                        colored.len(),
                        w.vizing_bound(8),
                        "seed {seed} lb {lb} window {wi}"
                    );
                }
            }
        }
    }

    #[test]
    fn never_beaten_by_greedy() {
        use crate::schedule::edge_coloring::color_window_grouped;
        for seed in 20..26 {
            let coo = gen::power_law(60, 60, 500, 1.8, seed);
            let m = CsrMatrix::from(&coo);
            let plan = WindowPlan::new(&m, 16, false);
            for wi in 0..plan.window_count() {
                let w = plan.window(&m, wi);
                let optimal = color_window_konig(&w, 16).len();
                let greedy = color_window_grouped(&w, 16).len();
                assert!(optimal <= greedy, "optimal {optimal} > greedy {greedy}");
                assert_eq!(optimal, w.vizing_bound(16));
            }
        }
    }

    #[test]
    fn empty_window_has_zero_colors() {
        let coo = CooMatrix::from_triplets(8, 8, vec![(0, 0, 1.0)]).unwrap();
        let m = CsrMatrix::from(&coo);
        let plan = WindowPlan::new(&m, 4, false);
        // Window 1 (rows 4..8) is empty.
        let w1 = plan.window(&m, 1);
        assert_eq!(color_window_konig(&w1, 4).len(), 0);
    }

    #[test]
    fn multigraph_edges_colored_correctly() {
        // Two parallel edges row0->lane0 force 2 colors even though the
        // simple-graph degree is 1.
        let coo =
            CooMatrix::from_triplets(1, 8, vec![(0, 0, 1.0), (0, 4, 2.0)]).unwrap();
        let m = CsrMatrix::from(&coo);
        let plan = WindowPlan::new(&m, 4, false);
        let w = plan.window(&m, 0);
        let colored = color_window_konig(&w, 4);
        assert_valid(&colored, &w);
        assert_eq!(colored.len(), 2);
    }
}
