//! The §7 GPU mapping sketch, made concrete.
//!
//! The paper's conclusion observes that GUST "is applicable to any hardware
//! platform that can provide a set of multipliers and adders, and a crossbar
//! connector. For example, consider GPUs. Each block of threads … has a
//! shared memory that functions as a crossbar connector by design … the
//! implementable GUST is a small length-k GUST for each block."
//!
//! [`GpuMapping`] models exactly that: `blocks` cooperative thread arrays,
//! each acting as one length-`threads_per_block` GUST whose "crossbar" is
//! the block's shared memory. Execution timing reuses the §5.5 parallel
//! arrangement (windows distribute across blocks); the extra constraint a
//! GPU adds is the shared-memory budget per block, which this module
//! checks the same way §4 checks the Alveo's on-chip capacity.

use crate::config::GustConfig;
use crate::parallel::{ParallelGust, ParallelRun, WindowAssignment};
use crate::schedule::scheduled::ScheduledMatrix;
use gust_sparse::CsrMatrix;

/// Shared memory per streaming multiprocessor block on a typical discrete
/// GPU (48 KB — the portable lower bound the paper's sketch would target).
pub const TYPICAL_SHARED_MEMORY_BYTES: usize = 48 * 1024;

/// A GUST-on-GPU configuration: `blocks` × length-`threads_per_block`.
///
/// # Example
///
/// ```
/// use gust::gpu::GpuMapping;
///
/// let mapping = GpuMapping::new(8, 32);
/// assert_eq!(mapping.total_lanes(), 256);
/// assert!(mapping.shared_memory_bytes_per_block() < 48 * 1024);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GpuMapping {
    blocks: usize,
    threads_per_block: usize,
}

impl GpuMapping {
    /// Creates a mapping of `blocks` blocks, each a length-`threads`
    /// GUST.
    ///
    /// # Panics
    ///
    /// Panics if either count is zero.
    #[must_use]
    pub fn new(blocks: usize, threads_per_block: usize) -> Self {
        assert!(blocks > 0, "need at least one block");
        assert!(threads_per_block > 0, "need at least one thread per block");
        Self {
            blocks,
            threads_per_block,
        }
    }

    /// Blocks in the grid.
    #[must_use]
    pub fn blocks(&self) -> usize {
        self.blocks
    }

    /// Threads (= GUST lanes) per block.
    #[must_use]
    pub fn threads_per_block(&self) -> usize {
        self.threads_per_block
    }

    /// Total lanes across the grid.
    #[must_use]
    pub fn total_lanes(&self) -> usize {
        self.blocks * self.threads_per_block
    }

    /// Per-block GUST configuration (each block is one engine).
    #[must_use]
    pub fn engine_config(&self) -> GustConfig {
        GustConfig::new(self.threads_per_block)
    }

    /// Shared memory one block needs for its "crossbar": the per-thread
    /// partial-product slot, the per-adder accumulator, and a double buffer
    /// of one timestep of inputs — the Buffer Filler's job, on chip.
    #[must_use]
    pub fn shared_memory_bytes_per_block(&self) -> usize {
        let l = self.threads_per_block;
        let partial_products = 4 * l; // f32 per lane
        let accumulators = 4 * l; // f32 per adder
        let timestep = (l * (64 + usize::BITS as usize)).div_ceil(8); // value+col+row idx
        partial_products + accumulators + 2 * timestep
    }

    /// Whether the mapping fits the given shared-memory budget (see
    /// [`TYPICAL_SHARED_MEMORY_BYTES`]).
    #[must_use]
    pub fn fits_shared_memory(&self, budget_bytes: usize) -> bool {
        self.shared_memory_bytes_per_block() <= budget_bytes
    }

    /// Largest per-block length that fits the budget.
    #[must_use]
    pub fn max_threads_for_budget(budget_bytes: usize) -> usize {
        let mut l = 1usize;
        while GpuMapping::new(1, l * 2).shared_memory_bytes_per_block() <= budget_bytes {
            l *= 2;
        }
        l
    }

    /// Schedules the matrix for the per-block length (one schedule serves
    /// every block, as in §5.5).
    #[must_use]
    pub fn schedule(&self, matrix: &CsrMatrix) -> ScheduledMatrix {
        ParallelGust::new(self.engine_config(), self.blocks).schedule(matrix)
    }

    /// Executes one SpMV across the grid: windows distribute over blocks
    /// least-loaded (a GPU scheduler balances CTAs the same way).
    ///
    /// # Panics
    ///
    /// Panics on schedule/vector mismatches, as [`ParallelGust::execute`].
    #[must_use]
    pub fn execute(&self, schedule: &ScheduledMatrix, x: &[f32]) -> ParallelRun {
        ParallelGust::new(self.engine_config(), self.blocks)
            .with_assignment(WindowAssignment::LeastLoaded)
            .execute(schedule, x)
    }

    /// Executes a column-major panel of `batch` right-hand sides across
    /// the grid (the multi-RHS pattern a GPU would batch per CTA). Panel
    /// layout and one-pass kernel as [`crate::Gust::execute_batch`].
    ///
    /// # Panics
    ///
    /// Panics on schedule/panel mismatches, as
    /// [`ParallelGust::execute_batch`].
    #[must_use]
    pub fn execute_batch(
        &self,
        schedule: &ScheduledMatrix,
        b: &[f32],
        batch: usize,
    ) -> (Vec<f32>, gust_sim::ExecutionReport) {
        ParallelGust::new(self.engine_config(), self.blocks)
            .with_assignment(WindowAssignment::LeastLoaded)
            .execute_batch(schedule, b, batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gust_sparse::prelude::*;

    #[test]
    fn paper_sketch_fits_shared_memory() {
        // "a small length-k GUST for each block": length 32-64 comfortably
        // fits 48 KB of shared memory.
        for l in [32usize, 64] {
            let mapping = GpuMapping::new(16, l);
            assert!(
                mapping.fits_shared_memory(TYPICAL_SHARED_MEMORY_BYTES),
                "l={l}"
            );
        }
    }

    #[test]
    fn max_threads_for_budget_is_maximal() {
        let l = GpuMapping::max_threads_for_budget(TYPICAL_SHARED_MEMORY_BYTES);
        assert!(GpuMapping::new(1, l).fits_shared_memory(TYPICAL_SHARED_MEMORY_BYTES));
        assert!(!GpuMapping::new(1, l * 2).fits_shared_memory(TYPICAL_SHARED_MEMORY_BYTES));
    }

    #[test]
    fn grid_execution_is_correct() {
        let m = CsrMatrix::from(&gen::uniform(128, 128, 900, 3));
        let x: Vec<f32> = (0..128).map(|i| (i % 9) as f32 - 4.0).collect();
        let mapping = GpuMapping::new(4, 16);
        let schedule = mapping.schedule(&m);
        let run = mapping.execute(&schedule, &x);
        assert_vectors_close(&run.output, &reference_spmv(&m, &x), 1e-3);
        assert_eq!(run.per_engine_cycles.len(), 4);
    }

    #[test]
    fn grid_batched_execution_matches_per_vector_columns() {
        let m = CsrMatrix::from(&gen::uniform(96, 96, 700, 7));
        let mapping = GpuMapping::new(4, 16);
        let schedule = mapping.schedule(&m);
        let batch = 3usize;
        let panel: Vec<f32> = (0..96 * batch).map(|i| (i % 13) as f32 - 6.0).collect();
        let (y, report) = mapping.execute_batch(&schedule, &panel, batch);
        for j in 0..batch {
            let single = mapping.execute(&schedule, &panel[j * 96..(j + 1) * 96]);
            // The grid runs the auto-selected backend: under AVX2 the
            // batched panel walk fuses into FMA, so columns match the
            // per-vector path within the contraction bound (bit-exact
            // equality under a pinned scalar backend is covered by
            // tests/backend_equivalence.rs).
            assert_vectors_close(&y[j * 96..(j + 1) * 96], &single.output, 1e-5);
            assert_eq!(report.cycles, single.report.cycles * batch as u64);
        }
    }

    #[test]
    fn more_blocks_reduce_makespan() {
        let m = CsrMatrix::from(&gen::uniform(256, 256, 2000, 5));
        let x: Vec<f32> = (0..256).map(|i| (i % 5) as f32).collect();
        let small = GpuMapping::new(1, 32);
        let large = GpuMapping::new(8, 32);
        let schedule = small.schedule(&m); // same per-block length
        let t1 = small.execute(&schedule, &x).report.cycles;
        let t8 = large.execute(&schedule, &x).report.cycles;
        assert!(t8 < t1, "8 blocks {t8} vs 1 block {t1}");
    }

    #[test]
    fn shared_memory_grows_linearly_with_length() {
        let a = GpuMapping::new(1, 32).shared_memory_bytes_per_block();
        let b = GpuMapping::new(1, 64).shared_memory_bytes_per_block();
        let ratio = b as f64 / a as f64;
        assert!((1.8..2.2).contains(&ratio), "ratio {ratio}");
    }
}
