//! Schedule registry and resilient SpMV serving runtime.
//!
//! This module turns the engine into a long-lived multi-tenant service:
//! callers register matrices once, then submit single-vector SpMV
//! requests that the runtime batches into the engine's column-major
//! panel walks ([`crate::Gust::try_execute_batch`]). Two pieces:
//!
//! * [`ScheduleRegistry`] — a content-addressed, in-RAM memo of
//!   prepared schedules keyed by a hash of the CSR structure, backed by
//!   the existing on-disk schedule cache (GUST/GUSB/GUTL containers).
//!   A corrupt cache file is quarantined on disk
//!   ([`gust_sparse::io::quarantine_corrupt`]) and mirrored in RAM as a
//!   poisoned-entry eviction; builds are retried with jittered
//!   exponential backoff; a matrix whose schedule repeatedly fails to
//!   build or execute trips a per-entry circuit breaker and is served
//!   **degraded** through the reference [`gust_sparse::CsrMatrix::spmv`]
//!   kernel — correct, slower, never an error.
//! * [`SpmvServer`] — a dispatcher thread over per-tenant bounded
//!   admission queues. A full queue sheds the request with
//!   [`GustError::Overloaded`] (explicit backpressure, never silent
//!   drops). Compatible requests (same matrix, same element type) from
//!   *different* tenants are aggregated round-robin into one panel, so
//!   no tenant can starve another. Per-request deadlines are enforced
//!   at the aggregation boundary, the execution boundary, and
//!   client-side in [`Ticket::wait`], so a request can never hang past
//!   its deadline. Execution faults (including injected
//!   `worker_panic` / `exec_delay` faults — see
//!   [`gust_sparse::faults`]) are contained, retried, and finally
//!   degraded to the reference kernel.
//!
//! Degradation is always *semantics-preserving*: every response is the
//! exact SpMV of the registered matrix with the submitted vector; only
//! latency and the `degraded` flag change.
//!
//! # Quickstart
//!
//! ```
//! use gust::prelude::*;
//! use gust::serve::{ScheduleRegistry, ServeConfig, SpmvServer};
//! use gust_sparse::prelude::*;
//! use std::sync::Arc;
//!
//! let csr = CsrMatrix::from(&gen::uniform(32, 32, 120, 7));
//! let registry = Arc::new(ScheduleRegistry::new(Gust::new(GustConfig::new(8))));
//! let server = SpmvServer::start(registry, ServeConfig::default());
//!
//! let key = server.register(&csr);
//! let x: Vec<f32> = (0..32).map(|i| (i % 5) as f32).collect();
//! let resp = server.call(0, key, x.clone()).unwrap();
//! assert_vectors_close(&resp.output, &csr.spmv(&x), 1e-4);
//! ```

// The serving layer must never deny service over a recoverable local
// failure: no `unwrap` panics in production paths (the tests module is
// exempted below).
#![deny(clippy::unwrap_used)]

use crate::engine::Gust;
use crate::error::GustError;
use crate::schedule::banded::BandedSchedule;
use crate::schedule::scheduled::ScheduledMatrix;
use crate::schedule::serialize;
use crate::schedule::tiled::TiledSchedule;
use crate::verify::{AuditReport, Auditable, VerifiedSchedule};
use gust_sparse::{faults, CsrMatrix};
use std::collections::{BTreeMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Locks `m`, recovering the guard when the lock is poisoned.
///
/// A poisoned lock means some thread panicked while holding it. Every
/// critical section in this module leaves its guarded state consistent
/// at every await-free step (counters bumped atomically under the lock,
/// queue entries pushed/popped whole), and the serving layer's contract
/// is to keep serving after a *contained* panic — so the right response
/// to poison here is to keep going, not to cascade the panic into every
/// client thread.
fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Double-precision row-order reference SpMV over a genuinely `f64`
/// input vector.
///
/// [`CsrMatrix::spmv_f64`] widens an `f32` input; the serving runtime's
/// degraded path for `f64` requests needs the reference result for the
/// *submitted* `f64` vector, so it lives here. Summation is in row
/// order, matching the convention of [`CsrMatrix::spmv`].
///
/// # Panics
///
/// Panics when `x.len()` differs from the matrix's column count.
#[must_use]
pub fn reference_spmv_f64(matrix: &CsrMatrix, x: &[f64]) -> Vec<f64> {
    assert_eq!(x.len(), matrix.cols(), "input vector length mismatch");
    let (row_ptr, col_idx, values) = matrix.raw_parts();
    let mut y = vec![0.0f64; matrix.rows()];
    for (i, out) in y.iter_mut().enumerate() {
        let mut acc = 0.0f64;
        for k in row_ptr[i]..row_ptr[i + 1] {
            acc += f64::from(values[k]) * x[col_idx[k] as usize];
        }
        *out = acc;
    }
    y
}

/// Content-hash identity of a registered matrix.
///
/// The key is an FNV-1a 64 digest of the CSR structure (shape plus raw
/// `row_ptr` / `col_idx` / `values` bytes), so registering the same
/// matrix twice — even from different loads of the same file — yields
/// the same key and shares one schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MatrixKey(u64);

impl MatrixKey {
    /// The raw 64-bit content hash.
    #[must_use]
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

/// FNV-1a 64 over the matrix's shape and raw CSR arrays.
fn content_hash(matrix: &CsrMatrix) -> MatrixKey {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
    };
    eat(&(matrix.rows() as u64).to_le_bytes());
    eat(&(matrix.cols() as u64).to_le_bytes());
    let (row_ptr, col_idx, values) = matrix.raw_parts();
    for &p in row_ptr {
        eat(&(p as u64).to_le_bytes());
    }
    for &c in col_idx {
        eat(&c.to_le_bytes());
    }
    for &v in values {
        eat(&v.to_bits().to_le_bytes());
    }
    MatrixKey(h)
}

/// splitmix64 step — the registry's deterministic jitter source (no
/// external RNG crates; same generator family as
/// [`gust_sparse::faults`]).
fn splitmix64(state: &mut u64) {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
}

/// One splitmix64 output for the current state.
fn splitmix64_mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Which prepared-schedule family the registry builds and caches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScheduleKind {
    /// The flat `M_sch`/`Row_sch`/`Col_sch` schedule (GUST container).
    Flat,
    /// The cache-blocked banded schedule (GUSB container).
    Banded,
    /// The 2D row×column tiled schedule (GUTL container).
    Tiled,
}

/// A memoized, ready-to-execute schedule of any family.
#[derive(Debug)]
pub enum PreparedSchedule {
    /// A flat schedule, executed via [`Gust::try_execute_batch`].
    Flat(ScheduledMatrix),
    /// A banded schedule, executed via [`Gust::try_execute_batch_banded`].
    Banded(BandedSchedule),
    /// A tiled schedule, executed via [`Gust::try_execute_batch_tiled`].
    Tiled(TiledSchedule),
}

impl PreparedSchedule {
    /// The family this schedule belongs to.
    #[must_use]
    pub fn kind(&self) -> ScheduleKind {
        match self {
            Self::Flat(_) => ScheduleKind::Flat,
            Self::Banded(_) => ScheduleKind::Banded,
            Self::Tiled(_) => ScheduleKind::Tiled,
        }
    }

    /// Accelerator length the schedule was built for.
    #[must_use]
    pub fn length(&self) -> usize {
        match self {
            Self::Flat(s) => s.length(),
            Self::Banded(s) => s.length(),
            Self::Tiled(s) => s.length(),
        }
    }

    /// Row count of the scheduled matrix.
    #[must_use]
    pub fn rows(&self) -> usize {
        match self {
            Self::Flat(s) => s.rows(),
            Self::Banded(s) => s.rows(),
            Self::Tiled(s) => s.rows(),
        }
    }

    /// Column count of the scheduled matrix.
    #[must_use]
    pub fn cols(&self) -> usize {
        match self {
            Self::Flat(s) => s.cols(),
            Self::Banded(s) => s.cols(),
            Self::Tiled(s) => s.cols(),
        }
    }
}

impl Auditable for PreparedSchedule {
    fn audit(&self) -> AuditReport {
        match self {
            Self::Flat(s) => s.audit(),
            Self::Banded(s) => s.audit(),
            Self::Tiled(s) => s.audit(),
        }
    }
}

/// Jittered exponential retry/backoff policy for transient faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts (first try included). `1` means no retries.
    pub attempts: u32,
    /// Backoff before the first retry; doubles each further retry.
    pub base: Duration,
    /// Upper bound on any single backoff sleep (pre-jitter).
    pub cap: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            attempts: 3,
            base: Duration::from_micros(200),
            cap: Duration::from_millis(5),
        }
    }
}

impl RetryPolicy {
    /// The sleep before retry number `retry` (0-based), jittered.
    ///
    /// Full jitter over `[0, min(cap, base × 2^retry)]`, deterministic
    /// in `seed` — retries of different requests decorrelate without a
    /// global RNG, and tests can reproduce a run exactly.
    #[must_use]
    pub fn backoff(&self, retry: u32, seed: u64) -> Duration {
        let exp = self
            .base
            .saturating_mul(1u32 << retry.min(16))
            .min(self.cap);
        let nanos = u64::try_from(exp.as_nanos()).unwrap_or(u64::MAX);
        if nanos == 0 {
            return Duration::ZERO;
        }
        let roll = splitmix64_mix(seed ^ u64::from(retry).wrapping_mul(0x9e37_79b9)) % (nanos + 1);
        Duration::from_nanos(roll)
    }
}

/// Circuit-breaker policy guarding a matrix's scheduled fast path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerPolicy {
    /// Consecutive build/execution failures that open the breaker.
    pub threshold: u32,
    /// How long an open breaker serves degraded before a half-open
    /// probe is allowed to try the fast path again.
    pub cooldown: Duration,
}

impl Default for BreakerPolicy {
    fn default() -> Self {
        Self {
            threshold: 3,
            cooldown: Duration::from_millis(50),
        }
    }
}

/// Per-entry breaker state (see [`BreakerPolicy`]).
#[derive(Debug, Clone, Copy)]
enum Breaker {
    /// Fast path in use; `failures` consecutive failures so far.
    Closed { failures: u32 },
    /// Fast path disabled until the cooldown elapses.
    Open { until: Instant },
    /// One probe is in flight; success closes, failure re-opens.
    HalfOpen,
}

/// What [`ScheduleRegistry::acquire`] hands back.
#[derive(Debug, Clone)]
pub enum Acquired {
    /// The fast path: a memoized prepared schedule, carrying the
    /// [`VerifiedSchedule`] witness that its safety contract was
    /// audited at admission (disk loads) or established at
    /// construction (in-process builds).
    Scheduled(Arc<VerifiedSchedule<PreparedSchedule>>),
    /// The breaker is open (or the build exhausted its retries):
    /// serve this request through the reference kernel.
    Degraded,
}

/// Counters exposed by [`ScheduleRegistry::stats`]. All cumulative.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegistryStats {
    /// `acquire` calls answered from the in-RAM memo.
    pub hits: u64,
    /// `acquire` calls that had to consult disk or build.
    pub misses: u64,
    /// Schedules revived from an intact on-disk container.
    pub disk_loads: u64,
    /// Schedules built from the matrix (cache missing/corrupt/stale).
    pub rebuilds: u64,
    /// Corrupt cache containers quarantined on disk.
    pub quarantined: u64,
    /// Disk loads rejected by the schedule safety auditor
    /// ([`crate::verify`]): checksum-valid containers whose decoded
    /// contents violate the kernels' safety contract. Each is also
    /// counted in `quarantined` and treated as a miss (rebuilt).
    pub audit_rejects: u64,
    /// In-RAM entries evicted as poisoned (corrupt disk mirror, or
    /// [`ScheduleRegistry::poison`] after an execution failure).
    pub poisoned_evictions: u64,
    /// Build attempts that failed (pre-retry; each retry that fails
    /// counts again).
    pub build_failures: u64,
    /// Times a breaker transitioned to open.
    pub breaker_opens: u64,
    /// Times a half-open probe succeeded and closed the breaker.
    pub breaker_recoveries: u64,
}

/// A registered matrix plus its memoized schedule and breaker state.
struct Entry {
    matrix: Arc<CsrMatrix>,
    schedule: Option<Arc<VerifiedSchedule<PreparedSchedule>>>,
    breaker: Breaker,
}

struct RegistryInner {
    entries: BTreeMap<u64, Entry>,
    stats: RegistryStats,
}

/// Content-addressed schedule store with disk cache, retry, and a
/// per-matrix circuit breaker (see the [module docs](self)).
pub struct ScheduleRegistry {
    engine: Gust,
    kind: ScheduleKind,
    /// Batch width the banded/tiled planners size their bands for.
    batch_hint: usize,
    cache_dir: Option<PathBuf>,
    retry: RetryPolicy,
    breaker: BreakerPolicy,
    /// Seed stream for backoff jitter.
    jitter: AtomicU64,
    inner: Mutex<RegistryInner>,
}

impl std::fmt::Debug for ScheduleRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScheduleRegistry")
            .field("kind", &self.kind)
            .field("cache_dir", &self.cache_dir)
            .field("retry", &self.retry)
            .field("breaker", &self.breaker)
            .finish_non_exhaustive()
    }
}

impl ScheduleRegistry {
    /// A registry building flat schedules with default retry/breaker
    /// policies and no disk cache.
    #[must_use]
    pub fn new(engine: Gust) -> Self {
        Self {
            engine,
            kind: ScheduleKind::Flat,
            batch_hint: 8,
            cache_dir: None,
            retry: RetryPolicy::default(),
            breaker: BreakerPolicy::default(),
            jitter: AtomicU64::new(0x5eed_5eed_5eed_5eed),
            inner: Mutex::new(RegistryInner {
                entries: BTreeMap::new(),
                stats: RegistryStats::default(),
            }),
        }
    }

    /// Selects which schedule family to build (default:
    /// [`ScheduleKind::Flat`]).
    #[must_use]
    pub fn with_kind(mut self, kind: ScheduleKind) -> Self {
        self.kind = kind;
        self
    }

    /// Batch width the banded/tiled planners size for (default 8).
    #[must_use]
    pub fn with_batch_hint(mut self, batch: usize) -> Self {
        self.batch_hint = batch.max(1);
        self
    }

    /// Backs the memo with an on-disk cache directory. Containers are
    /// named `<key>.{gust,gusb,gutl}` by content hash; corrupt files
    /// are quarantined as `<name>.corrupt` and rebuilt.
    #[must_use]
    pub fn with_cache_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.cache_dir = Some(dir.into());
        self
    }

    /// Overrides the build retry/backoff policy.
    #[must_use]
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Overrides the circuit-breaker policy.
    #[must_use]
    pub fn with_breaker(mut self, breaker: BreakerPolicy) -> Self {
        self.breaker = breaker;
        self
    }

    /// The engine schedules are built for (and must be executed with).
    #[must_use]
    pub fn engine(&self) -> &Gust {
        &self.engine
    }

    /// Registers `matrix`, returning its content-hash key. Re-inserting
    /// an identical matrix is a no-op returning the same key; the
    /// schedule is built lazily on first [`ScheduleRegistry::acquire`].
    pub fn insert(&self, matrix: &CsrMatrix) -> MatrixKey {
        let key = content_hash(matrix);
        let mut inner = lock_recover(&self.inner);
        inner.entries.entry(key.0).or_insert_with(|| Entry {
            matrix: Arc::new(matrix.clone()),
            schedule: None,
            breaker: Breaker::Closed { failures: 0 },
        });
        drop(inner);
        key
    }

    /// The registered matrix for `key`, if any.
    #[must_use]
    pub fn matrix(&self, key: MatrixKey) -> Option<Arc<CsrMatrix>> {
        let inner = lock_recover(&self.inner);
        inner.entries.get(&key.0).map(|e| Arc::clone(&e.matrix))
    }

    /// Snapshot of the cumulative registry counters.
    #[must_use]
    pub fn stats(&self) -> RegistryStats {
        lock_recover(&self.inner).stats
    }

    /// Evicts `key`'s memoized schedule as poisoned (e.g. after it
    /// produced a contained execution fault) and records a breaker
    /// failure. Enough consecutive poisonings open the breaker and the
    /// matrix degrades to the reference kernel until the cooldown
    /// elapses.
    pub fn poison(&self, key: MatrixKey) {
        let mut inner = lock_recover(&self.inner);
        let breaker = self.breaker;
        if let Some(entry) = inner.entries.get_mut(&key.0) {
            if entry.schedule.take().is_some() {
                inner.stats.poisoned_evictions += 1;
            }
            Self::record_failure(&mut inner, key, breaker);
        }
        drop(inner);
    }

    /// Registers a failure against `key`'s breaker (caller holds the
    /// lock via `inner`).
    fn record_failure(inner: &mut RegistryInner, key: MatrixKey, policy: BreakerPolicy) {
        let Some(entry) = inner.entries.get_mut(&key.0) else {
            return;
        };
        entry.breaker = match entry.breaker {
            Breaker::Closed { failures } => {
                let failures = failures + 1;
                if failures >= policy.threshold {
                    inner.stats.breaker_opens += 1;
                    Breaker::Open {
                        until: Instant::now() + policy.cooldown,
                    }
                } else {
                    Breaker::Closed { failures }
                }
            }
            // A failed half-open probe re-opens for a fresh cooldown.
            Breaker::HalfOpen | Breaker::Open { .. } => {
                inner.stats.breaker_opens += 1;
                Breaker::Open {
                    until: Instant::now() + policy.cooldown,
                }
            }
        };
    }

    /// Registers a success against `key`'s breaker.
    fn record_success(inner: &mut RegistryInner, key: MatrixKey) {
        let Some(entry) = inner.entries.get_mut(&key.0) else {
            return;
        };
        if matches!(entry.breaker, Breaker::HalfOpen | Breaker::Open { .. }) {
            inner.stats.breaker_recoveries += 1;
        }
        entry.breaker = Breaker::Closed { failures: 0 };
    }

    /// The cache path for `key` under the configured directory.
    fn cache_path(&self, key: MatrixKey) -> Option<PathBuf> {
        let ext = match self.kind {
            ScheduleKind::Flat => "gust",
            ScheduleKind::Banded => "gusb",
            ScheduleKind::Tiled => "gutl",
        };
        self.cache_dir
            .as_ref()
            .map(|d| d.join(format!("{:016x}.{ext}", key.0)))
    }

    /// Resolves `key` to an executable path: in-RAM memo, else disk
    /// cache, else a (retried) build. A matrix whose breaker is open is
    /// answered [`Acquired::Degraded`]; so is one whose build exhausts
    /// its retries — degradation is the recovery, never an error.
    ///
    /// # Errors
    ///
    /// Only [`GustError::UnknownMatrix`] — every schedule-side failure
    /// degrades instead of erroring.
    pub fn acquire(&self, key: MatrixKey) -> Result<Acquired, GustError> {
        let matrix = {
            let mut inner = lock_recover(&self.inner);
            let Some(entry) = inner.entries.get_mut(&key.0) else {
                return Err(GustError::UnknownMatrix { key: key.0 });
            };
            if let Some(schedule) = &entry.schedule {
                let schedule = Arc::clone(schedule);
                inner.stats.hits += 1;
                return Ok(Acquired::Scheduled(schedule));
            }
            match entry.breaker {
                Breaker::Open { until } if Instant::now() < until => {
                    return Ok(Acquired::Degraded);
                }
                Breaker::Open { .. } => {
                    // Cooldown elapsed: this acquire is the half-open
                    // probe. A concurrent acquire seeing HalfOpen still
                    // probes too — duplicate probes are wasteful, not
                    // wrong.
                    entry.breaker = Breaker::HalfOpen;
                }
                Breaker::Closed { .. } | Breaker::HalfOpen => {}
            }
            let matrix = Arc::clone(&entry.matrix);
            inner.stats.misses += 1;
            matrix
        };

        // Disk, then build — both outside the lock so a slow build never
        // blocks unrelated acquires. Concurrent misses may both build;
        // the memo store below is idempotent.
        if let Some(schedule) = self.try_disk_load(key, &matrix) {
            let schedule = Arc::new(schedule);
            let mut inner = lock_recover(&self.inner);
            inner.stats.disk_loads += 1;
            Self::record_success(&mut inner, key);
            if let Some(entry) = inner.entries.get_mut(&key.0) {
                entry.schedule = Some(Arc::clone(&schedule));
            }
            drop(inner);
            return Ok(Acquired::Scheduled(schedule));
        }

        match self.build_with_retry(key, &matrix) {
            Some(schedule) => {
                if let Some(path) = self.cache_path(key) {
                    if let Some(dir) = path.parent() {
                        let _ = std::fs::create_dir_all(dir);
                    }
                    // Best-effort write-back; serving never depends on it.
                    let _ = match &schedule {
                        PreparedSchedule::Flat(s) => serialize::write_schedule_file(s, &path),
                        PreparedSchedule::Banded(s) => {
                            serialize::write_banded_schedule_file(s, &path)
                        }
                        PreparedSchedule::Tiled(s) => {
                            serialize::write_tiled_schedule_file(s, &path)
                        }
                    };
                }
                // Construction-trusted: the scheduler's output satisfies
                // the contract by construction (and is exercised by the
                // engine's own validation tests), so the witness is
                // issued without a redundant audit on the hot path.
                let schedule = Arc::new(VerifiedSchedule::witness(schedule));
                let mut inner = lock_recover(&self.inner);
                inner.stats.rebuilds += 1;
                Self::record_success(&mut inner, key);
                if let Some(entry) = inner.entries.get_mut(&key.0) {
                    entry.schedule = Some(Arc::clone(&schedule));
                }
                drop(inner);
                Ok(Acquired::Scheduled(schedule))
            }
            None => {
                let mut inner = lock_recover(&self.inner);
                Self::record_failure(&mut inner, key, self.breaker);
                drop(inner);
                Ok(Acquired::Degraded)
            }
        }
    }

    /// Attempts to revive `key`'s schedule from the disk cache.
    /// Corrupt containers — damaged bytes *and* checksum-valid files
    /// the safety auditor rejects — are quarantined on disk and
    /// mirrored as a poisoned-entry eviction in the stats;
    /// shape-mismatched or stale containers are simply ignored (the
    /// rebuild overwrites them).
    fn try_disk_load(
        &self,
        key: MatrixKey,
        matrix: &CsrMatrix,
    ) -> Option<VerifiedSchedule<PreparedSchedule>> {
        let path = self.cache_path(key)?;
        if !path.exists() {
            return None;
        }
        // The `_verified` readers audit every container unconditionally,
        // so re-wrapping the witness around the `PreparedSchedule`
        // variant is sound: the inner schedule is exactly the audited
        // one, moved unmodified.
        let loaded = match self.kind {
            ScheduleKind::Flat => serialize::read_schedule_file_verified(&path)
                .map(|v| VerifiedSchedule::witness(PreparedSchedule::Flat(v.into_inner()))),
            ScheduleKind::Banded => serialize::read_banded_schedule_file_verified(&path)
                .map(|v| VerifiedSchedule::witness(PreparedSchedule::Banded(v.into_inner()))),
            ScheduleKind::Tiled => serialize::read_tiled_schedule_file_verified(&path)
                .map(|v| VerifiedSchedule::witness(PreparedSchedule::Tiled(v.into_inner()))),
        };
        match loaded {
            Ok(schedule) => {
                let fits = schedule.length() == self.engine.config().length()
                    && schedule.rows() == matrix.rows()
                    && schedule.cols() == matrix.cols();
                fits.then_some(schedule)
            }
            Err(
                err @ (serialize::ReadScheduleError::Corrupt(_)
                | serialize::ReadScheduleError::Audit(_)),
            ) => {
                let audit = matches!(err, serialize::ReadScheduleError::Audit(_));
                let mut inner = lock_recover(&self.inner);
                inner.stats.quarantined += 1;
                inner.stats.poisoned_evictions += 1;
                if audit {
                    inner.stats.audit_rejects += 1;
                }
                drop(inner);
                match gust_sparse::io::quarantine_corrupt(&path) {
                    Some(dest) => eprintln!(
                        "warning: quarantined corrupt schedule cache {} -> {} ({err})",
                        path.display(),
                        dest.display()
                    ),
                    None => eprintln!(
                        "warning: removed corrupt schedule cache {} ({err})",
                        path.display()
                    ),
                }
                None
            }
            Err(_) => None,
        }
    }

    /// Builds `key`'s schedule, retrying transient faults (injected
    /// `sched_build` faults and contained panics) with jittered
    /// exponential backoff. `None` after the last attempt fails.
    fn build_with_retry(&self, key: MatrixKey, matrix: &CsrMatrix) -> Option<PreparedSchedule> {
        let seed = self.jitter.fetch_add(1, Ordering::Relaxed) ^ key.0;
        for attempt in 0..self.retry.attempts.max(1) {
            let built = if faults::active(faults::sites::SCHED_BUILD) {
                None
            } else {
                catch_unwind(AssertUnwindSafe(|| self.build_once(matrix))).ok()
            };
            if let Some(schedule) = built {
                return Some(schedule);
            }
            let mut inner = lock_recover(&self.inner);
            inner.stats.build_failures += 1;
            drop(inner);
            if attempt + 1 < self.retry.attempts.max(1) {
                let mut s = seed ^ u64::from(attempt);
                splitmix64(&mut s);
                std::thread::sleep(self.retry.backoff(attempt, s));
            }
        }
        None
    }

    /// One uninstrumented build of the configured schedule kind.
    fn build_once(&self, matrix: &CsrMatrix) -> PreparedSchedule {
        match self.kind {
            ScheduleKind::Flat => PreparedSchedule::Flat(self.engine.schedule(matrix)),
            ScheduleKind::Banded => PreparedSchedule::Banded(
                self.engine
                    .schedule_banded_for_batch(matrix, self.batch_hint),
            ),
            ScheduleKind::Tiled => PreparedSchedule::Tiled(
                self.engine
                    .schedule_tiled_for_batch(matrix, self.batch_hint),
            ),
        }
    }
}

/// Serving-runtime tunables (see [`SpmvServer::start`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Bounded admission-queue capacity **per tenant**. A submit into a
    /// full queue is shed with [`GustError::Overloaded`].
    pub queue_capacity: usize,
    /// Maximum requests aggregated into one execution panel.
    pub max_batch: usize,
    /// Deadline applied when a submit does not carry its own.
    pub default_deadline: Duration,
    /// Retry/backoff policy around contained execution faults.
    pub retry: RetryPolicy,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            queue_capacity: 64,
            max_batch: 16,
            default_deadline: Duration::from_secs(2),
            retry: RetryPolicy::default(),
        }
    }
}

/// A completed SpMV response.
#[derive(Debug, Clone, PartialEq)]
pub struct Response<T> {
    /// The product vector (`rows` long), exactly the SpMV of the
    /// registered matrix with the submitted vector.
    pub output: Vec<T>,
    /// Submit-to-completion latency as observed by the dispatcher.
    pub latency: Duration,
    /// `true` when this response was served by the reference kernel
    /// (open breaker or exhausted fast-path retries) instead of the
    /// scheduled engine walk.
    pub degraded: bool,
}

/// Client-side state of one in-flight request.
enum SlotState<T> {
    /// Not finished yet.
    Pending,
    /// Finished; the ticket's `wait` will take this.
    Done(Result<Response<T>, GustError>),
    /// The client gave up at its deadline; the dispatcher's eventual
    /// completion is counted as late and discarded.
    Abandoned,
}

/// One request's rendezvous between client and dispatcher.
struct Slot<T> {
    state: Mutex<SlotState<T>>,
    cv: Condvar,
}

impl<T> Slot<T> {
    fn new() -> Arc<Self> {
        Arc::new(Self {
            state: Mutex::new(SlotState::Pending),
            cv: Condvar::new(),
        })
    }

    /// Delivers `result`; `true` when the client was still waiting,
    /// `false` when it had already abandoned the slot.
    fn complete(&self, result: Result<Response<T>, GustError>) -> bool {
        let mut state = lock_recover(&self.state);
        let delivered = match *state {
            SlotState::Pending => {
                *state = SlotState::Done(result);
                true
            }
            SlotState::Abandoned | SlotState::Done(_) => false,
        };
        drop(state);
        self.cv.notify_all();
        delivered
    }
}

/// Handle to one submitted request. `wait` blocks **at most** until the
/// request's deadline — a lost dispatcher can delay a response but can
/// never hang the client.
pub struct Ticket<T> {
    slot: Arc<Slot<T>>,
    deadline: Instant,
}

impl<T> std::fmt::Debug for Ticket<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ticket")
            .field("deadline", &self.deadline)
            .finish_non_exhaustive()
    }
}

impl<T> Ticket<T> {
    /// Blocks until the response arrives or the deadline passes.
    ///
    /// # Errors
    ///
    /// [`GustError::DeadlineExceeded`] (stage `"wait"`) when the
    /// deadline passes first; [`GustError::ServerStopped`] when the
    /// server shut down with the request still queued; plus whatever
    /// error the dispatcher delivered.
    pub fn wait(self) -> Result<Response<T>, GustError> {
        let mut state = lock_recover(&self.slot.state);
        loop {
            match std::mem::replace(&mut *state, SlotState::Pending) {
                SlotState::Done(result) => return result,
                SlotState::Abandoned => unreachable!("only this ticket abandons its slot"),
                SlotState::Pending => {}
            }
            let now = Instant::now();
            if now >= self.deadline {
                *state = SlotState::Abandoned;
                return Err(GustError::DeadlineExceeded { stage: "wait" });
            }
            let (s, _timeout) = self
                .slot
                .cv
                .wait_timeout(state, self.deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            state = s;
        }
    }
}

/// One queued request (element type erased into the variant).
struct Request<T> {
    key: MatrixKey,
    x: Vec<T>,
    deadline: Instant,
    submitted: Instant,
    slot: Arc<Slot<T>>,
}

/// The two request element types the server batches (independently).
enum Work {
    F32(Request<f32>),
    F64(Request<f64>),
}

impl Work {
    fn deadline(&self) -> Instant {
        match self {
            Self::F32(r) => r.deadline,
            Self::F64(r) => r.deadline,
        }
    }

    /// Two requests are batchable when they target the same matrix
    /// with the same element type.
    fn compatible(&self, other: &Work) -> bool {
        match (self, other) {
            (Self::F32(a), Self::F32(b)) => a.key == b.key,
            (Self::F64(a), Self::F64(b)) => a.key == b.key,
            _ => false,
        }
    }

    fn fail(self, err: GustError) -> bool {
        match self {
            Self::F32(r) => r.slot.complete(Err(err)),
            Self::F64(r) => r.slot.complete(Err(err)),
        }
    }
}

/// Cumulative serving counters (see [`SpmvServer::stats`]).
///
/// Invariants: `submitted == admitted + shed`, and once the server has
/// drained, `admitted == completed + deadline_missed + stopped`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Requests presented to `submit`/`submit_f64`.
    pub submitted: u64,
    /// Requests that entered an admission queue.
    pub admitted: u64,
    /// Requests shed with [`GustError::Overloaded`].
    pub shed: u64,
    /// Requests answered with a successful [`Response`].
    pub completed: u64,
    /// Requests failed with [`GustError::DeadlineExceeded`] at the
    /// aggregation or execution boundary.
    pub deadline_missed: u64,
    /// Requests drained with [`GustError::ServerStopped`] at shutdown.
    pub stopped: u64,
    /// Responses computed after their client had already abandoned the
    /// wait (the work was done; the result was discarded).
    pub late_results: u64,
    /// Responses served by the reference kernel.
    pub degraded_responses: u64,
    /// Execution panels dispatched to the engine.
    pub batches: u64,
    /// Requests served through those panels (`batched_requests /
    /// batches` is the achieved aggregation factor).
    pub batched_requests: u64,
    /// Contained execution faults that were retried.
    pub exec_retries: u64,
    /// Panels that exhausted retries and fell back to the reference
    /// kernel (the whole panel still completes).
    pub exec_fallbacks: u64,
}

/// Shared state between clients and the dispatcher.
struct ServerShared {
    registry: Arc<ScheduleRegistry>,
    config: ServeConfig,
    queues: Mutex<QueueState>,
    wake: Condvar,
    stats: Mutex<ServeStats>,
}

struct QueueState {
    /// Per-tenant FIFO queues; `BTreeMap` so the fairness scan order is
    /// deterministic.
    tenants: BTreeMap<usize, VecDeque<Work>>,
    /// Round-robin fairness cursor: the tenant id the next aggregation
    /// scan starts *after*.
    cursor: usize,
    stop: bool,
}

impl ServerShared {
    fn bump(&self, f: impl FnOnce(&mut ServeStats)) {
        let mut stats = lock_recover(&self.stats);
        f(&mut stats);
        drop(stats);
    }
}

/// The serving front-end (see the [module docs](self)). Dropping the
/// server stops the dispatcher and drains still-queued requests with
/// [`GustError::ServerStopped`].
pub struct SpmvServer {
    shared: Arc<ServerShared>,
    dispatcher: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for SpmvServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpmvServer")
            .field("config", &self.shared.config)
            .finish_non_exhaustive()
    }
}

impl SpmvServer {
    /// Starts the dispatcher thread over `registry`.
    ///
    /// # Panics
    ///
    /// Panics if the dispatcher thread cannot be spawned.
    #[must_use]
    pub fn start(registry: Arc<ScheduleRegistry>, config: ServeConfig) -> Self {
        let shared = Arc::new(ServerShared {
            registry,
            config,
            queues: Mutex::new(QueueState {
                tenants: BTreeMap::new(),
                cursor: 0,
                stop: false,
            }),
            wake: Condvar::new(),
            stats: Mutex::new(ServeStats::default()),
        });
        let dispatcher = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("gust-serve".into())
                .spawn(move || dispatch_loop(&shared))
                .unwrap_or_else(|e| panic!("failed to spawn gust-serve dispatcher: {e}"))
        };
        Self {
            shared,
            dispatcher: Some(dispatcher),
        }
    }

    /// Registers `matrix` with the underlying registry.
    pub fn register(&self, matrix: &CsrMatrix) -> MatrixKey {
        self.shared.registry.insert(matrix)
    }

    /// The registry this server serves from.
    #[must_use]
    pub fn registry(&self) -> &Arc<ScheduleRegistry> {
        &self.shared.registry
    }

    /// Snapshot of the cumulative serving counters.
    #[must_use]
    pub fn stats(&self) -> ServeStats {
        *lock_recover(&self.shared.stats)
    }

    /// Requests currently queued across all tenants.
    #[must_use]
    pub fn queue_depth(&self) -> usize {
        let queues = lock_recover(&self.shared.queues);
        queues.tenants.values().map(VecDeque::len).sum()
    }

    /// Submits a single-vector `f32` request for `tenant`.
    ///
    /// # Errors
    ///
    /// [`GustError::Overloaded`] when the tenant's queue is full,
    /// [`GustError::UnknownMatrix`] for an unregistered key,
    /// [`GustError::InputLength`] for a wrong-length vector,
    /// [`GustError::ServerStopped`] after shutdown began.
    pub fn submit(
        &self,
        tenant: usize,
        key: MatrixKey,
        x: Vec<f32>,
        deadline: Option<Duration>,
    ) -> Result<Ticket<f32>, GustError> {
        self.submit_inner(tenant, key, x, deadline, Work::F32)
    }

    /// Submits a single-vector `f64` request for `tenant` (see
    /// [`SpmvServer::submit`]).
    ///
    /// # Errors
    ///
    /// As [`SpmvServer::submit`].
    pub fn submit_f64(
        &self,
        tenant: usize,
        key: MatrixKey,
        x: Vec<f64>,
        deadline: Option<Duration>,
    ) -> Result<Ticket<f64>, GustError> {
        self.submit_inner(tenant, key, x, deadline, Work::F64)
    }

    /// Convenience: submit and wait.
    ///
    /// # Errors
    ///
    /// As [`SpmvServer::submit`] plus [`Ticket::wait`].
    pub fn call(
        &self,
        tenant: usize,
        key: MatrixKey,
        x: Vec<f32>,
    ) -> Result<Response<f32>, GustError> {
        self.submit(tenant, key, x, None)?.wait()
    }

    /// Convenience: submit and wait, double precision.
    ///
    /// # Errors
    ///
    /// As [`SpmvServer::submit_f64`] plus [`Ticket::wait`].
    pub fn call_f64(
        &self,
        tenant: usize,
        key: MatrixKey,
        x: Vec<f64>,
    ) -> Result<Response<f64>, GustError> {
        self.submit_f64(tenant, key, x, None)?.wait()
    }

    /// Shared admission path: validate, enforce the bounded queue, and
    /// enqueue.
    fn submit_inner<T>(
        &self,
        tenant: usize,
        key: MatrixKey,
        x: Vec<T>,
        deadline: Option<Duration>,
        wrap: impl FnOnce(Request<T>) -> Work,
    ) -> Result<Ticket<T>, GustError> {
        self.shared.bump(|s| s.submitted += 1);
        let Some(matrix) = self.shared.registry.matrix(key) else {
            self.shared.bump(|s| s.shed += 1);
            return Err(GustError::UnknownMatrix { key: key.as_u64() });
        };
        if x.len() != matrix.cols() {
            self.shared.bump(|s| s.shed += 1);
            return Err(GustError::InputLength {
                got: x.len(),
                expected: matrix.cols(),
            });
        }
        let submitted = Instant::now();
        let deadline = submitted + deadline.unwrap_or(self.shared.config.default_deadline);
        let slot = Slot::new();
        let request = Request {
            key,
            x,
            deadline,
            submitted,
            slot: Arc::clone(&slot),
        };

        let mut queues = lock_recover(&self.shared.queues);
        if queues.stop {
            drop(queues);
            self.shared.bump(|s| s.shed += 1);
            return Err(GustError::ServerStopped);
        }
        let queue = queues.tenants.entry(tenant).or_default();
        if queue.len() >= self.shared.config.queue_capacity {
            let queued = queue.len();
            drop(queues);
            self.shared.bump(|s| s.shed += 1);
            return Err(GustError::Overloaded {
                queued,
                capacity: self.shared.config.queue_capacity,
            });
        }
        queue.push_back(wrap(request));
        drop(queues);
        self.shared.bump(|s| s.admitted += 1);
        self.shared.wake.notify_all();
        Ok(Ticket { slot, deadline })
    }

    /// Stops the dispatcher and drains still-queued requests with
    /// [`GustError::ServerStopped`]. Idempotent; also run by `Drop`.
    pub fn stop(&mut self) {
        {
            let mut queues = lock_recover(&self.shared.queues);
            queues.stop = true;
            drop(queues);
            self.shared.wake.notify_all();
        }
        if let Some(handle) = self.dispatcher.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for SpmvServer {
    fn drop(&mut self) {
        self.stop();
    }
}

/// The dispatcher: tenant-fair aggregation, deadline enforcement,
/// resilient execution, shutdown drain.
fn dispatch_loop(shared: &ServerShared) {
    loop {
        let batch = {
            let mut queues = lock_recover(&shared.queues);
            loop {
                if queues.tenants.values().any(|q| !q.is_empty()) {
                    break;
                }
                if queues.stop {
                    return;
                }
                queues = shared
                    .wake
                    .wait(queues)
                    .unwrap_or_else(PoisonError::into_inner);
            }
            collect_batch(&mut queues, shared.config.max_batch)
        };
        if batch.is_empty() {
            continue;
        }

        // Aggregation-boundary deadline check: anything already past
        // its deadline is failed now, not executed.
        let now = Instant::now();
        let (live, expired): (Vec<Work>, Vec<Work>) =
            batch.into_iter().partition(|w| w.deadline() > now);
        for work in expired {
            // Count before delivering so a woken client never reads
            // stats that lag its own response.
            shared.bump(|s| s.deadline_missed += 1);
            let delivered = work.fail(GustError::DeadlineExceeded {
                stage: "aggregation",
            });
            if !delivered {
                shared.bump(|s| s.late_results += 1);
            }
        }
        if live.is_empty() {
            continue;
        }

        match &live[0] {
            Work::F32(_) => {
                let requests: Vec<Request<f32>> = live
                    .into_iter()
                    .map(|w| match w {
                        Work::F32(r) => r,
                        Work::F64(_) => unreachable!("collect_batch mixes element types"),
                    })
                    .collect();
                execute_panel(shared, requests, dispatch_f32, reference_f32);
            }
            Work::F64(_) => {
                let requests: Vec<Request<f64>> = live
                    .into_iter()
                    .map(|w| match w {
                        Work::F64(r) => r,
                        Work::F32(_) => unreachable!("collect_batch mixes element types"),
                    })
                    .collect();
                execute_panel(shared, requests, dispatch_f64, reference_spmv_f64);
            }
        }
    }
}

/// Pops the next head-of-line request tenant-fairly (round-robin from
/// the cursor), then sweeps the other tenants round-robin for
/// compatible requests until the panel is full. Every tenant
/// contributes at most its queue's FIFO prefix, so one tenant's burst
/// cannot monopolize a panel that others are waiting on.
fn collect_batch(queues: &mut QueueState, max_batch: usize) -> Vec<Work> {
    let tenant_ids: Vec<usize> = queues.tenants.keys().copied().collect();
    if tenant_ids.is_empty() {
        return Vec::new();
    }
    // Rotate so the scan starts strictly after the previous head tenant.
    let start = tenant_ids
        .iter()
        .position(|&t| t > queues.cursor)
        .unwrap_or(0);

    let mut head: Option<Work> = None;
    for idx in 0..tenant_ids.len() {
        let t = tenant_ids[(start + idx) % tenant_ids.len()];
        if let Some(queue) = queues.tenants.get_mut(&t) {
            if let Some(work) = queue.pop_front() {
                queues.cursor = t;
                head = Some(work);
                break;
            }
        }
    }
    let Some(head) = head else {
        return Vec::new();
    };

    let mut batch = vec![head];
    // Fairness sweep: visit tenants round-robin, taking one compatible
    // head-of-line request per visit, until full or no tenant yields.
    loop {
        let mut took = false;
        for idx in 0..tenant_ids.len() {
            if batch.len() >= max_batch {
                break;
            }
            let t = tenant_ids[(start + idx) % tenant_ids.len()];
            let Some(queue) = queues.tenants.get_mut(&t) else {
                continue;
            };
            if queue.front().is_some_and(|w| batch[0].compatible(w)) {
                if let Some(work) = queue.pop_front() {
                    batch.push(work);
                    took = true;
                }
            }
        }
        if !took || batch.len() >= max_batch {
            break;
        }
    }
    batch
}

/// Engine entry point for one element type: panel in, panel out.
type PanelExec<T> = fn(&Gust, &PreparedSchedule, &[T], usize) -> Result<Vec<T>, GustError>;

/// Executes one same-key, same-element panel: deadline check at the
/// execution boundary, injected-delay fault, retried engine execution
/// with breaker integration, reference fallback, completion.
fn execute_panel<T: Copy>(
    shared: &ServerShared,
    requests: Vec<Request<T>>,
    execute: PanelExec<T>,
    reference: fn(&CsrMatrix, &[T]) -> Vec<T>,
) {
    let key = requests[0].key;
    let Some(matrix) = shared.registry.matrix(key) else {
        for r in requests {
            let delivered = r
                .slot
                .complete(Err(GustError::UnknownMatrix { key: key.as_u64() }));
            shared.bump(|s| {
                if !delivered {
                    s.late_results += 1;
                }
            });
        }
        return;
    };

    // Execution-boundary deadline check — budget at least the injected
    // delay plus headroom so a request we start on can finish.
    if let Some(delay) = faults::injected_delay(faults::sites::EXEC_DELAY) {
        std::thread::sleep(delay);
    }
    let now = Instant::now();
    let (live, expired): (Vec<Request<T>>, Vec<Request<T>>) =
        requests.into_iter().partition(|r| r.deadline > now);
    for r in expired {
        shared.bump(|s| s.deadline_missed += 1);
        let delivered = r
            .slot
            .complete(Err(GustError::DeadlineExceeded { stage: "execution" }));
        if !delivered {
            shared.bump(|s| s.late_results += 1);
        }
    }
    if live.is_empty() {
        return;
    }

    let batch = live.len();
    let cols = matrix.cols();
    let rows = matrix.rows();
    let mut panel: Vec<T> = Vec::with_capacity(cols * batch);
    for r in &live {
        panel.extend_from_slice(&r.x);
    }

    // Fast path: acquire (registry handles its own retry/breaker), then
    // execute with retry around contained faults. Failures degrade.
    let mut degraded = true;
    let mut outputs: Option<Vec<T>> = None;
    if let Ok(Acquired::Scheduled(schedule)) = shared.registry.acquire(key) {
        let engine = shared.registry.engine().clone();
        let retry = shared.config.retry;
        for attempt in 0..retry.attempts.max(1) {
            let result = catch_unwind(AssertUnwindSafe(|| {
                execute(&engine, schedule.get(), &panel, batch)
            }));
            match result {
                Ok(Ok(y)) => {
                    outputs = Some(y);
                    degraded = false;
                    break;
                }
                // A shape error is deterministic — retrying cannot help.
                Ok(Err(_)) => break,
                Err(_) => {
                    shared.bump(|s| s.exec_retries += 1);
                    if attempt + 1 < retry.attempts.max(1) {
                        std::thread::sleep(
                            retry.backoff(attempt, key.as_u64() ^ u64::from(attempt)),
                        );
                    }
                }
            }
        }
        if outputs.is_none() {
            // The schedule keeps failing: poison it (breaker counts the
            // failure) and serve this panel degraded.
            shared.registry.poison(key);
            shared.bump(|s| s.exec_fallbacks += 1);
        }
    }

    let outputs = outputs.unwrap_or_else(|| {
        let mut y: Vec<T> = Vec::with_capacity(rows * batch);
        for r in &live {
            y.extend_from_slice(&reference(matrix.as_ref(), &r.x));
        }
        y
    });

    shared.bump(|s| {
        s.batches += 1;
        s.batched_requests += batch as u64;
        if degraded {
            s.degraded_responses += batch as u64;
        }
    });

    for (j, r) in live.into_iter().enumerate() {
        let output = outputs[j * rows..(j + 1) * rows].to_vec();
        shared.bump(|s| s.completed += 1);
        let delivered = r.slot.complete(Ok(Response {
            output,
            latency: r.submitted.elapsed(),
            degraded,
        }));
        if !delivered {
            shared.bump(|s| s.late_results += 1);
        }
    }
}

/// Runs one `f32` panel through the schedule of whatever family it is.
fn dispatch_f32(
    engine: &Gust,
    schedule: &PreparedSchedule,
    panel: &[f32],
    batch: usize,
) -> Result<Vec<f32>, GustError> {
    match schedule {
        PreparedSchedule::Flat(s) => engine.try_execute_batch(s, panel, batch).map(|(y, _)| y),
        PreparedSchedule::Banded(s) => engine
            .try_execute_batch_banded(s, panel, batch)
            .map(|(y, _)| y),
        PreparedSchedule::Tiled(s) => engine
            .try_execute_batch_tiled(s, panel, batch)
            .map(|(y, _)| y),
    }
}

/// `f64` twin of [`dispatch_f32`].
fn dispatch_f64(
    engine: &Gust,
    schedule: &PreparedSchedule,
    panel: &[f64],
    batch: usize,
) -> Result<Vec<f64>, GustError> {
    match schedule {
        PreparedSchedule::Flat(s) => engine
            .try_execute_batch_f64(s, panel, batch)
            .map(|(y, _)| y),
        PreparedSchedule::Banded(s) => engine
            .try_execute_batch_banded_f64(s, panel, batch)
            .map(|(y, _)| y),
        PreparedSchedule::Tiled(s) => engine
            .try_execute_batch_tiled_f64(s, panel, batch)
            .map(|(y, _)| y),
    }
}

/// `f32` reference kernel as a plain `fn` for [`execute_panel`].
fn reference_f32(matrix: &CsrMatrix, x: &[f32]) -> Vec<f32> {
    matrix.spmv(x)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::config::GustConfig;
    use gust_sparse::gen;

    /// A random-structure matrix with **integer** values: products and
    /// partial sums stay exactly representable, so every summation
    /// order (engine slot order, reference row order) gives the same
    /// bits and the tests below can assert bit-identity.
    fn small_matrix(seed: u64) -> CsrMatrix {
        let float = CsrMatrix::from(&gen::uniform(24, 24, 90, seed));
        let (indptr, indices, values) = float.raw_parts();
        let int_values = values
            .iter()
            .map(|v| (v * 7.0).floor().abs() + 1.0)
            .collect();
        CsrMatrix::try_new(
            float.rows(),
            float.cols(),
            indptr.to_vec(),
            indices.to_vec(),
            int_values,
        )
        .expect("structure is unchanged")
    }

    fn engine() -> Gust {
        Gust::new(GustConfig::new(8))
    }

    /// Integer-valued vector: keeps every summation order exact so the
    /// scheduled and reference paths agree bitwise.
    fn int_vector(cols: usize) -> Vec<f32> {
        (0..cols).map(|i| ((i % 7) as f32) - 3.0).collect()
    }

    #[test]
    fn content_hash_is_stable_and_structure_sensitive() {
        let a = small_matrix(1);
        let b = small_matrix(1);
        let c = small_matrix(2);
        assert_eq!(content_hash(&a), content_hash(&b));
        assert_ne!(content_hash(&a), content_hash(&c));
    }

    #[test]
    fn registry_memoizes_after_first_acquire() {
        let registry = ScheduleRegistry::new(engine());
        let key = registry.insert(&small_matrix(3));
        let first = registry.acquire(key).unwrap();
        let second = registry.acquire(key).unwrap();
        let (Acquired::Scheduled(a), Acquired::Scheduled(b)) = (first, second) else {
            panic!("both acquires should be scheduled");
        };
        assert!(Arc::ptr_eq(&a, &b), "second acquire must hit the memo");
        let stats = registry.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.rebuilds, 1);
    }

    #[test]
    fn acquire_unknown_key_is_an_error() {
        let registry = ScheduleRegistry::new(engine());
        let err = registry.acquire(MatrixKey(42)).unwrap_err();
        assert!(matches!(err, GustError::UnknownMatrix { key: 42 }));
    }

    #[test]
    fn disk_cache_revives_and_corrupt_cache_is_quarantined() {
        let dir = std::env::temp_dir().join(format!("gust-serve-reg-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();

        let matrix = small_matrix(4);
        let key = {
            let registry = ScheduleRegistry::new(engine()).with_cache_dir(&dir);
            let key = registry.insert(&matrix);
            registry.acquire(key).unwrap();
            assert_eq!(registry.stats().rebuilds, 1);
            key
        };
        let path = dir.join(format!("{:016x}.gust", key.as_u64()));
        assert!(path.exists(), "build must write the container back");

        // A fresh registry revives from disk without rebuilding.
        let registry = ScheduleRegistry::new(engine()).with_cache_dir(&dir);
        assert_eq!(registry.insert(&matrix), key);
        registry.acquire(key).unwrap();
        let stats = registry.stats();
        assert_eq!(stats.disk_loads, 1);
        assert_eq!(stats.rebuilds, 0);

        // Corrupt the container: next cold acquire quarantines it,
        // counts the poisoned eviction, and rebuilds.
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let registry = ScheduleRegistry::new(engine()).with_cache_dir(&dir);
        registry.insert(&matrix);
        let Acquired::Scheduled(_) = registry.acquire(key).unwrap() else {
            panic!("corrupt cache must rebuild, not degrade");
        };
        let stats = registry.stats();
        assert_eq!(stats.quarantined, 1);
        assert_eq!(stats.poisoned_evictions, 1);
        assert_eq!(stats.rebuilds, 1);
        assert!(
            dir.read_dir()
                .unwrap()
                .filter_map(Result::ok)
                .any(|e| e.path().extension().is_some_and(|x| x == "corrupt")),
            "corrupt container must be quarantined on disk"
        );

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn breaker_opens_after_repeated_build_faults_and_recovers() {
        let registry = ScheduleRegistry::new(engine())
            .with_retry(RetryPolicy {
                attempts: 2,
                base: Duration::from_micros(10),
                cap: Duration::from_micros(50),
            })
            .with_breaker(BreakerPolicy {
                threshold: 2,
                cooldown: Duration::from_millis(5),
            });
        let key = registry.insert(&small_matrix(5));

        {
            let _guard = faults::override_for_tests("sched_build:1");
            // Two acquires, each exhausting its retries: breaker opens.
            assert!(matches!(registry.acquire(key), Ok(Acquired::Degraded)));
            assert!(matches!(registry.acquire(key), Ok(Acquired::Degraded)));
            let stats = registry.stats();
            assert_eq!(stats.breaker_opens, 1);
            assert_eq!(stats.build_failures, 4);
            // Open breaker short-circuits: no further build attempts.
            assert!(matches!(registry.acquire(key), Ok(Acquired::Degraded)));
            assert_eq!(registry.stats().build_failures, 4);
        }

        // Faults cleared and cooldown elapsed: the half-open probe
        // rebuilds and the breaker closes.
        std::thread::sleep(Duration::from_millis(6));
        assert!(matches!(registry.acquire(key), Ok(Acquired::Scheduled(_))));
        let stats = registry.stats();
        assert_eq!(stats.breaker_recoveries, 1);
        assert_eq!(stats.rebuilds, 1);
    }

    #[test]
    fn poison_evicts_memo_and_counts_toward_breaker() {
        let registry = ScheduleRegistry::new(engine()).with_breaker(BreakerPolicy {
            threshold: 2,
            cooldown: Duration::from_millis(5),
        });
        let key = registry.insert(&small_matrix(6));
        registry.acquire(key).unwrap();
        registry.poison(key);
        assert_eq!(registry.stats().poisoned_evictions, 1);
        // Still closed (1 < threshold): the next acquire rebuilds.
        assert!(matches!(registry.acquire(key), Ok(Acquired::Scheduled(_))));
        assert_eq!(registry.stats().rebuilds, 2);
    }

    #[test]
    fn backoff_is_bounded_and_jittered() {
        let policy = RetryPolicy {
            attempts: 4,
            base: Duration::from_micros(100),
            cap: Duration::from_millis(1),
        };
        for retry in 0..4 {
            for seed in 0..16 {
                let d = policy.backoff(retry, seed);
                assert!(d <= Duration::from_millis(1));
            }
        }
        // Deterministic in the seed, varied across seeds.
        assert_eq!(policy.backoff(1, 7), policy.backoff(1, 7));
        let distinct: std::collections::BTreeSet<Duration> =
            (0..32).map(|s| policy.backoff(2, s)).collect();
        assert!(distinct.len() > 8, "jitter must spread across seeds");
    }

    #[test]
    fn server_round_trip_matches_reference_bitwise() {
        let matrix = small_matrix(7);
        let registry = Arc::new(ScheduleRegistry::new(engine()));
        let server = SpmvServer::start(registry, ServeConfig::default());
        let key = server.register(&matrix);

        let x = int_vector(matrix.cols());
        let resp = server.call(0, key, x.clone()).unwrap();
        assert_eq!(resp.output, matrix.spmv(&x));
        assert!(!resp.degraded);

        let x64: Vec<f64> = x.iter().map(|&v| f64::from(v)).collect();
        let resp = server.call_f64(0, key, x64.clone()).unwrap();
        assert_eq!(resp.output, reference_spmv_f64(&matrix, &x64));

        let stats = server.stats();
        assert_eq!(stats.submitted, 2);
        assert_eq!(stats.admitted, 2);
        assert_eq!(stats.completed, 2);
        assert_eq!(stats.shed, 0);
    }

    #[test]
    fn server_validates_key_and_vector_length_at_admission() {
        let matrix = small_matrix(8);
        let registry = Arc::new(ScheduleRegistry::new(engine()));
        let server = SpmvServer::start(registry, ServeConfig::default());
        let key = server.register(&matrix);

        let err = server
            .submit(0, MatrixKey(1), int_vector(matrix.cols()), None)
            .unwrap_err();
        assert!(matches!(err, GustError::UnknownMatrix { .. }));

        let err = server.submit(0, key, vec![1.0; 3], None).unwrap_err();
        assert!(matches!(err, GustError::InputLength { .. }));

        let stats = server.stats();
        assert_eq!(stats.submitted, 2);
        assert_eq!(stats.shed, 2);
        assert_eq!(stats.admitted, 0);
    }

    #[test]
    fn ticket_wait_never_outlives_its_deadline() {
        let matrix = small_matrix(9);
        let registry = Arc::new(ScheduleRegistry::new(engine()));
        // Use an exec_delay fault to slow the dispatcher so a tiny
        // deadline reliably expires first.
        let _guard = faults::override_for_tests("exec_delay:1");
        let server = SpmvServer::start(registry, ServeConfig::default());
        let key = server.register(&matrix);

        let ticket = server
            .submit(
                0,
                key,
                int_vector(matrix.cols()),
                Some(Duration::from_micros(1)),
            )
            .unwrap();
        let start = Instant::now();
        let err = ticket.wait().unwrap_err();
        assert!(matches!(err, GustError::DeadlineExceeded { .. }));
        assert!(
            start.elapsed() < Duration::from_secs(1),
            "wait must return promptly at the deadline"
        );
    }

    #[test]
    fn full_queue_sheds_with_overloaded() {
        let matrix = small_matrix(10);
        let registry = Arc::new(ScheduleRegistry::new(engine()));
        // Warm the schedule first so the dispatcher is fast later, then
        // block it with an exec_delay so the queue can actually fill.
        registry.acquire(registry.insert(&matrix)).unwrap();
        let _guard = faults::override_for_tests("exec_delay:1");
        let server = SpmvServer::start(
            Arc::clone(&registry),
            ServeConfig {
                queue_capacity: 2,
                max_batch: 1,
                ..ServeConfig::default()
            },
        );
        let key = server.register(&matrix);
        let x = int_vector(matrix.cols());

        // Saturate: keep submitting until one is shed. The dispatcher
        // drains concurrently, so allow several rounds.
        let mut tickets = Vec::new();
        let mut shed = None;
        for _ in 0..200 {
            match server.submit(0, key, x.clone(), Some(Duration::from_secs(5))) {
                Ok(t) => tickets.push(t),
                Err(e) => {
                    shed = Some(e);
                    break;
                }
            }
        }
        let shed = shed.expect("a capacity-2 queue must shed under a submit burst");
        assert!(matches!(shed, GustError::Overloaded { capacity: 2, .. }));
        assert!(server.stats().shed >= 1);
        for t in tickets {
            let resp = t.wait().unwrap();
            assert_eq!(resp.output, matrix.spmv(&x));
        }
    }

    #[test]
    fn stop_drains_queued_requests_with_server_stopped() {
        let matrix = small_matrix(11);
        let registry = Arc::new(ScheduleRegistry::new(engine()));
        let mut server = SpmvServer::start(registry, ServeConfig::default());
        let key = server.register(&matrix);
        server.stop();
        let err = server
            .submit(0, key, int_vector(matrix.cols()), None)
            .unwrap_err();
        assert!(matches!(err, GustError::ServerStopped));
    }

    #[test]
    fn cross_tenant_requests_batch_into_one_panel() {
        let matrix = small_matrix(12);
        let registry = Arc::new(ScheduleRegistry::new(engine()));
        // Warm the schedule so execution is quick; slow each panel with
        // exec_delay so queued tenants pile up behind the first.
        registry.acquire(registry.insert(&matrix)).unwrap();
        let _guard = faults::override_for_tests("exec_delay:1");
        let server = SpmvServer::start(Arc::clone(&registry), ServeConfig::default());
        let key = server.register(&matrix);

        let x = int_vector(matrix.cols());
        let tickets: Vec<_> = (0..8)
            .map(|tenant| {
                server
                    .submit(tenant, key, x.clone(), Some(Duration::from_secs(10)))
                    .unwrap()
            })
            .collect();
        for t in tickets {
            let resp = t.wait().unwrap();
            assert_eq!(resp.output, matrix.spmv(&x));
        }
        let stats = server.stats();
        assert_eq!(stats.completed, 8);
        assert!(
            stats.batches < 8,
            "8 compatible requests should aggregate into fewer panels \
             (got {} panels)",
            stats.batches
        );
    }

    #[test]
    fn reference_spmv_f64_matches_widened_row_walk() {
        let matrix = small_matrix(13);
        let x: Vec<f64> = (0..matrix.cols()).map(|i| (i % 5) as f64).collect();
        let y = reference_spmv_f64(&matrix, &x);
        let x32: Vec<f32> = x.iter().map(|&v| v as f32).collect();
        assert_eq!(y, matrix.spmv_f64(&x32));
    }
}
