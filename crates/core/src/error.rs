//! Unified error type for the fallible engine API.
//!
//! The original engine entry points ([`crate::Gust::execute`] and
//! friends) follow the "programming error ⇒ panic" convention: handing a
//! schedule to an engine of a different length is a bug in the caller,
//! not a runtime condition. That convention is wrong for long-lived
//! services that load schedules and matrices from disk, accept shapes
//! from callers they do not control, and must keep serving when one
//! request is malformed. The `try_*` twins (e.g.
//! [`crate::Gust::try_execute`]) return a [`GustError`] instead, and the
//! panicking originals now delegate to them — one validation path, two
//! reporting conventions.
//!
//! [`GustError`] also wraps the workspace's loading errors
//! ([`gust_sparse::SparseError`],
//! [`crate::schedule::serialize::ReadScheduleError`]) so a
//! load-schedule-execute pipeline can use one error type end to end with
//! `?`.

use crate::schedule::serialize::ReadScheduleError;
use gust_sparse::SparseError;
use std::error::Error;
use std::fmt;

/// Errors surfaced by the fallible (`try_*`) engine entry points.
///
/// The [`fmt::Display`] strings of the validation variants are the exact
/// messages the panicking twins have always used, so
/// `#[should_panic(expected = …)]` callers and log scrapers see no
/// change.
#[derive(Debug)]
#[non_exhaustive]
pub enum GustError {
    /// The schedule was produced for a different accelerator length than
    /// this engine is configured with.
    LengthMismatch {
        /// Length the schedule was built for.
        schedule: usize,
        /// Length this engine is configured with.
        engine: usize,
    },
    /// The input vector's length does not match the schedule's column
    /// count.
    InputLength {
        /// What the caller supplied.
        got: usize,
        /// The schedule's column count.
        expected: usize,
    },
    /// A batched entry point was handed `batch == 0`.
    EmptyBatch,
    /// A column-major panel's length does not equal `cols × batch`.
    PanelShape {
        /// What the caller supplied.
        got: usize,
        /// The schedule's column count.
        cols: usize,
        /// The requested batch width.
        batch: usize,
    },
    /// A matrix-side failure: Matrix Market parse, corrupt binary cache,
    /// or live I/O (see [`gust_sparse::SparseError`]).
    Sparse(SparseError),
    /// A schedule-container failure: bad magic/version, corrupt payload,
    /// or live I/O (see [`ReadScheduleError`]).
    Schedule(ReadScheduleError),
    /// An environment/configuration value could not be interpreted (see
    /// [`crate::config::ConfigError`]).
    Config(crate::config::ConfigError),
    /// The serving runtime's admission queue is full and the request
    /// was shed instead of queued (see [`crate::serve::SpmvServer`]):
    /// explicit backpressure beats unbounded latency. Shed requests are
    /// counted; resubmit after backing off.
    Overloaded {
        /// Requests queued when the request was shed.
        queued: usize,
        /// The admission queue's capacity.
        capacity: usize,
    },
    /// The request's deadline passed before a result was produced.
    /// Deadlines are enforced at every serving boundary; `stage` names
    /// the one that tripped (`"aggregation"`, `"execution"`, `"wait"`).
    DeadlineExceeded {
        /// The serving boundary at which the deadline was detected.
        stage: &'static str,
    },
    /// The request named a matrix key the schedule registry has no
    /// entry for (see [`crate::serve::ScheduleRegistry::insert`]).
    UnknownMatrix {
        /// The unrecognized content-hash key.
        key: u64,
    },
    /// The server was stopped while the request was still queued; the
    /// request was drained with this error rather than dropped
    /// silently.
    ServerStopped,
}

impl fmt::Display for GustError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::LengthMismatch { schedule, engine } => write!(
                f,
                "schedule was produced for a different GUST length \
                 (schedule length {schedule}, engine length {engine})"
            ),
            Self::InputLength { got, expected } => write!(
                f,
                "input vector length mismatch (got {got}, schedule has {expected} columns)"
            ),
            Self::EmptyBatch => write!(f, "batch must contain at least one vector"),
            Self::PanelShape { got, cols, batch } => write!(
                f,
                "panel must hold batch × cols values (column-major): \
                 got {got}, need {cols} × {batch}"
            ),
            Self::Sparse(e) => write!(f, "{e}"),
            Self::Schedule(e) => write!(f, "{e}"),
            Self::Config(e) => write!(f, "{e}"),
            Self::Overloaded { queued, capacity } => write!(
                f,
                "server overloaded: {queued} requests queued (capacity {capacity}); request shed"
            ),
            Self::DeadlineExceeded { stage } => {
                write!(f, "request deadline exceeded at the {stage} boundary")
            }
            Self::UnknownMatrix { key } => {
                write!(f, "no matrix registered under key {key:#018x}")
            }
            Self::ServerStopped => write!(f, "server stopped before the request was served"),
        }
    }
}

impl Error for GustError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Sparse(e) => Some(e),
            Self::Schedule(e) => Some(e),
            Self::Config(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SparseError> for GustError {
    fn from(e: SparseError) -> Self {
        Self::Sparse(e)
    }
}

impl From<ReadScheduleError> for GustError {
    fn from(e: ReadScheduleError) -> Self {
        Self::Schedule(e)
    }
}

impl From<crate::config::ConfigError> for GustError {
    fn from(e: crate::config::ConfigError) -> Self {
        Self::Config(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The panicking engine wrappers delegate via `panic!("{e}")`, so
    /// every Display string must contain the exact substring the
    /// historical asserts used — `#[should_panic(expected = …)]` tests
    /// across the workspace match on them.
    #[test]
    fn display_preserves_historical_panic_messages() {
        let e = GustError::LengthMismatch {
            schedule: 8,
            engine: 4,
        };
        assert!(e
            .to_string()
            .contains("schedule was produced for a different GUST length"));

        let e = GustError::InputLength {
            got: 3,
            expected: 4,
        };
        assert!(e.to_string().contains("input vector length mismatch"));

        assert!(GustError::EmptyBatch
            .to_string()
            .contains("batch must contain at least one vector"));

        let e = GustError::PanelShape {
            got: 7,
            cols: 4,
            batch: 2,
        };
        assert!(e
            .to_string()
            .contains("panel must hold batch × cols values (column-major)"));
    }

    #[test]
    fn serving_variants_render_their_context() {
        let e = GustError::Overloaded {
            queued: 128,
            capacity: 128,
        };
        assert!(e.to_string().contains("server overloaded"));
        assert!(e.to_string().contains("capacity 128"));

        let e = GustError::DeadlineExceeded { stage: "execution" };
        assert!(e
            .to_string()
            .contains("deadline exceeded at the execution boundary"));

        let e = GustError::UnknownMatrix { key: 0xABCD };
        assert!(e.to_string().contains("0x000000000000abcd"));

        assert!(GustError::ServerStopped.to_string().contains("stopped"));
        assert!(GustError::ServerStopped.source().is_none());
    }

    #[test]
    fn wrapping_conversions_preserve_sources() {
        let e = GustError::from(SparseError::Corrupt("checksum mismatch".into()));
        assert!(e.to_string().contains("corrupt"));
        assert!(e.source().is_some());

        let e = GustError::from(ReadScheduleError::Format("bad magic".into()));
        assert!(e.to_string().contains("bad magic"));
        assert!(e.source().is_some());

        let e = GustError::EmptyBatch;
        assert!(e.source().is_none());
    }
}
