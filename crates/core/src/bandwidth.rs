//! Bandwidth requirement and utilization models (§3.3 "Streaming the
//! Inputs", §4, Fig. 9).
//!
//! Per cycle a length-`l` GUST ingests, per lane: a 32-bit `M_sch` value, a
//! 32-bit `Col_sch` index and a `⌈log₂ l⌉`-bit `Row_sch` index, plus one
//! dump-signal bit — §4's "18,433 logical inputs" for `l = 256`. (The §3.3
//! text prints the formula `(64l + log l + 1)·f`, which drops the `l×`
//! factor on the row indices; [`paper_text_bits_per_cycle`] reproduces that
//! expression for comparison, and DESIGN.md documents the discrepancy.)

use crate::schedule::scheduled::log2_ceil;

/// Input bits consumed per cycle, per §4's logical-input accounting:
/// `l·(32 + 32 + ⌈log₂ l⌉) + 1`.
///
/// ```
/// assert_eq!(gust::bandwidth::bits_per_cycle(256), 18_433);
/// ```
#[must_use]
pub fn bits_per_cycle(l: usize) -> u64 {
    assert!(l > 0, "length must be non-zero");
    l as u64 * (64 + u64::from(log2_ceil(l))) + 1
}

/// The §3.3 text expression `64l + log₂ l + 1` bits per cycle (row indices
/// under-counted); kept for documentation and comparison.
#[must_use]
pub fn paper_text_bits_per_cycle(l: usize) -> u64 {
    assert!(l > 0, "length must be non-zero");
    64 * l as u64 + u64::from(log2_ceil(l)) + 1
}

/// Peak bandwidth requirement in bytes/second at clock `frequency_hz`:
/// every cycle must deliver [`bits_per_cycle`].
#[must_use]
pub fn required_bytes_per_second(l: usize, frequency_hz: f64) -> f64 {
    bits_per_cycle(l) as f64 / 8.0 * frequency_hz
}

/// Fraction of the design's peak input bandwidth carrying *useful* (non-
/// empty-slot) data over a run: `nnz` occupied cells out of `l × colors`
/// streamed cells. This is the Fig. 9 metric — GUST's dense scheduled
/// stream keeps it high, while a 1D array streaming mostly zeros wastes
/// nearly all of its bandwidth.
#[must_use]
pub fn stream_utilization(nnz: u64, l: usize, streaming_cycles: u64) -> f64 {
    if streaming_cycles == 0 {
        return 0.0;
    }
    nnz as f64 / (l as f64 * streaming_cycles as f64)
}

/// Average *useful* bandwidth in bytes/second achieved over a run:
/// [`stream_utilization`] × [`required_bytes_per_second`].
#[must_use]
pub fn achieved_bytes_per_second(
    nnz: u64,
    l: usize,
    streaming_cycles: u64,
    frequency_hz: f64,
) -> f64 {
    stream_utilization(nnz, l, streaming_cycles) * required_bytes_per_second(l, frequency_hz)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_logical_inputs_for_length_256() {
        // §4: 256×32 matrix + 256×32 vector + 256×8 index + 1 dump = 18,433.
        assert_eq!(bits_per_cycle(256), 18_433);
    }

    #[test]
    fn length_87_bandwidth_matches_table_2_scale() {
        // Table 2 lists 76 GB/s for length-87 GUST at 96 MHz; the model
        // gives 87×(64+7)+1 = 6178 bits/cycle -> 74.1 GB/s.
        let bw = required_bytes_per_second(87, 96.0e6);
        assert!((bw / 1.0e9 - 74.1).abs() < 1.0, "got {} GB/s", bw / 1.0e9);
    }

    #[test]
    fn length_256_bandwidth_near_paper_224() {
        // 18,433 bits × 96 MHz = 221.2 GB/s (the paper rounds to 224).
        let bw = required_bytes_per_second(256, 96.0e6);
        assert!((bw / 1.0e9 - 221.2).abs() < 1.0, "got {} GB/s", bw / 1.0e9);
    }

    #[test]
    fn text_formula_is_smaller_than_logical_inputs() {
        for l in [8, 87, 256, 1024] {
            assert!(paper_text_bits_per_cycle(l) < bits_per_cycle(l));
        }
    }

    #[test]
    fn stream_utilization_is_occupancy() {
        // 10 nnz in 4 lanes × 5 cycles = 20 cells -> 50%.
        assert!((stream_utilization(10, 4, 5) - 0.5).abs() < 1e-12);
        assert_eq!(stream_utilization(10, 4, 0), 0.0);
    }

    #[test]
    fn achieved_bandwidth_composes() {
        let full = required_bytes_per_second(8, 1.0e6);
        let half = achieved_bytes_per_second(4, 8, 1, 1.0e6);
        assert!((half - full / 2.0).abs() < 1e-6);
    }
}
